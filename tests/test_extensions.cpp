// Tests for the extension features: delayed ACKs, Limited Transmit,
// the IntervalLossScript, tracer/CSV export, and the responsiveness
// experiment.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cc/tcp_agent.hpp"
#include "cc/tcp_sink.hpp"
#include "metrics/tracer.hpp"
#include "net/topology.hpp"
#include "scenario/responsiveness_experiment.hpp"
#include "traffic/loss_script.hpp"

namespace slowcc {
namespace {

struct DelAckRig {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Node& src{topo.add_node()};
  net::Node& dst{topo.add_node()};
  net::Link* fwd;
  cc::TcpSink sink{sim, dst};
  std::unique_ptr<cc::TcpAgent> tcp;

  explicit DelAckRig(bool delayed, cc::TcpConfig cfg = {}) {
    auto [f, r] = topo.add_duplex(src, dst, 10e6, sim::Time::millis(10), 100);
    fwd = f;
    (void)r;
    sink.set_delayed_acks(delayed);
    tcp = std::make_unique<cc::TcpAgent>(
        sim, src, dst.id(), sink.local_port(), 1,
        std::make_unique<cc::AimdPolicy>(cc::AimdPolicy::tcp_compatible(0.5)),
        cfg);
    topo.compute_routes();
  }
};

TEST(DelayedAcks, RoughlyHalvesAckCount) {
  DelAckRig imm(false), del(true);
  imm.tcp->start();
  del.tcp->start();
  imm.sim.run_until(sim::Time::seconds(10.0));
  del.sim.run_until(sim::Time::seconds(10.0));
  const double imm_ratio = static_cast<double>(imm.sink.acks_sent()) /
                           static_cast<double>(imm.sink.packets_received());
  const double del_ratio = static_cast<double>(del.sink.acks_sent()) /
                           static_cast<double>(del.sink.packets_received());
  EXPECT_NEAR(imm_ratio, 1.0, 0.01);
  EXPECT_LT(del_ratio, 0.65);
  EXPECT_GT(del_ratio, 0.4);
}

TEST(DelayedAcks, StillMovesBulkData) {
  DelAckRig del(true);
  del.tcp->start();
  del.sim.run_until(sim::Time::seconds(15.0));
  EXPECT_GT(del.sink.bytes_received(), 5'000'000);
}

TEST(DelayedAcks, OutOfOrderDataAckedImmediately) {
  // With a forced drop, dup ACKs must not be delayed — fast retransmit
  // depends on them.
  DelAckRig del(true);
  del.tcp->start();
  del.sim.run_until(sim::Time::seconds(5.0));
  const auto timeouts_before = del.tcp->stats().timeouts;
  bool dropped = false;
  del.fwd->set_forced_drop_filter([&dropped](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::kData) {
      dropped = true;
      return true;
    }
    return false;
  });
  del.sim.run_until(sim::Time::seconds(7.0));
  EXPECT_EQ(del.tcp->stats().timeouts, timeouts_before)
      << "dup ACKs arrived promptly enough for fast retransmit";
  EXPECT_GE(del.tcp->stats().retransmits, 1u);
}

TEST(LimitedTransmit, SendsNewDataOnFirstTwoDupAcks) {
  cc::TcpConfig cfg;
  cfg.limited_transmit = true;
  cfg.initial_ssthresh = 4.0;  // keep the window tiny
  DelAckRig rig(false, cfg);
  rig.tcp->start();
  rig.sim.run_until(sim::Time::seconds(2.0));
  const auto next_before = rig.tcp->next_seq();
  // Drop one packet; with a ~4-packet window only ~3 dup ACKs can
  // arrive. Limited transmit keeps the clock alive.
  bool dropped = false;
  rig.fwd->set_forced_drop_filter([&dropped](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::kData) {
      dropped = true;
      return true;
    }
    return false;
  });
  rig.sim.run_until(sim::Time::seconds(4.0));
  EXPECT_GT(rig.tcp->next_seq(), next_before);
  EXPECT_EQ(rig.tcp->stats().timeouts, 0u)
      << "limited transmit avoided an RTO on a small window";
}

TEST(IntervalLossScript, DropsOnePacketPerInterval) {
  sim::Simulator sim;
  traffic::IntervalLossScript script(sim, sim::Time::millis(100));
  net::Packet p;
  p.type = net::PacketType::kData;
  int drops = 0;
  // 10 packets at t=0: only the first is dropped.
  for (int i = 0; i < 10; ++i) {
    if (script.should_drop(p)) ++drops;
  }
  EXPECT_EQ(drops, 1);
  // Advance past the interval: exactly one more.
  sim.schedule_at(sim::Time::millis(150), [] {});
  sim.run();
  for (int i = 0; i < 10; ++i) {
    if (script.should_drop(p)) ++drops;
  }
  EXPECT_EQ(drops, 2);
  EXPECT_EQ(script.drops(), 2);
}

TEST(IntervalLossScript, StartDelaysFirstDrop) {
  sim::Simulator sim;
  traffic::IntervalLossScript script(sim, sim::Time::millis(50),
                                     sim::Time::seconds(1.0));
  net::Packet p;
  p.type = net::PacketType::kData;
  EXPECT_FALSE(script.should_drop(p));
  sim.schedule_at(sim::Time::seconds(1.5), [] {});
  sim.run();
  EXPECT_TRUE(script.should_drop(p));
}

TEST(Tracer, SamplesProbeAtInterval) {
  sim::Simulator sim;
  double value = 1.0;
  metrics::TimeSeriesTracer tracer(sim, sim::Time::millis(100),
                                   [&value] { return value; });
  tracer.start_at(sim::Time());
  sim.schedule_at(sim::Time::millis(250), [&value] { value = 7.0; });
  sim.run_until(sim::Time::millis(500));
  tracer.stop();
  ASSERT_GE(tracer.values().size(), 5u);
  EXPECT_DOUBLE_EQ(tracer.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(tracer.values()[4], 7.0);
  EXPECT_EQ(tracer.timestamps()[2], sim::Time::millis(200));
}

TEST(Tracer, WriteCsvRoundTrips) {
  std::vector<sim::Time> times{sim::Time::millis(0), sim::Time::millis(100)};
  std::vector<double> a{1.5, 2.5};
  std::vector<double> b{10.0, 20.0};
  const std::string path = "/tmp/slowcc_test_trace.csv";
  ASSERT_TRUE(metrics::write_csv(path, times,
                                 {{"alpha", &a}, {"beta", &b}}));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time_s,alpha,beta");
  std::getline(in, line);
  EXPECT_EQ(line, "0.000000,1.5,10");
  std::remove(path.c_str());
}

TEST(Responsiveness, TcpHalvesWithinAFewRtts) {
  scenario::ResponsivenessConfig cfg;
  cfg.spec = scenario::FlowSpec::tcp(2);
  cfg.warmup = sim::Time::seconds(20.0);
  cfg.horizon = sim::Time::seconds(60.0);
  const auto out = run_responsiveness(cfg);
  ASSERT_TRUE(out.halved);
  EXPECT_LE(out.responsiveness_rtts, 6.0);
  EXPECT_GT(out.pre_loss_rate_bps, 5e6);
}

TEST(Responsiveness, SlowTcpTakesLonger) {
  auto resp = [](double gamma) {
    scenario::ResponsivenessConfig cfg;
    cfg.spec = scenario::FlowSpec::tcp(gamma);
    cfg.warmup = sim::Time::seconds(20.0);
    cfg.horizon = sim::Time::seconds(90.0);
    return run_responsiveness(cfg);
  };
  const auto fast = resp(2);
  const auto slow = resp(16);
  ASSERT_TRUE(fast.halved);
  ASSERT_TRUE(slow.halved);
  EXPECT_GT(slow.responsiveness_rtts, 2.0 * fast.responsiveness_rtts);
}

TEST(Responsiveness, AggressivenessOrdersWithA) {
  auto aggr = [](const scenario::FlowSpec& spec) {
    scenario::ResponsivenessConfig cfg;
    cfg.spec = spec;
    return measure_aggressiveness(cfg);
  };
  // TCP(1/2) increases by ~1 packet/RTT; TCP(1/16) by ~0.16.
  const double fast = aggr(scenario::FlowSpec::tcp(2));
  const double slow = aggr(scenario::FlowSpec::tcp(16));
  EXPECT_GT(slow, 0.0);
  EXPECT_GT(fast, 2.0 * slow);
  EXPECT_NEAR(slow, cc::AimdPolicy::compatible_a(1.0 / 16.0), 0.15);
}

}  // namespace
}  // namespace slowcc
