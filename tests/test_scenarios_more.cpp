// Additional scenario-level coverage: experiment drivers return sane,
// internally consistent structures on scaled-down configurations.
#include <gtest/gtest.h>

#include "scenario/fairness_experiment.hpp"
#include "scenario/flash_crowd_experiment.hpp"
#include "scenario/oscillation_experiment.hpp"
#include "scenario/stabilization_experiment.hpp"

namespace slowcc::scenario {
namespace {

TEST(StabilizationExperiment, SeriesCoversWholeRun) {
  StabilizationConfig cfg;
  cfg.spec = FlowSpec::tcp(2);
  cfg.num_flows = 5;
  cfg.net.bottleneck_bps = 10e6;
  cfg.cbr_stop = sim::Time::seconds(20);
  cfg.cbr_restart = sim::Time::seconds(25);
  cfg.end = sim::Time::seconds(40);
  const auto out = run_stabilization(cfg);
  ASSERT_EQ(out.loss_rate_series.size(), out.series_times_s.size());
  // One bin per RTT (50 ms) over ~40 s.
  EXPECT_GT(out.loss_rate_series.size(), 700u);
  for (double v : out.loss_rate_series) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_GT(out.peak_loss_rate_after_restart, 0.0);
}

TEST(StabilizationExperiment, TcpStabilizesInShortRun) {
  StabilizationConfig cfg;
  cfg.spec = FlowSpec::tcp(2);
  cfg.cbr_stop = sim::Time::seconds(30);
  cfg.cbr_restart = sim::Time::seconds(40);
  cfg.end = sim::Time::seconds(70);
  const auto out = run_stabilization(cfg);
  EXPECT_TRUE(out.stabilization.stabilized);
  EXPECT_LT(out.stabilization.stabilization_time_rtts, 100.0);
}

TEST(FairnessExperiment, NormalizedSharesRoughlySumToUtilization) {
  FairnessConfig cfg;
  cfg.cbr_period = sim::Time::seconds(1.0);
  cfg.warmup = sim::Time::seconds(10.0);
  cfg.measure = sim::Time::seconds(60.0);
  const auto out = run_fairness(cfg);
  ASSERT_EQ(out.group_a_normalized.size(), 5u);
  ASSERT_EQ(out.group_b_normalized.size(), 5u);
  double total = 0;
  for (double v : out.group_a_normalized) total += v;
  for (double v : out.group_b_normalized) total += v;
  // Mean normalized share times flow count ~ utilization * flows.
  EXPECT_NEAR(total / 10.0, out.utilization, 0.15);
  EXPECT_GT(out.mean_available_bps, 0.0);
}

TEST(OscillationExperiment, FractionsBounded) {
  OscillationConfig cfg;
  cfg.on_off_length = sim::Time::seconds(0.2);
  cfg.measure = sim::Time::seconds(40.0);
  const auto out = run_oscillation(cfg);
  EXPECT_GT(out.aggregate_fraction, 0.2);
  EXPECT_LT(out.aggregate_fraction, 1.3);
  EXPECT_GE(out.drop_rate, 0.0);
  EXPECT_LT(out.drop_rate, 0.5);
  ASSERT_EQ(out.per_flow_fraction.size(), 10u);
}

TEST(FlashCrowdExperiment, TracesAligned) {
  FlashCrowdExperimentConfig cfg;
  cfg.background_flows = 3;
  cfg.crowd.arrival_rate_fps = 50;
  cfg.crowd.duration = sim::Time::seconds(2.0);
  cfg.crowd_start = sim::Time::seconds(10.0);
  cfg.end = sim::Time::seconds(30.0);
  const auto out = run_flash_crowd(cfg);
  EXPECT_EQ(out.background_bps.size(), out.crowd_bps.size());
  EXPECT_EQ(out.background_bps.size(), out.times_s.size());
  EXPECT_GT(out.crowd_flows_started, 50u);
  EXPECT_GT(out.crowd_total_mbytes, 0.0);
}

TEST(FairnessExperiment, SawtoothPatternsRun) {
  for (auto kind :
       {traffic::PatternKind::kSawtooth, traffic::PatternKind::kReverseSawtooth}) {
    FairnessConfig cfg;
    cfg.pattern = kind;
    cfg.cbr_period = sim::Time::seconds(2.0);
    cfg.warmup = sim::Time::seconds(5.0);
    cfg.measure = sim::Time::seconds(40.0);
    const auto out = run_fairness(cfg);
    EXPECT_GT(out.utilization, 0.3);
    EXPECT_GT(out.group_a_mean, 0.2);
  }
}

TEST(OscillationExperiment, TenToOneHarsherThanThreeToOne) {
  auto frac = [](double peak_fraction) {
    OscillationConfig cfg;
    cfg.spec = FlowSpec::tfrc(6);
    cfg.on_off_length = sim::Time::seconds(1.6);
    cfg.cbr_peak_fraction = peak_fraction;
    cfg.measure = sim::Time::seconds(60.0);
    return run_oscillation(cfg).aggregate_fraction;
  };
  EXPECT_LT(frac(0.9), frac(2.0 / 3.0))
      << "10:1 oscillation must cost TFRC more than 3:1";
}

}  // namespace
}  // namespace slowcc::scenario
