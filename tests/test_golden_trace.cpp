#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/fairness_experiment.hpp"
#include "scenario/oscillation_experiment.hpp"
#include "scenario/stabilization_experiment.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"

// Golden-trace regression tests.
//
// Each test runs a scaled-down paper scenario (Figures 3, 7, 14) on
// BOTH engines and folds every Simulator's (fire-time, seq) trace
// digest into one scenario digest. The two engines must agree — that
// is the differential guarantee at full-scenario granularity — and the
// result must match the digest pinned under tests/golden/, so any
// change to event ordering anywhere in the stack (queues, links,
// agents, traffic sources) is caught, not just changes to the metrics
// the scenario outcome summarizes.
//
// To regenerate after an *intentional* ordering change:
//   SLOWCC_REGEN_GOLDEN=1 ./tests/slowcc_tests --gtest_filter='GoldenTrace.*'
// then commit the rewritten tests/golden/*.txt (see EXPERIMENTS.md).

#ifndef SLOWCC_GOLDEN_DIR
#error "SLOWCC_GOLDEN_DIR must point at tests/golden"
#endif

namespace slowcc {
namespace {

/// Pins the thread's default engine and collects trace digests from
/// every Simulator the scenario driver constructs, via the construct
/// observer + guard hook (the guard's deleter runs in ~Simulator while
/// its members are still alive).
class ScenarioDigest {
 public:
  explicit ScenarioDigest(sim::EngineKind kind) {
    sim::set_thread_default_engine(kind);
    sim::Simulator::set_thread_construct_observer([this](sim::Simulator& s) {
      ++simulators_;
      s.attach_guard(std::shared_ptr<void>(nullptr, [this, sp = &s](void*) {
        combined_ = sim::fnv1a_u64(combined_, sp->trace_digest());
        combined_ = sim::fnv1a_u64(combined_, sp->events_executed());
      }));
    });
  }

  ScenarioDigest(const ScenarioDigest&) = delete;
  ScenarioDigest& operator=(const ScenarioDigest&) = delete;

  ~ScenarioDigest() {
    sim::Simulator::set_thread_construct_observer(nullptr);
    sim::clear_thread_default_engine();
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return combined_; }
  [[nodiscard]] int simulators() const noexcept { return simulators_; }

 private:
  std::uint64_t combined_ = sim::kFnvOffsetBasis;
  int simulators_ = 0;
};

std::string golden_path(const std::string& name) {
  return std::string(SLOWCC_GOLDEN_DIR) + "/" + name + ".txt";
}

/// Compare `digest` against the pinned value (or rewrite the pin when
/// SLOWCC_REGEN_GOLDEN is set).
void expect_matches_golden(const std::string& name, std::uint64_t digest) {
  const std::string path = golden_path(name);
  std::ostringstream rendered;
  rendered << "slowcc.golden.v1 " << name << " 0x" << std::hex << digest
           << "\n";
  if (std::getenv("SLOWCC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered.str();
    std::cout << "[regen] wrote " << path << ": " << rendered.str();
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run with SLOWCC_REGEN_GOLDEN=1 to create it";
  std::string header;
  std::string file_name;
  std::string digest_text;
  in >> header >> file_name >> digest_text;
  ASSERT_EQ(header, "slowcc.golden.v1") << "bad golden header in " << path;
  ASSERT_EQ(file_name, name);
  const std::uint64_t pinned =
      std::strtoull(digest_text.c_str(), nullptr, 16);
  EXPECT_EQ(digest, pinned)
      << "scenario '" << name << "' produced a different event trace than "
      << "the pinned golden (" << rendered.str()
      << " vs " << digest_text << "). If the ordering change is intentional, "
      << "regenerate with SLOWCC_REGEN_GOLDEN=1 (see EXPERIMENTS.md).";
}

/// Run `scenario` under both engines, require identical digests, and
/// compare against the pinned golden.
template <typename Fn>
void check_scenario(const std::string& name, Fn scenario) {
  std::uint64_t digests[2] = {0, 0};
  const sim::EngineKind kinds[2] = {sim::EngineKind::kHeap,
                                    sim::EngineKind::kWheel};
  for (int i = 0; i < 2; ++i) {
    ScenarioDigest capture(kinds[i]);
    scenario();
    ASSERT_GT(capture.simulators(), 0)
        << "scenario built no Simulator; digest capture is broken";
    digests[i] = capture.value();
  }
  EXPECT_EQ(digests[0], digests[1])
      << "heap and wheel engines executed '" << name
      << "' with different event orderings";
  expect_matches_golden(name, digests[1]);
}

// Figure 3 regime: stabilization after a sudden bandwidth reduction,
// scaled to a 20 s run.
TEST(GoldenTrace, Fig03StabilizationTrace) {
  check_scenario("fig03_stabilization", [] {
    scenario::StabilizationConfig cfg;
    cfg.spec = scenario::FlowSpec::tfrc(6);
    cfg.num_flows = 5;
    cfg.net.bottleneck_bps = 10e6;
    cfg.cbr_stop = sim::Time::seconds(10);
    cfg.cbr_restart = sim::Time::seconds(13);
    cfg.end = sim::Time::seconds(20);
    cfg.seed = 1;
    (void)scenario::run_stabilization(cfg);
  });
}

// Figure 7 regime: TCP vs TFRC fairness under a square-wave CBR,
// scaled to a 25 s run.
TEST(GoldenTrace, Fig07FairnessTrace) {
  check_scenario("fig07_fairness", [] {
    scenario::FairnessConfig cfg;
    cfg.cbr_period = sim::Time::seconds(1.0);
    cfg.warmup = sim::Time::seconds(5.0);
    cfg.measure = sim::Time::seconds(20.0);
    cfg.seed = 1;
    (void)scenario::run_fairness(cfg);
  });
}

// Figure 14 regime: rapid 3:1 bandwidth oscillation, scaled to a 30 s
// run.
TEST(GoldenTrace, Fig14OscillationTrace) {
  check_scenario("fig14_oscillation", [] {
    scenario::OscillationConfig cfg;
    cfg.on_off_length = sim::Time::seconds(0.2);
    cfg.measure = sim::Time::seconds(20.0);
    cfg.seed = 1;
    (void)scenario::run_oscillation(cfg);
  });
}

}  // namespace
}  // namespace slowcc
