// ResourceGovernor: the per-trial memory model that turns "this trial
// is eating the machine" into a deterministic SimError instead of an
// OOM-kill. Covers the watermark-before-ceiling ordering, the ceiling
// abort, counter balance at teardown (including a queue destroyed
// while still holding packets), and the thread-local peaks the trial
// harness reads after the Simulator is gone.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/drop_tail_queue.hpp"
#include "net/packet.hpp"
#include "sim/error.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace slowcc::sim {
namespace {

net::Packet make_packet(Simulator& sim, std::int64_t size_bytes) {
  net::Packet p;
  p.size_bytes = size_bytes;
  p.uid = sim.next_packet_uid();
  return p;
}

/// Schedule a self-replicating event chain that enqueues `pkts` packets
/// of `bytes` each per tick — a miniature memory bomb.
void arm_bomb(Simulator& sim, net::Queue& queue,
              std::shared_ptr<std::function<void()>> tick, int pkts,
              std::int64_t bytes) {
  *tick = [&sim, &queue, tick, pkts, bytes] {
    for (int i = 0; i < pkts; ++i) {
      (void)queue.enqueue(make_packet(sim, bytes));
    }
    sim.schedule_in(Time::millis(1), *tick);
    sim.schedule_in(Time::millis(2), *tick);
  };
  sim.schedule_in(Time::millis(1), *tick);
}

TEST(ResourceGovernor, BytesEstimateFollowsTheDocumentedModel) {
  ResourceGovernor g;
  g.note_packets_admitted(3, 4500);
  EXPECT_EQ(g.live_packets(), 3u);
  EXPECT_EQ(g.queued_bytes(), 4500u);
  EXPECT_EQ(g.bytes_estimate(10),
            10 * ResourceGovernor::kEventFootprintBytes +
                3 * ResourceGovernor::kPacketFootprintBytes + 4500);
  g.note_packets_released(3, 4500);
  EXPECT_EQ(g.bytes_estimate(0), 0u);
}

TEST(ResourceGovernor, RejectsWatermarkFractionOutsideUnitInterval) {
  ResourceGovernor g;
  EXPECT_THROW(g.set_budget(1 << 20, 0.0), SimError);
  EXPECT_THROW(g.set_budget(1 << 20, 1.5), SimError);
  EXPECT_THROW(g.set_budget(1 << 20, -0.1), SimError);
  g.set_budget(1 << 20, 1.0);  // boundary is valid
  EXPECT_TRUE(g.armed());
}

TEST(ResourceGovernor, CeilingAbortThrowsResourceExhausted) {
  Simulator sim;
  net::DropTailQueue queue(std::size_t{1} << 20);
  queue.attach_governor(&sim.governor());
  sim.governor().set_budget(64 * 1024);

  auto tick = std::make_shared<std::function<void()>>();
  arm_bomb(sim, queue, tick, /*pkts=*/16, /*bytes=*/1500);
  try {
    sim.run_until(Time::seconds(10));
    FAIL() << "bomb ran to completion under a 64 KiB budget";
  } catch (const SimError& ex) {
    EXPECT_EQ(ex.code(), SimErrc::kResourceExhausted);
    // The detail string is part of the deterministic row contract.
    EXPECT_NE(std::string(ex.what()).find("exceeds budget"),
              std::string::npos);
  }
}

TEST(ResourceGovernor, AbortEventIsDeterministic) {
  const auto events_at_abort = [] {
    Simulator sim;
    net::DropTailQueue queue(std::size_t{1} << 20);
    queue.attach_governor(&sim.governor());
    sim.governor().set_budget(64 * 1024);
    auto tick = std::make_shared<std::function<void()>>();
    arm_bomb(sim, queue, tick, 16, 1500);
    try {
      sim.run_until(Time::seconds(10));
    } catch (const SimError&) {
      return sim.events_executed();
    }
    return std::uint64_t{0};
  };
  const std::uint64_t first = events_at_abort();
  ASSERT_GT(first, 0u);
  EXPECT_EQ(events_at_abort(), first);
}

TEST(ResourceGovernor, WatermarkFiresOnceAndBeforeTheCeiling) {
  Simulator sim;
  net::DropTailQueue queue(std::size_t{1} << 20);
  queue.attach_governor(&sim.governor());

  constexpr std::uint64_t kBudget = 64 * 1024;
  std::vector<ResourceUsage> watermark_hits;
  std::uint64_t events_at_watermark = 0;
  sim.governor().set_budget(kBudget, 0.5,
                            [&](const ResourceUsage& usage) {
                              watermark_hits.push_back(usage);
                              events_at_watermark = sim.events_executed();
                            });

  auto tick = std::make_shared<std::function<void()>>();
  arm_bomb(sim, queue, tick, 16, 1500);
  std::uint64_t events_at_abort = 0;
  try {
    sim.run_until(Time::seconds(10));
  } catch (const SimError& ex) {
    ASSERT_EQ(ex.code(), SimErrc::kResourceExhausted);
    events_at_abort = sim.events_executed();
  }
  ASSERT_EQ(watermark_hits.size(), 1u) << "watermark must fire exactly once";
  EXPECT_GE(watermark_hits[0].bytes_estimate, kBudget / 2);
  EXPECT_LT(watermark_hits[0].bytes_estimate, kBudget);
  EXPECT_LT(events_at_watermark, events_at_abort)
      << "soft watermark must precede the hard ceiling";
}

TEST(ResourceGovernor, WatermarkSheddingCanAvertTheAbort) {
  Simulator sim;
  net::DropTailQueue queue(std::size_t{1} << 20);
  queue.attach_governor(&sim.governor());

  // The callback drains the queue and tells the producer to back off —
  // the governor re-reads the counters after it runs, so shedding below
  // the ceiling lets the trial finish. (The watermark fires once per
  // arming; a producer that keeps growing past it still hits the
  // ceiling, which CeilingAbortThrowsResourceExhausted covers.)
  bool shed = false;
  sim.governor().set_budget(64 * 1024, 0.5, [&](const ResourceUsage&) {
    shed = true;
    while (queue.dequeue().has_value()) {
    }
  });

  int ticks = 0;
  std::function<void()> tick = [&] {
    if (!shed) {
      for (int i = 0; i < 16; ++i) {
        (void)queue.enqueue(make_packet(sim, 1500));
      }
    }
    if (++ticks < 64) sim.schedule_in(Time::millis(1), tick);
  };
  sim.schedule_in(Time::millis(1), tick);
  EXPECT_NO_THROW(sim.run());
  EXPECT_TRUE(shed);
}

TEST(ResourceGovernor, CountersBalanceToZeroAfterACleanTrial) {
  Simulator sim;
  {
    net::DropTailQueue queue(1024);
    queue.attach_governor(&sim.governor());
    for (int i = 0; i < 40; ++i) {
      (void)queue.enqueue(make_packet(sim, 1000));
    }
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(queue.dequeue().has_value());
    }
    EXPECT_EQ(sim.governor().live_packets(), 0u);
    EXPECT_EQ(sim.governor().queued_bytes(), 0u);
  }
  // Destroying the (empty) queue releases nothing further.
  EXPECT_EQ(sim.governor().live_packets(), 0u);
  EXPECT_EQ(sim.governor().queued_bytes(), 0u);
}

TEST(ResourceGovernor, QueueDestroyedHoldingPacketsReleasesItsResidue) {
  Simulator sim;
  {
    net::DropTailQueue queue(1024);
    queue.attach_governor(&sim.governor());
    for (int i = 0; i < 17; ++i) {
      (void)queue.enqueue(make_packet(sim, 1500));
    }
    EXPECT_EQ(sim.governor().live_packets(), 17u);
    EXPECT_EQ(sim.governor().queued_bytes(), 17u * 1500u);
  }  // torn down full, as after a kResourceExhausted abort
  EXPECT_EQ(sim.governor().live_packets(), 0u);
  EXPECT_EQ(sim.governor().queued_bytes(), 0u);
}

TEST(ResourceGovernor, AttachChargesExistingContentsAndDetachReleases) {
  Simulator sim;
  net::DropTailQueue queue(1024);
  for (int i = 0; i < 5; ++i) {
    (void)queue.enqueue(make_packet(sim, 200));
  }
  queue.attach_governor(&sim.governor());
  EXPECT_EQ(sim.governor().live_packets(), 5u);
  EXPECT_EQ(sim.governor().queued_bytes(), 1000u);
  queue.attach_governor(nullptr);
  EXPECT_EQ(sim.governor().live_packets(), 0u);
  EXPECT_EQ(sim.governor().queued_bytes(), 0u);
}

TEST(ResourceGovernor, ThreadPeaksSurviveTheSimulatorAndReset) {
  ResourceGovernor::reset_thread_peaks();
  EXPECT_EQ(ResourceGovernor::thread_peaks().bytes_estimate, 0u);
  {
    Simulator sim;
    net::DropTailQueue queue(std::size_t{1} << 20);
    queue.attach_governor(&sim.governor());
    sim.governor().set_budget(64 * 1024);
    auto tick = std::make_shared<std::function<void()>>();
    arm_bomb(sim, queue, tick, 16, 1500);
    EXPECT_THROW(sim.run_until(Time::seconds(10)), SimError);
  }  // Simulator and queue both gone
  const ResourceUsage& peaks = ResourceGovernor::thread_peaks();
  EXPECT_GE(peaks.bytes_estimate, 64u * 1024u);
  EXPECT_GT(peaks.live_packets, 0u);
  EXPECT_GT(peaks.queued_bytes, 0u);
  ResourceGovernor::reset_thread_peaks();
  EXPECT_EQ(ResourceGovernor::thread_peaks().bytes_estimate, 0u);
  EXPECT_EQ(ResourceGovernor::thread_peaks().live_packets, 0u);
}

TEST(ResourceGovernor, DisarmedGovernorNeverAborts) {
  Simulator sim;
  net::DropTailQueue queue(std::size_t{1} << 20);
  queue.attach_governor(&sim.governor());
  int ticks = 0;
  std::function<void()> tick = [&] {
    for (int i = 0; i < 16; ++i) {
      (void)queue.enqueue(make_packet(sim, 1500));
    }
    if (++ticks < 128) sim.schedule_in(Time::millis(1), tick);
  };
  sim.schedule_in(Time::millis(1), tick);
  EXPECT_NO_THROW(sim.run());
  EXPECT_FALSE(sim.governor().armed());
  EXPECT_EQ(queue.length_packets(), 128u * 16u);
}

}  // namespace
}  // namespace slowcc::sim
