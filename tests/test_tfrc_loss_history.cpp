#include <gtest/gtest.h>

#include "cc/tfrc_loss_history.hpp"

namespace slowcc::cc {
namespace {

constexpr sim::Time kRtt = sim::Time::millis(50);

// Feed `count` consecutive in-order packets starting at `seq`,
// advancing a fake clock by `per_packet` per packet.
std::int64_t feed(TfrcLossHistory& h, std::int64_t seq, std::int64_t count,
                  sim::Time& clock,
                  sim::Time per_packet = sim::Time::millis(1)) {
  for (std::int64_t i = 0; i < count; ++i) {
    clock += per_packet;
    h.on_packet(seq++, clock, kRtt);
  }
  return seq;
}

TEST(TfrcWeights, MatchSpecForEight) {
  const auto w = TfrcLossHistory::weights(8);
  const std::vector<double> expected{1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2};
  ASSERT_EQ(w.size(), expected.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], expected[i], 1e-12) << "i=" << i;
  }
}

TEST(TfrcWeights, MonotoneNonIncreasing) {
  for (int n : {1, 2, 4, 6, 8, 16, 128, 256}) {
    const auto w = TfrcLossHistory::weights(n);
    for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i], w[i - 1]);
    EXPECT_GT(w.back(), 0.0);
    EXPECT_DOUBLE_EQ(w.front(), std::min(1.0, 2.0 * n / (n + 2.0)));
  }
}

TEST(TfrcLossHistory, NoLossMeansZeroRate) {
  TfrcLossHistory h(8);
  sim::Time clock;
  feed(h, 0, 1000, clock);
  EXPECT_DOUBLE_EQ(h.loss_event_rate(), 0.0);
  EXPECT_EQ(h.losses_seen(), 0);
}

TEST(TfrcLossHistory, SingleGapIsOneLossEvent) {
  TfrcLossHistory h(8);
  sim::Time clock;
  auto seq = feed(h, 0, 100, clock);
  seq += 1;  // skip one
  clock += sim::Time::millis(1);
  h.on_packet(seq, clock, kRtt);
  EXPECT_EQ(h.loss_events(), 1);
  EXPECT_EQ(h.losses_seen(), 1);
}

TEST(TfrcLossHistory, LossesWithinOneRttCoalesce) {
  TfrcLossHistory h(8);
  sim::Time clock;
  feed(h, 0, 100, clock);
  // Three separate gaps arriving within a single RTT: one event.
  clock += sim::Time::millis(5);
  h.on_packet(101, clock, kRtt);  // lost 100
  clock += sim::Time::millis(5);
  h.on_packet(103, clock, kRtt);  // lost 102
  clock += sim::Time::millis(5);
  h.on_packet(105, clock, kRtt);  // lost 104
  EXPECT_EQ(h.loss_events(), 1);
  EXPECT_EQ(h.losses_seen(), 3);
}

TEST(TfrcLossHistory, LossesBeyondOneRttAreSeparateEvents) {
  TfrcLossHistory h(8);
  sim::Time clock;
  feed(h, 0, 100, clock);
  clock += sim::Time::millis(60);  // > RTT
  h.on_packet(101, clock, kRtt);
  clock += sim::Time::millis(60);
  h.on_packet(103, clock, kRtt);
  EXPECT_EQ(h.loss_events(), 2);
}

TEST(TfrcLossHistory, PeriodicLossYieldsMatchingRate) {
  // One loss every 100 packets -> p ~ 0.01.
  TfrcLossHistory h(8);
  sim::Time clock;
  std::int64_t seq = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    seq = feed(h, seq, 99, clock, sim::Time::millis(2));
    seq += 1;  // lose one
  }
  clock += sim::Time::millis(2);
  h.on_packet(seq, clock, kRtt);
  EXPECT_NEAR(h.loss_event_rate(), 0.01, 0.002);
}

TEST(TfrcLossHistory, OpenIntervalLetsRateDecay) {
  TfrcLossHistory h(8);
  sim::Time clock;
  std::int64_t seq = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    seq = feed(h, seq, 50, clock, sim::Time::millis(2));
    seq += 1;
  }
  const double p_congested = h.loss_event_rate();
  // A long loss-free run: the open interval dominates via max().
  feed(h, seq, 5000, clock, sim::Time::millis(2));
  EXPECT_LT(h.loss_event_rate(), p_congested / 5.0);
}

TEST(TfrcLossHistory, ShortMemoryAdaptsFasterThanLong) {
  auto run = [](int n) {
    TfrcLossHistory h(n);
    sim::Time clock;
    std::int64_t seq = 0;
    // Light loss: every 400 packets, 20 cycles.
    for (int c = 0; c < 20; ++c) {
      seq = feed(h, seq, 400, clock, sim::Time::millis(2));
      seq += 1;
    }
    // Then heavy loss: every 5 packets, 12 events (with >RTT spacing so
    // each gap is its own event).
    for (int c = 0; c < 12; ++c) {
      seq = feed(h, seq, 5, clock, sim::Time::millis(15));
      seq += 1;
    }
    clock += sim::Time::millis(60);
    h.on_packet(seq, clock, kRtt);
    return h.loss_event_rate();
  };
  EXPECT_GT(run(4), 2.0 * run(64))
      << "TFRC(4) must see the new heavy-loss regime long before TFRC(64)";
}

TEST(TfrcLossHistory, HistoryDiscountingAcceleratesDecay) {
  auto run = [](bool discounting) {
    TfrcLossHistory h(64);
    h.set_history_discounting(discounting);
    sim::Time clock;
    std::int64_t seq = 0;
    for (int c = 0; c < 64; ++c) {
      seq = feed(h, seq, 20, clock, sim::Time::millis(2));
      seq += 1;
    }
    // Long quiet period.
    feed(h, seq, 4000, clock, sim::Time::millis(2));
    return h.loss_event_rate();
  };
  EXPECT_LT(run(true), run(false))
      << "discounting must let p collapse faster in good times";
}

TEST(TfrcLossHistory, DiscountResetsWhenLossesResume) {
  TfrcLossHistory h(32);
  h.set_history_discounting(true);
  sim::Time clock;
  std::int64_t seq = 0;
  for (int c = 0; c < 32; ++c) {
    seq = feed(h, seq, 20, clock, sim::Time::millis(2));
    seq += 1;
  }
  feed(h, seq, 4000, clock, sim::Time::millis(2));
  seq += 4000;
  const double p_quiet = h.loss_event_rate();
  // One new loss: full history memory returns (reset-on-loss), so the
  // estimate jumps back up much faster than it decayed.
  seq += 1;
  clock += sim::Time::millis(60);
  h.on_packet(seq, clock, kRtt);
  EXPECT_GT(h.loss_event_rate(), p_quiet);
}

TEST(TfrcLossHistory, RejectsBadN) {
  EXPECT_THROW(TfrcLossHistory(0), std::invalid_argument);
}

class HistoryDepth : public ::testing::TestWithParam<int> {};

TEST_P(HistoryDepth, RateAlwaysInUnitRange) {
  TfrcLossHistory h(GetParam());
  sim::Time clock;
  std::int64_t seq = 0;
  for (int c = 0; c < 30; ++c) {
    seq = feed(h, seq, 3 + c % 7, clock, sim::Time::millis(20));
    seq += 1 + c % 2;
  }
  EXPECT_GE(h.loss_event_rate(), 0.0);
  EXPECT_LE(h.loss_event_rate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(NSweep, HistoryDepth,
                         ::testing::Values(1, 2, 4, 6, 8, 16, 32, 128, 256));

}  // namespace
}  // namespace slowcc::cc
