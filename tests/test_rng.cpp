#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"

namespace slowcc::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInRange) {
  Rng r(17);
  bool hit[10] = {};
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(10);
    ASSERT_LT(v, 10u);
    hit[v] = true;
  }
  for (bool h : hit) EXPECT_TRUE(h);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(0.25);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  // Child and parent should not track each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace slowcc::sim
