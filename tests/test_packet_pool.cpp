#include <gtest/gtest.h>

#include <vector>

#include "net/drop_tail_queue.hpp"
#include "net/packet_pool.hpp"
#include "sim/error.hpp"
#include "sim/simulator.hpp"

namespace slowcc::net {
namespace {

Packet make_packet(std::int64_t seq, std::int64_t size = 1000) {
  Packet p;
  p.seq = seq;
  p.size_bytes = size;
  return p;
}

// ====================================================================
// Exhaustion -> growth: the pool grows by whole chunks, and — the
// invariant the zero-copy delivery path leans on — growth never moves
// a live slot, so Packet& references survive it.

TEST(PacketPool, GrowsByChunksWhenTheFreeListRunsDry) {
  PacketPool pool;
  EXPECT_EQ(pool.capacity(), 0u);
  std::vector<PacketHandle> handles;
  for (int i = 0; i < 300; ++i) handles.push_back(pool.acquire(make_packet(i)));
  // 300 live packets need two 256-slot chunks.
  EXPECT_EQ(pool.capacity(), 512u);
  EXPECT_EQ(pool.live(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(pool.get(handles[static_cast<std::size_t>(i)]).seq, i);
  }
}

TEST(PacketPool, GrowthNeverMovesLiveSlots) {
  PacketPool pool;
  const PacketHandle first = pool.acquire(make_packet(42));
  Packet* const before = &pool.get(first);
  // Force several growth episodes past the first chunk.
  std::vector<PacketHandle> rest;
  for (int i = 0; i < 2000; ++i) rest.push_back(pool.acquire(make_packet(i)));
  EXPECT_EQ(before, &pool.get(first));
  EXPECT_EQ(before->seq, 42);
}

TEST(PacketPool, ReserveWarmsUpCapacityWithoutLivePackets) {
  PacketPool pool;
  pool.reserve(1000);
  EXPECT_GE(pool.capacity(), 1000u);
  EXPECT_EQ(pool.live(), 0u);
  const std::size_t warm = pool.capacity();
  // Acquires inside the reservation must not grow further.
  std::vector<PacketHandle> handles;
  for (int i = 0; i < 1000; ++i) handles.push_back(pool.acquire(make_packet(i)));
  EXPECT_EQ(pool.capacity(), warm);
}

TEST(PacketPool, ReleaseRecyclesSlotsInsteadOfGrowing) {
  PacketPool pool;
  const PacketHandle a = pool.acquire(make_packet(1));
  const std::size_t warm = pool.capacity();
  pool.release(a);
  for (int i = 0; i < 200; ++i) {
    const PacketHandle h = pool.acquire(make_packet(i));
    pool.release(h);
  }
  EXPECT_EQ(pool.capacity(), warm);
  EXPECT_EQ(pool.live(), 0u);
}

// ====================================================================
// Generation counters: a released slot stales every outstanding handle,
// so ABA reuse is detected at the misuse site instead of silently
// aliasing a different packet.

TEST(PacketPool, StaleHandleDetectedAfterSlotReuse) {
  PacketPool pool;
  const PacketHandle old = pool.acquire(make_packet(1));
  pool.release(old);
  // The free list hands the same slot back; its generation moved on.
  const PacketHandle fresh = pool.acquire(make_packet(2));
  ASSERT_EQ(fresh.slot, old.slot);
  EXPECT_NE(fresh.gen, old.gen);
  EXPECT_FALSE(pool.is_live(old));
  EXPECT_TRUE(pool.is_live(fresh));
  EXPECT_THROW((void)pool.get(old), sim::SimError);
  EXPECT_EQ(pool.get(fresh).seq, 2);
}

TEST(PacketPool, DoubleReleaseThrows) {
  PacketPool pool;
  const PacketHandle h = pool.acquire(make_packet(7));
  pool.release(h);
  EXPECT_THROW(pool.release(h), sim::SimError);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, TakeMovesThePacketOutAndStalesTheHandle) {
  PacketPool pool;
  const PacketHandle h = pool.acquire(make_packet(9, 1234));
  const Packet p = pool.take(h);
  EXPECT_EQ(p.seq, 9);
  EXPECT_EQ(p.size_bytes, 1234);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_FALSE(pool.is_live(h));
  EXPECT_THROW((void)pool.take(h), sim::SimError);
}

TEST(PacketPool, InvalidHandleIsNeverLive) {
  PacketPool pool;
  EXPECT_FALSE(pool.is_live(PacketHandle{}));
  EXPECT_THROW((void)pool.get(PacketHandle{}), sim::SimError);
}

// ====================================================================
// Leak balance: everything acquired through a governed queue is
// released again by teardown — the pool's live() and the governor's
// packet counters both return to zero, so neither model leaks.

TEST(PacketPool, QueueTeardownBalancesPoolAndGovernorToZero) {
  sim::Simulator sim;
  PacketPool& pool = PacketPool::of(sim);
  {
    DropTailQueue queue(64);
    queue.attach_pool(&pool);
    queue.attach_governor(&sim.governor());
    for (int i = 0; i < 10; ++i) {
      ASSERT_FALSE(queue.enqueue(make_packet(i)).has_value());
    }
    EXPECT_EQ(pool.live(), 10u);
    EXPECT_EQ(sim.governor().live_packets(), 10u);
    // Dequeue a few by value (round-trips out of the pool)...
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(queue.dequeue().has_value());
    EXPECT_EQ(pool.live(), 6u);
    EXPECT_EQ(sim.governor().live_packets(), 6u);
    // ...and let the destructor release the residue.
  }
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(sim.governor().live_packets(), 0u);
  EXPECT_EQ(sim.governor().queued_bytes(), 0u);
}

TEST(PacketPool, RejectedEnqueueLeavesTheCallerOwningTheHandle) {
  sim::Simulator sim;
  PacketPool& pool = PacketPool::of(sim);
  DropTailQueue queue(1);
  queue.attach_pool(&pool);
  ASSERT_FALSE(queue.enqueue(make_packet(0)).has_value());
  const PacketHandle h = pool.acquire(make_packet(1));
  const auto reason = queue.enqueue(h);
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, DropReason::kOverflow);
  // Still ours: live, readable, and releasable exactly once.
  EXPECT_TRUE(pool.is_live(h));
  EXPECT_EQ(pool.get(h).seq, 1);
  pool.release(h);
}

// ====================================================================
// Per-simulator identity: of() hands every component of one Simulator
// the same pool and different Simulators different pools, and the pool
// dies with its Simulator (the registry guard), so handles can never
// cross simulations.

TEST(PacketPool, OfReturnsOnePoolPerSimulator) {
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  PacketPool& a1 = PacketPool::of(sim_a);
  PacketPool& a2 = PacketPool::of(sim_a);
  PacketPool& b = PacketPool::of(sim_b);
  EXPECT_EQ(&a1, &a2);
  EXPECT_NE(&a1, &b);
}

TEST(PacketPool, SequentialSimulatorsGetFreshPools) {
  // Teardown must unregister the pool: a new Simulator that happens to
  // reuse the same stack address must not inherit the old pool's slots.
  std::size_t first_capacity = 0;
  {
    sim::Simulator sim;
    PacketPool& pool = PacketPool::of(sim);
    const PacketHandle h = pool.acquire(make_packet(1));
    first_capacity = pool.capacity();
    pool.release(h);
  }
  {
    sim::Simulator sim;
    PacketPool& pool = PacketPool::of(sim);
    EXPECT_EQ(pool.live(), 0u);
    EXPECT_LE(pool.capacity(), first_capacity);
  }
}

}  // namespace
}  // namespace slowcc::net
