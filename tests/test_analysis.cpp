#include <gtest/gtest.h>

#include <cmath>

#include "analysis/aimd_model.hpp"
#include "analysis/convergence_model.hpp"
#include "analysis/fk_model.hpp"
#include "analysis/timeout_model.hpp"
#include "cc/response_function.hpp"

namespace slowcc::analysis {
namespace {

TEST(TimeoutModel, PaperExampleHalfLoss) {
  // p = 1/2: two packets every three RTTs (Appendix A).
  EXPECT_NEAR(aimd_with_timeouts_pkts_per_rtt(0.5), 2.0 / 3.0, 1e-12);
}

TEST(TimeoutModel, HigherLossMeansLowerRate) {
  double prev = 10.0;
  for (double p : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    const double r = aimd_with_timeouts_pkts_per_rtt(p);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(TimeoutModel, MatchesDeterministicDerivation) {
  // p = n/(n+1): n+1 packets over 2^{n+1}-1 RTTs.
  for (int n = 1; n <= 6; ++n) {
    const double p = static_cast<double>(n) / (n + 1);
    const double expected =
        static_cast<double>(n + 1) / (std::pow(2.0, n + 1) - 1.0);
    EXPECT_NEAR(aimd_with_timeouts_pkts_per_rtt(p), expected, 1e-9) << n;
  }
}

TEST(TimeoutModel, CombinedModelContinuousAtBoundaries) {
  const double left = combined_model_pkts_per_rtt(1.0 / 3.0 - 1e-9);
  const double right = combined_model_pkts_per_rtt(1.0 / 3.0 + 1e-9);
  EXPECT_NEAR(left, right, 0.01);
  const double left2 = combined_model_pkts_per_rtt(0.5 - 1e-9);
  const double right2 = combined_model_pkts_per_rtt(0.5 + 1e-9);
  EXPECT_NEAR(left2, right2, 0.01);
}

TEST(TimeoutModel, TimeoutLineBoundsRenoFromAbove) {
  // Appendix A: "AIMD with timeouts" is an upper bound on Reno in the
  // high-loss region; the Padhye formula is the lower bound.
  for (double p : {0.5, 0.6, 0.7}) {
    EXPECT_GT(aimd_with_timeouts_pkts_per_rtt(p), cc::padhye_pkts_per_rtt(p));
  }
}

TEST(TimeoutModel, RejectsOutOfRange) {
  EXPECT_THROW((void)aimd_with_timeouts_pkts_per_rtt(0.0), std::invalid_argument);
  EXPECT_THROW((void)aimd_with_timeouts_pkts_per_rtt(1.0), std::invalid_argument);
  EXPECT_THROW((void)combined_model_pkts_per_rtt(-0.1), std::invalid_argument);
}

TEST(ConvergenceModel, MatchesClosedForm) {
  // log_{1-bp} delta.
  const double acks = expected_acks_to_fairness(0.5, 0.1, 0.1);
  EXPECT_NEAR(acks, std::log(0.1) / std::log(0.95), 1e-9);
}

TEST(ConvergenceModel, SmallerBTakesExponentiallyLonger) {
  const double fast = expected_acks_to_fairness(0.5, 0.1, 0.1);
  const double slow = expected_acks_to_fairness(1.0 / 64.0, 0.1, 0.1);
  EXPECT_GT(slow, 25.0 * fast);
}

TEST(ConvergenceModel, TighterDeltaTakesLonger) {
  EXPECT_GT(expected_acks_to_fairness(0.5, 0.1, 0.01),
            expected_acks_to_fairness(0.5, 0.1, 0.1));
}

TEST(ConvergenceModel, RttConversionDividesByWindow) {
  const double acks = expected_acks_to_fairness(0.5, 0.1, 0.1);
  EXPECT_NEAR(expected_rtts_to_fairness(0.5, 0.1, 0.1, 20.0), acks / 20.0,
              1e-9);
}

TEST(ConvergenceModel, RejectsBadInput) {
  EXPECT_THROW((void)expected_acks_to_fairness(0.0, 0.1, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)expected_acks_to_fairness(0.5, 0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)expected_acks_to_fairness(0.5, 0.1, 1.5),
               std::invalid_argument);
}

TEST(FkModel, StartsAtHalfAndGrowsLinearly) {
  const auto rtt = sim::Time::millis(50);
  const double lambda = 1250.0;  // 10 Mb/s of 1000-B packets
  const double slope = 1.0 / (4.0 * 0.05 * lambda);  // a/(4 R lambda)
  EXPECT_NEAR(fk_aimd_approximation(1, 1.0, rtt, lambda), 0.5 + slope, 1e-9);
  const double f20 = fk_aimd_approximation(20, 1.0, rtt, lambda);
  const double f40 = fk_aimd_approximation(40, 1.0, rtt, lambda);
  EXPECT_NEAR(f40 - f20, 20.0 * slope, 1e-9);
}

TEST(FkModel, CapsAtFullUtilization) {
  EXPECT_DOUBLE_EQ(
      fk_aimd_approximation(100000, 1.0, sim::Time::millis(50), 10.0), 1.0);
}

TEST(FkModel, SlowerPolicyLowerUtilization) {
  const auto rtt = sim::Time::millis(50);
  EXPECT_LT(fk_aimd_approximation(20, 0.31, rtt, 1250.0),
            fk_aimd_approximation(20, 1.0, rtt, 1250.0));
}

TEST(AimdModel, Responsiveness) {
  EXPECT_NEAR(aimd_responsiveness_rtts(0.5), 1.0, 1e-9);
  // TCP(1/8): (1-1/8)^n = 1/2 -> n ~ 5.19.
  EXPECT_NEAR(aimd_responsiveness_rtts(1.0 / 8.0), 5.19, 0.01);
}

TEST(AimdModel, SmoothnessIsOneMinusB) {
  EXPECT_DOUBLE_EQ(aimd_smoothness(0.5), 0.5);
  EXPECT_DOUBLE_EQ(aimd_smoothness(1.0 / 8.0), 7.0 / 8.0);
}

TEST(AimdModel, AggressivenessIsA) {
  EXPECT_DOUBLE_EQ(aimd_aggressiveness(0.31), 0.31);
  EXPECT_THROW((void)aimd_aggressiveness(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace slowcc::analysis
