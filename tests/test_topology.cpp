#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace slowcc::net {
namespace {

struct Capture final : PacketHandler {
  std::vector<Packet> received;
  void handle_packet(const Packet& p) override { received.push_back(std::move(p)); }
};

TEST(Node, AttachDetachPorts) {
  Node n(0);
  Capture h;
  n.attach(5, h);
  EXPECT_THROW(n.attach(5, h), std::logic_error);
  n.detach(5);
  n.attach(5, h);  // reattach works after detach
}

TEST(Node, AllocatePortIsUnique) {
  Node n(0);
  const PortId p1 = n.allocate_port();
  const PortId p2 = n.allocate_port();
  EXPECT_NE(p1, p2);
}

TEST(Node, UndeliverableCountsMissingHandlerAndRoute) {
  Node n(0);
  Packet to_me;
  to_me.dst_node = 0;
  to_me.dst_port = 42;  // no handler
  n.deliver(std::move(to_me));
  Packet transit;
  transit.dst_node = 9;  // no route
  n.deliver(std::move(transit));
  EXPECT_EQ(n.undeliverable_count(), 2u);
}

TEST(Topology, RoutesAcrossMultiHopChain) {
  sim::Simulator sim;
  Topology topo(sim);
  Node& a = topo.add_node("a");
  Node& r1 = topo.add_node("r1");
  Node& r2 = topo.add_node("r2");
  Node& b = topo.add_node("b");
  topo.add_duplex(a, r1, 10e6, sim::Time::millis(1), 100);
  topo.add_duplex(r1, r2, 10e6, sim::Time::millis(1), 100);
  topo.add_duplex(r2, b, 10e6, sim::Time::millis(1), 100);
  topo.compute_routes();

  Capture sink;
  b.attach(1, sink);
  Packet p;
  p.src_node = a.id();
  p.dst_node = b.id();
  p.dst_port = 1;
  a.deliver(std::move(p));
  sim.run();
  ASSERT_EQ(sink.received.size(), 1u);
}

TEST(Topology, ReverseDirectionAlsoRouted) {
  sim::Simulator sim;
  Topology topo(sim);
  Node& a = topo.add_node();
  Node& r = topo.add_node();
  Node& b = topo.add_node();
  topo.add_duplex(a, r, 10e6, sim::Time::millis(1), 100);
  topo.add_duplex(r, b, 10e6, sim::Time::millis(1), 100);
  topo.compute_routes();

  Capture at_a;
  a.attach(1, at_a);
  Packet p;
  p.src_node = b.id();
  p.dst_node = a.id();
  p.dst_port = 1;
  b.deliver(std::move(p));
  sim.run();
  EXPECT_EQ(at_a.received.size(), 1u);
}

TEST(Topology, ShortestPathPreferredOverDetour) {
  sim::Simulator sim;
  Topology topo(sim);
  // a - b - c with an extra a - d - e - c detour: BFS must pick a-b-c.
  Node& a = topo.add_node("a");
  Node& b = topo.add_node("b");
  Node& c = topo.add_node("c");
  Node& d = topo.add_node("d");
  Node& e = topo.add_node("e");
  topo.add_duplex(a, b, 10e6, sim::Time::millis(1), 100);
  auto [direct_bc, unused] = topo.add_duplex(b, c, 10e6, sim::Time::millis(1), 100);
  (void)unused;
  topo.add_duplex(a, d, 10e6, sim::Time::millis(1), 100);
  topo.add_duplex(d, e, 10e6, sim::Time::millis(1), 100);
  topo.add_duplex(e, c, 10e6, sim::Time::millis(1), 100);
  topo.compute_routes();

  Capture sink;
  c.attach(1, sink);
  Packet p;
  p.src_node = a.id();
  p.dst_node = c.id();
  p.dst_port = 1;
  a.deliver(std::move(p));
  sim.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(direct_bc->stats().departures, 1u) << "short path used";
}

TEST(Topology, NodeNamesAndCount) {
  sim::Simulator sim;
  Topology topo(sim);
  Node& a = topo.add_node("alpha");
  Node& b = topo.add_node();
  EXPECT_EQ(a.name(), "alpha");
  EXPECT_EQ(b.name(), "n1");
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(&topo.node(0), &a);
}

TEST(Topology, UnreachableNodesSimplyDropTraffic) {
  sim::Simulator sim;
  Topology topo(sim);
  Node& a = topo.add_node();
  Node& b = topo.add_node();  // no links at all
  topo.compute_routes();
  Packet p;
  p.src_node = a.id();
  p.dst_node = b.id();
  a.deliver(std::move(p));
  sim.run();
  EXPECT_EQ(a.undeliverable_count(), 1u);
}

}  // namespace
}  // namespace slowcc::net
