// Scenario-spec parser/validator edge cases: malformed TOML, unknown
// keys and sections, duplicate sections, out-of-range values — every
// rejection must carry the kBadSpec code and a file:line that points
// at the offending key. A ddmin-style reducer then shrinks a broken
// spec and checks the minimal repro still gets the same pinpoint
// diagnostic. Finally, every committed file under specs/ must parse.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "sim/error.hpp"
#include "spec/scenario_spec.hpp"
#include "spec/toml.hpp"

namespace slowcc::spec {
namespace {

/// what() of the SimError raised by parsing `text`, or "" on success.
std::string error_of(const std::string& text) {
  try {
    (void)parse_scenario_spec(parse_toml(text, "test.toml"));
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.code(), sim::SimErrc::kBadSpec) << e.what();
    return e.what();
  }
  return "";
}

/// A minimal valid spec the edge cases below mutate.
constexpr const char* kValid = R"(
[scenario]
name = "edge_case"
measure_s = 10

[[flows]]
count = 2
)";

TEST(SpecParser, MinimalSpecParses) { EXPECT_EQ(error_of(kValid), ""); }

TEST(SpecParser, MalformedTomlIsRejectedWithFileAndLine) {
  // Unterminated string (line 3 of the document).
  EXPECT_NE(error_of("[scenario]\nname = \"x\nmeasure_s = 1\n")
                .find("test.toml:2"),
            std::string::npos);
  // Unclosed table header.
  EXPECT_NE(error_of("[scenario\nname = \"x\"\n").find("test.toml:1"),
            std::string::npos);
  // A key with no value.
  EXPECT_NE(error_of("[scenario]\nname =\n").find("test.toml:2"),
            std::string::npos);
  // Trailing garbage after a value.
  EXPECT_NE(error_of("[scenario]\nmeasure_s = 1 oops\n")
                .find("test.toml:2"),
            std::string::npos);
  // Nested arrays are out of the subset.
  EXPECT_NE(error_of("[scenario]\nx = [[1], [2]]\n").find("test.toml:2"),
            std::string::npos);
}

TEST(SpecParser, ErrorsCarryTheBadSpecCode) {
  const std::string msg = error_of("[scenario\n");
  EXPECT_NE(msg.find("[bad-spec]"), std::string::npos) << msg;
}

TEST(SpecParser, UnknownKeyReportsItsOwnLine) {
  const std::string text =
      "[scenario]\n"            // line 1
      "name = \"x\"\n"          // line 2
      "measure_s = 10\n"        // line 3
      "bogus_knob = 3\n"        // line 4 <- offending key
      "\n"
      "[[flows]]\n"
      "count = 1\n";
  const std::string msg = error_of(text);
  EXPECT_NE(msg.find("unknown key 'bogus_knob'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("test.toml:4"), std::string::npos) << msg;
}

TEST(SpecParser, UnknownSectionIsRejectedByName) {
  const std::string msg = error_of(std::string(kValid) + "[faultz]\nx = 1\n");
  EXPECT_NE(msg.find("unknown section [faultz]"), std::string::npos) << msg;
}

TEST(SpecParser, DuplicateSectionsAreRejected) {
  const std::string msg = error_of(std::string(kValid) +
                                   "[topology]\nbottleneck_mbps = 10\n"
                                   "[topology]\nqueue = \"red\"\n");
  EXPECT_NE(msg.find("duplicate"), std::string::npos) << msg;
}

TEST(SpecParser, DuplicateKeysInOneSectionAreRejected) {
  const std::string msg =
      error_of("[scenario]\nname = \"x\"\nname = \"y\"\nmeasure_s = 1\n");
  EXPECT_NE(msg.find("duplicate"), std::string::npos) << msg;
  EXPECT_NE(msg.find("test.toml:3"), std::string::npos) << msg;
}

TEST(SpecParser, MixingTableAndArrayTableIsRejected) {
  const std::string msg =
      error_of(std::string(kValid) + "[traffic]\nkind = \"cbr\"\n");
  // [traffic] is only known as [[traffic]]; the typo must fail loudly.
  EXPECT_NE(msg.find("[traffic]"), std::string::npos) << msg;
}

TEST(SpecParser, OutOfRangeValuesAreValidationErrors) {
  EXPECT_NE(error_of("[scenario]\nname = \"x\"\nmeasure_s = -5\n"
                     "[[flows]]\ncount = 1\n")
                .find("must be > 0"),
            std::string::npos);
  EXPECT_NE(error_of(std::string(kValid) +
                     "[topology]\nbottleneck_mbps = 0\n")
                .find("must be > 0"),
            std::string::npos);
  EXPECT_NE(error_of(std::string(kValid) +
                     "[[traffic]]\nkind = \"media\"\nrungs_mbps = [1.0]\n"
                     "up_fraction = 1.5\n")
                .find("must be in [0, 1]"),
            std::string::npos);
  EXPECT_NE(error_of("[scenario]\nname = \"x\"\nmeasure_s = 10\n"
                     "[[flows]]\ncount = 2.5\n")
                .find("non-negative integer"),
            std::string::npos);
}

TEST(SpecParser, UndeclaredParamReferenceIsRejected) {
  const std::string msg = error_of(
      "[scenario]\nname = \"x\"\nmeasure_s = 10\n"
      "[[flows]]\ncount = \"$nope\"\n");
  EXPECT_NE(msg.find("\"$nope\" does not name a [params] entry"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("test.toml:5"), std::string::npos) << msg;
}

TEST(SpecParser, ReservedAlgorithmParamIsRejected) {
  const std::string msg = error_of(
      "[scenario]\nname = \"x\"\nmeasure_s = 10\n"
      "[params]\nalgorithm = 1\n"
      "[[flows]]\ncount = 1\n");
  EXPECT_NE(msg.find("reserved"), std::string::npos) << msg;
}

TEST(SpecParser, SpecsWithoutFlowsAreRejected) {
  const std::string msg =
      error_of("[scenario]\nname = \"x\"\nmeasure_s = 10\n");
  EXPECT_NE(msg.find("no [[flows]]"), std::string::npos) << msg;
}

TEST(SpecParser, UnsupportedVersionIsRejected) {
  const std::string msg = error_of(
      "[scenario]\nname = \"x\"\nversion = 2\nmeasure_s = 10\n"
      "[[flows]]\ncount = 1\n");
  EXPECT_NE(msg.find("unsupported spec version 2"), std::string::npos) << msg;
}

// ---- ddmin-style minimal repro -------------------------------------

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Line-granular ddmin: repeatedly delete any single line whose
/// removal preserves the target diagnostic, to a 1-minimal fixpoint.
std::vector<std::string> ddmin_lines(std::vector<std::string> lines,
                                     const std::string& needle) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::vector<std::string> candidate = lines;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (error_of(join_lines(candidate)).find(needle) !=
          std::string::npos) {
        lines = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return lines;
}

TEST(SpecParser, DdminShrinksToAMinimalReproWithAccurateLine) {
  // A realistic ~30-line spec with one bad value buried in the middle.
  const std::string broken = R"([scenario]
name = "ddmin_case"
description = "bigger spec with one poisoned key"
version = 1
warmup_s = 5
measure_s = 40

[params]
jitter_ms = 8

[topology]
bottleneck_mbps = 10
bottleneck_delay_ms = 23
queue = "red"

[[flows]]
algorithm = "$algorithm"
count = 4
start_s = 0

[[traffic]]
kind = "cbr"
rate_mbps = -3

[[faults]]
kind = "delay_jitter"
at_s = 5
end_s = 45
interval_s = 0.25
amplitude_ms = "$jitter_ms"

[metrics]
throughput = true
)";
  // Pin the full diagnostic, not just the key name — a looser needle
  // would let the reducer drift to the "unknown key 'rate_mbps'"
  // error that appears once [[traffic]] itself is deleted.
  const std::string needle = "key 'rate_mbps': value -3.000000 must be > 0";
  ASSERT_NE(error_of(broken).find(needle), std::string::npos);

  const std::vector<std::string> minimal =
      ddmin_lines(split_lines(broken), needle);
  const auto nonblank = static_cast<std::size_t>(std::accumulate(
      minimal.begin(), minimal.end(), 0, [](int acc, const std::string& l) {
        return acc + (l.empty() ? 0 : 1);
      }));
  // [scenario]/name/measure_s + [[traffic]]/kind/rate_mbps is all the
  // failure needs; the reducer must get down to that neighborhood.
  EXPECT_LE(nonblank, 6u) << join_lines(minimal);

  // The diagnostic must still pinpoint the offending key's 1-based
  // line in the *minimized* document.
  const std::string msg = error_of(join_lines(minimal));
  std::size_t bad_line = 0;
  for (std::size_t i = 0; i < minimal.size(); ++i) {
    if (minimal[i].find("rate_mbps") != std::string::npos) bad_line = i + 1;
  }
  ASSERT_NE(bad_line, 0u);
  EXPECT_NE(msg.find("test.toml:" + std::to_string(bad_line)),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("must be > 0"), std::string::npos) << msg;
}

// ---- the committed library ----------------------------------------

TEST(SpecLibrary, EveryCommittedSpecParsesAndMatchesItsFileStem) {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(SLOWCC_SPECS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".toml") {
      files.push_back(entry.path().string());
    }
  }
  EXPECT_GE(files.size(), 10u) << "specs/ library shrank below the floor";
  for (const std::string& file : files) {
    const ScenarioSpec spec = parse_scenario_file(file);
    EXPECT_EQ(spec.scenario.name,
              std::filesystem::path(file).stem().string());
    EXPECT_FALSE(spec.scenario.description.empty()) << file;
    EXPECT_TRUE(spec.uses_algorithm_hole())
        << file << " pins every algorithm; sweeps over --algorithms "
        << "would silently not vary anything";
  }
}

}  // namespace
}  // namespace slowcc::spec
