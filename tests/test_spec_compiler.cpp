// Scenario compiler + registry binding: a compiled spec must run
// deterministically (same seed => same event trace), honor parameter
// overrides and the "$algorithm" hole, and behave as a first-class
// exp:: experiment (run_trial dispatch, error rows, collision
// rejection).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "exp/registry.hpp"
#include "sim/error.hpp"
#include "spec/compiler.hpp"
#include "spec/scenario_spec.hpp"
#include "spec/spec_registry.hpp"
#include "spec/toml.hpp"

namespace slowcc::spec {
namespace {

ScenarioSpec from_text(const std::string& text,
                       const std::string& source = "mem.toml") {
  return parse_scenario_spec(parse_toml(text, source));
}

/// A small but non-trivial scenario: algorithm hole, a declared param
/// used by a fault, cross traffic, fairness metrics.
constexpr const char* kScenario = R"(
[scenario]
name = "compiler_case"
description = "compiler unit-test scenario"
warmup_s = 2
measure_s = 6

[params]
cbr_mbps = 3
burst_loss = 0.4

[topology]
bottleneck_mbps = 10
bottleneck_delay_ms = 23

[[flows]]
algorithm = "$algorithm"
count = 2
start_s = 0
start_spread_s = 0.5

[[traffic]]
kind = "cbr"
rate_mbps = "$cbr_mbps"
start_s = 1

[[faults]]
kind = "impairment"
at_s = 0
loss_bad = "$burst_loss"

[metrics]
throughput = true
loss = true
fairness = true
)";

SpecRunOptions fast_opts() {
  SpecRunOptions opt;
  opt.seed = 42;
  opt.duration_scale = 0.05;
  return opt;
}

TEST(SpecCompiler, SameSeedSameTrace) {
  const ScenarioSpec spec = from_text(kScenario);
  const SpecRunResult a = run_scenario(spec, fast_opts());
  const SpecRunResult b = run_scenario(spec, fast_opts());
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.row.metrics.size(), b.row.metrics.size());
  for (std::size_t i = 0; i < a.row.metrics.size(); ++i) {
    EXPECT_EQ(a.row.metrics[i].first, b.row.metrics[i].first);
    EXPECT_EQ(a.row.metrics[i].second, b.row.metrics[i].second);
  }
}

TEST(SpecCompiler, DifferentSeedsDiverge) {
  const ScenarioSpec spec = from_text(kScenario);
  SpecRunOptions other = fast_opts();
  other.seed = 43;
  EXPECT_NE(run_scenario(spec, fast_opts()).trace_digest,
            run_scenario(spec, other).trace_digest);
}

TEST(SpecCompiler, RowMetricsMatchTheAdvertisedNamesInOrder) {
  const ScenarioSpec spec = from_text(kScenario);
  const SpecRunResult result = run_scenario(spec, fast_opts());
  const std::vector<std::string> names = spec_metric_names(spec);
  ASSERT_EQ(result.row.metrics.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(result.row.metrics[i].first, names[i]);
  }
}

TEST(SpecCompiler, ParamOverrideChangesTheRun) {
  const ScenarioSpec spec = from_text(kScenario);
  SpecRunOptions loud = fast_opts();
  loud.params.emplace_back("cbr_mbps", 8.0);
  EXPECT_NE(run_scenario(spec, fast_opts()).trace_digest,
            run_scenario(spec, loud).trace_digest);
}

TEST(SpecCompiler, UnknownParamOverrideIsRejected) {
  const ScenarioSpec spec = from_text(kScenario);
  SpecRunOptions opt = fast_opts();
  opt.params.emplace_back("not_a_param", 1.0);
  try {
    (void)run_scenario(spec, opt);
    FAIL() << "unknown override accepted";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.code(), sim::SimErrc::kBadSpec);
    EXPECT_NE(std::string(e.what()).find("not_a_param"), std::string::npos);
  }
}

TEST(SpecCompiler, OutOfRangeSweptValueIsRejectedAtCompileTime) {
  // burst_loss is a unit-interval field; a swept value of 1.5 must be
  // rejected exactly like a literal 1.5 would have been at parse time.
  const ScenarioSpec spec = from_text(kScenario);
  SpecRunOptions opt = fast_opts();
  opt.params.emplace_back("burst_loss", 1.5);
  try {
    (void)run_scenario(spec, opt);
    FAIL() << "out-of-range swept value accepted";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.code(), sim::SimErrc::kBadSpec);
    EXPECT_NE(std::string(e.what()).find("must be in [0, 1]"),
              std::string::npos);
  }
}

TEST(SpecCompiler, AlgorithmHoleIsFilledPerRun) {
  const ScenarioSpec spec = from_text(kScenario);
  EXPECT_TRUE(spec.uses_algorithm_hole());
  SpecRunOptions tfrc = fast_opts();
  tfrc.algorithm = "tfrc:6";
  EXPECT_NE(run_scenario(spec, fast_opts()).trace_digest,
            run_scenario(spec, tfrc).trace_digest);
}

TEST(SpecCompiler, MalformedAlgorithmTokenReportsTheFlowGroupLine) {
  const ScenarioSpec spec = from_text(kScenario);
  SpecRunOptions opt = fast_opts();
  opt.algorithm = "warp-drive";
  try {
    (void)run_scenario(spec, opt);
    FAIL() << "bogus algorithm token accepted";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.code(), sim::SimErrc::kBadSpec);
    EXPECT_NE(std::string(e.what()).find("mem.toml:"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("warp-drive"), std::string::npos);
  }
}

TEST(SpecCompiler, DurationScaleScalesTimelineNotMagnitudes) {
  // At a smaller scale the run executes fewer events but still
  // completes with the full metric set.
  const ScenarioSpec spec = from_text(kScenario);
  SpecRunOptions tiny = fast_opts();
  tiny.duration_scale = 0.02;
  const SpecRunResult big = run_scenario(spec, fast_opts());
  const SpecRunResult small = run_scenario(spec, tiny);
  EXPECT_LT(small.events, big.events);
  EXPECT_EQ(small.row.metrics.size(), big.row.metrics.size());
}

// ---- registry binding ---------------------------------------------

TEST(SpecRegistry, RegisteredSpecDispatchesThroughRunTrial) {
  const std::string text = std::string(kScenario);
  const std::string renamed =
      "[scenario]\nname = \"spec_registry_case\"" +
      text.substr(text.find("\ndescription"));
  const RegisteredScenario reg = register_scenario(
      std::make_shared<const ScenarioSpec>(from_text(renamed)));
  EXPECT_EQ(reg.experiment, "spec_registry_case");
  EXPECT_TRUE(reg.uses_algorithm_hole);

  const exp::Experiment* e = exp::find_experiment("spec_registry_case");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->metrics, spec_metric_names(*reg.spec));
  ASSERT_EQ(e->params.size(), 2u);
  EXPECT_EQ(e->params[0], "cbr_mbps=3");
  EXPECT_EQ(e->params[1], "burst_loss=0.4");

  exp::TrialDesc d;
  d.experiment = "spec_registry_case";
  d.algorithm = "tcp";
  d.seed = 7;
  d.duration_scale = 0.05;
  d.params.emplace_back("cbr_mbps", 5.0);
  const exp::Row row = exp::run_trial(d);
  EXPECT_TRUE(row.outcome.ok) << row.error;
  EXPECT_EQ(row.experiment, "spec_registry_case");
  EXPECT_EQ(row.metrics.size(), e->metrics.size());

  // A bad algorithm token becomes an error row (not an exception) with
  // the spec taxonomy code — one broken cell cannot abort a sweep.
  d.algorithm = "nonsense";
  const exp::Row bad = exp::run_trial(d);
  EXPECT_FALSE(bad.outcome.ok);
  EXPECT_EQ(bad.outcome.error_kind, "bad-spec");
}

TEST(SpecRegistry, NameCollisionsAreRejected) {
  const std::string text = std::string(kScenario);
  const std::string renamed =
      "[scenario]\nname = \"spec_collision_case\"" +
      text.substr(text.find("\ndescription"));
  (void)register_scenario(
      std::make_shared<const ScenarioSpec>(from_text(renamed)));
  try {
    (void)register_scenario(
        std::make_shared<const ScenarioSpec>(from_text(renamed)));
    FAIL() << "duplicate registration accepted";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.code(), sim::SimErrc::kBadSpec);
    EXPECT_NE(std::string(e.what()).find("collides"), std::string::npos);
  }
  // Colliding with a built-in experiment is the same error.
  const std::string builtin =
      "[scenario]\nname = \"fairness\"" +
      text.substr(text.find("\ndescription"));
  EXPECT_THROW((void)register_scenario(std::make_shared<const ScenarioSpec>(
                   from_text(builtin))),
               sim::SimError);
}

}  // namespace
}  // namespace slowcc::spec
