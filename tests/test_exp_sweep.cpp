// End-to-end sweep subsystem tests: spec parsing/expansion, the
// experiment registry, and — the property everything else leans on —
// byte-identical results whether trials run on 1 worker or 8.
#include <gtest/gtest.h>

#include <set>

#include "exp/aggregator.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/registry.hpp"
#include "exp/result_sink.hpp"
#include "exp/sweep_spec.hpp"
#include "sim/error.hpp"

namespace slowcc {
namespace {

TEST(ExpSweepSpec, ParseTextRoundTrip) {
  const exp::SweepSpec spec = exp::SweepSpec::parse_text(
      "# figure 14 grid\n"
      "experiment = oscillation\n"
      "algorithms = tcp:8, tcp:2, tfrc:6\n"
      "sweep on_off_length = 0.05, 0.2, 0.8\n"
      "set cbr_peak_fraction = 0.5\n"
      "trials = 4\n"
      "base_seed = 7\n"
      "duration_scale = 0.1\n");
  EXPECT_EQ(spec.experiment, "oscillation");
  ASSERT_EQ(spec.algorithms.size(), 3u);
  EXPECT_EQ(spec.algorithms[1], "tcp:2");
  EXPECT_EQ(spec.sweep_param, "on_off_length");
  ASSERT_EQ(spec.sweep_values.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.fixed.at("cbr_peak_fraction"), 0.5);
  EXPECT_EQ(spec.trials, 4);
  EXPECT_EQ(spec.base_seed, 7u);
  EXPECT_EQ(spec.trial_count(), 36u);
}

TEST(ExpSweepSpec, ExpandOrderAndCells) {
  exp::SweepSpec spec;
  spec.experiment = "static_compat";
  spec.algorithms = {"tcp", "tfrc:6"};
  spec.trials = 2;
  const auto trials = spec.expand();
  ASSERT_EQ(trials.size(), 4u);
  // Algorithm is the outer axis, trial the inner; ids follow order.
  EXPECT_EQ(trials[0].algorithm, "tcp");
  EXPECT_EQ(trials[1].algorithm, "tcp");
  EXPECT_EQ(trials[2].algorithm, "tfrc:6");
  EXPECT_EQ(trials[1].trial_index, 1);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].trial_id, i);
  }
  // Replicates share the cell, different algorithms do not.
  EXPECT_EQ(trials[0].cell_key(), trials[1].cell_key());
  EXPECT_NE(trials[0].cell_key(), trials[2].cell_key());
  EXPECT_NE(trials[0].seed, trials[1].seed);
}

TEST(ExpSweepSpec, RejectsMalformedInput) {
  EXPECT_THROW(exp::SweepSpec::parse_text("bogus_key = 1\n"), sim::SimError);
  EXPECT_THROW(exp::SweepSpec::parse_text("trials\n"), sim::SimError);
  EXPECT_THROW((void)exp::parse_double_list("1,x,3"), sim::SimError);
  exp::SweepSpec spec;
  spec.trials = 0;
  EXPECT_THROW((void)spec.expand(), sim::SimError);
  spec.trials = 1;
  spec.sweep_param = "x";  // values missing
  EXPECT_THROW((void)spec.expand(), sim::SimError);
}

TEST(ExpRegistry, EveryExperimentIsRunnable) {
  // Smoke every registered adapter at a tiny duration scale; no adapter
  // may throw (errors must come back inside the Row).
  for (const exp::Experiment& e : exp::experiments()) {
    exp::TrialDesc d;
    d.experiment = e.name;
    d.algorithm = e.name == "fairness" ? "tcp:2+tfrc:6" : "tcp";
    d.seed = 3;
    d.duration_scale = 0.01;
    const exp::Row row = exp::run_trial(d);
    EXPECT_EQ(row.experiment, e.name) << e.name;
    EXPECT_TRUE(row.error.empty()) << e.name << ": " << row.error;
    EXPECT_FALSE(row.metrics.empty()) << e.name;
    // Declared metrics and emitted metrics must agree (by name; values
    // at this tiny duration scale may legitimately be degenerate).
    for (const std::string& name : e.metrics) {
      bool present = false;
      for (const auto& [k, v] : row.metrics) {
        (void)v;
        if (k == name) present = true;
      }
      EXPECT_TRUE(present) << e.name << " missing metric " << name;
    }
  }
}

TEST(ExpRegistry, BadTokensBecomeRowErrors) {
  exp::TrialDesc d;
  d.experiment = "static_compat";
  d.algorithm = "warp_drive";
  d.duration_scale = 0.01;
  const exp::Row row = exp::run_trial(d);
  EXPECT_FALSE(row.error.empty());
  EXPECT_TRUE(row.metrics.empty());

  d.algorithm = "iiad:c";  // ':c' is tfrc-only
  EXPECT_FALSE(exp::run_trial(d).error.empty());
}

TEST(ExpRunner, JobsOneAndEightAreByteIdentical) {
  // The acceptance property of the whole subsystem: scheduling must not
  // leak into results. Run a real 2x2x2-trial grid both ways and
  // byte-compare the full serialization of rows and aggregates.
  exp::SweepSpec spec;
  spec.experiment = "static_compat";
  spec.algorithms = {"tcp", "tfrc:6"};
  spec.assign("bandwidths_mbps", "10,15");
  spec.trials = 2;
  spec.duration_scale = 0.02;
  const auto trials = spec.expand();
  ASSERT_EQ(trials.size(), 8u);

  const std::vector<exp::Row> serial = exp::ParallelRunner(1).run(trials);
  const std::vector<exp::Row> parallel = exp::ParallelRunner(8).run(trials);
  for (const exp::Row& r : serial) {
    EXPECT_TRUE(r.error.empty()) << r.cell << ": " << r.error;
  }
  EXPECT_EQ(exp::rows_to_jsonl(serial), exp::rows_to_jsonl(parallel));
  EXPECT_EQ(exp::cells_to_jsonl(exp::aggregate(serial)),
            exp::cells_to_jsonl(exp::aggregate(parallel)));
}

TEST(ExpRunner, ExceptionsBecomeRowsNotCrashes) {
  exp::SweepSpec spec;
  spec.experiment = "static_compat";
  spec.algorithms = {"nonsense"};
  spec.trials = 3;
  const std::vector<exp::Row> rows =
      exp::ParallelRunner(4).run(spec.expand());
  ASSERT_EQ(rows.size(), 3u);
  for (const exp::Row& r : rows) {
    EXPECT_FALSE(r.error.empty());
  }
  const auto cells = exp::aggregate(rows);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].errors, 3u);
  EXPECT_EQ(cells[0].trials, 0u);
}

}  // namespace
}  // namespace slowcc
