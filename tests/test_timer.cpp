#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace slowcc::sim {
namespace {

// Timer rides EventQueue's FIFO tie-break at equal timestamps: a
// rearm (cancel + fresh schedule) mints a new sequence number and so
// moves the timer behind existing events at the same deadline. These
// tests pin that contract on both engines, because transport agents
// (retransmit timers rearmed every packet) depend on it for
// deterministic traces.
class TimerTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  Simulator sim{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(
    AllEngines, TimerTest,
    ::testing::Values(EngineKind::kHeap, EngineKind::kWheel),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return engine_kind_name(info.param);
    });

TEST_P(TimerTest, EqualDeadlinesFireInArmingOrder) {
  std::vector<int> fired;
  Timer t1(sim, [&] { fired.push_back(1); });
  Timer t2(sim, [&] { fired.push_back(2); });
  Timer t3(sim, [&] { fired.push_back(3); });
  t2.schedule_at(Time::millis(5));
  t1.schedule_at(Time::millis(5));
  t3.schedule_at(Time::millis(5));
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{2, 1, 3}));
}

TEST_P(TimerTest, RescheduleMovesTimerBehindEqualTimePeers) {
  std::vector<std::string> order;
  Timer a(sim, [&] { order.push_back("a"); });
  Timer b(sim, [&] { order.push_back("b"); });
  a.schedule_at(Time::millis(5));
  b.schedule_at(Time::millis(5));
  // Rearming at the unchanged deadline is NOT a no-op: it replaces the
  // event and therefore surrenders a's place in the tie.
  a.schedule_at(Time::millis(5));
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"b", "a"}));
}

TEST_P(TimerTest, CancelDoesNotDisturbRemainingTieOrder) {
  std::vector<int> fired;
  Timer t1(sim, [&] { fired.push_back(1); });
  Timer t2(sim, [&] { fired.push_back(2); });
  Timer t3(sim, [&] { fired.push_back(3); });
  t1.schedule_at(Time::millis(7));
  t2.schedule_at(Time::millis(7));
  t3.schedule_at(Time::millis(7));
  t2.cancel();
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST_P(TimerTest, CancelThenRearmAtSameDeadlineGoesToBack) {
  std::vector<int> fired;
  Timer t1(sim, [&] { fired.push_back(1); });
  Timer t2(sim, [&] { fired.push_back(2); });
  t1.schedule_at(Time::millis(3));
  t2.schedule_at(Time::millis(3));
  t1.cancel();
  t1.schedule_at(Time::millis(3));
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
}

TEST_P(TimerTest, RescheduleToEarlierDeadlineFiresEarlier) {
  std::vector<int> fired;
  Timer t1(sim, [&] { fired.push_back(1); });
  Timer t2(sim, [&] { fired.push_back(2); });
  t1.schedule_at(Time::millis(10));
  t2.schedule_at(Time::millis(5));
  t1.schedule_at(Time::millis(2));
  EXPECT_EQ(t1.deadline(), Time::millis(2));
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

// A zero-delay rearm from inside the callback fires at the *same*
// timestamp but behind every event already pending there — on the
// wheel this exercises the schedule-behind-the-horizon path, since the
// slot containing `now` has already been drained.
TEST_P(TimerTest, ZeroDelayRearmFiresAfterEqualTimePeers) {
  std::vector<std::string> order;
  int a_fires = 0;
  Timer* a_ptr = nullptr;
  Timer a(sim, [&] {
    order.push_back("a");
    if (++a_fires == 1) a_ptr->schedule_in(Time::nanos(0));
  });
  a_ptr = &a;
  Timer b(sim, [&] { order.push_back("b"); });
  a.schedule_at(Time::millis(5));
  b.schedule_at(Time::millis(5));
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a"}));
  EXPECT_EQ(sim.now(), Time::millis(5));
}

TEST_P(TimerTest, PendingTracksArmAndFire) {
  Timer t(sim, [] {});
  EXPECT_FALSE(t.pending());
  t.schedule_in(Time::millis(1));
  EXPECT_TRUE(t.pending());
  sim.run();
  EXPECT_FALSE(t.pending());
}

}  // namespace
}  // namespace slowcc::sim
