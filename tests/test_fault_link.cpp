// Dynamic-link semantics: up/down, bandwidth re-timing, delay changes,
// observer lifecycle, and the wire-model hook.
#include <gtest/gtest.h>

#include "net/drop_tail_queue.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/error.hpp"
#include "sim/simulator.hpp"

namespace slowcc::net {
namespace {

struct Capture final : PacketHandler {
  std::vector<std::pair<sim::Time, Packet>> received;
  sim::Simulator* sim = nullptr;
  void handle_packet(const Packet& p) override {
    received.emplace_back(sim->now(), std::move(p));
  }
};

struct Rig {
  sim::Simulator sim;
  Node a{0, "a"};
  Node b{1, "b"};
  Capture sink;
  Link link;

  explicit Rig(double bw = 8e6, sim::Time delay = sim::Time::millis(10),
               std::size_t qlen = 16)
      : link(sim, a, b, bw, delay, std::make_unique<DropTailQueue>(qlen)) {
    sink.sim = &sim;
    b.attach(1, sink);
  }

  Packet packet(std::int64_t seq, std::int64_t size = 1000) {
    Packet p;
    p.src_node = 0;
    p.dst_node = 1;
    p.dst_port = 1;
    p.seq = seq;
    p.size_bytes = size;
    return p;
  }
};

struct RecordingObserver final : LinkObserver {
  std::vector<DropReason> drops;
  int state_changes = 0;
  int departs = 0;
  void on_drop(const Packet&, DropReason r) override { drops.push_back(r); }
  void on_depart(const Packet&) override { ++departs; }
  void on_state_change(const Link&) override { ++state_changes; }
};

TEST(DynamicLink, DownDropsInFlightAndQueuedWithLinkDownReason) {
  Rig rig;  // 1 ms serialization per packet
  RecordingObserver obs;
  rig.link.add_observer(&obs);
  for (int i = 0; i < 4; ++i) rig.link.send(rig.packet(i));
  // At 0.5 ms: packet 0 is mid-serialization, 1-3 queued.
  rig.sim.schedule_at(sim::Time::micros(500), [&] { rig.link.set_down(); });
  rig.sim.run();
  EXPECT_TRUE(rig.sink.received.empty());
  EXPECT_EQ(rig.link.stats().drops_link_down, 4u);
  EXPECT_EQ(rig.link.stats().departures, 0u);
  EXPECT_FALSE(rig.link.transmitting());
  EXPECT_TRUE(rig.link.queue().empty());
  ASSERT_EQ(obs.drops.size(), 4u);
  for (auto r : obs.drops) EXPECT_EQ(r, DropReason::kLinkDown);
  EXPECT_EQ(obs.state_changes, 1);
  EXPECT_FALSE(rig.link.is_up());
}

TEST(DynamicLink, ArrivalsWhileDownAreDropped) {
  Rig rig;
  rig.link.set_down();
  rig.link.send(rig.packet(0));
  rig.sim.run();
  EXPECT_EQ(rig.link.stats().arrivals, 1u);
  EXPECT_EQ(rig.link.stats().drops_link_down, 1u);
  EXPECT_TRUE(rig.sink.received.empty());
}

TEST(DynamicLink, PacketAlreadyPropagatingStillDelivers) {
  Rig rig;
  rig.link.send(rig.packet(0));
  // Serialization ends at 1 ms; kill the link at 5 ms, mid-propagation.
  rig.sim.schedule_at(sim::Time::millis(5), [&] { rig.link.set_down(); });
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 1u);
  EXPECT_EQ(rig.sink.received[0].first, sim::Time::millis(11));
}

TEST(DynamicLink, UpDownUpResumesTraffic) {
  Rig rig;
  rig.link.set_down();
  rig.link.set_down();  // idempotent
  rig.link.set_up();
  rig.link.set_up();  // idempotent
  rig.link.send(rig.packet(0));
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 1u);
  EXPECT_TRUE(rig.link.is_up());
}

TEST(DynamicLink, BandwidthChangeRetimesInFlightPacket) {
  // 8 kb/s: a 1000 B packet takes exactly 1 s to serialize.
  Rig rig(8e3, sim::Time());
  rig.link.send(rig.packet(0));
  // At 0.25 s, 2000 of 8000 bits are out; doubling the rate should
  // finish the remaining 6000 bits in 0.375 s => delivery at 0.625 s.
  rig.sim.schedule_at(sim::Time::seconds(0.25),
                      [&] { rig.link.set_bandwidth(16e3); });
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 1u);
  EXPECT_EQ(rig.sink.received[0].first, sim::Time::seconds(0.625));
  EXPECT_EQ(rig.link.bandwidth_bps(), 16e3);
}

TEST(DynamicLink, BandwidthDecreaseStretchesInFlightPacket) {
  Rig rig(8e3, sim::Time());
  rig.link.send(rig.packet(0));
  // At 0.5 s, 4000 bits remain; halving the rate takes 1 s more.
  rig.sim.schedule_at(sim::Time::seconds(0.5),
                      [&] { rig.link.set_bandwidth(4e3); });
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 1u);
  EXPECT_EQ(rig.sink.received[0].first, sim::Time::seconds(1.5));
}

TEST(DynamicLink, DelayChangeAppliesOnlyToLaterDepartures) {
  Rig rig;  // 1 ms serialization, 10 ms propagation
  rig.link.send(rig.packet(0));
  rig.link.send(rig.packet(1));
  // Packet 0 departs at 1 ms with the old delay even though the change
  // lands at 1.5 ms; packet 1 departs at 2 ms with the new delay.
  rig.sim.schedule_at(sim::Time::micros(1500), [&] {
    rig.link.set_propagation_delay(sim::Time::millis(20));
  });
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 2u);
  EXPECT_EQ(rig.sink.received[0].first, sim::Time::millis(11));
  EXPECT_EQ(rig.sink.received[1].first, sim::Time::millis(22));
}

TEST(DynamicLink, StateChangeObserverFiresForEveryKnob) {
  Rig rig;
  RecordingObserver obs;
  rig.link.add_observer(&obs);
  rig.link.set_bandwidth(16e6);
  rig.link.set_propagation_delay(sim::Time::millis(5));
  rig.link.set_down();
  rig.link.set_up();
  EXPECT_EQ(obs.state_changes, 4);
  // No-op changes do not notify.
  rig.link.set_bandwidth(16e6);
  rig.link.set_propagation_delay(sim::Time::millis(5));
  rig.link.set_up();
  EXPECT_EQ(obs.state_changes, 4);
}

TEST(DynamicLink, RejectsInvalidReconfiguration) {
  Rig rig;
  EXPECT_THROW(rig.link.set_bandwidth(0.0), sim::SimError);
  EXPECT_THROW(rig.link.set_bandwidth(-1.0), std::invalid_argument);
  EXPECT_THROW(rig.link.set_propagation_delay(sim::Time::millis(-1)),
               sim::SimError);
  try {
    rig.link.set_bandwidth(0.0);
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.code(), sim::SimErrc::kBadConfig);
    EXPECT_EQ(e.component(), "Link");
  }
}

TEST(DynamicLink, DoubleObserverRegistrationThrows) {
  Rig rig;
  RecordingObserver obs;
  rig.link.add_observer(&obs);
  EXPECT_THROW(rig.link.add_observer(&obs), sim::SimError);
}

TEST(DynamicLink, RemoveObserverStopsCallbacks) {
  Rig rig;
  RecordingObserver obs;
  rig.link.add_observer(&obs);
  rig.link.send(rig.packet(0));
  rig.sim.run();
  EXPECT_EQ(obs.departs, 1);
  rig.link.remove_observer(&obs);
  rig.link.remove_observer(&obs);  // no-op when absent
  rig.link.send(rig.packet(1));
  rig.sim.run();
  EXPECT_EQ(obs.departs, 1);
  // Re-registration after removal is legal.
  rig.link.add_observer(&obs);
}

struct ScriptedWire final : WireModel {
  std::vector<WireVerdict> script;
  std::size_t next = 0;
  WireVerdict on_wire(const Packet&) override {
    if (next < script.size()) return script[next++];
    return WireVerdict{};
  }
};

TEST(DynamicLink, WireDropCountsAsImpairmentNotDeparture) {
  Rig rig;
  ScriptedWire wire;
  WireVerdict v;
  v.drop = true;
  wire.script.push_back(v);
  rig.link.set_wire_model(&wire);
  rig.link.send(rig.packet(0));
  rig.link.send(rig.packet(1));
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 1u);
  EXPECT_EQ(rig.sink.received[0].second.seq, 1);
  EXPECT_EQ(rig.link.stats().drops_impairment, 1u);
  EXPECT_EQ(rig.link.stats().departures, 1u);
  EXPECT_EQ(rig.link.stats().bytes_delivered, 1000);
}

TEST(DynamicLink, WireDuplicationDeliversTwoCopies) {
  Rig rig;
  ScriptedWire wire;
  WireVerdict v;
  v.duplicate = true;
  v.duplicate_delay = sim::Time::millis(1);
  wire.script.push_back(v);
  rig.link.set_wire_model(&wire);
  rig.link.send(rig.packet(7));
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 2u);
  EXPECT_EQ(rig.sink.received[0].second.seq, 7);
  EXPECT_EQ(rig.sink.received[1].second.seq, 7);
  EXPECT_EQ(rig.sink.received[1].first - rig.sink.received[0].first,
            sim::Time::millis(1));
  EXPECT_EQ(rig.link.stats().duplicates, 1u);
  EXPECT_EQ(rig.link.stats().departures, 1u);
}

TEST(DynamicLink, WireExtraDelayReordersPackets) {
  Rig rig;
  ScriptedWire wire;
  WireVerdict v;
  v.extra_delay = sim::Time::millis(5);
  wire.script.push_back(v);
  rig.link.set_wire_model(&wire);
  rig.link.send(rig.packet(0));
  rig.link.send(rig.packet(1));
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 2u);
  // Packet 0 was held 5 ms on the wire; packet 1 overtakes it.
  EXPECT_EQ(rig.sink.received[0].second.seq, 1);
  EXPECT_EQ(rig.sink.received[1].second.seq, 0);
  EXPECT_EQ(rig.link.stats().reordered, 1u);
}

}  // namespace
}  // namespace slowcc::net
