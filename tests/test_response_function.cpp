#include <gtest/gtest.h>

#include <cmath>

#include "cc/response_function.hpp"

namespace slowcc::cc {
namespace {

TEST(ResponseFunction, SimpleFormIsSqrtOnePointFiveOverP) {
  EXPECT_NEAR(simple_response_pkts_per_rtt(0.01), std::sqrt(150.0), 1e-9);
  EXPECT_NEAR(simple_response_pkts_per_rtt(1.0 / 3.0),
              std::sqrt(1.5 * 3.0), 1e-9);
}

TEST(ResponseFunction, AimdFormReducesToSimpleForTcp) {
  for (double p : {0.001, 0.01, 0.1}) {
    EXPECT_NEAR(aimd_response_pkts_per_rtt(1.0, 0.5, p),
                simple_response_pkts_per_rtt(p), 1e-9);
  }
}

TEST(ResponseFunction, PadhyeMatchesKnownValue) {
  // At p = 0.01, R = 100 ms, s = 1000 B:
  // term_ca = 0.1*sqrt(0.00667) = 0.008165
  // term_to = 0.4*min(1, 3*sqrt(0.00375))*0.01*(1+32e-4)
  //         = 0.4*0.18371*0.01*1.0032 = 0.000737
  // X = 1000/(0.008902) = 112,300 B/s approximately.
  const double x = padhye_rate_bytes_per_sec(0.01, sim::Time::millis(100), 1000);
  EXPECT_NEAR(x, 112300.0, 1500.0);
}

TEST(ResponseFunction, PadhyeMonotoneDecreasingInLoss) {
  double prev = 1e18;
  for (double p = 0.001; p < 0.5; p *= 1.5) {
    const double x = padhye_rate_bytes_per_sec(p, sim::Time::millis(50), 1000);
    EXPECT_LT(x, prev);
    prev = x;
  }
}

TEST(ResponseFunction, PadhyeScalesWithPacketSize) {
  const auto rtt = sim::Time::millis(50);
  EXPECT_NEAR(padhye_rate_bytes_per_sec(0.02, rtt, 2000),
              2.0 * padhye_rate_bytes_per_sec(0.02, rtt, 1000), 1e-6);
}

TEST(ResponseFunction, PadhyeInverseInRttAtLowLoss) {
  // At low loss the timeout term vanishes; X ~ 1/R.
  const double x1 = padhye_rate_bytes_per_sec(1e-4, sim::Time::millis(50), 1000);
  const double x2 = padhye_rate_bytes_per_sec(1e-4, sim::Time::millis(100), 1000);
  EXPECT_NEAR(x1 / x2, 2.0, 0.05);
}

TEST(ResponseFunction, PadhyeBelowSimpleAtHighLoss) {
  // Timeouts make the full model far more conservative at high p.
  const double p = 0.3;
  EXPECT_LT(padhye_pkts_per_rtt(p), simple_response_pkts_per_rtt(p));
}

TEST(ResponseFunction, PadhyeApproachesSimpleAtLowLoss) {
  const double p = 1e-5;
  EXPECT_NEAR(padhye_pkts_per_rtt(p) / simple_response_pkts_per_rtt(p), 1.0,
              0.02);
}

TEST(ResponseFunction, RejectsNonPositiveLoss) {
  EXPECT_THROW((void)simple_response_pkts_per_rtt(0.0), std::invalid_argument);
  EXPECT_THROW(
      (void)padhye_rate_bytes_per_sec(-0.1, sim::Time::millis(50), 1000),
      std::invalid_argument);
}

TEST(ResponseFunction, ExplicitTrtoHonored) {
  const auto rtt = sim::Time::millis(50);
  const double with_default =
      padhye_rate_bytes_per_sec(0.1, rtt, 1000);  // t_RTO = 4R
  const double with_bigger =
      padhye_rate_bytes_per_sec(0.1, rtt, 1000, sim::Time::seconds(1.0));
  EXPECT_LT(with_bigger, with_default);
}

}  // namespace
}  // namespace slowcc::cc
