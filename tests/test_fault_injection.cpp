// FaultScript/FaultInjector scheduling, the InvariantAuditor, and the
// acceptance scenario: a dumbbell with a mid-run blackout plus
// Gilbert-Elliott wire loss runs clean under audit and reproduces
// byte-identical LinkStats for the same seed.
#include <gtest/gtest.h>

#include "fault/fault_script.hpp"
#include "fault/impairment.hpp"
#include "fault/invariant_auditor.hpp"
#include "net/drop_tail_queue.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/oscillation_experiment.hpp"
#include "sim/error.hpp"

namespace slowcc {
namespace {

struct Rig {
  sim::Simulator sim;
  net::Node a{0, "a"};
  net::Node b{1, "b"};
  net::Link link;

  Rig() : link(sim, a, b, 8e6, sim::Time::millis(10),
               std::make_unique<net::DropTailQueue>(16)) {}
};

TEST(FaultScript, CompoundHelpersExpandToPrimitives) {
  Rig rig;
  fault::FaultScript script;
  script.blackout(rig.link, sim::Time::seconds(1.0), sim::Time::seconds(2.0))
      .flap(rig.link, sim::Time::seconds(10.0), sim::Time::millis(100),
            sim::Time::millis(400), 3)
      .bandwidth_oscillation(rig.link, sim::Time::seconds(20.0),
                             sim::Time::seconds(1.0), 8e6, 2e6, 5)
      .delay_jitter(rig.link, sim::Time::seconds(30.0),
                    sim::Time::seconds(31.0), sim::Time::millis(250),
                    sim::Time::millis(2));
  // blackout: 2, flap: 6, oscillation: 10, jitter: 4.
  EXPECT_EQ(script.size(), 22u);
}

TEST(FaultScript, RejectsNonsense) {
  Rig rig;
  fault::FaultScript script;
  EXPECT_THROW(script.blackout(rig.link, sim::Time(), sim::Time()),
               sim::SimError);
  EXPECT_THROW(script.flap(rig.link, sim::Time(), sim::Time::millis(1),
                           sim::Time::millis(1), 0),
               sim::SimError);
  EXPECT_THROW(
      script.bandwidth_oscillation(rig.link, sim::Time(),
                                   sim::Time::seconds(1.0), 0.0, 1e6, 1),
      sim::SimError);
  EXPECT_THROW(script.delay_jitter(rig.link, sim::Time::seconds(1.0),
                                   sim::Time::seconds(1.0),
                                   sim::Time::millis(10), sim::Time()),
               sim::SimError);
  EXPECT_THROW(script.bandwidth_at(rig.link, sim::Time(), -5.0),
               sim::SimError);
}

TEST(FaultInjector, AppliesTimedActions) {
  Rig rig;
  fault::FaultScript script;
  script.blackout(rig.link, sim::Time::seconds(1.0), sim::Time::seconds(0.5));
  script.bandwidth_at(rig.link, sim::Time::seconds(2.0), 2e6);
  fault::FaultInjector injector(rig.sim);
  injector.arm(script);

  rig.sim.run_until(sim::Time::seconds(1.1));
  EXPECT_FALSE(rig.link.is_up());
  rig.sim.run_until(sim::Time::seconds(1.6));
  EXPECT_TRUE(rig.link.is_up());
  rig.sim.run_until(sim::Time::seconds(3.0));
  EXPECT_EQ(rig.link.bandwidth_bps(), 2e6);
  EXPECT_EQ(injector.faults_injected(), 3u);
}

TEST(FaultInjector, DelayJitterStaysWithinAmplitudeOfBase) {
  Rig rig;
  const sim::Time base = rig.link.propagation_delay();
  const sim::Time amp = sim::Time::millis(2);
  fault::FaultScript script;
  script.delay_jitter(rig.link, sim::Time(), sim::Time::seconds(1.0),
                      sim::Time::millis(10), amp);
  fault::FaultInjector injector(rig.sim, /*seed=*/99);
  injector.arm(script);

  std::vector<sim::Time> observed;
  for (int i = 0; i < 100; ++i) {
    rig.sim.run_until(sim::Time::millis(10 * i + 5));
    observed.push_back(rig.link.propagation_delay());
  }
  bool moved = false;
  for (sim::Time d : observed) {
    EXPECT_GE(d, base - amp);
    EXPECT_LE(d, base + amp);
    if (d != base) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(InvariantAuditor, CleanLinkPasses) {
  Rig rig;
  fault::InvariantAuditor auditor(rig.sim, {.throw_on_violation = false});
  auditor.watch_link(rig.link, "l");
  net::Packet p;
  p.dst_node = 1;
  for (int i = 0; i < 5; ++i) {
    net::Packet q = p;
    rig.link.send(std::move(q));
  }
  EXPECT_EQ(auditor.check_now(), 0u);  // mid-flight: queue + in_tx counted
  rig.sim.run();
  EXPECT_EQ(auditor.check_now(), 0u);
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(InvariantAuditor, FlagsQueueBoundViolation) {
  Rig rig;
  fault::AuditorConfig cfg;
  cfg.max_queue_packets = 1;
  cfg.throw_on_violation = false;
  fault::InvariantAuditor auditor(rig.sim, cfg);
  auditor.watch_link(rig.link, "bottleneck");
  net::Packet p;
  p.dst_node = 1;
  for (int i = 0; i < 6; ++i) {
    net::Packet q = p;
    rig.link.send(std::move(q));
  }
  EXPECT_GE(auditor.check_now(), 1u);
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_NE(auditor.violations()[0].find("bottleneck"), std::string::npos);
}

TEST(InvariantAuditor, ThrowsStructuredErrorWhenConfigured) {
  Rig rig;
  fault::AuditorConfig cfg;
  cfg.max_queue_packets = 0;
  fault::InvariantAuditor auditor(rig.sim, cfg);
  auditor.watch_link(rig.link);
  net::Packet p;
  p.dst_node = 1;
  for (int i = 0; i < 3; ++i) {
    net::Packet q = p;
    rig.link.send(std::move(q));
  }
  try {
    auditor.check_now();
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.code(), sim::SimErrc::kInvariantViolation);
  }
}

TEST(InvariantAuditor, PeriodicAuditRunsUnderTheSimulator) {
  Rig rig;
  fault::InvariantAuditor auditor(rig.sim, {.period = sim::Time::millis(10)});
  auditor.watch_link(rig.link);
  auditor.start();
  rig.sim.run_until(sim::Time::seconds(1.0));
  EXPECT_GE(auditor.audits_performed(), 99u);
  auditor.stop();
}

// -- acceptance scenario -------------------------------------------

struct BlackoutRun {
  net::LinkStats stats;
  std::uint64_t audits = 0;
  std::size_t violations = 0;
  std::int64_t tcp_bytes = 0;
  std::int64_t tfrc_bytes = 0;
};

BlackoutRun run_blackout_dumbbell(std::uint64_t seed) {
  sim::Simulator sim;
  scenario::DumbbellConfig cfg;
  cfg.seed = seed;
  scenario::Dumbbell net(sim, cfg);

  auto& tcp = net.add_flow(scenario::FlowSpec::tcp());
  auto& tfrc = net.add_flow(scenario::FlowSpec::tfrc(6));
  net.add_reverse_traffic();

  // Gilbert-Elliott bursty loss on the bottleneck wire.
  fault::ImpairmentConfig imp;
  imp.loss = fault::GilbertElliottConfig{.p_good_to_bad = 0.002,
                                         .p_bad_to_good = 0.2,
                                         .loss_good = 0.0,
                                         .loss_bad = 0.3};
  fault::WireImpairment wire(imp, sim::Rng(seed));
  net.bottleneck().set_wire_model(&wire);

  // A 2 s blackout mid-run.
  fault::FaultScript script;
  script.blackout(net.bottleneck(), sim::Time::seconds(8.0),
                  sim::Time::seconds(2.0));
  fault::FaultInjector injector(sim, seed);
  injector.arm(script);

  fault::InvariantAuditor auditor(sim, {.period = sim::Time::millis(50),
                                        .throw_on_violation = false});
  auditor.watch_topology(net.topology());
  auditor.start();

  net.start_flows();
  net.finalize();
  sim.run_until(sim::Time::seconds(20.0));

  BlackoutRun out;
  out.stats = net.bottleneck().stats();
  out.audits = auditor.audits_performed();
  out.violations = auditor.violations().size();
  out.tcp_bytes = tcp.sink->bytes_received();
  out.tfrc_bytes = tfrc.sink->bytes_received();
  return out;
}

TEST(FaultAcceptance, BlackoutPlusGilbertElliottRunsCleanUnderAudit) {
  const BlackoutRun run = run_blackout_dumbbell(1);
  EXPECT_EQ(run.violations, 0u);
  EXPECT_GE(run.audits, 300u);
  // The blackout and the bursty wire both actually fired.
  EXPECT_GT(run.stats.drops_link_down, 0u);
  EXPECT_GT(run.stats.drops_impairment, 0u);
  // Traffic flowed before and after.
  EXPECT_GT(run.tcp_bytes, 0);
  EXPECT_GT(run.tfrc_bytes, 0);
}

TEST(FaultAcceptance, SameSeedReproducesByteIdenticalLinkStats) {
  const BlackoutRun a = run_blackout_dumbbell(7);
  const BlackoutRun b = run_blackout_dumbbell(7);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.tcp_bytes, b.tcp_bytes);
  EXPECT_EQ(a.tfrc_bytes, b.tfrc_bytes);

  const BlackoutRun c = run_blackout_dumbbell(8);
  EXPECT_FALSE(a.stats == c.stats);
}

// The oscillation experiment driven by real link-bandwidth faults
// (instead of CBR emulation) completes and produces sane utilization.
TEST(FaultAcceptance, LinkBandwidthOscillationModeWorks) {
  scenario::OscillationConfig cfg;
  cfg.mode = scenario::OscillationMode::kLinkBandwidth;
  cfg.num_flows = 4;
  cfg.warmup = sim::Time::seconds(5.0);
  cfg.measure = sim::Time::seconds(20.0);
  cfg.on_off_length = sim::Time::seconds(0.5);
  const auto out = scenario::run_oscillation(cfg);
  EXPECT_GT(out.aggregate_fraction, 0.2);
  EXPECT_LE(out.aggregate_fraction, 1.5);
}

}  // namespace
}  // namespace slowcc
