// RAP and TEAR behavior tests.
#include <gtest/gtest.h>

#include "cc/rap_agent.hpp"
#include "cc/tear_agent.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace slowcc::cc {
namespace {

struct RapRig {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Node& src{topo.add_node()};
  net::Node& dst{topo.add_node()};
  net::Link* fwd;
  RapSink sink{sim, dst};
  std::unique_ptr<RapAgent> agent;

  explicit RapRig(double b = 0.5, double bw = 10e6) {
    auto [f, r] = topo.add_duplex(src, dst, bw, sim::Time::millis(10), 60);
    fwd = f;
    (void)r;
    agent = std::make_unique<RapAgent>(sim, src, dst.id(), sink.local_port(),
                                       1, b);
    topo.compute_routes();
  }
};

TEST(Rap, LoneFlowFillsLink) {
  RapRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(60.0));
  const double goodput =
      static_cast<double>(rig.sink.bytes_received()) * 8.0 / 60.0;
  EXPECT_GT(goodput, 0.6 * 10e6);
}

TEST(Rap, RateIncreasesAdditivelyWithoutLoss) {
  RapRig rig(0.5, 100e6);  // lossless fat pipe
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(2.0));
  const double r1 = rig.agent->rate_pps();
  rig.sim.run_until(sim::Time::seconds(4.0));
  const double r2 = rig.agent->rate_pps();
  // AIMD on a rate: the window grows by a = 1 packet per RTT, i.e. the
  // rate grows by a/RTT^2 ~ 1/0.02^2 = 2500 pps per second (RTT ~20 ms
  // plus queueing). Accept a generous band around that.
  const double growth_per_s = (r2 - r1) / 2.0;
  EXPECT_GT(growth_per_s, 500.0);
  EXPECT_LT(growth_per_s, 10000.0);
}

TEST(Rap, LossCutsRateByFactorB) {
  RapRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(10.0));
  const double before = rig.agent->rate_pps();
  bool dropped = false;
  rig.fwd->set_forced_drop_filter([&dropped](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::kData) {
      dropped = true;
      return true;
    }
    return false;
  });
  rig.sim.run_until(sim::Time::seconds(11.0));
  EXPECT_LT(rig.agent->rate_pps(), before * 0.95);
  EXPECT_GE(rig.agent->stats().congestion_events, 1u);
}

TEST(Rap, KeepsSendingWithoutAcks) {
  // The defining rate-based behavior: transmission continues (at a
  // decaying rate) even when every ACK is lost — no self-clocking.
  RapRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(10.0));
  rig.fwd->set_forced_drop_filter([](const net::Packet&) { return true; });
  const auto sent_before = rig.agent->stats().packets_sent;
  rig.sim.run_until(sim::Time::seconds(11.0));
  EXPECT_GT(rig.agent->stats().packets_sent, sent_before + 10u)
      << "rate-based sender must keep transmitting into the black hole";
}

TEST(Rap, TimeoutBacksOffWhenAcksStop) {
  RapRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(10.0));
  const double before = rig.agent->rate_pps();
  rig.fwd->set_forced_drop_filter([](const net::Packet&) { return true; });
  rig.sim.run_until(sim::Time::seconds(20.0));
  EXPECT_LT(rig.agent->rate_pps(), before / 2.0);
  EXPECT_GE(rig.agent->stats().timeouts, 1u);
}

TEST(Rap, SlowVariantDecreasesGently) {
  RapRig rig(1.0 / 8.0);
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(10.0));
  const double before = rig.agent->rate_pps();
  bool dropped = false;
  rig.fwd->set_forced_drop_filter([&dropped](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::kData) {
      dropped = true;
      return true;
    }
    return false;
  });
  rig.sim.run_until(sim::Time::seconds(10.5));
  EXPECT_GT(rig.agent->rate_pps(), before * 0.8);
}

struct TearRig {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Node& src{topo.add_node()};
  net::Node& dst{topo.add_node()};
  net::Link* fwd;
  TearSink sink{sim, dst};
  std::unique_ptr<TearAgent> agent;

  TearRig() {
    auto [f, r] = topo.add_duplex(src, dst, 10e6, sim::Time::millis(10), 60);
    fwd = f;
    (void)r;
    agent = std::make_unique<TearAgent>(sim, src, dst.id(), sink.local_port(), 1);
    topo.compute_routes();
  }
};

TEST(Tear, LoneFlowMovesSubstantialData) {
  TearRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(60.0));
  const double goodput =
      static_cast<double>(rig.sink.bytes_received()) * 8.0 / 60.0;
  EXPECT_GT(goodput, 0.4 * 10e6);
}

TEST(Tear, ReceiverWindowHalvesOnLoss) {
  TearRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(10.0));
  const double w_before = rig.sink.emulated_cwnd();
  bool dropped = false;
  rig.fwd->set_forced_drop_filter([&dropped](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::kTearData) {
      dropped = true;
      return true;
    }
    return false;
  });
  // Observe promptly (within ~2 RTTs): the emulated window regrows by
  // one per window's worth of arrivals, so waiting long would hide the
  // halving.
  rig.sim.run_until(sim::Time::seconds(10.06));
  ASSERT_TRUE(dropped);
  EXPECT_LT(rig.sink.emulated_cwnd(), w_before * 0.8);
}

TEST(Tear, SmoothedWindowMovesSlowerThanInstantaneous) {
  TearRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(10.0));
  bool dropped = false;
  rig.fwd->set_forced_drop_filter([&dropped](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::kTearData) {
      dropped = true;
      return true;
    }
    return false;
  });
  rig.sim.run_until(sim::Time::seconds(10.06));
  // Instantaneous window halved; the EWMA must lag above it.
  ASSERT_TRUE(dropped);
  EXPECT_GT(rig.sink.smoothed_cwnd(), rig.sink.emulated_cwnd());
}

}  // namespace
}  // namespace slowcc::cc
