#pragma once

// Differential test harness for the two packet hot paths (DESIGN.md
// §14): pooled (handles + batched drain chain) vs scalar (by-value
// packets, one engine event per departure).
//
// A PathScript is a flat list of send/run/flap/retime operations driven
// against a one-link rig. run_path_script() executes a script through a
// chosen PacketPath and renders everything observable — simulated time,
// executed-event count, the trace digest, every LinkStats counter,
// queue occupancy, and each delivered packet — into a canonical log
// string. diff_paths() runs the same script through both paths and,
// when the logs differ, delta-debugs the script down to a minimal
// failing core (the engine_diff.hpp ddmin pattern) and returns a report
// embedding it. Property tests feed this with randomized scripts seeded
// via sim::Rng; directed regressions encode the batching edge cases
// (set_down mid-drain, RED drop mid-batch, retiming, wire faults).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/drop_tail_queue.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet_pool.hpp"
#include "net/red_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace slowcc::test {

struct PathOp {
  enum class Kind : std::uint8_t {
    kSend,       // inject one packet (arg = size_bytes)
    kRun,        // advance the simulation (arg = nanoseconds)
    kDown,       // link failure
    kUp,         // link repair
    kBandwidth,  // retime the transmitter (arg = new bps)
    kFilter,     // toggle a deterministic forced-drop filter
  };
  Kind kind = Kind::kSend;
  std::int64_t arg = 0;
};

using PathScript = std::vector<PathOp>;

/// Scripted rig parameters; `red` switches the queue discipline so the
/// differential also covers RED's RNG-consuming admission (mid-batch
/// early drops) against the scalar oracle.
struct PathRigConfig {
  bool red = false;
  std::size_t queue_limit = 8;
  double bandwidth_bps = 8e6;  // 1000 B packet = 1 ms serialization
  sim::Time delay = sim::Time::micros(500);
};

namespace detail {

struct CountingSink final : net::PacketHandler {
  sim::Simulator* sim = nullptr;
  std::ostringstream* log = nullptr;
  void handle_packet(const net::Packet& p) override {
    *log << "rx t=" << sim->now().as_nanos() << " seq=" << p.seq
         << " size=" << p.size_bytes << "\n";
  }
};

inline std::unique_ptr<net::Queue> make_queue(sim::Simulator& sim,
                                              const PathRigConfig& cfg) {
  if (!cfg.red) return std::make_unique<net::DropTailQueue>(cfg.queue_limit);
  net::RedConfig red;
  red.limit_packets = cfg.queue_limit;
  red.min_thresh = 1.0;
  red.max_thresh = 4.0;
  red.max_p = 0.5;     // aggressive: early drops happen mid-batch often
  red.weight = 0.25;   // fast EWMA so short scripts reach the thresholds
  return std::make_unique<net::RedQueue>(sim, red);
}

}  // namespace detail

/// Execute `script` with links constructed on `path` and render every
/// observable into a log. The two paths agree iff their logs are equal.
inline std::string run_path_script(net::PacketPath path,
                                   const PathScript& script,
                                   const PathRigConfig& cfg = {}) {
  net::set_thread_packet_path(path);
  std::ostringstream log;
  {
    sim::Simulator sim;
    net::Node a{0, "a"};
    net::Node b{1, "b"};
    detail::CountingSink sink;
    sink.sim = &sim;
    sink.log = &log;
    b.attach(1, sink);
    net::Link link(sim, a, b, cfg.bandwidth_bps, cfg.delay,
                   detail::make_queue(sim, cfg));

    bool filtered = false;
    std::int64_t next_seq = 0;
    for (const PathOp& op : script) {
      switch (op.kind) {
        case PathOp::Kind::kSend: {
          net::Packet p;
          p.src_node = 0;
          p.dst_node = 1;
          p.dst_port = 1;
          p.seq = next_seq++;
          p.size_bytes = op.arg;
          link.send(std::move(p));
          break;
        }
        case PathOp::Kind::kRun:
          sim.run_until(sim.now() + sim::Time::nanos(op.arg));
          break;
        case PathOp::Kind::kDown:
          link.set_down();
          break;
        case PathOp::Kind::kUp:
          link.set_up();
          break;
        case PathOp::Kind::kBandwidth:
          link.set_bandwidth(static_cast<double>(op.arg));
          break;
        case PathOp::Kind::kFilter:
          filtered = !filtered;
          if (filtered) {
            link.set_forced_drop_filter(
                [](const net::Packet& p) { return p.seq % 3 == 0; });
          } else {
            link.set_forced_drop_filter(nullptr);
          }
          break;
      }
      const net::LinkStats& s = link.stats();
      log << "t=" << sim.now().as_nanos() << " ev=" << sim.events_executed()
          << " dig=" << sim.trace_digest() << " arr=" << s.arrivals
          << " dep=" << s.departures << " drop=" << s.drops_total()
          << " q=" << link.queue().length_packets()
          << " qb=" << link.queue().length_bytes() << "\n";
    }
    sim.run();  // drain: the full event stream is compared either way
    const net::LinkStats& s = link.stats();
    log << "final t=" << sim.now().as_nanos()
        << " ev=" << sim.events_executed() << " dig=" << sim.trace_digest()
        << " arr=" << s.arrivals << " dep=" << s.departures
        << " ovf=" << s.drops_overflow << " early=" << s.drops_early
        << " forced=" << s.drops_forced << " down=" << s.drops_link_down
        << " bytes=" << s.bytes_delivered
        << " q=" << link.queue().length_packets() << "\n";
    log << "pool_live_after_drain="
        << (net::PacketPool::of(sim).live() - link.queue().length_packets())
        << "\n";
  }
  net::clear_thread_packet_path();
  return log.str();
}

inline std::string render_path_script(const PathScript& script) {
  std::ostringstream out;
  for (const PathOp& op : script) {
    switch (op.kind) {
      case PathOp::Kind::kSend:
        out << "  send(size=" << op.arg << ")\n";
        break;
      case PathOp::Kind::kRun:
        out << "  run(ns=" << op.arg << ")\n";
        break;
      case PathOp::Kind::kDown:
        out << "  down()\n";
        break;
      case PathOp::Kind::kUp:
        out << "  up()\n";
        break;
      case PathOp::Kind::kBandwidth:
        out << "  bandwidth(bps=" << op.arg << ")\n";
        break;
      case PathOp::Kind::kFilter:
        out << "  filter()\n";
        break;
    }
  }
  return out.str();
}

inline bool paths_disagree(const PathScript& script,
                           const PathRigConfig& cfg = {}) {
  return run_path_script(net::PacketPath::kScalar, script, cfg) !=
         run_path_script(net::PacketPath::kPooled, script, cfg);
}

/// ddmin-style shrink (see engine_diff.hpp): delete chunks while the
/// scalar/pooled disagreement persists.
inline PathScript shrink_path_script(PathScript failing,
                                     const PathRigConfig& cfg = {}) {
  std::size_t chunk = std::max<std::size_t>(1, failing.size() / 2);
  for (;;) {
    bool removed = false;
    std::size_t start = 0;
    while (start < failing.size()) {
      PathScript candidate(failing);
      candidate.erase(
          candidate.begin() + static_cast<std::ptrdiff_t>(start),
          candidate.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(failing.size(), start + chunk)));
      if (!candidate.empty() && paths_disagree(candidate, cfg)) {
        failing = std::move(candidate);
        removed = true;  // retry the same offset at the new layout
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed) return failing;
    chunk = std::max<std::size_t>(1, chunk / 2);
  }
}

/// Empty string when both paths agree on `script`; otherwise a failure
/// report containing the shrunken minimal script and both logs.
inline std::string diff_paths(const PathScript& script,
                              const PathRigConfig& cfg = {}) {
  if (!paths_disagree(script, cfg)) return {};
  const PathScript minimal = shrink_path_script(script, cfg);
  std::ostringstream out;
  out << "scalar and pooled packet paths disagree; minimal script ("
      << minimal.size() << " of " << script.size() << " ops):\n"
      << render_path_script(minimal) << "--- scalar log ---\n"
      << run_path_script(net::PacketPath::kScalar, minimal, cfg)
      << "--- pooled log ---\n"
      << run_path_script(net::PacketPath::kPooled, minimal, cfg);
  return out.str();
}

/// Randomized script: sends dominate (bursts saturate the link so the
/// drain chain actually batches), runs advance time by slices shorter
/// than one serialization (so flaps and retimes land mid-transmission),
/// and flaps/retimes/filters are sprinkled in.
inline PathScript random_path_script(std::uint64_t seed,
                                     std::size_t num_ops) {
  sim::Rng rng(seed);
  PathScript script;
  script.reserve(num_ops);
  bool down = false;
  for (std::size_t i = 0; i < num_ops; ++i) {
    const double roll = rng.uniform();
    PathOp op;
    if (roll < 0.50) {
      op.kind = PathOp::Kind::kSend;
      // 100..1500 B: varied serialization times, including ties.
      op.arg = 100 + static_cast<std::int64_t>(rng.uniform_int(15)) * 100;
    } else if (roll < 0.80) {
      op.kind = PathOp::Kind::kRun;
      // 0..2 ms in 50 us steps: lands inside and across transmissions.
      op.arg = static_cast<std::int64_t>(rng.uniform_int(41)) * 50'000;
    } else if (roll < 0.87) {
      op.kind = down ? PathOp::Kind::kUp : PathOp::Kind::kDown;
      down = !down;
    } else if (roll < 0.94) {
      op.kind = PathOp::Kind::kBandwidth;
      op.arg = 1'000'000 + static_cast<std::int64_t>(rng.uniform_int(16)) *
                               1'000'000;
    } else {
      op.kind = PathOp::Kind::kFilter;
    }
    script.push_back(op);
  }
  return script;
}

}  // namespace slowcc::test
