// SimError taxonomy: every code has a stable string form, the string
// form parses back to the code, and what() carries the structured
// [code] component: detail shape downstream tools grep for.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/error.hpp"

namespace slowcc::sim {
namespace {

TEST(SimError, EveryCodeRoundTripsThroughItsString) {
  for (const SimErrc code : all_errcs()) {
    const std::string text = to_string(code);
    EXPECT_NE(text, "?") << "unnamed error code";
    const auto parsed = errc_from_string(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, code) << text;
  }
}

TEST(SimError, CodeStringsAreDistinct) {
  std::set<std::string> seen;
  for (const SimErrc code : all_errcs()) {
    EXPECT_TRUE(seen.insert(to_string(code)).second)
        << "duplicate string: " << to_string(code);
  }
}

TEST(SimError, TaxonomyIncludesTheDeadlineAndAbortCodes) {
  EXPECT_STREQ(to_string(SimErrc::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(to_string(SimErrc::kTrialAborted), "trial-aborted");
  EXPECT_EQ(errc_from_string("deadline-exceeded"),
            SimErrc::kDeadlineExceeded);
  EXPECT_EQ(errc_from_string("trial-aborted"), SimErrc::kTrialAborted);
}

TEST(SimError, FleetCodesRoundTrip) {
  EXPECT_STREQ(to_string(SimErrc::kLeaseLost), "lease-lost");
  EXPECT_STREQ(to_string(SimErrc::kLeaseExpired), "lease-expired");
  EXPECT_STREQ(to_string(SimErrc::kFleetDegraded), "fleet-degraded");
  EXPECT_EQ(errc_from_string("lease-lost"), SimErrc::kLeaseLost);
  EXPECT_EQ(errc_from_string("lease-expired"), SimErrc::kLeaseExpired);
  EXPECT_EQ(errc_from_string("fleet-degraded"), SimErrc::kFleetDegraded);
}

TEST(SimError, SpecCodeRoundTrips) {
  EXPECT_STREQ(to_string(SimErrc::kBadSpec), "bad-spec");
  EXPECT_EQ(errc_from_string("bad-spec"), SimErrc::kBadSpec);
}

TEST(SimError, ResourceCodeRoundTrips) {
  EXPECT_STREQ(to_string(SimErrc::kResourceExhausted),
               "resource-exhausted");
  EXPECT_EQ(errc_from_string("resource-exhausted"),
            SimErrc::kResourceExhausted);
}

TEST(SimError, TaxonomyListIsExhaustiveAndExcludesTheSentinel) {
  // The compile-time side: kAllSimErrcs is static_assert-pinned to the
  // kCount_ sentinel, so a new enumerator cannot be forgotten. Here we
  // pin the runtime view to the same array and verify no code ever
  // stringifies to the "unknown" fallback.
  ASSERT_EQ(all_errcs().size(),
            static_cast<std::size_t>(SimErrc::kCount_));
  std::size_t i = 0;
  for (const SimErrc code : all_errcs()) {
    EXPECT_EQ(code, kAllSimErrcs[i]) << i;
    EXPECT_NE(code, SimErrc::kCount_);
    EXPECT_STRNE(to_string(code), "?");
    ++i;
  }
  EXPECT_STREQ(to_string(SimErrc::kCount_), "?");  // sentinel only
}

TEST(SimError, UnknownStringParsesToNothing) {
  EXPECT_FALSE(errc_from_string("").has_value());
  EXPECT_FALSE(errc_from_string("deadline").has_value());
  EXPECT_FALSE(errc_from_string("Deadline-Exceeded").has_value());
}

TEST(SimError, WhatCarriesCodeComponentAndDetail) {
  const SimError e(SimErrc::kTrialAborted, "poison", "boom (trial 3)");
  EXPECT_EQ(e.code(), SimErrc::kTrialAborted);
  EXPECT_EQ(e.component(), "poison");
  EXPECT_EQ(e.detail(), "boom (trial 3)");
  EXPECT_STREQ(e.what(), "[trial-aborted] poison: boom (trial 3)");
}

}  // namespace
}  // namespace slowcc::sim
