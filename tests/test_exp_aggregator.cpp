// Aggregator statistics against hand-computed values, plus the edge
// cases a sweep actually produces: single trials, errored rows, NaN
// metrics, and metric sets that differ between rows.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "exp/aggregator.hpp"
#include "exp/result_sink.hpp"

namespace slowcc {
namespace {

exp::Row make_row(const std::string& cell, int trial, double value,
                  const std::string& metric = "m") {
  exp::Row r;
  r.trial_id = static_cast<std::uint64_t>(trial);
  r.experiment = "test";
  r.algorithm = "tcp";
  r.cell = cell;
  r.trial_index = trial;
  r.set(metric, value);
  return r;
}

TEST(ExpAggregator, HandComputedStats) {
  // Values 1..5: mean 3, sample stddev sqrt(2.5), CI95 with t(df=4).
  std::vector<exp::Row> rows;
  for (int i = 0; i < 5; ++i) rows.push_back(make_row("c", i, i + 1.0));
  const auto cells = exp::aggregate(rows);
  ASSERT_EQ(cells.size(), 1u);
  const exp::MetricStats* m = cells[0].metric("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->n, 5u);
  EXPECT_DOUBLE_EQ(m->mean, 3.0);
  EXPECT_NEAR(m->stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(m->ci95, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
  EXPECT_DOUBLE_EQ(m->min, 1.0);
  EXPECT_DOUBLE_EQ(m->max, 5.0);
  // Linear interpolation on sorted {1,2,3,4,5}: rank = q * (n-1).
  EXPECT_NEAR(m->p05, 1.2, 1e-12);
  EXPECT_DOUBLE_EQ(m->p50, 3.0);
  EXPECT_NEAR(m->p95, 4.8, 1e-12);
}

TEST(ExpAggregator, SingleTrialHasNoSpread) {
  const auto cells = exp::aggregate({make_row("c", 0, 7.5)});
  const exp::MetricStats* m = cells[0].metric("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->n, 1u);
  EXPECT_DOUBLE_EQ(m->mean, 7.5);
  EXPECT_DOUBLE_EQ(m->stddev, 0.0);
  EXPECT_DOUBLE_EQ(m->ci95, 0.0);
  EXPECT_DOUBLE_EQ(m->p50, 7.5);
}

TEST(ExpAggregator, TCriticalTable) {
  EXPECT_DOUBLE_EQ(exp::t_critical_95(2), 12.706);  // df = 1
  EXPECT_DOUBLE_EQ(exp::t_critical_95(5), 2.776);   // df = 4
  EXPECT_DOUBLE_EQ(exp::t_critical_95(31), 2.042);  // df = 30, last entry
  EXPECT_DOUBLE_EQ(exp::t_critical_95(32), 1.960);  // normal asymptote
  EXPECT_DOUBLE_EQ(exp::t_critical_95(1), 0.0);     // no spread from n=1
}

TEST(ExpAggregator, PercentileInterpolation) {
  const std::vector<double> xs = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(exp::percentile_sorted(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(exp::percentile_sorted(xs, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(exp::percentile_sorted(xs, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(exp::percentile_sorted({4.0}, 0.95), 4.0);
}

TEST(ExpAggregator, ErroredRowsExcludedButCounted) {
  std::vector<exp::Row> rows = {make_row("c", 0, 1.0), make_row("c", 1, 3.0)};
  exp::Row bad = make_row("c", 2, 999.0);
  bad.error = "boom";
  rows.push_back(bad);
  const auto cells = exp::aggregate(rows);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].trials, 2u);
  EXPECT_EQ(cells[0].errors, 1u);
  EXPECT_DOUBLE_EQ(cells[0].metric("m")->mean, 2.0);
}

TEST(ExpAggregator, NonFiniteValuesSkipped) {
  std::vector<exp::Row> rows = {
      make_row("c", 0, 2.0), make_row("c", 1, 4.0),
      make_row("c", 2, std::numeric_limits<double>::quiet_NaN())};
  const auto cells = exp::aggregate(rows);
  const exp::MetricStats* m = cells[0].metric("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->n, 2u);
  EXPECT_DOUBLE_EQ(m->mean, 3.0);
}

TEST(ExpAggregator, CellsKeepFirstSeenOrder) {
  std::vector<exp::Row> rows = {make_row("b", 0, 1.0), make_row("a", 1, 2.0),
                                make_row("b", 2, 3.0)};
  const auto cells = exp::aggregate(rows);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].cell, "b");
  EXPECT_EQ(cells[1].cell, "a");
  EXPECT_EQ(cells[0].trials, 2u);
}

TEST(ExpAggregator, CsvLongFormatOneLinePerCellMetric) {
  std::vector<exp::Row> rows = {make_row("c", 0, 1.0), make_row("c", 1, 2.0)};
  rows[0].set("extra", 5.0);
  rows[1].set("extra", 7.0);
  std::ostringstream out;
  exp::write_cells_csv(out, exp::aggregate(rows));
  const std::string text = out.str();
  // Header + one line per (cell, metric).
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("c,test,tcp,m,2,1.5,"), std::string::npos);
  EXPECT_NE(text.find("c,test,tcp,extra,2,6,"), std::string::npos);
}

}  // namespace
}  // namespace slowcc
