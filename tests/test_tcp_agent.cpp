// TCP machinery tests on a tiny two-node network with a controllable
// bottleneck, exercising slow start, congestion avoidance, fast
// retransmit/recovery, timeouts with backoff, and self-clocking.
#include <gtest/gtest.h>

#include "cc/tcp_agent.hpp"
#include "cc/tcp_sink.hpp"
#include "net/topology.hpp"

namespace slowcc::cc {
namespace {

struct TcpRig {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Node& src{topo.add_node("src")};
  net::Node& dst{topo.add_node("dst")};
  net::Link* fwd;
  TcpSink sink{sim, dst};
  std::unique_ptr<TcpAgent> tcp;

  explicit TcpRig(double bw = 10e6, std::size_t qlen = 100, double b = 0.5,
                  TcpConfig cfg = {}) {
    auto [f, r] = topo.add_duplex(src, dst, bw, sim::Time::millis(10), qlen);
    fwd = f;
    (void)r;
    tcp = std::make_unique<TcpAgent>(
        sim, src, dst.id(), sink.local_port(), 1,
        std::make_unique<AimdPolicy>(AimdPolicy::tcp_compatible(b)), cfg);
    topo.compute_routes();
  }
};

TEST(TcpAgent, SlowStartDoublesWindowPerRtt) {
  TcpRig rig(100e6, 10000);  // fat lossless pipe
  rig.tcp->start();
  // After ~5 RTTs (RTT = 20 ms + transmission) window should have grown
  // exponentially from 2: 2 -> 4 -> 8 -> 16 -> 32.
  rig.sim.run_until(sim::Time::millis(99));
  EXPECT_GE(rig.tcp->cwnd(), 30.0);
  EXPECT_LE(rig.tcp->cwnd(), 80.0);
}

TEST(TcpAgent, SelfClockingNeverExceedsWindow) {
  TcpRig rig;
  rig.tcp->start();
  // Invariant probed at many instants, outside loss recovery (during
  // recovery the packets already in flight legitimately exceed the
  // collapsed window — they cannot be recalled).
  for (int ms = 10; ms <= 3000; ms += 10) {
    rig.sim.run_until(sim::Time::millis(ms));
    if (rig.tcp->in_recovery() || rig.tcp->cwnd() < rig.tcp->ssthresh()) {
      continue;  // recovery or just after: in-flight excess is draining
    }
    if (ms < 1500) continue;  // skip the start-up transient entirely
    const double limit = rig.tcp->cwnd() + 4.0;
    EXPECT_LE(static_cast<double>(rig.tcp->next_seq() - rig.tcp->snd_una()),
              limit + 1.0)
        << "at t=" << ms << "ms";
  }
}

TEST(TcpAgent, FastRetransmitHalvesWindowOnSingleLoss) {
  // Controlled single-loss setup: low initial ssthresh puts the flow in
  // gentle congestion avoidance on a path with ample buffering, so the
  // forced drop is the only loss.
  TcpConfig cfg;
  cfg.initial_ssthresh = 20.0;
  TcpRig rig(50e6, 800, 0.5, cfg);
  rig.tcp->start();
  rig.sim.run_until(sim::Time::seconds(2.0));
  ASSERT_EQ(rig.tcp->stats().congestion_events, 0u);
  const double before = rig.tcp->cwnd();
  ASSERT_GT(before, 20.0);
  bool dropped = false;
  rig.fwd->set_forced_drop_filter([&dropped](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::kData) {
      dropped = true;
      return true;
    }
    return false;
  });
  rig.sim.run_until(sim::Time::seconds(3.0));
  EXPECT_EQ(rig.tcp->stats().retransmits, 1u);
  EXPECT_EQ(rig.tcp->stats().timeouts, 0u) << "single loss: no RTO needed";
  EXPECT_NEAR(rig.tcp->ssthresh(), 0.5 * before, 0.1 * before);
}

TEST(TcpAgent, DecreaseFactorFollowsPolicy) {
  for (double b : {0.5, 1.0 / 8.0, 1.0 / 32.0}) {
    TcpConfig cfg;
    cfg.initial_ssthresh = 20.0;
    TcpRig rig(50e6, 800, b, cfg);
    rig.tcp->start();
    rig.sim.run_until(sim::Time::seconds(2.0));
    ASSERT_EQ(rig.tcp->stats().congestion_events, 0u) << "b=" << b;
    const double before = rig.tcp->cwnd();
    bool dropped = false;
    rig.fwd->set_forced_drop_filter([&dropped](const net::Packet& p) {
      if (!dropped && p.type == net::PacketType::kData) {
        dropped = true;
        return true;
      }
      return false;
    });
    rig.sim.run_until(sim::Time::seconds(3.0));
    EXPECT_NEAR(rig.tcp->ssthresh(), (1.0 - b) * before, before * 0.1)
        << "b=" << b;
  }
}

TEST(TcpAgent, TimeoutWhenAllAcksBlocked) {
  TcpRig rig;
  rig.tcp->start();
  rig.sim.run_until(sim::Time::millis(500));
  ASSERT_GT(rig.tcp->stats().packets_sent, 0u);
  // Black-hole everything.
  rig.fwd->set_forced_drop_filter([](const net::Packet&) { return true; });
  rig.sim.run_until(sim::Time::seconds(3.0));
  EXPECT_GE(rig.tcp->stats().timeouts, 2u);
  EXPECT_DOUBLE_EQ(rig.tcp->cwnd(), 1.0);
}

TEST(TcpAgent, TimeoutBackoffGrowsExponentially) {
  TcpRig rig;
  rig.tcp->start();
  rig.sim.run_until(sim::Time::millis(500));
  rig.fwd->set_forced_drop_filter([](const net::Packet&) { return true; });
  rig.sim.run_until(sim::Time::seconds(1.0));
  const auto rto_early = rig.tcp->current_rto();
  rig.sim.run_until(sim::Time::seconds(8.0));
  const auto rto_late = rig.tcp->current_rto();
  EXPECT_GE(rto_late.as_seconds(), 4.0 * rto_early.as_seconds());
}

TEST(TcpAgent, RecoversAfterBlackholeClears) {
  TcpRig rig;
  rig.tcp->start();
  rig.sim.run_until(sim::Time::millis(500));
  rig.fwd->set_forced_drop_filter([](const net::Packet&) { return true; });
  rig.sim.run_until(sim::Time::seconds(3.0));
  const auto received_blocked = rig.sink.packets_received();
  rig.fwd->set_forced_drop_filter(nullptr);
  rig.sim.run_until(sim::Time::seconds(10.0));
  EXPECT_GT(rig.sink.packets_received(), received_blocked + 1000u);
}

TEST(TcpAgent, DataLimitCompletesAndStops) {
  TcpRig rig;
  rig.tcp->set_data_limit(10);
  bool completed = false;
  rig.tcp->set_completion_callback([&] { completed = true; });
  rig.tcp->start();
  rig.sim.run_until(sim::Time::seconds(2.0));
  EXPECT_TRUE(completed);
  EXPECT_TRUE(rig.tcp->complete());
  EXPECT_EQ(rig.sink.next_expected(), 10);
  const auto sent = rig.tcp->stats().packets_sent;
  rig.sim.run_until(sim::Time::seconds(3.0));
  EXPECT_EQ(rig.tcp->stats().packets_sent, sent) << "no sends after complete";
}

TEST(TcpAgent, StopCancelsAllActivity) {
  TcpRig rig;
  rig.tcp->start();
  rig.sim.run_until(sim::Time::millis(500));
  rig.tcp->stop();
  const auto sent = rig.tcp->stats().packets_sent;
  rig.sim.run_until(sim::Time::seconds(2.0));
  EXPECT_EQ(rig.tcp->stats().packets_sent, sent);
}

TEST(TcpAgent, SrttTracksPathRtt) {
  TcpRig rig;
  rig.tcp->start();
  rig.sim.run_until(sim::Time::seconds(1.0));
  // Path RTT: 2 * 10 ms propagation + serialization/queueing.
  EXPECT_GT(rig.tcp->srtt().as_seconds(), 0.018);
  EXPECT_LT(rig.tcp->srtt().as_seconds(), 0.15);
}

TEST(TcpAgent, UtilizesBottleneck) {
  TcpRig rig(10e6, 60);
  rig.tcp->start();
  rig.sim.run_until(sim::Time::seconds(20.0));
  const double goodput =
      static_cast<double>(rig.sink.bytes_received()) * 8.0 / 20.0;
  EXPECT_GT(goodput, 0.7 * 10e6);
}

TEST(TcpAgent, SlowVariantDecreasesGently) {
  // TCP(1/8) loses an eighth of its window per congestion event, so
  // post-loss rate stays above 85% of the pre-loss rate.
  TcpRig rig(10e6, 60, 1.0 / 8.0);
  rig.tcp->start();
  rig.sim.run_until(sim::Time::seconds(5.0));
  const double before = rig.tcp->cwnd();
  bool dropped = false;
  rig.fwd->set_forced_drop_filter([&dropped](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::kData) {
      dropped = true;
      return true;
    }
    return false;
  });
  rig.sim.run_until(sim::Time::seconds(6.0));
  EXPECT_GT(rig.tcp->ssthresh(), 0.8 * before);
}

TEST(TcpSink, CumulativeAckAdvancesOverHoles) {
  sim::Simulator sim;
  net::Node node(0);
  TcpSink sink(sim, node);
  auto deliver = [&](std::int64_t seq) {
    net::Packet p;
    p.type = net::PacketType::kData;
    p.dst_node = 0;
    p.dst_port = sink.local_port();
    p.seq = seq;
    sink.handle_packet(std::move(p));
  };
  deliver(0);
  deliver(1);
  EXPECT_EQ(sink.next_expected(), 2);
  deliver(3);  // hole at 2
  deliver(4);
  EXPECT_EQ(sink.next_expected(), 2);
  deliver(2);  // fill the hole: jump to 5
  EXPECT_EQ(sink.next_expected(), 5);
}

TEST(TcpAgent, BinomialAgentsRunViaSameMachinery) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::Node& src = topo.add_node();
  net::Node& dst = topo.add_node();
  topo.add_duplex(src, dst, 10e6, sim::Time::millis(10), 60);
  TcpSink sink(sim, dst);
  auto sqrt_agent =
      TcpAgent::make_sqrt(sim, src, dst.id(), sink.local_port(), 1, 0.5);
  topo.compute_routes();
  sqrt_agent->start();
  sim.run_until(sim::Time::seconds(10.0));
  EXPECT_GT(sink.bytes_received(), 5'000'000);
}

}  // namespace
}  // namespace slowcc::cc
