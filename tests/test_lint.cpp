// slowcc_lint rule-engine tests: one positive and one negative fixture
// per rule, run against small in-memory sources, plus suppression
// parsing and JSON-reporter escaping. The fixtures use repo-shaped
// paths ("src/...", "tools/...") because rule scoping keys off them.

#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

namespace {

using slowcc::lint::Finding;
using slowcc::lint::SourceFile;

std::vector<Finding> lint_one(std::string path, std::string content) {
  return slowcc::lint::run({{std::move(path), std::move(content)}});
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintWallClock, FlagsClockReadsOutsideExemptPaths) {
  const auto findings = lint_one("src/net/foo.cpp", R"cpp(
#include <chrono>
void f() {
  auto t = std::chrono::steady_clock::now();
  long s = time(nullptr);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-wall-clock"), 2);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[1].line, 5);
}

TEST(LintWallClock, AllowsWatchdogExpAndMemberCalls) {
  const std::string clocky = R"cpp(
void f() { auto t = std::chrono::steady_clock::now(); }
)cpp";
  EXPECT_EQ(count_rule(lint_one("src/exp/parallel_runner.cpp", clocky),
                       "no-wall-clock"),
            0);
  EXPECT_EQ(count_rule(lint_one("src/fault/watchdog.cpp", clocky),
                       "no-wall-clock"),
            0);
  // Member functions that happen to be called time() belong to someone
  // else's API; sim::Time construction is obviously fine too.
  const auto findings = lint_one("src/net/bar.cpp", R"cpp(
void g(Probe& p) {
  auto a = p.time();
  auto b = Sampler::time();
  sim::Time t = sim::Time::seconds(2.0);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-wall-clock"), 0);
}

TEST(LintRawRand, FlagsRandAndStdEngines) {
  const auto findings = lint_one("bench/foo.cpp", R"cpp(
int f() {
  std::mt19937 gen(42);
  return rand() % 7;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 2);
}

TEST(LintRawRand, AllowsSimRngAndCommentMentions) {
  const auto findings = lint_one("src/traffic/foo.cpp", R"cpp(
// rand() and std::mt19937 are banned; this comment must not trip it.
double f(slowcc::sim::Rng& rng) {
  const char* msg = "do not call rand() here";
  return rng.uniform() + static_cast<double>(sim::derive_seed(1, 2) % 3);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 0);
}

TEST(LintUnorderedIteration, FlagsRangeForOverUnorderedMember) {
  const auto findings = lint_one("src/net/table.cpp", R"cpp(
#include <unordered_map>
struct T {
  std::unordered_map<int, double> table_;
  double sum() const {
    double s = 0;
    for (const auto& [k, v] : table_) s += v;
    return s;
  }
};
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 1);
  EXPECT_EQ(findings[0].line, 7);
}

TEST(LintUnorderedIteration, SeesDeclarationsAcrossFilesInTheBatch) {
  // The symbol table is built from the whole batch: a member declared
  // unordered in a header is flagged when iterated in a .cpp.
  const std::vector<SourceFile> sources = {
      {"src/net/reg.hpp", R"cpp(
#pragma once
#include <unordered_set>
struct Reg { std::unordered_set<int> live_ids_; };
)cpp"},
      {"src/net/reg.cpp", R"cpp(
#include "net/reg.hpp"
int f(const Reg& r) {
  int n = 0;
  for (int id : r.live_ids_) n += id;
  return n;
}
)cpp"},
  };
  const auto findings = slowcc::lint::run(sources);
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 1);
}

TEST(LintUnorderedIteration, AllowsOrderedContainersAndSortedCopies) {
  const auto findings = lint_one("src/net/ok.cpp", R"cpp(
#include <map>
#include <unordered_map>
struct T {
  std::map<int, double> ordered_;
  std::unordered_map<int, double> table_;
  double sum() const {
    double s = 0;
    for (const auto& [k, v] : ordered_) s += v;
    for (const auto& [k, v] : sorted_view(table_)) s += v;  // call: ok
    return s;
  }
};
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 0);
}

TEST(LintErrorTaxonomy, FlagsAdHocThrowsUnderSrc) {
  const auto findings = lint_one("src/sim/foo.cpp", R"cpp(
void f(int x) {
  if (x < 0) throw std::runtime_error("negative");
}
)cpp");
  EXPECT_EQ(count_rule(findings, "error-taxonomy"), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintErrorTaxonomy, AllowsSimErrorRethrowAndNonSrcPaths) {
  const auto findings = lint_one("src/sim/ok.cpp", R"cpp(
void f(int x) {
  if (x < 0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "f", "x must be >= 0");
  }
  try {
    g();
  } catch (...) {
    throw;
  }
  throw
      slowcc::sim::SimError(sim::SimErrc::kBadSchedule, "f", "split line");
}
)cpp");
  EXPECT_EQ(count_rule(findings, "error-taxonomy"), 0);
  // tools/ is outside the taxonomy's jurisdiction.
  const auto tool = lint_one("tools/cli.cpp", R"cpp(
void f() { throw std::runtime_error("cli-only"); }
)cpp");
  EXPECT_EQ(count_rule(tool, "error-taxonomy"), 0);
}

TEST(LintFloatTime, FlagsUnitlessTimeDoubles) {
  const auto findings = lint_one("src/metrics/foo.cpp", R"cpp(
void f() {
  double start_time = 0.0;
  double deadline = 1.5;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-float-time"), 2);
}

TEST(LintFloatTime, AllowsUnitSuffixesWallClocksAndFunctions) {
  const auto findings = lint_one("src/metrics/ok.cpp", R"cpp(
double stab_time(int x);
void f() {
  double stabilization_time_s = 0.0;
  double trial_wall_seconds = 30.0;
  double rate_bps = 1e6;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-float-time"), 0);
}

TEST(LintHeaderHygiene, FlagsMissingPragmaOnceAndUsingNamespace) {
  const auto findings = lint_one("src/net/bad.hpp", R"cpp(
#include <vector>
using namespace std;
)cpp");
  EXPECT_EQ(count_rule(findings, "header-hygiene"), 2);
}

TEST(LintHeaderHygiene, AcceptsCommentThenPragmaOnce) {
  const auto findings = lint_one("src/net/good.hpp", R"cpp(
// A documentation block may precede the guard.
#pragma once
#include <vector>
)cpp");
  EXPECT_EQ(count_rule(findings, "header-hygiene"), 0);
  // .cpp files are not headers.
  const auto cpp = lint_one("src/net/impl.cpp", "int x = 1;\n");
  EXPECT_EQ(count_rule(cpp, "header-hygiene"), 0);
}

TEST(LintStdFunctionHotPath, FlagsStdFunctionOnlyUnderSrcSim) {
  const std::string engine = R"cpp(
#pragma once
struct Entry {
  long at_ns;
  std::function<void()> cb;
};
)cpp";
  const auto findings = lint_one("src/sim/fancy_scheduler.hpp", engine);
  EXPECT_EQ(count_rule(findings, "no-std-function-hot-path"), 1);
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_TRUE(findings[0].advisory);
  // The same code outside the engine is not the hot path.
  EXPECT_EQ(count_rule(lint_one("src/net/foo.hpp", engine),
                       "no-std-function-hot-path"),
            0);
  EXPECT_EQ(count_rule(lint_one("tools/cli.cpp", engine),
                       "no-std-function-hot-path"),
            0);
}

TEST(LintStdFunctionHotPath, IgnoresCommentsAndIsSuppressible) {
  const auto clean = lint_one("src/sim/notes.cpp", R"cpp(
// std::function in a comment must not trip the advisory rule.
int x = 1;
)cpp");
  EXPECT_EQ(count_rule(clean, "no-std-function-hot-path"), 0);

  const auto suppressed = lint_one("src/sim/api.hpp", R"cpp(
#pragma once
// slowcc-lint: allow(no-std-function-hot-path) API-boundary callback
using Callback = std::function<void()>;
)cpp");
  EXPECT_EQ(count_rule(suppressed, "no-std-function-hot-path"), 0);
  EXPECT_EQ(count_rule(suppressed, "bad-suppression"), 0);
}

TEST(LintStdFunctionHotPath, EnforcedRulesStayNonAdvisory) {
  const auto findings = lint_one("src/sim/mixed.cpp", R"cpp(
void f() {
  std::function<void()> cb;
  int r = rand();
}
)cpp");
  ASSERT_EQ(count_rule(findings, "no-std-function-hot-path"), 1);
  ASSERT_EQ(count_rule(findings, "no-raw-rand"), 1);
  for (const auto& f : findings) {
    EXPECT_EQ(f.advisory, f.rule == "no-std-function-hot-path") << f.rule;
  }
}

TEST(LintUnguardedSharedWrite, FlagsRawWritePathsOnlyUnderSrcExp) {
  const std::string writer = R"cpp(
#include <fstream>
void dump(const char* path) {
  std::ofstream out(path);
  FILE* f = fopen(path, "w");
  int fd = ::open(path, 0);
}
)cpp";
  const auto findings = lint_one("src/exp/scratch_sink.cpp", writer);
  EXPECT_EQ(count_rule(findings, "no-unguarded-shared-write"), 3);
  for (const auto& f : findings) {
    if (f.rule == "no-unguarded-shared-write") {
      // Promoted from advisory to enforced: an unsuppressed raw write
      // in src/exp/ now fails the lint gate.
      EXPECT_FALSE(f.advisory) << f.message;
    }
  }
  // The same code outside the shared-checkpoint layer is fine.
  EXPECT_EQ(count_rule(lint_one("src/sim/dump.cpp", writer),
                       "no-unguarded-shared-write"),
            0);
  EXPECT_EQ(count_rule(lint_one("tools/report.cpp", writer),
                       "no-unguarded-shared-write"),
            0);
}

TEST(LintUnguardedSharedWrite, SkipsMemberOpenAndQualifiedCalls) {
  const auto findings = lint_one("src/exp/driver.cpp", R"cpp(
bool Checkpoint::open(const SweepSpec& spec) { return true; }
void drive(Checkpoint& cp, const SweepSpec& spec) {
  cp.open(spec);
  io::open(spec);
  std::ifstream in("journal.jsonl");
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unguarded-shared-write"), 0);
}

TEST(LintUnguardedSharedWrite, IsSuppressibleWithReason) {
  const auto findings = lint_one("src/exp/result_sink_fixture.cpp", R"cpp(
int claim(const char* path) {
  // slowcc-lint: allow(no-unguarded-shared-write) this IS the O_EXCL primitive
  return ::open(path, 0);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unguarded-shared-write"), 0);
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 0);
}

TEST(LintSuppression, TrailingAllowGuardsItsOwnLine) {
  const auto findings = lint_one("src/net/s1.cpp", R"cpp(
int f() {
  return rand();  // slowcc-lint: allow(no-raw-rand) fixture exercises libc
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 0);
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 0);
}

TEST(LintSuppression, StandaloneAllowGuardsTheNextLine) {
  const auto findings = lint_one("src/net/s2.cpp", R"cpp(
int f() {
  // slowcc-lint: allow(no-raw-rand) seeding comparison baseline
  return rand();
}
int g() {
  // The allow above must not leak this far down.
  return rand();
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 1);
}

TEST(LintSuppression, AllowFileCoversTheWholeFile) {
  const auto findings = lint_one("src/net/s3.cpp", R"cpp(
// slowcc-lint: allow-file(no-raw-rand) PRNG comparison harness
int f() { return rand(); }
int g() { return rand(); }
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 0);
}

TEST(LintSuppression, MissingReasonIsItselfAFinding) {
  const auto findings = lint_one("src/net/s4.cpp", R"cpp(
int f() {
  return rand();  // slowcc-lint: allow(no-raw-rand)
}
)cpp");
  // The malformed allow is reported AND does not suppress.
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 1);
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 1);
}

TEST(LintSuppression, UnknownRuleNameIsRejected) {
  const auto findings = lint_one("src/net/s5.cpp", R"cpp(
int f() {
  return rand();  // slowcc-lint: allow(no-such-rule) typo'd rule name
}
)cpp");
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 1);
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 1);
}

TEST(LintRules, RegistryKnowsEveryRule) {
  EXPECT_GE(slowcc::lint::all_rules().size(), 8u);
  EXPECT_TRUE(slowcc::lint::is_known_rule("no-wall-clock"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("error-taxonomy"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("no-std-function-hot-path"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("no-unguarded-shared-write"));
  EXPECT_FALSE(slowcc::lint::is_known_rule("bad-suppression"));
  EXPECT_FALSE(slowcc::lint::is_known_rule(""));
  // Exactly the hot-path rule is advisory today (shared-write was
  // promoted to enforced); enforced rules must never silently flip.
  for (const auto& rule : slowcc::lint::all_rules()) {
    EXPECT_EQ(rule.advisory, rule.name == "no-std-function-hot-path")
        << rule.name;
  }
}

TEST(LintJson, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(slowcc::lint::json_escape("plain"), "plain");
  EXPECT_EQ(slowcc::lint::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(slowcc::lint::json_escape("x\n\t\r"), "x\\n\\t\\r");
  EXPECT_EQ(slowcc::lint::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(LintJson, ReporterEmitsEscapedFindings) {
  std::vector<Finding> findings = {
      {"src/a \"b\".cpp", 3, "no-raw-rand", "message with \"quotes\"\n",
       "hint\\path"}};
  std::ostringstream out;
  slowcc::lint::report_json(findings, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("src/a \\\"b\\\".cpp"), std::string::npos);
  EXPECT_NE(json.find("\"advisory\": false"), std::string::npos);
  EXPECT_NE(json.find("message with \\\"quotes\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("hint\\\\path"), std::string::npos);
}

TEST(LintJson, ReporterMarksAdvisoryFindings) {
  const auto findings = lint_one("src/sim/hot.cpp",
                                 "std::function<void()> cb;\n");
  ASSERT_EQ(count_rule(findings, "no-std-function-hot-path"), 1);
  std::ostringstream out;
  slowcc::lint::report_json(findings, out);
  EXPECT_NE(out.str().find("\"advisory\": true"), std::string::npos);
}

TEST(LintText, ReporterPrintsFileLineRuleAndHint) {
  std::vector<Finding> findings = {
      {"src/x.cpp", 7, "no-wall-clock", "bad clock", "use sim::Time"}};
  std::ostringstream out;
  slowcc::lint::report_text(findings, out);
  EXPECT_NE(out.str().find("src/x.cpp:7: [no-wall-clock] bad clock"),
            std::string::npos);
  EXPECT_NE(out.str().find("hint: use sim::Time"), std::string::npos);
}

TEST(LintScope, SpecSubsystemPathsAreCoveredBySrcRules) {
  // src/spec/ joined the tree after the rules were written; the rules
  // scope by the src/ path prefix, so the new subsystem must be
  // covered with no carve-outs. One positive + one negative fixture
  // per rule class that matters for the spec compiler.
  EXPECT_EQ(count_rule(lint_one("src/spec/toml.cpp", R"cpp(
void f() { throw std::runtime_error("nope"); }
)cpp"),
                       "error-taxonomy"),
            1);
  EXPECT_EQ(count_rule(lint_one("src/spec/toml.cpp", R"cpp(
void f() { throw sim::SimError(sim::SimErrc::kBadSpec, "spec", "d"); }
)cpp"),
                       "error-taxonomy"),
            0);

  EXPECT_EQ(count_rule(lint_one("src/spec/compiler.cpp", R"cpp(
void f() { double start_time = 3.0; }
)cpp"),
                       "no-float-time"),
            1);
  EXPECT_EQ(count_rule(lint_one("src/spec/compiler.cpp", R"cpp(
void f() { double start_s = 3.0; }
)cpp"),
                       "no-float-time"),
            0);

  EXPECT_EQ(count_rule(lint_one("src/spec/compiler.cpp", R"cpp(
int f() { return rand() % 3; }
)cpp"),
                       "no-raw-rand"),
            1);
  EXPECT_EQ(count_rule(lint_one("src/spec/compiler.cpp", R"cpp(
double f(slowcc::sim::Rng& rng) { return rng.uniform(); }
)cpp"),
                       "no-raw-rand"),
            0);

  EXPECT_EQ(count_rule(lint_one("src/spec/scenario_spec.cpp", R"cpp(
#include <chrono>
void f() { auto t = std::chrono::steady_clock::now(); }
)cpp"),
                       "no-wall-clock"),
            1);
}

TEST(LintText, ReporterTagsAdvisoryFindingsInTheRuleBracket) {
  const auto findings = lint_one("src/sim/hot.cpp",
                                 "std::function<void()> cb;\n");
  ASSERT_EQ(count_rule(findings, "no-std-function-hot-path"), 1);
  std::ostringstream out;
  slowcc::lint::report_text(findings, out);
  EXPECT_NE(out.str().find("[no-std-function-hot-path (advisory)]"),
            std::string::npos);
}

}  // namespace
