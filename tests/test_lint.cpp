// slowcc_lint rule-engine tests: one positive and one negative fixture
// per rule, run against small in-memory sources, plus suppression
// parsing and JSON-reporter escaping. The fixtures use repo-shaped
// paths ("src/...", "tools/...") because rule scoping keys off them.

#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

namespace {

using slowcc::lint::Finding;
using slowcc::lint::SourceFile;

std::vector<Finding> lint_one(std::string path, std::string content) {
  return slowcc::lint::run({{std::move(path), std::move(content)}});
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintWallClock, FlagsClockReadsOutsideExemptPaths) {
  const auto findings = lint_one("src/net/foo.cpp", R"cpp(
#include <chrono>
void f() {
  auto t = std::chrono::steady_clock::now();
  long s = time(nullptr);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-wall-clock"), 2);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[1].line, 5);
}

TEST(LintWallClock, AllowsWatchdogExpAndMemberCalls) {
  const std::string clocky = R"cpp(
void f() { auto t = std::chrono::steady_clock::now(); }
)cpp";
  EXPECT_EQ(count_rule(lint_one("src/exp/parallel_runner.cpp", clocky),
                       "no-wall-clock"),
            0);
  EXPECT_EQ(count_rule(lint_one("src/fault/watchdog.cpp", clocky),
                       "no-wall-clock"),
            0);
  // Member functions that happen to be called time() belong to someone
  // else's API; sim::Time construction is obviously fine too.
  const auto findings = lint_one("src/net/bar.cpp", R"cpp(
void g(Probe& p) {
  auto a = p.time();
  auto b = Sampler::time();
  sim::Time t = sim::Time::seconds(2.0);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-wall-clock"), 0);
}

TEST(LintRawRand, FlagsRandAndStdEngines) {
  const auto findings = lint_one("bench/foo.cpp", R"cpp(
int f() {
  std::mt19937 gen(42);
  return rand() % 7;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 2);
}

TEST(LintRawRand, AllowsSimRngAndCommentMentions) {
  const auto findings = lint_one("src/traffic/foo.cpp", R"cpp(
// rand() and std::mt19937 are banned; this comment must not trip it.
double f(slowcc::sim::Rng& rng) {
  const char* msg = "do not call rand() here";
  return rng.uniform() + static_cast<double>(sim::derive_seed(1, 2) % 3);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 0);
}

TEST(LintUnorderedIteration, FlagsRangeForOverUnorderedMember) {
  const auto findings = lint_one("src/net/table.cpp", R"cpp(
#include <unordered_map>
struct T {
  std::unordered_map<int, double> table_;
  double sum() const {
    double s = 0;
    for (const auto& [k, v] : table_) s += v;
    return s;
  }
};
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 1);
  EXPECT_EQ(findings[0].line, 7);
}

TEST(LintUnorderedIteration, SeesDeclarationsAcrossFilesInTheBatch) {
  // The symbol table is built from the whole batch: a member declared
  // unordered in a header is flagged when iterated in a .cpp.
  const std::vector<SourceFile> sources = {
      {"src/net/reg.hpp", R"cpp(
#pragma once
#include <unordered_set>
struct Reg { std::unordered_set<int> live_ids_; };
)cpp"},
      {"src/net/reg.cpp", R"cpp(
#include "net/reg.hpp"
int f(const Reg& r) {
  int n = 0;
  for (int id : r.live_ids_) n += id;
  return n;
}
)cpp"},
  };
  const auto findings = slowcc::lint::run(sources);
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 1);
}

TEST(LintUnorderedIteration, AllowsOrderedContainersAndSortedCopies) {
  const auto findings = lint_one("src/net/ok.cpp", R"cpp(
#include <map>
#include <unordered_map>
struct T {
  std::map<int, double> ordered_;
  std::unordered_map<int, double> table_;
  double sum() const {
    double s = 0;
    for (const auto& [k, v] : ordered_) s += v;
    for (const auto& [k, v] : sorted_view(table_)) s += v;  // call: ok
    return s;
  }
};
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 0);
}

TEST(LintErrorTaxonomy, FlagsAdHocThrowsUnderSrc) {
  const auto findings = lint_one("src/sim/foo.cpp", R"cpp(
void f(int x) {
  if (x < 0) throw std::runtime_error("negative");
}
)cpp");
  EXPECT_EQ(count_rule(findings, "error-taxonomy"), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintErrorTaxonomy, AllowsSimErrorRethrowAndNonSrcPaths) {
  const auto findings = lint_one("src/sim/ok.cpp", R"cpp(
void f(int x) {
  if (x < 0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "f", "x must be >= 0");
  }
  try {
    g();
  } catch (...) {
    throw;
  }
  throw
      slowcc::sim::SimError(sim::SimErrc::kBadSchedule, "f", "split line");
}
)cpp");
  EXPECT_EQ(count_rule(findings, "error-taxonomy"), 0);
  // tools/ is outside the taxonomy's jurisdiction.
  const auto tool = lint_one("tools/cli.cpp", R"cpp(
void f() { throw std::runtime_error("cli-only"); }
)cpp");
  EXPECT_EQ(count_rule(tool, "error-taxonomy"), 0);
}

TEST(LintFloatTime, FlagsUnitlessTimeDoubles) {
  const auto findings = lint_one("src/metrics/foo.cpp", R"cpp(
void f() {
  double start_time = 0.0;
  double deadline = 1.5;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-float-time"), 2);
}

TEST(LintFloatTime, AllowsUnitSuffixesWallClocksAndFunctions) {
  const auto findings = lint_one("src/metrics/ok.cpp", R"cpp(
double stab_time(int x);
void f() {
  double stabilization_time_s = 0.0;
  double trial_wall_seconds = 30.0;
  double rate_bps = 1e6;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-float-time"), 0);
}

TEST(LintHeaderHygiene, FlagsMissingPragmaOnceAndUsingNamespace) {
  const auto findings = lint_one("src/net/bad.hpp", R"cpp(
#include <vector>
using namespace std;
)cpp");
  EXPECT_EQ(count_rule(findings, "header-hygiene"), 2);
}

TEST(LintHeaderHygiene, AcceptsCommentThenPragmaOnce) {
  const auto findings = lint_one("src/net/good.hpp", R"cpp(
// A documentation block may precede the guard.
#pragma once
#include <vector>
)cpp");
  EXPECT_EQ(count_rule(findings, "header-hygiene"), 0);
  // .cpp files are not headers.
  const auto cpp = lint_one("src/net/impl.cpp", "int x = 1;\n");
  EXPECT_EQ(count_rule(cpp, "header-hygiene"), 0);
}

TEST(LintStdFunctionHotPath, FlagsStdFunctionOnlyUnderSrcSim) {
  const std::string engine = R"cpp(
#pragma once
struct Entry {
  long at_ns;
  std::function<void()> cb;
};
)cpp";
  const auto findings = lint_one("src/sim/fancy_scheduler.hpp", engine);
  EXPECT_EQ(count_rule(findings, "no-std-function-hot-path"), 1);
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_FALSE(findings[0].advisory);  // enforced since the fn-pointer hot path
  // v2 widened the scope to src/net/ — packet delivery is as hot as the
  // event loop. Paths outside both stay exempt.
  EXPECT_EQ(count_rule(lint_one("src/net/foo.hpp", engine),
                       "no-std-function-hot-path"),
            1);
  EXPECT_EQ(count_rule(lint_one("src/exp/foo.hpp", engine),
                       "no-std-function-hot-path"),
            0);
  EXPECT_EQ(count_rule(lint_one("tools/cli.cpp", engine),
                       "no-std-function-hot-path"),
            0);
}

TEST(LintStdFunctionHotPath, IgnoresCommentsAndIsSuppressible) {
  const auto clean = lint_one("src/sim/notes.cpp", R"cpp(
// std::function in a comment must not trip the advisory rule.
int x = 1;
)cpp");
  EXPECT_EQ(count_rule(clean, "no-std-function-hot-path"), 0);

  const auto suppressed = lint_one("src/sim/api.hpp", R"cpp(
#pragma once
// slowcc-lint: allow(no-std-function-hot-path) API-boundary callback
using Callback = std::function<void()>;
)cpp");
  EXPECT_EQ(count_rule(suppressed, "no-std-function-hot-path"), 0);
  EXPECT_EQ(count_rule(suppressed, "bad-suppression"), 0);
}

TEST(LintStdFunctionHotPath, EnforcedRulesStayNonAdvisory) {
  const auto findings = lint_one("src/sim/mixed.cpp", R"cpp(
void f() {
  std::function<void()> cb;
  int r = rand();
}
)cpp");
  ASSERT_EQ(count_rule(findings, "no-std-function-hot-path"), 1);
  ASSERT_EQ(count_rule(findings, "no-raw-rand"), 1);
  // Both hot-path rules were promoted to enforced alongside the pooled
  // packet path (DESIGN.md §14); nothing in this fixture is advisory.
  for (const auto& f : findings) {
    EXPECT_FALSE(f.advisory) << f.rule;
  }
}

TEST(LintUnguardedSharedWrite, FlagsRawWritePathsOnlyUnderSrcExp) {
  const std::string writer = R"cpp(
#include <fstream>
void dump(const char* path) {
  std::ofstream out(path);
  FILE* f = fopen(path, "w");
  int fd = ::open(path, 0);
}
)cpp";
  const auto findings = lint_one("src/exp/scratch_sink.cpp", writer);
  EXPECT_EQ(count_rule(findings, "no-unguarded-shared-write"), 3);
  for (const auto& f : findings) {
    if (f.rule == "no-unguarded-shared-write") {
      // Promoted from advisory to enforced: an unsuppressed raw write
      // in src/exp/ now fails the lint gate.
      EXPECT_FALSE(f.advisory) << f.message;
    }
  }
  // The same code outside the shared-checkpoint layer is fine.
  EXPECT_EQ(count_rule(lint_one("src/sim/dump.cpp", writer),
                       "no-unguarded-shared-write"),
            0);
  EXPECT_EQ(count_rule(lint_one("tools/report.cpp", writer),
                       "no-unguarded-shared-write"),
            0);
}

TEST(LintUnguardedSharedWrite, SkipsMemberOpenAndQualifiedCalls) {
  const auto findings = lint_one("src/exp/driver.cpp", R"cpp(
bool Checkpoint::open(const SweepSpec& spec) { return true; }
void drive(Checkpoint& cp, const SweepSpec& spec) {
  cp.open(spec);
  io::open(spec);
  std::ifstream in("journal.jsonl");
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unguarded-shared-write"), 0);
}

TEST(LintUnguardedSharedWrite, IsSuppressibleWithReason) {
  const auto findings = lint_one("src/exp/result_sink_fixture.cpp", R"cpp(
int claim(const char* path) {
  // slowcc-lint: allow(no-unguarded-shared-write) this IS the O_EXCL primitive
  return ::open(path, 0);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unguarded-shared-write"), 0);
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 0);
}

TEST(LintSuppression, TrailingAllowGuardsItsOwnLine) {
  const auto findings = lint_one("src/net/s1.cpp", R"cpp(
int f() {
  return rand();  // slowcc-lint: allow(no-raw-rand) fixture exercises libc
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 0);
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 0);
}

TEST(LintSuppression, StandaloneAllowGuardsTheNextLine) {
  const auto findings = lint_one("src/net/s2.cpp", R"cpp(
int f() {
  // slowcc-lint: allow(no-raw-rand) seeding comparison baseline
  return rand();
}
int g() {
  // The allow above must not leak this far down.
  return rand();
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 1);
}

TEST(LintSuppression, AllowFileCoversTheWholeFile) {
  const auto findings = lint_one("src/net/s3.cpp", R"cpp(
// slowcc-lint: allow-file(no-raw-rand) PRNG comparison harness
int f() { return rand(); }
int g() { return rand(); }
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 0);
}

TEST(LintSuppression, MissingReasonIsItselfAFinding) {
  const auto findings = lint_one("src/net/s4.cpp", R"cpp(
int f() {
  return rand();  // slowcc-lint: allow(no-raw-rand)
}
)cpp");
  // The malformed allow is reported AND does not suppress.
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 1);
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 1);
}

TEST(LintSuppression, UnknownRuleNameIsRejected) {
  const auto findings = lint_one("src/net/s5.cpp", R"cpp(
int f() {
  return rand();  // slowcc-lint: allow(no-such-rule) typo'd rule name
}
)cpp");
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 1);
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 1);
}

TEST(LintRules, RegistryKnowsEveryRule) {
  EXPECT_GE(slowcc::lint::all_rules().size(), 13u);
  EXPECT_TRUE(slowcc::lint::is_known_rule("no-wall-clock"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("error-taxonomy"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("no-std-function-hot-path"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("no-unguarded-shared-write"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("no-unseeded-container-hash"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("no-iteration-order-leak"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("no-time-arith-overflow"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("no-hot-path-alloc"));
  EXPECT_TRUE(slowcc::lint::is_known_rule("governor-charge-release"));
  EXPECT_FALSE(slowcc::lint::is_known_rule("bad-suppression"));
  EXPECT_FALSE(slowcc::lint::is_known_rule(""));
  // Every rule is enforced: the hot-path pair graduated from advisory
  // when the packet path went pooled + fn-pointer (DESIGN.md §14), and
  // enforced rules must never silently flip back.
  for (const auto& rule : slowcc::lint::all_rules()) {
    EXPECT_FALSE(rule.advisory) << rule.name;
  }
}

TEST(LintJson, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(slowcc::lint::json_escape("plain"), "plain");
  EXPECT_EQ(slowcc::lint::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(slowcc::lint::json_escape("x\n\t\r"), "x\\n\\t\\r");
  EXPECT_EQ(slowcc::lint::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(LintJson, ReporterEmitsEscapedFindings) {
  std::vector<Finding> findings = {
      {"src/a \"b\".cpp", 3, "no-raw-rand", "message with \"quotes\"\n",
       "hint\\path"}};
  std::ostringstream out;
  slowcc::lint::report_json(findings, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("src/a \\\"b\\\".cpp"), std::string::npos);
  EXPECT_NE(json.find("\"advisory\": false"), std::string::npos);
  EXPECT_NE(json.find("message with \\\"quotes\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("hint\\\\path"), std::string::npos);
}

TEST(LintJson, ReporterMarksAdvisoryFindings) {
  // No built-in rule is advisory anymore; the reporter field is kept
  // for future rule rollouts, so exercise it with a synthetic finding.
  std::vector<Finding> findings = {{"src/sim/hot.cpp", 1, "future-rule",
                                    "message", "hint", /*advisory=*/true}};
  std::ostringstream out;
  slowcc::lint::report_json(findings, out);
  EXPECT_NE(out.str().find("\"advisory\": true"), std::string::npos);
}

TEST(LintText, ReporterPrintsFileLineRuleAndHint) {
  std::vector<Finding> findings = {
      {"src/x.cpp", 7, "no-wall-clock", "bad clock", "use sim::Time"}};
  std::ostringstream out;
  slowcc::lint::report_text(findings, out);
  EXPECT_NE(out.str().find("src/x.cpp:7: [no-wall-clock] bad clock"),
            std::string::npos);
  EXPECT_NE(out.str().find("hint: use sim::Time"), std::string::npos);
}

TEST(LintScope, SpecSubsystemPathsAreCoveredBySrcRules) {
  // src/spec/ joined the tree after the rules were written; the rules
  // scope by the src/ path prefix, so the new subsystem must be
  // covered with no carve-outs. One positive + one negative fixture
  // per rule class that matters for the spec compiler.
  EXPECT_EQ(count_rule(lint_one("src/spec/toml.cpp", R"cpp(
void f() { throw std::runtime_error("nope"); }
)cpp"),
                       "error-taxonomy"),
            1);
  EXPECT_EQ(count_rule(lint_one("src/spec/toml.cpp", R"cpp(
void f() { throw sim::SimError(sim::SimErrc::kBadSpec, "spec", "d"); }
)cpp"),
                       "error-taxonomy"),
            0);

  EXPECT_EQ(count_rule(lint_one("src/spec/compiler.cpp", R"cpp(
void f() { double start_time = 3.0; }
)cpp"),
                       "no-float-time"),
            1);
  EXPECT_EQ(count_rule(lint_one("src/spec/compiler.cpp", R"cpp(
void f() { double start_s = 3.0; }
)cpp"),
                       "no-float-time"),
            0);

  EXPECT_EQ(count_rule(lint_one("src/spec/compiler.cpp", R"cpp(
int f() { return rand() % 3; }
)cpp"),
                       "no-raw-rand"),
            1);
  EXPECT_EQ(count_rule(lint_one("src/spec/compiler.cpp", R"cpp(
double f(slowcc::sim::Rng& rng) { return rng.uniform(); }
)cpp"),
                       "no-raw-rand"),
            0);

  EXPECT_EQ(count_rule(lint_one("src/spec/scenario_spec.cpp", R"cpp(
#include <chrono>
void f() { auto t = std::chrono::steady_clock::now(); }
)cpp"),
                       "no-wall-clock"),
            1);
}

TEST(LintText, ReporterTagsAdvisoryFindingsInTheRuleBracket) {
  // Advisory tagging is exercised with a synthetic finding now that
  // every built-in rule is enforced.
  std::vector<Finding> findings = {{"src/sim/hot.cpp", 1, "future-rule",
                                    "message", "hint", /*advisory=*/true}};
  std::ostringstream out;
  slowcc::lint::report_text(findings, out);
  EXPECT_NE(out.str().find("[future-rule (advisory)]"), std::string::npos);
}

// ====================================================================
// v2 lexer unit tests — the token stream the rules run on.
// ====================================================================

namespace lex = slowcc::lint::lex;

bool has_ident(const lex::LexedSource& lx, const std::string& text) {
  return std::any_of(lx.tokens.begin(), lx.tokens.end(),
                     [&](const lex::Token& t) {
                       return t.kind == lex::TokKind::kIdent && t.text == text;
                     });
}

int count_kind(const lex::LexedSource& lx, lex::TokKind kind) {
  return static_cast<int>(
      std::count_if(lx.tokens.begin(), lx.tokens.end(),
                    [&](const lex::Token& t) { return t.kind == kind; }));
}

TEST(LintLexer, NormalizesDigraphsToPrimarySpelling) {
  const auto lx = lex::lex("int a<:3:> = <%1,2%>;\n");
  std::vector<std::string> puncts;
  for (const auto& t : lx.tokens) {
    if (t.kind == lex::TokKind::kPunct) puncts.push_back(t.text);
  }
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "["), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "]"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "{"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "}"), puncts.end());
}

TEST(LintLexer, AdjacentStringLiteralsStayTwoTokens) {
  const auto lx = lex::lex("const char* s = \"a\" \"b\";\n");
  ASSERT_EQ(count_kind(lx, lex::TokKind::kString), 2);
  for (const auto& t : lx.tokens) {
    if (t.kind == lex::TokKind::kString) {
      // Rules match on `text`, which literals keep empty; the raw bytes
      // live in `literal`.
      EXPECT_TRUE(t.text.empty());
      EXPECT_TRUE(t.literal == "a" || t.literal == "b");
    }
  }
}

TEST(LintLexer, IfZeroRegionIsExcludedAndElseBranchIsLive) {
  const auto lx = lex::lex(
      "#if 0\n"
      "rand();\n"
      "#else\n"
      "int live = 1;\n"
      "#endif\n"
      "#if 0\n"
      "#if 0\n"
      "nested();\n"
      "#endif\n"
      "still_dead();\n"
      "#endif\n");
  EXPECT_FALSE(has_ident(lx, "rand"));
  EXPECT_FALSE(has_ident(lx, "nested"));
  EXPECT_FALSE(has_ident(lx, "still_dead"));
  EXPECT_TRUE(has_ident(lx, "live"));
}

TEST(LintLexer, MultiLineMacroBodyStaysInTheStream) {
  const auto lx = lex::lex(
      "#define JITTER() \\\n"
      "  rand()\n"
      "int x = JITTER();\n");
  bool saw_pp_rand = false;
  for (const auto& t : lx.tokens) {
    if (t.kind == lex::TokKind::kIdent && t.text == "rand" && t.pp) {
      saw_pp_rand = true;
      EXPECT_EQ(t.line, 2);  // physical line, after the splice
    }
  }
  EXPECT_TRUE(saw_pp_rand);
  // And the rule engine sees it: a rand() hidden in a macro is still a
  // finding under src/.
  const auto findings = lint_one("src/sim/macro.cpp",
                                 "#define JITTER() \\\n  rand()\n");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 1);
}

TEST(LintLexer, PpNumbersLexAsOneToken) {
  const auto lx = lex::lex("long n = 1'000'000; double d = 1e9;\n");
  EXPECT_EQ(count_kind(lx, lex::TokKind::kNumber), 2);
}

TEST(LintLexer, QuotedIncludeFeedsTheDirectiveList) {
  const auto lx = lex::lex("#include \"net/link.hpp\"\n#include <vector>\n");
  ASSERT_EQ(lx.directives.size(), 2u);
  EXPECT_EQ(lx.directives[0].include_target, "net/link.hpp");
  EXPECT_TRUE(lx.directives[0].quoted_include);
  EXPECT_FALSE(lx.directives[1].quoted_include);
}

// ====================================================================
// v1 masking-bug regressions — each of these was mis-lexed by the old
// per-line masking pass. The lexer handles splices and raw strings as
// translation phases, so these must stay fixed.
// ====================================================================

TEST(LintMaskingRegression, RawStringBodyWithDelimiterIsNotCode) {
  const auto findings = lint_one("src/net/raw.cpp", R"cpp(
const char* s = R"x(rand() time(nullptr) std::mt19937 gen;)x";
const char* t = u8R"(more rand() here)";
int live = 1;
)cpp");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 0);
  EXPECT_EQ(count_rule(findings, "no-wall-clock"), 0);
}

TEST(LintMaskingRegression, IdentEndingInRIsNotARawStringPrefix) {
  // v1 treated `MARKER"(...` as a raw-string open and masked the rest
  // of the file; the rand() after it went unreported.
  const auto findings = lint_one("src/net/marker.cpp",
                                 "const char* s = MARKER\"(open\";\n"
                                 "int r = rand();\n");
  ASSERT_EQ(count_rule(findings, "no-raw-rand"), 1);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintMaskingRegression, SplicedLineCommentKeepsCommenting) {
  // The backslash splice continues the line comment onto the next
  // physical line, so the rand() there is comment text — but the one
  // after the comment ends is real.
  const auto findings = lint_one("src/net/splice.cpp",
                                 "// banned calls: \\\n"
                                 "   rand() time(nullptr)\n"
                                 "int r = rand();\n");
  ASSERT_EQ(count_rule(findings, "no-raw-rand"), 1);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(count_rule(findings, "no-wall-clock"), 0);
}

TEST(LintMaskingRegression, SplicedStringLiteralKeepsBeingAString) {
  const auto findings = lint_one("src/net/strsplice.cpp",
                                 "const char* s = \"half \\\n"
                                 "rand() rest\";\n"
                                 "int live = 1;\n");
  EXPECT_EQ(count_rule(findings, "no-raw-rand"), 0);
}

TEST(LintMaskingRegression, SplicedIdentifierLexesAsOneIdentifier) {
  // ra\<newline>nd is one identifier after phase-2 splicing — v1 saw
  // two harmless fragments.
  const auto findings = lint_one("src/net/idsplice.cpp",
                                 "int f() { return ra\\\nnd() % 3; }\n");
  ASSERT_EQ(count_rule(findings, "no-raw-rand"), 1);
  EXPECT_EQ(findings[0].line, 1);
}

// ====================================================================
// Determinism family.
// ====================================================================

TEST(LintContainerHash, FlagsPointerKeyedUnorderedContainers) {
  const auto findings = lint_one("src/net/hash.cpp", R"cpp(
#include <unordered_map>
#include <unordered_set>
struct Flow {};
std::unordered_map<Flow*, int> by_flow;
std::unordered_set<const Flow*> live;
)cpp");
  ASSERT_EQ(count_rule(findings, "no-unseeded-container-hash"), 2);
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_FALSE(findings[0].advisory);
}

TEST(LintContainerHash, AllowsValueKeysAndCustomHashers) {
  const auto findings = lint_one("src/net/hash_ok.cpp", R"cpp(
#include <unordered_map>
#include <unordered_set>
struct Flow {};
struct FlowIdHash { unsigned operator()(const Flow* f) const; };
std::unordered_map<int, Flow*> by_id;                    // pointer VALUE: fine
std::unordered_map<Flow*, int, FlowIdHash> stable;       // custom hasher
std::unordered_set<Flow*, FlowIdHash> stable_set;
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unseeded-container-hash"), 0);
}

TEST(LintContainerHash, IsSuppressibleWithReason) {
  const auto findings = lint_one("src/net/hash_sup.cpp", R"cpp(
#include <unordered_map>
struct Flow {};
// slowcc-lint: allow(no-unseeded-container-hash) lookup-only, never iterated
std::unordered_map<Flow*, int> by_flow;
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unseeded-container-hash"), 0);
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 0);
}

TEST(LintIterationOrderLeak, FlagsUnorderedIterationFeedingOutput) {
  const auto findings = lint_one("src/metrics/dump.cpp", R"cpp(
#include <iostream>
#include <unordered_map>
struct T {
  std::unordered_map<int, int> stats_;
  void dump() const {
    for (const auto& kv : stats_) std::cout << kv.second;
  }
  long sum() const {
    long s = 0;
    for (const auto& kv : stats_) s += kv.second;
    return s;
  }
};
)cpp");
  // The leaking loop carries both rules; the accumulating loop only the
  // plain iteration rule.
  EXPECT_EQ(count_rule(findings, "no-iteration-order-leak"), 1);
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 2);
  for (const auto& f : findings) {
    if (f.rule == "no-iteration-order-leak") {
      EXPECT_EQ(f.line, 7);
    }
  }
}

TEST(LintIterationOrderLeak, FlagsAppendStyleLeaksToo) {
  const auto findings = lint_one("src/metrics/rows.cpp", R"cpp(
#include <unordered_map>
#include <vector>
std::unordered_map<int, int> stats;
void rows(std::vector<int>* out) {
  for (const auto& kv : stats) out->push_back(kv.second);
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-iteration-order-leak"), 1);
}

TEST(LintIterationOrderLeak, BothRulesSuppressTogether) {
  const auto findings = lint_one("src/metrics/sup.cpp", R"cpp(
#include <iostream>
#include <unordered_map>
std::unordered_map<int, int> stats;
void dump() {
  // slowcc-lint: allow(no-unordered-iteration, no-iteration-order-leak) debug-only dump
  for (const auto& kv : stats) std::cout << kv.second;
}
)cpp");
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 0);
  EXPECT_EQ(count_rule(findings, "no-iteration-order-leak"), 0);
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 0);
}

TEST(LintTimeArithOverflow, FlagsArithmeticOnTimeSentinels) {
  const auto findings = lint_one("src/sim/deadline.cpp", R"cpp(
#include <cstdint>
long next_deadline(long pad) { return INT64_MAX + pad; }
sim::Time horizon(sim::Time dt) { return sim::Time::max() + dt; }
long scaled(long k) { return std::numeric_limits<int64_t>::max() * k; }
)cpp");
  EXPECT_EQ(count_rule(findings, "no-time-arith-overflow"), 3);
}

TEST(LintTimeArithOverflow, AllowsGuardedAndComparisonUses) {
  const auto findings = lint_one("src/sim/deadline_ok.cpp", R"cpp(
#include <cstdint>
#include <algorithm>
long capped(long a) { return std::min(INT64_MAX + 0L, a); }      // guarded
long pick(long a) { return a < INT64_MAX ? a + 1 : a; }          // ternary
bool at_horizon(long t) { return t == INT64_MAX; }               // compare
long whole = INT64_MAX;                                          // plain init
)cpp");
  EXPECT_EQ(count_rule(findings, "no-time-arith-overflow"), 0);
  // Outside src/ the sentinel arithmetic is tooling's business.
  const auto tool = lint_one("tools/report.cpp",
                             "long t = INT64_MAX + 1;\n");
  EXPECT_EQ(count_rule(tool, "no-time-arith-overflow"), 0);
}

// ====================================================================
// Hot-path family: call-table reachability from enqueue/deliver/pop.
// ====================================================================

TEST(LintHotPathAlloc, FlagsAllocationsReachableFromEnqueue) {
  const auto findings = lint_one("src/net/queue.cpp", R"cpp(
class ScratchQueue {
 public:
  void enqueue(int v) { slot_ = fill(v); }
 private:
  int* fill(int v) { return new int(v); }
  int* slot_ = nullptr;
};
int* cold_path() { return new int(0); }
)cpp");
  ASSERT_EQ(count_rule(findings, "no-hot-path-alloc"), 1);
  for (const auto& f : findings) {
    if (f.rule == "no-hot-path-alloc") {
      EXPECT_FALSE(f.advisory);  // enforced since the pooled packet path
      EXPECT_EQ(f.line, 6);  // the `new` in fill(), not cold_path()'s
      EXPECT_NE(f.message.find("enqueue"), std::string::npos);
    }
  }
}

TEST(LintHotPathAlloc, SeesCallEdgesAcrossFilesInTheBatch) {
  const std::vector<SourceFile> sources = {
      {"src/net/q.cpp", R"cpp(
class PacketQueue {
 public:
  void enqueue(int v) { log_drop(v); }
};
)cpp"},
      {"src/net/log.cpp", R"cpp(
#include <vector>
std::vector<int> dropped;
void log_drop(int v) { dropped.push_back(v); }
)cpp"},
  };
  const auto findings = slowcc::lint::run(sources);
  ASSERT_EQ(count_rule(findings, "no-hot-path-alloc"), 1);
  for (const auto& f : findings) {
    if (f.rule == "no-hot-path-alloc") {
      EXPECT_EQ(f.file, "src/net/log.cpp");
      EXPECT_NE(f.message.find("push_back"), std::string::npos);
    }
  }
}

TEST(LintHotPathAlloc, RootsOnlyComeFromSrc) {
  const std::string queue = R"cpp(
class ScratchQueue {
 public:
  void enqueue(int v) { slot_ = new int(v); }
 private:
  int* slot_ = nullptr;
};
)cpp";
  EXPECT_EQ(count_rule(lint_one("tools/fixture.cpp", queue),
                       "no-hot-path-alloc"),
            0);
}

// ====================================================================
// Resource-pairing family: governor charge/release.
// ====================================================================

TEST(LintGovernorPairing, FlagsChargeWithoutRelease) {
  const auto findings = lint_one("src/net/leaky.cpp", R"cpp(
class LeakyQueue {
 public:
  void enqueue(int n) { gov_.note_packet_admitted(n); }
 private:
  int gov_;
};
)cpp");
  ASSERT_EQ(count_rule(findings, "governor-charge-release"), 1);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_FALSE(findings[0].advisory);
  EXPECT_NE(findings[0].message.find("LeakyQueue"), std::string::npos);
}

TEST(LintGovernorPairing, BalancedClassesAreClean) {
  const auto findings = lint_one("src/net/balanced.cpp", R"cpp(
class FairQueue {
 public:
  void enqueue(int n) { gov_.note_packet_admitted(n); }
  void dequeue(int n) { gov_.note_packet_removed(n); }
 private:
  int gov_;
};
)cpp");
  EXPECT_EQ(count_rule(findings, "governor-charge-release"), 0);
}

TEST(LintGovernorPairing, PairsAcrossFilesOfTheSameClass) {
  // Charge in one TU, release in another: the pairing is grouped by
  // class across the whole batch, so this is balanced.
  const std::vector<SourceFile> sources = {
      {"src/net/split_in.cpp", R"cpp(
void SplitQueue::enqueue(int n) { gov_.charge(n); }
)cpp"},
      {"src/net/split_out.cpp", R"cpp(
void SplitQueue::drop(int n) { gov_.release(n); }
)cpp"},
  };
  EXPECT_EQ(count_rule(slowcc::lint::run(sources), "governor-charge-release"),
            0);
  // Remove the releasing TU and the same charge is a leak.
  EXPECT_EQ(count_rule(slowcc::lint::run({sources[0]}),
                       "governor-charge-release"),
            1);
}

TEST(LintGovernorPairing, ReleaseOnlyClassesAreFine) {
  // A drain-side helper that only releases is legitimate (the charge
  // lives elsewhere, possibly outside the lint batch).
  const auto findings = lint_one("src/net/drain.cpp", R"cpp(
class Drainer {
 public:
  void sweep(int n) { gov_.release(n); }
 private:
  int gov_;
};
)cpp");
  EXPECT_EQ(count_rule(findings, "governor-charge-release"), 0);
}

// ====================================================================
// Include graph: cycle detection feeds header-hygiene.
// ====================================================================

TEST(LintIncludeGraph, ReportsQuotedIncludeCycles) {
  const std::vector<SourceFile> sources = {
      {"src/net/a.hpp",
       "#pragma once\n#include \"net/b.hpp\"\nstruct A {};\n"},
      {"src/net/b.hpp",
       "#pragma once\n#include \"net/a.hpp\"\nstruct B {};\n"},
  };
  const auto findings = slowcc::lint::run(sources);
  ASSERT_EQ(count_rule(findings, "header-hygiene"), 1);
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/net/a.hpp"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/net/b.hpp"), std::string::npos);
}

TEST(LintIncludeGraph, AcyclicIncludesAreClean) {
  const std::vector<SourceFile> sources = {
      {"src/net/top.hpp",
       "#pragma once\n#include \"net/base.hpp\"\nstruct T {};\n"},
      {"src/net/base.hpp", "#pragma once\nstruct Base {};\n"},
  };
  EXPECT_EQ(count_rule(slowcc::lint::run(sources), "header-hygiene"), 0);
}

// ====================================================================
// SARIF reporter, baseline round-trip, facts round-trip.
// ====================================================================

TEST(LintSarif, EmitsVersionedRunWithRuleAndLocation) {
  std::vector<Finding> findings = {
      {"src/x.cpp", 7, "no-raw-rand", "seeded jitter", "use sim::Rng"},
      {"src/y.cpp", 3, "no-hot-path-alloc", "heap allocation", "preallocate",
       /*advisory=*/true}};
  std::ostringstream out;
  slowcc::lint::report_sarif(findings, out);
  const std::string sarif = out.str();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"slowcc_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"no-raw-rand\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/x.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  // Enforced findings are "error"; advisory ones are "note".
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"note\""), std::string::npos);
}

TEST(LintBaseline, FingerprintsRoundTripAndIgnoreLines) {
  std::vector<Finding> findings = {
      {"src/x.cpp", 7, "no-raw-rand", "seeded jitter", "use sim::Rng"}};
  std::ostringstream out;
  slowcc::lint::write_baseline(findings, out);
  std::istringstream in(out.str());
  const auto baseline = slowcc::lint::parse_baseline(in);
  EXPECT_EQ(baseline.count(slowcc::lint::finding_fingerprint(findings[0])),
            1u);
  // Fingerprints are line-free: the same finding shifted by an edit
  // elsewhere in the file still matches.
  Finding moved = findings[0];
  moved.line = 99;
  EXPECT_EQ(slowcc::lint::finding_fingerprint(moved),
            slowcc::lint::finding_fingerprint(findings[0]));
  // Comment lines and blanks in the file are skipped.
  std::istringstream noisy("# comment\n\n" +
                           slowcc::lint::finding_fingerprint(findings[0]) +
                           "\n");
  EXPECT_EQ(slowcc::lint::parse_baseline(noisy).size(), 1u);
}

TEST(LintFacts, SerializeDeserializeRoundTrips) {
  const auto facts = slowcc::lint::extract_facts({"src/net/rt.cpp", R"cpp(
#include "net/link.hpp"
#include <unordered_map>
std::unordered_map<int, int> stats;
class Q {
 public:
  void enqueue(int v) { buf_.push_back(v); helper(v); }
 private:
  void helper(int v);
  std::vector<int> buf_;
};
void dump() {
  // slowcc-lint: allow(no-unordered-iteration) test fixture
  for (const auto& kv : stats) consume(kv);
}
int bad() { return rand(); }
)cpp"});
  const std::string blob = slowcc::lint::serialize_facts(facts);
  slowcc::lint::FileFacts back;
  ASSERT_TRUE(slowcc::lint::deserialize_facts(blob, &back));
  EXPECT_EQ(back.path, facts.path);
  EXPECT_EQ(back.unordered_symbols, facts.unordered_symbols);
  EXPECT_EQ(back.includes, facts.includes);
  EXPECT_EQ(back.functions.size(), facts.functions.size());
  EXPECT_EQ(back.iteration_sites.size(), facts.iteration_sites.size());
  EXPECT_EQ(back.line_allow, facts.line_allow);
  EXPECT_EQ(back.local_findings.size(), facts.local_findings.size());
  // Round-tripped facts re-serialize byte-identically — the cache can
  // be rewritten from memory without drift.
  EXPECT_EQ(slowcc::lint::serialize_facts(back), blob);
  // And the rule engine produces identical findings from either copy.
  const auto direct = slowcc::lint::run_from_facts({facts});
  const auto cached = slowcc::lint::run_from_facts({back});
  ASSERT_EQ(direct.size(), cached.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].rule, cached[i].rule);
    EXPECT_EQ(direct[i].line, cached[i].line);
  }
}

TEST(LintFacts, DeserializeRejectsUnknownTags) {
  slowcc::lint::FileFacts out;
  EXPECT_FALSE(slowcc::lint::deserialize_facts("zz|mystery\n", &out));
}

TEST(LintFacts, FingerprintChangesWithRuleSet) {
  // The cache header embeds this; it just has to be stable and
  // non-empty within one build.
  EXPECT_FALSE(slowcc::lint::rules_fingerprint().empty());
  EXPECT_NE(slowcc::lint::rules_fingerprint().find("slowcc-lint"),
            std::string::npos);
}

}  // namespace
