#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace slowcc::sim {
namespace {

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(t.as_nanos(), 0);
}

TEST(Time, FactoriesAgree) {
  EXPECT_EQ(Time::seconds(1.0), Time::millis(1000));
  EXPECT_EQ(Time::millis(1), Time::micros(1000));
  EXPECT_EQ(Time::micros(1), Time::nanos(1000));
}

TEST(Time, SecondsRoundsToNearestNano) {
  EXPECT_EQ(Time::seconds(0.05).as_nanos(), 50'000'000);
  EXPECT_EQ(Time::seconds(1e-9).as_nanos(), 1);
  EXPECT_EQ(Time::seconds(-1.5).as_nanos(), -1'500'000'000);
}

TEST(Time, Arithmetic) {
  const Time a = Time::millis(30);
  const Time b = Time::millis(20);
  EXPECT_EQ(a + b, Time::millis(50));
  EXPECT_EQ(a - b, Time::millis(10));
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_DOUBLE_EQ(a / b, 1.5);
}

TEST(Time, ScalarMultiply) {
  EXPECT_EQ(Time::millis(10) * 5.0, Time::millis(50));
  EXPECT_EQ(Time::millis(10) * 2, Time::millis(20));  // int promotes
}

TEST(Time, CompoundAssignment) {
  Time t = Time::millis(5);
  t += Time::millis(10);
  EXPECT_EQ(t, Time::millis(15));
  t -= Time::millis(20);
  EXPECT_EQ(t, Time::millis(-5));
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::millis(1), Time::millis(2));
  EXPECT_GT(Time::max(), Time::seconds(1e9));
}

TEST(Time, AsUnits) {
  const Time t = Time::millis(1500);
  EXPECT_DOUBLE_EQ(t.as_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.as_millis(), 1500.0);
}

TEST(Time, ToStringFormatsSeconds) {
  EXPECT_EQ(Time::millis(1250).to_string(), "1.250000s");
}

TEST(TransmissionTime, MatchesBitsOverRate) {
  // 1000 bytes at 10 Mb/s = 0.8 ms.
  EXPECT_EQ(transmission_time(1000, 10e6), Time::micros(800));
  // 40-byte ACK at 100 Mb/s = 3.2 us.
  EXPECT_EQ(transmission_time(40, 100e6), Time::nanos(3200));
}

}  // namespace
}  // namespace slowcc::sim
