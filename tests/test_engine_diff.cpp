#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <tuple>

#include "engine_diff.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace slowcc::test {
namespace {

// Property test: randomized 10k-op schedule/cancel/pop/peek scripts,
// heap and wheel must agree on every observable. On failure the report
// embeds the delta-debugged minimal script, so the assertion message is
// directly actionable.
TEST(EngineDiff, RandomizedScriptsAgree) {
  constexpr std::uint64_t kBaseSeed = 0x5107cc5eedULL;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed = sim::derive_seed(kBaseSeed, trial);
    const std::string report = diff_engines(random_script(seed, 10000));
    EXPECT_TRUE(report.empty()) << "seed " << seed << ":\n" << report;
  }
}

// Short scripts shake out horizon-edge bugs that long ones average
// away (first advance, first overflow jump, pop-through-empty).
TEST(EngineDiff, ShortScriptsAgree) {
  constexpr std::uint64_t kBaseSeed = 0x51075407ULL;
  for (std::uint64_t trial = 0; trial < 64; ++trial) {
    const std::uint64_t seed = sim::derive_seed(kBaseSeed, trial);
    const std::string report = diff_engines(random_script(seed, 40));
    EXPECT_TRUE(report.empty()) << "seed " << seed << ":\n" << report;
  }
}

TEST(EngineDiff, MassiveTieBurstAgrees) {
  DiffScript script;
  for (int i = 0; i < 2000; ++i) {
    script.push_back(DiffOp{DiffOp::Kind::kSchedule, 777'000, 0});
  }
  for (std::size_t i = 0; i < 600; ++i) {
    script.push_back(DiffOp{DiffOp::Kind::kCancel, 0, i * 3});
  }
  for (int i = 0; i < 900; ++i) {
    script.push_back(DiffOp{DiffOp::Kind::kPop, 0, 0});
  }
  const std::string report = diff_engines(script);
  EXPECT_TRUE(report.empty()) << report;
}

// INT64_MAX timestamps stress the overflow-jump saturation path; the
// near events interleave with them across the full wheel span.
TEST(EngineDiff, FarFutureSentinelsAgree) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  DiffScript script;
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, kMax, 0});
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, 5, 0});
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, kMax - 1, 0});
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, kMax, 0});
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, 1'000'000'000'000, 0});
  for (int i = 0; i < 6; ++i) {
    script.push_back(DiffOp{DiffOp::Kind::kPop, 0, 0});
    script.push_back(DiffOp{DiffOp::Kind::kPeek, 0, 0});
  }
  const std::string report = diff_engines(script);
  EXPECT_TRUE(report.empty()) << report;
}

// Regression: draining the slot abutting INT64_MAX saturates the
// wheel's horizon (its nominal exclusive end, INT64_MAX + 1, is
// unrepresentable — computing it was UB). Events scheduled at
// INT64_MAX afterwards re-enter the top slot and must still fire, in
// seq order, and events just below it stage straight into the due
// heap.
TEST(EngineDiff, ScheduleAtMaxAfterHorizonSaturates) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  DiffScript script;
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, kMax, 0});
  script.push_back(DiffOp{DiffOp::Kind::kPop, 0, 0});  // saturates the horizon
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, kMax, 0});
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, kMax, 0});
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, kMax - 1, 0});
  script.push_back(DiffOp{DiffOp::Kind::kPeek, 0, 0});
  for (int i = 0; i < 3; ++i) {
    script.push_back(DiffOp{DiffOp::Kind::kPop, 0, 0});
    script.push_back(DiffOp{DiffOp::Kind::kPeek, 0, 0});
  }
  const std::string report = diff_engines(script);
  EXPECT_TRUE(report.empty()) << report;
}

// Regression: when a level-0 slot and a level-1 slot start at the same
// timestamp, the wheel must cascade the level-1 slot first — it can
// hold events earlier than anything in the level-0 slot. Draining the
// level-0 slot first served events out of time order.
TEST(EngineDiff, EqualStartCascadeBeatsDrainAgrees) {
  constexpr std::int64_t kL1 = std::int64_t{1} << 20;  // level-1 slot span
  DiffScript script;
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, kL1 - 100, 0});
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, kL1 + 10, 0});
  script.push_back(DiffOp{DiffOp::Kind::kPop, 0, 0});  // advances the horizon
  script.push_back(DiffOp{DiffOp::Kind::kSchedule, kL1 + 50, 0});
  script.push_back(DiffOp{DiffOp::Kind::kPop, 0, 0});  // must be kL1 + 10
  script.push_back(DiffOp{DiffOp::Kind::kPop, 0, 0});
  const std::string report = diff_engines(script);
  EXPECT_TRUE(report.empty()) << report;
}

TEST(EngineDiff, RunScriptIsDeterministicPerEngine) {
  const DiffScript script = random_script(0xd5e7e2ULL, 2000);
  EXPECT_EQ(run_script(sim::EngineKind::kWheel, script),
            run_script(sim::EngineKind::kWheel, script));
  EXPECT_EQ(run_script(sim::EngineKind::kHeap, script),
            run_script(sim::EngineKind::kHeap, script));
}

// Simulator-level differential: a self-rescheduling workload where
// every callback draws from a shared Rng, so any divergence in
// execution order immediately snowballs into different digests.
class RespawnWorkload {
 public:
  RespawnWorkload(sim::EngineKind kind, std::uint64_t seed, int budget)
      : sim_(kind), rng_(seed), budget_(budget) {}

  void spawn() {
    if (budget_ <= 0) return;
    --budget_;
    const auto delay = sim::Time::nanos(
        static_cast<std::int64_t>(rng_.uniform_int(std::uint64_t{1} << 34)));
    sim_.schedule_in(delay, [this] {
      if (rng_.chance(0.7)) spawn();
      if (rng_.chance(0.5)) spawn();
    });
  }

  sim::Simulator& sim() { return sim_; }

 private:
  sim::Simulator sim_;
  sim::Rng rng_;
  int budget_;
};

TEST(EngineDiff, SimulatorTraceDigestsMatch) {
  const auto run = [](sim::EngineKind kind) {
    RespawnWorkload w(kind, 0xd16e57ULL, 30000);
    for (int i = 0; i < 100; ++i) w.spawn();
    w.sim().run();
    return std::tuple{w.sim().trace_digest(), w.sim().events_executed(),
                      w.sim().now()};
  };
  const auto heap = run(sim::EngineKind::kHeap);
  const auto wheel = run(sim::EngineKind::kWheel);
  EXPECT_EQ(std::get<0>(heap), std::get<0>(wheel));
  EXPECT_EQ(std::get<1>(heap), std::get<1>(wheel));
  EXPECT_EQ(std::get<2>(heap), std::get<2>(wheel));
  EXPECT_GT(std::get<1>(heap), 10000u);  // workload actually ran
}

TEST(EngineDiff, EngineSelectionKnobs) {
  sim::Simulator heap_sim{sim::EngineKind::kHeap};
  sim::Simulator wheel_sim{sim::EngineKind::kWheel};
  EXPECT_STREQ(heap_sim.engine_name(), "heap");
  EXPECT_STREQ(wheel_sim.engine_name(), "wheel");
  EXPECT_EQ(heap_sim.engine_kind(), sim::EngineKind::kHeap);
  EXPECT_EQ(wheel_sim.engine_kind(), sim::EngineKind::kWheel);

  sim::set_thread_default_engine(sim::EngineKind::kHeap);
  {
    sim::Simulator s;
    EXPECT_EQ(s.engine_kind(), sim::EngineKind::kHeap);
  }
  sim::set_thread_default_engine(sim::EngineKind::kWheel);
  {
    sim::Simulator s;
    EXPECT_EQ(s.engine_kind(), sim::EngineKind::kWheel);
  }
  sim::clear_thread_default_engine();
}

TEST(EngineDiff, EngineKindNames) {
  EXPECT_STREQ(sim::engine_kind_name(sim::EngineKind::kHeap), "heap");
  EXPECT_STREQ(sim::engine_kind_name(sim::EngineKind::kWheel), "wheel");
}

}  // namespace
}  // namespace slowcc::test
