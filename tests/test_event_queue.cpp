#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace slowcc::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(Time::millis(30), [&] { fired.push_back(3); });
  q.schedule(Time::millis(10), [&] { fired.push_back(1); });
  q.schedule(Time::millis(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::millis(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop(nullptr)();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ReportsFireTime) {
  EventQueue q;
  q.schedule(Time::millis(42), [] {});
  Time t;
  (void)q.pop(&t);
  EXPECT_EQ(t, Time::millis(42));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.schedule(Time::millis(1), [&] { ran = true; });
  q.schedule(Time::millis(2), [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  EventId id = q.schedule(Time::millis(1), [] {});
  (void)q.pop(nullptr);
  q.cancel(id);  // must not corrupt bookkeeping
  EXPECT_TRUE(q.empty());
  q.schedule(Time::millis(2), [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DoubleCancelIsNoOp) {
  EventQueue q;
  EventId id = q.schedule(Time::millis(1), [] {});
  q.schedule(Time::millis(2), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DefaultEventIdIsInvalid) {
  EventId id;
  EXPECT_FALSE(id.valid());
  EventQueue q;
  q.cancel(id);  // harmless
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  EventId early = q.schedule(Time::millis(1), [] {});
  q.schedule(Time::millis(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), Time::millis(5));
}

TEST(EventQueue, CancelOfFiredIdDoesNotAffectLaterEvents) {
  // The already-fired id must not alias any live entry even after the
  // queue is reused for new events.
  EventQueue q;
  EventId fired_id = q.schedule(Time::millis(1), [] {});
  (void)q.pop(nullptr);
  bool ran = false;
  q.schedule(Time::millis(2), [&] { ran = true; });
  q.cancel(fired_id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, PendingTimesSkipsCancelledAndSorts) {
  EventQueue q;
  q.schedule(Time::millis(30), [] {});
  EventId mid = q.schedule(Time::millis(20), [] {});
  q.schedule(Time::millis(10), [] {});
  q.cancel(mid);
  const auto times = q.pending_times(8);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Time::millis(10));
  EXPECT_EQ(times[1], Time::millis(30));
}

TEST(EventQueue, PendingTimesHonoursCap) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule(Time::millis(i), [] {});
  const auto times = q.pending_times(3);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], Time::millis(0));
  EXPECT_EQ(times[2], Time::millis(2));
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(Time::micros(i), [&] { ++fired; }));
  }
  for (int i = 0; i < 1000; i += 2) q.cancel(ids[static_cast<size_t>(i)]);
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace slowcc::sim
