#include <gtest/gtest.h>

#include <vector>

#include "sim/error.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace slowcc::sim {
namespace {

// Every behavioural test runs against both engines; the fixture name in
// the test listing carries the engine ("AllEngines/EventQueueTest.X/heap").
class EventQueueTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  EventQueue q{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EventQueueTest,
    ::testing::Values(EngineKind::kHeap, EngineKind::kWheel),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return engine_kind_name(info.param);
    });

TEST_P(EventQueueTest, PopsInTimeOrder) {
  std::vector<int> fired;
  q.schedule(Time::millis(30), [&] { fired.push_back(3); });
  q.schedule(Time::millis(10), [&] { fired.push_back(1); });
  q.schedule(Time::millis(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, EqualTimesFireInInsertionOrder) {
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::millis(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop(nullptr)();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST_P(EventQueueTest, ReportsFireTime) {
  q.schedule(Time::millis(42), [] {});
  Time t;
  (void)q.pop(&t);
  EXPECT_EQ(t, Time::millis(42));
}

TEST_P(EventQueueTest, PopEventReportsFifoSeq) {
  q.schedule(Time::millis(7), [] {});
  q.schedule(Time::millis(7), [] {});
  PoppedEvent ev;
  (void)q.pop_event(&ev);
  EXPECT_EQ(ev.at, Time::millis(7));
  EXPECT_EQ(ev.seq, 1u);
  (void)q.pop_event(&ev);
  EXPECT_EQ(ev.seq, 2u);
}

TEST_P(EventQueueTest, CancelPreventsExecution) {
  bool ran = false;
  EventId id = q.schedule(Time::millis(1), [&] { ran = true; });
  q.schedule(Time::millis(2), [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_FALSE(ran);
}

TEST_P(EventQueueTest, CancelAfterFireIsNoOp) {
  EventId id = q.schedule(Time::millis(1), [] {});
  (void)q.pop(nullptr);
  q.cancel(id);  // must not corrupt bookkeeping
  EXPECT_TRUE(q.empty());
  q.schedule(Time::millis(2), [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST_P(EventQueueTest, DoubleCancelIsNoOp) {
  EventId id = q.schedule(Time::millis(1), [] {});
  q.schedule(Time::millis(2), [] {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
}

TEST_P(EventQueueTest, DefaultEventIdIsInvalid) {
  EventId id;
  EXPECT_FALSE(id.valid());
  q.cancel(id);  // harmless
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, NextTimeSkipsCancelledHead) {
  EventId early = q.schedule(Time::millis(1), [] {});
  q.schedule(Time::millis(5), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), Time::millis(5));
}

TEST_P(EventQueueTest, CancelOfFiredIdDoesNotAffectLaterEvents) {
  // The already-fired id must not alias any live entry even after the
  // queue is reused for new events.
  EventId fired_id = q.schedule(Time::millis(1), [] {});
  (void)q.pop(nullptr);
  bool ran = false;
  q.schedule(Time::millis(2), [&] { ran = true; });
  q.cancel(fired_id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_TRUE(ran);
}

TEST_P(EventQueueTest, PendingTimesSkipsCancelledAndSorts) {
  q.schedule(Time::millis(30), [] {});
  EventId mid = q.schedule(Time::millis(20), [] {});
  q.schedule(Time::millis(10), [] {});
  q.cancel(mid);
  const auto times = q.pending_times(8);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Time::millis(10));
  EXPECT_EQ(times[1], Time::millis(30));
}

TEST_P(EventQueueTest, PendingTimesHonoursCap) {
  for (int i = 0; i < 10; ++i) q.schedule(Time::millis(i), [] {});
  const auto times = q.pending_times(3);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], Time::millis(0));
  EXPECT_EQ(times[2], Time::millis(2));
}

TEST_P(EventQueueTest, ManyInterleavedOperations) {
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(Time::micros(i), [&] { ++fired; }));
  }
  for (int i = 0; i < 1000; i += 2) q.cancel(ids[static_cast<size_t>(i)]);
  while (!q.empty()) q.pop(nullptr)();
  EXPECT_EQ(fired, 500);
}

// Regression: next_time() on an all-cancelled queue used to trip an
// assert (and silently misbehave in release builds); it must raise the
// same structured error as a genuinely empty queue.
TEST_P(EventQueueTest, NextTimeOnAllCancelledThrowsSimError) {
  std::vector<EventId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(q.schedule(Time::millis(i + 1), [] {}));
  }
  for (EventId id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  try {
    (void)q.next_time();
    FAIL() << "next_time() on an all-cancelled queue did not throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.code(), SimErrc::kBadSchedule);
    EXPECT_EQ(e.component(), "EventQueue");
  }
}

TEST_P(EventQueueTest, PopOnEmptyThrowsSimError) {
  EXPECT_THROW((void)q.pop(nullptr), SimError);
  q.schedule(Time::millis(1), [] {});
  (void)q.pop(nullptr);
  EXPECT_THROW((void)q.pop(nullptr), SimError);
}

// Regression: cancelling the last remaining event and then asking for
// the next event must behave exactly like an empty queue — and the
// queue must stay usable afterwards.
TEST_P(EventQueueTest, CancelLastEventLeavesQueueUsable) {
  EventId only = q.schedule(Time::millis(9), [] {});
  q.cancel(only);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.next_time(), SimError);
  bool ran = false;
  q.schedule(Time::millis(10), [&] { ran = true; });
  EXPECT_EQ(q.next_time(), Time::millis(10));
  q.pop(nullptr)();
  EXPECT_TRUE(ran);
}

// Regression: a Simulator whose queue was entirely cancelled must
// complete run() as a no-op instead of dying inside next_time().
TEST_P(EventQueueTest, SimulatorRunAfterCancelAllCompletes) {
  Simulator s{GetParam()};
  bool ran = false;
  EventId a = s.schedule_in(Time::millis(1), [&] { ran = true; });
  EventId b = s.schedule_in(Time::millis(2), [&] { ran = true; });
  s.cancel(a);
  s.cancel(b);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.events_executed(), 0u);
}

// Regression for the heap engine's tombstone leak: ids cancelled but
// never popped used to accumulate in the cancelled-id set forever.
// Compaction must keep the tombstone count bounded by a small constant
// once live entries are outnumbered.
TEST(EventQueueHeap, CompactionBoundsTombstones) {
  EventQueue q{EngineKind::kHeap};
  std::vector<EventId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(q.schedule(Time::micros(i), [] {}));
  }
  for (EventId id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  const SchedulerStats stats = q.stats();
  EXPECT_LE(stats.tombstones, 100u);
  EXPECT_LE(stats.stored, 100u);
}

// The wheel reclaims nodes through its free list: a steady-state
// schedule/fire cycle must not grow the pool.
TEST(EventQueueWheel, PoolReusesNodes) {
  EventQueue q{EngineKind::kWheel};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      q.schedule(Time::micros(round * 1000 + i), [] {});
    }
    while (!q.empty()) q.pop(nullptr)();
  }
  EXPECT_EQ(q.stats().capacity, 100u);  // pool high-water mark, reused
  EXPECT_EQ(q.stats().stored, 0u);
}

// Cancelling a wheel-resident event reclaims its node immediately
// (O(1) unlink), not lazily at pop time.
TEST(EventQueueWheel, CancelReclaimsSlotResidentNodes) {
  EventQueue q{EngineKind::kWheel};
  std::vector<EventId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(q.schedule(Time::millis(i + 1), [] {}));
  }
  for (EventId id : ids) q.cancel(id);
  const SchedulerStats stats = q.stats();
  EXPECT_EQ(stats.stored, 0u);
  EXPECT_EQ(stats.tombstones, 0u);
}

TEST(EventQueueFacade, ReportsEngineIdentity) {
  EventQueue heap_q{EngineKind::kHeap};
  EventQueue wheel_q{EngineKind::kWheel};
  EXPECT_EQ(heap_q.engine_kind(), EngineKind::kHeap);
  EXPECT_EQ(wheel_q.engine_kind(), EngineKind::kWheel);
  EXPECT_STREQ(heap_q.engine_name(), "heap");
  EXPECT_STREQ(wheel_q.engine_name(), "wheel");
}

}  // namespace
}  // namespace slowcc::sim
