#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/error.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace slowcc::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen;
  sim.schedule_at(Time::millis(7), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, Time::millis(7));
  EXPECT_EQ(sim.now(), Time::millis(7));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time seen;
  sim.schedule_at(Time::millis(10), [&] {
    sim.schedule_in(Time::millis(5), [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, Time::millis(15));
}

TEST(Simulator, RunUntilStopsAtDeadlineAndSetsClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::millis(10), [&] { ++fired; });
  sim.schedule_at(Time::millis(30), [&] { ++fired; });
  sim.run_until(Time::millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::millis(20));
  sim.run_until(Time::millis(40));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventExactlyAtDeadlineRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(Time::millis(20), [&] { ran = true; });
  sim.run_until(Time::millis(20));
  EXPECT_TRUE(ran);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(Time::millis(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(Time::millis(5), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(Time::millis(-1), [] {}),
               std::invalid_argument);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 25; ++i) sim.schedule_at(Time::millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 25u);
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.schedule_at(Time::millis(1), [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelThenRunLeavesClockAtDeadline) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.schedule_at(Time::millis(10), [&] { ran = true; });
  sim.cancel(id);
  sim.run_until(Time::millis(20));
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.now(), Time::millis(20));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RescheduleFromInsideCallbackRunsInSamePass) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Time::millis(10), [&] {
    order.push_back(1);
    // Same-time event scheduled from inside a callback must still run
    // in this run_until pass (FIFO among equal times).
    sim.schedule_at(sim.now(), [&] { order.push_back(2); });
    sim.schedule_in(Time::millis(5), [&] { order.push_back(3); });
  });
  sim.run_until(Time::millis(15));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time::millis(15));
}

TEST(Simulator, EventScheduledAtDeadlineFromCallbackAtDeadlineRuns) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::millis(20), [&] {
    ++fired;
    sim.schedule_at(Time::millis(20), [&] { ++fired; });
  });
  sim.run_until(Time::millis(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelInsideCallbackOfLaterEvent) {
  Simulator sim;
  bool ran = false;
  EventId later{};
  sim.schedule_at(Time::millis(1), [&] { sim.cancel(later); });
  later = sim.schedule_at(Time::millis(2), [&] { ran = true; });
  sim.run_until(Time::millis(10));
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.now(), Time::millis(10));
}

TEST(Simulator, RunUntilSameDeadlineTwiceIsIdempotent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::millis(10), [&] { ++fired; });
  sim.run_until(Time::millis(10));
  sim.run_until(Time::millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Time::millis(10));
}

TEST(Simulator, SchedulingInThePastThrowsStructuredError) {
  Simulator sim;
  sim.schedule_at(Time::millis(10), [] {});
  sim.run();
  try {
    sim.schedule_at(Time::millis(5), [] {});
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.code(), SimErrc::kBadSchedule);
    EXPECT_EQ(e.component(), "Simulator");
  }
}

TEST(Simulator, EventHookFiresEveryNEvents) {
  Simulator sim;
  int hooks = 0;
  sim.set_event_hook(10, [&] { ++hooks; });
  for (int i = 0; i < 35; ++i) sim.schedule_at(Time::millis(i), [] {});
  sim.run();
  EXPECT_EQ(hooks, 3);
  sim.clear_event_hook();
  sim.set_event_hook(1, [&] { ++hooks; });  // slot is free again
}

TEST(Simulator, EventHookSlotIsExclusive) {
  Simulator sim;
  sim.set_event_hook(10, [] {});
  EXPECT_THROW(sim.set_event_hook(10, [] {}), SimError);
  EXPECT_THROW(sim.clear_event_hook(); sim.set_event_hook(0, [] {}),
               SimError);
}

TEST(Timer, FiresOnceAtScheduledDelay) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.schedule_in(Time::millis(10));
  EXPECT_TRUE(t.pending());
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RescheduleReplacesPrevious) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.schedule_in(Time::millis(10));
  t.schedule_in(Time::millis(20));  // replaces the first
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.now(), Time::millis(20));
}

TEST(Timer, CancelStopsFire) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.schedule_in(Time::millis(10));
  t.cancel();
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, CanRescheduleItselfFromCallback) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] {
    if (++fires < 5) t.schedule_in(Time::millis(10));
  });
  t.schedule_in(Time::millis(10));
  sim.run();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(sim.now(), Time::millis(50));
}

TEST(Timer, ExposesDeadlineWhilePending) {
  Simulator sim;
  Timer t(sim, [] {});
  sim.schedule_at(Time::millis(4), [] {});
  sim.run();
  t.schedule_in(Time::millis(10));
  EXPECT_EQ(t.deadline(), Time::millis(14));
  t.schedule_at(Time::millis(30));
  EXPECT_EQ(t.deadline(), Time::millis(30));
}

TEST(Timer, DestructionCancelsPendingEvent) {
  Simulator sim;
  int fires = 0;
  {
    Timer t(sim, [&] { ++fires; });
    t.schedule_in(Time::millis(10));
  }  // destroyed while pending
  sim.run();  // must not crash or fire
  EXPECT_EQ(fires, 0);
}

TEST(Simulator, EventBudgetThrowsDeadlineExceeded) {
  Simulator sim;
  std::function<void()> chain = [&] {
    sim.schedule_in(Time::millis(1), chain);
  };
  sim.schedule_at(Time::millis(1), chain);
  sim.set_event_budget(50);
  try {
    sim.run_until(Time::seconds(10));
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.code(), SimErrc::kDeadlineExceeded);
    EXPECT_NE(e.detail().find("event budget"), std::string::npos);
  }
  EXPECT_EQ(sim.events_executed(), 50u);
}

TEST(Simulator, EventBudgetCountsFromArming) {
  Simulator sim;
  for (int i = 0; i < 40; ++i) sim.schedule_at(Time::millis(i), [] {});
  sim.run_until(Time::millis(100));  // 40 events, no budget yet
  sim.set_event_budget(50);          // 50 more from here, not from zero
  for (int i = 0; i < 45; ++i) {
    sim.schedule_at(Time::millis(200 + i), [] {});
  }
  sim.run_until(Time::seconds(1));  // 45 < 50: fits
  EXPECT_EQ(sim.events_executed(), 85u);
  EXPECT_EQ(sim.event_budget(), 50u);
}

TEST(Simulator, ZeroEventBudgetMeansUnlimited) {
  Simulator sim;
  sim.set_event_budget(10);
  sim.set_event_budget(0);  // disarm
  for (int i = 0; i < 100; ++i) sim.schedule_at(Time::millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, ThreadEventCounterAccumulatesAcrossSimulators) {
  const std::uint64_t before = Simulator::thread_events_executed();
  {
    Simulator sim;
    for (int i = 0; i < 7; ++i) sim.schedule_at(Time::millis(i), [] {});
    sim.run();
  }
  {
    Simulator sim;
    for (int i = 0; i < 5; ++i) sim.schedule_at(Time::millis(i), [] {});
    sim.run();
  }
  EXPECT_EQ(Simulator::thread_events_executed() - before, 12u);
}

TEST(Simulator, ConstructObserverSeesEveryNewSimulator) {
  int seen = 0;
  Simulator::set_thread_construct_observer(
      [&](Simulator& s) { ++seen; s.set_event_budget(123); });
  Simulator a;
  Simulator b;
  Simulator::set_thread_construct_observer(nullptr);
  Simulator c;  // after clearing: unobserved
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(a.event_budget(), 123u);
  EXPECT_EQ(b.event_budget(), 123u);
  EXPECT_EQ(c.event_budget(), 0u);
}

TEST(Simulator, SecondConstructObserverIsRejected) {
  Simulator::set_thread_construct_observer([](Simulator&) {});
  EXPECT_THROW(Simulator::set_thread_construct_observer([](Simulator&) {}),
               SimError);
  Simulator::set_thread_construct_observer(nullptr);
}

}  // namespace
}  // namespace slowcc::sim
