// Gilbert-Elliott channel: configuration validation and statistical
// agreement between the empirical process and the closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "fault/gilbert_elliott.hpp"
#include "sim/error.hpp"
#include "sim/rng.hpp"

namespace slowcc::fault {
namespace {

TEST(GilbertElliott, RejectsInvalidProbabilities) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 1.5;
  EXPECT_THROW(GilbertElliott(cfg, sim::Rng(1)), sim::SimError);
  cfg = GilbertElliottConfig{};
  cfg.loss_bad = -0.1;
  EXPECT_THROW(GilbertElliott(cfg, sim::Rng(1)), sim::SimError);
  cfg = GilbertElliottConfig{};
  cfg.p_good_to_bad = 0.0;
  cfg.p_bad_to_good = 0.0;
  EXPECT_THROW(GilbertElliott(cfg, sim::Rng(1)), sim::SimError);
}

TEST(GilbertElliott, ClosedForms) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.01;
  cfg.p_bad_to_good = 0.09;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 0.5;
  EXPECT_NEAR(cfg.stationary_bad(), 0.1, 1e-12);
  EXPECT_NEAR(cfg.expected_loss_rate(), 0.05, 1e-12);
  // Continuation probability (1 - 0.09) * 0.5 = 0.455.
  EXPECT_NEAR(cfg.expected_mean_burst(), 1.0 / (1.0 - 0.455), 1e-12);
}

TEST(GilbertElliott, AlwaysLoseInBadNeverInGood) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 1.0;  // enters BAD on the first packet
  cfg.p_bad_to_good = 0.0;  // and never leaves
  cfg.loss_bad = 1.0;
  GilbertElliott ge(cfg, sim::Rng(7));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ge.should_drop());
  EXPECT_TRUE(ge.in_bad_state());
  EXPECT_EQ(ge.packets_dropped(), 100u);
}

// Satellite requirement: empirical loss rate and mean burst length
// within tolerance of the configured transition probabilities, across
// three seeds.
TEST(GilbertElliott, EmpiricalLossRateAndBurstLengthMatchConfig) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.005;
  cfg.p_bad_to_good = 0.10;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 0.6;
  const double want_loss = cfg.expected_loss_rate();
  const double want_burst = cfg.expected_mean_burst();

  for (std::uint64_t seed : {11u, 222u, 3333u}) {
    GilbertElliott ge(cfg, sim::Rng(seed));
    const int n = 2'000'000;
    std::int64_t losses = 0;
    std::int64_t bursts = 0;
    int run = 0;
    for (int i = 0; i < n; ++i) {
      if (ge.should_drop()) {
        ++losses;
        ++run;
      } else if (run > 0) {
        ++bursts;
        run = 0;
      }
    }
    if (run > 0) ++bursts;
    const double got_loss = static_cast<double>(losses) / n;
    const double got_burst =
        static_cast<double>(losses) / static_cast<double>(bursts);
    EXPECT_NEAR(got_loss, want_loss, 0.10 * want_loss)
        << "seed " << seed;
    EXPECT_NEAR(got_burst, want_burst, 0.10 * want_burst)
        << "seed " << seed;
  }
}

TEST(GilbertElliott, SameSeedSameChannel) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.01;
  cfg.p_bad_to_good = 0.2;
  cfg.loss_bad = 0.7;
  GilbertElliott a(cfg, sim::Rng(42));
  GilbertElliott b(cfg, sim::Rng(42));
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_EQ(a.should_drop(), b.should_drop()) << "diverged at packet " << i;
  }
}

}  // namespace
}  // namespace slowcc::fault
