#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "packet_path_diff.hpp"
#include "sim/rng.hpp"

namespace slowcc::test {
namespace {

// ====================================================================
// Property tests: randomized send/run/flap/retime/filter scripts, the
// pooled (batched drain chain) and scalar (one event per departure)
// packet paths must agree on every observable — time, event count,
// trace digest, link counters, queue occupancy, and each delivered
// packet. On failure the report embeds the ddmin-shrunken minimal
// script, so the assertion message is directly actionable.

TEST(PacketPathDiff, RandomizedScriptsAgreeOnDropTail) {
  constexpr std::uint64_t kBaseSeed = 0x9ac4e7aa7bULL;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed = sim::derive_seed(kBaseSeed, trial);
    const std::string report = diff_paths(random_path_script(seed, 400));
    EXPECT_TRUE(report.empty()) << "seed " << seed << ":\n" << report;
  }
}

// RED consumes RNG draws during admission; the paths only agree if the
// pooled queue makes exactly the same admit() calls in the same order
// (early drops land mid-batch under saturation).
TEST(PacketPathDiff, RandomizedScriptsAgreeOnRed) {
  constexpr std::uint64_t kBaseSeed = 0x9ac45edULL;
  PathRigConfig cfg;
  cfg.red = true;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed = sim::derive_seed(kBaseSeed, trial);
    const std::string report =
        diff_paths(random_path_script(seed, 400), cfg);
    EXPECT_TRUE(report.empty()) << "seed " << seed << ":\n" << report;
  }
}

// Short scripts shake out arming-edge bugs that long ones average away
// (first transmission, chain armed exactly once, drain of a 1-deep
// queue).
TEST(PacketPathDiff, ShortScriptsAgree) {
  constexpr std::uint64_t kBaseSeed = 0x9ac45407ULL;
  for (std::uint64_t trial = 0; trial < 64; ++trial) {
    const std::uint64_t seed = sim::derive_seed(kBaseSeed, trial);
    const std::string report = diff_paths(random_path_script(seed, 40));
    EXPECT_TRUE(report.empty()) << "seed " << seed << ":\n" << report;
  }
}

// ====================================================================
// Directed regressions: the batch-boundary cases named in ISSUE 10.

// A burst that saturates the link, then set_down lands mid-drain: the
// chain must disarm without firing the queued departures, the
// in-flight packet is dropped as kLinkDown, and the queue flushes —
// identically to the scalar cancel.
TEST(PacketPathDiff, SetDownInterruptsDrain) {
  PathScript script;
  for (int i = 0; i < 6; ++i) script.push_back({PathOp::Kind::kSend, 1000});
  // 1.5 serializations in: packet 0 delivered, packet 1 on the wire.
  script.push_back({PathOp::Kind::kRun, 1'500'000});
  script.push_back({PathOp::Kind::kDown, 0});
  script.push_back({PathOp::Kind::kRun, 5'000'000});
  script.push_back({PathOp::Kind::kUp, 0});
  for (int i = 0; i < 3; ++i) script.push_back({PathOp::Kind::kSend, 1000});
  const std::string report = diff_paths(script);
  EXPECT_TRUE(report.empty()) << report;
}

// Flap the link while the queue still holds a backlog and immediately
// resume sending: the first post-repair send must re-arm the chain
// from scratch (the scalar path schedules a fresh tx event).
TEST(PacketPathDiff, FlapThenImmediateResend) {
  PathScript script;
  for (int i = 0; i < 4; ++i) script.push_back({PathOp::Kind::kSend, 800});
  script.push_back({PathOp::Kind::kDown, 0});
  script.push_back({PathOp::Kind::kUp, 0});
  script.push_back({PathOp::Kind::kSend, 800});
  script.push_back({PathOp::Kind::kRun, 10'000'000});
  const std::string report = diff_paths(script);
  EXPECT_TRUE(report.empty()) << report;
}

// RED early drop mid-batch: an aggressive RED config dropping under a
// saturating burst must consume identical RNG draws on both paths —
// the drop decisions (and therefore which seqs are delivered) match.
TEST(PacketPathDiff, RedDropsMidBatch) {
  PathRigConfig cfg;
  cfg.red = true;
  PathScript script;
  for (int i = 0; i < 12; ++i) script.push_back({PathOp::Kind::kSend, 1000});
  script.push_back({PathOp::Kind::kRun, 4'000'000});
  for (int i = 0; i < 12; ++i) script.push_back({PathOp::Kind::kSend, 1000});
  const std::string report = diff_paths(script, cfg);
  EXPECT_TRUE(report.empty()) << report;
}

// The last packet of a batch is canceled: set_down exactly when only
// the final queued packet remains; its pending departure must never
// fire and its handle must be released (the harness's
// pool_live_after_drain line catches a leak).
TEST(PacketPathDiff, LastPacketOfBatchCanceled) {
  PathScript script;
  script.push_back({PathOp::Kind::kSend, 1000});
  script.push_back({PathOp::Kind::kSend, 1000});
  // Both serializations done for packet 0; packet 1 is the whole batch
  // tail when the link dies.
  script.push_back({PathOp::Kind::kRun, 1'200'000});
  script.push_back({PathOp::Kind::kDown, 0});
  script.push_back({PathOp::Kind::kRun, 3'000'000});
  const std::string report = diff_paths(script);
  EXPECT_TRUE(report.empty()) << report;
}

// set_bandwidth mid-transmission re-times the in-flight packet: the
// pooled path re-mints the chain seq exactly where the scalar path
// cancels + reschedules, so digests stay identical.
TEST(PacketPathDiff, RetimeMidTransmission) {
  PathScript script;
  for (int i = 0; i < 5; ++i) script.push_back({PathOp::Kind::kSend, 1500});
  script.push_back({PathOp::Kind::kRun, 700'000});  // mid-serialization
  script.push_back({PathOp::Kind::kBandwidth, 2'000'000});
  script.push_back({PathOp::Kind::kRun, 2'000'000});
  script.push_back({PathOp::Kind::kBandwidth, 16'000'000});
  script.push_back({PathOp::Kind::kRun, 20'000'000});
  const std::string report = diff_paths(script);
  EXPECT_TRUE(report.empty()) << report;
}

// Forced-drop filter toggled under saturation: filtered arrivals must
// not perturb the drain cadence of packets already queued.
TEST(PacketPathDiff, ForcedDropUnderSaturation) {
  PathScript script;
  for (int i = 0; i < 4; ++i) script.push_back({PathOp::Kind::kSend, 1000});
  script.push_back({PathOp::Kind::kFilter, 0});
  for (int i = 0; i < 6; ++i) script.push_back({PathOp::Kind::kSend, 1000});
  script.push_back({PathOp::Kind::kFilter, 0});
  script.push_back({PathOp::Kind::kSend, 1000});
  const std::string report = diff_paths(script);
  EXPECT_TRUE(report.empty()) << report;
}

// ====================================================================
// Harness self-checks.

// The shrinker only ever returns scripts that still disagree, and the
// sanity path (agreeing script) reports empty without shrinking.
TEST(PacketPathDiff, AgreementReportsEmpty) {
  PathScript script;
  script.push_back({PathOp::Kind::kSend, 1000});
  script.push_back({PathOp::Kind::kRun, 5'000'000});
  EXPECT_TRUE(diff_paths(script).empty());
}

// Determinism of the harness itself: the same script renders the same
// log twice on the same path (no hidden global state between runs).
TEST(PacketPathDiff, HarnessIsDeterministicPerPath) {
  const PathScript script = random_path_script(0x9acd37e7ULL, 200);
  for (const net::PacketPath path :
       {net::PacketPath::kScalar, net::PacketPath::kPooled}) {
    const std::string first = run_path_script(path, script);
    const std::string second = run_path_script(path, script);
    EXPECT_EQ(first, second);
  }
}

}  // namespace
}  // namespace slowcc::test
