// Watchdog: aborting livelocked and runaway simulations with a
// structured, diagnosable error.
#include <gtest/gtest.h>

#include "fault/watchdog.hpp"
#include "net/drop_tail_queue.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/error.hpp"
#include "sim/simulator.hpp"

namespace slowcc::fault {
namespace {

// An event that reschedules itself at the current time: simulated time
// never advances, so no sim-time timer could ever interrupt it.
void livelock(sim::Simulator& sim) {
  sim.schedule_at(sim.now(), [&sim] { livelock(sim); });
}

TEST(Watchdog, HaltsLivelockedSimulationOnEventBudget) {
  sim::Simulator sim;
  Watchdog dog(sim, {.max_events = 10'000, .check_every_events = 100});
  livelock(sim);
  try {
    sim.run();
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.code(), sim::SimErrc::kBudgetExceeded);
    EXPECT_NE(e.detail().find("event budget"), std::string::npos);
    EXPECT_NE(e.detail().find("pending events"), std::string::npos);
  }
  EXPECT_TRUE(dog.triggered());
  EXPECT_GE(sim.events_executed(), 10'000u);
  EXPECT_LT(sim.events_executed(), 10'200u);  // caught promptly
}

TEST(Watchdog, HaltsOnWallClockBudget) {
  sim::Simulator sim;
  Watchdog dog(sim, {.max_wall_seconds = 0.02, .check_every_events = 64});
  livelock(sim);
  EXPECT_THROW(sim.run(), sim::SimError);
  EXPECT_TRUE(dog.triggered());
}

TEST(Watchdog, QuietWhenBudgetsAreRespected) {
  sim::Simulator sim;
  Watchdog dog(sim, {.max_events = 1'000'000, .check_every_events = 16});
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(sim::Time::millis(i), [] {});
  }
  sim.run();
  EXPECT_FALSE(dog.triggered());
  EXPECT_GE(dog.checks_performed(), 6u);
}

TEST(Watchdog, DumpIncludesWatchedLinkStats) {
  sim::Simulator sim;
  net::Node a{0}, b{1};
  net::Link link(sim, a, b, 8e6, sim::Time::millis(1),
                 std::make_unique<net::DropTailQueue>(4));
  Watchdog dog(sim, {.max_events = 100});
  dog.watch_link(link, "bottleneck");
  net::Packet p;
  p.dst_node = 1;
  link.send(std::move(p));
  sim.run();
  const std::string dump = dog.diagnostic_dump();
  EXPECT_NE(dump.find("bottleneck"), std::string::npos);
  EXPECT_NE(dump.find("arrivals=1"), std::string::npos);
}

TEST(Watchdog, RejectsUnboundedOrDoubleInstallation) {
  sim::Simulator sim;
  EXPECT_THROW(Watchdog(sim, {}), sim::SimError);  // no budget at all
  Watchdog first(sim, {.max_events = 100});
  // Second watchdog cannot steal the hook slot.
  EXPECT_THROW(Watchdog(sim, {.max_events = 100}), sim::SimError);
}

TEST(Watchdog, DestructorFreesHookSlot) {
  sim::Simulator sim;
  { Watchdog dog(sim, {.max_events = 100}); }
  Watchdog again(sim, {.max_events = 100});
  EXPECT_FALSE(again.triggered());
}

// The orchestration layer reclassifies wall-clock watchdog fires as
// trial deadline violations (vs the default budget-exceeded).
TEST(Watchdog, ErrorCodeIsConfigurable) {
  sim::Simulator sim;
  Watchdog dog(sim, {.max_events = 1'000,
                     .check_every_events = 64,
                     .error_code = sim::SimErrc::kDeadlineExceeded});
  livelock(sim);
  try {
    sim.run();
    FAIL() << "expected SimError";
  } catch (const sim::SimError& e) {
    EXPECT_EQ(e.code(), sim::SimErrc::kDeadlineExceeded);
  }
  EXPECT_TRUE(dog.triggered());
}

}  // namespace
}  // namespace slowcc::fault
