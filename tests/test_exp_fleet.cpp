// Multi-process fleet execution: lease lifecycle (claim race, heartbeat,
// CAS break, theft detection), stale-lease recovery with the per-trial
// break cap routing repeat offenders into quarantine, and the drain
// loop's contract that a fleet of workers converges to the exact bytes
// a single --jobs 1 run produces. Processes are modeled as LeaseLedger /
// FleetWorker instances over one shared directory — the real multi-
// process kill/stop/term matrix lives in tools/fleet_chaos_smoke.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/fleet.hpp"
#include "exp/lease.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/registry.hpp"
#include "exp/result_sink.hpp"
#include "exp/sweep_spec.hpp"
#include "sim/error.hpp"

namespace slowcc::exp {
namespace {

class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "slowcc_fleet_XXXXXX")
            .string();
    if (mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Small poison grid: boom=0 trials succeed, boom=1 trials fail
/// deterministically — so the drained journal carries both row kinds.
SweepSpec fleet_spec() {
  SweepSpec spec;
  spec.experiment = "poison";
  spec.algorithms = {"tcp"};
  spec.fixed["events"] = 16;
  spec.sweep_param = "boom";
  spec.sweep_values = {0, 1};
  spec.trials = 2;
  spec.base_seed = 41;
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// The bytes a --jobs 1 run journals: every row's JSON in trial-id
/// order, one line each.
std::string golden_journal(const SweepSpec& spec) {
  ParallelRunner runner(1);
  std::string out;
  for (const Row& r : runner.run(spec.expand())) {
    out += r.to_json();
    out += '\n';
  }
  return out;
}

FleetConfig fleet_config(const std::string& dir, const std::string& id) {
  FleetConfig cfg;
  cfg.dir = dir;
  cfg.worker_id = id;
  cfg.jobs = 1;
  cfg.lease_ttl_seconds = 2.0;
  cfg.heartbeat_seconds = 0.4;
  cfg.poll_seconds = 0.05;
  cfg.jitter_seed = fleet_spec().base_seed;
  return cfg;
}

// ---------------------------------------------------------------------------
// Lease lifecycle.
// ---------------------------------------------------------------------------

TEST(LeaseLedger, RenderParseRoundTripsDeterministically) {
  LeaseInfo info;
  info.owner = "w-1";
  info.trial_id = 42;
  info.attempt = 2;
  info.beat = 17;
  const std::string raw = LeaseLedger::render(info);
  EXPECT_EQ(raw, LeaseLedger::render(info));  // equal fields, equal bytes
  LeaseInfo parsed;
  ASSERT_TRUE(LeaseLedger::parse(raw, &parsed));
  EXPECT_EQ(parsed.owner, "w-1");
  EXPECT_EQ(parsed.trial_id, 42u);
  EXPECT_EQ(parsed.attempt, 2u);
  EXPECT_EQ(parsed.beat, 17u);
  EXPECT_FALSE(LeaseLedger::parse("{\"owner\":", &parsed));  // torn
}

TEST(LeaseLedger, RejectsEmptyDirOrOwner) {
  EXPECT_THROW(LeaseLedger("", "w"), sim::SimError);
  EXPECT_THROW(LeaseLedger("/tmp/x", ""), sim::SimError);
}

TEST(LeaseLedger, ClaimRaceHasExactlyOneWinner) {
  TempDir dir;
  LeaseLedger a(dir.path(), "a");
  LeaseLedger b(dir.path(), "b");
  ASSERT_TRUE(a.prepare());
  ASSERT_TRUE(b.prepare());  // idempotent
  EXPECT_EQ(a.claim(5, 1), LeaseClaim::kClaimed);
  EXPECT_EQ(b.claim(5, 1), LeaseClaim::kHeld);
  const LeaseView view = b.read(5);
  ASSERT_EQ(view.state, LeaseRead::kOk);
  EXPECT_EQ(view.info.owner, "a");
  EXPECT_EQ(view.info.attempt, 1u);
  EXPECT_TRUE(a.still_owned(5));
  EXPECT_FALSE(b.still_owned(5));
}

TEST(LeaseLedger, RefreshBumpsBeatAndChangesTheFingerprint) {
  TempDir dir;
  LeaseLedger a(dir.path(), "a");
  ASSERT_TRUE(a.prepare());
  ASSERT_EQ(a.claim(3, 1), LeaseClaim::kClaimed);
  const std::string before = a.read(3).raw;
  EXPECT_EQ(a.refresh(3, 1), LeaseRefresh::kOk);
  const LeaseView after = a.read(3);
  EXPECT_NE(after.raw, before);  // observers see the bytes move
  EXPECT_EQ(after.info.beat, 1u);
  EXPECT_EQ(after.info.attempt, 1u);  // claim generation preserved
}

TEST(LeaseLedger, BreakIsACompareAndSwapOnTheRawBytes) {
  TempDir dir;
  LeaseLedger a(dir.path(), "a");
  LeaseLedger b(dir.path(), "b");
  ASSERT_TRUE(a.prepare());
  ASSERT_EQ(a.claim(7, 1), LeaseClaim::kClaimed);
  const std::string observed = b.read(7).raw;
  // The owner heartbeats between observation and break: CAS must fail.
  ASSERT_EQ(a.refresh(7, 1), LeaseRefresh::kOk);
  EXPECT_EQ(b.break_lease(7, observed, 2), LeaseBreak::kChanged);
  // Re-observe the current bytes: now the break lands.
  const std::string fresh = b.read(7).raw;
  EXPECT_EQ(b.break_lease(7, fresh, 2), LeaseBreak::kBroken);
  const LeaseView stolen = b.read(7);
  ASSERT_EQ(stolen.state, LeaseRead::kOk);
  EXPECT_EQ(stolen.info.owner, "b");
  EXPECT_EQ(stolen.info.attempt, 2u);
  // The original owner's next heartbeat reports the theft.
  EXPECT_EQ(a.refresh(7, 2), LeaseRefresh::kLost);
  EXPECT_FALSE(a.still_owned(7));
}

TEST(LeaseLedger, TornLeaseReadsTornAndIsBreakable) {
  TempDir dir;
  LeaseLedger a(dir.path(), "a");
  ASSERT_TRUE(a.prepare());
  {  // a claimer died mid-write: short, unparseable bytes
    std::ofstream out(a.lease_path(9), std::ios::binary);
    out << "{\"owner\":\"gho";
  }
  const LeaseView torn = a.read(9);
  EXPECT_EQ(torn.state, LeaseRead::kTorn);
  EXPECT_FALSE(torn.raw.empty());
  // Breaking against the torn bytes rewrites it readable.
  EXPECT_EQ(a.break_lease(9, torn.raw, 2), LeaseBreak::kBroken);
  EXPECT_EQ(a.read(9).state, LeaseRead::kOk);
  EXPECT_TRUE(a.still_owned(9));
}

TEST(LeaseLedger, ReleaseUnlinksOursAndLeavesTheThiefs) {
  TempDir dir;
  LeaseLedger a(dir.path(), "a");
  LeaseLedger b(dir.path(), "b");
  ASSERT_TRUE(a.prepare());
  ASSERT_EQ(a.claim(1, 1), LeaseClaim::kClaimed);
  EXPECT_TRUE(a.release(1));
  EXPECT_EQ(a.read(1).state, LeaseRead::kAbsent);
  // Released means claimable again.
  ASSERT_EQ(b.claim(1, 1), LeaseClaim::kClaimed);
  // a releasing a lease it no longer owns must not unlink b's file.
  EXPECT_TRUE(a.release(1));
  EXPECT_EQ(b.read(1).state, LeaseRead::kOk);
  EXPECT_TRUE(b.still_owned(1));
  // Releasing an absent lease is a clean no-op.
  EXPECT_TRUE(a.release(999));
}

// ---------------------------------------------------------------------------
// Heartbeater.
// ---------------------------------------------------------------------------

TEST(Heartbeater, BeatsHeldLeasesAndStickilyRecordsTheft) {
  TempDir dir;
  LeaseLedger a(dir.path(), "a");
  LeaseLedger b(dir.path(), "b");
  ASSERT_TRUE(a.prepare());
  ASSERT_EQ(a.claim(4, 1), LeaseClaim::kClaimed);
  // Long interval: only the synchronous test hook drives beats here.
  Heartbeater heart(a, 60.0);
  heart.add(4);
  const std::string before = a.read(4).raw;
  heart.beat_now();
  EXPECT_NE(a.read(4).raw, before);
  EXPECT_FALSE(heart.lost(4));
  // A sibling judges us dead and steals the lease; the next beat must
  // detect the theft and record it stickily.
  const std::string observed = b.read(4).raw;
  ASSERT_EQ(b.break_lease(4, observed, 2), LeaseBreak::kBroken);
  heart.beat_now();
  EXPECT_TRUE(heart.lost(4));
  EXPECT_EQ(heart.io_failures(), 0u);
  // The stolen lease still names the thief: we must not have clobbered it.
  EXPECT_EQ(b.read(4).info.owner, "b");
}

// ---------------------------------------------------------------------------
// merge_journals: the fleet's shard-merge semantics.
// ---------------------------------------------------------------------------

TEST(MergeJournals, LastLinePerTrialWinsAcrossShards) {
  const auto trials = fleet_spec().expand();
  ParallelRunner runner(1);
  const std::vector<Row> rows = runner.run(trials);
  JsonlLoad shard_a;
  shard_a.ok = true;
  shard_a.lines = {rows[0].to_json(), rows[2].to_json()};
  JsonlLoad shard_b;
  shard_b.ok = true;
  shard_b.lines = {rows[1].to_json(), rows[0].to_json()};  // duplicate 0
  const JournalMerge merge =
      merge_journals(trials, {shard_a, shard_b}, /*rerun_failures=*/false);
  EXPECT_EQ(merge.journal_lines, 4u);
  ASSERT_EQ(merge.rows.size(), 3u);  // the duplicate collapses
  ASSERT_EQ(merge.lines.size(), 3u);
  EXPECT_EQ(merge.lines[0], rows[0].to_json());
  ASSERT_EQ(merge.pending.size(), trials.size() - 3u);
  EXPECT_FALSE(merge.torn_tail);
}

TEST(MergeJournals, RerunFailuresFlagSplitsTheTwoResumePolicies) {
  const auto trials = fleet_spec().expand();
  ParallelRunner runner(1);
  const std::vector<Row> rows = runner.run(trials);
  JsonlLoad shard;
  shard.ok = true;
  std::size_t failures = 0;
  for (const Row& r : rows) {
    shard.lines.push_back(r.to_json());
    if (!r.outcome.ok) ++failures;
  }
  ASSERT_GT(failures, 0u);  // the poison grid must exercise this
  // Fleet drain: a journaled failure is done — no livelock on
  // deterministic failures.
  const JournalMerge drain =
      merge_journals(trials, {shard}, /*rerun_failures=*/false);
  EXPECT_EQ(drain.rows.size(), trials.size());
  EXPECT_TRUE(drain.pending.empty());
  // Single-process --resume: failures are retried.
  const JournalMerge resume =
      merge_journals(trials, {shard}, /*rerun_failures=*/true);
  EXPECT_EQ(resume.rows.size(), trials.size() - failures);
  EXPECT_EQ(resume.pending.size(), failures);
}

// ---------------------------------------------------------------------------
// FleetWorker.
// ---------------------------------------------------------------------------

TEST(FleetWorker, ValidatesConfigUpFront) {
  TempDir dir;
  FleetConfig bad_id = fleet_config(dir.path(), "no spaces");
  EXPECT_THROW(FleetWorker{bad_id}, sim::SimError);
  FleetConfig bad_beat = fleet_config(dir.path(), "w");
  bad_beat.heartbeat_seconds = bad_beat.lease_ttl_seconds;  // >= ttl/2
  EXPECT_THROW(FleetWorker{bad_beat}, sim::SimError);
}

TEST(FleetWorker, QuarantineErrorIsAPureFunction) {
  EXPECT_EQ(FleetWorker::quarantine_error(3, 3),
            FleetWorker::quarantine_error(3, 3));
  EXPECT_NE(FleetWorker::quarantine_error(3, 3),
            FleetWorker::quarantine_error(4, 3));
}

TEST(FleetWorker, ShardPathsFindEveryJournalSortedByName) {
  TempDir dir;
  for (const char* name : {"journal.worker-b.jsonl", "journal.jsonl",
                           "journal.worker-a.jsonl", "trials.jsonl"}) {
    std::ofstream(dir.path() + "/" + name) << "";
  }
  const std::vector<std::string> paths = FleetWorker::shard_paths(dir.path());
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_NE(paths[0].find("journal.jsonl"), std::string::npos);
  EXPECT_NE(paths[1].find("journal.worker-a.jsonl"), std::string::npos);
  EXPECT_NE(paths[2].find("journal.worker-b.jsonl"), std::string::npos);
}

TEST(FleetWorker, SingleWorkerDrainMatchesJobs1ByteForByte) {
  const SweepSpec spec = fleet_spec();
  TempDir dir;
  FleetWorker worker(fleet_config(dir.path(), "solo"));
  const FleetReport report = worker.run(spec, "p\n");
  EXPECT_EQ(report.outcome, FleetOutcome::kDrained) << report.detail;
  EXPECT_TRUE(report.finalized);
  EXPECT_EQ(report.trials_run, spec.expand().size());
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_GT(report.rows_failed, 0u);  // the boom=1 rows
  EXPECT_EQ(read_file(dir.path() + "/journal.jsonl"), golden_journal(spec));
  EXPECT_TRUE(std::filesystem::exists(dir.path() + "/trials.jsonl"));
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/leases"))
      << "leases/ must be swept once the grid is drained";
}

TEST(FleetWorker, TwoConcurrentWorkersConvergeByteIdentically) {
  const SweepSpec spec = fleet_spec();
  TempDir dir;
  FleetReport ra;
  FleetReport rb;
  std::thread ta([&] {
    FleetWorker worker(fleet_config(dir.path(), "a"));
    ra = worker.run(spec, "p\n");
  });
  std::thread tb([&] {
    FleetWorker worker(fleet_config(dir.path(), "b"));
    rb = worker.run(spec, "p\n");
  });
  ta.join();
  tb.join();
  EXPECT_EQ(ra.outcome, FleetOutcome::kDrained) << ra.detail;
  EXPECT_EQ(rb.outcome, FleetOutcome::kDrained) << rb.detail;
  // Between them every trial ran at least once; duplicates (benign
  // races) collapse in the merge, so the journal is still canonical.
  EXPECT_GE(ra.trials_run + rb.trials_run, spec.expand().size());
  EXPECT_EQ(read_file(dir.path() + "/journal.jsonl"), golden_journal(spec));
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/leases"));
}

TEST(FleetWorker, ResumesASingleProcessCheckpointDirectory) {
  const SweepSpec spec = fleet_spec();
  const auto trials = spec.expand();
  TempDir dir;
  {  // A --jobs 1 --resume run that "crashed" halfway through.
    ParallelRunner runner(1);
    const std::vector<Row> rows = runner.run(trials);
    Checkpoint ck(dir.path());
    EXPECT_FALSE(ck.open(spec, "p\n"));
    for (const Row& r : rows) {
      if (r.trial_id % 2 == 0) ck.record(r);
    }
  }
  // The canonical journal.jsonl is itself a shard: the fleet picks up
  // where the single process died.
  FleetWorker worker(fleet_config(dir.path(), "rescuer"));
  const FleetReport report = worker.run(spec, "p\n");
  EXPECT_EQ(report.outcome, FleetOutcome::kDrained) << report.detail;
  EXPECT_EQ(report.trials_run, trials.size() / 2);  // only the odd ids
  EXPECT_EQ(read_file(dir.path() + "/journal.jsonl"), golden_journal(spec));
}

TEST(FleetWorker, ConvergesOnAnAlreadyDrainedDirectory) {
  const SweepSpec spec = fleet_spec();
  TempDir dir;
  FleetWorker first(fleet_config(dir.path(), "a"));
  ASSERT_EQ(first.run(spec, "p\n").outcome, FleetOutcome::kDrained);
  const std::string journal = read_file(dir.path() + "/journal.jsonl");
  FleetWorker second(fleet_config(dir.path(), "b"));
  const FleetReport report = second.run(spec, "p\n");
  EXPECT_EQ(report.outcome, FleetOutcome::kDrained) << report.detail;
  EXPECT_EQ(report.trials_run, 0u);  // nothing left to claim
  EXPECT_EQ(read_file(dir.path() + "/journal.jsonl"), journal);
}

TEST(FleetWorker, BreakCapRoutesRepeatOffendersIntoQuarantine) {
  SweepSpec spec = fleet_spec();
  spec.sweep_values = {0};  // healthy grid: the only failure is synthetic
  const auto trials = spec.expand();
  TempDir dir;
  FleetConfig cfg = fleet_config(dir.path(), "judge");
  cfg.lease_ttl_seconds = 0.4;  // short staleness window keeps this fast
  cfg.heartbeat_seconds = 0.1;
  // A "ghost" worker claims trial 0 at the break cap — as if
  // max_lease_breaks successive owners all died mid-trial — and never
  // heartbeats again.
  LeaseLedger ghost(dir.path(), "ghost");
  ASSERT_TRUE(ghost.prepare());
  ASSERT_EQ(ghost.claim(trials[0].trial_id,
                        static_cast<std::uint64_t>(cfg.max_lease_breaks)),
            LeaseClaim::kClaimed);

  FleetWorker worker(cfg);
  const FleetReport report = worker.run(spec, "p\n");
  EXPECT_EQ(report.outcome, FleetOutcome::kDrained) << report.detail;
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.rows_failed, 1u);
  EXPECT_EQ(report.trials_run, trials.size() - 1);

  // The quarantine row is synthesized deterministically: lease-expired,
  // attempts == the break cap, canonical error text. (Merged with
  // rerun_failures=false — the drain policy — because under the resume
  // policy a failure row is pending, not recovered.)
  const JournalMerge merge = merge_journals(
      trials, {load_jsonl(dir.path() + "/journal.jsonl")},
      /*rerun_failures=*/false);
  ASSERT_TRUE(merge.pending.empty());
  bool saw_quarantine = false;
  for (const Row& r : merge.rows) {
    if (r.trial_id != trials[0].trial_id) {
      EXPECT_TRUE(r.outcome.ok) << r.error;
      continue;
    }
    saw_quarantine = true;
    EXPECT_FALSE(r.outcome.ok);
    EXPECT_EQ(r.outcome.error_kind,
              to_string(sim::SimErrc::kLeaseExpired));
    EXPECT_EQ(r.outcome.attempts, cfg.max_lease_breaks);
    EXPECT_EQ(r.error, FleetWorker::quarantine_error(
                           trials[0].trial_id, cfg.max_lease_breaks));
  }
  EXPECT_TRUE(saw_quarantine);
}

TEST(FleetWorker, StaleLeaseIsBrokenWithinOneTtl) {
  SweepSpec spec = fleet_spec();
  spec.sweep_values = {0};
  const auto trials = spec.expand();
  TempDir dir;
  FleetConfig cfg = fleet_config(dir.path(), "survivor");
  cfg.lease_ttl_seconds = 0.4;
  cfg.heartbeat_seconds = 0.1;
  // One dead owner at generation 1: below the cap, so the survivor
  // breaks the lease and runs the trial itself — no quarantine.
  LeaseLedger ghost(dir.path(), "ghost");
  ASSERT_TRUE(ghost.prepare());
  ASSERT_EQ(ghost.claim(trials[0].trial_id, 1), LeaseClaim::kClaimed);

  FleetWorker worker(cfg);
  const FleetReport report = worker.run(spec, "p\n");
  EXPECT_EQ(report.outcome, FleetOutcome::kDrained) << report.detail;
  EXPECT_EQ(report.leases_broken, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.trials_run, trials.size());
  EXPECT_EQ(read_file(dir.path() + "/journal.jsonl"), golden_journal(spec));
}

MemorySample pressured_sample() {
  MemorySample s;
  s.ok = true;
  s.self_rss_bytes = std::uint64_t{1} << 20;
  s.total_bytes = 100;
  s.available_bytes = 4;  // 96% of system memory in use
  return s;
}

MemorySample healthy_sample() {
  MemorySample s = pressured_sample();
  s.available_bytes = 90;  // 10% in use
  return s;
}

TEST(FleetMemory, PressureMathClampsAndIgnoresBadSamples) {
  EXPECT_DOUBLE_EQ(memory_pressure(pressured_sample()), 0.96);
  EXPECT_DOUBLE_EQ(memory_pressure(healthy_sample()), 0.10);
  MemorySample bad;  // ok=false: admission control must stand down
  EXPECT_DOUBLE_EQ(memory_pressure(bad), 0.0);
  MemorySample overfull = pressured_sample();
  overfull.available_bytes = 200;  // > total clamps to zero pressure
  EXPECT_DOUBLE_EQ(memory_pressure(overfull), 0.0);
}

TEST(FleetMemory, ProcSamplerReadsThisProcess) {
  const MemorySample s = sample_process_memory();
  ASSERT_TRUE(s.ok) << "expected /proc to be readable on Linux";
  EXPECT_GT(s.self_rss_bytes, 0u);
  EXPECT_GT(s.total_bytes, 0u);
  EXPECT_LE(s.available_bytes, s.total_bytes);
  const double p = memory_pressure(s);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(FleetMemory, SustainedPressureDegradesWithoutClaiming) {
  const SweepSpec spec = fleet_spec();
  TempDir dir;
  FleetConfig cfg = fleet_config(dir.path(), "squeezed");
  cfg.mem_high_water = 0.9;
  cfg.max_pressure_rounds = 3;
  cfg.mem_probe = [] { return pressured_sample(); };
  FleetWorker worker(cfg);
  const FleetReport report = worker.run(spec, "p\n");
  EXPECT_EQ(report.outcome, FleetOutcome::kDegraded);
  EXPECT_EQ(report.trials_run, 0u);
  EXPECT_EQ(report.pressure_rounds, 3u);
  EXPECT_NE(report.detail.find("memory pressure"), std::string::npos)
      << report.detail;
  // The directory is untouched: a healthier sibling drains it.
  FleetWorker rescuer(fleet_config(dir.path(), "rescuer"));
  const FleetReport done = rescuer.run(spec, "p\n");
  EXPECT_EQ(done.outcome, FleetOutcome::kDrained) << done.detail;
  EXPECT_EQ(read_file(dir.path() + "/journal.jsonl"), golden_journal(spec));
}

TEST(FleetMemory, TransientPressureClearsAndTheWorkerDrains) {
  const SweepSpec spec = fleet_spec();
  TempDir dir;
  FleetConfig cfg = fleet_config(dir.path(), "patient");
  cfg.mem_high_water = 0.9;
  cfg.max_pressure_rounds = 8;
  auto calls = std::make_shared<int>(0);
  cfg.mem_probe = [calls] {
    return ++*calls <= 2 ? pressured_sample() : healthy_sample();
  };
  FleetWorker worker(cfg);
  const FleetReport report = worker.run(spec, "p\n");
  EXPECT_EQ(report.outcome, FleetOutcome::kDrained) << report.detail;
  EXPECT_EQ(report.trials_run, spec.expand().size());
  EXPECT_EQ(report.pressure_rounds, 2u);  // the two skipped rounds
  EXPECT_EQ(read_file(dir.path() + "/journal.jsonl"), golden_journal(spec));
}

TEST(FleetMemory, UnreadableProbeStandsDownInsteadOfGuessing) {
  const SweepSpec spec = fleet_spec();
  TempDir dir;
  FleetConfig cfg = fleet_config(dir.path(), "blind");
  cfg.mem_high_water = 0.9;
  cfg.mem_probe = [] { return MemorySample{}; };  // ok=false
  FleetWorker worker(cfg);
  const FleetReport report = worker.run(spec, "p\n");
  EXPECT_EQ(report.outcome, FleetOutcome::kDrained) << report.detail;
  EXPECT_EQ(report.pressure_rounds, 0u);
  EXPECT_EQ(read_file(dir.path() + "/journal.jsonl"), golden_journal(spec));
}

TEST(FleetMemory, ConfigValidatesTheAdmissionKnobs) {
  TempDir dir;
  FleetConfig cfg = fleet_config(dir.path(), "w");
  cfg.mem_high_water = 1.0;  // a worker that can never claim is a bug
  EXPECT_THROW(FleetWorker{cfg}, sim::SimError);
  cfg.mem_high_water = 0.9;
  cfg.max_pressure_rounds = 0;
  EXPECT_THROW(FleetWorker{cfg}, sim::SimError);
}

TEST(FleetWorker, ShouldStopDegradesBeforeClaimingAnything) {
  const SweepSpec spec = fleet_spec();
  TempDir dir;
  FleetConfig cfg = fleet_config(dir.path(), "stopped");
  cfg.should_stop = [] { return true; };
  FleetWorker worker(cfg);
  const FleetReport report = worker.run(spec, "p\n");
  EXPECT_EQ(report.outcome, FleetOutcome::kDegraded);
  EXPECT_EQ(report.trials_run, 0u);
  EXPECT_FALSE(report.finalized);
  EXPECT_FALSE(report.detail.empty());
  // A later worker finds an intact, drainable directory.
  FleetWorker finisher(fleet_config(dir.path(), "finisher"));
  const FleetReport done = finisher.run(spec, "p\n");
  EXPECT_EQ(done.outcome, FleetOutcome::kDrained) << done.detail;
  EXPECT_EQ(read_file(dir.path() + "/journal.jsonl"), golden_journal(spec));
}

}  // namespace
}  // namespace slowcc::exp
