// Cross-module integration tests: the paper's core qualitative claims,
// scaled down to keep the suite fast.
#include <gtest/gtest.h>

#include "scenario/convergence_experiment.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/fk_experiment.hpp"
#include "scenario/smoothness_experiment.hpp"
#include "scenario/static_compat_experiment.hpp"

namespace slowcc::scenario {
namespace {

double same_kind_fair_ratio(const FlowSpec& spec, double seconds = 60.0) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  cfg.reverse_tcp_flows = 0;
  Dumbbell net(sim, cfg);
  auto& f1 = net.add_flow(spec);
  auto& f2 = net.add_flow(spec);
  net.start_flows();
  net.finalize();
  sim.run_until(sim::Time::seconds(seconds));
  const double b1 = static_cast<double>(f1.sink->bytes_received());
  const double b2 = static_cast<double>(f2.sink->bytes_received());
  return std::max(b1, b2) / std::max(1.0, std::min(b1, b2));
}

TEST(Integration, SameKindFlowsShareFairly) {
  EXPECT_LT(same_kind_fair_ratio(FlowSpec::tcp()), 1.5);
  EXPECT_LT(same_kind_fair_ratio(FlowSpec::tfrc(6)), 1.6);
  EXPECT_LT(same_kind_fair_ratio(FlowSpec::rap()), 1.6);
  EXPECT_LT(same_kind_fair_ratio(FlowSpec::sqrt()), 1.6);
}

TEST(Integration, StaticCompatibilityWithinFactorOfPrediction) {
  // Under steady Bernoulli loss each TCP-compatible algorithm's
  // long-run goodput must be within a modest factor of the Padhye
  // prediction (the paper's static premise).
  for (const FlowSpec& spec :
       {FlowSpec::tcp(), FlowSpec::tfrc(6), FlowSpec::sqrt()}) {
    StaticCompatConfig cfg;
    cfg.spec = spec;
    cfg.loss_rate = 0.02;
    cfg.measure = sim::Time::seconds(120.0);
    const auto out = run_static_compat(cfg);
    EXPECT_GT(out.ratio_to_prediction, 0.4) << spec.label();
    EXPECT_LT(out.ratio_to_prediction, 3.0) << spec.label();
  }
}

TEST(Integration, TcpAndTfrcComparableUnderStaticLoss) {
  auto goodput = [](const FlowSpec& spec) {
    StaticCompatConfig cfg;
    cfg.spec = spec;
    cfg.loss_rate = 0.02;
    cfg.measure = sim::Time::seconds(120.0);
    return run_static_compat(cfg).goodput_bps;
  };
  const double tcp = goodput(FlowSpec::tcp());
  const double tfrc = goodput(FlowSpec::tfrc(6));
  EXPECT_LT(std::max(tcp, tfrc) / std::min(tcp, tfrc), 2.2)
      << "tcp=" << tcp << " tfrc=" << tfrc;
}

TEST(Integration, FkUtilizationOrderingTcpAboveSlowVariants) {
  // Needs a long warmup so every variant is at its steady operating
  // point when half the flows stop; otherwise queue-drain artifacts
  // dominate f(20).
  auto fk = [](const FlowSpec& spec) {
    FkConfig cfg;
    cfg.spec = spec;
    cfg.stop_time = sim::Time::seconds(120.0);
    cfg.ks = {20};
    return run_fk(cfg).f_values[0];
  };
  const double tcp = fk(FlowSpec::tcp());
  const double tcp64 = fk(FlowSpec::tcp(64));
  auto tfrc8_spec = FlowSpec::tfrc(8);
  tfrc8_spec.tfrc_history_discounting = false;  // as in the paper's Fig 13
  const double tfrc8 = fk(tfrc8_spec);
  EXPECT_GT(tcp, 0.75) << "standard TCP reclaims the doubled bandwidth fast";
  EXPECT_GT(tcp - tcp64, 0.15) << "TCP(1/64) is far more sluggish";
  EXPECT_GT(tcp - tfrc8, 0.1) << "TFRC(8) pays the paper's f(20) penalty";
}

TEST(Integration, ConvergenceSlowerForSmallerB) {
  auto conv = [](double gamma) {
    ConvergenceConfig cfg;
    cfg.spec = FlowSpec::tcp(gamma);
    cfg.first_flow_head_start = sim::Time::seconds(15.0);
    cfg.horizon = sim::Time::seconds(300.0);
    return run_convergence(cfg);
  };
  const auto fast = conv(2);
  const auto slow = conv(64);
  ASSERT_TRUE(fast.result.converged);
  EXPECT_LT(fast.result.convergence_time_s, 60.0);
  if (slow.result.converged) {
    EXPECT_GT(slow.result.convergence_time_s,
              2.0 * fast.result.convergence_time_s);
  } else {
    SUCCEED() << "TCP(1/64) did not converge within the horizon at all";
  }
}

TEST(Integration, SmoothnessTfrcBeatsTcpOnMildPattern) {
  auto smooth = [](const FlowSpec& spec) {
    SmoothnessConfig cfg;
    cfg.spec = spec;
    cfg.pattern = LossPattern::kMildlyBursty;
    cfg.measure = sim::Time::seconds(30.0);
    return run_smoothness(cfg);
  };
  const auto tfrc = smooth(FlowSpec::tfrc(6));
  const auto tcp = smooth(FlowSpec::tcp(2));
  EXPECT_LT(tfrc.cov, tcp.cov)
      << "TFRC must have the smoother rate trace under mild loss";
}

TEST(Integration, ScriptedLossActuallyApplied) {
  SmoothnessConfig cfg;
  cfg.pattern = LossPattern::kMildlyBursty;
  cfg.measure = sim::Time::seconds(20.0);
  const auto out = run_smoothness(cfg);
  EXPECT_GT(out.scripted_drops, 10);
  EXPECT_GT(out.mean_rate_bps, 1e5);
}

}  // namespace
}  // namespace slowcc::scenario
