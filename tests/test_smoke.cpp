// End-to-end smoke tests: build a dumbbell, run traffic, check the
// pieces hang together. Finer-grained behavior is covered per module.
#include <gtest/gtest.h>

#include "scenario/dumbbell.hpp"

namespace slowcc {
namespace {

TEST(Smoke, SingleTcpFlowMovesData) {
  sim::Simulator sim;
  scenario::DumbbellConfig cfg;
  cfg.reverse_tcp_flows = 0;
  scenario::Dumbbell net(sim, cfg);
  auto& flow = net.add_flow(scenario::FlowSpec::tcp());
  net.finalize();
  sim.schedule_at(sim::Time(), [&] { flow.agent->start(); });
  sim.run_until(sim::Time::seconds(10.0));

  // 10 Mb/s for ~10 s minus slow start: expect at least a few megabytes.
  EXPECT_GT(flow.sink->bytes_received(), 2'000'000);
  // And the link should be close to saturated in the steady part.
  EXPECT_GT(flow.sink->bytes_received(), 0.5 * 10e6 / 8.0 * 10.0);
}

TEST(Smoke, TwoTcpFlowsShareRoughlyEqually) {
  sim::Simulator sim;
  scenario::DumbbellConfig cfg;
  cfg.reverse_tcp_flows = 0;
  scenario::Dumbbell net(sim, cfg);
  auto& f1 = net.add_flow(scenario::FlowSpec::tcp());
  auto& f2 = net.add_flow(scenario::FlowSpec::tcp());
  net.start_flows();
  net.finalize();
  sim.run_until(sim::Time::seconds(60.0));

  const double b1 = static_cast<double>(f1.sink->bytes_received());
  const double b2 = static_cast<double>(f2.sink->bytes_received());
  EXPECT_GT(b1, 0);
  EXPECT_GT(b2, 0);
  const double ratio = std::max(b1, b2) / std::min(b1, b2);
  EXPECT_LT(ratio, 1.5) << "b1=" << b1 << " b2=" << b2;
}

}  // namespace
}  // namespace slowcc
