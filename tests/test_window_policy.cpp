#include <gtest/gtest.h>

#include <cmath>

#include "cc/window_policy.hpp"

namespace slowcc::cc {
namespace {

TEST(AimdPolicy, StandardTcpParameters) {
  const AimdPolicy tcp = AimdPolicy::tcp_compatible(0.5);
  EXPECT_DOUBLE_EQ(tcp.a(), 1.0);  // a(1/2) = 4(1 - 1/4)/3 = 1
  EXPECT_DOUBLE_EQ(tcp.b(), 0.5);
  EXPECT_DOUBLE_EQ(tcp.increase_per_rtt(30.0), 1.0);
  EXPECT_DOUBLE_EQ(tcp.decrease_to(30.0), 15.0);
}

TEST(AimdPolicy, CompatibleAFormula) {
  // a = 4(2b - b^2)/3 from the paper.
  EXPECT_NEAR(AimdPolicy::compatible_a(1.0 / 8.0), 4.0 * (0.25 - 1.0 / 64.0) / 3.0,
              1e-12);
  EXPECT_NEAR(AimdPolicy::compatible_a(0.25), 4.0 * (0.5 - 0.0625) / 3.0, 1e-12);
}

TEST(AimdPolicy, DecreaseNeverBelowOne) {
  const AimdPolicy p(1.0, 0.9);
  EXPECT_DOUBLE_EQ(p.decrease_to(1.0), 1.0);
}

TEST(AimdPolicy, RejectsInvalidParameters) {
  EXPECT_THROW(AimdPolicy(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(AimdPolicy(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(AimdPolicy(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)AimdPolicy::compatible_a(0.0), std::invalid_argument);
}

TEST(AimdPolicy, NameMentionsParameters) {
  EXPECT_NE(AimdPolicy(1.0, 0.5).name().find("AIMD"), std::string::npos);
}

TEST(BinomialPolicy, SqrtRules) {
  const BinomialPolicy p = BinomialPolicy::sqrt_policy(0.5);
  EXPECT_DOUBLE_EQ(p.k(), 0.5);
  EXPECT_DOUBLE_EQ(p.l(), 0.5);
  // Increase a/sqrt(w), decrease b*sqrt(w).
  EXPECT_NEAR(p.increase_per_rtt(16.0), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(p.decrease_to(16.0), 16.0 - 0.5 * 4.0, 1e-12);
}

TEST(BinomialPolicy, IiadRules) {
  const BinomialPolicy p = BinomialPolicy::iiad_policy();
  EXPECT_DOUBLE_EQ(p.k(), 1.0);
  EXPECT_DOUBLE_EQ(p.l(), 0.0);
  // Additive decrease: w - b regardless of w.
  const double dec16 = 16.0 - p.decrease_to(16.0);
  const double dec64 = 64.0 - p.decrease_to(64.0);
  EXPECT_NEAR(dec16, dec64, 1e-12);
}

TEST(BinomialPolicy, SqrtDecreaseGentlerThanTcpAtLargeWindows) {
  const BinomialPolicy sqrt_p = BinomialPolicy::sqrt_policy(0.5);
  const AimdPolicy tcp = AimdPolicy::tcp_compatible(0.5);
  const double w = 100.0;
  EXPECT_GT(sqrt_p.decrease_to(w), tcp.decrease_to(w));
}

TEST(BinomialPolicy, RejectsInvalid) {
  EXPECT_THROW(BinomialPolicy(0.5, 1.5, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(BinomialPolicy(0.5, 0.5, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(BinomialPolicy(0.5, 0.5, 1.0, 0.0), std::invalid_argument);
}

// Property sweep: every TCP-compatible policy must return a window in
// [1, w) on decrease and a positive increase, across parameter space.
class PolicyProperty : public ::testing::TestWithParam<double> {};

TEST_P(PolicyProperty, AimdDecreaseInRange) {
  const double b = GetParam();
  const AimdPolicy p = AimdPolicy::tcp_compatible(b);
  for (double w : {1.0, 2.0, 5.0, 20.0, 100.0, 1000.0}) {
    const double next = p.decrease_to(w);
    EXPECT_GE(next, 1.0);
    EXPECT_LT(next, std::max(w, 1.0 + 1e-9));
    EXPECT_GT(p.increase_per_rtt(w), 0.0);
  }
}

TEST_P(PolicyProperty, SqrtDecreaseInRange) {
  const double b = GetParam();
  const BinomialPolicy p = BinomialPolicy::sqrt_policy(b);
  for (double w : {1.0, 2.0, 5.0, 20.0, 100.0, 1000.0}) {
    const double next = p.decrease_to(w);
    EXPECT_GE(next, 1.0);
    EXPECT_LE(next, w);
    EXPECT_GT(p.increase_per_rtt(w), 0.0);
  }
}

TEST_P(PolicyProperty, SlowerBMeansGentlerDecreaseAndSlowerIncrease) {
  const double b = GetParam();
  if (b >= 0.5) return;
  const AimdPolicy slow = AimdPolicy::tcp_compatible(b);
  const AimdPolicy tcp = AimdPolicy::tcp_compatible(0.5);
  EXPECT_GT(slow.decrease_to(100.0), tcp.decrease_to(100.0));
  EXPECT_LT(slow.increase_per_rtt(100.0), tcp.increase_per_rtt(100.0));
}

INSTANTIATE_TEST_SUITE_P(BSweep, PolicyProperty,
                         ::testing::Values(1.0 / 256, 1.0 / 128, 1.0 / 64,
                                           1.0 / 32, 1.0 / 16, 1.0 / 8,
                                           1.0 / 4, 1.0 / 2, 0.75));

}  // namespace
}  // namespace slowcc::cc
