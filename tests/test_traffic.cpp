#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "traffic/cbr_source.hpp"
#include "traffic/flash_crowd.hpp"
#include "traffic/loss_script.hpp"
#include "traffic/onoff_pattern.hpp"

namespace slowcc::traffic {
namespace {

struct CbrRig {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Node& src{topo.add_node()};
  net::Node& dst{topo.add_node()};
  CbrSink sink{sim, dst};
  std::unique_ptr<CbrSource> cbr;

  explicit CbrRig(double rate = 1e6) {
    topo.add_duplex(src, dst, 100e6, sim::Time::millis(1), 1000);
    cbr = std::make_unique<CbrSource>(sim, src, dst.id(), sink.local_port(),
                                      1, rate);
    topo.compute_routes();
  }
};

TEST(Cbr, DeliversAtConfiguredRate) {
  CbrRig rig(1e6);
  rig.cbr->start();
  rig.sim.run_until(sim::Time::seconds(10.0));
  const double rate = rig.sink.bytes_received() * 8.0 / 10.0;
  EXPECT_NEAR(rate, 1e6, 0.02e6);
}

TEST(Cbr, RateChangeTakesEffect) {
  CbrRig rig(1e6);
  rig.cbr->start();
  rig.sim.run_until(sim::Time::seconds(5.0));
  const auto bytes_at_5 = rig.sink.bytes_received();
  rig.cbr->set_rate_bps(4e6);
  rig.sim.run_until(sim::Time::seconds(10.0));
  const double second_half =
      static_cast<double>(rig.sink.bytes_received() - bytes_at_5) * 8.0 / 5.0;
  EXPECT_NEAR(second_half, 4e6, 0.1e6);
}

TEST(Cbr, ZeroRatePausesAndResumes) {
  CbrRig rig(1e6);
  rig.cbr->start();
  rig.sim.run_until(sim::Time::seconds(2.0));
  rig.cbr->set_rate_bps(0.0);
  const auto frozen = rig.sink.bytes_received();
  rig.sim.run_until(sim::Time::seconds(4.0));
  EXPECT_NEAR(static_cast<double>(rig.sink.bytes_received()),
              static_cast<double>(frozen), 1000.0);
  rig.cbr->set_rate_bps(1e6);
  rig.sim.run_until(sim::Time::seconds(6.0));
  EXPECT_GT(rig.sink.bytes_received(), frozen + 100'000);
}

TEST(Cbr, RejectsNegativeRate) {
  EXPECT_THROW(CbrRig rig(-1.0), std::invalid_argument);
}

TEST(OnOff, SquareWaveDutyCycleIsHalf) {
  CbrRig rig(0.0);
  OnOffPattern pattern(rig.sim, *rig.cbr, PatternKind::kSquare, 2e6,
                       sim::Time::millis(500), sim::Time::millis(500));
  pattern.start_at(sim::Time());
  rig.sim.run_until(sim::Time::seconds(10.0));
  pattern.stop();
  // 2 Mb/s half the time = 1 Mb/s average.
  const double rate = rig.sink.bytes_received() * 8.0 / 10.0;
  EXPECT_NEAR(rate, 1e6, 0.1e6);
}

TEST(OnOff, SawtoothAveragesHalfPeakWhileOn) {
  CbrRig rig(0.0);
  OnOffPattern pattern(rig.sim, *rig.cbr, PatternKind::kSawtooth, 2e6,
                       sim::Time::seconds(1.0), sim::Time::seconds(1.0), 32);
  pattern.start_at(sim::Time());
  rig.sim.run_until(sim::Time::seconds(20.0));
  pattern.stop();
  // Ramp 0..peak for half the time: average ~ peak/4.
  const double rate = rig.sink.bytes_received() * 8.0 / 20.0;
  EXPECT_NEAR(rate, 0.5e6, 0.15e6);
}

TEST(OnOff, ForceOnOffOverridesPattern) {
  CbrRig rig(0.0);
  OnOffPattern pattern(rig.sim, *rig.cbr, PatternKind::kSquare, 2e6,
                       sim::Time::seconds(1.0), sim::Time::seconds(1.0));
  pattern.force_on();
  rig.sim.run_until(sim::Time::seconds(2.0));
  const auto with_on = rig.sink.bytes_received();
  EXPECT_GT(with_on, 0);
  pattern.force_off();
  rig.sim.run_until(sim::Time::seconds(4.0));
  EXPECT_NEAR(static_cast<double>(rig.sink.bytes_received()),
              static_cast<double>(with_on), 1500.0);
}

TEST(FlashCrowd, SpawnsApproximatelyRateTimesDuration) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::Node& src = topo.add_node();
  net::Node& dst = topo.add_node();
  topo.add_duplex(src, dst, 100e6, sim::Time::millis(1), 1000);
  FlashCrowdConfig cfg;
  cfg.arrival_rate_fps = 100.0;
  cfg.duration = sim::Time::seconds(2.0);
  FlashCrowd crowd(sim, src, dst, cfg);
  topo.compute_routes();
  crowd.start_at(sim::Time::seconds(1.0));
  sim.run_until(sim::Time::seconds(10.0));
  EXPECT_NEAR(static_cast<double>(crowd.flows_started()), 200.0, 40.0);
  // On an uncongested fat pipe, every 10-packet transfer completes.
  EXPECT_EQ(crowd.flows_completed(), crowd.flows_started());
  EXPECT_GT(crowd.mean_completion_seconds(), 0.0);
  EXPECT_LT(crowd.mean_completion_seconds(), 1.0);
  EXPECT_EQ(crowd.total_bytes_received(),
            static_cast<std::int64_t>(crowd.flows_started()) * 10 * 1000);
}

TEST(FlashCrowd, OwnsFlowIdentifiesCrowdRange) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::Node& src = topo.add_node();
  net::Node& dst = topo.add_node();
  topo.add_duplex(src, dst, 100e6, sim::Time::millis(1), 1000);
  FlashCrowdConfig cfg;
  cfg.arrival_rate_fps = 50.0;
  cfg.duration = sim::Time::seconds(1.0);
  FlashCrowd crowd(sim, src, dst, cfg);
  topo.compute_routes();
  crowd.start_at(sim::Time());
  sim.run_until(sim::Time::seconds(5.0));
  EXPECT_TRUE(crowd.owns_flow(cfg.first_flow_id));
  EXPECT_FALSE(crowd.owns_flow(1));
  EXPECT_FALSE(crowd.owns_flow(
      cfg.first_flow_id + static_cast<net::FlowId>(crowd.flows_started())));
}

TEST(CountedLossScript, DropsExactlyAfterEachSpacing) {
  CountedLossScript script({3, 5});
  net::Packet p;
  p.type = net::PacketType::kData;
  std::vector<int> dropped_at;
  for (int i = 0; i < 20; ++i) {
    if (script.should_drop(p)) dropped_at.push_back(i);
  }
  // Admit 3 (0,1,2), drop 3; admit 5 (4..8), drop 9; admit 3, drop 13; ...
  EXPECT_EQ(dropped_at, (std::vector<int>{3, 9, 13, 19}));
  EXPECT_EQ(script.drops(), 4);
}

TEST(CountedLossScript, InstalledFilterIgnoresAcks) {
  sim::Simulator sim;
  net::Topology topo(sim);
  net::Node& a = topo.add_node();
  net::Node& b = topo.add_node();
  auto [fwd, rev] = topo.add_duplex(a, b, 10e6, sim::Time::millis(1), 100);
  (void)rev;
  topo.compute_routes();
  CountedLossScript script({0x7fffffff});  // never drops by count
  // Use spacing 1 so the second data packet would drop.
  CountedLossScript tight({1});
  tight.install(*fwd);
  net::Packet ack;
  ack.type = net::PacketType::kAck;
  ack.src_node = 0;
  ack.dst_node = 1;
  for (int i = 0; i < 10; ++i) {
    net::Packet copy = ack;
    fwd->send(std::move(copy));
  }
  sim.run();
  EXPECT_EQ(fwd->stats().drops_forced, 0u) << "ACKs are never script-dropped";
}

TEST(CountedLossScript, RejectsEmptyAndBadSpacing) {
  EXPECT_THROW(CountedLossScript({}), std::invalid_argument);
  EXPECT_THROW(CountedLossScript({0}), std::invalid_argument);
}

TEST(TimedPhaseLossScript, AlternatesPhasesByTime) {
  sim::Simulator sim;
  TimedPhaseLossScript script(
      sim, {{sim::Time::seconds(1.0), 2}, {sim::Time::seconds(1.0), 1000}});
  net::Packet p;
  p.type = net::PacketType::kData;
  int drops_phase1 = 0;
  for (int i = 0; i < 100; ++i) {
    if (script.should_drop(p)) ++drops_phase1;
  }
  EXPECT_EQ(drops_phase1, 50) << "phase 1 drops every 2nd packet";
  // Advance into phase 2.
  sim.schedule_at(sim::Time::seconds(1.5), [] {});
  sim.run();
  int drops_phase2 = 0;
  for (int i = 0; i < 100; ++i) {
    if (script.should_drop(p)) ++drops_phase2;
  }
  EXPECT_EQ(drops_phase2, 0) << "phase 2 drops every 1000th packet";
}

TEST(TimedPhaseLossScript, WrapsAroundCycle) {
  sim::Simulator sim;
  TimedPhaseLossScript script(
      sim, {{sim::Time::seconds(1.0), 2}, {sim::Time::seconds(1.0), 1000}});
  net::Packet p;
  p.type = net::PacketType::kData;
  (void)script.should_drop(p);  // anchor the phase clock at t=0
  // Jump a full cycle + a bit: back in phase 1.
  sim.schedule_at(sim::Time::seconds(2.5), [] {});
  sim.run();
  int drops = 0;
  for (int i = 0; i < 100; ++i) {
    if (script.should_drop(p)) ++drops;
  }
  EXPECT_EQ(drops, 50);
}

TEST(TimedPhaseLossScript, RejectsBadPhases) {
  sim::Simulator sim;
  EXPECT_THROW(TimedPhaseLossScript(sim, {}), std::invalid_argument);
  EXPECT_THROW(TimedPhaseLossScript(sim, {{sim::Time(), 2}}),
               std::invalid_argument);
  EXPECT_THROW(TimedPhaseLossScript(sim, {{sim::Time::seconds(1.0), 0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace slowcc::traffic
