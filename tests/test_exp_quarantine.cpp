// Crash-safe sweep execution: trial quarantine, deterministic retries
// and chaos injection, per-trial deadlines, and checkpoint/resume.
// The through-line of every test: fault tolerance must not break the
// jobs=1 == jobs=N byte-identity contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/registry.hpp"
#include "exp/result_sink.hpp"
#include "exp/serialize.hpp"
#include "exp/sweep_spec.hpp"
#include "sim/error.hpp"

namespace slowcc::exp {
namespace {

/// Temp dir that removes itself (checkpoint tests write real files).
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "slowcc_ckpt_XXXXXX")
            .string();
    if (mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

SweepSpec poison_spec() {
  SweepSpec spec;
  spec.experiment = "poison";
  spec.algorithms = {"tcp"};
  spec.fixed["events"] = 16;
  spec.sweep_param = "boom";
  spec.sweep_values = {0, 1};
  spec.trials = 4;
  spec.base_seed = 99;
  return spec;
}

TEST(Quarantine, PoisonFailuresBecomeRowsNotCrashes) {
  const auto trials = poison_spec().expand();
  ParallelRunner runner(4);
  const std::vector<Row> rows = runner.run(trials);
  ASSERT_EQ(rows.size(), trials.size());
  for (const Row& r : rows) {
    const bool boomed = r.cell.find("boom=1") != std::string::npos;
    EXPECT_EQ(r.error.empty(), !boomed) << r.cell;
    EXPECT_EQ(r.outcome.ok, !boomed);
    if (boomed) {
      EXPECT_EQ(r.outcome.error_kind, "trial-aborted");
      EXPECT_NE(r.error.find("boom"), std::string::npos);
      EXPECT_TRUE(r.metrics.empty());
    } else {
      EXPECT_EQ(r.outcome.error_kind, "");
      EXPECT_FALSE(r.metrics.empty());
    }
  }
}

TEST(Quarantine, ManifestMarksExactlyTheFailedCells) {
  const auto trials = poison_spec().expand();
  ParallelRunner runner(2);
  const std::string manifest = manifest_to_jsonl(runner.run(trials));
  // Two cells; boom=0 healthy, boom=1 fully failed.
  EXPECT_NE(manifest.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(manifest.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(manifest.find("\"failed_trial_ids\":\"4,5,6,7\""),
            std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("\"error_kinds\":\"trial-aborted\""),
            std::string::npos);
}

TEST(Quarantine, RetryHealsAndStampsAttempts) {
  SweepSpec spec = poison_spec();
  spec.sweep_values = {0};  // no hard failures
  spec.fixed["heal_after"] = 1;  // attempt 0 throws, attempt 1 succeeds
  RunnerPolicy policy;
  policy.max_attempts = 3;
  ParallelRunner runner(2);
  runner.set_policy(policy);
  const std::vector<Row> rows = runner.run(spec.expand());
  ASSERT_EQ(rows.size(), 4u);
  for (const Row& r : rows) {
    EXPECT_TRUE(r.outcome.ok) << r.error;
    EXPECT_EQ(r.outcome.attempts, 2);
    EXPECT_EQ(r.get("attempt"), 1.0);  // ran as attempt 1
    EXPECT_NE(r.to_json().find("\"attempts\":2"), std::string::npos);
  }
}

TEST(Quarantine, RetryWithoutPolicyStaysFailedAfterOneAttempt) {
  SweepSpec spec = poison_spec();
  spec.sweep_values = {0};
  spec.fixed["heal_after"] = 1;
  ParallelRunner runner(1);  // default policy: max_attempts = 1
  const std::vector<Row> rows = runner.run(spec.expand());
  for (const Row& r : rows) {
    EXPECT_FALSE(r.outcome.ok);
    EXPECT_EQ(r.outcome.attempts, 1);
    // attempts == 1 is the default and stays out of the serialization.
    EXPECT_EQ(r.to_json().find("\"attempts\""), std::string::npos);
  }
}

TEST(Quarantine, RetrySeedsAreFreshAndDisjointFromTrialSeed) {
  const std::uint64_t s = 0xDEADBEEFCAFE1234ull;
  EXPECT_NE(retry_seed(s, 1), s);
  EXPECT_NE(retry_seed(s, 2), retry_seed(s, 1));
  EXPECT_EQ(retry_seed(s, 1), retry_seed(s, 1));  // deterministic
  EXPECT_NE(retry_seed(s, 1), retry_seed(s + 1, 1));
}

TEST(Quarantine, EventBudgetDeadlineKillsSpinningTrial) {
  SweepSpec spec = poison_spec();
  spec.sweep_values = {0};
  spec.fixed["spin"] = 1;  // self-scheduling event chain, never ends
  RunnerPolicy policy;
  policy.max_trial_events = 64;
  ParallelRunner runner(2);
  runner.set_policy(policy);
  const std::vector<Row> rows = runner.run(spec.expand());
  for (const Row& r : rows) {
    EXPECT_FALSE(r.outcome.ok);
    EXPECT_EQ(r.outcome.error_kind, "deadline-exceeded") << r.error;
    EXPECT_NE(r.error.find("event budget"), std::string::npos);
  }
}

TEST(Quarantine, WallClockDeadlineKillsSpinningTrial) {
  SweepSpec spec = poison_spec();
  spec.sweep_values = {0};
  spec.trials = 1;
  spec.fixed["spin"] = 1;
  RunnerPolicy policy;
  policy.max_trial_wall_seconds = 0.05;
  policy.deadline_check_every = 256;
  ParallelRunner runner(1);
  runner.set_policy(policy);
  const std::vector<Row> rows = runner.run(spec.expand());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].outcome.ok);
  EXPECT_EQ(rows[0].outcome.error_kind, "deadline-exceeded")
      << rows[0].error;
}

TEST(Quarantine, HealthyTrialsPassUnderBenignDeadlines) {
  SweepSpec spec = poison_spec();
  spec.sweep_values = {0};
  RunnerPolicy policy;
  policy.max_trial_events = 1'000'000;
  policy.max_trial_wall_seconds = 60.0;
  ParallelRunner runner(2);
  runner.set_policy(policy);
  for (const Row& r : runner.run(spec.expand())) {
    EXPECT_TRUE(r.outcome.ok) << r.error;
  }
}

TEST(Quarantine, ChaosIsDeterministicAcrossJobCounts) {
  const SweepSpec spec = poison_spec();
  RunnerPolicy policy;
  policy.chaos_rate = 0.5;
  policy.chaos_seed = spec.base_seed;
  policy.max_attempts = 2;
  const auto trials = spec.expand();
  ParallelRunner serial(1);
  serial.set_policy(policy);
  ParallelRunner wide(8);
  wide.set_policy(policy);
  EXPECT_EQ(rows_to_jsonl(serial.run(trials)),
            rows_to_jsonl(wide.run(trials)));
}

TEST(Quarantine, FullChaosFailsEveryAttempt) {
  SweepSpec spec = poison_spec();
  spec.sweep_values = {0};
  RunnerPolicy policy;
  policy.chaos_rate = 1.0;
  policy.chaos_seed = 7;
  policy.max_attempts = 2;
  ParallelRunner runner(2);
  runner.set_policy(policy);
  for (const Row& r : runner.run(spec.expand())) {
    EXPECT_FALSE(r.outcome.ok);
    EXPECT_EQ(r.outcome.attempts, 2);
    EXPECT_EQ(r.outcome.error_kind, "trial-aborted");
    EXPECT_NE(r.error.find("ChaosInjector"), std::string::npos);
  }
}

SweepSpec membomb_spec() {
  SweepSpec spec;
  spec.experiment = "membomb";
  spec.algorithms = {"tcp"};
  spec.fixed["bomb_trial"] = 0;  // trial_index 0 is the bomb
  spec.fixed["events"] = 256;
  spec.trials = 3;
  spec.base_seed = 7;
  return spec;
}

RunnerPolicy membomb_policy() {
  RunnerPolicy policy;
  policy.max_trial_bytes = 64 * 1024;
  return policy;
}

TEST(ResourceBudget, MemoryBombQuarantinesWithPeakFields) {
  ParallelRunner runner(2);
  runner.set_policy(membomb_policy());
  const std::vector<Row> rows = runner.run(membomb_spec().expand());
  ASSERT_EQ(rows.size(), 3u);
  for (const Row& r : rows) {
    if (r.trial_index == 0) {
      EXPECT_FALSE(r.outcome.ok);
      EXPECT_EQ(r.outcome.error_kind, "resource-exhausted") << r.error;
      // Resource failures get exactly one bonus attempt (at half
      // budget) on top of the policy's max_attempts.
      EXPECT_EQ(r.outcome.attempts, 2);
      // The stamped peaks come from the final attempt, which ran at
      // half the byte budget — so they clear 32 KiB, not 64 KiB.
      EXPECT_GT(r.outcome.peak_bytes_estimate, 32u * 1024u);
      EXPECT_GT(r.outcome.peak_live_packets, 0u);
      EXPECT_GT(r.outcome.peak_queued_bytes, 0u);
      const std::string json = r.to_json();
      EXPECT_NE(json.find("\"peak_bytes_estimate\""), std::string::npos);
      EXPECT_NE(json.find("\"peak_live_packets\""), std::string::npos);
    } else {
      EXPECT_TRUE(r.outcome.ok) << r.error;
      EXPECT_EQ(r.outcome.attempts, 1);
      // Peak fields stay out of healthy rows' serialization.
      EXPECT_EQ(r.to_json().find("peak_"), std::string::npos);
    }
  }
}

TEST(ResourceBudget, RowsAreByteIdenticalAcrossJobCounts) {
  const auto trials = membomb_spec().expand();
  ParallelRunner serial(1);
  serial.set_policy(membomb_policy());
  ParallelRunner wide(8);
  wide.set_policy(membomb_policy());
  EXPECT_EQ(rows_to_jsonl(serial.run(trials)),
            rows_to_jsonl(wide.run(trials)));
}

TEST(ResourceBudget, PeakFieldsRoundTripThroughTheJournal) {
  ParallelRunner runner(1);
  runner.set_policy(membomb_policy());
  const auto trials = membomb_spec().expand();
  const std::vector<Row> rows = runner.run(trials);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    Row parsed;
    ASSERT_TRUE(parse_row_json(rows[i].to_json(), trials[i], &parsed));
    EXPECT_EQ(parsed.to_json(), rows[i].to_json());
    if (rows[i].outcome.error_kind == "resource-exhausted") {
      // Peaks serialize (and thus round-trip) only on resource rows;
      // healthy rows keep them out of the journal by design.
      EXPECT_EQ(parsed.outcome.peak_bytes_estimate,
                rows[i].outcome.peak_bytes_estimate);
      EXPECT_EQ(parsed.outcome.peak_live_packets,
                rows[i].outcome.peak_live_packets);
      EXPECT_GT(parsed.outcome.peak_bytes_estimate, 0u);
    }
  }
}

TEST(ResourceBudget, UnbudgetedBombStillTerminatesViaItsEventCap) {
  // The membomb experiment carries a safety event cap so a sweep
  // without --trial-max-bytes cannot hang; the rows are then healthy.
  ParallelRunner runner(1);
  const std::vector<Row> rows = runner.run(membomb_spec().expand());
  for (const Row& r : rows) {
    EXPECT_TRUE(r.outcome.ok) << r.error;
    // The cap stops the fan-out at 256 executed events; children
    // already scheduled still fire (and return immediately), so the
    // total stays within one doubling of the cap.
    EXPECT_GE(r.get("events_run"), 256.0);
    EXPECT_LT(r.get("events_run"), 1024.0);
  }
}

TEST(ResourceBudget, WeightedAdmissionDoesNotChangeRowContent) {
  const auto trials = membomb_spec().expand();
  ParallelRunner plain(4);
  plain.set_policy(membomb_policy());
  const std::string want = rows_to_jsonl(plain.run(trials));

  ParallelRunner weighted(4);
  weighted.set_policy(membomb_policy());
  weighted.set_weight_fn([](const TrialDesc& d) {
    const Experiment* e = find_experiment(d.experiment);
    return e != nullptr ? e->weight : 1;
  });
  EXPECT_EQ(rows_to_jsonl(weighted.run(trials)), want);

  // Weights above the runner's capacity clamp rather than deadlock.
  ParallelRunner narrow(1);
  narrow.set_policy(membomb_policy());
  narrow.set_weight_fn([](const TrialDesc&) { return 1000; });
  EXPECT_EQ(rows_to_jsonl(narrow.run(trials)), want);
}

TEST(ResourceBudget, RegistryGivesTheBombExperimentExtraWeight) {
  const Experiment* membomb = find_experiment("membomb");
  ASSERT_NE(membomb, nullptr);
  EXPECT_EQ(membomb->weight, 2);
  const Experiment* poison = find_experiment("poison");
  ASSERT_NE(poison, nullptr);
  EXPECT_EQ(poison->weight, 1);
}

TEST(ResourceBudget, PolicyValidationRejectsBadGovernanceKnobs) {
  ParallelRunner runner(2);
  RunnerPolicy policy;
  policy.mem_watermark_fraction = 0.0;
  EXPECT_THROW(runner.set_policy(policy), sim::SimError);
  policy = RunnerPolicy{};
  policy.trial_weight_cap = 0;
  EXPECT_THROW(runner.set_policy(policy), sim::SimError);
}

TEST(ResultSink, AtomicStagingNamesSeparateProcessesAndCalls) {
  // Regression for the cross-process staging collision: two fleet
  // workers finalizing the same file must never share a staging name,
  // and neither must two writes from one process.
  EXPECT_EQ(atomic_staging_name("dir/trials.jsonl", 42, 7),
            "dir/trials.jsonl.tmp.42.7");
  EXPECT_NE(atomic_staging_name("f", 100, 0), atomic_staging_name("f", 101, 0));
  EXPECT_NE(atomic_staging_name("f", 100, 0), atomic_staging_name("f", 100, 1));
}

TEST(ResultSink, AtomicWriteLeavesNoTempFile) {
  TempDir dir;
  const std::string path = dir.path() + "/out.jsonl";
  std::string err;
  ASSERT_TRUE(write_file_atomic(path, "line\n", &err)) << err;
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "line\n");
  // Only the target file remains — no ".tmp.<pid>" staging leftovers.
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path())) {
    ++entries;
    EXPECT_EQ(e.path().filename().string(), "out.jsonl");
  }
  EXPECT_EQ(entries, 1u);
}

TEST(ResultSink, ExclusiveWriteClaimsExactlyOnce) {
  TempDir dir;
  const std::string path = dir.path() + "/trial-7.lease";
  std::string err;
  EXPECT_EQ(write_file_exclusive(path, "a\n", &err), ExclusiveWrite::kCreated)
      << err;
  EXPECT_EQ(write_file_exclusive(path, "b\n", &err), ExclusiveWrite::kExists);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a\n");  // the loser did not clobber the winner
}

TEST(ResultSink, LoaderReportsTornTrailingLine) {
  TempDir dir;
  const std::string path = dir.path() + "/journal.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"a\":1}\n{\"b\":2}\n{\"c\":";  // killed mid-append
  }
  const JsonlLoad load = load_jsonl(path);
  ASSERT_TRUE(load.ok);
  ASSERT_EQ(load.lines.size(), 2u);
  EXPECT_EQ(load.lines[1], "{\"b\":2}");
  EXPECT_TRUE(load.torn_tail);
  EXPECT_EQ(load.tail, "{\"c\":");
  EXPECT_FALSE(load_jsonl(dir.path() + "/missing.jsonl").ok);
}

TEST(Checkpoint, RowJsonRoundTripsByteIdentically) {
  const auto trials = poison_spec().expand();
  for (const TrialDesc& d : {trials.front(), trials.back()}) {
    const Row row = run_trial(d);
    Row parsed;
    ASSERT_TRUE(parse_row_json(row.to_json(), d, &parsed));
    EXPECT_EQ(parsed.to_json(), row.to_json());
    EXPECT_EQ(parsed.seed, d.seed);
    EXPECT_EQ(parsed.outcome.ok, row.outcome.ok);
  }
}

TEST(Checkpoint, RowJsonRejectsIdentityMismatch) {
  const auto trials = poison_spec().expand();
  const Row row = run_trial(trials[0]);
  Row parsed;
  EXPECT_FALSE(parse_row_json(row.to_json(), trials[1], &parsed));
  EXPECT_FALSE(parse_row_json("not json", trials[0], &parsed));
}

TEST(Checkpoint, ResumeRerunsExactlyTheFailedTrials) {
  const SweepSpec spec = poison_spec();
  const auto trials = spec.expand();

  // Reference: one uninterrupted serial run.
  ParallelRunner ref_runner(1);
  const std::vector<Row> ref_rows = ref_runner.run(trials);
  const std::string ref_jsonl = rows_to_jsonl(ref_rows);

  // Checkpointed run, journaling every row.
  TempDir dir;
  Checkpoint first(dir.path());
  EXPECT_FALSE(first.open(spec, "policy v1\n"));  // fresh directory
  ParallelRunner runner(4);
  runner.set_on_row([&first](const Row& r) { first.record(r); });
  (void)runner.run(trials);

  // "Restart": a new Checkpoint over the same directory resumes.
  Checkpoint second(dir.path());
  EXPECT_TRUE(second.open(spec, "policy v1\n"));
  const Checkpoint::Plan plan = second.plan(trials);
  EXPECT_EQ(plan.recovered.size() + plan.pending.size(), trials.size());
  EXPECT_EQ(plan.cells_total, 2u);
  EXPECT_EQ(plan.cells_done, 1u);  // boom=0 done; boom=1 all failed
  std::map<std::uint64_t, bool> ref_failed;
  for (const Row& r : ref_rows) ref_failed[r.trial_id] = !r.error.empty();
  for (const TrialDesc& d : plan.pending) {
    EXPECT_TRUE(ref_failed[d.trial_id]) << "re-running a healthy trial";
  }
  for (const Row& r : plan.recovered) {
    EXPECT_FALSE(ref_failed[r.trial_id]);
  }

  // Run only the pending trials, merge, and compare byte-for-byte.
  ParallelRunner resumer(2);
  resumer.set_on_row([&second](const Row& r) { second.record(r); });
  std::vector<Row> rows = resumer.run(plan.pending);
  rows.insert(rows.end(), plan.recovered.begin(), plan.recovered.end());
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.trial_id < b.trial_id;
  });
  EXPECT_EQ(rows_to_jsonl(rows), ref_jsonl);

  std::string err;
  ASSERT_TRUE(second.finalize(rows, aggregate(rows), &err)) << err;
  const JsonlLoad finalized = load_jsonl(second.path("trials.jsonl"));
  ASSERT_TRUE(finalized.ok);
  EXPECT_EQ(finalized.lines.size(), trials.size());
}

TEST(Checkpoint, PartialTornJournalRecoversCompletedTrials) {
  const SweepSpec spec = poison_spec();
  const auto trials = spec.expand();
  ParallelRunner runner(1);
  const std::vector<Row> rows = runner.run(trials);

  TempDir dir;
  {
    Checkpoint ck(dir.path());
    EXPECT_FALSE(ck.open(spec, "p\n"));
    for (const Row& r : rows) {
      if (r.trial_id % 2 == 0) ck.record(r);  // "crashed" halfway
    }
  }
  {  // torn final append, as a SIGKILL mid-write leaves it
    std::ofstream out(dir.path() + "/journal.jsonl",
                      std::ios::binary | std::ios::app);
    out << "{\"trial_id\":3,\"exper";
  }
  Checkpoint ck(dir.path());
  EXPECT_TRUE(ck.open(spec, "p\n"));
  const Checkpoint::Plan plan = ck.plan(trials);
  EXPECT_TRUE(plan.torn_tail);
  for (const Row& r : plan.recovered) {
    EXPECT_EQ(r.trial_id % 2, 0u);
    EXPECT_TRUE(r.outcome.ok);
  }
  for (const TrialDesc& d : plan.pending) {
    // Odd ids were never journaled; even boom=1 ids failed — both re-run.
    EXPECT_TRUE(d.trial_id % 2 == 1 ||
                d.cell_key().find("boom=1") != std::string::npos);
  }
}

TEST(Checkpoint, ResumeUnderDifferentSpecIsRefused) {
  const SweepSpec spec = poison_spec();
  TempDir dir;
  Checkpoint first(dir.path());
  EXPECT_FALSE(first.open(spec, "p\n"));
  SweepSpec other = spec;
  other.trials = 99;
  Checkpoint second(dir.path());
  EXPECT_THROW((void)second.open(other, "p\n"), sim::SimError);
  // Policy drift only warns.
  Checkpoint third(dir.path());
  std::string warning;
  EXPECT_TRUE(third.open(spec, "p v2\n", &warning));
  EXPECT_FALSE(warning.empty());
}

TEST(Checkpoint, SpecTextRoundTrips) {
  const SweepSpec spec = poison_spec();
  const SweepSpec reparsed = SweepSpec::parse_text(spec.to_text());
  EXPECT_EQ(reparsed.to_text(), spec.to_text());
  const auto a = spec.expand();
  const auto b = reparsed.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cell_key(), b[i].cell_key());
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(Serialize, FlatJsonParserHandlesEscapesAndBigIntegers) {
  std::vector<std::pair<std::string, JsonScalar>> fields;
  ASSERT_TRUE(parse_flat_json(
      R"({"a":"x\"y","seed":18446744073709551615,"n":-2.5,"b":true})",
      fields));
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0].second.text, "x\"y");
  // 2^64 - 1 survives (a double round-trip would corrupt it).
  EXPECT_EQ(fields[1].second.as_u64(), 18446744073709551615ull);
  EXPECT_EQ(fields[2].second.number, -2.5);
  EXPECT_TRUE(fields[3].second.boolean);
  EXPECT_FALSE(parse_flat_json("[1,2]", fields));
  EXPECT_FALSE(parse_flat_json("{\"a\":{}}", fields));  // nested
}

}  // namespace
}  // namespace slowcc::exp
