#include <gtest/gtest.h>

#include "net/drop_tail_queue.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace slowcc::net {
namespace {

struct Capture final : PacketHandler {
  std::vector<std::pair<sim::Time, Packet>> received;
  sim::Simulator* sim = nullptr;
  void handle_packet(const Packet& p) override {
    received.emplace_back(sim->now(), std::move(p));
  }
};

struct Rig {
  sim::Simulator sim;
  Node a{0, "a"};
  Node b{1, "b"};
  Capture sink;
  Link link;

  explicit Rig(double bw = 8e6, sim::Time delay = sim::Time::millis(10),
               std::size_t qlen = 4)
      : link(sim, a, b, bw, delay, std::make_unique<DropTailQueue>(qlen)) {
    sink.sim = &sim;
    b.attach(1, sink);
  }

  Packet packet(std::int64_t seq, std::int64_t size = 1000) {
    Packet p;
    p.src_node = 0;
    p.dst_node = 1;
    p.dst_port = 1;
    p.seq = seq;
    p.size_bytes = size;
    return p;
  }
};

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  Rig rig;  // 8 Mb/s: 1000 B = 1 ms serialization; 10 ms propagation
  rig.link.send(rig.packet(0));
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 1u);
  EXPECT_EQ(rig.sink.received[0].first, sim::Time::millis(11));
}

TEST(Link, BackToBackPacketsSerializeSequentially) {
  Rig rig;
  rig.link.send(rig.packet(0));
  rig.link.send(rig.packet(1));
  rig.link.send(rig.packet(2));
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 3u);
  EXPECT_EQ(rig.sink.received[0].first, sim::Time::millis(11));
  EXPECT_EQ(rig.sink.received[1].first, sim::Time::millis(12));
  EXPECT_EQ(rig.sink.received[2].first, sim::Time::millis(13));
  EXPECT_EQ(rig.sink.received[2].second.seq, 2);
}

TEST(Link, SmallPacketsSerializeFaster) {
  Rig rig;
  rig.link.send(rig.packet(0, 100));  // 0.1 ms at 8 Mb/s
  rig.sim.run();
  EXPECT_EQ(rig.sink.received[0].first,
            sim::Time::micros(100) + sim::Time::millis(10));
}

TEST(Link, QueueOverflowCountsDrops) {
  Rig rig(8e6, sim::Time::millis(10), 2);
  for (int i = 0; i < 10; ++i) rig.link.send(rig.packet(i));
  rig.sim.run();
  // 1 in flight immediately + 2 queued = 3 delivered, 7 dropped.
  EXPECT_EQ(rig.sink.received.size(), 3u);
  EXPECT_EQ(rig.link.stats().drops_overflow, 7u);
  EXPECT_EQ(rig.link.stats().arrivals, 10u);
  EXPECT_EQ(rig.link.stats().departures, 3u);
}

TEST(Link, ForcedDropFilterShortCircuitsQueue) {
  Rig rig;
  rig.link.set_forced_drop_filter(
      [](const Packet& p) { return p.seq % 2 == 0; });
  for (int i = 0; i < 6; ++i) rig.link.send(rig.packet(i));
  rig.sim.run();
  EXPECT_EQ(rig.sink.received.size(), 3u);
  EXPECT_EQ(rig.link.stats().drops_forced, 3u);
  for (auto& [t, p] : rig.sink.received) EXPECT_EQ(p.seq % 2, 1);
}

struct CountingObserver final : LinkObserver {
  int arrivals = 0, drops = 0, departs = 0;
  void on_arrival(const Packet&) override { ++arrivals; }
  void on_drop(const Packet&, DropReason) override { ++drops; }
  void on_depart(const Packet&) override { ++departs; }
};

TEST(Link, ObserversSeeAllThreeHooks) {
  Rig rig(8e6, sim::Time::millis(10), 2);
  CountingObserver obs;
  rig.link.add_observer(&obs);
  for (int i = 0; i < 10; ++i) rig.link.send(rig.packet(i));
  rig.sim.run();
  EXPECT_EQ(obs.arrivals, 10);
  EXPECT_EQ(obs.drops, 7);
  EXPECT_EQ(obs.departs, 3);
}

TEST(Link, BytesDeliveredAccumulates) {
  Rig rig;
  rig.link.send(rig.packet(0, 400));
  rig.link.send(rig.packet(1, 600));
  rig.sim.run();
  EXPECT_EQ(rig.link.stats().bytes_delivered, 1000);
}

TEST(Link, RejectsInvalidParameters) {
  sim::Simulator sim;
  Node a{0}, b{1};
  EXPECT_THROW(Link(sim, a, b, 0.0, sim::Time::millis(1),
                    std::make_unique<DropTailQueue>(4)),
               std::invalid_argument);
  EXPECT_THROW(Link(sim, a, b, 1e6, sim::Time::millis(-1),
                    std::make_unique<DropTailQueue>(4)),
               std::invalid_argument);
  EXPECT_THROW(Link(sim, a, b, 1e6, sim::Time::millis(1), nullptr),
               std::invalid_argument);
}

TEST(Link, IdleThenBusyAgain) {
  Rig rig;
  rig.link.send(rig.packet(0));
  rig.sim.run();
  rig.sim.schedule_at(rig.sim.now() + sim::Time::millis(5),
                      [&] { rig.link.send(rig.packet(1)); });
  rig.sim.run();
  ASSERT_EQ(rig.sink.received.size(), 2u);
  // Second packet: sent at 16 ms, arrives 16 + 1 + 10 = 27 ms.
  EXPECT_EQ(rig.sink.received[1].first, sim::Time::millis(27));
}

}  // namespace
}  // namespace slowcc::net
