// Seed-derivation guarantees the sweep subsystem is built on: the
// mapping is pure (stable across processes and runs — pinned against
// golden values), injective enough that a realistic grid never sees a
// collision, and decorrelated between adjacent indices.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "exp/seed.hpp"
#include "exp/sweep_spec.hpp"
#include "sim/rng.hpp"

namespace slowcc {
namespace {

TEST(ExpSeed, StableAcrossRuns) {
  // Golden values: if these change, every archived sweep result loses
  // reproducibility. Do not update them casually.
  EXPECT_EQ(exp::derive_seed(1, 0), 10451216379200822465ULL);
  EXPECT_EQ(exp::derive_seed(1, 1), 13757245211066428519ULL);
  EXPECT_EQ(exp::derive_seed(42, 7), 14769051326987775908ULL);
  EXPECT_EQ(exp::derive_seed(0, 0), 16294208416658607535ULL);
}

TEST(ExpSeed, MatchesSimLayer) {
  // exp::derive_seed is the same function scenarios use for their
  // sub-streams; the two layers must never diverge.
  EXPECT_EQ(exp::derive_seed(123, 456), sim::derive_seed(123, 456));
}

TEST(ExpSeed, NoCollisionsAcrossIndices) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 2ULL, 99ULL, 0xDEADBEEFULL}) {
    for (std::uint64_t i = 0; i < 10000; ++i) {
      seen.insert(exp::derive_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 5u * 10000u);
}

TEST(ExpSeed, NestedStreamsDistinct) {
  const std::uint64_t trial = exp::derive_seed(1, 17);
  std::set<std::uint64_t> seen{trial};
  for (std::uint64_t sub = 0; sub < 100; ++sub) {
    seen.insert(exp::derive_seed(1, 17, sub));
  }
  EXPECT_EQ(seen.size(), 101u);
}

TEST(ExpSeed, AdjacentIndicesDecorrelated) {
  // The finalizer should flip roughly half the bits between neighboring
  // indices; anything under 16 would mean seeds feed correlated streams.
  int min_flips = 64;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t diff =
        exp::derive_seed(7, i) ^ exp::derive_seed(7, i + 1);
    min_flips = std::min(min_flips, static_cast<int>(__builtin_popcountll(diff)));
  }
  EXPECT_GE(min_flips, 16);
}

TEST(ExpSeed, SweepGridSeedsUnique) {
  // A representative grid: 3 algorithms x 2 bandwidths x 2 RTTs x
  // 4 sweep values x 10 trials = 480 trials, all distinct seeds.
  exp::SweepSpec spec;
  spec.experiment = "oscillation";
  spec.algorithms = {"tcp:8", "tcp:2", "tfrc:6"};
  spec.assign("bandwidths_mbps", "10,15");
  spec.assign("rtts_ms", "50,100");
  spec.assign("sweep on_off_length", "0.05,0.2,0.8,3.2");
  spec.trials = 10;
  const std::vector<exp::TrialDesc> trials = spec.expand();
  ASSERT_EQ(trials.size(), 480u);
  std::set<std::uint64_t> seeds;
  for (const exp::TrialDesc& d : trials) seeds.insert(d.seed);
  EXPECT_EQ(seeds.size(), trials.size());
}

TEST(ExpSeed, CellSeedsIgnoreExpansionOrder) {
  // Seeds hang off the grid cell, not the expansion index: adding an
  // algorithm must not reseed the cells that were already there.
  exp::SweepSpec small;
  small.experiment = "static_compat";
  small.algorithms = {"tfrc:6"};
  small.trials = 3;

  exp::SweepSpec big = small;
  big.algorithms = {"tcp", "tfrc:6"};  // tfrc:6 now expands later

  const auto small_trials = small.expand();
  const auto big_trials = big.expand();
  for (const exp::TrialDesc& s : small_trials) {
    bool found = false;
    for (const exp::TrialDesc& b : big_trials) {
      if (b.cell_key() == s.cell_key() && b.trial_index == s.trial_index) {
        EXPECT_EQ(b.seed, s.seed);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace slowcc
