#include <gtest/gtest.h>

#include <cmath>

#include "metrics/convergence.hpp"
#include "metrics/fairness.hpp"
#include "metrics/loss_rate_monitor.hpp"
#include "metrics/rate_sampler.hpp"
#include "metrics/smoothness.hpp"
#include "metrics/stabilization.hpp"
#include "metrics/throughput_monitor.hpp"
#include "metrics/utilization.hpp"
#include "net/drop_tail_queue.hpp"
#include "net/topology.hpp"

namespace slowcc::metrics {
namespace {

// A rig that lets tests push packets through a real link at scripted
// times so the monitors see realistic event sequences.
struct MonitorRig {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Node& a{topo.add_node()};
  net::Node& b{topo.add_node()};
  net::Link& link;

  MonitorRig()
      : link(topo.add_link(a, b, 8e6, sim::Time::millis(1),
                           std::make_unique<net::DropTailQueue>(4))) {
    topo.compute_routes();
  }

  void send_at(sim::Time t, std::int64_t size = 1000, net::FlowId flow = 1,
               net::PacketType type = net::PacketType::kData) {
    sim.schedule_at(t, [this, size, flow, type] {
      net::Packet p;
      p.src_node = 0;
      p.dst_node = 1;
      p.flow = flow;
      p.size_bytes = size;
      p.type = type;
      link.send(std::move(p));
    });
  }
};

TEST(ThroughputMonitor, BinsBytesByDepartureTime) {
  MonitorRig rig;
  ThroughputMonitor tp(rig.sim, rig.link, sim::Time::millis(100));
  rig.send_at(sim::Time::millis(10));   // departs ~11 ms -> bin 0
  rig.send_at(sim::Time::millis(150));  // bin 1
  rig.send_at(sim::Time::millis(160));  // bin 1
  rig.sim.run();
  EXPECT_EQ(tp.bytes_in_bin(0), 1000);
  EXPECT_EQ(tp.bytes_in_bin(1), 2000);
  EXPECT_EQ(tp.total_bytes(), 3000);
}

TEST(ThroughputMonitor, FilterSelectsFlows) {
  MonitorRig rig;
  ThroughputMonitor tp(rig.sim, rig.link, sim::Time::millis(100),
                       [](const net::Packet& p) { return p.flow == 7; });
  rig.send_at(sim::Time::millis(10), 1000, 7);
  rig.send_at(sim::Time::millis(20), 1000, 8);
  rig.sim.run();
  EXPECT_EQ(tp.total_bytes(), 1000);
}

TEST(ThroughputMonitor, RateBetweenUsesWholeBins) {
  MonitorRig rig;
  ThroughputMonitor tp(rig.sim, rig.link, sim::Time::millis(100));
  for (int i = 0; i < 10; ++i) {
    rig.send_at(sim::Time::millis(10 + i * 100));
  }
  rig.sim.run();
  // 10 kB over 1 s = 80 kbit/s.
  EXPECT_NEAR(tp.rate_bps_between(sim::Time(), sim::Time::seconds(1.0)),
              80e3, 1.0);
}

TEST(ThroughputMonitor, RateSeriesHasOneEntryPerBin) {
  MonitorRig rig;
  ThroughputMonitor tp(rig.sim, rig.link, sim::Time::millis(100));
  rig.send_at(sim::Time::millis(10));
  rig.sim.run();
  const auto series =
      tp.rate_series_bps(sim::Time(), sim::Time::millis(500));
  ASSERT_EQ(series.size(), 5u);
  EXPECT_NEAR(series[0], 1000 * 8.0 / 0.1, 1.0);
  EXPECT_DOUBLE_EQ(series[3], 0.0);
}

TEST(LossRateMonitor, CountsDropsAgainstArrivals) {
  MonitorRig rig;  // queue limit 4 -> burst of 10 loses 5
  LossRateMonitor lm(rig.sim, rig.link, sim::Time::millis(100));
  for (int i = 0; i < 10; ++i) rig.send_at(sim::Time::millis(10));
  rig.sim.run();
  EXPECT_EQ(lm.total_arrivals(), 10u);
  EXPECT_EQ(lm.total_drops(), 5u);
  EXPECT_NEAR(lm.loss_rate_in_bin(0), 0.5, 1e-9);
}

TEST(LossRateMonitor, TrailingWindowAverages) {
  MonitorRig rig;
  LossRateMonitor lm(rig.sim, rig.link, sim::Time::millis(100));
  // Bin 0: 10 arrivals 5 drops. Bins 1-9: 1 arrival, 0 drops.
  for (int i = 0; i < 10; ++i) rig.send_at(sim::Time::millis(10));
  for (int b = 1; b <= 9; ++b) rig.send_at(sim::Time::millis(b * 100 + 10));
  rig.sim.run();
  // Over the 10-bin window ending at bin 9: 19 arrivals, 5 drops.
  EXPECT_NEAR(lm.trailing_loss_rate(9, 10), 5.0 / 19.0, 1e-9);
  // Over a 1-bin window at bin 9: no drops.
  EXPECT_DOUBLE_EQ(lm.trailing_loss_rate(9, 1), 0.0);
}

TEST(RateSampler, ProducesPerIntervalRates) {
  sim::Simulator sim;
  std::int64_t counter = 0;
  RateSampler sampler(sim, sim::Time::millis(100),
                      [&counter] { return counter; });
  sampler.start_at(sim::Time());
  // 1000 bytes per 100 ms from t=0 to t=500ms.
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(sim::Time::millis(i * 100 - 1), [&counter] {
      counter += 1000;
    });
  }
  sim.run_until(sim::Time::millis(550));
  sampler.stop();
  ASSERT_GE(sampler.rates_bps().size(), 5u);
  EXPECT_NEAR(sampler.rates_bps()[1], 80e3, 1.0);
}

TEST(Smoothness, ConstantSeriesIsPerfectlySmooth) {
  EXPECT_DOUBLE_EQ(smoothness_metric({5e6, 5e6, 5e6, 5e6}), 1.0);
}

TEST(Smoothness, HalvingScoresOneHalf) {
  EXPECT_NEAR(smoothness_metric({4e6, 2e6, 2e6}), 0.5, 1e-12);
}

TEST(Smoothness, IdleBinsSkipped) {
  EXPECT_DOUBLE_EQ(smoothness_metric({0.0, 0.0, 0.0}), 1.0);
}

TEST(Smoothness, TransitionToSilenceIsWorstCase) {
  EXPECT_DOUBLE_EQ(smoothness_metric({5e6, 0.0, 5e6}), 0.0);
  EXPECT_TRUE(std::isinf(worst_rate_change({5e6, 0.0})));
}

TEST(Smoothness, CovZeroForConstant) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({3.0, 3.0, 3.0}), 0.0);
  EXPECT_GT(coefficient_of_variation({1.0, 5.0, 1.0, 5.0}), 0.5);
}

TEST(Fairness, JainIndexExtremes) {
  EXPECT_DOUBLE_EQ(jain_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_NEAR(jain_index({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
}

TEST(Fairness, NormalizedShares) {
  const auto shares = normalized_shares({2e6, 6e6}, 8e6);
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_DOUBLE_EQ(shares[0], 0.5);
  EXPECT_DOUBLE_EQ(shares[1], 1.5);
}

TEST(Convergence, DetectsFairPoint) {
  // Flow 1 holds 9:1 for 50 bins, then 1:1 afterwards.
  std::vector<std::int64_t> f1, f2;
  for (int i = 0; i < 50; ++i) {
    f1.push_back(900);
    f2.push_back(100);
  }
  for (int i = 0; i < 100; ++i) {
    f1.push_back(500);
    f2.push_back(500);
  }
  const auto r = compute_convergence(f1, f2, sim::Time::millis(50),
                                     sim::Time(), 0.1);
  ASSERT_TRUE(r.converged);
  // Fair from bin 50; smoothing window 10 delays detection ~several
  // bins past that.
  EXPECT_GT(r.convergence_time_s, 50 * 0.05);
  EXPECT_LT(r.convergence_time_s, 70 * 0.05);
}

TEST(Convergence, NeverFairNeverConverges) {
  std::vector<std::int64_t> f1(100, 900), f2(100, 100);
  const auto r = compute_convergence(f1, f2, sim::Time::millis(50),
                                     sim::Time(), 0.1);
  EXPECT_FALSE(r.converged);
}

TEST(Convergence, BriefFairBlipDoesNotCount) {
  std::vector<std::int64_t> f1, f2;
  for (int i = 0; i < 100; ++i) {
    // One isolated fair bin at i=50 amid 9:1 skew.
    f1.push_back(i == 50 ? 500 : 900);
    f2.push_back(i == 50 ? 500 : 100);
  }
  const auto r = compute_convergence(f1, f2, sim::Time::millis(50),
                                     sim::Time(), 0.1,
                                     /*smooth=*/1, /*hold=*/5);
  EXPECT_FALSE(r.converged);
}

TEST(Utilization, FOfKReflectsAchievedShare) {
  MonitorRig rig;
  ThroughputMonitor tp(rig.sim, rig.link, sim::Time::millis(50));
  // 1000 B per 50 ms = 160 kb/s against a 320 kb/s "capacity" => 0.5.
  for (int i = 0; i < 40; ++i) rig.send_at(sim::Time::millis(5 + i * 50));
  rig.sim.run();
  const double f = f_of_k(tp, sim::Time(), 20, sim::Time::millis(50), 320e3);
  EXPECT_NEAR(f, 0.5, 0.05);
}

TEST(Stabilization, SyntheticSpikeAndRecovery) {
  MonitorRig rig;
  LossRateMonitor lm(rig.sim, rig.link, sim::Time::millis(50));
  // Steady phase (bins 0..39): 4 arrivals/bin, no drops.
  for (int b = 0; b < 40; ++b) {
    for (int k = 0; k < 4; ++k) rig.send_at(sim::Time::millis(b * 50 + k * 10));
  }
  // Congestion onset at bin 40: bursts of 10 (5 dropped) for 20 bins.
  for (int b = 40; b < 60; ++b) {
    for (int k = 0; k < 10; ++k) rig.send_at(sim::Time::millis(b * 50 + 1));
  }
  // Recovery (bins 60..99): clean again.
  for (int b = 60; b < 100; ++b) {
    for (int k = 0; k < 4; ++k) rig.send_at(sim::Time::millis(b * 50 + k * 10));
  }
  rig.sim.run();
  const auto r = compute_stabilization(
      lm, sim::Time(), sim::Time::seconds(2.0), sim::Time::seconds(2.0),
      sim::Time::seconds(5.0));
  ASSERT_TRUE(r.stabilized);
  // High loss for 20 bins then a 10-bin window must drain: expect
  // stabilization between 20 and 40 bins.
  EXPECT_GT(r.stabilization_time_rtts, 19.0);
  EXPECT_LT(r.stabilization_time_rtts, 41.0);
  EXPECT_GT(r.stabilization_cost, 1.0);
}

}  // namespace
}  // namespace slowcc::metrics
