#include <gtest/gtest.h>

#include "scenario/dumbbell.hpp"

namespace slowcc::scenario {
namespace {

TEST(DumbbellConfig, PaperDefaults) {
  DumbbellConfig cfg;
  // RTT ~ 50 ms: 2 * (1 + 23 + 1) ms.
  EXPECT_EQ(cfg.base_rtt(), sim::Time::millis(50));
  // BDP at 10 Mb/s, 50 ms, 1000 B packets = 62.5 packets.
  EXPECT_NEAR(cfg.bdp_packets(), 62.5, 1e-9);
}

TEST(FlowSpec, LabelsAreHumanReadable) {
  EXPECT_EQ(FlowSpec::tcp(2).label(), "TCP(1/2)");
  EXPECT_EQ(FlowSpec::tcp(256).label(), "TCP(1/256)");
  EXPECT_EQ(FlowSpec::tfrc(6).label(), "TFRC(6)");
  EXPECT_EQ(FlowSpec::tfrc(256, true).label(), "TFRC(256)+SC");
  EXPECT_EQ(FlowSpec::sqrt(8).label(), "SQRT(1/8)");
  EXPECT_EQ(FlowSpec::rap(2).label(), "RAP(1/2)");
  EXPECT_EQ(FlowSpec::iiad().label(), "IIAD");
}

TEST(Dumbbell, EveryAlgorithmKindMovesData) {
  for (const FlowSpec& spec :
       {FlowSpec::tcp(), FlowSpec::tcp(8), FlowSpec::sqrt(), FlowSpec::iiad(),
        FlowSpec::rap(), FlowSpec::tfrc(6), FlowSpec::tfrc(6, true)}) {
    sim::Simulator sim;
    DumbbellConfig cfg;
    cfg.reverse_tcp_flows = 0;
    Dumbbell net(sim, cfg);
    auto& flow = net.add_flow(spec);
    net.finalize();
    sim.schedule_at(sim::Time(), [&] { flow.agent->start(); });
    sim.run_until(sim::Time::seconds(15.0));
    EXPECT_GT(flow.sink->bytes_received(), 1'000'000)
        << "spec=" << spec.label();
  }
}

TEST(Dumbbell, TearFlowMovesData) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  cfg.reverse_tcp_flows = 0;
  Dumbbell net(sim, cfg);
  FlowSpec spec;
  spec.kind = CcKind::kTear;
  auto& flow = net.add_flow(spec);
  net.finalize();
  sim.schedule_at(sim::Time(), [&] { flow.agent->start(); });
  sim.run_until(sim::Time::seconds(20.0));
  EXPECT_GT(flow.sink->bytes_received(), 1'000'000);
}

TEST(Dumbbell, ReverseTrafficFlowsAgainstGrain) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  cfg.reverse_tcp_flows = 2;
  Dumbbell net(sim, cfg);
  net.add_reverse_traffic();
  net.finalize();
  sim.run_until(sim::Time::seconds(10.0));
  std::int64_t reverse_bytes = 0;
  for (auto& f : net.flows()) {
    if (!f.forward) reverse_bytes += f.sink->bytes_received();
  }
  EXPECT_GT(reverse_bytes, 1'000'000);
  EXPECT_GT(net.reverse_bottleneck().stats().departures, 1000u);
}

TEST(Dumbbell, DropTailVariantWorks) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  cfg.red = false;
  cfg.reverse_tcp_flows = 0;
  Dumbbell net(sim, cfg);
  auto& flow = net.add_flow(FlowSpec::tcp());
  net.finalize();
  sim.schedule_at(sim::Time(), [&] { flow.agent->start(); });
  sim.run_until(sim::Time::seconds(10.0));
  EXPECT_GT(flow.sink->bytes_received(), 3'000'000);
}

TEST(Dumbbell, AddFlowAfterFinalizeThrows) {
  sim::Simulator sim;
  Dumbbell net(sim, DumbbellConfig{});
  net.finalize();
  EXPECT_THROW(net.add_flow(FlowSpec::tcp()), std::logic_error);
  EXPECT_THROW(net.add_cbr(1e6), std::logic_error);
}

TEST(Dumbbell, FlowReferencesStableAcrossAdds) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  cfg.reverse_tcp_flows = 0;
  Dumbbell net(sim, cfg);
  auto& first = net.add_flow(FlowSpec::tcp());
  cc::Agent* agent_before = first.agent;
  for (int i = 0; i < 50; ++i) net.add_flow(FlowSpec::tcp());
  EXPECT_EQ(first.agent, agent_before)
      << "references returned by add_flow must remain valid";
  EXPECT_EQ(first.id, 1);
}

TEST(Dumbbell, StaggeredStartIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    DumbbellConfig cfg;
    cfg.seed = seed;
    cfg.reverse_tcp_flows = 0;
    Dumbbell net(sim, cfg);
    auto& f1 = net.add_flow(FlowSpec::tcp());
    auto& f2 = net.add_flow(FlowSpec::tcp());
    net.start_flows();
    net.finalize();
    sim.run_until(sim::Time::seconds(5.0));
    return std::pair{f1.sink->bytes_received(), f2.sink->bytes_received()};
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

}  // namespace
}  // namespace slowcc::scenario
