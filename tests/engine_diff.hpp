#pragma once

// Differential test harness for scheduler engines.
//
// A DiffScript is a flat list of schedule/cancel/pop/peek operations.
// run_script() executes one through a chosen engine and renders every
// observable (pop order, peek results, cancel outcomes, live size,
// pending_times, empty-queue throws) into a canonical log string;
// diff_engines() runs the same script through the heap and the wheel
// and, when the logs differ, delta-debugs the script down to a minimal
// failing core and returns a report embedding it. Property tests feed
// this with randomized 10k-op scripts seeded via sim::Rng.

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/error.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace slowcc::test {

struct DiffOp {
  enum class Kind : std::uint8_t { kSchedule, kCancel, kPop, kPeek };
  Kind kind = Kind::kSchedule;
  std::int64_t at_ns = 0;   // kSchedule: absolute timestamp
  std::size_t target = 0;   // kCancel: index into ids minted so far
};

using DiffScript = std::vector<DiffOp>;

/// Execute `script` on a fresh engine of `kind` and render everything
/// observable into a log. Two engines agree iff their logs are equal.
inline std::string run_script(sim::EngineKind kind, const DiffScript& script) {
  auto engine = sim::make_scheduler(kind);
  std::vector<sim::EventId> ids;
  std::ostringstream log;
  std::uint64_t executed = 0;
  for (const DiffOp& op : script) {
    switch (op.kind) {
      case DiffOp::Kind::kSchedule:
        ids.push_back(engine->schedule(sim::Time::nanos(op.at_ns), [] {}));
        break;
      case DiffOp::Kind::kCancel: {
        sim::EventId id;  // stays invalid when nothing was scheduled yet
        if (!ids.empty()) id = ids[op.target % ids.size()];
        log << "cancel=" << (engine->cancel(id) ? 1 : 0) << "\n";
        break;
      }
      case DiffOp::Kind::kPop:
        try {
          sim::PoppedEvent ev;
          (void)engine->pop(&ev);
          ++executed;
          log << "pop=" << ev.at.as_nanos() << "/" << ev.seq << "\n";
        } catch (const sim::SimError&) {
          log << "pop=throw\n";
        }
        break;
      case DiffOp::Kind::kPeek:
        try {
          log << "peek=" << engine->next_time().as_nanos() << "\n";
        } catch (const sim::SimError&) {
          log << "peek=throw\n";
        }
        break;
    }
    log << "size=" << engine->size() << "\n";
  }
  log << "executed=" << executed << "\n";
  log << "pending=";
  for (sim::Time t : engine->pending_times(32)) log << t.as_nanos() << ",";
  log << "\n";
  // Drain whatever is left so the scripts' full execution order is
  // compared even when the script itself pops little.
  while (engine->size() > 0) {
    sim::PoppedEvent ev;
    (void)engine->pop(&ev);
    log << "drain=" << ev.at.as_nanos() << "/" << ev.seq << "\n";
  }
  return log.str();
}

/// Render a script as re-runnable pseudo-code for failure reports.
inline std::string render_script(const DiffScript& script) {
  std::ostringstream out;
  for (const DiffOp& op : script) {
    switch (op.kind) {
      case DiffOp::Kind::kSchedule:
        out << "  schedule(at_ns=" << op.at_ns << ")\n";
        break;
      case DiffOp::Kind::kCancel:
        out << "  cancel(target=" << op.target << ")\n";
        break;
      case DiffOp::Kind::kPop:
        out << "  pop()\n";
        break;
      case DiffOp::Kind::kPeek:
        out << "  peek()\n";
        break;
    }
  }
  return out.str();
}

inline bool engines_disagree(const DiffScript& script) {
  return run_script(sim::EngineKind::kHeap, script) !=
         run_script(sim::EngineKind::kWheel, script);
}

/// ddmin-style shrink: repeatedly delete chunks of the script while the
/// heap/wheel disagreement persists, halving the chunk size until even
/// single-op removals no longer help.
inline DiffScript shrink_script(DiffScript failing) {
  std::size_t chunk = std::max<std::size_t>(1, failing.size() / 2);
  for (;;) {
    bool removed = false;
    std::size_t start = 0;
    while (start < failing.size()) {
      DiffScript candidate(failing);
      candidate.erase(
          candidate.begin() + static_cast<std::ptrdiff_t>(start),
          candidate.begin() +
              static_cast<std::ptrdiff_t>(
                  std::min(failing.size(), start + chunk)));
      if (!candidate.empty() && engines_disagree(candidate)) {
        failing = std::move(candidate);
        removed = true;  // retry the same offset at the new layout
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed) return failing;
    chunk = std::max<std::size_t>(1, chunk / 2);
  }
}

/// Empty string when both engines agree on `script`; otherwise a
/// failure report containing the shrunken minimal script and both logs.
inline std::string diff_engines(const DiffScript& script) {
  if (!engines_disagree(script)) return {};
  const DiffScript minimal = shrink_script(script);
  std::ostringstream out;
  out << "heap and wheel engines disagree; minimal script ("
      << minimal.size() << " of " << script.size() << " ops):\n"
      << render_script(minimal) << "--- heap log ---\n"
      << run_script(sim::EngineKind::kHeap, minimal)
      << "--- wheel log ---\n"
      << run_script(sim::EngineKind::kWheel, minimal);
  return out.str();
}

/// Randomized script: schedules dominate, with exponentially
/// distributed horizons (so every wheel level and the overflow heap see
/// traffic), deliberate equal-time ties (FIFO order must hold), and a
/// time base that drifts forward so later schedules land behind already
/// drained slots.
inline DiffScript random_script(std::uint64_t seed, std::size_t num_ops) {
  sim::Rng rng(seed);
  DiffScript script;
  script.reserve(num_ops);
  std::int64_t base = 0;
  std::int64_t last_at = 0;
  std::size_t scheduled = 0;
  for (std::size_t i = 0; i < num_ops; ++i) {
    const double roll = rng.uniform();
    DiffOp op;
    if (roll < 0.45 || scheduled == 0) {
      op.kind = DiffOp::Kind::kSchedule;
      if (scheduled > 0 && rng.chance(0.2)) {
        op.at_ns = last_at;  // exact tie
      } else {
        const auto magnitude = static_cast<int>(rng.uniform_int(49));
        const auto delta = static_cast<std::int64_t>(
            rng.uniform_int(std::uint64_t{1} << magnitude));
        op.at_ns = base + delta;
      }
      last_at = op.at_ns;
      ++scheduled;
    } else if (roll < 0.70) {
      op.kind = DiffOp::Kind::kCancel;
      op.target = static_cast<std::size_t>(rng.uniform_int(scheduled));
    } else if (roll < 0.95) {
      op.kind = DiffOp::Kind::kPop;
      if (rng.chance(0.5)) {
        base += static_cast<std::int64_t>(rng.uniform_int(1u << 20));
      }
    } else {
      op.kind = DiffOp::Kind::kPeek;
    }
    script.push_back(op);
  }
  return script;
}

}  // namespace slowcc::test
