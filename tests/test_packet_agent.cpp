#include <gtest/gtest.h>

#include "cc/agent.hpp"
#include "net/packet.hpp"

namespace slowcc {
namespace {

TEST(Packet, TypeNamesAreDistinct) {
  using net::PacketType;
  std::set<std::string> names;
  for (auto t : {PacketType::kData, PacketType::kAck, PacketType::kRapAck,
                 PacketType::kTfrcData, PacketType::kTfrcFeedback,
                 PacketType::kTearData, PacketType::kTearFeedback,
                 PacketType::kCbr}) {
    names.insert(net::to_string(t));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(Packet, DescribeContainsAddressingAndSeq) {
  net::Packet p;
  p.type = net::PacketType::kData;
  p.flow = 7;
  p.src_node = 1;
  p.dst_node = 2;
  p.seq = 42;
  p.size_bytes = 1000;
  const std::string d = p.describe();
  EXPECT_NE(d.find("DATA"), std::string::npos);
  EXPECT_NE(d.find("flow=7"), std::string::npos);
  EXPECT_NE(d.find("seq=42"), std::string::npos);
  EXPECT_NE(d.find("1000B"), std::string::npos);
}

// A trivial concrete agent to exercise the shared Agent base.
class ProbeAgent final : public cc::Agent {
 public:
  using Agent::Agent;
  using Agent::inject;
  using Agent::make_packet;

  void start() override {}
  void stop() override {}
  void handle_packet(const net::Packet& p) override { last = std::move(p); }

  net::Packet last;
};

TEST(AgentBase, MakePacketStampsIdentity) {
  sim::Simulator sim;
  net::Node local(3);
  ProbeAgent agent(sim, local, /*peer_node=*/9, /*peer_port=*/5,
                   /*flow=*/77);
  agent.set_packet_size(512);
  const net::Packet p = agent.make_packet(net::PacketType::kData);
  EXPECT_EQ(p.src_node, 3);
  EXPECT_EQ(p.src_port, agent.local_port());
  EXPECT_EQ(p.dst_node, 9);
  EXPECT_EQ(p.dst_port, 5);
  EXPECT_EQ(p.flow, 77);
  EXPECT_EQ(p.size_bytes, 512);
  EXPECT_GT(p.uid, 0u);
}

TEST(AgentBase, UidsAreUniqueAcrossPackets) {
  sim::Simulator sim;
  net::Node local(0);
  ProbeAgent agent(sim, local, 1, 1, 1);
  const auto a = agent.make_packet(net::PacketType::kData);
  const auto b = agent.make_packet(net::PacketType::kData);
  EXPECT_NE(a.uid, b.uid);
}

TEST(AgentBase, InjectCountsStats) {
  sim::Simulator sim;
  net::Node local(0);
  ProbeAgent agent(sim, local, 1, 1, 1);
  net::Packet p = agent.make_packet(net::PacketType::kData);
  agent.inject(std::move(p));  // no route: counted, then dropped by node
  EXPECT_EQ(agent.stats().packets_sent, 1u);
  EXPECT_EQ(agent.stats().bytes_sent, 1000);
  EXPECT_EQ(local.undeliverable_count(), 1u);
}

TEST(AgentBase, LocalDeliveryReachesHandler) {
  sim::Simulator sim;
  net::Node local(0);
  ProbeAgent receiver(sim, local, 0, 0, 1);
  net::Packet p;
  p.dst_node = 0;
  p.dst_port = receiver.local_port();
  p.seq = 5;
  local.deliver(std::move(p));
  EXPECT_EQ(receiver.last.seq, 5);
}

TEST(AgentBase, DestructionFreesPort) {
  sim::Simulator sim;
  net::Node local(0);
  net::PortId port;
  {
    ProbeAgent a(sim, local, 1, 1, 1);
    port = a.local_port();
  }
  // Port can be rebound after the agent is gone.
  ProbeAgent b(sim, local, 1, 1, 1);
  local.detach(b.local_port());
  local.attach(port, b);  // would throw if the old binding leaked
}

TEST(AgentBase, TwoAgentsOnOneNodeGetDistinctPorts) {
  sim::Simulator sim;
  net::Node local(0);
  ProbeAgent a(sim, local, 1, 1, 1);
  ProbeAgent b(sim, local, 1, 1, 2);
  EXPECT_NE(a.local_port(), b.local_port());
}

}  // namespace
}  // namespace slowcc
