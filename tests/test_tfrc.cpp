// TFRC sender/receiver behavior over a real simulated path.
#include <gtest/gtest.h>

#include "cc/tfrc_agent.hpp"
#include "cc/tfrc_sink.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace slowcc::cc {
namespace {

struct TfrcRig {
  sim::Simulator sim;
  net::Topology topo{sim};
  net::Node& src{topo.add_node()};
  net::Node& dst{topo.add_node()};
  net::Link* fwd;
  TfrcSink sink;
  std::unique_ptr<TfrcAgent> agent;

  explicit TfrcRig(int k = 6, TfrcConfig cfg = {}, double bw = 10e6,
                   std::size_t qlen = 60)
      : sink(sim, dst, k) {
    auto [f, r] = topo.add_duplex(src, dst, bw, sim::Time::millis(10), qlen);
    fwd = f;
    (void)r;
    agent = std::make_unique<TfrcAgent>(sim, src, dst.id(), sink.local_port(),
                                        1, cfg);
    topo.compute_routes();
  }
};

TEST(Tfrc, LoneFlowFillsLink) {
  TfrcRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(30.0));
  const double goodput =
      static_cast<double>(rig.sink.bytes_received()) * 8.0 / 30.0;
  EXPECT_GT(goodput, 0.6 * 10e6);
}

TEST(Tfrc, SlowStartRampsQuickly) {
  // The initial ramp overshoots, takes its first loss event, and climbs
  // back under the equation; within a few seconds the rate must be a
  // solid fraction of the link.
  TfrcRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(6.0));
  EXPECT_GT(rig.agent->rate_bps(), 0.8e6);
}

TEST(Tfrc, SlowStartEndsOnFirstLoss) {
  TfrcRig rig;
  rig.agent->start();
  EXPECT_TRUE(rig.agent->in_slow_start());
  rig.sim.run_until(sim::Time::seconds(20.0));
  EXPECT_FALSE(rig.agent->in_slow_start());
}

TEST(Tfrc, RateRespondsToImposedLoss) {
  TfrcRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(15.0));
  // Impose 5% random loss; the equation should pull the rate well below
  // the link capacity.
  auto rng = std::make_shared<sim::Rng>(3);
  rig.fwd->set_forced_drop_filter([rng](const net::Packet& p) {
    return p.type == net::PacketType::kTfrcData && rng->chance(0.05);
  });
  rig.sim.run_until(sim::Time::seconds(40.0));
  EXPECT_LT(rig.agent->rate_bps(), 4e6);
  EXPECT_GT(rig.agent->rate_bps(), 8.0 * 1000.0 / 64.0)
      << "but not pinned at the floor";
}

TEST(Tfrc, NoFeedbackTimerHalvesRate) {
  TfrcRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(10.0));
  const double before = rig.agent->rate_bps();
  // Black-hole the feedback path only (reverse direction): drop all
  // TFRC feedback.
  rig.fwd->set_forced_drop_filter(nullptr);
  // Find the reverse link: easiest is to drop feedback at the sink's
  // injection point — black-hole everything forward AND reverse by
  // dropping all data; sender then gets no feedback.
  rig.fwd->set_forced_drop_filter([](const net::Packet&) { return true; });
  rig.sim.run_until(sim::Time::seconds(14.0));
  EXPECT_LT(rig.agent->rate_bps(), before / 2.0);
  EXPECT_GE(rig.agent->stats().timeouts, 1u);
}

TEST(Tfrc, ConservativeOptionCapsAtReceiveRateAfterLoss) {
  TfrcConfig cfg;
  cfg.conservative = true;
  TfrcRig rig(6, cfg);
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(10.0));
  // Steady loss: the sending rate may exceed the receive rate by at
  // most the conservative allowance (C plus measurement slack).
  auto rng = std::make_shared<sim::Rng>(5);
  rig.fwd->set_forced_drop_filter([rng](const net::Packet& p) {
    return p.type == net::PacketType::kTfrcData && rng->chance(0.03);
  });
  std::int64_t sent0 = 0, recv0 = 0;
  rig.sim.run_until(sim::Time::seconds(20.0));
  sent0 = rig.agent->stats().bytes_sent;
  recv0 = rig.sink.bytes_received();
  rig.sim.run_until(sim::Time::seconds(40.0));
  const double sent =
      static_cast<double>(rig.agent->stats().bytes_sent - sent0);
  const double recv = static_cast<double>(rig.sink.bytes_received() - recv0);
  EXPECT_LT(sent, 1.35 * recv);
}

TEST(Tfrc, ConservativeVariantNoSlowerInSteadyState) {
  auto run = [](bool conservative) {
    TfrcConfig cfg;
    cfg.conservative = conservative;
    TfrcRig rig(6, cfg);
    rig.agent->start();
    rig.sim.run_until(sim::Time::seconds(30.0));
    return rig.sink.bytes_received();
  };
  const auto plain = run(false);
  const auto cons = run(true);
  EXPECT_GT(static_cast<double>(cons), 0.6 * static_cast<double>(plain))
      << "the conservative option must not cripple steady-state throughput";
}

TEST(Tfrc, StopSilencesSender) {
  TfrcRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(5.0));
  rig.agent->stop();
  const auto sent = rig.agent->stats().packets_sent;
  rig.sim.run_until(sim::Time::seconds(8.0));
  EXPECT_EQ(rig.agent->stats().packets_sent, sent);
}

TEST(Tfrc, SrttTracksPath) {
  TfrcRig rig;
  rig.agent->start();
  rig.sim.run_until(sim::Time::seconds(5.0));
  EXPECT_GT(rig.agent->srtt().as_seconds(), 0.015);
  EXPECT_LT(rig.agent->srtt().as_seconds(), 0.2);
}

TEST(Tfrc, MinimumRateFloorHolds) {
  // Brutal loss (50%) must not push the rate below one packet per
  // t_mbi.
  TfrcRig rig;
  rig.agent->start();
  auto rng = std::make_shared<sim::Rng>(7);
  rig.fwd->set_forced_drop_filter([rng](const net::Packet& p) {
    return p.type == net::PacketType::kTfrcData && rng->chance(0.5);
  });
  rig.sim.run_until(sim::Time::seconds(60.0));
  EXPECT_GE(rig.agent->rate_bytes_per_sec(), 1000.0 / 64.0 - 1e-9);
}

}  // namespace
}  // namespace slowcc::cc
