#include <gtest/gtest.h>

#include "net/drop_tail_queue.hpp"
#include "net/red_queue.hpp"
#include "sim/simulator.hpp"

namespace slowcc::net {
namespace {

Packet make_packet(std::int64_t seq = 0, std::int64_t size = 1000) {
  Packet p;
  p.seq = seq;
  p.size_bytes = size;
  return p;
}

TEST(DropTail, FifoOrder) {
  DropTailQueue q(10);
  for (int i = 0; i < 5; ++i) ASSERT_FALSE(q.enqueue(make_packet(i)));
  for (int i = 0; i < 5; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTail, OverflowDropsExactlyAtLimit) {
  DropTailQueue q(3);
  EXPECT_FALSE(q.enqueue(make_packet(0)));
  EXPECT_FALSE(q.enqueue(make_packet(1)));
  EXPECT_FALSE(q.enqueue(make_packet(2)));
  auto reason = q.enqueue(make_packet(3));
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, DropReason::kOverflow);
  EXPECT_EQ(q.length_packets(), 3u);
}

TEST(DropTail, ByteAccounting) {
  DropTailQueue q(10);
  ASSERT_FALSE(q.enqueue(make_packet(0, 100)));
  ASSERT_FALSE(q.enqueue(make_packet(1, 250)));
  EXPECT_EQ(q.length_bytes(), 350);
  (void)q.dequeue();
  EXPECT_EQ(q.length_bytes(), 250);
}

TEST(DropTail, ZeroLimitRejected) {
  EXPECT_THROW(DropTailQueue q(0), std::invalid_argument);
}

RedConfig small_red() {
  RedConfig cfg;
  cfg.limit_packets = 100;
  cfg.min_thresh = 5;
  cfg.max_thresh = 15;
  cfg.weight = 0.5;  // fast-moving average for deterministic tests
  return cfg;
}

TEST(Red, NoDropsWhileAverageBelowMinThresh) {
  sim::Simulator sim;
  RedQueue q(sim, small_red());
  // Enqueue/dequeue alternating keeps the queue length at 0-1.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(q.enqueue(make_packet(i)).has_value());
    (void)q.dequeue();
  }
}

TEST(Red, HardLimitAlwaysDrops) {
  sim::Simulator sim;
  RedConfig cfg = small_red();
  cfg.limit_packets = 10;
  RedQueue q(sim, cfg);
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    if (!q.enqueue(make_packet(i))) ++accepted;
  }
  EXPECT_LE(accepted, 10);
  EXPECT_EQ(q.length_packets(), static_cast<std::size_t>(accepted));
}

TEST(Red, SustainedOverloadTriggersEarlyDrops) {
  sim::Simulator sim;
  RedQueue q(sim, small_red());
  int early = 0;
  for (int i = 0; i < 80; ++i) {
    auto r = q.enqueue(make_packet(i));
    if (r == DropReason::kEarly) ++early;
  }
  EXPECT_GT(early, 0) << "average queue well above max_thresh must drop";
}

TEST(Red, AverageTracksQueue) {
  sim::Simulator sim;
  RedQueue q(sim, small_red());
  for (int i = 0; i < 20; ++i) (void)q.enqueue(make_packet(i));
  EXPECT_GT(q.average_queue(), 5.0);
}

TEST(Red, IdlePeriodDecaysAverage) {
  sim::Simulator sim;
  RedQueue q(sim, small_red());
  for (int i = 0; i < 20; ++i) (void)q.enqueue(make_packet(i));
  while (q.dequeue().has_value()) {
  }
  const double avg_before = q.average_queue();
  // Let simulated time pass while the queue sits empty.
  sim.schedule_at(sim::Time::seconds(10.0), [] {});
  sim.run();
  (void)q.enqueue(make_packet(99));
  EXPECT_LT(q.average_queue(), avg_before * 0.5);
}

TEST(Red, EcnMarksInsteadOfDroppingWhenEnabled) {
  sim::Simulator sim;
  RedConfig cfg = small_red();
  cfg.ecn_marking = true;
  RedQueue q(sim, cfg);
  int marked = 0;
  int dropped = 0;
  for (int i = 0; i < 80; ++i) {
    Packet p = make_packet(i);
    p.ecn_capable = true;
    if (q.enqueue(std::move(p)).has_value()) ++dropped;
  }
  while (auto p = q.dequeue()) {
    if (p->ecn_marked) ++marked;
  }
  EXPECT_GT(marked, 0);
  EXPECT_EQ(dropped, 0) << "ECN-capable packets are marked, not early-dropped";
}

TEST(Red, NonEcnPacketsStillDropWithMarkingEnabled) {
  sim::Simulator sim;
  RedConfig cfg = small_red();
  cfg.ecn_marking = true;
  RedQueue q(sim, cfg);
  int dropped = 0;
  for (int i = 0; i < 80; ++i) {
    if (q.enqueue(make_packet(i)).has_value()) ++dropped;
  }
  EXPECT_GT(dropped, 0);
}

TEST(Red, ForBdpUsesPaperMultipliers) {
  const RedConfig cfg = RedConfig::for_bdp(62.5);
  EXPECT_DOUBLE_EQ(cfg.min_thresh, 0.25 * 62.5);
  EXPECT_DOUBLE_EQ(cfg.max_thresh, 1.25 * 62.5);
  EXPECT_EQ(cfg.limit_packets, static_cast<std::size_t>(2.5 * 62.5));
}

TEST(Red, RejectsBadConfig) {
  sim::Simulator sim;
  RedConfig cfg = small_red();
  cfg.min_thresh = 20;  // >= max_thresh
  EXPECT_THROW(RedQueue(sim, cfg), std::invalid_argument);
  cfg = small_red();
  cfg.max_p = 0.0;
  EXPECT_THROW(RedQueue(sim, cfg), std::invalid_argument);
  cfg = small_red();
  cfg.limit_packets = 0;
  EXPECT_THROW(RedQueue(sim, cfg), std::invalid_argument);
}

TEST(Red, DeterministicForSameSeed) {
  sim::Simulator sim;
  auto run = [&](std::uint64_t seed) {
    RedConfig cfg = small_red();
    cfg.seed = seed;
    RedQueue q(sim, cfg);
    std::vector<bool> outcome;
    for (int i = 0; i < 60; ++i) {
      outcome.push_back(q.enqueue(make_packet(i)).has_value());
    }
    return outcome;
  };
  EXPECT_EQ(run(5), run(5));
}

}  // namespace
}  // namespace slowcc::net
