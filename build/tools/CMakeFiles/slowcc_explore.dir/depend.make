# Empty dependencies file for slowcc_explore.
# This may be replaced when dependencies are built.
