file(REMOVE_RECURSE
  "CMakeFiles/slowcc_explore.dir/slowcc_explore.cpp.o"
  "CMakeFiles/slowcc_explore.dir/slowcc_explore.cpp.o.d"
  "slowcc_explore"
  "slowcc_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slowcc_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
