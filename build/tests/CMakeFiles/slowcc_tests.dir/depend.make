# Empty dependencies file for slowcc_tests.
# This may be replaced when dependencies are built.
