
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_dumbbell.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_dumbbell.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_dumbbell.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_link.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_link.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_link.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_packet_agent.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_packet_agent.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_packet_agent.cpp.o.d"
  "/root/repo/tests/test_queues.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_queues.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_queues.cpp.o.d"
  "/root/repo/tests/test_rap_tear.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_rap_tear.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_rap_tear.cpp.o.d"
  "/root/repo/tests/test_response_function.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_response_function.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_response_function.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scenarios_more.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_scenarios_more.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_scenarios_more.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_tcp_agent.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_tcp_agent.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_tcp_agent.cpp.o.d"
  "/root/repo/tests/test_tfrc.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_tfrc.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_tfrc.cpp.o.d"
  "/root/repo/tests/test_tfrc_loss_history.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_tfrc_loss_history.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_tfrc_loss_history.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_window_policy.cpp" "tests/CMakeFiles/slowcc_tests.dir/test_window_policy.cpp.o" "gcc" "tests/CMakeFiles/slowcc_tests.dir/test_window_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slowcc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
