file(REMOVE_RECURSE
  "CMakeFiles/example_oscillating_bandwidth.dir/oscillating_bandwidth.cpp.o"
  "CMakeFiles/example_oscillating_bandwidth.dir/oscillating_bandwidth.cpp.o.d"
  "example_oscillating_bandwidth"
  "example_oscillating_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_oscillating_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
