# Empty compiler generated dependencies file for example_oscillating_bandwidth.
# This may be replaced when dependencies are built.
