file(REMOVE_RECURSE
  "CMakeFiles/example_flash_crowd_dynamics.dir/flash_crowd_dynamics.cpp.o"
  "CMakeFiles/example_flash_crowd_dynamics.dir/flash_crowd_dynamics.cpp.o.d"
  "example_flash_crowd_dynamics"
  "example_flash_crowd_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flash_crowd_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
