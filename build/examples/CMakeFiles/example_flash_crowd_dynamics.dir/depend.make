# Empty dependencies file for example_flash_crowd_dynamics.
# This may be replaced when dependencies are built.
