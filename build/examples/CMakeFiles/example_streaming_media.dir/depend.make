# Empty dependencies file for example_streaming_media.
# This may be replaced when dependencies are built.
