file(REMOVE_RECURSE
  "CMakeFiles/example_streaming_media.dir/streaming_media.cpp.o"
  "CMakeFiles/example_streaming_media.dir/streaming_media.cpp.o.d"
  "example_streaming_media"
  "example_streaming_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_streaming_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
