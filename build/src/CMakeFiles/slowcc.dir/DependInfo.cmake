
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/aimd_model.cpp" "src/CMakeFiles/slowcc.dir/analysis/aimd_model.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/analysis/aimd_model.cpp.o.d"
  "/root/repo/src/analysis/convergence_model.cpp" "src/CMakeFiles/slowcc.dir/analysis/convergence_model.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/analysis/convergence_model.cpp.o.d"
  "/root/repo/src/analysis/fk_model.cpp" "src/CMakeFiles/slowcc.dir/analysis/fk_model.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/analysis/fk_model.cpp.o.d"
  "/root/repo/src/analysis/timeout_model.cpp" "src/CMakeFiles/slowcc.dir/analysis/timeout_model.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/analysis/timeout_model.cpp.o.d"
  "/root/repo/src/cc/agent.cpp" "src/CMakeFiles/slowcc.dir/cc/agent.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/cc/agent.cpp.o.d"
  "/root/repo/src/cc/rap_agent.cpp" "src/CMakeFiles/slowcc.dir/cc/rap_agent.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/cc/rap_agent.cpp.o.d"
  "/root/repo/src/cc/response_function.cpp" "src/CMakeFiles/slowcc.dir/cc/response_function.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/cc/response_function.cpp.o.d"
  "/root/repo/src/cc/tcp_agent.cpp" "src/CMakeFiles/slowcc.dir/cc/tcp_agent.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/cc/tcp_agent.cpp.o.d"
  "/root/repo/src/cc/tcp_sink.cpp" "src/CMakeFiles/slowcc.dir/cc/tcp_sink.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/cc/tcp_sink.cpp.o.d"
  "/root/repo/src/cc/tear_agent.cpp" "src/CMakeFiles/slowcc.dir/cc/tear_agent.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/cc/tear_agent.cpp.o.d"
  "/root/repo/src/cc/tfrc_agent.cpp" "src/CMakeFiles/slowcc.dir/cc/tfrc_agent.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/cc/tfrc_agent.cpp.o.d"
  "/root/repo/src/cc/tfrc_loss_history.cpp" "src/CMakeFiles/slowcc.dir/cc/tfrc_loss_history.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/cc/tfrc_loss_history.cpp.o.d"
  "/root/repo/src/cc/tfrc_sink.cpp" "src/CMakeFiles/slowcc.dir/cc/tfrc_sink.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/cc/tfrc_sink.cpp.o.d"
  "/root/repo/src/cc/window_policy.cpp" "src/CMakeFiles/slowcc.dir/cc/window_policy.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/cc/window_policy.cpp.o.d"
  "/root/repo/src/metrics/convergence.cpp" "src/CMakeFiles/slowcc.dir/metrics/convergence.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/metrics/convergence.cpp.o.d"
  "/root/repo/src/metrics/fairness.cpp" "src/CMakeFiles/slowcc.dir/metrics/fairness.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/metrics/fairness.cpp.o.d"
  "/root/repo/src/metrics/loss_rate_monitor.cpp" "src/CMakeFiles/slowcc.dir/metrics/loss_rate_monitor.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/metrics/loss_rate_monitor.cpp.o.d"
  "/root/repo/src/metrics/rate_sampler.cpp" "src/CMakeFiles/slowcc.dir/metrics/rate_sampler.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/metrics/rate_sampler.cpp.o.d"
  "/root/repo/src/metrics/smoothness.cpp" "src/CMakeFiles/slowcc.dir/metrics/smoothness.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/metrics/smoothness.cpp.o.d"
  "/root/repo/src/metrics/stabilization.cpp" "src/CMakeFiles/slowcc.dir/metrics/stabilization.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/metrics/stabilization.cpp.o.d"
  "/root/repo/src/metrics/throughput_monitor.cpp" "src/CMakeFiles/slowcc.dir/metrics/throughput_monitor.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/metrics/throughput_monitor.cpp.o.d"
  "/root/repo/src/metrics/tracer.cpp" "src/CMakeFiles/slowcc.dir/metrics/tracer.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/metrics/tracer.cpp.o.d"
  "/root/repo/src/metrics/utilization.cpp" "src/CMakeFiles/slowcc.dir/metrics/utilization.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/metrics/utilization.cpp.o.d"
  "/root/repo/src/net/drop_tail_queue.cpp" "src/CMakeFiles/slowcc.dir/net/drop_tail_queue.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/net/drop_tail_queue.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/slowcc.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/net/link.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/slowcc.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/slowcc.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/red_queue.cpp" "src/CMakeFiles/slowcc.dir/net/red_queue.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/net/red_queue.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/slowcc.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/net/topology.cpp.o.d"
  "/root/repo/src/scenario/convergence_experiment.cpp" "src/CMakeFiles/slowcc.dir/scenario/convergence_experiment.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/scenario/convergence_experiment.cpp.o.d"
  "/root/repo/src/scenario/dumbbell.cpp" "src/CMakeFiles/slowcc.dir/scenario/dumbbell.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/scenario/dumbbell.cpp.o.d"
  "/root/repo/src/scenario/fairness_experiment.cpp" "src/CMakeFiles/slowcc.dir/scenario/fairness_experiment.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/scenario/fairness_experiment.cpp.o.d"
  "/root/repo/src/scenario/fk_experiment.cpp" "src/CMakeFiles/slowcc.dir/scenario/fk_experiment.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/scenario/fk_experiment.cpp.o.d"
  "/root/repo/src/scenario/flash_crowd_experiment.cpp" "src/CMakeFiles/slowcc.dir/scenario/flash_crowd_experiment.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/scenario/flash_crowd_experiment.cpp.o.d"
  "/root/repo/src/scenario/oscillation_experiment.cpp" "src/CMakeFiles/slowcc.dir/scenario/oscillation_experiment.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/scenario/oscillation_experiment.cpp.o.d"
  "/root/repo/src/scenario/responsiveness_experiment.cpp" "src/CMakeFiles/slowcc.dir/scenario/responsiveness_experiment.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/scenario/responsiveness_experiment.cpp.o.d"
  "/root/repo/src/scenario/smoothness_experiment.cpp" "src/CMakeFiles/slowcc.dir/scenario/smoothness_experiment.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/scenario/smoothness_experiment.cpp.o.d"
  "/root/repo/src/scenario/stabilization_experiment.cpp" "src/CMakeFiles/slowcc.dir/scenario/stabilization_experiment.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/scenario/stabilization_experiment.cpp.o.d"
  "/root/repo/src/scenario/static_compat_experiment.cpp" "src/CMakeFiles/slowcc.dir/scenario/static_compat_experiment.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/scenario/static_compat_experiment.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/slowcc.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/logging.cpp" "src/CMakeFiles/slowcc.dir/sim/logging.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/sim/logging.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/slowcc.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/slowcc.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/CMakeFiles/slowcc.dir/sim/time.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/sim/time.cpp.o.d"
  "/root/repo/src/sim/timer.cpp" "src/CMakeFiles/slowcc.dir/sim/timer.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/sim/timer.cpp.o.d"
  "/root/repo/src/traffic/cbr_source.cpp" "src/CMakeFiles/slowcc.dir/traffic/cbr_source.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/traffic/cbr_source.cpp.o.d"
  "/root/repo/src/traffic/flash_crowd.cpp" "src/CMakeFiles/slowcc.dir/traffic/flash_crowd.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/traffic/flash_crowd.cpp.o.d"
  "/root/repo/src/traffic/loss_script.cpp" "src/CMakeFiles/slowcc.dir/traffic/loss_script.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/traffic/loss_script.cpp.o.d"
  "/root/repo/src/traffic/onoff_pattern.cpp" "src/CMakeFiles/slowcc.dir/traffic/onoff_pattern.cpp.o" "gcc" "src/CMakeFiles/slowcc.dir/traffic/onoff_pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
