file(REMOVE_RECURSE
  "libslowcc.a"
)
