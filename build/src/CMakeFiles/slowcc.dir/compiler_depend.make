# Empty compiler generated dependencies file for slowcc.
# This may be replaced when dependencies are built.
