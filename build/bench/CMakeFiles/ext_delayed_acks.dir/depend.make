# Empty dependencies file for ext_delayed_acks.
# This may be replaced when dependencies are built.
