file(REMOVE_RECURSE
  "CMakeFiles/ext_delayed_acks.dir/ext_delayed_acks.cpp.o"
  "CMakeFiles/ext_delayed_acks.dir/ext_delayed_acks.cpp.o.d"
  "ext_delayed_acks"
  "ext_delayed_acks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_delayed_acks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
