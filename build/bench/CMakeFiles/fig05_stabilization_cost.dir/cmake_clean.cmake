file(REMOVE_RECURSE
  "CMakeFiles/fig05_stabilization_cost.dir/fig05_stabilization_cost.cpp.o"
  "CMakeFiles/fig05_stabilization_cost.dir/fig05_stabilization_cost.cpp.o.d"
  "fig05_stabilization_cost"
  "fig05_stabilization_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_stabilization_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
