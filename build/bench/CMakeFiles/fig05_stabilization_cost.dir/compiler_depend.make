# Empty compiler generated dependencies file for fig05_stabilization_cost.
# This may be replaced when dependencies are built.
