# Empty dependencies file for fig19_smoothness_binomial.
# This may be replaced when dependencies are built.
