file(REMOVE_RECURSE
  "CMakeFiles/fig19_smoothness_binomial.dir/fig19_smoothness_binomial.cpp.o"
  "CMakeFiles/fig19_smoothness_binomial.dir/fig19_smoothness_binomial.cpp.o.d"
  "fig19_smoothness_binomial"
  "fig19_smoothness_binomial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_smoothness_binomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
