file(REMOVE_RECURSE
  "CMakeFiles/fig10_convergence_tcp.dir/fig10_convergence_tcp.cpp.o"
  "CMakeFiles/fig10_convergence_tcp.dir/fig10_convergence_tcp.cpp.o.d"
  "fig10_convergence_tcp"
  "fig10_convergence_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_convergence_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
