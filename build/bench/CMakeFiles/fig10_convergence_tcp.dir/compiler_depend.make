# Empty compiler generated dependencies file for fig10_convergence_tcp.
# This may be replaced when dependencies are built.
