# Empty compiler generated dependencies file for fig15_oscillation_droprate.
# This may be replaced when dependencies are built.
