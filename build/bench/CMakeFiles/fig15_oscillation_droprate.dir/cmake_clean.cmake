file(REMOVE_RECURSE
  "CMakeFiles/fig15_oscillation_droprate.dir/fig15_oscillation_droprate.cpp.o"
  "CMakeFiles/fig15_oscillation_droprate.dir/fig15_oscillation_droprate.cpp.o.d"
  "fig15_oscillation_droprate"
  "fig15_oscillation_droprate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_oscillation_droprate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
