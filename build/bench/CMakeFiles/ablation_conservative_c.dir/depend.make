# Empty dependencies file for ablation_conservative_c.
# This may be replaced when dependencies are built.
