file(REMOVE_RECURSE
  "CMakeFiles/ablation_conservative_c.dir/ablation_conservative_c.cpp.o"
  "CMakeFiles/ablation_conservative_c.dir/ablation_conservative_c.cpp.o.d"
  "ablation_conservative_c"
  "ablation_conservative_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_conservative_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
