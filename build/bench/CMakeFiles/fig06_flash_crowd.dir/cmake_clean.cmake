file(REMOVE_RECURSE
  "CMakeFiles/fig06_flash_crowd.dir/fig06_flash_crowd.cpp.o"
  "CMakeFiles/fig06_flash_crowd.dir/fig06_flash_crowd.cpp.o.d"
  "fig06_flash_crowd"
  "fig06_flash_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_flash_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
