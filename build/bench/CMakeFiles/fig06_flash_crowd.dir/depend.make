# Empty dependencies file for fig06_flash_crowd.
# This may be replaced when dependencies are built.
