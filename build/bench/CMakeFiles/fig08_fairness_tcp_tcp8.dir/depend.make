# Empty dependencies file for fig08_fairness_tcp_tcp8.
# This may be replaced when dependencies are built.
