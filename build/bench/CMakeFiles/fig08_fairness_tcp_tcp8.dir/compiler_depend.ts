# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08_fairness_tcp_tcp8.
