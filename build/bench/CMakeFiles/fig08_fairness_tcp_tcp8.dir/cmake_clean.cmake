file(REMOVE_RECURSE
  "CMakeFiles/fig08_fairness_tcp_tcp8.dir/fig08_fairness_tcp_tcp8.cpp.o"
  "CMakeFiles/fig08_fairness_tcp_tcp8.dir/fig08_fairness_tcp_tcp8.cpp.o.d"
  "fig08_fairness_tcp_tcp8"
  "fig08_fairness_tcp_tcp8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fairness_tcp_tcp8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
