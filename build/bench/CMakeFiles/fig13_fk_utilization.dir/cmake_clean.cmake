file(REMOVE_RECURSE
  "CMakeFiles/fig13_fk_utilization.dir/fig13_fk_utilization.cpp.o"
  "CMakeFiles/fig13_fk_utilization.dir/fig13_fk_utilization.cpp.o.d"
  "fig13_fk_utilization"
  "fig13_fk_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fk_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
