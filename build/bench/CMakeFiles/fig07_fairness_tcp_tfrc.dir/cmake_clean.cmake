file(REMOVE_RECURSE
  "CMakeFiles/fig07_fairness_tcp_tfrc.dir/fig07_fairness_tcp_tfrc.cpp.o"
  "CMakeFiles/fig07_fairness_tcp_tfrc.dir/fig07_fairness_tcp_tfrc.cpp.o.d"
  "fig07_fairness_tcp_tfrc"
  "fig07_fairness_tcp_tfrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fairness_tcp_tfrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
