# Empty dependencies file for fig07_fairness_tcp_tfrc.
# This may be replaced when dependencies are built.
