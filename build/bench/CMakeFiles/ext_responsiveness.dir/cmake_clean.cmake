file(REMOVE_RECURSE
  "CMakeFiles/ext_responsiveness.dir/ext_responsiveness.cpp.o"
  "CMakeFiles/ext_responsiveness.dir/ext_responsiveness.cpp.o.d"
  "ext_responsiveness"
  "ext_responsiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
