# Empty dependencies file for ext_responsiveness.
# This may be replaced when dependencies are built.
