# Empty dependencies file for fig12_convergence_tfrc.
# This may be replaced when dependencies are built.
