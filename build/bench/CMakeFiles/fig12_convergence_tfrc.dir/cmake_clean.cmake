file(REMOVE_RECURSE
  "CMakeFiles/fig12_convergence_tfrc.dir/fig12_convergence_tfrc.cpp.o"
  "CMakeFiles/fig12_convergence_tfrc.dir/fig12_convergence_tfrc.cpp.o.d"
  "fig12_convergence_tfrc"
  "fig12_convergence_tfrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_convergence_tfrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
