file(REMOVE_RECURSE
  "CMakeFiles/ext_tear_smoothness.dir/ext_tear_smoothness.cpp.o"
  "CMakeFiles/ext_tear_smoothness.dir/ext_tear_smoothness.cpp.o.d"
  "ext_tear_smoothness"
  "ext_tear_smoothness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tear_smoothness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
