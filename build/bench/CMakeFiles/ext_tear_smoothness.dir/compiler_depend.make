# Empty compiler generated dependencies file for ext_tear_smoothness.
# This may be replaced when dependencies are built.
