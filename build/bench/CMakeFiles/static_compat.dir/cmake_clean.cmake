file(REMOVE_RECURSE
  "CMakeFiles/static_compat.dir/static_compat.cpp.o"
  "CMakeFiles/static_compat.dir/static_compat.cpp.o.d"
  "static_compat"
  "static_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
