# Empty compiler generated dependencies file for static_compat.
# This may be replaced when dependencies are built.
