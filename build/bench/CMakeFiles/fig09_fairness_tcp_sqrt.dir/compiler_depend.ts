# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig09_fairness_tcp_sqrt.
