file(REMOVE_RECURSE
  "CMakeFiles/fig09_fairness_tcp_sqrt.dir/fig09_fairness_tcp_sqrt.cpp.o"
  "CMakeFiles/fig09_fairness_tcp_sqrt.dir/fig09_fairness_tcp_sqrt.cpp.o.d"
  "fig09_fairness_tcp_sqrt"
  "fig09_fairness_tcp_sqrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fairness_tcp_sqrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
