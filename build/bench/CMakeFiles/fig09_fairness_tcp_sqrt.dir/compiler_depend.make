# Empty compiler generated dependencies file for fig09_fairness_tcp_sqrt.
# This may be replaced when dependencies are built.
