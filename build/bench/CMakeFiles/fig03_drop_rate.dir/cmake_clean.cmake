file(REMOVE_RECURSE
  "CMakeFiles/fig03_drop_rate.dir/fig03_drop_rate.cpp.o"
  "CMakeFiles/fig03_drop_rate.dir/fig03_drop_rate.cpp.o.d"
  "fig03_drop_rate"
  "fig03_drop_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_drop_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
