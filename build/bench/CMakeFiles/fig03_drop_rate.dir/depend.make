# Empty dependencies file for fig03_drop_rate.
# This may be replaced when dependencies are built.
