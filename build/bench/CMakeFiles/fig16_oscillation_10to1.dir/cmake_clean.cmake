file(REMOVE_RECURSE
  "CMakeFiles/fig16_oscillation_10to1.dir/fig16_oscillation_10to1.cpp.o"
  "CMakeFiles/fig16_oscillation_10to1.dir/fig16_oscillation_10to1.cpp.o.d"
  "fig16_oscillation_10to1"
  "fig16_oscillation_10to1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_oscillation_10to1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
