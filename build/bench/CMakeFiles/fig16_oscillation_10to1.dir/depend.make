# Empty dependencies file for fig16_oscillation_10to1.
# This may be replaced when dependencies are built.
