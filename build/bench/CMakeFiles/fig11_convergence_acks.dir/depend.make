# Empty dependencies file for fig11_convergence_acks.
# This may be replaced when dependencies are built.
