file(REMOVE_RECURSE
  "CMakeFiles/fig11_convergence_acks.dir/fig11_convergence_acks.cpp.o"
  "CMakeFiles/fig11_convergence_acks.dir/fig11_convergence_acks.cpp.o.d"
  "fig11_convergence_acks"
  "fig11_convergence_acks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_convergence_acks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
