# Empty dependencies file for fig20_timeout_model.
# This may be replaced when dependencies are built.
