file(REMOVE_RECURSE
  "CMakeFiles/fig20_timeout_model.dir/fig20_timeout_model.cpp.o"
  "CMakeFiles/fig20_timeout_model.dir/fig20_timeout_model.cpp.o.d"
  "fig20_timeout_model"
  "fig20_timeout_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_timeout_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
