file(REMOVE_RECURSE
  "CMakeFiles/fig04_stabilization_time.dir/fig04_stabilization_time.cpp.o"
  "CMakeFiles/fig04_stabilization_time.dir/fig04_stabilization_time.cpp.o.d"
  "fig04_stabilization_time"
  "fig04_stabilization_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_stabilization_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
