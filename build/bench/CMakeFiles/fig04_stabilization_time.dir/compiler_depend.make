# Empty compiler generated dependencies file for fig04_stabilization_time.
# This may be replaced when dependencies are built.
