file(REMOVE_RECURSE
  "CMakeFiles/fig17_smoothness_mild.dir/fig17_smoothness_mild.cpp.o"
  "CMakeFiles/fig17_smoothness_mild.dir/fig17_smoothness_mild.cpp.o.d"
  "fig17_smoothness_mild"
  "fig17_smoothness_mild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_smoothness_mild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
