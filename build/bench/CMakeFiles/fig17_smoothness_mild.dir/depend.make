# Empty dependencies file for fig17_smoothness_mild.
# This may be replaced when dependencies are built.
