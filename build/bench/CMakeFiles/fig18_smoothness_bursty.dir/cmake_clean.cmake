file(REMOVE_RECURSE
  "CMakeFiles/fig18_smoothness_bursty.dir/fig18_smoothness_bursty.cpp.o"
  "CMakeFiles/fig18_smoothness_bursty.dir/fig18_smoothness_bursty.cpp.o.d"
  "fig18_smoothness_bursty"
  "fig18_smoothness_bursty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_smoothness_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
