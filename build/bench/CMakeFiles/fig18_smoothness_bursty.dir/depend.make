# Empty dependencies file for fig18_smoothness_bursty.
# This may be replaced when dependencies are built.
