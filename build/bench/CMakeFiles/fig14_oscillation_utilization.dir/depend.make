# Empty dependencies file for fig14_oscillation_utilization.
# This may be replaced when dependencies are built.
