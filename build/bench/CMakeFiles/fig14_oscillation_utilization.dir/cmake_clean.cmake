file(REMOVE_RECURSE
  "CMakeFiles/fig14_oscillation_utilization.dir/fig14_oscillation_utilization.cpp.o"
  "CMakeFiles/fig14_oscillation_utilization.dir/fig14_oscillation_utilization.cpp.o.d"
  "fig14_oscillation_utilization"
  "fig14_oscillation_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_oscillation_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
