#pragma once

// Binds compiled scenario specs into the exp:: registry so a
// `specs/*.toml` file is a first-class experiment: sweepable over
// algorithms / bandwidth / RTT / its declared [params], with derived
// seeds, retries, checkpoints, and fleet execution inherited from the
// ordinary trial machinery for free.

#include <memory>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "spec/scenario_spec.hpp"

namespace slowcc::spec {

/// Handle to a spec that has been registered as an experiment.
struct RegisteredScenario {
  std::string experiment;  // registry name == [scenario] name
  std::string default_algorithm;
  bool uses_algorithm_hole = false;
  std::shared_ptr<const ScenarioSpec> spec;
};

/// Build (but do not register) the Experiment adapter for `spec`:
/// name/description/metrics/params from the IR, run = compile+execute
/// under the trial's seed, scale, axes, and params.
[[nodiscard]] exp::Experiment make_spec_experiment(
    std::shared_ptr<const ScenarioSpec> spec);

/// Register an already-parsed spec. Throws sim::SimError(kBadSpec)
/// when the scenario name collides with a registered experiment.
RegisteredScenario register_scenario(std::shared_ptr<const ScenarioSpec> spec);

/// Parse, validate, and register a spec file in one step — the
/// `slowcc_sweep --spec file.toml` entry point.
RegisteredScenario load_spec_file(const std::string& path);

/// Metric names `spec` will emit, in row order (for Experiment
/// metadata and `--list` output).
[[nodiscard]] std::vector<std::string> spec_metric_names(
    const ScenarioSpec& spec);

}  // namespace slowcc::spec
