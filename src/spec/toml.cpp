#include "spec/toml.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/error.hpp"

namespace slowcc::spec {

namespace {

bool is_bare_key_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-';
}

std::string_view strip(std::string_view s) noexcept {
  while (!s.empty() &&
         (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

// Cursor over one logical line's value text. Scalars never span lines,
// so a per-line cursor keeps diagnostics trivially accurate.
struct ValueCursor {
  std::string_view text;
  std::size_t pos = 0;
  const std::string& source;
  int line;

  [[nodiscard]] bool done() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[pos]; }

  void skip_space() noexcept {
    while (!done() && (peek() == ' ' || peek() == '\t')) ++pos;
  }
};

TomlValue parse_string(ValueCursor& cur) {
  TomlValue v;
  v.kind = TomlValue::Kind::kString;
  v.line = cur.line;
  ++cur.pos;  // opening quote
  while (true) {
    if (cur.done()) {
      spec_error(cur.source, cur.line, "unterminated string");
    }
    const char c = cur.text[cur.pos++];
    if (c == '"') return v;
    if (c == '\\') {
      if (cur.done()) {
        spec_error(cur.source, cur.line, "unterminated string escape");
      }
      const char e = cur.text[cur.pos++];
      switch (e) {
        case '"': v.text.push_back('"'); break;
        case '\\': v.text.push_back('\\'); break;
        case 'n': v.text.push_back('\n'); break;
        case 't': v.text.push_back('\t'); break;
        case 'r': v.text.push_back('\r'); break;
        default:
          spec_error(cur.source, cur.line,
                     std::string("unsupported string escape '\\") + e + "'");
      }
      continue;
    }
    v.text.push_back(c);
  }
}

TomlValue parse_number_or_bool(ValueCursor& cur) {
  const std::size_t start = cur.pos;
  while (!cur.done() && cur.peek() != ',' && cur.peek() != ']' &&
         cur.peek() != ' ' && cur.peek() != '\t' && cur.peek() != '#') {
    ++cur.pos;
  }
  const std::string token(cur.text.substr(start, cur.pos - start));
  TomlValue v;
  v.line = cur.line;
  if (token == "true" || token == "false") {
    v.kind = TomlValue::Kind::kBool;
    v.boolean = (token == "true");
    return v;
  }
  if (token.empty()) {
    spec_error(cur.source, cur.line, "expected a value");
  }
  // Integer first ("-3" is integral; "3.5" and "3e2" are floats).
  const bool looks_integral = token.find_first_of(".eE") == std::string::npos;
  const char* begin = token.c_str();
  char* end = nullptr;
  if (looks_integral) {
    const long long parsed = std::strtoll(begin, &end, 10);
    if (end == begin + token.size()) {
      v.kind = TomlValue::Kind::kInteger;
      v.integer = parsed;
      v.number = static_cast<double>(parsed);
      return v;
    }
  }
  end = nullptr;
  const double parsed = std::strtod(begin, &end);
  if (end == begin + token.size()) {
    v.kind = TomlValue::Kind::kFloat;
    v.number = parsed;
    return v;
  }
  spec_error(cur.source, cur.line,
             "unrecognized value '" + token +
                 "' (expected integer, float, bool, \"string\", or [array])");
}

TomlValue parse_value(ValueCursor& cur);  // fwd (arrays recurse)

TomlValue parse_array(ValueCursor& cur) {
  TomlValue v;
  v.kind = TomlValue::Kind::kArray;
  v.line = cur.line;
  ++cur.pos;  // '['
  cur.skip_space();
  if (!cur.done() && cur.peek() == ']') {
    ++cur.pos;
    return v;
  }
  while (true) {
    cur.skip_space();
    if (cur.done()) {
      spec_error(cur.source, cur.line, "unterminated array");
    }
    if (cur.peek() == '[') {
      spec_error(cur.source, cur.line,
                 "nested arrays are not supported in scenario specs");
    }
    v.array.push_back(parse_value(cur));
    cur.skip_space();
    if (cur.done()) {
      spec_error(cur.source, cur.line, "unterminated array");
    }
    if (cur.peek() == ',') {
      ++cur.pos;
      cur.skip_space();
      if (!cur.done() && cur.peek() == ']') {  // trailing comma ok
        ++cur.pos;
        return v;
      }
      continue;
    }
    if (cur.peek() == ']') {
      ++cur.pos;
      return v;
    }
    spec_error(cur.source, cur.line,
               "expected ',' or ']' in array");
  }
}

TomlValue parse_value(ValueCursor& cur) {
  cur.skip_space();
  if (cur.done()) {
    spec_error(cur.source, cur.line, "expected a value after '='");
  }
  if (cur.peek() == '"') return parse_string(cur);
  if (cur.peek() == '[') return parse_array(cur);
  return parse_number_or_bool(cur);
}

// Table header line: returns the name; `is_array` distinguishes
// [[name]] from [name].
std::string parse_table_header(std::string_view body, const std::string& source,
                               int line, bool is_array) {
  body = strip(body);
  if (body.empty()) {
    spec_error(source, line, "empty table name");
  }
  for (const char c : body) {
    if (c == '.') {
      spec_error(source, line,
                 "dotted table name '" + std::string(body) +
                     "' is not supported (use flat [tables])");
    }
    if (!is_bare_key_char(c)) {
      spec_error(source, line,
                 "invalid character '" + std::string(1, c) +
                     "' in table name '" + std::string(body) + "'");
    }
  }
  (void)is_array;
  return std::string(body);
}

}  // namespace

const TomlValue* TomlTable::find(std::string_view key) const noexcept {
  for (const auto& kv : entries) {
    if (kv.key == key) return &kv.value;
  }
  return nullptr;
}

const TomlTable* TomlDoc::find_table(std::string_view name) const {
  for (const auto& t : tables) {
    if (t.name == name && !t.is_array) return &t;
  }
  return nullptr;
}

std::vector<const TomlTable*> TomlDoc::find_array_tables(
    std::string_view name) const {
  std::vector<const TomlTable*> out;
  for (const auto& t : tables) {
    if (t.name == name && t.is_array) out.push_back(&t);
  }
  return out;
}

void spec_error(const std::string& source, int line,
                const std::string& detail) {
  throw sim::SimError(sim::SimErrc::kBadSpec, "spec",
                      source + ":" + std::to_string(line) + ": " + detail);
}

TomlDoc parse_toml(std::string_view text, std::string source) {
  TomlDoc doc;
  doc.source = std::move(source);

  std::vector<std::string> plain_tables_seen;  // duplicate-[table] check
  TomlTable* current = nullptr;

  std::size_t offset = 0;
  int line_no = 0;
  while (offset <= text.size()) {
    if (offset == text.size() && line_no > 0) break;
    const std::size_t nl = text.find('\n', offset);
    std::string_view raw =
        (nl == std::string_view::npos) ? text.substr(offset)
                                       : text.substr(offset, nl - offset);
    offset = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;

    // Strip comments — but not inside a string literal.
    bool in_string = false;
    bool escaped = false;
    std::size_t comment_at = std::string_view::npos;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      if (escaped) {
        escaped = false;
        continue;
      }
      if (in_string && c == '\\') {
        escaped = true;
        continue;
      }
      if (c == '"') in_string = !in_string;
      if (c == '#' && !in_string) {
        comment_at = i;
        break;
      }
    }
    if (comment_at != std::string_view::npos) raw = raw.substr(0, comment_at);

    const std::string_view stripped = strip(raw);
    if (stripped.empty()) continue;

    if (stripped.front() == '[') {
      const bool is_array =
          stripped.size() >= 2 && stripped[1] == '[';
      const std::string_view open = is_array ? stripped.substr(2)
                                             : stripped.substr(1);
      const std::string_view closer = is_array ? "]]" : "]";
      if (open.size() < closer.size() ||
          open.substr(open.size() - closer.size()) != closer) {
        spec_error(doc.source, line_no,
                   "malformed table header '" + std::string(stripped) + "'");
      }
      const std::string name = parse_table_header(
          open.substr(0, open.size() - closer.size()), doc.source, line_no,
          is_array);
      // A name must be consistently [t] or [[t]] across the file, and a
      // plain [t] may appear only once.
      for (const auto& t : doc.tables) {
        if (t.name != name) continue;
        if (t.is_array != is_array) {
          spec_error(doc.source, line_no,
                     "table '" + name + "' declared both as [" + name +
                         "] and [[" + name + "]]");
        }
        if (!is_array) {
          spec_error(doc.source, line_no,
                     "duplicate table [" + name + "] (first at line " +
                         std::to_string(t.line) + ")");
        }
      }
      TomlTable table;
      table.name = name;
      table.is_array = is_array;
      table.line = line_no;
      doc.tables.push_back(std::move(table));
      current = &doc.tables.back();
      continue;
    }

    // key = value
    const std::size_t eq = [&] {
      bool in_str = false;
      for (std::size_t i = 0; i < stripped.size(); ++i) {
        if (stripped[i] == '"') in_str = !in_str;
        if (stripped[i] == '=' && !in_str) return i;
      }
      return std::string_view::npos;
    }();
    if (eq == std::string_view::npos) {
      spec_error(doc.source, line_no,
                 "expected 'key = value' or a [table] header, got '" +
                     std::string(stripped) + "'");
    }
    const std::string_view key_sv = strip(stripped.substr(0, eq));
    if (key_sv.empty()) {
      spec_error(doc.source, line_no, "missing key before '='");
    }
    for (const char c : key_sv) {
      if (c == '.') {
        spec_error(doc.source, line_no,
                   "dotted key '" + std::string(key_sv) +
                       "' is not supported");
      }
      if (!is_bare_key_char(c)) {
        spec_error(doc.source, line_no,
                   "invalid character '" + std::string(1, c) + "' in key '" +
                       std::string(key_sv) + "'");
      }
    }
    if (current == nullptr) {
      spec_error(doc.source, line_no,
                 "key '" + std::string(key_sv) +
                     "' appears before any [table] header");
    }
    if (current->find(key_sv) != nullptr) {
      spec_error(doc.source, line_no,
                 "duplicate key '" + std::string(key_sv) + "' in [" +
                     current->name + "]");
    }

    const std::string_view value_sv = strip(stripped.substr(eq + 1));
    ValueCursor cur{value_sv, 0, doc.source, line_no};
    TomlKeyValue kv;
    kv.key = std::string(key_sv);
    kv.line = line_no;
    kv.value = parse_value(cur);
    cur.skip_space();
    if (!cur.done()) {
      spec_error(doc.source, line_no,
                 "trailing garbage after value for key '" +
                     std::string(key_sv) + "'");
    }
    current->entries.push_back(std::move(kv));
  }
  return doc;
}

TomlDoc parse_toml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw sim::SimError(sim::SimErrc::kBadSpec, "spec",
                        path + ": cannot open spec file");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_toml(buf.str(), path);
}

}  // namespace slowcc::spec
