#include "spec/compiler.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "exp/registry.hpp"
#include "exp/seed.hpp"
#include "fault/fault_script.hpp"
#include "fault/impairment.hpp"
#include "metrics/fairness.hpp"
#include "metrics/loss_rate_monitor.hpp"
#include "metrics/smoothness.hpp"
#include "metrics/throughput_monitor.hpp"
#include "metrics/utilization.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/error.hpp"
#include "traffic/flash_crowd.hpp"
#include "traffic/media_source.hpp"
#include "traffic/onoff_pattern.hpp"

namespace slowcc::spec {

namespace {

// Seed sub-stream indices, fanned out from the trial seed so every
// random consumer gets an independent reproducible stream.
constexpr std::uint64_t kSeedFaultInjector = 1;
constexpr std::uint64_t kSeedFlowStagger = 2;
constexpr std::uint64_t kSeedImpairmentBase = 0x100;
constexpr std::uint64_t kSeedCrowdBase = 0x200;

/// Resolves Num fields against the run's parameter values and
/// re-checks ranges post-resolution (a swept value must obey the same
/// constraints a literal would).
class Resolver {
 public:
  Resolver(const ScenarioSpec& spec, const SpecRunOptions& opt)
      : spec_(spec), scale_(opt.duration_scale) {
    for (const ParamDecl& p : spec.params) {
      values_.emplace_back(p.name, p.default_value);
    }
    for (const auto& [name, value] : opt.params) {
      bool found = false;
      for (auto& [have, slot] : values_) {
        if (have == name) {
          slot = value;
          found = true;
          break;
        }
      }
      if (!found) {
        spec_error(spec.source, 1,
                   "parameter override '" + name +
                       "' does not name a [params] entry");
      }
    }
  }

  /// Resolved value of `n`, or `fallback` when the field is absent.
  [[nodiscard]] double operator()(const Num& n, double fallback,
                                  NumRange range) const {
    if (!n.set) return fallback;
    double v = n.value;
    if (n.is_ref()) {
      const double* found = nullptr;
      for (const auto& [name, value] : values_) {
        if (name == n.ref) found = &value;
      }
      if (found == nullptr) {
        spec_error(spec_.source, n.line,
                   "key '" + n.key + "': reference \"$" + n.ref +
                       "\" does not name a [params] entry");
      }
      v = *found;
    }
    check_num_range(spec_.source, n, v, range);
    return v;
  }

  /// A `_s` timeline field as simulated Time, scaled by duration_scale.
  [[nodiscard]] sim::Time time_s(const Num& n, double fallback_s,
                                 NumRange range = NumRange::kNonNegative) const {
    return sim::Time::seconds((*this)(n, fallback_s, range) * scale_);
  }

  /// A `_ms` magnitude field as simulated Time — never scaled.
  [[nodiscard]] sim::Time time_ms(const Num& n, double fallback_ms,
                                  NumRange range) const {
    return sim::Time::seconds((*this)(n, fallback_ms, range) / 1000.0);
  }

  [[nodiscard]] int integer(const Num& n, int fallback,
                            NumRange range) const {
    return static_cast<int>(
        (*this)(n, static_cast<double>(fallback), range));
  }

 private:
  const ScenarioSpec& spec_;
  double scale_;
  std::vector<std::pair<std::string, double>> values_;
};

scenario::FlowSpec flow_spec_for(const ScenarioSpec& spec,
                                 const FlowGroup& group,
                                 const SpecRunOptions& opt,
                                 const Resolver& R) {
  std::string token = group.algorithm;
  if (token == "$algorithm") {
    token = opt.algorithm.empty() ? spec.scenario.default_algorithm
                                  : opt.algorithm;
  }
  scenario::FlowSpec fs;
  try {
    fs = exp::parse_flow_spec(token);
  } catch (const sim::SimError& e) {
    spec_error(spec.source, group.line,
               "algorithm '" + token + "': " + e.detail());
  }
  fs.disable_slow_start = !group.slow_start;
  fs.packet_size = static_cast<std::int64_t>(
      R(group.packet_size, 1000.0, NumRange::kPositiveInt));
  return fs;
}

traffic::PatternKind pattern_kind(const std::string& shape) noexcept {
  if (shape == "sawtooth") return traffic::PatternKind::kSawtooth;
  if (shape == "reverse_sawtooth") {
    return traffic::PatternKind::kReverseSawtooth;
  }
  return traffic::PatternKind::kSquare;
}

}  // namespace

SpecRunResult run_scenario(const ScenarioSpec& spec,
                           const SpecRunOptions& opt) {
  const Resolver R(spec, opt);
  const TopologySection& topo = spec.topology;

  sim::Simulator sim;

  scenario::DumbbellConfig net_cfg;
  net_cfg.bottleneck_bps =
      R(topo.bottleneck_mbps, 10.0, NumRange::kPositive) * 1e6;
  net_cfg.bottleneck_delay =
      R.time_ms(topo.bottleneck_delay_ms, 23.0, NumRange::kNonNegative);
  net_cfg.access_bps = R(topo.access_mbps, 100.0, NumRange::kPositive) * 1e6;
  net_cfg.access_delay =
      R.time_ms(topo.access_delay_ms, 1.0, NumRange::kNonNegative);
  net_cfg.red = (topo.queue == "red");
  net_cfg.mean_packet_size = static_cast<std::int64_t>(
      R(topo.mean_packet_size, 1000.0, NumRange::kPositiveInt));
  net_cfg.reverse_tcp_flows =
      R.integer(topo.reverse_tcp_flows, 2, NumRange::kNonNegativeInt);
  net_cfg.seed = opt.seed;

  // The sweep grid's generic axes override the spec's topology, the
  // same way exp::registry applies them to built-in experiments.
  if (opt.bandwidth_bps > 0) net_cfg.bottleneck_bps = opt.bandwidth_bps;
  if (opt.rtt_ms > 0) {
    const sim::Time two_access = net_cfg.access_delay * 2;
    const sim::Time one_way = sim::Time::seconds(opt.rtt_ms / 2000.0);
    if (one_way <= two_access) {
      spec_error(spec.source, topo.line == 0 ? 1 : topo.line,
                 "rtt_ms override too small for the access delays");
    }
    net_cfg.bottleneck_delay = one_way - two_access;
  }

  scenario::Dumbbell net(sim, net_cfg);

  const sim::Time t0 = R.time_s(spec.scenario.warmup_s, 5.0);
  const sim::Time t1 =
      t0 + R.time_s(spec.scenario.measure_s, 0.0, NumRange::kPositive);

  // ---- flows ------------------------------------------------------
  sim::Rng stagger(exp::derive_seed(opt.seed, kSeedFlowStagger));
  std::vector<net::FlowId> forward_ids;
  for (const FlowGroup& group : spec.flows) {
    const scenario::FlowSpec fs = flow_spec_for(spec, group, opt, R);
    const int count = R.integer(group.count, 1, NumRange::kNonNegativeInt);
    const sim::Time start = R.time_s(group.start_s, 0.0);
    const sim::Time spread = R.time_s(group.start_spread_s, 0.0);
    const sim::Time stop = R.time_s(group.stop_s, 0.0);
    for (int i = 0; i < count; ++i) {
      scenario::Dumbbell::Flow& f = net.add_flow(fs, group.forward);
      if (group.forward) forward_ids.push_back(f.id);
      cc::Agent* agent = f.agent;
      const sim::Time jitter =
          sim::Time::seconds(stagger.uniform() * spread.as_seconds());
      sim.schedule_at(start + jitter, [agent] { agent->start(); });
      if (stop > sim::Time()) {
        sim.schedule_at(stop, [agent] { agent->stop(); });
      }
    }
  }
  net.add_reverse_traffic();

  // ---- traffic ----------------------------------------------------
  std::vector<std::unique_ptr<traffic::OnOffPattern>> patterns;
  std::vector<std::unique_ptr<traffic::FlashCrowd>> crowds;
  std::vector<std::unique_ptr<traffic::MediaSource>> media;
  for (std::size_t i = 0; i < spec.traffic.size(); ++i) {
    const TrafficSection& t = spec.traffic[i];
    const sim::Time start = R.time_s(t.start_s, 0.0);
    const sim::Time stop = R.time_s(t.stop_s, 0.0);
    const auto packet_size = static_cast<std::int64_t>(
        R(t.packet_size, 1000.0, NumRange::kPositiveInt));
    switch (t.kind) {
      case TrafficSection::Kind::kCbr: {
        const double rate =
            R(t.rate_mbps, 0.0, NumRange::kPositive) * 1e6;
        traffic::CbrSource& src = net.add_cbr(rate, packet_size);
        traffic::CbrSource* p = &src;
        sim.schedule_at(start, [p] { p->start(); });
        if (stop > sim::Time()) {
          sim.schedule_at(stop, [p] { p->stop(); });
        }
        break;
      }
      case TrafficSection::Kind::kOnOff: {
        const double peak =
            R(t.rate_mbps, 0.0, NumRange::kPositive) * 1e6;
        traffic::CbrSource& src = net.add_cbr(peak, packet_size);
        patterns.push_back(std::make_unique<traffic::OnOffPattern>(
            sim, src, pattern_kind(t.shape), peak,
            R.time_s(t.on_s, 1.0, NumRange::kPositive),
            R.time_s(t.off_s, 1.0, NumRange::kPositive),
            R.integer(t.ramp_steps, 16, NumRange::kPositiveInt)));
        traffic::OnOffPattern* p = patterns.back().get();
        p->start_at(start);
        if (stop > sim::Time()) {
          sim.schedule_at(stop, [p] { p->stop(); });
        }
        break;
      }
      case TrafficSection::Kind::kFlashCrowd: {
        net::Node& crowd_src = net.topology().add_node(
            "crowd-src-" + std::to_string(i));
        net::Node& crowd_dst = net.topology().add_node(
            "crowd-dst-" + std::to_string(i));
        net.topology().add_duplex(crowd_src, net.left_router(),
                                  net_cfg.access_bps, net_cfg.access_delay,
                                  1000);
        net.topology().add_duplex(crowd_dst, net.right_router(),
                                  net_cfg.access_bps, net_cfg.access_delay,
                                  1000);
        traffic::FlashCrowdConfig fc;
        fc.arrival_rate_fps =
            R(t.arrival_rate_fps, 200.0, NumRange::kPositive);
        fc.duration = R.time_s(t.duration_s, 5.0, NumRange::kPositive);
        fc.transfer_packets = static_cast<std::int64_t>(
            R(t.transfer_packets, 10.0, NumRange::kPositiveInt));
        fc.packet_size = packet_size;
        fc.seed = exp::derive_seed(opt.seed, kSeedCrowdBase + i);
        fc.first_flow_id =
            static_cast<net::FlowId>(100000 * (i + 1));
        crowds.push_back(std::make_unique<traffic::FlashCrowd>(
            sim, crowd_src, crowd_dst, fc));
        crowds.back()->start_at(start);
        break;
      }
      case TrafficSection::Kind::kMedia: {
        traffic::MediaSourceConfig mc;
        for (const Num& rung : t.rungs_mbps) {
          mc.rungs_bps.push_back(R(rung, 0.0, NumRange::kPositive) * 1e6);
        }
        mc.segment = R.time_s(t.segment_s, 2.0, NumRange::kPositive);
        mc.up_fraction = R(t.up_fraction, 0.95, NumRange::kUnitInterval);
        mc.down_fraction =
            R(t.down_fraction, 0.75, NumRange::kUnitInterval);
        const scenario::Dumbbell::CbrPair pair =
            net.add_cbr_pair(mc.rungs_bps.front(), packet_size);
        try {
          media.push_back(std::make_unique<traffic::MediaSource>(
              sim, *pair.source, *pair.sink, mc));
        } catch (const sim::SimError& e) {
          spec_error(spec.source, t.line, "media traffic: " + e.detail());
        }
        traffic::MediaSource* p = media.back().get();
        p->start_at(start);
        if (stop > sim::Time()) {
          sim.schedule_at(stop, [p] { p->stop(); });
        }
        break;
      }
    }
  }

  // ---- faults -----------------------------------------------------
  fault::FaultInjector injector(
      sim, exp::derive_seed(opt.seed, kSeedFaultInjector));
  std::vector<std::unique_ptr<fault::WireImpairment>> impairments;
  fault::FaultScript script;
  const auto cycles_to_cover = [&](sim::Time period) {
    return static_cast<int>(
        std::ceil(t1.as_seconds() / std::max(period.as_seconds(), 1e-9)));
  };
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    const FaultSection& f = spec.faults[i];
    net::Link& link =
        f.reverse_link ? net.reverse_bottleneck() : net.bottleneck();
    const sim::Time at = R.time_s(f.at_s, 0.0);
    switch (f.kind) {
      case FaultSection::Kind::kBlackout:
        script.blackout(link, at,
                        R.time_s(f.duration_s, 1.0, NumRange::kPositive));
        break;
      case FaultSection::Kind::kFlap: {
        const sim::Time down =
            R.time_s(f.down_s, 1.0, NumRange::kPositive);
        const sim::Time up = R.time_s(f.up_s, 1.0, NumRange::kPositive);
        const int cycles =
            f.cycles.set
                ? R.integer(f.cycles, 1, NumRange::kPositiveInt)
                : cycles_to_cover(down + up);
        script.flap(link, at, down, up, cycles);
        break;
      }
      case FaultSection::Kind::kBandwidthOscillation: {
        const sim::Time period =
            R.time_s(f.period_s, 1.0, NumRange::kPositive);
        const int cycles =
            f.cycles.set
                ? R.integer(f.cycles, 1, NumRange::kPositiveInt)
                : cycles_to_cover(period);
        script.bandwidth_oscillation(
            link, at, period,
            R(f.high_mbps, 0.0, NumRange::kPositive) * 1e6,
            R(f.low_mbps, 0.0, NumRange::kPositive) * 1e6, cycles);
        break;
      }
      case FaultSection::Kind::kDelayJitter:
        script.delay_jitter(
            link, at, R.time_s(f.end_s, 0.0, NumRange::kPositive),
            R.time_s(f.interval_s, 0.1, NumRange::kPositive),
            R.time_ms(f.amplitude_ms, 0.0, NumRange::kNonNegative));
        break;
      case FaultSection::Kind::kDelayStep:
        script.delay_at(link, at,
                        R.time_ms(f.delay_ms, 0.0, NumRange::kNonNegative));
        break;
      case FaultSection::Kind::kRetryStall: {
        // A periodic link-layer retransmission storm: propagation
        // delay jumps by extra_delay_ms for stall_s, then recovers.
        const sim::Time period =
            R.time_s(f.period_s, 1.0, NumRange::kPositive);
        const sim::Time stall =
            R.time_s(f.stall_s, 0.1, NumRange::kPositive);
        const sim::Time extra =
            R.time_ms(f.extra_delay_ms, 0.0, NumRange::kNonNegative);
        const int cycles =
            f.cycles.set
                ? R.integer(f.cycles, 1, NumRange::kPositiveInt)
                : cycles_to_cover(period);
        const sim::Time base = net_cfg.bottleneck_delay;
        for (int c = 0; c < cycles; ++c) {
          const sim::Time stall_at = at + period * c;
          script.delay_at(link, stall_at, base + extra);
          script.delay_at(link, stall_at + stall, base);
        }
        break;
      }
      case FaultSection::Kind::kImpairment: {
        fault::ImpairmentConfig ic;
        fault::GilbertElliottConfig ge;
        ge.p_good_to_bad =
            R(f.p_good_to_bad, 0.001, NumRange::kUnitInterval);
        ge.p_bad_to_good =
            R(f.p_bad_to_good, 0.10, NumRange::kUnitInterval);
        ge.loss_good = R(f.loss_good, 0.0, NumRange::kUnitInterval);
        ge.loss_bad = R(f.loss_bad, 0.5, NumRange::kUnitInterval);
        ic.loss = ge;
        ic.reorder_probability =
            R(f.reorder_probability, 0.0, NumRange::kUnitInterval);
        ic.duplicate_probability =
            R(f.duplicate_probability, 0.0, NumRange::kUnitInterval);
        try {
          impairments.push_back(std::make_unique<fault::WireImpairment>(
              ic, sim::Rng(exp::derive_seed(opt.seed,
                                            kSeedImpairmentBase + i))));
        } catch (const sim::SimError& e) {
          spec_error(spec.source, f.line, "impairment: " + e.detail());
        }
        script.wire_model_at(link, at, impairments.back().get());
        break;
      }
    }
  }

  // ---- metrics ----------------------------------------------------
  const sim::Time bin = std::max(
      sim::Time::seconds(0.1 * opt.duration_scale), sim::Time::micros(100));
  const auto is_data = [](const net::Packet& p) {
    return p.type == net::PacketType::kData ||
           p.type == net::PacketType::kTfrcData ||
           p.type == net::PacketType::kTearData;
  };
  metrics::ThroughputMonitor data_tp(sim, net.bottleneck(), bin, is_data);
  std::vector<std::unique_ptr<metrics::ThroughputMonitor>> per_flow;
  if (spec.metrics.fairness) {
    for (const net::FlowId id : forward_ids) {
      per_flow.push_back(std::make_unique<metrics::ThroughputMonitor>(
          sim, net.bottleneck(), bin,
          [id](const net::Packet& p) { return p.flow == id; }));
    }
  }
  std::unique_ptr<metrics::LossRateMonitor> losses;
  if (spec.metrics.loss) {
    losses = std::make_unique<metrics::LossRateMonitor>(
        sim, net.bottleneck(), bin);
  }

  net.finalize();
  injector.arm(script);
  sim.run_until(t1);

  exp::Row row;
  if (spec.metrics.throughput) {
    const double goodput = data_tp.rate_bps_between(t0, t1);
    row.set("aggregate_goodput_bps", goodput);
    row.set("aggregate_fraction", goodput / net_cfg.bottleneck_bps);
  }
  if (spec.metrics.utilization) {
    row.set("utilization", metrics::utilization_between(
                               data_tp, t0, t1, net_cfg.bottleneck_bps));
  }
  if (spec.metrics.loss) {
    row.set("drop_rate", losses->loss_rate_between(t0, t1));
  }
  if (spec.metrics.fairness) {
    std::vector<double> shares;
    shares.reserve(per_flow.size());
    for (const auto& m : per_flow) {
      shares.push_back(m->rate_bps_between(t0, t1));
    }
    row.set("jain_index", metrics::jain_index(shares));
  }
  if (spec.metrics.smoothness) {
    const std::vector<double> series = data_tp.rate_series_bps(t0, t1);
    row.set("smoothness", metrics::smoothness_metric(series));
    row.set("cov", metrics::coefficient_of_variation(series));
  }
  if (!crowds.empty()) {
    double started = 0.0;
    double completed = 0.0;
    for (const auto& c : crowds) {
      started += static_cast<double>(c->flows_started());
      completed += static_cast<double>(c->flows_completed());
    }
    row.set("crowd_flows_started", started);
    row.set("crowd_completed_fraction",
            started > 0 ? completed / started : 0.0);
  }
  if (!media.empty()) {
    double rung_sum = 0.0;
    double switches = 0.0;
    for (const auto& m : media) {
      rung_sum += m->mean_rung();
      switches += static_cast<double>(m->switches());
    }
    row.set("media_mean_rung", rung_sum / static_cast<double>(media.size()));
    row.set("media_rung_switches", switches);
  }

  SpecRunResult out;
  out.row = std::move(row);
  out.trace_digest = sim.trace_digest();
  out.events = sim.events_executed();
  return out;
}

}  // namespace slowcc::spec
