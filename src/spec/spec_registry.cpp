#include "spec/spec_registry.hpp"

#include <sstream>
#include <utility>

#include "sim/error.hpp"
#include "spec/compiler.hpp"

namespace slowcc::spec {

std::vector<std::string> spec_metric_names(const ScenarioSpec& spec) {
  std::vector<std::string> out;
  if (spec.metrics.throughput) {
    out.emplace_back("aggregate_goodput_bps");
    out.emplace_back("aggregate_fraction");
  }
  if (spec.metrics.utilization) out.emplace_back("utilization");
  if (spec.metrics.loss) out.emplace_back("drop_rate");
  if (spec.metrics.fairness) out.emplace_back("jain_index");
  if (spec.metrics.smoothness) {
    out.emplace_back("smoothness");
    out.emplace_back("cov");
  }
  bool crowd = false;
  bool media = false;
  for (const TrafficSection& t : spec.traffic) {
    crowd = crowd || t.kind == TrafficSection::Kind::kFlashCrowd;
    media = media || t.kind == TrafficSection::Kind::kMedia;
  }
  if (crowd) {
    out.emplace_back("crowd_flows_started");
    out.emplace_back("crowd_completed_fraction");
  }
  if (media) {
    out.emplace_back("media_mean_rung");
    out.emplace_back("media_rung_switches");
  }
  return out;
}

exp::Experiment make_spec_experiment(
    std::shared_ptr<const ScenarioSpec> spec) {
  exp::Experiment e;
  e.name = spec->scenario.name;
  e.description = spec->scenario.description.empty()
                      ? "scenario spec (" + spec->source + ")"
                      : spec->scenario.description;
  e.metrics = spec_metric_names(*spec);
  for (const ParamDecl& p : spec->params) {
    std::ostringstream def;
    def << p.name << "=" << p.default_value;
    e.params.push_back(def.str());
  }
  // [limits] weight feeds the runner's admission semaphore (parse
  // guarantees >= 1); the byte/event budgets are applied by the CLI as
  // policy defaults, not here, so one thread-level deadline guard stays
  // in charge of every trial.
  e.weight = static_cast<int>(spec->limits.weight);
  e.run = [spec = std::move(spec)](const exp::TrialDesc& d) {
    SpecRunOptions opt;
    opt.algorithm = d.algorithm;
    opt.seed = d.seed;
    opt.duration_scale = d.duration_scale;
    opt.bandwidth_bps = d.bandwidth_bps;
    opt.rtt_ms = d.rtt_ms;
    opt.params = d.params;
    return run_scenario(*spec, opt).row;
  };
  return e;
}

RegisteredScenario register_scenario(
    std::shared_ptr<const ScenarioSpec> spec) {
  if (exp::find_experiment(spec->scenario.name) != nullptr) {
    throw sim::SimError(
        sim::SimErrc::kBadSpec, "spec",
        spec->source + ":1: scenario name '" + spec->scenario.name +
            "' collides with an already registered experiment");
  }
  RegisteredScenario out;
  out.experiment = spec->scenario.name;
  out.default_algorithm = spec->scenario.default_algorithm;
  out.uses_algorithm_hole = spec->uses_algorithm_hole();
  out.spec = spec;
  exp::register_experiment(make_spec_experiment(std::move(spec)));
  return out;
}

RegisteredScenario load_spec_file(const std::string& path) {
  return register_scenario(
      std::make_shared<const ScenarioSpec>(parse_scenario_file(path)));
}

}  // namespace slowcc::spec
