#pragma once

// The scenario compiler: ScenarioSpec IR + per-trial options -> one
// deterministic simulation run on the existing primitives (Dumbbell
// topology, cc:: agents, traffic:: sources, fault:: scripts,
// metrics:: monitors). See DESIGN.md §12 for the pipeline.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/row.hpp"
#include "spec/scenario_spec.hpp"

namespace slowcc::spec {

/// Per-run knobs: everything the sweep grid varies. Mirrors the
/// corresponding TrialDesc fields so registered specs plug into the
/// ordinary trial machinery.
struct SpecRunOptions {
  /// Fills the "$algorithm" hole in [[flows]]; empty uses the spec's
  /// [scenario] default. Ignored by flow groups with literal tokens.
  std::string algorithm;
  std::uint64_t seed = 1;
  /// Uniform timeline shrink: every `_s` field (starts, stops, fault
  /// times, the measurement window) scales; `_ms` magnitudes (delays,
  /// jitter amplitudes) do not.
  double duration_scale = 1.0;
  double bandwidth_bps = 0;  // > 0 overrides [topology] bottleneck
  double rtt_ms = 0;         // > 0 overrides the path RTT
  /// [params] overrides (sweep axis + fixed --set values). Names must
  /// be declared in the spec's [params] section.
  std::vector<std::pair<std::string, double>> params;
};

/// The run's scientific payload plus its reproducibility fingerprint.
struct SpecRunResult {
  exp::Row row;  // metrics only; identity is stamped by exp::run_trial
  std::uint64_t trace_digest = 0;  // sim::Simulator::trace_digest()
  std::uint64_t events = 0;
};

/// Compile and execute `spec` under `opt`. Throws
/// sim::SimError(kBadSpec) on resolution failures (unknown $param,
/// out-of-range resolved value, bad algorithm token), each carrying
/// the spec's file:line.
[[nodiscard]] SpecRunResult run_scenario(const ScenarioSpec& spec,
                                         const SpecRunOptions& opt);

}  // namespace slowcc::spec
