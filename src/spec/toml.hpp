#pragma once

// Dependency-free parser for the TOML subset scenario specs use
// (see DESIGN.md §12). Supported grammar:
//
//   # comment                       (anywhere outside a string)
//   [table]                         (at most once per name)
//   [[array-table]]                 (repeatable; may not mix with [name])
//   key = value                     (inside a table; bare keys only)
//
// Values: integers, floats, booleans, double-quoted strings with
// \" \\ \n \t \r escapes, and single-line arrays of scalars. Dotted
// keys, inline tables, multi-line strings, and dates are deliberately
// out of scope — a spec that needs them is a spec that should be two
// specs.
//
// Every syntax or structure violation throws sim::SimError(kBadSpec)
// whose detail starts with "<source>:<line>:" and names the offending
// key or token, so `slowcc_sweep --spec broken.toml` prints an exact
// location instead of a stack of guesses.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace slowcc::spec {

/// One parsed scalar or array value, tagged with its source line.
struct TomlValue {
  enum class Kind { kInteger, kFloat, kBool, kString, kArray };
  Kind kind = Kind::kInteger;
  std::int64_t integer = 0;  // kInteger
  double number = 0.0;       // kInteger and kFloat (always usable as double)
  bool boolean = false;      // kBool
  std::string text;          // kString (unescaped)
  std::vector<TomlValue> array;  // kArray (scalar elements only)
  int line = 0;

  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kInteger || kind == Kind::kFloat;
  }
};

struct TomlKeyValue {
  std::string key;
  TomlValue value;
  int line = 0;
};

/// One `[name]` or `[[name]]` table with its entries in file order.
struct TomlTable {
  std::string name;
  bool is_array = false;  // declared with [[name]]
  int line = 0;
  std::vector<TomlKeyValue> entries;

  /// Entry for `key`, or nullptr.
  [[nodiscard]] const TomlValue* find(std::string_view key) const noexcept;
};

/// A parsed document: tables in file order (array tables appear once
/// per [[name]] occurrence).
struct TomlDoc {
  std::string source;  // file name used in diagnostics
  std::vector<TomlTable> tables;

  /// The unique `[name]` table, or nullptr when absent.
  [[nodiscard]] const TomlTable* find_table(std::string_view name) const;

  /// Every `[[name]]` occurrence, in file order.
  [[nodiscard]] std::vector<const TomlTable*> find_array_tables(
      std::string_view name) const;
};

/// Parse `text`. `source` is used only for diagnostics ("file.toml" or
/// "<inline>"). Throws sim::SimError(kBadSpec) with file:line detail.
[[nodiscard]] TomlDoc parse_toml(std::string_view text, std::string source);

/// Read and parse a file. Throws sim::SimError(kBadSpec) on I/O failure.
[[nodiscard]] TomlDoc parse_toml_file(const std::string& path);

/// Throw the canonical spec diagnostic: "[bad-spec] spec: " +
/// "<source>:<line>: <detail>". Shared by the parser, the validator,
/// and the compiler so every layer reports locations the same way.
[[noreturn]] void spec_error(const std::string& source, int line,
                             const std::string& detail);

}  // namespace slowcc::spec
