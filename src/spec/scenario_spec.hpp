#pragma once

// Validated intermediate representation of a declarative scenario spec
// (DESIGN.md §12). `parse_scenario_spec` turns a TomlDoc into this IR,
// rejecting unknown sections/keys and out-of-range values with
// file:line diagnostics; `compile` (spec/compiler.hpp) turns the IR
// plus run options into an actual simulation.
//
// Numeric fields are `Num`: either a literal or a `"$name"` reference
// into [params], resolved at compile time so one spec can be swept
// over its declared parameters via the ordinary sweep grid.
//
// Naming convention carried into the grammar: `_s` keys are points or
// spans on the scenario timeline and scale with the trial's
// duration_scale; `_ms`/`_mbps`/unit-free keys are magnitudes and do
// not scale.

#include <cstdint>
#include <string>
#include <vector>

#include "spec/toml.hpp"

namespace slowcc::spec {

/// A numeric spec field: literal value or `$param` reference.
struct Num {
  double value = 0.0;
  std::string ref;   // non-empty => "$ref" into [params]
  std::string key;   // key name, for range-error messages
  int line = 0;
  bool set = false;  // false => field absent, use the default

  [[nodiscard]] bool is_ref() const noexcept { return !ref.empty(); }
};

/// [scenario] — identity and measurement window.
struct ScenarioSection {
  std::string name;
  std::string description;
  std::int64_t version = 1;
  std::string default_algorithm = "tcp";  // fills "$algorithm" holes
  Num warmup_s;   // default 5 s
  Num measure_s;  // required > 0
};

/// [params] — declared tunables: name -> default, in file order.
struct ParamDecl {
  std::string name;
  double default_value = 0.0;
  int line = 0;
};

/// [topology] — the dumbbell, all optional with §3 defaults.
struct TopologySection {
  Num bottleneck_mbps;      // default 10
  Num bottleneck_delay_ms;  // default 23
  Num access_mbps;          // default 100
  Num access_delay_ms;      // default 1
  std::string queue = "red";  // "red" | "droptail"
  Num reverse_tcp_flows;    // default 2
  Num mean_packet_size;     // default 1000
  int line = 0;
};

/// [[flows]] — one group of identical congestion-controlled flows.
struct FlowGroup {
  std::string algorithm = "$algorithm";  // token or the "$algorithm" hole
  Num count;           // default 1
  Num start_s;         // default 0
  Num start_spread_s;  // default 0 (deterministic stagger width)
  Num stop_s;          // default 0 => run to the end
  bool forward = true;
  bool slow_start = true;
  Num packet_size;     // default 1000
  int line = 0;
};

/// [[traffic]] — one uncontrolled / application-driven source.
struct TrafficSection {
  enum class Kind { kCbr, kOnOff, kFlashCrowd, kMedia };
  Kind kind = Kind::kCbr;
  int line = 0;

  // cbr + onoff
  Num rate_mbps;  // cbr rate / onoff peak; may be a $param
  Num start_s;    // default 0
  Num stop_s;     // default 0 => never

  // onoff
  std::string shape = "square";  // square | sawtooth | reverse_sawtooth
  Num on_s;                      // required for onoff
  Num off_s;                     // required for onoff
  Num ramp_steps;                // default 16

  // flash_crowd
  Num arrival_rate_fps;  // default 200
  Num duration_s;        // default 5
  Num transfer_packets;  // default 10

  // media
  std::vector<Num> rungs_mbps;  // ascending ladder, required for media
  Num segment_s;                // default 2
  Num up_fraction;              // default 0.95
  Num down_fraction;            // default 0.75

  // cbr/onoff/media
  Num packet_size;  // default 1000
};

/// [[faults]] — one scripted disturbance against a bottleneck link.
struct FaultSection {
  enum class Kind {
    kBlackout,
    kFlap,
    kBandwidthOscillation,
    kDelayJitter,
    kDelayStep,
    kRetryStall,
    kImpairment,
  };
  Kind kind = Kind::kBlackout;
  bool reverse_link = false;  // link = "bottleneck" (default) | "reverse"
  int line = 0;

  Num at_s;  // default 0 — when the fault begins

  // blackout
  Num duration_s;

  // flap
  Num down_s;
  Num up_s;
  Num cycles;  // flap / bandwidth_oscillation / retry_stall

  // bandwidth_oscillation
  Num period_s;
  Num high_mbps;
  Num low_mbps;

  // delay_jitter
  Num end_s;
  Num interval_s;
  Num amplitude_ms;

  // delay_step
  Num delay_ms;

  // retry_stall: every period_s the link stalls for stall_s with
  // +extra_delay_ms propagation (link-layer retransmission storms)
  Num stall_s;
  Num extra_delay_ms;

  // impairment (Gilbert-Elliott + reorder/duplicate wire model)
  Num p_good_to_bad;          // default 0.001
  Num p_bad_to_good;          // default 0.10
  Num loss_good;              // default 0
  Num loss_bad;               // default 0.5
  Num reorder_probability;    // default 0
  Num duplicate_probability;  // default 0
};

/// [limits] — per-trial resource-governance declarations (PR 8). All
/// optional; 0 means "no opinion" and leaves the runner policy alone.
/// `weight` feeds the runner's admission semaphore: a weight-w trial
/// occupies w of the --jobs capacity units while it runs.
struct LimitsSection {
  std::int64_t max_events = 0;  // per-trial event budget (0 = unset)
  std::int64_t max_bytes = 0;   // per-trial modeled-memory budget
  std::int64_t weight = 1;      // admission weight (>= 1)
};

/// [metrics] — which metric families the run reports.
struct MetricsSection {
  bool throughput = true;
  bool loss = true;
  bool fairness = false;
  bool utilization = false;
  bool smoothness = false;
};

/// The whole validated spec.
struct ScenarioSpec {
  std::string source;  // file name for diagnostics
  ScenarioSection scenario;
  std::vector<ParamDecl> params;
  TopologySection topology;
  std::vector<FlowGroup> flows;
  std::vector<TrafficSection> traffic;
  std::vector<FaultSection> faults;
  MetricsSection metrics;
  LimitsSection limits;

  /// True when any flow group uses the "$algorithm" hole (so sweeping
  /// --algorithms over this spec is meaningful).
  [[nodiscard]] bool uses_algorithm_hole() const noexcept;

  /// Declared param, or nullptr.
  [[nodiscard]] const ParamDecl* find_param(std::string_view name) const;
};

/// Range constraint on a resolved numeric field. The validator applies
/// these to literals at parse time; the compiler re-applies them after
/// `$param` resolution so a swept value cannot smuggle in -1 flows.
enum class NumRange {
  kAny,
  kPositive,
  kNonNegative,
  kUnitInterval,
  kPositiveInt,
  kNonNegativeInt,
};

/// Throw sim::SimError(kBadSpec) at `n`'s recorded line when `v`
/// violates `range`.
void check_num_range(const std::string& source, const Num& n, double v,
                     NumRange range);

/// Validate a parsed document into the IR. Throws
/// sim::SimError(kBadSpec) with "<file>:<line>: <key>" detail on any
/// unknown section, unknown key, wrong type, or out-of-range literal.
[[nodiscard]] ScenarioSpec parse_scenario_spec(const TomlDoc& doc);

/// Parse + validate a spec file in one step.
[[nodiscard]] ScenarioSpec parse_scenario_file(const std::string& path);

}  // namespace slowcc::spec
