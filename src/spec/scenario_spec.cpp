#include "spec/scenario_spec.hpp"

#include <cctype>
#include <cmath>

#include "sim/error.hpp"

namespace slowcc::spec {

namespace {

bool is_identifier(std::string_view s) noexcept {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::islower(static_cast<unsigned char>(c)) == 0 &&
        std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

/// Tracks which keys of one table the validator consumed, so anything
/// left over is reported as an unknown key with its own line.
class SectionReader {
 public:
  SectionReader(const TomlTable& table, const std::string& source)
      : table_(table), source_(source), used_(table.entries.size(), false) {}

  [[nodiscard]] const TomlValue* take(std::string_view key) {
    for (std::size_t i = 0; i < table_.entries.size(); ++i) {
      if (table_.entries[i].key == key) {
        used_[i] = true;
        return &table_.entries[i].value;
      }
    }
    return nullptr;
  }

  /// Numeric-or-$ref field. Absent => Num with set=false.
  [[nodiscard]] Num num(std::string_view key) {
    Num n;
    n.key = std::string(key);
    const TomlValue* v = take(key);
    if (v == nullptr) return n;
    n.set = true;
    n.line = v->line;
    if (v->is_number()) {
      n.value = v->number;
      return n;
    }
    if (v->kind == TomlValue::Kind::kString && !v->text.empty() &&
        v->text.front() == '$') {
      n.ref = v->text.substr(1);
      if (!is_identifier(n.ref)) {
        spec_error(source_, v->line,
                   "key '" + n.key + "': malformed parameter reference \"$" +
                       n.ref + "\"");
      }
      return n;
    }
    spec_error(source_, v->line,
               "key '" + n.key +
                   "' must be a number or a \"$param\" reference");
  }

  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) {
    const TomlValue* v = take(key);
    if (v == nullptr) return fallback;
    if (v->kind != TomlValue::Kind::kString) {
      spec_error(source_, v->line,
                 "key '" + std::string(key) + "' must be a string");
    }
    return v->text;
  }

  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) {
    const TomlValue* v = take(key);
    if (v == nullptr) return fallback;
    if (v->kind != TomlValue::Kind::kBool) {
      spec_error(source_, v->line,
                 "key '" + std::string(key) + "' must be true or false");
    }
    return v->boolean;
  }

  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) {
    const TomlValue* v = take(key);
    if (v == nullptr) return fallback;
    if (v->kind != TomlValue::Kind::kInteger) {
      spec_error(source_, v->line,
                 "key '" + std::string(key) + "' must be an integer");
    }
    return v->integer;
  }

  /// Error on any key the section did not consume.
  void finish(const std::string& section) {
    for (std::size_t i = 0; i < table_.entries.size(); ++i) {
      if (!used_[i]) {
        spec_error(source_, table_.entries[i].line,
                   "unknown key '" + table_.entries[i].key + "' in [" +
                       section + "]");
      }
    }
  }

 private:
  const TomlTable& table_;
  const std::string& source_;
  std::vector<bool> used_;
};

void check_literal(const std::string& source, const Num& n, NumRange range) {
  if (n.set && !n.is_ref()) check_num_range(source, n, n.value, range);
}

ScenarioSection parse_scenario_section(const TomlDoc& doc) {
  const TomlTable* t = doc.find_table("scenario");
  if (t == nullptr) {
    spec_error(doc.source, 1, "missing required [scenario] section");
  }
  SectionReader r(*t, doc.source);
  ScenarioSection s;
  s.name = r.string_or("name", "");
  if (!is_identifier(s.name)) {
    spec_error(doc.source, t->line,
               "key 'name': scenario name '" + s.name +
                   "' must be a non-empty [a-z0-9_] identifier");
  }
  s.description = r.string_or("description", "");
  s.version = r.int_or("version", 1);
  if (s.version != 1) {
    spec_error(doc.source, t->line,
               "key 'version': unsupported spec version " +
                   std::to_string(s.version) + " (this build reads 1)");
  }
  s.default_algorithm = r.string_or("algorithm", "tcp");
  if (s.default_algorithm.empty() || s.default_algorithm.front() == '$') {
    spec_error(doc.source, t->line,
               "key 'algorithm': default algorithm must be a literal "
               "token (the \"$algorithm\" hole lives in [[flows]])");
  }
  s.warmup_s = r.num("warmup_s");
  s.measure_s = r.num("measure_s");
  if (!s.measure_s.set) {
    spec_error(doc.source, t->line,
               "key 'measure_s': [scenario] must set a measurement "
               "window");
  }
  check_literal(doc.source, s.warmup_s, NumRange::kNonNegative);
  check_literal(doc.source, s.measure_s, NumRange::kPositive);
  r.finish("scenario");
  return s;
}

std::vector<ParamDecl> parse_params_section(const TomlDoc& doc) {
  std::vector<ParamDecl> out;
  const TomlTable* t = doc.find_table("params");
  if (t == nullptr) return out;
  for (const auto& kv : t->entries) {
    if (!kv.value.is_number()) {
      spec_error(doc.source, kv.line,
                 "key '" + kv.key +
                     "': [params] declares numeric defaults only");
    }
    if (kv.key == "algorithm") {
      spec_error(doc.source, kv.line,
                 "key 'algorithm': reserved (the \"$algorithm\" hole is "
                 "filled by --algorithms, not [params])");
    }
    ParamDecl p;
    p.name = kv.key;
    p.default_value = kv.value.number;
    p.line = kv.line;
    out.push_back(std::move(p));
  }
  return out;
}

TopologySection parse_topology_section(const TomlDoc& doc) {
  TopologySection s;
  const TomlTable* t = doc.find_table("topology");
  if (t == nullptr) return s;
  s.line = t->line;
  SectionReader r(*t, doc.source);
  s.bottleneck_mbps = r.num("bottleneck_mbps");
  s.bottleneck_delay_ms = r.num("bottleneck_delay_ms");
  s.access_mbps = r.num("access_mbps");
  s.access_delay_ms = r.num("access_delay_ms");
  s.queue = r.string_or("queue", "red");
  if (s.queue != "red" && s.queue != "droptail") {
    spec_error(doc.source, t->line,
               "key 'queue': expected \"red\" or \"droptail\", got \"" +
                   s.queue + "\"");
  }
  s.reverse_tcp_flows = r.num("reverse_tcp_flows");
  s.mean_packet_size = r.num("mean_packet_size");
  check_literal(doc.source, s.bottleneck_mbps, NumRange::kPositive);
  check_literal(doc.source, s.bottleneck_delay_ms, NumRange::kNonNegative);
  check_literal(doc.source, s.access_mbps, NumRange::kPositive);
  check_literal(doc.source, s.access_delay_ms, NumRange::kNonNegative);
  check_literal(doc.source, s.reverse_tcp_flows, NumRange::kNonNegativeInt);
  check_literal(doc.source, s.mean_packet_size, NumRange::kPositiveInt);
  r.finish("topology");
  return s;
}

FlowGroup parse_flow_group(const TomlTable& t, const std::string& source) {
  SectionReader r(t, source);
  FlowGroup g;
  g.line = t.line;
  g.algorithm = r.string_or("algorithm", "$algorithm");
  if (g.algorithm.empty()) {
    spec_error(source, t.line, "key 'algorithm': empty algorithm token");
  }
  if (g.algorithm.front() == '$' && g.algorithm != "$algorithm") {
    spec_error(source, t.line,
               "key 'algorithm': the only reference allowed here is "
               "\"$algorithm\", got \"" +
                   g.algorithm + "\"");
  }
  g.count = r.num("count");
  g.start_s = r.num("start_s");
  g.start_spread_s = r.num("start_spread_s");
  g.stop_s = r.num("stop_s");
  const std::string dir = r.string_or("direction", "forward");
  if (dir != "forward" && dir != "reverse") {
    spec_error(source, t.line,
               "key 'direction': expected \"forward\" or \"reverse\", "
               "got \"" +
                   dir + "\"");
  }
  g.forward = (dir == "forward");
  g.slow_start = r.bool_or("slow_start", true);
  g.packet_size = r.num("packet_size");
  check_literal(source, g.count, NumRange::kNonNegativeInt);
  check_literal(source, g.start_s, NumRange::kNonNegative);
  check_literal(source, g.start_spread_s, NumRange::kNonNegative);
  check_literal(source, g.stop_s, NumRange::kNonNegative);
  check_literal(source, g.packet_size, NumRange::kPositiveInt);
  r.finish("flows");
  return g;
}

TrafficSection parse_traffic_section(const TomlTable& t,
                                     const std::string& source) {
  SectionReader r(t, source);
  TrafficSection s;
  s.line = t.line;
  const std::string kind = r.string_or("kind", "");
  if (kind == "cbr") {
    s.kind = TrafficSection::Kind::kCbr;
  } else if (kind == "onoff") {
    s.kind = TrafficSection::Kind::kOnOff;
  } else if (kind == "flash_crowd") {
    s.kind = TrafficSection::Kind::kFlashCrowd;
  } else if (kind == "media") {
    s.kind = TrafficSection::Kind::kMedia;
  } else {
    spec_error(source, t.line,
               "key 'kind': expected cbr | onoff | flash_crowd | media, "
               "got \"" +
                   kind + "\"");
  }
  s.start_s = r.num("start_s");
  s.stop_s = r.num("stop_s");
  check_literal(source, s.start_s, NumRange::kNonNegative);
  check_literal(source, s.stop_s, NumRange::kNonNegative);

  switch (s.kind) {
    case TrafficSection::Kind::kCbr:
      s.rate_mbps = r.num("rate_mbps");
      s.packet_size = r.num("packet_size");
      if (!s.rate_mbps.set) {
        spec_error(source, t.line, "key 'rate_mbps': cbr traffic needs a rate");
      }
      break;
    case TrafficSection::Kind::kOnOff:
      s.rate_mbps = r.num("rate_mbps");
      s.packet_size = r.num("packet_size");
      if (!s.rate_mbps.set) {
        spec_error(source, t.line,
                   "key 'rate_mbps': onoff traffic needs a peak rate");
      }
      s.shape = r.string_or("shape", "square");
      if (s.shape != "square" && s.shape != "sawtooth" &&
          s.shape != "reverse_sawtooth") {
        spec_error(source, t.line,
                   "key 'shape': expected square | sawtooth | "
                   "reverse_sawtooth, got \"" +
                       s.shape + "\"");
      }
      s.on_s = r.num("on_s");
      s.off_s = r.num("off_s");
      if (!s.on_s.set || !s.off_s.set) {
        spec_error(source, t.line,
                   "onoff traffic needs both 'on_s' and 'off_s'");
      }
      s.ramp_steps = r.num("ramp_steps");
      check_literal(source, s.on_s, NumRange::kPositive);
      check_literal(source, s.off_s, NumRange::kPositive);
      check_literal(source, s.ramp_steps, NumRange::kPositiveInt);
      break;
    case TrafficSection::Kind::kFlashCrowd:
      s.arrival_rate_fps = r.num("arrival_rate_fps");
      s.duration_s = r.num("duration_s");
      s.transfer_packets = r.num("transfer_packets");
      s.packet_size = r.num("packet_size");
      check_literal(source, s.arrival_rate_fps, NumRange::kPositive);
      check_literal(source, s.duration_s, NumRange::kPositive);
      check_literal(source, s.transfer_packets, NumRange::kPositiveInt);
      break;
    case TrafficSection::Kind::kMedia: {
      const TomlValue* rungs = r.take("rungs_mbps");
      if (rungs == nullptr || rungs->kind != TomlValue::Kind::kArray ||
          rungs->array.empty()) {
        spec_error(source, t.line,
                   "key 'rungs_mbps': media traffic needs a non-empty "
                   "rate ladder array");
      }
      for (const TomlValue& e : rungs->array) {
        Num n;
        n.key = "rungs_mbps";
        n.line = e.line;
        n.set = true;
        if (e.is_number()) {
          n.value = e.number;
        } else if (e.kind == TomlValue::Kind::kString && !e.text.empty() &&
                   e.text.front() == '$') {
          n.ref = e.text.substr(1);
        } else {
          spec_error(source, e.line,
                     "key 'rungs_mbps': ladder entries must be numbers "
                     "or \"$param\" references");
        }
        check_literal(source, n, NumRange::kPositive);
        s.rungs_mbps.push_back(std::move(n));
      }
      s.segment_s = r.num("segment_s");
      s.up_fraction = r.num("up_fraction");
      s.down_fraction = r.num("down_fraction");
      s.packet_size = r.num("packet_size");
      check_literal(source, s.segment_s, NumRange::kPositive);
      check_literal(source, s.up_fraction, NumRange::kUnitInterval);
      check_literal(source, s.down_fraction, NumRange::kUnitInterval);
      break;
    }
  }
  check_literal(source, s.rate_mbps, NumRange::kPositive);
  check_literal(source, s.packet_size, NumRange::kPositiveInt);
  r.finish("traffic");
  return s;
}

FaultSection parse_fault_section(const TomlTable& t,
                                 const std::string& source) {
  SectionReader r(t, source);
  FaultSection s;
  s.line = t.line;
  const std::string kind = r.string_or("kind", "");
  const std::string link = r.string_or("link", "bottleneck");
  if (link != "bottleneck" && link != "reverse") {
    spec_error(source, t.line,
               "key 'link': expected \"bottleneck\" or \"reverse\", got \"" +
                   link + "\"");
  }
  s.reverse_link = (link == "reverse");
  s.at_s = r.num("at_s");
  check_literal(source, s.at_s, NumRange::kNonNegative);

  if (kind == "blackout") {
    s.kind = FaultSection::Kind::kBlackout;
    s.duration_s = r.num("duration_s");
    if (!s.duration_s.set) {
      spec_error(source, t.line, "key 'duration_s': blackout needs a length");
    }
    check_literal(source, s.duration_s, NumRange::kPositive);
  } else if (kind == "flap") {
    s.kind = FaultSection::Kind::kFlap;
    s.down_s = r.num("down_s");
    s.up_s = r.num("up_s");
    s.cycles = r.num("cycles");
    if (!s.down_s.set || !s.up_s.set) {
      spec_error(source, t.line, "flap needs both 'down_s' and 'up_s'");
    }
    check_literal(source, s.down_s, NumRange::kPositive);
    check_literal(source, s.up_s, NumRange::kPositive);
    check_literal(source, s.cycles, NumRange::kPositiveInt);
  } else if (kind == "bandwidth_oscillation") {
    s.kind = FaultSection::Kind::kBandwidthOscillation;
    s.period_s = r.num("period_s");
    s.high_mbps = r.num("high_mbps");
    s.low_mbps = r.num("low_mbps");
    s.cycles = r.num("cycles");
    if (!s.period_s.set || !s.high_mbps.set || !s.low_mbps.set) {
      spec_error(source, t.line,
                 "bandwidth_oscillation needs 'period_s', 'high_mbps', "
                 "and 'low_mbps'");
    }
    check_literal(source, s.period_s, NumRange::kPositive);
    check_literal(source, s.high_mbps, NumRange::kPositive);
    check_literal(source, s.low_mbps, NumRange::kPositive);
    check_literal(source, s.cycles, NumRange::kPositiveInt);
  } else if (kind == "delay_jitter") {
    s.kind = FaultSection::Kind::kDelayJitter;
    s.end_s = r.num("end_s");
    s.interval_s = r.num("interval_s");
    s.amplitude_ms = r.num("amplitude_ms");
    if (!s.end_s.set || !s.interval_s.set || !s.amplitude_ms.set) {
      spec_error(source, t.line,
                 "delay_jitter needs 'end_s', 'interval_s', and "
                 "'amplitude_ms'");
    }
    check_literal(source, s.end_s, NumRange::kPositive);
    check_literal(source, s.interval_s, NumRange::kPositive);
    check_literal(source, s.amplitude_ms, NumRange::kNonNegative);
  } else if (kind == "delay_step") {
    s.kind = FaultSection::Kind::kDelayStep;
    s.delay_ms = r.num("delay_ms");
    if (!s.delay_ms.set) {
      spec_error(source, t.line,
                 "key 'delay_ms': delay_step needs the new delay");
    }
    check_literal(source, s.delay_ms, NumRange::kNonNegative);
  } else if (kind == "retry_stall") {
    s.kind = FaultSection::Kind::kRetryStall;
    s.period_s = r.num("period_s");
    s.stall_s = r.num("stall_s");
    s.extra_delay_ms = r.num("extra_delay_ms");
    s.cycles = r.num("cycles");
    if (!s.period_s.set || !s.stall_s.set || !s.extra_delay_ms.set) {
      spec_error(source, t.line,
                 "retry_stall needs 'period_s', 'stall_s', and "
                 "'extra_delay_ms'");
    }
    check_literal(source, s.period_s, NumRange::kPositive);
    check_literal(source, s.stall_s, NumRange::kPositive);
    check_literal(source, s.extra_delay_ms, NumRange::kNonNegative);
    check_literal(source, s.cycles, NumRange::kPositiveInt);
  } else if (kind == "impairment") {
    s.kind = FaultSection::Kind::kImpairment;
    s.p_good_to_bad = r.num("p_good_to_bad");
    s.p_bad_to_good = r.num("p_bad_to_good");
    s.loss_good = r.num("loss_good");
    s.loss_bad = r.num("loss_bad");
    s.reorder_probability = r.num("reorder_probability");
    s.duplicate_probability = r.num("duplicate_probability");
    check_literal(source, s.p_good_to_bad, NumRange::kUnitInterval);
    check_literal(source, s.p_bad_to_good, NumRange::kUnitInterval);
    check_literal(source, s.loss_good, NumRange::kUnitInterval);
    check_literal(source, s.loss_bad, NumRange::kUnitInterval);
    check_literal(source, s.reorder_probability, NumRange::kUnitInterval);
    check_literal(source, s.duplicate_probability, NumRange::kUnitInterval);
  } else {
    spec_error(source, t.line,
               "key 'kind': expected blackout | flap | "
               "bandwidth_oscillation | delay_jitter | delay_step | "
               "retry_stall | impairment, got \"" +
                   kind + "\"");
  }
  r.finish("faults");
  return s;
}

MetricsSection parse_metrics_section(const TomlDoc& doc) {
  MetricsSection s;
  const TomlTable* t = doc.find_table("metrics");
  if (t == nullptr) return s;
  SectionReader r(*t, doc.source);
  s.throughput = r.bool_or("throughput", s.throughput);
  s.loss = r.bool_or("loss", s.loss);
  s.fairness = r.bool_or("fairness", s.fairness);
  s.utilization = r.bool_or("utilization", s.utilization);
  s.smoothness = r.bool_or("smoothness", s.smoothness);
  r.finish("metrics");
  return s;
}

LimitsSection parse_limits_section(const TomlDoc& doc) {
  LimitsSection s;
  const TomlTable* t = doc.find_table("limits");
  if (t == nullptr) return s;
  SectionReader r(*t, doc.source);
  s.max_events = r.int_or("max_events", s.max_events);
  s.max_bytes = r.int_or("max_bytes", s.max_bytes);
  s.weight = r.int_or("weight", s.weight);
  if (s.max_events < 0 || s.max_bytes < 0) {
    spec_error(doc.source, t->line,
               "[limits] budgets must be >= 0 (0 = unset)");
  }
  if (s.weight < 1) {
    spec_error(doc.source, t->line, "key 'weight': must be >= 1");
  }
  r.finish("limits");
  return s;
}

/// Every $ref in `n` must name a declared param.
void check_ref(const ScenarioSpec& spec, const Num& n) {
  if (!n.set || !n.is_ref()) return;
  if (spec.find_param(n.ref) == nullptr) {
    spec_error(spec.source, n.line,
               "key '" + n.key + "': reference \"$" + n.ref +
                   "\" does not name a [params] entry");
  }
}

void check_refs(const ScenarioSpec& spec) {
  const auto each = [&](const Num& n) { check_ref(spec, n); };
  each(spec.scenario.warmup_s);
  each(spec.scenario.measure_s);
  each(spec.topology.bottleneck_mbps);
  each(spec.topology.bottleneck_delay_ms);
  each(spec.topology.access_mbps);
  each(spec.topology.access_delay_ms);
  each(spec.topology.reverse_tcp_flows);
  each(spec.topology.mean_packet_size);
  for (const FlowGroup& g : spec.flows) {
    each(g.count);
    each(g.start_s);
    each(g.start_spread_s);
    each(g.stop_s);
    each(g.packet_size);
  }
  for (const TrafficSection& t : spec.traffic) {
    each(t.rate_mbps);
    each(t.start_s);
    each(t.stop_s);
    each(t.on_s);
    each(t.off_s);
    each(t.ramp_steps);
    each(t.arrival_rate_fps);
    each(t.duration_s);
    each(t.transfer_packets);
    for (const Num& rung : t.rungs_mbps) each(rung);
    each(t.segment_s);
    each(t.up_fraction);
    each(t.down_fraction);
    each(t.packet_size);
  }
  for (const FaultSection& f : spec.faults) {
    each(f.at_s);
    each(f.duration_s);
    each(f.down_s);
    each(f.up_s);
    each(f.cycles);
    each(f.period_s);
    each(f.high_mbps);
    each(f.low_mbps);
    each(f.end_s);
    each(f.interval_s);
    each(f.amplitude_ms);
    each(f.delay_ms);
    each(f.stall_s);
    each(f.extra_delay_ms);
    each(f.p_good_to_bad);
    each(f.p_bad_to_good);
    each(f.loss_good);
    each(f.loss_bad);
    each(f.reorder_probability);
    each(f.duplicate_probability);
  }
}

}  // namespace

void check_num_range(const std::string& source, const Num& n, double v,
                     NumRange range) {
  const auto fail = [&](const std::string& want) {
    spec_error(source, n.line,
               "key '" + n.key + "': value " + std::to_string(v) + " " +
                   want);
  };
  if (!std::isfinite(v)) fail("must be finite");
  switch (range) {
    case NumRange::kAny:
      break;
    case NumRange::kPositive:
      if (v <= 0.0) fail("must be > 0");
      break;
    case NumRange::kNonNegative:
      if (v < 0.0) fail("must be >= 0");
      break;
    case NumRange::kUnitInterval:
      if (v < 0.0 || v > 1.0) fail("must be in [0, 1]");
      break;
    case NumRange::kPositiveInt:
      if (v <= 0.0 || v != std::floor(v)) {
        fail("must be a positive integer");
      }
      break;
    case NumRange::kNonNegativeInt:
      if (v < 0.0 || v != std::floor(v)) {
        fail("must be a non-negative integer");
      }
      break;
  }
}

bool ScenarioSpec::uses_algorithm_hole() const noexcept {
  for (const FlowGroup& g : flows) {
    if (g.algorithm == "$algorithm") return true;
  }
  return false;
}

const ParamDecl* ScenarioSpec::find_param(std::string_view name) const {
  for (const ParamDecl& p : params) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

ScenarioSpec parse_scenario_spec(const TomlDoc& doc) {
  // Reject unknown sections first so a typoed [fault] (vs [[faults]])
  // fails by name, not by silently running fault-free.
  for (const TomlTable& t : doc.tables) {
    const bool known_plain = !t.is_array &&
                             (t.name == "scenario" || t.name == "params" ||
                              t.name == "topology" || t.name == "metrics" ||
                              t.name == "limits");
    const bool known_array =
        t.is_array && (t.name == "flows" || t.name == "traffic" ||
                       t.name == "faults");
    if (!known_plain && !known_array) {
      spec_error(doc.source, t.line,
                 std::string("unknown section ") +
                     (t.is_array ? "[[" : "[") + t.name +
                     (t.is_array ? "]]" : "]"));
    }
  }

  ScenarioSpec spec;
  spec.source = doc.source;
  spec.scenario = parse_scenario_section(doc);
  spec.params = parse_params_section(doc);
  spec.topology = parse_topology_section(doc);
  for (const TomlTable* t : doc.find_array_tables("flows")) {
    spec.flows.push_back(parse_flow_group(*t, doc.source));
  }
  for (const TomlTable* t : doc.find_array_tables("traffic")) {
    spec.traffic.push_back(parse_traffic_section(*t, doc.source));
  }
  for (const TomlTable* t : doc.find_array_tables("faults")) {
    spec.faults.push_back(parse_fault_section(*t, doc.source));
  }
  spec.metrics = parse_metrics_section(doc);
  spec.limits = parse_limits_section(doc);

  if (spec.flows.empty()) {
    spec_error(doc.source, 1,
               "spec defines no [[flows]] — nothing to measure");
  }
  check_refs(spec);
  return spec;
}

ScenarioSpec parse_scenario_file(const std::string& path) {
  return parse_scenario_spec(parse_toml_file(path));
}

}  // namespace slowcc::spec
