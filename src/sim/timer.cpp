#include "sim/timer.hpp"

// Timer is header-only today; this translation unit exists so the build
// has a home for future out-of-line additions without touching every
// dependent target.
