#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace slowcc::sim {

/// Priority queue of timestamped callbacks — a thin facade over a
/// pluggable `Scheduler` engine (see scheduler.hpp).
///
/// Events with equal timestamps fire in insertion order, which keeps
/// simulations deterministic; every engine honours the same (at, seq)
/// ordering contract, enforced by the differential tests in
/// tests/engine_diff.hpp. The default engine is the hierarchical timer
/// wheel; pass EngineKind::kHeap (or set SLOWCC_ENGINE=heap) to use the
/// original binary heap.
class EventQueue {
 public:
  using Callback = Scheduler::Callback;

  EventQueue() : EventQueue(default_engine()) {}
  explicit EventQueue(EngineKind kind)
      : kind_(kind), engine_(make_scheduler(kind)) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `cb` at absolute time `at`. Returns a handle usable with
  /// `cancel`.
  EventId schedule(Time at, Callback cb) {
    return engine_->schedule(at, std::move(cb));
  }

  /// Cancel a previously scheduled event. Cancelling an already-fired
  /// or already-cancelled event is a harmless no-op.
  void cancel(EventId id) { engine_->cancel(id); }

  [[nodiscard]] bool empty() const noexcept { return engine_->size() == 0; }

  /// Timestamp of the earliest live event. Throws SimError
  /// (kBadSchedule) when no live event remains — an all-cancelled
  /// queue counts as empty. Non-const because engines may advance
  /// internal cursors (the result is still observably pure).
  [[nodiscard]] Time next_time() { return engine_->next_time(); }

  /// Pop and return the earliest live event's callback. Throws SimError
  /// (kBadSchedule) when no live event remains.
  [[nodiscard]] Callback pop(Time* fire_time) {
    PoppedEvent ev;
    Callback cb = engine_->pop(&ev);
    if (fire_time != nullptr) *fire_time = ev.at;
    return cb;
  }

  /// Like pop(Time*) but also reports the FIFO sequence number, which
  /// Simulator folds into its trace digest.
  [[nodiscard]] Callback pop_event(PoppedEvent* out) {
    return engine_->pop(out);
  }

  /// (at, seq) of the earliest live event without popping. Throws
  /// SimError (kBadSchedule) when no live event remains.
  [[nodiscard]] PoppedEvent peek() { return engine_->peek(); }

  /// Consume the next FIFO sequence number without storing an event —
  /// the hook batched drain chains use to keep the executed (at, seq)
  /// stream identical to the one-event-per-departure schedule.
  [[nodiscard]] std::uint64_t mint_seq() noexcept {
    return engine_->mint_seq();
  }

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return engine_->size(); }

  /// Timestamps of the earliest live events, ascending, at most
  /// `max_entries` of them. O(n log n); meant for diagnostic dumps
  /// (Watchdog), not hot paths.
  [[nodiscard]] std::vector<Time> pending_times(std::size_t max_entries) const {
    return engine_->pending_times(max_entries);
  }

  [[nodiscard]] EngineKind engine_kind() const noexcept { return kind_; }
  [[nodiscard]] const char* engine_name() const noexcept {
    return engine_->name();
  }
  [[nodiscard]] SchedulerStats stats() const noexcept {
    return engine_->stats();
  }

 private:
  EngineKind kind_;
  std::unique_ptr<Scheduler> engine_;
};

}  // namespace slowcc::sim
