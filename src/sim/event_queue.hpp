#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace slowcc::sim {

/// Opaque handle to a scheduled event, used for cancellation.
class EventId {
 public:
  constexpr EventId() noexcept : id_(0) {}
  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != 0; }
  constexpr bool operator==(const EventId&) const noexcept = default;

 private:
  friend class EventQueue;
  explicit constexpr EventId(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_;
};

/// Priority queue of timestamped callbacks.
///
/// Events with equal timestamps fire in insertion order, which keeps
/// simulations deterministic. Cancellation is O(1): cancelled ids are
/// remembered and the corresponding heap entries discarded when popped.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at`. Returns a handle usable with
  /// `cancel`.
  EventId schedule(Time at, Callback cb);

  /// Cancel a previously scheduled event. Cancelling an already-fired
  /// or already-cancelled event is a harmless no-op.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;

  /// Timestamp of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Pop and return the earliest pending event's callback.
  /// Precondition: !empty().
  [[nodiscard]] Callback pop(Time* fire_time);

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Timestamps of the earliest live events, ascending, at most
  /// `max_entries` of them. O(n log n); meant for diagnostic dumps
  /// (Watchdog), not hot paths.
  [[nodiscard]] std::vector<Time> pending_times(
      std::size_t max_entries) const;

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void purge_cancelled();

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace slowcc::sim
