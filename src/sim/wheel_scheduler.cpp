#include "sim/wheel_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "sim/error.hpp"

namespace slowcc::sim {

namespace {
// Last nanosecond of the top-level wheel's reach from `horizon`
// (inclusive): 256 top-level slots starting at the one containing the
// horizon. This — not horizon + 2^44 — is the exact bound at or below
// which place() is guaranteed to land in a wheel slot; when the
// horizon sits mid-way through a top-level slot the two differ, and
// migrating past the cover would bounce entries straight back into
// the overflow heap. Inclusive so the bound saturates exactly at
// INT64_MAX instead of needing an unrepresentable exclusive end.
[[nodiscard]] std::int64_t wheel_cover_last(std::int64_t horizon) noexcept {
  constexpr int kTopShift = 12 + 8 * 3;  // kBaseShift + kSlotBits * (kLevels-1)
  const std::int64_t top_word = horizon >> kTopShift;
  constexpr std::int64_t kMaxWord =
      std::numeric_limits<std::int64_t>::max() >> kTopShift;
  if (top_word + 256 > kMaxWord) return std::numeric_limits<std::int64_t>::max();
  return ((top_word + 256) << kTopShift) - 1;
}
}  // namespace

WheelScheduler::WheelScheduler() {
  for (auto& level : slot_head_) level.fill(kNil);
  for (auto& level : occupied_) level.fill(0);
  // Reserve staging capacity so the drain path (settle/place) only
  // allocates when a run outgrows it; growth past the reservation is
  // geometric, amortized O(1) per event.
  due_.reserve(kInitialHeapCapacity);
  overflow_.reserve(kInitialHeapCapacity);
}

std::uint32_t WheelScheduler::alloc_node() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = pool_[idx].next;
    pool_[idx].next = kNil;
    return idx;
  }
  if (pool_.size() > kMaxNodes) {
    throw SimError(SimErrc::kBadSchedule, "EventQueue",
                   "timer-wheel node pool exhausted (more than 2^24 "
                   "concurrently pending events)");
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void WheelScheduler::release_node(std::uint32_t idx) {
  Node& n = pool_[idx];
  if (n.cancelled) {
    n.cancelled = false;
    --tombstones_;
  }
  n.cb = nullptr;  // drop the closure now, not at pool destruction
  n.loc = Loc::kFree;
  ++n.gen;
  n.prev = kNil;
  n.next = free_head_;
  free_head_ = idx;
  --stored_;
}

void WheelScheduler::link_slot(std::uint32_t idx, int level, int slot) {
  Node& n = pool_[idx];
  n.loc = Loc::kSlot;
  n.slot_level = static_cast<std::uint16_t>(level);
  n.slot_index = static_cast<std::uint16_t>(slot);
  n.prev = kNil;
  n.next = slot_head_[static_cast<std::size_t>(level)]
                     [static_cast<std::size_t>(slot)];
  if (n.next != kNil) pool_[n.next].prev = idx;
  slot_head_[static_cast<std::size_t>(level)][static_cast<std::size_t>(slot)] =
      idx;
  occupied_[static_cast<std::size_t>(level)][static_cast<std::size_t>(slot) >>
                                             6] |=
      std::uint64_t{1} << (slot & 63);
}

void WheelScheduler::unlink_slot(std::uint32_t idx) {
  Node& n = pool_[idx];
  const auto level = static_cast<std::size_t>(n.slot_level);
  const auto slot = static_cast<std::size_t>(n.slot_index);
  if (n.prev != kNil) {
    pool_[n.prev].next = n.next;
  } else {
    slot_head_[level][slot] = n.next;
  }
  if (n.next != kNil) pool_[n.next].prev = n.prev;
  if (slot_head_[level][slot] == kNil) {
    occupied_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }
}

void WheelScheduler::place(std::uint32_t idx) {
  Node& n = pool_[idx];
  const std::int64_t at_ns = n.at.as_nanos();
  if (at_ns < horizon_) {
    // The slot spanning this timestamp was already drained (zero-delay
    // reschedule from a callback, or a schedule below a jumped cursor):
    // stage straight into the due heap, which restores exact ordering.
    n.loc = Loc::kDue;
    due_.push_back(HeapEntry{at_ns, n.seq, idx});  // slowcc-lint: allow(no-hot-path-alloc) due heap reserved at construction; growth amortized
    std::push_heap(due_.begin(), due_.end(), HeapLater{});
    return;
  }
  const auto at_u = static_cast<std::uint64_t>(at_ns);
  const auto hor_u = static_cast<std::uint64_t>(horizon_);
  for (int level = 0; level < kLevels; ++level) {
    const int shift = kBaseShift + kSlotBits * level;
    if ((at_u >> shift) - (hor_u >> shift) < kSlots) {
      link_slot(idx, level, static_cast<int>((at_u >> shift) & (kSlots - 1)));
      return;
    }
  }
  n.loc = Loc::kOverflow;
  overflow_.push_back(HeapEntry{at_ns, n.seq, idx});  // slowcc-lint: allow(no-hot-path-alloc) far-future overflow heap; reserved at construction, growth amortized
  std::push_heap(overflow_.begin(), overflow_.end(), HeapLater{});
}

bool WheelScheduler::first_occupied(int level, int* slot,
                                    std::int64_t* start_ns) const {
  const int shift = kBaseShift + kSlotBits * level;
  const std::uint64_t cur_word = static_cast<std::uint64_t>(horizon_) >> shift;
  const int start_bit = static_cast<int>(cur_word & (kSlots - 1));
  const auto& occ = occupied_[static_cast<std::size_t>(level)];
  constexpr int kWords = kSlots / 64;
  int found = -1;
  // Circular scan: visiting kWords + 1 64-bit words (masking the first
  // and last) covers exactly the 256-slot window starting at start_bit.
  for (int k = 0; k <= kWords; ++k) {
    const int word_i = ((start_bit >> 6) + k) & (kWords - 1);
    std::uint64_t bits = occ[static_cast<std::size_t>(word_i)];
    if (k == 0) {
      bits &= ~std::uint64_t{0} << (start_bit & 63);
    } else if (k == kWords) {
      const int cut = start_bit & 63;
      bits &= cut != 0 ? (std::uint64_t{1} << cut) - 1 : 0;
    }
    if (bits != 0) {
      found = (word_i << 6) + std::countr_zero(bits);
      break;
    }
  }
  if (found < 0) return false;
  const std::uint64_t word =
      cur_word + static_cast<std::uint64_t>((found - start_bit + kSlots) &
                                            (kSlots - 1));
  *slot = found;
  *start_ns = static_cast<std::int64_t>(word << shift);
  return true;
}

std::size_t WheelScheduler::drain_overflow_through(std::int64_t last_ns) {
  std::size_t moved = 0;
  while (!overflow_.empty() && overflow_.front().at_ns <= last_ns) {
    std::pop_heap(overflow_.begin(), overflow_.end(), HeapLater{});
    const HeapEntry e = overflow_.back();
    overflow_.pop_back();
    if (pool_[e.node].cancelled) {
      release_node(e.node);
    } else {
      place(e.node);
    }
    ++moved;
  }
  return moved;
}

void WheelScheduler::advance() {
  int best_level = -1;
  int best_slot = 0;
  std::int64_t best_start = 0;
  for (int level = 0; level < kLevels; ++level) {
    int slot = 0;
    std::int64_t start = 0;
    if (!first_occupied(level, &slot, &start)) continue;
    // On equal starts the HIGHER level must win: its slot spans the
    // lower slot's whole region and may hold earlier events, so it has
    // to cascade down before anything at that start is drained.
    if (best_level < 0 || start <= best_start) {
      best_level = level;
      best_slot = slot;
      best_start = start;
    }
  }

  if (best_level < 0) {
    // Every wheel is empty: jump the horizon to the overflow minimum.
    if (overflow_.empty()) return;
    const std::int64_t top_ns = overflow_.front().at_ns;
    horizon_ = static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(top_ns) >> kBaseShift) << kBaseShift);
    // The minimum lands in level 0, and the inclusive cover bound
    // saturates exactly at INT64_MAX, so even far-future sentinel
    // timestamps migrate — progress is guaranteed.
    drain_overflow_through(wheel_cover_last(horizon_));
    return;
  }

  const int shift = kBaseShift + kSlotBits * best_level;
  // Work with the slot's last covered nanosecond, not its exclusive
  // end: for the slot abutting INT64_MAX the nominal end is
  // INT64_MAX + 1, and computing that in signed arithmetic is UB. The
  // last covered nanosecond is always a representable timestamp.
  constexpr std::int64_t kMaxNs = std::numeric_limits<std::int64_t>::max();
  const std::int64_t slot_last = best_start + ((std::int64_t{1} << shift) - 1);
  // Overflow entries parked relative to an older horizon can fall
  // within a slot chosen now; migrate them first so ordering stays
  // exact.
  if (drain_overflow_through(slot_last) > 0) return;

  std::uint32_t idx = slot_head_[static_cast<std::size_t>(best_level)]
                                [static_cast<std::size_t>(best_slot)];
  slot_head_[static_cast<std::size_t>(best_level)]
            [static_cast<std::size_t>(best_slot)] = kNil;
  occupied_[static_cast<std::size_t>(best_level)]
           [static_cast<std::size_t>(best_slot) >> 6] &=
      ~(std::uint64_t{1} << (best_slot & 63));

  if (best_level == 0) {
    // Drain the slot into the due heap; the heap re-establishes exact
    // (at, seq) order among the slot's entries. Saturate the horizon
    // at INT64_MAX instead of wrapping: events scheduled at exactly
    // INT64_MAX afterwards re-enter the top slot (at >= horizon_) and
    // the due heap restores exact order among them on the next drain.
    horizon_ = slot_last < kMaxNs ? slot_last + 1 : kMaxNs;
    while (idx != kNil) {
      Node& n = pool_[idx];
      const std::uint32_t next = n.next;
      n.prev = kNil;
      n.next = kNil;
      n.loc = Loc::kDue;
      due_.push_back(HeapEntry{n.at.as_nanos(), n.seq, idx});  // slowcc-lint: allow(no-hot-path-alloc) due heap reserved at construction; growth amortized
      std::push_heap(due_.begin(), due_.end(), HeapLater{});
      idx = next;
    }
  } else {
    // Cascade one higher-level slot down; every entry re-places at a
    // strictly lower level because the slot spans exactly 256 slots of
    // the level below.
    horizon_ = best_start;
    while (idx != kNil) {
      const std::uint32_t next = pool_[idx].next;
      pool_[idx].prev = kNil;
      pool_[idx].next = kNil;
      place(idx);
      idx = next;
    }
  }
}

void WheelScheduler::settle() {
  for (;;) {
    while (!due_.empty()) {
      if (!pool_[due_.front().node].cancelled) return;
      std::pop_heap(due_.begin(), due_.end(), HeapLater{});
      const std::uint32_t idx = due_.back().node;
      due_.pop_back();
      release_node(idx);
    }
    if (live_ == 0) return;
    advance();
  }
}

void WheelScheduler::throw_empty(const char* op) const {
  throw SimError(SimErrc::kBadSchedule, "EventQueue",
                 std::string(op) +
                     " on a queue with no live events (empty or "
                     "all-cancelled)");
}

EventId WheelScheduler::schedule(Time at, Callback cb) {
  const std::uint32_t idx = alloc_node();
  {
    Node& n = pool_[idx];
    n.at = at;
    n.seq = next_seq_++;
    n.cb = std::move(cb);
    n.cancelled = false;
  }
  place(idx);
  ++live_;
  ++stored_;
  return make_event_id((std::uint64_t{pool_[idx].gen} << 24) |
                       (std::uint64_t{idx} + 1));
}

bool WheelScheduler::cancel(EventId id) {
  const std::uint64_t raw = raw_event_id(id);
  if (raw == 0) return false;
  const std::uint32_t idx = static_cast<std::uint32_t>(raw & 0xffffffu) - 1;
  const auto gen = static_cast<std::uint32_t>(raw >> 24);
  if (idx >= pool_.size()) return false;
  Node& n = pool_[idx];
  // A generation mismatch means the node was reclaimed and reused: the
  // caller's id refers to an event that already fired or was cancelled.
  if (n.gen != gen || n.loc == Loc::kFree || n.cancelled) return false;
  --live_;
  if (n.loc == Loc::kSlot) {
    // In-place cancellation: unlink from the slot list and reclaim now.
    unlink_slot(idx);
    n.prev = kNil;
    n.next = kNil;
    release_node(idx);
  } else {
    // Heap-resident (due/overflow) entries cannot be unlinked from the
    // middle of a heap: tombstone in place, reclaimed on pop/migrate.
    n.cancelled = true;
    ++tombstones_;
  }
  return true;
}

Time WheelScheduler::next_time() {
  settle();
  if (due_.empty()) throw_empty("next_time");
  return Time::nanos(due_.front().at_ns);
}

PoppedEvent WheelScheduler::peek() {
  settle();
  if (due_.empty()) throw_empty("peek");
  return PoppedEvent{Time::nanos(due_.front().at_ns), due_.front().seq};
}

Scheduler::Callback WheelScheduler::pop(PoppedEvent* out) {
  settle();
  if (due_.empty()) throw_empty("pop");
  std::pop_heap(due_.begin(), due_.end(), HeapLater{});
  const HeapEntry e = due_.back();
  due_.pop_back();
  Node& n = pool_[e.node];
  Callback cb = std::move(n.cb);
  if (out != nullptr) *out = PoppedEvent{n.at, n.seq};
  release_node(e.node);
  --live_;
  return cb;
}

std::vector<Time> WheelScheduler::pending_times(std::size_t max_entries) const {
  std::vector<Time> times;
  times.reserve(live_);
  for (const Node& n : pool_) {
    if (n.loc != Loc::kFree && !n.cancelled) times.push_back(n.at);
  }
  std::sort(times.begin(), times.end());
  if (times.size() > max_entries) times.resize(max_entries);
  return times;
}

SchedulerStats WheelScheduler::stats() const noexcept {
  return SchedulerStats{stored_, tombstones_, pool_.size()};
}

}  // namespace slowcc::sim
