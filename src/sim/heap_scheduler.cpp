#include "sim/heap_scheduler.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace slowcc::sim {

namespace {
// Compaction threshold: never bother below this many tombstones, so
// small queues keep the original one-hash-lookup-per-pop behavior.
constexpr std::size_t kCompactFloor = 64;
}  // namespace

EventId HeapScheduler::schedule(Time at, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  // Growth below is amortized against the kInitialCapacity reservation
  // made at construction; steady-state schedule/pop recycles capacity.
  heap_.push_back(Entry{at, seq, std::move(cb)});  // slowcc-lint: allow(no-hot-path-alloc) amortized past the construction-time reserve
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(seq);  // slowcc-lint: allow(no-hot-path-alloc) hash set reserved at construction; rehash is amortized
  ++live_;
  return make_event_id(seq);
}

bool HeapScheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  // Cancelling an event that already fired (or was already cancelled)
  // is a no-op; only pending events affect the bookkeeping.
  if (pending_.erase(raw_event_id(id)) == 0) return false;
  cancelled_.insert(raw_event_id(id));  // slowcc-lint: allow(no-hot-path-alloc) tombstone set is swept by compact(); growth amortized
  --live_;
  // Tombstones outnumbering live entries means a cancel-heavy workload
  // (retransmit timers rearmed every packet); sweep them in one pass so
  // neither the heap nor the hash set grows without bound.
  if (cancelled_.size() > kCompactFloor && cancelled_.size() > live_) {
    compact();
  }
  return true;
}

void HeapScheduler::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) {
                               return cancelled_.find(e.seq) !=
                                      cancelled_.end();
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_.clear();
}

void HeapScheduler::purge_cancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void HeapScheduler::throw_empty(const char* op) const {
  throw SimError(SimErrc::kBadSchedule, "EventQueue",
                 std::string(op) +
                     " on a queue with no live events (empty or "
                     "all-cancelled)");
}

std::vector<Time> HeapScheduler::pending_times(std::size_t max_entries) const {
  std::vector<Time> times;
  times.reserve(live_);
  for (const Entry& e : heap_) {
    if (cancelled_.find(e.seq) == cancelled_.end()) times.push_back(e.at);
  }
  std::sort(times.begin(), times.end());
  if (times.size() > max_entries) times.resize(max_entries);
  return times;
}

SchedulerStats HeapScheduler::stats() const noexcept {
  return SchedulerStats{heap_.size(), cancelled_.size(), heap_.capacity()};
}

Time HeapScheduler::next_time() {
  purge_cancelled();
  if (heap_.empty()) throw_empty("next_time");
  return heap_.front().at;
}

PoppedEvent HeapScheduler::peek() {
  purge_cancelled();
  if (heap_.empty()) throw_empty("peek");
  return PoppedEvent{heap_.front().at, heap_.front().seq};
}

Scheduler::Callback HeapScheduler::pop(PoppedEvent* out) {
  purge_cancelled();
  if (heap_.empty()) throw_empty("pop");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.seq);
  --live_;
  if (out != nullptr) *out = PoppedEvent{e.at, e.seq};
  return std::move(e.cb);
}

}  // namespace slowcc::sim
