#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"

namespace slowcc::sim {

/// Hierarchical timer-wheel engine.
///
/// Layout: kLevels wheels of kSlots slots each. Level L buckets events
/// by bits [kBaseShift + 8L, kBaseShift + 8(L+1)) of their absolute
/// nanosecond timestamp, so level 0 slots span 2^12 ns (~4 us) and the
/// whole hierarchy covers 2^44 ns (~4.9 h) past the dispatch horizon;
/// anything farther sits in a far-future overflow min-heap and is
/// batch-migrated into the wheels when the horizon approaches.
///
/// Dispatch keeps one invariant: every live event with timestamp below
/// `horizon_` has been moved into `due_`, a (time, seq) min-heap of
/// 24-byte POD entries. next_time()/pop() serve from `due_`; when it
/// runs dry the cursor advances slot by slot — level-0 slots drain into
/// `due_` (sorted there by the heap), higher-level slots cascade their
/// list down one level, and an empty hierarchy jumps the horizon to the
/// overflow minimum. Because `due_` is a real heap, a zero-delay event
/// scheduled *behind* the horizon from inside a callback still fires in
/// exact (at, seq) order.
///
/// Event entries live in a free-list pool indexed by uint32, so a
/// schedule/cancel/fire cycle reuses nodes instead of allocating, and
/// slot membership is a doubly-linked intrusive list: cancelling a
/// wheel-resident event unlinks and reclaims it in O(1). Events already
/// staged in `due_` or the overflow heap cannot be unlinked from the
/// middle of a heap, so cancellation tombstones them in place and the
/// pop path discards them ("slot tombstones" replacing the old engine's
/// cancelled-id hash set). EventIds pack (generation << 24 | slot + 1),
/// so stale ids from reused nodes are rejected by generation mismatch.
class WheelScheduler final : public Scheduler {
 public:
  WheelScheduler();

  EventId schedule(Time at, Callback cb) override;
  bool cancel(EventId id) override;
  [[nodiscard]] Time next_time() override;
  [[nodiscard]] Callback pop(PoppedEvent* out) override;
  [[nodiscard]] PoppedEvent peek() override;
  // Minted seqs never materialize a node, so no EventId can refer to
  // them; the generation check already rejects any stale handle.
  [[nodiscard]] std::uint64_t mint_seq() noexcept override {
    return next_seq_++;
  }
  [[nodiscard]] std::size_t size() const noexcept override { return live_; }
  [[nodiscard]] std::vector<Time> pending_times(
      std::size_t max_entries) const override;
  [[nodiscard]] SchedulerStats stats() const noexcept override;
  [[nodiscard]] const char* name() const noexcept override { return "wheel"; }

 private:
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;  // 256 per level
  static constexpr int kLevels = 4;
  static constexpr int kBaseShift = 12;  // level-0 slot = 4096 ns
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kMaxNodes = (1u << 24) - 2;
  static constexpr std::size_t kInitialHeapCapacity = 1024;

  enum class Loc : std::uint8_t {
    kFree,      // on the free list
    kSlot,      // linked into a wheel slot
    kDue,       // staged in the due_ heap
    kOverflow,  // parked in the far-future heap
  };

  struct Node {
    Time at;
    std::uint64_t seq = 0;
    std::uint32_t gen = 1;   // bumped on reclaim; stale ids mismatch
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint16_t slot_level = 0;
    std::uint16_t slot_index = 0;
    Loc loc = Loc::kFree;
    bool cancelled = false;
    Callback cb;
  };

  /// Heap entry for due_/overflow_: POD so sift operations never move a
  /// std::function.
  struct HeapEntry {
    std::int64_t at_ns;
    std::uint64_t seq;
    std::uint32_t node;
  };
  struct HeapLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint32_t alloc_node();
  void release_node(std::uint32_t idx);
  void link_slot(std::uint32_t idx, int level, int slot);
  void unlink_slot(std::uint32_t idx);
  /// Route a node to due_/wheel/overflow by its timestamp vs horizon_.
  void place(std::uint32_t idx);
  /// Earliest occupied slot at `level` at or after the horizon; returns
  /// false when the level is empty. `*slot` is the bucket index,
  /// `*start_ns` the absolute start of its span.
  [[nodiscard]] bool first_occupied(int level, int* slot,
                                    std::int64_t* start_ns) const;
  /// Move overflow entries with at <= `last_ns` into the wheels
  /// (inclusive, so the bound stays representable at INT64_MAX).
  /// Returns the number migrated.
  std::size_t drain_overflow_through(std::int64_t last_ns);
  /// One step of cursor progress: drain a level-0 slot into due_,
  /// cascade a higher slot down, or migrate from overflow.
  void advance();
  /// Ensure due_ is topped by a live event (or nothing is live at all).
  void settle();
  void throw_empty(const char* op) const;

  std::array<std::array<std::uint32_t, kSlots>, kLevels> slot_head_;
  std::array<std::array<std::uint64_t, kSlots / 64>, kLevels> occupied_;
  std::int64_t horizon_ = 0;
  std::vector<HeapEntry> due_;
  std::vector<HeapEntry> overflow_;
  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::size_t stored_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace slowcc::sim
