#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/scheduler.hpp"

namespace slowcc::sim {

/// The original engine: a binary heap of (time, seq) entries with lazy
/// cancellation. Cancelled ids are remembered in a hash set and their
/// heap entries discarded when they reach the front; when tombstones
/// outnumber live entries the heap is compacted in one pass, so a
/// cancel-heavy run can no longer grow `cancelled_` without bound
/// (the pre-split engine leaked every id that was cancelled but never
/// popped).
class HeapScheduler final : public Scheduler {
 public:
  /// Reserves working capacity up front so the per-event schedule/pop
  /// cycle only allocates when a run outgrows the reservation (growth
  /// past it is geometric, amortized O(1) per event).
  HeapScheduler() {
    heap_.reserve(kInitialCapacity);
    pending_.reserve(kInitialCapacity);
    cancelled_.reserve(kInitialCapacity);
  }

  EventId schedule(Time at, Callback cb) override;
  bool cancel(EventId id) override;
  [[nodiscard]] Time next_time() override;
  [[nodiscard]] Callback pop(PoppedEvent* out) override;
  [[nodiscard]] PoppedEvent peek() override;
  // Minted seqs are never inserted into pending_, so a cancel() against
  // one is the usual stale-id no-op.
  [[nodiscard]] std::uint64_t mint_seq() noexcept override {
    return next_seq_++;
  }
  [[nodiscard]] std::size_t size() const noexcept override { return live_; }
  [[nodiscard]] std::vector<Time> pending_times(
      std::size_t max_entries) const override;
  [[nodiscard]] SchedulerStats stats() const noexcept override;
  [[nodiscard]] const char* name() const noexcept override { return "heap"; }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;

  struct Entry {
    Time at;
    std::uint64_t seq;  // doubles as the event id
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void purge_cancelled();
  void compact();
  void throw_empty(const char* op) const;

  std::vector<Entry> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
};

}  // namespace slowcc::sim
