#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace slowcc::sim {

/// Simulation time, stored as integer nanoseconds.
///
/// Integer storage makes event ordering exact and simulations
/// bit-for-bit reproducible: there is no floating-point drift when
/// accumulating per-packet serialization delays. Construct values with
/// the named factories (`Time::seconds`, `Time::millis`, ...) rather
/// than raw integers so call sites carry their unit.
class Time {
 public:
  /// Zero time (simulation epoch).
  constexpr Time() noexcept : ns_(0) {}

  [[nodiscard]] static constexpr Time nanos(std::int64_t ns) noexcept {
    return Time(ns);
  }
  [[nodiscard]] static constexpr Time micros(std::int64_t us) noexcept {
    return Time(us * 1'000);
  }
  [[nodiscard]] static constexpr Time millis(std::int64_t ms) noexcept {
    return Time(ms * 1'000'000);
  }
  [[nodiscard]] static Time seconds(double s) noexcept {
    return Time(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  [[nodiscard]] static constexpr Time max() noexcept {
    return Time(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t as_nanos() const noexcept { return ns_; }
  [[nodiscard]] constexpr double as_seconds() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double as_millis() const noexcept {
    return static_cast<double>(ns_) * 1e-6;
  }

  [[nodiscard]] constexpr bool is_zero() const noexcept { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const noexcept { return ns_ < 0; }

  constexpr auto operator<=>(const Time&) const noexcept = default;

  constexpr Time& operator+=(Time rhs) noexcept {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) noexcept {
    ns_ -= rhs.ns_;
    return *this;
  }
  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) noexcept {
    return Time(a.ns_ + b.ns_);
  }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) noexcept {
    return Time(a.ns_ - b.ns_);
  }
  /// Scale a duration. A single double overload avoids int/int64
  /// ambiguity at call sites; integral factors convert exactly.
  [[nodiscard]] friend Time operator*(Time a, double k) noexcept {
    return Time::seconds(a.as_seconds() * k);
  }
  /// Ratio of two durations.
  [[nodiscard]] friend constexpr double operator/(Time a, Time b) noexcept {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  /// Render as a human-readable string, e.g. "1.250s".
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_;
};

/// Duration of transmitting `bytes` at `bits_per_second` on a serial link.
[[nodiscard]] Time transmission_time(std::int64_t bytes, double bits_per_second) noexcept;

}  // namespace slowcc::sim
