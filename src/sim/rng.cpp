#include "sim/rng.hpp"

#include <cmath>

namespace slowcc::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

// splitmix64 finalizer (a bijection on 64-bit values).
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += kGolden;
  return mix64(x);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire-style rejection-free mapping is overkill here; modulo bias is
  // negligible for the small ranges simulations use, but debiasing is
  // cheap enough to do anyway.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential(double mean) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::chance(double probability) noexcept {
  return uniform() < probability;
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // kGolden is odd, so `kGolden * (index + 1)` is injective in `index`
  // modulo 2^64; mixing keeps adjacent indices statistically far apart.
  return mix64(base + kGolden * (index + 1));
}

}  // namespace slowcc::sim
