#include "sim/error.hpp"

#include <iterator>

namespace slowcc::sim {

const char* to_string(SimErrc code) noexcept {
  switch (code) {
    case SimErrc::kBadConfig:
      return "bad-config";
    case SimErrc::kBadSchedule:
      return "bad-schedule";
    case SimErrc::kBadTopology:
      return "bad-topology";
    case SimErrc::kInvariantViolation:
      return "invariant-violation";
    case SimErrc::kBudgetExceeded:
      return "budget-exceeded";
    case SimErrc::kDeadlineExceeded:
      return "deadline-exceeded";
    case SimErrc::kTrialAborted:
      return "trial-aborted";
    case SimErrc::kLeaseLost:
      return "lease-lost";
    case SimErrc::kLeaseExpired:
      return "lease-expired";
    case SimErrc::kFleetDegraded:
      return "fleet-degraded";
    case SimErrc::kBadSpec:
      return "bad-spec";
    case SimErrc::kResourceExhausted:
      return "resource-exhausted";
    case SimErrc::kCount_:
      break;  // sentinel, never constructed
  }
  return "?";
}

const std::vector<SimErrc>& all_errcs() noexcept {
  static const std::vector<SimErrc> kAll(std::begin(kAllSimErrcs),
                                         std::end(kAllSimErrcs));
  return kAll;
}

std::optional<SimErrc> errc_from_string(std::string_view text) noexcept {
  for (const SimErrc code : all_errcs()) {
    if (text == to_string(code)) return code;
  }
  return std::nullopt;
}

namespace {

std::string format_what(SimErrc code, const std::string& component,
                        const std::string& detail) {
  return "[" + std::string(to_string(code)) + "] " + component + ": " + detail;
}

}  // namespace

SimError::SimError(SimErrc code, std::string component, std::string detail)
    : std::invalid_argument(format_what(code, component, detail)),
      code_(code),
      component_(std::move(component)),
      detail_(std::move(detail)) {}

}  // namespace slowcc::sim
