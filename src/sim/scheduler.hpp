#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace slowcc::sim {

class Scheduler;

/// Opaque handle to a scheduled event, used for cancellation. The raw
/// encoding is engine-specific (the heap uses the sequence number, the
/// timer wheel packs a pool slot and a generation counter), so ids must
/// never be compared across queues or engines.
class EventId {
 public:
  constexpr EventId() noexcept : id_(0) {}
  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != 0; }
  constexpr bool operator==(const EventId&) const noexcept = default;

 private:
  friend class Scheduler;
  explicit constexpr EventId(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_;
};

/// Which scheduler engine backs an EventQueue / Simulator.
enum class EngineKind {
  kHeap,   // binary heap + lazy cancellation (the original engine)
  kWheel,  // hierarchical timer wheel + far-future overflow heap
};

/// Stable engine name ("heap" / "wheel") for reports and bench labels.
[[nodiscard]] const char* engine_kind_name(EngineKind kind) noexcept;

/// The engine a default-constructed EventQueue/Simulator uses. Resolved
/// as: thread override (set_thread_default_engine) > the SLOWCC_ENGINE
/// environment variable ("heap" / "wheel", read once) > kWheel.
[[nodiscard]] EngineKind default_engine() noexcept;

/// Override the default engine for the calling thread only (sweep
/// workers stay independent). Pair with clear_thread_default_engine();
/// tests use this to drive whole scenarios through a chosen engine.
void set_thread_default_engine(EngineKind kind) noexcept;
void clear_thread_default_engine() noexcept;

/// Timestamp + FIFO sequence number of a popped event. `seq` is
/// assigned at schedule() time (1, 2, 3, ... per queue) and breaks ties
/// among equal timestamps, so the executed (at, seq) stream is the
/// engine-independent observable the golden-trace digests pin.
struct PoppedEvent {
  Time at;
  std::uint64_t seq = 0;
};

/// Size diagnostics for tests and capacity monitoring.
struct SchedulerStats {
  std::size_t stored = 0;      // entries held, live + tombstoned
  std::size_t tombstones = 0;  // cancelled entries not yet reclaimed
  std::size_t capacity = 0;    // backing allocation, in entries
};

/// Engine interface behind EventQueue. Contract shared by every
/// implementation (and enforced by tests/engine_diff.hpp):
///   - events fire in (at, seq) order; seq is FIFO at equal times
///   - cancel is a no-op for fired, cancelled, or stale ids
///   - next_time()/pop() throw SimError(kBadSchedule) when no live
///     event remains (an all-cancelled queue is "empty" too)
class Scheduler {
 public:
  // The public callback type IS the API boundary the hot-path rule
  // carves out; engines pool the POD *entries* around it.
  // slowcc-lint: allow(no-std-function-hot-path) API-boundary callback type
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  virtual ~Scheduler() = default;

  virtual EventId schedule(Time at, Callback cb) = 0;

  /// Returns true when a pending event was actually cancelled.
  virtual bool cancel(EventId id) = 0;

  /// Timestamp of the earliest live event; throws SimError(kBadSchedule)
  /// when none remains. Non-const: engines may advance internal cursors.
  [[nodiscard]] virtual Time next_time() = 0;

  /// Pop the earliest live event; throws SimError(kBadSchedule) when
  /// none remains. `out` (optional) receives its (at, seq).
  [[nodiscard]] virtual Callback pop(PoppedEvent* out) = 0;

  /// (at, seq) of the earliest live event without popping it; throws
  /// SimError(kBadSchedule) when none remains. The run loop uses this to
  /// merge chained drain sub-events (see sim/simulator.hpp) into the
  /// engine's (at, seq) total order.
  [[nodiscard]] virtual PoppedEvent peek() = 0;

  /// Consume the next FIFO sequence number WITHOUT storing an event.
  /// Chain sources (net::Link batched drains) mint seqs at exactly the
  /// points the unbatched path would have called schedule(), so the
  /// executed (at, seq) stream — and every golden trace digest — is
  /// bit-identical whether a departure runs as an engine event or as a
  /// chained sub-event.
  [[nodiscard]] virtual std::uint64_t mint_seq() noexcept = 0;

  /// Number of live (non-cancelled) events.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Timestamps of the earliest live events, ascending, at most
  /// `max_entries`. Diagnostic path, not a hot one.
  [[nodiscard]] virtual std::vector<Time> pending_times(
      std::size_t max_entries) const = 0;

  [[nodiscard]] virtual SchedulerStats stats() const noexcept = 0;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

 protected:
  // EventId's raw value is private; engines mint and decode ids through
  // these so the handle type stays opaque to everyone else.
  [[nodiscard]] static constexpr EventId make_event_id(
      std::uint64_t raw) noexcept {
    return EventId(raw);
  }
  [[nodiscard]] static constexpr std::uint64_t raw_event_id(
      EventId id) noexcept {
    return id.id_;
  }
};

/// Construct an engine. Throws SimError(kBadConfig) on an unknown kind.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(EngineKind kind);

/// FNV-1a (64-bit) folding of one value into a running hash, byte-wise
/// little-endian. Used by Simulator::trace_digest() and the golden-trace
/// tests; kept here so tools can reproduce digests bit-for-bit.
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] constexpr std::uint64_t fnv1a_u64(std::uint64_t hash,
                                                std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace slowcc::sim
