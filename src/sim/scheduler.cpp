#include "sim/scheduler.hpp"

#include <cstdlib>
#include <cstring>
#include <optional>

#include "sim/error.hpp"
#include "sim/heap_scheduler.hpp"
#include "sim/wheel_scheduler.hpp"

namespace slowcc::sim {
namespace {

// Per-thread override so sweep workers and differential tests can pin
// an engine without affecting concurrently running simulations.
thread_local std::optional<EngineKind> t_engine_override;

EngineKind env_engine() noexcept {
  // Read SLOWCC_ENGINE once; an unknown value falls back to the wheel
  // rather than failing, because this is a tuning knob, not config.
  static const EngineKind kind = [] {
    const char* env = std::getenv("SLOWCC_ENGINE");
    if (env != nullptr && std::strcmp(env, "heap") == 0) {
      return EngineKind::kHeap;
    }
    return EngineKind::kWheel;
  }();
  return kind;
}

}  // namespace

const char* engine_kind_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kHeap:
      return "heap";
    case EngineKind::kWheel:
      return "wheel";
  }
  return "unknown";
}

EngineKind default_engine() noexcept {
  if (t_engine_override.has_value()) return *t_engine_override;
  return env_engine();
}

void set_thread_default_engine(EngineKind kind) noexcept {
  t_engine_override = kind;
}

void clear_thread_default_engine() noexcept { t_engine_override.reset(); }

std::unique_ptr<Scheduler> make_scheduler(EngineKind kind) {
  switch (kind) {
    case EngineKind::kHeap:
      return std::make_unique<HeapScheduler>();
    case EngineKind::kWheel:
      return std::make_unique<WheelScheduler>();
  }
  throw SimError(SimErrc::kBadConfig, "EventQueue",
                 "make_scheduler: unknown engine kind");
}

}  // namespace slowcc::sim
