#pragma once

#include <cstdint>

namespace slowcc::sim {

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// Every stochastic element of a scenario draws from one seeded `Rng`
/// so experiments are reproducible bit-for-bit across runs and
/// platforms. We implement the generator ourselves rather than using
/// `std::mt19937` + distributions because libstdc++'s distribution
/// implementations are not specified and would make cross-toolchain
/// reproducibility accidental.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Precondition: n > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double probability) noexcept;

  /// Derive an independent child generator (for per-flow streams).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Deterministic sub-stream seed derivation: one splitmix64
/// finalization of `base + golden * (index + 1)`. The finalizer is a
/// bijection and the pre-mix is injective in `index` for a fixed base,
/// so two distinct indices never collide under the same base; the
/// function is pure, so results are independent of evaluation order
/// (and of which thread asks). This is the primitive behind
/// `exp::derive_seed` and the scenarios' internal seed fan-out.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t index) noexcept;

}  // namespace slowcc::sim
