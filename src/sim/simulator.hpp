#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"

// slowcc-lint: allow-file(no-std-function-hot-path) observer/hook slots
// are per-Simulator control-plane state, not per-event; the per-event
// callbacks live in the pooled engine entries behind EventQueue.

namespace slowcc::sim {

/// One pending sub-event of a batched drain chain (DESIGN.md §14). A
/// chain source — net::Link draining a saturated queue in batched mode —
/// keeps exactly one of these armed per in-flight transmission instead
/// of scheduling an engine event per departure. The run loop merges the
/// chain into the engine's (at, seq) total order: when the chain is the
/// global minimum it advances the clock, counts the event, folds the
/// digest, and calls `fire(ctx)` directly — no engine storage, no
/// std::function, no heap pop. Invariants the source must keep:
///   - `seq` comes from Simulator::mint_event_seq() at exactly the point
///     the unbatched path would have called schedule_*() — this is what
///     makes trace_digest() bit-identical across the two paths
///   - `at >= now()` whenever the chain is armed; re-timing (e.g.
///     set_bandwidth on an in-flight packet) re-mints the seq, exactly
///     as a cancel+reschedule would
///   - the chain is disarmed before `ctx` dies (Links disarm in ~Link;
///     components always die before the Simulator they reference)
struct ChainedEvent {
  Time at;
  std::uint64_t seq = 0;
  void (*fire)(void* ctx) = nullptr;
  void* ctx = nullptr;
  /// How many unbatched engine events this chain currently stands in
  /// for. A transmit chain is always 1 (one pending transmit-complete);
  /// a propagation chain fronting a FIFO of in-flight deliveries sets
  /// it to the FIFO's occupancy, so pending_events() — and with it the
  /// ResourceGovernor's event footprint and budget-abort points — stay
  /// identical to the scalar schedule.
  std::uint64_t pending = 1;
};

/// Discrete-event simulation driver.
///
/// A `Simulator` owns the event queue and the simulation clock. All
/// simulation components (links, agents, monitors) hold a reference to
/// one `Simulator` and schedule their work through it. The clock only
/// advances when `run*` pops events, so callbacks observe a consistent
/// `now()`.
class Simulator {
 public:
  /// Observer invoked at the end of every Simulator constructor on the
  /// thread it was registered on (see `set_thread_construct_observer`).
  using ConstructObserver = std::function<void(Simulator&)>;

  /// Default-constructed simulators use `default_engine()` (thread
  /// override > SLOWCC_ENGINE env > timer wheel); pass a kind to pin
  /// one explicitly.
  Simulator() : Simulator(default_engine()) {}
  explicit Simulator(EngineKind engine);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `cb` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, EventQueue::Callback cb);

  /// Schedule `cb` to run `delay` from now.
  EventId schedule_in(Time delay, EventQueue::Callback cb);

  /// Cancel a pending event; no-op if already fired or cancelled.
  void cancel(EventId id) { queue_.cancel(id); }

  /// Consume the next FIFO sequence number without storing an engine
  /// event. Batched drain chains mint their sub-event seqs here (see
  /// ChainedEvent above).
  [[nodiscard]] std::uint64_t mint_event_seq() noexcept {
    return queue_.mint_seq();
  }

  /// Register / remove a drain chain. The pointed-to event must stay
  /// valid (and its `at`/`seq`/`fire` fields are re-read every loop
  /// iteration, so the source may re-arm in place from inside fire()).
  /// Arming validates at >= now(); double-arming throws SimError
  /// (kBadSchedule). disarm_chain is a no-op when not armed.
  void arm_chain(ChainedEvent* chain);
  void disarm_chain(const ChainedEvent* chain) noexcept;

  /// Run until the queue drains.
  void run();

  /// Run until the queue drains or the clock passes `deadline`.
  /// Events at exactly `deadline` are executed. After returning, the
  /// clock is at `deadline` (or at the last event if the queue drained
  /// earlier), so subsequent `run_until` calls continue seamlessly.
  void run_until(Time deadline);

  /// Number of events executed so far (for micro-benchmarks and tests).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }

  /// FNV-1a digest over the (fire-time, seq) pairs of every event
  /// executed so far. Engine-independent by contract — the golden-trace
  /// tests pin scenario digests and the differential harness checks
  /// heap and wheel produce identical values.
  [[nodiscard]] std::uint64_t trace_digest() const noexcept {
    return trace_digest_;
  }

  /// Which scheduler engine backs this simulation.
  [[nodiscard]] EngineKind engine_kind() const noexcept {
    return queue_.engine_kind();
  }
  [[nodiscard]] const char* engine_name() const noexcept {
    return queue_.engine_name();
  }

  /// Events executed by every Simulator on the calling thread since
  /// thread start — lets a trial harness meter a simulation's cost
  /// without reaching inside the scenario driver that owns it.
  [[nodiscard]] static std::uint64_t thread_events_executed() noexcept;

  /// Hard per-simulation event budget: once `max_events` further events
  /// have executed, `run*` throws SimError (kDeadlineExceeded). The
  /// count starts at the call (re-arming resets it); 0 removes the
  /// budget. Unlike a fault::Watchdog this needs no hook slot and is
  /// exact to the event, so it is the deterministic half of a trial
  /// deadline (the wall-clock half stays with the Watchdog).
  void set_event_budget(std::uint64_t max_events) noexcept {
    event_budget_ = max_events;
    event_budget_base_ = events_executed_;
  }

  [[nodiscard]] std::uint64_t event_budget() const noexcept {
    return event_budget_;
  }

  /// Live engine events plus armed drain-chain sub-events, so the count
  /// (and the governor's event footprint) matches the unbatched
  /// schedule one-for-one — each chain reports how many pending events
  /// it stands in for via ChainedEvent::pending.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    std::size_t n = queue_.size();
    for (const ChainedEvent* c : chains_) {
      n += static_cast<std::size_t>(c->pending);
    }
    return n;
  }

  /// Timestamps of the earliest pending events (diagnostics), merged
  /// across the engine and any armed drain chains.
  [[nodiscard]] std::vector<Time> pending_event_times(
      std::size_t max_entries) const;

  /// Install a hook invoked after every `every_events` executed events,
  /// regardless of whether simulated time advances — this is what lets
  /// a `fault::Watchdog` catch livelocks that sim-time timers cannot
  /// see. One hook slot exists; installing over an occupied slot
  /// throws `SimError` (kBadConfig). `every_events` must be >= 1.
  void set_event_hook(std::uint64_t every_events,
                      std::function<void()> hook);

  /// Remove the installed hook; no-op when none is installed.
  void clear_event_hook() noexcept {
    hook_every_ = 0;
    hook_ = nullptr;
  }

  /// Whether the single event-hook slot is occupied.
  [[nodiscard]] bool has_event_hook() const noexcept {
    return hook_every_ != 0;
  }

  /// Register an observer invoked (on this thread only) at the end of
  /// every Simulator constructor. This is how an orchestration layer
  /// imposes per-trial deadlines on simulations built deep inside
  /// scenario drivers it never sees: the observer can set an event
  /// budget and attach a fault::Watchdog to each new instance. One
  /// slot per thread; registering over an occupied slot throws
  /// SimError (kBadConfig). Passing nullptr clears the slot.
  static void set_thread_construct_observer(ConstructObserver observer);

  /// Keep `guard` alive for this Simulator's lifetime; guards are
  /// destroyed first in ~Simulator, while every other member is still
  /// valid. Lets a construct observer hang a Watchdog off the instance.
  void attach_guard(std::shared_ptr<void> guard) {
    guards_.push_back(std::move(guard));
  }

  /// Per-simulation resource accountant (see sim/resource.hpp). Always
  /// present but disarmed by default; `run*` only polls it when a
  /// budget is armed, so ungoverned simulations pay one branch per
  /// event. `net::Link` attaches its queue's counter hooks here, and
  /// `fault::ScopedTrialDeadline` arms per-trial byte budgets through
  /// its construct observer.
  [[nodiscard]] ResourceGovernor& governor() noexcept { return governor_; }
  [[nodiscard]] const ResourceGovernor& governor() const noexcept {
    return governor_;
  }

  /// Next unique packet id for this simulation. Lives on the Simulator
  /// (not a global) so concurrent simulations on different threads
  /// never share a counter and every trial's uid sequence is
  /// deterministic in isolation.
  [[nodiscard]] std::uint64_t next_packet_uid() noexcept {
    return next_packet_uid_++;
  }

 private:
  EventQueue queue_;
  Time now_;
  std::uint64_t events_executed_ = 0;
  std::uint64_t trace_digest_ = kFnvOffsetBasis;
  std::uint64_t next_packet_uid_ = 1;
  std::uint64_t event_budget_ = 0;  // 0 = unlimited
  std::uint64_t event_budget_base_ = 0;
  std::uint64_t hook_every_ = 0;
  std::function<void()> hook_;
  // Armed drain chains — one per link mid-burst, so a handful at most;
  // the run loop's linear min-scan is cheaper than any indexed
  // structure at that count.
  std::vector<ChainedEvent*> chains_;
  ResourceGovernor governor_;
  // Declared last: guards (e.g. a Watchdog holding our hook slot) are
  // destroyed first, while the members they release are still alive.
  std::vector<std::shared_ptr<void>> guards_;
};

}  // namespace slowcc::sim
