#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace slowcc::sim {

/// Discrete-event simulation driver.
///
/// A `Simulator` owns the event queue and the simulation clock. All
/// simulation components (links, agents, monitors) hold a reference to
/// one `Simulator` and schedule their work through it. The clock only
/// advances when `run*` pops events, so callbacks observe a consistent
/// `now()`.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `cb` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, EventQueue::Callback cb);

  /// Schedule `cb` to run `delay` from now.
  EventId schedule_in(Time delay, EventQueue::Callback cb);

  /// Cancel a pending event; no-op if already fired or cancelled.
  void cancel(EventId id) { queue_.cancel(id); }

  /// Run until the queue drains.
  void run();

  /// Run until the queue drains or the clock passes `deadline`.
  /// Events at exactly `deadline` are executed. After returning, the
  /// clock is at `deadline` (or at the last event if the queue drained
  /// earlier), so subsequent `run_until` calls continue seamlessly.
  void run_until(Time deadline);

  /// Number of events executed so far (for micro-benchmarks and tests).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

  /// Timestamps of the earliest pending events (diagnostics).
  [[nodiscard]] std::vector<Time> pending_event_times(
      std::size_t max_entries) const {
    return queue_.pending_times(max_entries);
  }

  /// Install a hook invoked after every `every_events` executed events,
  /// regardless of whether simulated time advances — this is what lets
  /// a `fault::Watchdog` catch livelocks that sim-time timers cannot
  /// see. One hook slot exists; installing over an occupied slot
  /// throws `SimError` (kBadConfig). `every_events` must be >= 1.
  void set_event_hook(std::uint64_t every_events,
                      std::function<void()> hook);

  /// Remove the installed hook; no-op when none is installed.
  void clear_event_hook() noexcept {
    hook_every_ = 0;
    hook_ = nullptr;
  }

  /// Next unique packet id for this simulation. Lives on the Simulator
  /// (not a global) so concurrent simulations on different threads
  /// never share a counter and every trial's uid sequence is
  /// deterministic in isolation.
  [[nodiscard]] std::uint64_t next_packet_uid() noexcept {
    return next_packet_uid_++;
  }

 private:
  EventQueue queue_;
  Time now_;
  std::uint64_t events_executed_ = 0;
  std::uint64_t next_packet_uid_ = 1;
  std::uint64_t hook_every_ = 0;
  std::function<void()> hook_;
};

}  // namespace slowcc::sim
