#pragma once

#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace slowcc::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Minimal leveled logger for simulation diagnostics.
///
/// Logging defaults to `kWarn` so experiment binaries stay quiet; tests
/// raise verbosity locally when debugging. Not thread-safe — the
/// simulator is single-threaded by design.
class Logger {
 public:
  static LogLevel level() noexcept { return level_; }
  static void set_level(LogLevel level) noexcept { level_ = level; }

  static void log(LogLevel level, Time now, const char* component,
                  const std::string& message);

 private:
  static LogLevel level_;
};

#define SLOWCC_LOG(level, now, component, msg)                       \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::slowcc::sim::Logger::level())) {          \
      ::slowcc::sim::Logger::log(level, now, component, msg);        \
    }                                                                \
  } while (0)

}  // namespace slowcc::sim
