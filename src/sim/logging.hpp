#pragma once

#include <atomic>
#include <cstdio>
#include <string>

#include "sim/time.hpp"

namespace slowcc::sim {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Minimal leveled logger for simulation diagnostics.
///
/// Logging defaults to `kWarn` so experiment binaries stay quiet; tests
/// raise verbosity locally when debugging. The level is the one piece
/// of process-global state simulations share, so it is atomic: a sweep
/// running trials on many threads may read it concurrently (each
/// message is emitted with a single fprintf call, which POSIX keeps
/// from interleaving mid-line).
class Logger {
 public:
  static LogLevel level() noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  static void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }

  static void log(LogLevel level, Time now, const char* component,
                  const std::string& message);

 private:
  static std::atomic<LogLevel> level_;
};

#define SLOWCC_LOG(level, now, component, msg)                       \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::slowcc::sim::Logger::level())) {          \
      ::slowcc::sim::Logger::log(level, now, component, msg);        \
    }                                                                \
  } while (0)

}  // namespace slowcc::sim
