#include "sim/logging.hpp"

namespace slowcc::sim {

std::atomic<LogLevel> Logger::level_{LogLevel::kWarn};

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::log(LogLevel level, Time now, const char* component,
                 const std::string& message) {
  std::fprintf(stderr, "[%s %s] %s: %s\n", level_name(level),
               now.to_string().c_str(), component, message.c_str());
}

}  // namespace slowcc::sim
