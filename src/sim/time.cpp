#include "sim/time.hpp"

#include <cstdio>

namespace slowcc::sim {

std::string Time::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6fs", as_seconds());
  return buf;
}

Time transmission_time(std::int64_t bytes, double bits_per_second) noexcept {
  return Time::seconds(static_cast<double>(bytes) * 8.0 / bits_per_second);
}

}  // namespace slowcc::sim
