#include "sim/resource.hpp"

#include <string>
#include <utility>

#include "sim/error.hpp"

namespace slowcc::sim {
namespace {

// Per-thread peak accumulator: survives the Simulator (and thus the
// governor) being destroyed while a kResourceExhausted exception
// unwinds the scenario driver, so the trial harness can still stamp
// peak-usage fields into the quarantine row.
thread_local ResourceUsage t_peaks;

void raise_peaks(ResourceUsage& peaks, const ResourceUsage& usage) noexcept {
  if (usage.live_events > peaks.live_events)
    peaks.live_events = usage.live_events;
  if (usage.live_packets > peaks.live_packets)
    peaks.live_packets = usage.live_packets;
  if (usage.queued_bytes > peaks.queued_bytes)
    peaks.queued_bytes = usage.queued_bytes;
  if (usage.bytes_estimate > peaks.bytes_estimate)
    peaks.bytes_estimate = usage.bytes_estimate;
}

}  // namespace

void ResourceGovernor::set_budget(std::uint64_t max_bytes,
                                  double watermark_fraction,
                                  WatermarkCallback on_watermark) {
  if (!(watermark_fraction > 0.0) || watermark_fraction > 1.0) {
    throw SimError(SimErrc::kBadConfig, "ResourceGovernor",
                   "set_budget: watermark_fraction must be in (0, 1], got " +
                       std::to_string(watermark_fraction));
  }
  max_bytes_ = max_bytes;
  watermark_bytes_ = static_cast<std::uint64_t>(
      static_cast<double>(max_bytes) * watermark_fraction);
  watermark_fired_ = false;
  on_watermark_ = std::move(on_watermark);
  peaks_ = ResourceUsage{};
}

void ResourceGovernor::poll(std::uint64_t live_events) {
  ResourceUsage usage;
  usage.live_events = live_events;
  usage.live_packets = live_packets_;
  usage.queued_bytes = queued_bytes_;
  usage.bytes_estimate = bytes_estimate(live_events);
  raise_peaks(peaks_, usage);
  raise_peaks(t_peaks, usage);
  if (max_bytes_ == 0) return;
  if (!watermark_fired_ && usage.bytes_estimate >= watermark_bytes_) {
    watermark_fired_ = true;
    if (on_watermark_) on_watermark_(usage);
    // Re-read the counters: the callback may have shed load (dropped
    // queued packets, cancelled events); give that effect a chance to
    // keep the trial under the ceiling before we re-check it.
    usage.live_packets = live_packets_;
    usage.queued_bytes = queued_bytes_;
    usage.bytes_estimate = bytes_estimate(live_events);
  }
  if (usage.bytes_estimate > max_bytes_) {
    throw SimError(
        SimErrc::kResourceExhausted, "ResourceGovernor",
        "modeled footprint " + std::to_string(usage.bytes_estimate) +
            " bytes exceeds budget " + std::to_string(max_bytes_) + " (" +
            std::to_string(usage.live_events) + " live events, " +
            std::to_string(usage.live_packets) + " live packets, " +
            std::to_string(usage.queued_bytes) + " queued bytes)");
  }
}

const ResourceUsage& ResourceGovernor::thread_peaks() noexcept {
  return t_peaks;
}

void ResourceGovernor::reset_thread_peaks() noexcept {
  t_peaks = ResourceUsage{};
}

}  // namespace slowcc::sim
