#include "sim/simulator.hpp"

#include <cassert>

#include "sim/error.hpp"

namespace slowcc::sim {
namespace {

// Per-thread state: the construct observer slot and the cumulative
// event counter. thread_local keeps concurrent sweep workers fully
// independent — one worker's trial deadline never leaks into another.
thread_local Simulator::ConstructObserver t_construct_observer;
thread_local std::uint64_t t_events_executed = 0;

}  // namespace

Simulator::Simulator(EngineKind engine) : queue_(engine) {
  if (t_construct_observer) {
    // Swap the slot out while the observer runs so an observer that
    // constructs helper Simulators cannot recurse into itself.
    ConstructObserver observer;
    observer.swap(t_construct_observer);
    try {
      observer(*this);
    } catch (...) {
      observer.swap(t_construct_observer);
      throw;
    }
    observer.swap(t_construct_observer);
  }
}

std::uint64_t Simulator::thread_events_executed() noexcept {
  return t_events_executed;
}

void Simulator::set_thread_construct_observer(ConstructObserver observer) {
  if (observer && t_construct_observer) {
    throw SimError(SimErrc::kBadConfig, "Simulator",
                   "set_thread_construct_observer: slot already occupied "
                   "on this thread (clear it with nullptr first)");
  }
  t_construct_observer = std::move(observer);
}

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  if (at < now_) {
    throw SimError(SimErrc::kBadSchedule, "Simulator",
                   "schedule_at: time in the past (" + at.to_string() + " < " +
                       now_.to_string() + ")");
  }
  return queue_.schedule(at, std::move(cb));
}

EventId Simulator::schedule_in(Time delay, EventQueue::Callback cb) {
  if (delay.is_negative()) {
    throw SimError(SimErrc::kBadSchedule, "Simulator",
                   "schedule_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(cb));
}

void Simulator::set_event_hook(std::uint64_t every_events,
                               EventQueue::Callback hook) {
  if (every_events == 0 || hook == nullptr) {
    throw SimError(SimErrc::kBadConfig, "Simulator",
                   "set_event_hook: need every_events >= 1 and a callable");
  }
  if (hook_every_ != 0) {
    throw SimError(SimErrc::kBadConfig, "Simulator",
                   "set_event_hook: hook slot already occupied "
                   "(clear_event_hook first)");
  }
  hook_every_ = every_events;
  hook_ = std::move(hook);
}

void Simulator::run() { run_until(Time::max()); }

void Simulator::run_until(Time deadline) {
  while (!queue_.empty()) {
    const Time t = queue_.next_time();
    if (t > deadline) break;
    if (event_budget_ != 0 &&
        events_executed_ - event_budget_base_ >= event_budget_) {
      throw SimError(
          SimErrc::kDeadlineExceeded, "Simulator",
          "event budget exhausted (" + std::to_string(event_budget_) +
              " events since armed; clock " + now_.to_string() + ", " +
              std::to_string(queue_.size()) + " pending)");
    }
    PoppedEvent ev;
    auto cb = queue_.pop_event(&ev);
    assert(ev.at >= now_);
    now_ = ev.at;
    ++events_executed_;
    ++t_events_executed;
    trace_digest_ = fnv1a_u64(
        fnv1a_u64(trace_digest_, static_cast<std::uint64_t>(ev.at.as_nanos())),
        ev.seq);
    cb();
    // Poll after the callback so events and packets it just created are
    // charged to it. queue_.size() is the live (non-cancelled) event
    // count — logical state, identical across engines.
    if (governor_.armed()) governor_.poll(queue_.size());
    if (hook_every_ != 0 && events_executed_ % hook_every_ == 0) hook_();
  }
  if (deadline != Time::max() && now_ < deadline) now_ = deadline;
}

}  // namespace slowcc::sim
