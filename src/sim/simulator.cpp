#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>

namespace slowcc::sim {

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  if (at < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past (" +
                                at.to_string() + " < " + now_.to_string() + ")");
  }
  return queue_.schedule(at, std::move(cb));
}

EventId Simulator::schedule_in(Time delay, EventQueue::Callback cb) {
  if (delay.is_negative()) {
    throw std::invalid_argument("Simulator::schedule_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(cb));
}

void Simulator::run() { run_until(Time::max()); }

void Simulator::run_until(Time deadline) {
  while (!queue_.empty()) {
    const Time t = queue_.next_time();
    if (t > deadline) break;
    Time fire_time;
    auto cb = queue_.pop(&fire_time);
    assert(fire_time >= now_);
    now_ = fire_time;
    ++events_executed_;
    cb();
  }
  if (deadline != Time::max() && now_ < deadline) now_ = deadline;
}

}  // namespace slowcc::sim
