#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "sim/error.hpp"

namespace slowcc::sim {
namespace {

// Per-thread state: the construct observer slot and the cumulative
// event counter. thread_local keeps concurrent sweep workers fully
// independent — one worker's trial deadline never leaks into another.
thread_local Simulator::ConstructObserver t_construct_observer;
thread_local std::uint64_t t_events_executed = 0;

}  // namespace

Simulator::Simulator(EngineKind engine) : queue_(engine) {
  if (t_construct_observer) {
    // Swap the slot out while the observer runs so an observer that
    // constructs helper Simulators cannot recurse into itself.
    ConstructObserver observer;
    observer.swap(t_construct_observer);
    try {
      observer(*this);
    } catch (...) {
      observer.swap(t_construct_observer);
      throw;
    }
    observer.swap(t_construct_observer);
  }
}

std::uint64_t Simulator::thread_events_executed() noexcept {
  return t_events_executed;
}

void Simulator::set_thread_construct_observer(ConstructObserver observer) {
  if (observer && t_construct_observer) {
    throw SimError(SimErrc::kBadConfig, "Simulator",
                   "set_thread_construct_observer: slot already occupied "
                   "on this thread (clear it with nullptr first)");
  }
  t_construct_observer = std::move(observer);
}

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  if (at < now_) {
    throw SimError(SimErrc::kBadSchedule, "Simulator",
                   "schedule_at: time in the past (" + at.to_string() + " < " +
                       now_.to_string() + ")");
  }
  return queue_.schedule(at, std::move(cb));
}

EventId Simulator::schedule_in(Time delay, EventQueue::Callback cb) {
  if (delay.is_negative()) {
    throw SimError(SimErrc::kBadSchedule, "Simulator",
                   "schedule_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(cb));
}

void Simulator::set_event_hook(std::uint64_t every_events,
                               EventQueue::Callback hook) {
  if (every_events == 0 || hook == nullptr) {
    throw SimError(SimErrc::kBadConfig, "Simulator",
                   "set_event_hook: need every_events >= 1 and a callable");
  }
  if (hook_every_ != 0) {
    throw SimError(SimErrc::kBadConfig, "Simulator",
                   "set_event_hook: hook slot already occupied "
                   "(clear_event_hook first)");
  }
  hook_every_ = every_events;
  hook_ = std::move(hook);
}

void Simulator::arm_chain(ChainedEvent* chain) {
  if (chain == nullptr || chain->fire == nullptr) {
    throw SimError(SimErrc::kBadSchedule, "Simulator",
                   "arm_chain: null chain or fire callback");
  }
  if (chain->at < now_) {
    throw SimError(SimErrc::kBadSchedule, "Simulator",
                   "arm_chain: time in the past (" + chain->at.to_string() +
                       " < " + now_.to_string() + ")");
  }
  for (const ChainedEvent* c : chains_) {
    if (c == chain) {
      throw SimError(SimErrc::kBadSchedule, "Simulator",
                     "arm_chain: chain already armed (re-arm in place by "
                     "updating at/seq instead)");
    }
  }
  // One chain per link, armed when its transmitter goes busy: the
  // vector tops out at the topology's link count, not packet count.
  chains_.push_back(chain);  // slowcc-lint: allow(no-hot-path-alloc) bounded by link count, not packet count
}

void Simulator::disarm_chain(const ChainedEvent* chain) noexcept {
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    if (chains_[i] == chain) {
      chains_.erase(chains_.begin() +
                    static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::vector<Time> Simulator::pending_event_times(
    std::size_t max_entries) const {
  std::vector<Time> times = queue_.pending_times(max_entries);
  if (!chains_.empty()) {
    for (const ChainedEvent* c : chains_) times.push_back(c->at);
    std::sort(times.begin(), times.end());
    if (times.size() > max_entries) times.resize(max_entries);
  }
  return times;
}

void Simulator::run() { run_until(Time::max()); }

void Simulator::run_until(Time deadline) {
  for (;;) {
    // Pick the global minimum by (at, seq) between the engine head and
    // any armed drain chains. Seqs are minted from one per-queue
    // counter, so the pair is a strict total order and the executed
    // stream — what trace_digest() folds — is independent of whether a
    // departure runs as an engine event or a chained sub-event.
    ChainedEvent* chain = nullptr;
    for (ChainedEvent* c : chains_) {
      if (chain == nullptr || c->at < chain->at ||
          (c->at == chain->at && c->seq < chain->seq)) {
        chain = c;
      }
    }
    const bool engine_live = !queue_.empty();
    if (!engine_live && chain == nullptr) break;
    bool use_chain;
    PoppedEvent head;
    if (engine_live) {
      head = queue_.peek();
      use_chain = chain != nullptr &&
                  (chain->at < head.at ||
                   (chain->at == head.at && chain->seq < head.seq));
    } else {
      use_chain = true;
    }
    const Time t = use_chain ? chain->at : head.at;
    if (t > deadline) break;
    if (event_budget_ != 0 &&
        events_executed_ - event_budget_base_ >= event_budget_) {
      throw SimError(
          SimErrc::kDeadlineExceeded, "Simulator",
          "event budget exhausted (" + std::to_string(event_budget_) +
              " events since armed; clock " + now_.to_string() + ", " +
              std::to_string(pending_events()) + " pending)");
    }
    assert(t >= now_);
    if (use_chain) {
      now_ = chain->at;
      ++events_executed_;
      ++t_events_executed;
      trace_digest_ =
          fnv1a_u64(fnv1a_u64(trace_digest_,
                              static_cast<std::uint64_t>(chain->at.as_nanos())),
                    chain->seq);
      // fire() may re-arm the chain in place (next packet of the burst)
      // or disarm it (queue drained / link down).
      chain->fire(chain->ctx);
    } else {
      PoppedEvent ev;
      auto cb = queue_.pop_event(&ev);
      now_ = ev.at;
      ++events_executed_;
      ++t_events_executed;
      trace_digest_ =
          fnv1a_u64(fnv1a_u64(trace_digest_,
                              static_cast<std::uint64_t>(ev.at.as_nanos())),
                    ev.seq);
      cb();
    }
    // Poll after the callback so events and packets it just created are
    // charged to it. pending_events() counts live engine events plus
    // armed chains — logical state, identical across engines and across
    // the batched/scalar packet paths.
    if (governor_.armed()) governor_.poll(pending_events());
    if (hook_every_ != 0 && events_executed_ % hook_every_ == 0) hook_();
  }
  if (deadline != Time::max() && now_ < deadline) now_ = deadline;
}

}  // namespace slowcc::sim
