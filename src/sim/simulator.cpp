#include "sim/simulator.hpp"

#include <cassert>

#include "sim/error.hpp"

namespace slowcc::sim {

EventId Simulator::schedule_at(Time at, EventQueue::Callback cb) {
  if (at < now_) {
    throw SimError(SimErrc::kBadSchedule, "Simulator",
                   "schedule_at: time in the past (" + at.to_string() + " < " +
                       now_.to_string() + ")");
  }
  return queue_.schedule(at, std::move(cb));
}

EventId Simulator::schedule_in(Time delay, EventQueue::Callback cb) {
  if (delay.is_negative()) {
    throw SimError(SimErrc::kBadSchedule, "Simulator",
                   "schedule_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(cb));
}

void Simulator::set_event_hook(std::uint64_t every_events,
                               std::function<void()> hook) {
  if (every_events == 0 || hook == nullptr) {
    throw SimError(SimErrc::kBadConfig, "Simulator",
                   "set_event_hook: need every_events >= 1 and a callable");
  }
  if (hook_every_ != 0) {
    throw SimError(SimErrc::kBadConfig, "Simulator",
                   "set_event_hook: hook slot already occupied "
                   "(clear_event_hook first)");
  }
  hook_every_ = every_events;
  hook_ = std::move(hook);
}

void Simulator::run() { run_until(Time::max()); }

void Simulator::run_until(Time deadline) {
  while (!queue_.empty()) {
    const Time t = queue_.next_time();
    if (t > deadline) break;
    Time fire_time;
    auto cb = queue_.pop(&fire_time);
    assert(fire_time >= now_);
    now_ = fire_time;
    ++events_executed_;
    cb();
    if (hook_every_ != 0 && events_executed_ % hook_every_ == 0) hook_();
  }
  if (deadline != Time::max() && now_ < deadline) now_ = deadline;
}

}  // namespace slowcc::sim
