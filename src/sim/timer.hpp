#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

// slowcc-lint: allow-file(no-std-function-hot-path) one callable per
// Timer, installed at arm time — the fire path moves only EventIds.

namespace slowcc::sim {

/// A restartable one-shot timer.
///
/// Wraps the schedule/cancel dance that transport agents perform
/// constantly (retransmit timers, send timers, feedback timers). The
/// timer owns at most one pending event; re-scheduling cancels the
/// previous one. Destroying the timer cancels any pending event, so a
/// timer member can never fire into a destroyed agent.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(&sim), on_fire_(std::move(on_fire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  /// (Re)arm the timer to fire `delay` from now.
  void schedule_in(Time delay) {
    cancel();
    deadline_ = sim_->now() + delay;
    id_ = sim_->schedule_in(delay, [this] {
      id_ = EventId{};
      on_fire_();
    });
  }

  /// (Re)arm the timer to fire at absolute time `at`.
  void schedule_at(Time at) {
    cancel();
    deadline_ = at;
    id_ = sim_->schedule_at(at, [this] {
      id_ = EventId{};
      on_fire_();
    });
  }

  /// Disarm; no-op when idle.
  void cancel() {
    if (id_.valid()) {
      sim_->cancel(id_);
      id_ = EventId{};
    }
  }

  [[nodiscard]] bool pending() const noexcept { return id_.valid(); }

  /// When the timer will fire. Meaningful only while `pending()`; a
  /// pending deadline in the past means the engine lost an event —
  /// the `fault::InvariantAuditor` checks exactly this.
  [[nodiscard]] Time deadline() const noexcept { return deadline_; }

 private:
  Simulator* sim_;
  std::function<void()> on_fire_;
  EventId id_;
  Time deadline_;
};

}  // namespace slowcc::sim
