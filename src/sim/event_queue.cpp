#include "sim/event_queue.hpp"

// EventQueue is a header-only facade over the engines in
// heap_scheduler.cpp / wheel_scheduler.cpp; this TU just ensures the
// header stands alone.
