#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace slowcc::sim {

EventId EventQueue::schedule(Time at, Callback cb) {
  const std::uint64_t id = next_seq_++;
  heap_.push_back(Entry{at, id, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  ++live_;
  return EventId(id);
}

void EventQueue::cancel(EventId id) {
  if (!id.valid()) return;
  // Cancelling an event that already fired (or was already cancelled)
  // is a no-op; only pending events affect the bookkeeping.
  if (pending_.erase(id.id_) == 0) return;
  cancelled_.insert(id.id_);
  --live_;
}

void EventQueue::purge_cancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

std::vector<Time> EventQueue::pending_times(std::size_t max_entries) const {
  std::vector<Time> times;
  times.reserve(live_);
  for (const Entry& e : heap_) {
    if (cancelled_.find(e.id) == cancelled_.end()) times.push_back(e.at);
  }
  std::sort(times.begin(), times.end());
  if (times.size() > max_entries) times.resize(max_entries);
  return times;
}

Time EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->purge_cancelled();
  assert(!heap_.empty());
  return heap_.front().at;
}

EventQueue::Callback EventQueue::pop(Time* fire_time) {
  purge_cancelled();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  --live_;
  if (fire_time != nullptr) *fire_time = e.at;
  return std::move(e.cb);
}

}  // namespace slowcc::sim
