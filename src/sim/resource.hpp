#pragma once

#include <cstdint>
#include <functional>

// slowcc-lint: allow-file(no-std-function-hot-path) the watermark slot
// is per-Simulator control-plane state fired at most once per arming;
// the per-event cost of the governor is the inline counter updates.

namespace slowcc::sim {

/// Snapshot of the governor's usage model, both the live values at one
/// poll and the running peaks over a trial. All fields are derived from
/// logical simulation state (live events, live packets, queued bytes),
/// so they are identical across engines, thread counts, and processes —
/// safe to serialize into deterministic result rows.
struct ResourceUsage {
  std::uint64_t live_events = 0;
  std::uint64_t live_packets = 0;
  std::uint64_t queued_bytes = 0;
  /// Modeled footprint: live_events * kEventFootprintBytes +
  /// live_packets * kPacketFootprintBytes + queued_bytes.
  std::uint64_t bytes_estimate = 0;
};

/// Per-simulation resource accountant: turns "this trial is eating the
/// machine" into a structured, deterministic trial outcome instead of a
/// process OOM-kill.
///
/// The governor tracks three cheap counters:
///   - live events: read from the scheduler (EventQueue::size() counts
///     non-cancelled entries in O(1)), so scheduling needs no hooks;
///   - live packets and aggregate queued bytes: maintained by
///     `net::Queue` implementations via note_packet_admitted/removed.
///
/// From those it models a byte footprint (see ResourceUsage). When a
/// budget is armed, `Simulator::run_until` polls the governor between
/// events: crossing the soft watermark fires a callback once (agents
/// and queues can shed load through existing drop paths); crossing the
/// hard ceiling throws SimError(kResourceExhausted) with a
/// deterministic detail string.
///
/// The model is intentionally coarse — the point is not byte-accurate
/// RSS accounting but a deterministic, engine-independent proxy that
/// aborts the same trial at the same event on every run. Process-level
/// defense (real RSS vs /proc/meminfo) lives in the fleet's admission
/// control, not here.
class ResourceGovernor {
 public:
  using WatermarkCallback = std::function<void(const ResourceUsage&)>;

  /// Modeled per-object footprints (bytes). Deliberately round numbers:
  /// a pooled scheduler node is ~48-72 bytes depending on engine, a
  /// Packet with bookkeeping ~100-150. Changing them changes which
  /// event a bomb trial aborts at, so they are part of the determinism
  /// contract — bump only with the golden journals.
  static constexpr std::uint64_t kEventFootprintBytes = 64;
  static constexpr std::uint64_t kPacketFootprintBytes = 128;

  /// Arm (or re-arm) the budget: `max_bytes` is the hard ceiling for
  /// the modeled footprint, 0 disarms. `watermark_fraction` of the
  /// ceiling is the soft watermark; the callback (optional) fires once
  /// per arming when the model first crosses it. Re-arming resets the
  /// fired flag. Throws SimError(kBadConfig) on a fraction outside
  /// (0, 1].
  void set_budget(std::uint64_t max_bytes, double watermark_fraction = 0.85,
                  WatermarkCallback on_watermark = nullptr);

  [[nodiscard]] bool armed() const noexcept { return max_bytes_ != 0; }
  [[nodiscard]] std::uint64_t max_bytes() const noexcept { return max_bytes_; }

  /// Counter hooks for net::Queue implementations. Inline and branch-
  /// free; called on every enqueue/dequeue of a governed queue.
  void note_packet_admitted(std::uint64_t bytes) noexcept {
    ++live_packets_;
    queued_bytes_ += bytes;
  }
  void note_packet_removed(std::uint64_t bytes) noexcept {
    --live_packets_;
    queued_bytes_ -= bytes;
  }

  /// Bulk variants for attach/detach bookkeeping: a queue destroyed (or
  /// re-attached) while still holding packets releases its residue in
  /// one call, keeping the counters balanced at teardown.
  void note_packets_admitted(std::uint64_t count, std::uint64_t bytes) noexcept {
    live_packets_ += count;
    queued_bytes_ += bytes;
  }
  void note_packets_released(std::uint64_t count, std::uint64_t bytes) noexcept {
    live_packets_ -= count;
    queued_bytes_ -= bytes;
  }

  [[nodiscard]] std::uint64_t live_packets() const noexcept {
    return live_packets_;
  }
  [[nodiscard]] std::uint64_t queued_bytes() const noexcept {
    return queued_bytes_;
  }

  /// Modeled footprint for a given live-event count.
  [[nodiscard]] std::uint64_t bytes_estimate(
      std::uint64_t live_events) const noexcept {
    return live_events * kEventFootprintBytes +
           live_packets_ * kPacketFootprintBytes + queued_bytes_;
  }

  /// Budget check, called by Simulator::run_until after each event when
  /// armed. Updates instance and thread-local peaks, fires the
  /// watermark callback once, and throws SimError(kResourceExhausted)
  /// when the model crosses the ceiling.
  void poll(std::uint64_t live_events);

  /// Running peaks since construction / the last re-arm.
  [[nodiscard]] const ResourceUsage& peaks() const noexcept { return peaks_; }

  /// Peak usage across every governed Simulator on the calling thread
  /// since the last reset. The trial harness reads this *after* the
  /// scenario driver (and its Simulator) has been torn down by an
  /// in-flight kResourceExhausted exception, which is why the peaks
  /// must outlive the governor instance.
  [[nodiscard]] static const ResourceUsage& thread_peaks() noexcept;
  static void reset_thread_peaks() noexcept;

 private:
  std::uint64_t live_packets_ = 0;
  std::uint64_t queued_bytes_ = 0;
  std::uint64_t max_bytes_ = 0;        // 0 = disarmed
  std::uint64_t watermark_bytes_ = 0;  // soft threshold when armed
  bool watermark_fired_ = false;
  WatermarkCallback on_watermark_;
  ResourceUsage peaks_;
};

}  // namespace slowcc::sim
