#pragma once

#include <stdexcept>
#include <string>

namespace slowcc::sim {

/// Machine-readable classification of simulator failures.
///
/// Every throw in `sim/`, `net/`, `fault/`, and the scenario builders
/// carries one of these codes so harnesses (and the Watchdog /
/// InvariantAuditor) can dispatch on failure class instead of parsing
/// message strings. The taxonomy is documented in README.md.
enum class SimErrc {
  kBadConfig,           // invalid construction or reconfiguration parameter
  kBadSchedule,         // scheduling in the past / negative delay
  kBadTopology,         // port already bound, build-after-finalize, ...
  kInvariantViolation,  // an InvariantAuditor check failed mid-run
  kBudgetExceeded,      // Watchdog event-count or wall-clock budget hit
};

[[nodiscard]] const char* to_string(SimErrc code) noexcept;

/// Structured simulator error: a code, the component that raised it,
/// and a human-readable detail.
///
/// Derives from `std::invalid_argument` (hence `std::logic_error`) so
/// call sites and tests that predate the taxonomy keep working; new
/// code should catch `SimError` and dispatch on `code()`.
class SimError : public std::invalid_argument {
 public:
  SimError(SimErrc code, std::string component, std::string detail);

  [[nodiscard]] SimErrc code() const noexcept { return code_; }
  [[nodiscard]] const std::string& component() const noexcept {
    return component_;
  }
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  SimErrc code_;
  std::string component_;
  std::string detail_;
};

}  // namespace slowcc::sim
