#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace slowcc::sim {

/// Machine-readable classification of simulator failures.
///
/// Every throw under `src/` carries one of these codes so harnesses
/// (and the Watchdog / InvariantAuditor) can dispatch on failure class
/// instead of parsing message strings. The taxonomy is documented in
/// README.md and enforced by the `error-taxonomy` rule of slowcc_lint
/// (tools/lint/), which runs as the tier-1 `lint_smoke` ctest.
enum class SimErrc {
  kBadConfig,           // invalid construction or reconfiguration parameter
  kBadSchedule,         // scheduling in the past / negative delay
  kBadTopology,         // port already bound, build-after-finalize, ...
  kInvariantViolation,  // an InvariantAuditor check failed mid-run
  kBudgetExceeded,      // Watchdog event-count or wall-clock budget hit
  kDeadlineExceeded,    // a per-trial deadline (event budget or wall
                        // clock) turned a hung simulation into an error
  kTrialAborted,        // a trial was cancelled or failed by injection
                        // (chaos self-test, poison experiment)
  kLeaseLost,           // a fleet worker's trial lease was broken by a
                        // sibling (the worker looked dead); its result
                        // is discarded, the breaker's stands
  kLeaseExpired,        // a trial lease went stale past its TTL; the
                        // break-cap variant quarantines the trial
  kFleetDegraded,       // a fleet worker lost its shared directory or
                        // was asked to stop and exited early
  kBadSpec,             // a declarative scenario spec failed to parse,
                        // validate, or compile (src/spec/); the message
                        // carries file:line and the offending key
  kResourceExhausted,   // the ResourceGovernor's per-trial memory model
                        // crossed its hard ceiling; the trial is aborted
                        // before the process can OOM
  // Count sentinel — keep last; never a real code. Every switch over
  // SimErrc must still be exhaustive (-Wswitch under SLOWCC_WERROR),
  // and kAllSimErrcs below is pinned to this count at compile time.
  kCount_,
};

/// Every taxonomy code, in declaration order. The static_assert makes
/// "added an enumerator but not its table entry" a compile error
/// instead of a runtime "unknown" string; the paired to_string switch
/// is kept exhaustive by -Wswitch.
inline constexpr SimErrc kAllSimErrcs[] = {
    SimErrc::kBadConfig,     SimErrc::kBadSchedule,
    SimErrc::kBadTopology,   SimErrc::kInvariantViolation,
    SimErrc::kBudgetExceeded, SimErrc::kDeadlineExceeded,
    SimErrc::kTrialAborted,  SimErrc::kLeaseLost,
    SimErrc::kLeaseExpired,  SimErrc::kFleetDegraded,
    SimErrc::kBadSpec,       SimErrc::kResourceExhausted,
};
static_assert(sizeof(kAllSimErrcs) / sizeof(kAllSimErrcs[0]) ==
                  static_cast<std::size_t>(SimErrc::kCount_),
              "kAllSimErrcs must list every SimErrc exactly once — add "
              "the new code here and to to_string()/README.md");

[[nodiscard]] const char* to_string(SimErrc code) noexcept;

/// Inverse of `to_string`: parse a code token ("deadline-exceeded"),
/// std::nullopt for unknown text. Sweep manifests store codes as their
/// string form; this lets loaders dispatch without a parallel table.
[[nodiscard]] std::optional<SimErrc> errc_from_string(
    std::string_view text) noexcept;

/// Every taxonomy code, in declaration order (for exhaustive tests and
/// documentation generators) — a vector view over kAllSimErrcs.
[[nodiscard]] const std::vector<SimErrc>& all_errcs() noexcept;

/// Structured simulator error: a code, the component that raised it,
/// and a human-readable detail.
///
/// Derives from `std::invalid_argument` (hence `std::logic_error`) so
/// call sites and tests that predate the taxonomy keep working; new
/// code should catch `SimError` and dispatch on `code()`.
class SimError : public std::invalid_argument {
 public:
  SimError(SimErrc code, std::string component, std::string detail);

  [[nodiscard]] SimErrc code() const noexcept { return code_; }
  [[nodiscard]] const std::string& component() const noexcept {
    return component_;
  }
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  SimErrc code_;
  std::string component_;
  std::string detail_;
};

}  // namespace slowcc::sim
