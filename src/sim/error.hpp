#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace slowcc::sim {

/// Machine-readable classification of simulator failures.
///
/// Every throw under `src/` carries one of these codes so harnesses
/// (and the Watchdog / InvariantAuditor) can dispatch on failure class
/// instead of parsing message strings. The taxonomy is documented in
/// README.md and enforced by the `error-taxonomy` rule of slowcc_lint
/// (tools/lint/), which runs as the tier-1 `lint_smoke` ctest.
enum class SimErrc {
  kBadConfig,           // invalid construction or reconfiguration parameter
  kBadSchedule,         // scheduling in the past / negative delay
  kBadTopology,         // port already bound, build-after-finalize, ...
  kInvariantViolation,  // an InvariantAuditor check failed mid-run
  kBudgetExceeded,      // Watchdog event-count or wall-clock budget hit
  kDeadlineExceeded,    // a per-trial deadline (event budget or wall
                        // clock) turned a hung simulation into an error
  kTrialAborted,        // a trial was cancelled or failed by injection
                        // (chaos self-test, poison experiment)
};

[[nodiscard]] const char* to_string(SimErrc code) noexcept;

/// Inverse of `to_string`: parse a code token ("deadline-exceeded"),
/// std::nullopt for unknown text. Sweep manifests store codes as their
/// string form; this lets loaders dispatch without a parallel table.
[[nodiscard]] std::optional<SimErrc> errc_from_string(
    std::string_view text) noexcept;

/// Every taxonomy code, in declaration order (for exhaustive tests and
/// documentation generators).
[[nodiscard]] const std::vector<SimErrc>& all_errcs() noexcept;

/// Structured simulator error: a code, the component that raised it,
/// and a human-readable detail.
///
/// Derives from `std::invalid_argument` (hence `std::logic_error`) so
/// call sites and tests that predate the taxonomy keep working; new
/// code should catch `SimError` and dispatch on `code()`.
class SimError : public std::invalid_argument {
 public:
  SimError(SimErrc code, std::string component, std::string detail);

  [[nodiscard]] SimErrc code() const noexcept { return code_; }
  [[nodiscard]] const std::string& component() const noexcept {
    return component_;
  }
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  SimErrc code_;
  std::string component_;
  std::string detail_;
};

}  // namespace slowcc::sim
