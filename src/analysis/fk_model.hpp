#pragma once

#include "sim/time.hpp"

namespace slowcc::analysis {

/// §4.2.3's approximation of the post-doubling utilization for
/// AIMD(a, b): after the available bandwidth jumps from λ to 2λ
/// packets/sec, f(k) ≈ 1/2 + k·a/(4·R·λ), capped at 1.
///
/// `rtt` is R, `lambda_pps` the pre-doubling bandwidth in packets/sec.
[[nodiscard]] double fk_aimd_approximation(int k, double a, sim::Time rtt,
                                           double lambda_pps);

}  // namespace slowcc::analysis
