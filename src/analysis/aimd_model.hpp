#pragma once

namespace slowcc::analysis {

/// Closed-form properties of AIMD(a, b) congestion control used
/// throughout the paper's discussion.

/// Aggressiveness (paper §4.2.3): maximum increase of the sending rate
/// in one RTT absent congestion. For AIMD this is simply `a` (packets
/// per RTT per RTT).
[[nodiscard]] double aimd_aggressiveness(double a);

/// Responsiveness (paper §3, after Floyd et al.): number of RTTs of
/// persistent congestion (one loss per RTT) until the sending rate has
/// halved. TCP (b = 1/2) has responsiveness 1.
[[nodiscard]] double aimd_responsiveness_rtts(double b);

/// Steady-state smoothness metric of AIMD(b): the rate ratio across a
/// loss, i.e. 1 - b (paper §4.3).
[[nodiscard]] double aimd_smoothness(double b);

}  // namespace slowcc::analysis
