#include "analysis/aimd_model.hpp"

#include <cmath>

#include "sim/error.hpp"

namespace slowcc::analysis {

double aimd_aggressiveness(double a) {
  if (a <= 0.0) throw sim::SimError(sim::SimErrc::kBadConfig, "aggressiveness",
                                    "a must be > 0");
  return a;
}

double aimd_responsiveness_rtts(double b) {
  if (b <= 0.0 || b >= 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "responsiveness",
                        "b must be in (0, 1)");
  }
  // After n decreases the rate is (1-b)^n of the original; solve
  // (1-b)^n = 1/2.
  return std::log(0.5) / std::log(1.0 - b);
}

double aimd_smoothness(double b) {
  if (b <= 0.0 || b >= 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "smoothness",
                        "b must be in (0, 1)");
  }
  return 1.0 - b;
}

}  // namespace slowcc::analysis
