#include "analysis/fk_model.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace slowcc::analysis {

double fk_aimd_approximation(int k, double a, sim::Time rtt,
                             double lambda_pps) {
  if (k < 1) throw sim::SimError(sim::SimErrc::kBadConfig, "fk model",
                                 "k must be >= 1");
  if (a <= 0.0 || lambda_pps <= 0.0 || rtt <= sim::Time()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "fk model",
                        "parameters must be positive");
  }
  const double f = 0.5 + static_cast<double>(k) * a /
                             (4.0 * rtt.as_seconds() * lambda_pps);
  return std::min(1.0, f);
}

}  // namespace slowcc::analysis
