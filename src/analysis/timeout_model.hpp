#pragma once

namespace slowcc::analysis {

/// Appendix A of the paper: extending the pure-AIMD model to sending
/// rates below one packet per RTT by treating the exponential backoff
/// of the retransmit timer as continued rate-halving.

/// "AIMD with timeouts" sending rate in packets/RTT for a steady-state
/// drop rate p ≥ 1/2 (the model's validity range):
///
///   rate = (1/(1-p)) / (2^{1/(1-p)} − 1)
///
/// For p = 1/2 the sender delivers 2 packets every 3 RTTs (2/3).
[[nodiscard]] double aimd_with_timeouts_pkts_per_rtt(double p);

/// Piecewise model combining pure AIMD (p < 1/3) with the timeout model
/// (p ≥ 1/2); in between, interpolate linearly in log-rate — the paper
/// notes the two curves bound TCP's behavior in that region.
[[nodiscard]] double combined_model_pkts_per_rtt(double p);

}  // namespace slowcc::analysis
