#include "analysis/convergence_model.hpp"

#include <cmath>

#include "sim/error.hpp"

namespace slowcc::analysis {

double expected_acks_to_fairness(double b, double p, double delta) {
  if (b <= 0.0 || b >= 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "convergence model",
                        "b must be in (0, 1)");
  }
  if (p <= 0.0 || p >= 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "convergence model",
                        "p must be in (0, 1)");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "convergence model",
                        "delta must be in (0, 1)");
  }
  const double shrink = 1.0 - b * p;
  return std::log(delta) / std::log(shrink);
}

double expected_rtts_to_fairness(double b, double p, double delta,
                                 double total_window_pkts) {
  if (total_window_pkts <= 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "convergence model",
                        "window must be > 0");
  }
  return expected_acks_to_fairness(b, p, delta) / total_window_pkts;
}

}  // namespace slowcc::analysis
