#include "analysis/timeout_model.hpp"

#include <cmath>

#include "sim/error.hpp"

#include "cc/response_function.hpp"

namespace slowcc::analysis {

double aimd_with_timeouts_pkts_per_rtt(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "timeout model",
                        "p must be in (0, 1)");
  }
  const double inv = 1.0 / (1.0 - p);
  return inv / (std::pow(2.0, inv) - 1.0);
}

double combined_model_pkts_per_rtt(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "combined model",
                        "p must be in (0, 1)");
  }
  constexpr double kPureLimit = 1.0 / 3.0;
  constexpr double kTimeoutStart = 0.5;
  if (p < kPureLimit) return cc::simple_response_pkts_per_rtt(p);
  if (p >= kTimeoutStart) return aimd_with_timeouts_pkts_per_rtt(p);

  const double lo = std::log(cc::simple_response_pkts_per_rtt(kPureLimit));
  const double hi = std::log(aimd_with_timeouts_pkts_per_rtt(kTimeoutStart));
  const double t = (p - kPureLimit) / (kTimeoutStart - kPureLimit);
  return std::exp(lo + t * (hi - lo));
}

}  // namespace slowcc::analysis
