#pragma once

namespace slowcc::analysis {

/// §4.2.2's analytical model: for two pure AIMD(a, b) flows in an
/// ECN-style environment with mark probability p, the expected window
/// difference contracts by (1 - bp) per ACK, so the expected number of
/// ACKs to reach a δ-fair allocation from a fully skewed start is
/// log_{1-bp} δ.
[[nodiscard]] double expected_acks_to_fairness(double b, double p,
                                               double delta);

/// The same quantity converted to RTTs given an average combined window
/// of `total_window_pkts` (both flows together ACK that many packets
/// per RTT).
[[nodiscard]] double expected_rtts_to_fairness(double b, double p,
                                               double delta,
                                               double total_window_pkts);

}  // namespace slowcc::analysis
