#pragma once

#include <vector>

namespace slowcc::metrics {

/// The paper's smoothness metric over a per-RTT rate series: the worst
/// (smallest) ratio between the sending rates of two consecutive
/// samples, expressed as smaller/larger. A perfectly smooth sender
/// scores 1; TCP(b) scores about (1-b) in steady state (its rate drops
/// by the factor b on each loss).
///
/// Bins where both samples are ~0 (idle) are skipped so that startup
/// silence does not dominate.
[[nodiscard]] double smoothness_metric(const std::vector<double>& rates);

/// Coefficient of variation of a rate series (stddev/mean), a secondary
/// smoothness measure the literature also uses. 0 for constant rates.
[[nodiscard]] double coefficient_of_variation(const std::vector<double>& rates);

/// Largest rate ratio between consecutive samples (larger/smaller),
/// i.e. 1/smoothness, convenient for log-scale reporting.
[[nodiscard]] double worst_rate_change(const std::vector<double>& rates);

}  // namespace slowcc::metrics
