#include "metrics/throughput_monitor.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace slowcc::metrics {

ThroughputMonitor::ThroughputMonitor(sim::Simulator& sim, net::Link& link,
                                     sim::Time bin_width, Filter filter)
    : sim_(sim), bin_width_(bin_width), filter_(std::move(filter)) {
  if (bin_width <= sim::Time()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ThroughputMonitor",
                        "bin width must be > 0");
  }
  link.add_observer(this);
}

std::size_t ThroughputMonitor::bin_index(sim::Time t) const noexcept {
  return static_cast<std::size_t>(t.as_nanos() / bin_width_.as_nanos());
}

void ThroughputMonitor::on_depart(const net::Packet& p) {
  if (filter_ && !filter_(p)) return;
  const std::size_t i = bin_index(sim_.now());
  if (i >= bins_.size()) bins_.resize(i + 1, 0);
  bins_[i] += p.size_bytes;
  total_ += p.size_bytes;
}

std::int64_t ThroughputMonitor::bytes_in_bin(std::size_t i) const noexcept {
  return i < bins_.size() ? bins_[i] : 0;
}

std::int64_t ThroughputMonitor::bytes_between(sim::Time t0,
                                              sim::Time t1) const {
  if (t1 <= t0) return 0;
  const std::size_t first = bin_index(t0);
  const std::size_t last = bin_index(t1);  // exclusive
  std::int64_t sum = 0;
  for (std::size_t i = first; i < last && i < bins_.size(); ++i) {
    sum += bins_[i];
  }
  return sum;
}

double ThroughputMonitor::rate_bps_between(sim::Time t0, sim::Time t1) const {
  if (t1 <= t0) return 0.0;
  return static_cast<double>(bytes_between(t0, t1)) * 8.0 /
         (t1 - t0).as_seconds();
}

std::vector<double> ThroughputMonitor::rate_series_bps(sim::Time t0,
                                                       sim::Time t1) const {
  std::vector<double> out;
  const std::size_t first = bin_index(t0);
  const std::size_t last = bin_index(t1);
  const double w = bin_width_.as_seconds();
  for (std::size_t i = first; i < last; ++i) {
    out.push_back(static_cast<double>(bytes_in_bin(i)) * 8.0 / w);
  }
  return out;
}

}  // namespace slowcc::metrics
