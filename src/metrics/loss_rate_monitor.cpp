#include "metrics/loss_rate_monitor.hpp"

#include <algorithm>

#include "sim/error.hpp"


namespace slowcc::metrics {

LossRateMonitor::LossRateMonitor(sim::Simulator& sim, net::Link& link,
                                 sim::Time bin_width)
    : sim_(sim), bin_width_(bin_width) {
  if (bin_width <= sim::Time()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "LossRateMonitor",
                        "bin width must be > 0");
  }
  // Pre-size for a typical run (e.g. 1024 one-RTT bins covers hundreds
  // of simulated seconds); longer runs grow geometrically, so the
  // per-packet counting path never allocates in steady state.
  arrivals_.resize(kInitialBins, 0);
  drops_.resize(kInitialBins, 0);
  link.add_observer(this);
}

std::size_t LossRateMonitor::bin_index(sim::Time t) const noexcept {
  return static_cast<std::size_t>(t.as_nanos() / bin_width_.as_nanos());
}

void LossRateMonitor::ensure_bin(std::size_t i) {
  if (i >= used_) used_ = i + 1;
  if (i < arrivals_.size()) return;
  // Cold path: doubling keeps growth amortized O(1) per bin, and only
  // runs when a trial outlives the setup-time reservation.
  const std::size_t n = std::max(i + 1, arrivals_.size() * 2);
  arrivals_.resize(n, 0);  // slowcc-lint: allow(no-hot-path-alloc) amortized doubling past the setup reservation
  drops_.resize(n, 0);  // slowcc-lint: allow(no-hot-path-alloc) amortized doubling past the setup reservation
}

void LossRateMonitor::on_arrival(const net::Packet& /*p*/) {
  const std::size_t i = bin_index(sim_.now());
  ensure_bin(i);
  ++arrivals_[i];
  ++total_arrivals_;
}

void LossRateMonitor::on_drop(const net::Packet& /*p*/,
                              net::DropReason /*reason*/) {
  const std::size_t i = bin_index(sim_.now());
  ensure_bin(i);
  ++drops_[i];
  ++total_drops_;
}

double LossRateMonitor::loss_rate_in_bin(std::size_t i) const noexcept {
  if (i >= used_ || arrivals_[i] == 0) return 0.0;
  return static_cast<double>(drops_[i]) / static_cast<double>(arrivals_[i]);
}

double LossRateMonitor::trailing_loss_rate(std::size_t i,
                                           std::size_t window) const noexcept {
  if (used_ == 0 || window == 0) return 0.0;
  const std::size_t end = std::min(i + 1, used_);
  const std::size_t begin = end >= window ? end - window : 0;
  std::uint64_t a = 0;
  std::uint64_t d = 0;
  for (std::size_t j = begin; j < end; ++j) {
    a += arrivals_[j];
    d += drops_[j];
  }
  if (a == 0) return 0.0;
  return static_cast<double>(d) / static_cast<double>(a);
}

double LossRateMonitor::loss_rate_between(sim::Time t0, sim::Time t1) const {
  if (t1 <= t0) return 0.0;
  const std::size_t first = bin_index(t0);
  const std::size_t last = bin_index(t1);
  std::uint64_t a = 0;
  std::uint64_t d = 0;
  for (std::size_t i = first; i < last && i < used_; ++i) {
    a += arrivals_[i];
    d += drops_[i];
  }
  if (a == 0) return 0.0;
  return static_cast<double>(d) / static_cast<double>(a);
}

}  // namespace slowcc::metrics
