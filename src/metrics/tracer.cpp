#include "metrics/tracer.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/error.hpp"

namespace slowcc::metrics {

TimeSeriesTracer::TimeSeriesTracer(sim::Simulator& sim, sim::Time interval,
                                   Probe probe)
    : sim_(sim),
      interval_(interval),
      probe_(std::move(probe)),
      timer_(sim, [this] { on_tick(); }) {
  if (interval <= sim::Time()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "TimeSeriesTracer",
                        "interval must be > 0");
  }
  if (!probe_) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "TimeSeriesTracer",
                        "probe required");
  }
}

void TimeSeriesTracer::start_at(sim::Time at) {
  running_ = true;
  sim_.schedule_at(at, [this] {
    if (running_) on_tick();
  });
}

void TimeSeriesTracer::stop() {
  running_ = false;
  timer_.cancel();
}

void TimeSeriesTracer::on_tick() {
  if (!running_) return;
  values_.push_back(probe_());
  stamps_.push_back(sim_.now());
  timer_.schedule_in(interval_);
}

bool write_csv(const std::string& path, const std::vector<sim::Time>& times,
               const std::vector<CsvColumn>& columns) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::fprintf(f, "time_s");
  for (const auto& c : columns) std::fprintf(f, ",%s", c.name.c_str());
  std::fprintf(f, "\n");

  std::size_t rows = times.size();
  for (const auto& c : columns) rows = std::min(rows, c.values->size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::fprintf(f, "%.6f", times[i].as_seconds());
    for (const auto& c : columns) {
      std::fprintf(f, ",%.9g", (*c.values)[i]);
    }
    std::fprintf(f, "\n");
  }
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace slowcc::metrics
