#include "metrics/convergence.hpp"

#include <algorithm>

namespace slowcc::metrics {

namespace {
double trailing_sum(const std::vector<std::int64_t>& v, std::size_t i,
                    std::size_t window) {
  const std::size_t end = std::min(i + 1, v.size());
  const std::size_t begin = end >= window ? end - window : 0;
  double s = 0.0;
  for (std::size_t j = begin; j < end; ++j) {
    s += static_cast<double>(v[j]);
  }
  return s;
}
}  // namespace

ConvergenceResult compute_convergence(
    const std::vector<std::int64_t>& flow1_bytes,
    const std::vector<std::int64_t>& flow2_bytes, sim::Time bin,
    sim::Time start, double delta, std::size_t smooth, std::size_t hold) {
  ConvergenceResult result;
  const std::size_t n = std::min(flow1_bytes.size(), flow2_bytes.size());
  const std::size_t start_bin =
      static_cast<std::size_t>(start.as_nanos() / bin.as_nanos());
  const double target = (1.0 - delta) / 2.0;

  std::size_t run = 0;
  for (std::size_t i = start_bin; i < n; ++i) {
    const double x1 = trailing_sum(flow1_bytes, i, smooth);
    const double x2 = trailing_sum(flow2_bytes, i, smooth);
    const double total = x1 + x2;
    const bool fair = total > 0.0 && std::min(x1, x2) / total >= target;
    run = fair ? run + 1 : 0;
    if (run >= hold) {
      result.converged = true;
      const std::size_t first_fair_bin = i + 1 - hold;
      result.convergence_time_s =
          (static_cast<double>(first_fair_bin - start_bin) + 1.0) *
          bin.as_seconds();
      return result;
    }
  }
  return result;
}

}  // namespace slowcc::metrics
