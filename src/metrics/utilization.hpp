#pragma once

#include "metrics/throughput_monitor.hpp"

namespace slowcc::metrics {

/// f(k): average link utilization over the first k RTTs after an
/// increase in the available bandwidth (paper §4.2.3).
///
/// `monitor` must observe the bottleneck link departures (optionally
/// filtered to the flows of interest); `event` is when the bandwidth
/// increased; `capacity_bps` is the bandwidth the flows could now use.
[[nodiscard]] double f_of_k(const ThroughputMonitor& monitor, sim::Time event,
                            int k, sim::Time rtt, double capacity_bps);

/// Mean utilization over an arbitrary interval against a capacity.
[[nodiscard]] double utilization_between(const ThroughputMonitor& monitor,
                                         sim::Time t0, sim::Time t1,
                                         double capacity_bps);

}  // namespace slowcc::metrics
