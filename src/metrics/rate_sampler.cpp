#include "metrics/rate_sampler.hpp"

#include "sim/error.hpp"


namespace slowcc::metrics {

RateSampler::RateSampler(sim::Simulator& sim, sim::Time interval,
                         Counter counter)
    : sim_(sim),
      interval_(interval),
      counter_(std::move(counter)),
      timer_(sim, [this] { on_tick(); }) {
  if (interval <= sim::Time()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "RateSampler",
                        "interval must be > 0");
  }
  if (!counter_) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "RateSampler",
                        "counter required");
  }
}

void RateSampler::start_at(sim::Time at) {
  running_ = true;
  sim_.schedule_at(at, [this] {
    if (!running_) return;
    last_value_ = counter_();
    timer_.schedule_in(interval_);
  });
}

void RateSampler::stop() {
  running_ = false;
  timer_.cancel();
}

void RateSampler::on_tick() {
  if (!running_) return;
  const std::int64_t v = counter_();
  rates_.push_back(static_cast<double>(v - last_value_) * 8.0 /
                   interval_.as_seconds());
  stamps_.push_back(sim_.now());
  last_value_ = v;
  timer_.schedule_in(interval_);
}

}  // namespace slowcc::metrics
