#pragma once

#include <functional>
#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace slowcc::metrics {

/// Bins bytes departing a link into fixed-width time bins, optionally
/// filtered (per flow, per packet type, ...).
///
/// The natural measurement point for "throughput" in the paper's sense
/// is departures from the bottleneck link; attach one monitor per
/// quantity of interest.
class ThroughputMonitor final : public net::LinkObserver {
 public:
  using Filter = std::function<bool(const net::Packet&)>;

  /// Attaches itself to `link`. Must outlive the link's traffic.
  ThroughputMonitor(sim::Simulator& sim, net::Link& link, sim::Time bin_width,
                    Filter filter = {});

  void on_depart(const net::Packet& p) override;

  [[nodiscard]] sim::Time bin_width() const noexcept { return bin_width_; }

  /// Bytes counted in bin `i` (0 if never touched).
  [[nodiscard]] std::int64_t bytes_in_bin(std::size_t i) const noexcept;

  /// Number of bins spanned so far.
  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }

  /// Total bytes in [t0, t1), using whole bins (t0/t1 rounded down to
  /// bin boundaries).
  [[nodiscard]] std::int64_t bytes_between(sim::Time t0, sim::Time t1) const;

  /// Average rate in bits/sec over [t0, t1).
  [[nodiscard]] double rate_bps_between(sim::Time t0, sim::Time t1) const;

  /// Rate series (bits/sec per bin) over [t0, t1).
  [[nodiscard]] std::vector<double> rate_series_bps(sim::Time t0,
                                                    sim::Time t1) const;

  [[nodiscard]] std::int64_t total_bytes() const noexcept { return total_; }

 private:
  [[nodiscard]] std::size_t bin_index(sim::Time t) const noexcept;

  sim::Simulator& sim_;
  sim::Time bin_width_;
  Filter filter_;
  std::vector<std::int64_t> bins_;
  std::int64_t total_ = 0;
};

}  // namespace slowcc::metrics
