#pragma once

#include <vector>

#include "sim/time.hpp"

namespace slowcc::metrics {

/// δ-fair convergence (paper §3/§4.2.2): the time for two flows to go
/// from a skewed allocation (B - b0, b0) to ((1+δ)/2 B, (1-δ)/2 B).
struct ConvergenceResult {
  bool converged = false;
  double convergence_time_s = 0.0;  // from `start` to the δ-fair point
};

/// Determine the δ-fair convergence time from two per-bin throughput
/// series (bytes per bin, aligned, bin width `bin`).
///
/// The allocation is δ-fair when the disadvantaged flow holds at least
/// (1-δ)/2 of the two flows' combined throughput. Throughput is
/// smoothed over `smooth` trailing bins, and the condition must hold
/// for `hold` consecutive (smoothed) bins; the reported time is the
/// first bin of that run, relative to `start`.
[[nodiscard]] ConvergenceResult compute_convergence(
    const std::vector<std::int64_t>& flow1_bytes,
    const std::vector<std::int64_t>& flow2_bytes, sim::Time bin,
    sim::Time start, double delta, std::size_t smooth = 10,
    std::size_t hold = 5);

}  // namespace slowcc::metrics
