#pragma once

#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace slowcc::metrics {

/// Bins packet arrivals and drops at a link into fixed-width time bins
/// and reports loss rates, including the paper's trailing-window
/// average ("we calculate the loss rate as an average over the previous
/// ten RTT periods").
class LossRateMonitor final : public net::LinkObserver {
 public:
  LossRateMonitor(sim::Simulator& sim, net::Link& link, sim::Time bin_width);

  void on_arrival(const net::Packet& p) override;
  void on_drop(const net::Packet& p, net::DropReason reason) override;

  [[nodiscard]] sim::Time bin_width() const noexcept { return bin_width_; }

  /// Number of bins actually touched (storage may be larger: it is
  /// pre-sized at setup and grows geometrically, so the per-packet
  /// counting path never allocates).
  [[nodiscard]] std::size_t bin_count() const noexcept { return used_; }

  /// Loss fraction in a single bin; 0 when no arrivals.
  [[nodiscard]] double loss_rate_in_bin(std::size_t i) const noexcept;

  /// Loss fraction over the `window` bins ending at (and including)
  /// bin `i` — the paper's trailing 10-RTT average when bin width = RTT
  /// and window = 10.
  [[nodiscard]] double trailing_loss_rate(std::size_t i,
                                          std::size_t window) const noexcept;

  /// Loss fraction over whole bins spanning [t0, t1).
  [[nodiscard]] double loss_rate_between(sim::Time t0, sim::Time t1) const;

  [[nodiscard]] std::size_t bin_index(sim::Time t) const noexcept;

  [[nodiscard]] std::uint64_t total_arrivals() const noexcept {
    return total_arrivals_;
  }
  [[nodiscard]] std::uint64_t total_drops() const noexcept {
    return total_drops_;
  }

 private:
  static constexpr std::size_t kInitialBins = 1024;

  void ensure_bin(std::size_t i);

  sim::Simulator& sim_;
  sim::Time bin_width_;
  std::size_t used_ = 0;  // logical bin count; <= arrivals_.size()
  std::vector<std::uint64_t> arrivals_;
  std::vector<std::uint64_t> drops_;
  std::uint64_t total_arrivals_ = 0;
  std::uint64_t total_drops_ = 0;
};

}  // namespace slowcc::metrics
