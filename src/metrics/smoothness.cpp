#include "metrics/smoothness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace slowcc::metrics {

namespace {
constexpr double kIdleThreshold = 1.0;  // bps: below this a bin is idle
}

double smoothness_metric(const std::vector<double>& rates) {
  double worst = 1.0;
  for (std::size_t i = 1; i < rates.size(); ++i) {
    const double a = rates[i - 1];
    const double b = rates[i];
    if (a < kIdleThreshold && b < kIdleThreshold) continue;
    if (a < kIdleThreshold || b < kIdleThreshold) {
      // A transition to/from silence is the worst possible ratio.
      worst = 0.0;
      continue;
    }
    worst = std::min(worst, std::min(a, b) / std::max(a, b));
  }
  return worst;
}

double coefficient_of_variation(const std::vector<double>& rates) {
  if (rates.empty()) return 0.0;
  double mean = 0.0;
  for (double r : rates) mean += r;
  mean /= static_cast<double>(rates.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (double r : rates) var += (r - mean) * (r - mean);
  var /= static_cast<double>(rates.size());
  return std::sqrt(var) / mean;
}

double worst_rate_change(const std::vector<double>& rates) {
  const double s = smoothness_metric(rates);
  if (s <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / s;
}

}  // namespace slowcc::metrics
