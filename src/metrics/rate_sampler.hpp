#pragma once

#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace slowcc::metrics {

/// Samples a monotone byte counter (e.g. a sink's `bytes_received`)
/// every `interval` and exposes the per-interval rate series. This is
/// how the smoothness figures' "sending rate averaged over 0.2-second
/// intervals" traces are produced.
class RateSampler {
 public:
  using Counter = std::function<std::int64_t()>;

  RateSampler(sim::Simulator& sim, sim::Time interval, Counter counter);

  /// Begin sampling at absolute time `at`.
  void start_at(sim::Time at);
  void stop();

  [[nodiscard]] sim::Time interval() const noexcept { return interval_; }

  /// Rates in bits/sec, one entry per elapsed interval.
  [[nodiscard]] const std::vector<double>& rates_bps() const noexcept {
    return rates_;
  }

  /// Sample timestamps (end of each interval), aligned with rates.
  [[nodiscard]] const std::vector<sim::Time>& timestamps() const noexcept {
    return stamps_;
  }

 private:
  void on_tick();

  sim::Simulator& sim_;
  sim::Time interval_;
  Counter counter_;
  sim::Timer timer_;
  std::int64_t last_value_ = 0;
  bool running_ = false;
  std::vector<double> rates_;
  std::vector<sim::Time> stamps_;
};

}  // namespace slowcc::metrics
