#include "metrics/fairness.hpp"

namespace slowcc::metrics {

double jain_index(const std::vector<double>& allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

std::vector<double> normalized_shares(const std::vector<double>& allocations,
                                      double total) {
  std::vector<double> out;
  out.reserve(allocations.size());
  const double share =
      allocations.empty() ? 1.0 : total / static_cast<double>(allocations.size());
  for (double x : allocations) {
    out.push_back(share > 0.0 ? x / share : 0.0);
  }
  return out;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace slowcc::metrics
