#include "metrics/stabilization.hpp"

#include <algorithm>

namespace slowcc::metrics {

StabilizationResult compute_stabilization(const LossRateMonitor& monitor,
                                          sim::Time steady_from,
                                          sim::Time steady_to, sim::Time onset,
                                          sim::Time horizon,
                                          std::size_t window, double factor,
                                          std::size_t hold) {
  StabilizationResult result;
  result.steady_loss_rate = monitor.loss_rate_between(steady_from, steady_to);

  // Guard against a zero steady-state rate (e.g. too-light calibration
  // traffic): fall back to an absolute 1% threshold so the comparison
  // stays meaningful.
  const double threshold =
      std::max(factor * result.steady_loss_rate, 0.01);

  const std::size_t onset_bin = monitor.bin_index(onset);
  const std::size_t horizon_bin =
      std::min(monitor.bin_index(horizon), monitor.bin_count());
  const double bin_s = monitor.bin_width().as_seconds();

  // Skip the first `window` bins after onset: the trailing average
  // still mixes in pre-onset (idle) bins there, which would let the
  // metric "stabilize" before congestion has even registered.
  std::size_t run = 0;
  for (std::size_t i = onset_bin + window; i < horizon_bin; ++i) {
    run = monitor.trailing_loss_rate(i, window) <= threshold ? run + 1 : 0;
    if (run >= hold) {
      result.stabilized = true;
      const std::size_t first = i + 1 - hold;
      const double stab_s =
          (static_cast<double>(first - onset_bin) + 1.0) * bin_s;
      result.stabilization_time_s = stab_s;
      result.stabilization_time_rtts = stab_s / bin_s;
      result.mean_loss_during_stabilization = monitor.loss_rate_between(
          onset, onset + sim::Time::seconds(stab_s));
      result.stabilization_cost =
          result.stabilization_time_rtts *
          result.mean_loss_during_stabilization;
      return result;
    }
  }

  // Never stabilized within the horizon: report the horizon-clamped
  // values (still useful for ranking pathological algorithms).
  const double stab_s =
      (static_cast<double>(horizon_bin) - static_cast<double>(onset_bin)) *
      bin_s;
  result.stabilization_time_s = stab_s;
  result.stabilization_time_rtts = stab_s / bin_s;
  result.mean_loss_during_stabilization =
      monitor.loss_rate_between(onset, horizon);
  result.stabilization_cost =
      result.stabilization_time_rtts * result.mean_loss_during_stabilization;
  return result;
}

}  // namespace slowcc::metrics
