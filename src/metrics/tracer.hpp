#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace slowcc::metrics {

/// Samples an arbitrary scalar (cwnd, rate, queue depth, ...) at a
/// fixed interval — the general-purpose companion to `RateSampler`,
/// which is specialized for monotone byte counters.
class TimeSeriesTracer {
 public:
  using Probe = std::function<double()>;

  TimeSeriesTracer(sim::Simulator& sim, sim::Time interval, Probe probe);

  void start_at(sim::Time at);
  void stop();

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] const std::vector<sim::Time>& timestamps() const noexcept {
    return stamps_;
  }
  [[nodiscard]] sim::Time interval() const noexcept { return interval_; }

 private:
  void on_tick();

  sim::Simulator& sim_;
  sim::Time interval_;
  Probe probe_;
  sim::Timer timer_;
  bool running_ = false;
  std::vector<double> values_;
  std::vector<sim::Time> stamps_;
};

/// One named column of a CSV export.
struct CsvColumn {
  std::string name;
  const std::vector<double>* values;
};

/// Write aligned series to a CSV file with a leading time column (rows
/// are truncated to the shortest column). Returns false on I/O error.
bool write_csv(const std::string& path, const std::vector<sim::Time>& times,
               const std::vector<CsvColumn>& columns);

}  // namespace slowcc::metrics
