#pragma once

#include "metrics/loss_rate_monitor.hpp"

namespace slowcc::metrics {

/// Result of the paper's §4.1 stabilization analysis.
struct StabilizationResult {
  bool stabilized = false;       // loss rate returned to near steady state
  double steady_loss_rate = 0.0; // calibrated steady-state loss fraction
  double stabilization_time_s = 0.0;
  double stabilization_time_rtts = 0.0;
  /// Paper's stabilization cost: stabilization time (in RTTs) times the
  /// average loss *fraction* during the stabilization interval. A cost
  /// of 1 = one full RTT's worth of packets dropped.
  double stabilization_cost = 0.0;
  double mean_loss_during_stabilization = 0.0;
};

/// Compute stabilization time and cost from a loss monitor binned at
/// one RTT per bin.
///
/// `steady_from`/`steady_to` delimit the calibration interval whose
/// average loss rate defines "steady state"; `onset` is when the
/// sustained congestion begins. The network counts as stabilized at the
/// first bin where the trailing `window`-bin (default 10-RTT) average
/// loss rate is within `factor` (default 1.5) of the steady-state rate
/// and stays there for `hold` consecutive bins (noise guard).
[[nodiscard]] StabilizationResult compute_stabilization(
    const LossRateMonitor& monitor, sim::Time steady_from, sim::Time steady_to,
    sim::Time onset, sim::Time horizon, std::size_t window = 10,
    double factor = 1.5, std::size_t hold = 10);

}  // namespace slowcc::metrics
