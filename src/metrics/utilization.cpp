#include "metrics/utilization.hpp"

#include <algorithm>

namespace slowcc::metrics {

double f_of_k(const ThroughputMonitor& monitor, sim::Time event, int k,
              sim::Time rtt, double capacity_bps) {
  const sim::Time end = event + rtt * static_cast<std::int64_t>(k);
  return utilization_between(monitor, event, end, capacity_bps);
}

double utilization_between(const ThroughputMonitor& monitor, sim::Time t0,
                           sim::Time t1, double capacity_bps) {
  if (t1 <= t0 || capacity_bps <= 0.0) return 0.0;
  const double achieved_bps = monitor.rate_bps_between(t0, t1);
  return std::min(1.5, achieved_bps / capacity_bps);
}

}  // namespace slowcc::metrics
