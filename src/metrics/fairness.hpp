#pragma once

#include <vector>

namespace slowcc::metrics {

/// Jain's fairness index: (Σx)² / (n·Σx²). 1 = perfectly equitable,
/// 1/n = one flow has everything.
[[nodiscard]] double jain_index(const std::vector<double>& allocations);

/// Throughputs normalized by the equal share of `total` across
/// `allocations.size()` flows — the y-axis of Figures 7-9.
[[nodiscard]] std::vector<double> normalized_shares(
    const std::vector<double>& allocations, double total);

/// Mean of a vector (0 for empty input).
[[nodiscard]] double mean(const std::vector<double>& values);

}  // namespace slowcc::metrics
