#include "fault/impairment.hpp"

#include "sim/error.hpp"

namespace slowcc::fault {

WireImpairment::WireImpairment(const ImpairmentConfig& config, sim::Rng rng)
    : config_(config), rng_(rng) {
  auto check_probability = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
      throw sim::SimError(sim::SimErrc::kBadConfig, "WireImpairment",
                          std::string(name) + " must be in [0, 1]");
    }
  };
  check_probability(config_.reorder_probability, "reorder_probability");
  check_probability(config_.duplicate_probability, "duplicate_probability");
  if (config_.reorder_extra_min.is_negative() ||
      config_.reorder_extra_max < config_.reorder_extra_min) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "WireImpairment",
                        "need 0 <= reorder_extra_min <= reorder_extra_max");
  }
  if (config_.duplicate_extra_delay.is_negative()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "WireImpairment",
                        "duplicate_extra_delay must be >= 0");
  }
  if (config_.loss) {
    // The loss channel gets a split of the impairment's generator so
    // reorder/duplication draws do not perturb the loss process.
    loss_.emplace(*config_.loss, rng_.split());
  }
}

net::WireVerdict WireImpairment::on_wire(const net::Packet& /*p*/) {
  ++packets_;
  net::WireVerdict verdict;

  if (loss_ && loss_->should_drop()) {
    ++dropped_;
    verdict.drop = true;
    // A dropped packet makes no further draws; the fixed draw order
    // keeps the sequence reproducible either way.
    return verdict;
  }

  if (config_.reorder_probability > 0.0 &&
      rng_.chance(config_.reorder_probability)) {
    ++reordered_;
    verdict.extra_delay = sim::Time::seconds(
        rng_.uniform(config_.reorder_extra_min.as_seconds(),
                     config_.reorder_extra_max.as_seconds()));
  }

  if (config_.duplicate_probability > 0.0 &&
      rng_.chance(config_.duplicate_probability)) {
    ++duplicated_;
    verdict.duplicate = true;
    verdict.duplicate_delay = config_.duplicate_extra_delay;
  }

  return verdict;
}

}  // namespace slowcc::fault
