#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace slowcc::fault {

/// Parameters of a two-state Gilbert-Elliott bursty loss channel.
///
/// The channel sits in a GOOD or BAD state; before every packet it
/// makes one state transition draw, then draws the packet's fate from
/// the state's loss probability. The classic Gilbert model is
/// `loss_good = 0`; the defaults give ~0.5% average loss concentrated
/// in bursts of a few packets.
struct GilbertElliottConfig {
  double p_good_to_bad = 0.001;  // per-packet transition G -> B
  double p_bad_to_good = 0.10;   // per-packet transition B -> G
  double loss_good = 0.0;        // loss probability in GOOD
  double loss_bad = 0.5;         // loss probability in BAD
  bool start_bad = false;

  /// Stationary probability of being in the BAD state.
  [[nodiscard]] double stationary_bad() const noexcept {
    return p_good_to_bad / (p_good_to_bad + p_bad_to_good);
  }

  /// Long-run average per-packet loss rate.
  [[nodiscard]] double expected_loss_rate() const noexcept {
    const double pi_b = stationary_bad();
    return (1.0 - pi_b) * loss_good + pi_b * loss_bad;
  }

  /// Expected length of a run of consecutive losses (classic Gilbert
  /// regime, `loss_good = 0`): a run continues while the channel stays
  /// BAD and loses again, so lengths are geometric with continuation
  /// probability `(1 - p_bad_to_good) * loss_bad`.
  [[nodiscard]] double expected_mean_burst() const noexcept {
    return 1.0 / (1.0 - (1.0 - p_bad_to_good) * loss_bad);
  }
};

/// The channel itself: a per-packet state machine over a seeded Rng.
class GilbertElliott {
 public:
  /// Throws sim::SimError (kBadConfig) on out-of-range probabilities.
  GilbertElliott(const GilbertElliottConfig& config, sim::Rng rng);

  /// Advance the channel by one packet and decide its fate.
  [[nodiscard]] bool should_drop() noexcept;

  [[nodiscard]] bool in_bad_state() const noexcept { return bad_; }
  [[nodiscard]] std::uint64_t packets_seen() const noexcept {
    return packets_;
  }
  [[nodiscard]] std::uint64_t packets_dropped() const noexcept {
    return drops_;
  }
  [[nodiscard]] const GilbertElliottConfig& config() const noexcept {
    return config_;
  }

 private:
  GilbertElliottConfig config_;
  sim::Rng rng_;
  bool bad_;
  std::uint64_t packets_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace slowcc::fault
