#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/timer.hpp"

namespace slowcc::fault {

struct AuditorConfig {
  /// How often the periodic audit event runs.
  sim::Time period = sim::Time::millis(100);
  /// Upper bound on any watched queue's occupancy, packets. Dynamic
  /// links legitimately grow queues, but a queue beyond this is a leak.
  std::size_t max_queue_packets = 1u << 20;
  /// Throw sim::SimError (kInvariantViolation) on the first failed
  /// check. When false, violations are only recorded (for tests).
  bool throw_on_violation = true;
};

/// Runtime integrity checking for simulations whose network changes
/// under them. Registered links are checked for packet conservation
///
///   arrivals == departures + drops + queued + (1 if transmitting)
///
/// plus stats sanity and bounded queue occupancy; the simulation clock
/// must be monotonic across audits; registered agent timers must not
/// be pending with a deadline in the past (a pending past deadline
/// means the engine lost an event). Runs as a periodic simulation
/// event; `check_now()` audits on demand.
class InvariantAuditor {
 public:
  explicit InvariantAuditor(sim::Simulator& sim, AuditorConfig config = {});

  /// Watch one link. `name` labels violation messages.
  void watch_link(net::Link& link, std::string name = {});

  /// Watch every link of a topology.
  void watch_topology(net::Topology& topo, const std::string& prefix = "link");

  /// Watch an agent timer (must outlive the auditor or be unwatched by
  /// destroying the auditor first).
  void watch_timer(const sim::Timer& timer, std::string name = {});

  /// Start (or restart) the periodic audit.
  void start();
  void stop();

  /// Run every check immediately; returns the number of violations
  /// found in this pass (0 when healthy).
  std::size_t check_now();

  [[nodiscard]] std::uint64_t audits_performed() const noexcept {
    return audits_;
  }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }

 private:
  struct WatchedLink {
    net::Link* link;
    std::string name;
  };
  struct WatchedTimer {
    const sim::Timer* timer;
    std::string name;
  };

  void on_tick();
  void record(std::string violation);

  sim::Simulator& sim_;
  AuditorConfig config_;
  sim::Timer timer_;
  std::vector<WatchedLink> links_;
  std::vector<WatchedTimer> timers_;
  std::vector<std::string> violations_;
  std::uint64_t audits_ = 0;
  sim::Time last_audit_time_;
  std::size_t pass_violations_ = 0;
};

}  // namespace slowcc::fault
