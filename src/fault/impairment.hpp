#pragma once

#include <cstdint>
#include <optional>

#include "fault/gilbert_elliott.hpp"
#include "net/link.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace slowcc::fault {

/// What a `WireImpairment` may do to each packet that finishes
/// serialization. All probabilities are per packet; all draws come
/// from one seeded Rng so impaired runs stay bit-reproducible.
struct ImpairmentConfig {
  /// Bursty loss channel; nullopt disables loss.
  std::optional<GilbertElliottConfig> loss;

  /// With this probability a packet is held back on the wire for a
  /// uniform extra delay in [reorder_extra_min, reorder_extra_max],
  /// letting later packets overtake it.
  double reorder_probability = 0.0;
  sim::Time reorder_extra_min = sim::Time::millis(1);
  sim::Time reorder_extra_max = sim::Time::millis(5);

  /// With this probability the wire delivers a second copy,
  /// `duplicate_extra_delay` behind the original.
  double duplicate_probability = 0.0;
  sim::Time duplicate_extra_delay = sim::Time::micros(1);
};

/// The standard `net::WireModel`: Gilbert-Elliott loss, reordering,
/// and duplication composed in a fixed draw order (loss, then
/// reorder, then duplication) for reproducibility.
class WireImpairment final : public net::WireModel {
 public:
  /// Throws sim::SimError (kBadConfig) on invalid probabilities or a
  /// reorder window with max < min.
  WireImpairment(const ImpairmentConfig& config, sim::Rng rng);

  [[nodiscard]] net::WireVerdict on_wire(const net::Packet& p) override;

  [[nodiscard]] std::uint64_t packets_seen() const noexcept {
    return packets_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t reordered() const noexcept { return reordered_; }
  [[nodiscard]] std::uint64_t duplicated() const noexcept {
    return duplicated_;
  }
  [[nodiscard]] const GilbertElliott* loss_channel() const noexcept {
    return loss_ ? &*loss_ : nullptr;
  }

 private:
  ImpairmentConfig config_;
  sim::Rng rng_;
  std::optional<GilbertElliott> loss_;
  std::uint64_t packets_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t duplicated_ = 0;
};

}  // namespace slowcc::fault
