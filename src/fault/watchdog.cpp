#include "fault/watchdog.hpp"

#include <sstream>

#include "sim/error.hpp"

namespace slowcc::fault {

Watchdog::Watchdog(sim::Simulator& sim, WatchdogConfig config)
    : sim_(sim),
      config_(config),
      armed_at_(std::chrono::steady_clock::now()),
      base_events_(sim.events_executed()) {
  if (config_.max_events == 0 && config_.max_wall_seconds <= 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Watchdog",
                        "no budget set (max_events and max_wall_seconds "
                        "both unlimited)");
  }
  if (config_.check_every_events == 0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Watchdog",
                        "check_every_events must be >= 1");
  }
  sim_.set_event_hook(config_.check_every_events, [this] { on_check(); });
}

Watchdog::~Watchdog() { sim_.clear_event_hook(); }

void Watchdog::watch_link(net::Link& link, std::string name) {
  if (name.empty()) {
    name = "link#" + std::to_string(links_.size());
  }
  links_.push_back(WatchedLink{&link, std::move(name)});
}

std::string Watchdog::diagnostic_dump() const {
  std::ostringstream out;
  const std::uint64_t executed = sim_.events_executed() - base_events_;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    armed_at_)
          .count();
  out << "sim clock " << sim_.now().to_string() << "; events executed "
      << executed << " (budget "
      << (config_.max_events == 0 ? std::string("unlimited")
                                  : std::to_string(config_.max_events))
      << "); wall " << wall << "s (budget "
      << (config_.max_wall_seconds <= 0.0
              ? std::string("unlimited")
              : std::to_string(config_.max_wall_seconds) + "s")
      << "); pending events " << sim_.pending_events();
  const auto next = sim_.pending_event_times(8);
  if (!next.empty()) {
    out << "; next at";
    for (const sim::Time& t : next) out << ' ' << t.to_string();
  }
  for (const WatchedLink& w : links_) {
    const net::LinkStats& s = w.link->stats();
    out << "\n  " << w.name << ": " << (w.link->is_up() ? "up" : "DOWN")
        << " arrivals=" << s.arrivals << " departures=" << s.departures
        << " drops=" << s.drops_total()
        << " queued=" << w.link->queue().length_packets()
        << " bytes_delivered=" << s.bytes_delivered;
  }
  return out.str();
}

void Watchdog::on_check() {
  ++checks_;
  const std::uint64_t executed = sim_.events_executed() - base_events_;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    armed_at_)
          .count();

  const bool events_blown =
      config_.max_events != 0 && executed >= config_.max_events;
  const bool wall_blown =
      config_.max_wall_seconds > 0.0 && wall >= config_.max_wall_seconds;
  if (!events_blown && !wall_blown) return;

  triggered_ = true;
  const char* which = events_blown ? "event budget exhausted"
                                   : "wall-clock budget exhausted";
  throw sim::SimError(config_.error_code, "Watchdog",
                      std::string(which) + "; " + diagnostic_dump());
}

}  // namespace slowcc::fault
