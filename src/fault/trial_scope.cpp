#include "fault/trial_scope.hpp"

#include <memory>

#include "fault/watchdog.hpp"
#include "sim/error.hpp"
#include "sim/simulator.hpp"

namespace slowcc::fault {

ScopedTrialDeadline::ScopedTrialDeadline(const TrialDeadlineConfig& config) {
  if (config.max_events == 0 && config.max_wall_seconds <= 0.0 &&
      config.max_bytes == 0) {
    return;
  }
  if (config.check_every_events == 0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ScopedTrialDeadline",
                        "check_every_events must be >= 1");
  }
  sim::Simulator::set_thread_construct_observer(
      [config](sim::Simulator& sim) {
        if (config.max_events != 0) sim.set_event_budget(config.max_events);
        if (config.max_bytes != 0) {
          sim.governor().set_budget(config.max_bytes,
                                    config.watermark_fraction);
        }
        // The wall budget rides on the single event-hook slot; if the
        // scenario already claimed it (its own watchdog), leave it be —
        // the event budget above still bounds the trial exactly.
        if (config.max_wall_seconds > 0.0 && !sim.has_event_hook()) {
          WatchdogConfig wcfg;
          wcfg.max_wall_seconds = config.max_wall_seconds;
          wcfg.check_every_events = config.check_every_events;
          wcfg.error_code = sim::SimErrc::kDeadlineExceeded;
          sim.attach_guard(std::make_shared<Watchdog>(sim, wcfg));
        }
      });
  armed_ = true;
}

ScopedTrialDeadline::~ScopedTrialDeadline() {
  if (armed_) sim::Simulator::set_thread_construct_observer(nullptr);
}

}  // namespace slowcc::fault
