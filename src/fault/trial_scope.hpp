#pragma once

#include <cstdint>

namespace slowcc::fault {

/// Per-trial deadline policy applied to every Simulator a trial builds.
struct TrialDeadlineConfig {
  /// Event budget per Simulator, enforced exactly inside
  /// Simulator::run_until (deterministic). 0 = unlimited.
  std::uint64_t max_events = 0;
  /// Wall-clock budget per Simulator, enforced by a Watchdog attached
  /// to each instance (nondeterministic by nature — a backstop that
  /// turns hung trials into kDeadlineExceeded rows, never a tuning
  /// knob for passing trials). 0 = unlimited.
  double max_wall_seconds = 0.0;
  /// Watchdog check cadence for the wall-clock budget.
  std::uint64_t check_every_events = 1024;
  /// Modeled-memory budget per Simulator, enforced by its
  /// ResourceGovernor (deterministic: the model is a function of live
  /// events/packets/queued bytes, never of real RSS). Crossing
  /// `watermark_fraction` of the budget fires the governor's soft
  /// callback; crossing the budget throws SimError(kResourceExhausted).
  /// 0 = unlimited.
  std::uint64_t max_bytes = 0;
  double watermark_fraction = 0.85;
};

/// RAII guard that arms trial deadlines on the *current thread*: while
/// alive, every sim::Simulator constructed on this thread receives the
/// event budget above and — when a wall budget is set and the hook
/// slot is free — an attached Watchdog throwing
/// SimError(kDeadlineExceeded). Scenario drivers build their Simulators
/// privately, so this ambient hook is the only seam an orchestration
/// layer has; the guard uses Simulator::set_thread_construct_observer
/// and restores the slot on destruction (exception-safe).
///
/// A no-budget config (both limits 0) is valid and arms nothing, so
/// callers can pass a policy through unconditionally.
class ScopedTrialDeadline {
 public:
  explicit ScopedTrialDeadline(const TrialDeadlineConfig& config);
  ~ScopedTrialDeadline();

  ScopedTrialDeadline(const ScopedTrialDeadline&) = delete;
  ScopedTrialDeadline& operator=(const ScopedTrialDeadline&) = delete;

 private:
  bool armed_ = false;
};

}  // namespace slowcc::fault
