#include "fault/gilbert_elliott.hpp"

#include "sim/error.hpp"

namespace slowcc::fault {

namespace {

void check_probability(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "GilbertElliott",
                        std::string(name) + " must be in [0, 1]");
  }
}

}  // namespace

GilbertElliott::GilbertElliott(const GilbertElliottConfig& config,
                               sim::Rng rng)
    : config_(config), rng_(rng), bad_(config.start_bad) {
  check_probability(config_.p_good_to_bad, "p_good_to_bad");
  check_probability(config_.p_bad_to_good, "p_bad_to_good");
  check_probability(config_.loss_good, "loss_good");
  check_probability(config_.loss_bad, "loss_bad");
  if (config_.p_good_to_bad + config_.p_bad_to_good <= 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "GilbertElliott",
                        "transition probabilities must not both be zero");
  }
}

bool GilbertElliott::should_drop() noexcept {
  // One transition draw, then one loss draw, per packet. The draw
  // order is fixed so a given seed yields a reproducible channel.
  if (bad_) {
    if (rng_.chance(config_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng_.chance(config_.p_good_to_bad)) bad_ = true;
  }
  ++packets_;
  const bool drop = rng_.chance(bad_ ? config_.loss_bad : config_.loss_good);
  if (drop) ++drops_;
  return drop;
}

}  // namespace slowcc::fault
