#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace slowcc::fault {

/// One timed action against one link.
struct FaultAction {
  enum class Kind : std::uint8_t {
    kLinkDown,
    kLinkUp,
    kBandwidth,      // set bandwidth to `bps`
    kDelay,          // set propagation delay to `delay`
    kDelayJitter,    // set delay to (first-sample base) ± `jitter`
    kWireModel,      // install `model` (nullptr clears)
  };

  sim::Time at;
  Kind kind = Kind::kLinkDown;
  net::Link* link = nullptr;
  double bps = 0.0;
  sim::Time delay;
  sim::Time jitter;
  net::WireModel* model = nullptr;
};

/// A declarative, inspectable list of timed faults. Build one with the
/// fluent helpers, then hand it to a `FaultInjector` to schedule. The
/// compound helpers (blackout, flap, oscillation, jitter) expand into
/// primitive actions at build time so the schedule is fully visible
/// before the run starts.
class FaultScript {
 public:
  // -- primitives ---------------------------------------------------
  FaultScript& down_at(net::Link& link, sim::Time at);
  FaultScript& up_at(net::Link& link, sim::Time at);
  FaultScript& bandwidth_at(net::Link& link, sim::Time at, double bps);
  FaultScript& delay_at(net::Link& link, sim::Time at, sim::Time delay);
  FaultScript& wire_model_at(net::Link& link, sim::Time at,
                             net::WireModel* model);

  // -- compound faults ----------------------------------------------

  /// Link goes dark at `at` and comes back `duration` later.
  FaultScript& blackout(net::Link& link, sim::Time at, sim::Time duration);

  /// `cycles` repetitions of (down for `down_for`, up for `up_for`)
  /// starting at `start`.
  FaultScript& flap(net::Link& link, sim::Time start, sim::Time down_for,
                    sim::Time up_for, int cycles);

  /// Square-wave bandwidth oscillation: `high_bps` for half a period,
  /// `low_bps` for the other half, `cycles` times from `start`. This
  /// varies the *actual* link, unlike the ON/OFF-CBR emulation the
  /// paper's figures 13-16 use.
  FaultScript& bandwidth_oscillation(net::Link& link, sim::Time start,
                                     sim::Time period, double high_bps,
                                     double low_bps, int cycles);

  /// Every `interval` in [start, end), re-draw the propagation delay
  /// uniformly within ±`amplitude` of the delay the link had when the
  /// jitter window opened (drawn at fire time from the injector's
  /// seeded Rng; clamped at zero).
  FaultScript& delay_jitter(net::Link& link, sim::Time start, sim::Time end,
                            sim::Time interval, sim::Time amplitude);

  [[nodiscard]] const std::vector<FaultAction>& actions() const noexcept {
    return actions_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return actions_.size(); }

 private:
  void push(FaultAction action);

  std::vector<FaultAction> actions_;
};

/// Schedules a `FaultScript` onto a simulator and applies each action
/// when its time comes. Owns the Rng used for jitter draws, so two
/// injectors built with the same seed replay identical fault
/// sequences.
class FaultInjector {
 public:
  explicit FaultInjector(sim::Simulator& sim, std::uint64_t seed = 1);

  /// Schedule every action of `script`. May be called multiple times
  /// (scripts accumulate). Throws sim::SimError (kBadSchedule) if an
  /// action lies in the simulator's past.
  void arm(const FaultScript& script);

  [[nodiscard]] std::uint64_t faults_injected() const noexcept {
    return injected_;
  }

 private:
  void apply(const FaultAction& action);

  sim::Simulator& sim_;
  sim::Rng rng_;
  std::uint64_t injected_ = 0;
  // Base delay per link for jitter: recorded at the first jitter
  // sample so repeated samples jitter around a fixed point instead of
  // random-walking.
  // slowcc-lint: allow(no-unseeded-container-hash) lookup-only map — never iterated or serialized, so address hashing cannot reach results
  std::unordered_map<net::Link*, sim::Time> jitter_base_;
};

}  // namespace slowcc::fault
