#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "sim/error.hpp"
#include "sim/simulator.hpp"

namespace slowcc::fault {

struct WatchdogConfig {
  /// Abort when this many events have executed. 0 = unlimited.
  std::uint64_t max_events = 0;
  /// Abort when this much real (wall-clock) time has elapsed since the
  /// watchdog was armed. 0 = unlimited.
  double max_wall_seconds = 0.0;
  /// How often (in executed events) the budgets are checked. Checking
  /// by event count — not simulated time — is what catches livelocks
  /// where the clock stops advancing.
  std::uint64_t check_every_events = 4096;
  /// Error code carried by the abort. Standalone watchdogs keep the
  /// default; per-trial deadlines (ScopedTrialDeadline) use
  /// kDeadlineExceeded so sweep manifests can tell "this run blew its
  /// own budget" from "the trial harness timed it out".
  sim::SimErrc error_code = sim::SimErrc::kBudgetExceeded;
};

/// Aborts runaway simulations. Installs itself as the simulator's
/// event hook on construction and uninstalls on destruction; when a
/// budget is exceeded it throws sim::SimError (kBudgetExceeded) whose
/// detail carries a diagnostic dump: clock, event counts, the earliest
/// pending event times, and per-link stats for registered links.
class Watchdog {
 public:
  /// Throws sim::SimError (kBadConfig) when no budget is set or the
  /// simulator's hook slot is occupied.
  Watchdog(sim::Simulator& sim, WatchdogConfig config);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Include a link's stats in the diagnostic dump.
  void watch_link(net::Link& link, std::string name = {});

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }
  [[nodiscard]] std::uint64_t checks_performed() const noexcept {
    return checks_;
  }

  /// The dump that would be attached to a budget error right now.
  [[nodiscard]] std::string diagnostic_dump() const;

 private:
  struct WatchedLink {
    net::Link* link;
    std::string name;
  };

  void on_check();

  sim::Simulator& sim_;
  WatchdogConfig config_;
  std::vector<WatchedLink> links_;
  std::chrono::steady_clock::time_point armed_at_;
  std::uint64_t base_events_;
  std::uint64_t checks_ = 0;
  bool triggered_ = false;
};

}  // namespace slowcc::fault
