#include "fault/fault_script.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace slowcc::fault {

namespace {

void require(bool ok, const char* detail) {
  if (!ok) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "FaultScript", detail);
  }
}

}  // namespace

void FaultScript::push(FaultAction action) {
  require(!action.at.is_negative(), "fault time must be >= 0");
  actions_.push_back(action);
}

FaultScript& FaultScript::down_at(net::Link& link, sim::Time at) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kLinkDown;
  a.link = &link;
  push(a);
  return *this;
}

FaultScript& FaultScript::up_at(net::Link& link, sim::Time at) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kLinkUp;
  a.link = &link;
  push(a);
  return *this;
}

FaultScript& FaultScript::bandwidth_at(net::Link& link, sim::Time at,
                                       double bps) {
  require(bps > 0.0, "bandwidth must be positive");
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kBandwidth;
  a.link = &link;
  a.bps = bps;
  push(a);
  return *this;
}

FaultScript& FaultScript::delay_at(net::Link& link, sim::Time at,
                                   sim::Time delay) {
  require(!delay.is_negative(), "propagation delay must be >= 0");
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kDelay;
  a.link = &link;
  a.delay = delay;
  push(a);
  return *this;
}

FaultScript& FaultScript::wire_model_at(net::Link& link, sim::Time at,
                                        net::WireModel* model) {
  FaultAction a;
  a.at = at;
  a.kind = FaultAction::Kind::kWireModel;
  a.link = &link;
  a.model = model;
  push(a);
  return *this;
}

FaultScript& FaultScript::blackout(net::Link& link, sim::Time at,
                                   sim::Time duration) {
  require(duration > sim::Time(), "blackout duration must be > 0");
  down_at(link, at);
  up_at(link, at + duration);
  return *this;
}

FaultScript& FaultScript::flap(net::Link& link, sim::Time start,
                               sim::Time down_for, sim::Time up_for,
                               int cycles) {
  require(cycles >= 1, "flap needs >= 1 cycle");
  require(down_for > sim::Time() && up_for > sim::Time(),
          "flap phases must be > 0");
  sim::Time t = start;
  for (int i = 0; i < cycles; ++i) {
    down_at(link, t);
    up_at(link, t + down_for);
    t += down_for + up_for;
  }
  return *this;
}

FaultScript& FaultScript::bandwidth_oscillation(net::Link& link,
                                                sim::Time start,
                                                sim::Time period,
                                                double high_bps,
                                                double low_bps, int cycles) {
  require(cycles >= 1, "oscillation needs >= 1 cycle");
  require(period > sim::Time(), "oscillation period must be > 0");
  require(high_bps > 0.0 && low_bps > 0.0,
          "oscillation bandwidths must be positive");
  const sim::Time half = sim::Time::nanos(period.as_nanos() / 2);
  require(half > sim::Time(), "oscillation period too short");
  sim::Time t = start;
  for (int i = 0; i < cycles; ++i) {
    bandwidth_at(link, t, high_bps);
    bandwidth_at(link, t + half, low_bps);
    t += period;
  }
  return *this;
}

FaultScript& FaultScript::delay_jitter(net::Link& link, sim::Time start,
                                       sim::Time end, sim::Time interval,
                                       sim::Time amplitude) {
  require(interval > sim::Time(), "jitter interval must be > 0");
  require(end > start, "jitter window must be non-empty");
  require(!amplitude.is_negative(), "jitter amplitude must be >= 0");
  for (sim::Time t = start; t < end; t += interval) {
    FaultAction a;
    a.at = t;
    a.kind = FaultAction::Kind::kDelayJitter;
    a.link = &link;
    a.jitter = amplitude;
    push(a);
  }
  return *this;
}

FaultInjector::FaultInjector(sim::Simulator& sim, std::uint64_t seed)
    : sim_(sim), rng_(seed) {}

void FaultInjector::arm(const FaultScript& script) {
  for (const FaultAction& action : script.actions()) {
    sim_.schedule_at(action.at, [this, action] { apply(action); });
  }
}

void FaultInjector::apply(const FaultAction& action) {
  ++injected_;
  net::Link& link = *action.link;
  switch (action.kind) {
    case FaultAction::Kind::kLinkDown:
      link.set_down();
      break;
    case FaultAction::Kind::kLinkUp:
      link.set_up();
      break;
    case FaultAction::Kind::kBandwidth:
      link.set_bandwidth(action.bps);
      break;
    case FaultAction::Kind::kDelay:
      link.set_propagation_delay(action.delay);
      break;
    case FaultAction::Kind::kDelayJitter: {
      auto [it, inserted] =
          jitter_base_.try_emplace(&link, link.propagation_delay());
      const double amp = action.jitter.as_seconds();
      const double offset = amp > 0.0 ? rng_.uniform(-amp, amp) : 0.0;
      const sim::Time base = it->second;
      sim::Time next = base + sim::Time::seconds(offset);
      if (next.is_negative()) next = sim::Time();
      link.set_propagation_delay(next);
      break;
    }
    case FaultAction::Kind::kWireModel:
      link.set_wire_model(action.model);
      break;
  }
}

}  // namespace slowcc::fault
