#include "fault/invariant_auditor.hpp"

#include <utility>

#include "sim/error.hpp"

namespace slowcc::fault {

InvariantAuditor::InvariantAuditor(sim::Simulator& sim, AuditorConfig config)
    : sim_(sim), config_(config), timer_(sim, [this] { on_tick(); }) {
  if (config_.period <= sim::Time()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "InvariantAuditor",
                        "audit period must be > 0");
  }
}

void InvariantAuditor::watch_link(net::Link& link, std::string name) {
  if (name.empty()) {
    name = "link#" + std::to_string(links_.size());
  }
  links_.push_back(WatchedLink{&link, std::move(name)});
}

void InvariantAuditor::watch_topology(net::Topology& topo,
                                      const std::string& prefix) {
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    watch_link(topo.link(i), prefix + "#" + std::to_string(i));
  }
}

void InvariantAuditor::watch_timer(const sim::Timer& timer, std::string name) {
  if (name.empty()) {
    name = "timer#" + std::to_string(timers_.size());
  }
  timers_.push_back(WatchedTimer{&timer, std::move(name)});
}

void InvariantAuditor::start() {
  last_audit_time_ = sim_.now();
  timer_.schedule_in(config_.period);
}

void InvariantAuditor::stop() { timer_.cancel(); }

void InvariantAuditor::on_tick() {
  check_now();
  timer_.schedule_in(config_.period);
}

void InvariantAuditor::record(std::string violation) {
  ++pass_violations_;
  violations_.push_back(violation);
  if (config_.throw_on_violation) {
    throw sim::SimError(sim::SimErrc::kInvariantViolation, "InvariantAuditor",
                        std::move(violation));
  }
}

std::size_t InvariantAuditor::check_now() {
  ++audits_;
  pass_violations_ = 0;
  const sim::Time now = sim_.now();

  if (now < last_audit_time_) {
    record("clock moved backwards: " + now.to_string() + " < " +
           last_audit_time_.to_string());
  }
  last_audit_time_ = now;

  for (const WatchedLink& w : links_) {
    const net::LinkStats& s = w.link->stats();
    const std::uint64_t queued = w.link->queue().length_packets();
    const std::uint64_t in_tx = w.link->transmitting() ? 1 : 0;
    const std::uint64_t accounted =
        s.departures + s.drops_total() + queued + in_tx;
    if (s.arrivals != accounted) {
      record(w.name + ": packet conservation broken: arrivals=" +
             std::to_string(s.arrivals) + " != departures=" +
             std::to_string(s.departures) + " + drops=" +
             std::to_string(s.drops_total()) + " + queued=" +
             std::to_string(queued) + " + in_tx=" + std::to_string(in_tx));
    }
    if (s.bytes_delivered < 0) {
      record(w.name + ": negative bytes_delivered (" +
             std::to_string(s.bytes_delivered) + ")");
    }
    if (w.link->queue().length_bytes() < 0) {
      record(w.name + ": negative queue byte length");
    }
    if (queued > config_.max_queue_packets) {
      record(w.name + ": queue occupancy " + std::to_string(queued) +
             " exceeds bound " + std::to_string(config_.max_queue_packets));
    }
    if (!w.link->is_up() && (w.link->transmitting() || queued != 0)) {
      record(w.name + ": down link still holds packets (queued=" +
             std::to_string(queued) + ")");
    }
  }

  for (const WatchedTimer& w : timers_) {
    if (w.timer->pending() && w.timer->deadline() < now) {
      record(w.name + ": pending timer deadline " +
             w.timer->deadline().to_string() + " is in the past (now " +
             now.to_string() + ")");
    }
  }

  return pass_violations_;
}

}  // namespace slowcc::fault
