#include "net/packet.hpp"

#include <cstdio>

namespace slowcc::net {

const char* to_string(PacketType type) noexcept {
  switch (type) {
    case PacketType::kData:
      return "DATA";
    case PacketType::kAck:
      return "ACK";
    case PacketType::kRapAck:
      return "RAP-ACK";
    case PacketType::kTfrcData:
      return "TFRC-DATA";
    case PacketType::kTfrcFeedback:
      return "TFRC-FB";
    case PacketType::kTearData:
      return "TEAR-DATA";
    case PacketType::kTearFeedback:
      return "TEAR-FB";
    case PacketType::kCbr:
      return "CBR";
  }
  return "?";
}

std::string Packet::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s flow=%d %d:%d->%d:%d seq=%lld size=%lldB uid=%llu",
                to_string(type), flow, src_node, src_port, dst_node, dst_port,
                static_cast<long long>(seq), static_cast<long long>(size_bytes),
                static_cast<unsigned long long>(uid));
  return buf;
}

}  // namespace slowcc::net
