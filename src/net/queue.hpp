#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.hpp"

namespace slowcc::net {

/// Why a packet was lost (reported to drop monitors). The first three
/// come from queue admission; the last two from the link itself.
enum class DropReason : std::uint8_t {
  kOverflow,    // hard buffer limit
  kEarly,       // active queue management (RED) early drop
  kForced,      // scripted/deterministic drop injected by an experiment
  kLinkDown,    // link was (or went) down: queued and in-flight packets
  kImpairment,  // stochastic wire impairment (e.g. Gilbert-Elliott loss)
};

/// Abstract router queue discipline.
///
/// A queue buffers packets awaiting transmission on a link. `enqueue`
/// either accepts the packet or reports a drop reason; the link turns
/// accepted packets into transmissions in FIFO order via `dequeue`.
/// Implementations must be FIFO in packet order (the paper's scenarios
/// all use FIFO scheduling; RED only decides *admission*).
class Queue {
 public:
  virtual ~Queue() = default;

  /// Try to admit `p`. On success the queue takes ownership and returns
  /// nullopt; on failure returns the drop reason (packet discarded).
  [[nodiscard]] virtual std::optional<DropReason> enqueue(Packet&& p) = 0;

  /// Remove and return the head packet, or nullopt when empty.
  [[nodiscard]] virtual std::optional<Packet> dequeue() = 0;

  [[nodiscard]] virtual std::size_t length_packets() const noexcept = 0;
  [[nodiscard]] virtual std::int64_t length_bytes() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return length_packets() == 0; }
};

}  // namespace slowcc::net
