#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.hpp"
#include "sim/resource.hpp"

namespace slowcc::net {

/// Why a packet was lost (reported to drop monitors). The first three
/// come from queue admission; the last two from the link itself.
enum class DropReason : std::uint8_t {
  kOverflow,    // hard buffer limit
  kEarly,       // active queue management (RED) early drop
  kForced,      // scripted/deterministic drop injected by an experiment
  kLinkDown,    // link was (or went) down: queued and in-flight packets
  kImpairment,  // stochastic wire impairment (e.g. Gilbert-Elliott loss)
};

/// Abstract router queue discipline.
///
/// A queue buffers packets awaiting transmission on a link. `enqueue`
/// either accepts the packet or reports a drop reason; the link turns
/// accepted packets into transmissions in FIFO order via `dequeue`.
/// Implementations must be FIFO in packet order (the paper's scenarios
/// all use FIFO scheduling; RED only decides *admission*).
class Queue {
 public:
  /// Releases any residue still charged to an attached governor so its
  /// counters balance to zero even when a queue is torn down holding
  /// packets (e.g. a Simulator aborted mid-trial).
  virtual ~Queue() {
    if (governor_ != nullptr && governed_packets_ != 0) {
      governor_->note_packets_released(governed_packets_, governed_bytes_);
    }
  }

  /// Try to admit `p`. On success the queue takes ownership and returns
  /// nullopt; on failure returns the drop reason (packet discarded).
  [[nodiscard]] virtual std::optional<DropReason> enqueue(Packet&& p) = 0;

  /// Remove and return the head packet, or nullopt when empty.
  [[nodiscard]] virtual std::optional<Packet> dequeue() = 0;

  [[nodiscard]] virtual std::size_t length_packets() const noexcept = 0;
  [[nodiscard]] virtual std::int64_t length_bytes() const noexcept = 0;
  [[nodiscard]] bool empty() const noexcept { return length_packets() == 0; }

  /// Report this queue's occupancy to `governor` (nullptr detaches).
  /// Current contents are charged on attach and any residue released on
  /// detach/destruction, so the governor's counters stay balanced
  /// across the queue's whole lifetime. `net::Link` attaches its queue
  /// to the owning Simulator's governor at construction; the governor
  /// must outlive the queue (it does whenever the Simulator is declared
  /// before the topology, the ordering every scenario driver uses).
  void attach_governor(sim::ResourceGovernor* governor) noexcept {
    if (governor_ != nullptr && governed_packets_ != 0) {
      governor_->note_packets_released(governed_packets_, governed_bytes_);
    }
    governor_ = governor;
    governed_packets_ = 0;
    governed_bytes_ = 0;
    if (governor_ != nullptr && length_packets() != 0) {
      governed_packets_ = length_packets();
      governed_bytes_ = static_cast<std::uint64_t>(length_bytes());
      governor_->note_packets_admitted(governed_packets_, governed_bytes_);
    }
  }

  [[nodiscard]] sim::ResourceGovernor* governor() const noexcept {
    return governor_;
  }

 protected:
  /// Implementations call these at the exact points a packet enters or
  /// leaves the buffer (after the admission decision, before/after the
  /// move); no-ops when no governor is attached.
  void note_admitted(std::int64_t bytes) noexcept {
    if (governor_ == nullptr) return;
    ++governed_packets_;
    governed_bytes_ += static_cast<std::uint64_t>(bytes);
    governor_->note_packet_admitted(static_cast<std::uint64_t>(bytes));
  }
  void note_removed(std::int64_t bytes) noexcept {
    if (governor_ == nullptr) return;
    --governed_packets_;
    governed_bytes_ -= static_cast<std::uint64_t>(bytes);
    governor_->note_packet_removed(static_cast<std::uint64_t>(bytes));
  }

 private:
  sim::ResourceGovernor* governor_ = nullptr;
  std::uint64_t governed_packets_ = 0;
  std::uint64_t governed_bytes_ = 0;
};

}  // namespace slowcc::net
