#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/error.hpp"
#include "sim/resource.hpp"

namespace slowcc::net {

/// Why a packet was lost (reported to drop monitors). The first three
/// come from queue admission; the last two from the link itself.
enum class DropReason : std::uint8_t {
  kOverflow,    // hard buffer limit
  kEarly,       // active queue management (RED) early drop
  kForced,      // scripted/deterministic drop injected by an experiment
  kLinkDown,    // link was (or went) down: queued and in-flight packets
  kImpairment,  // stochastic wire impairment (e.g. Gilbert-Elliott loss)
};

/// Abstract router queue discipline.
///
/// A queue buffers packets awaiting transmission on a link, in FIFO
/// order (the paper's scenarios all use FIFO scheduling; RED only
/// decides *admission*). Storage lives here in the base: a ring of
/// PacketHandles sized once to the hard packet limit at construction,
/// so steady-state enqueue/dequeue never allocates — implementations
/// contribute only the `admit` policy.
///
/// Two enqueue/dequeue surfaces share that storage:
///  * the handle API (`enqueue(PacketHandle)` / `dequeue_handle()`)
///    moves nothing — the pooled link path uses it end to end;
///  * the value API (`enqueue(Packet&&)` / `dequeue()`) round-trips
///    through the pool for callers that own packets by value (tests,
///    the scalar link path, standalone experiment queues).
/// On rejection neither surface consumes the packet: the caller's
/// Packet (or handle) stays valid for drop observers.
class Queue {
 public:
  /// Releases any residue still charged to an attached governor — and
  /// any handles still buffered, back to the pool — so both sets of
  /// counters balance to zero even when a queue is torn down holding
  /// packets (e.g. a Simulator aborted mid-trial).
  virtual ~Queue() {
    if (governor_ != nullptr && governed_packets_ != 0) {
      governor_->note_packets_released(governed_packets_, governed_bytes_);
    }
    while (count_ != 0) pool_ref().release(take_front());
  }

  // -- value API ------------------------------------------------------

  /// Try to admit `p`. On success the queue takes ownership and returns
  /// nullopt; on failure returns the drop reason and leaves `p` intact.
  [[nodiscard]] std::optional<DropReason> enqueue(Packet&& p) {
    auto reason = admit(p);
    if (reason.has_value()) return reason;
    const std::int64_t size = p.size_bytes;
    store(pool_ref().acquire(std::move(p)), size);
    return std::nullopt;
  }

  /// Remove and return the head packet, or nullopt when empty.
  [[nodiscard]] std::optional<Packet> dequeue() {
    const PacketHandle h = dequeue_handle();
    if (!h.valid()) return std::nullopt;
    return pool_ref().take(h);
  }

  // -- handle API -----------------------------------------------------

  /// Try to admit the pooled packet behind `h` (admission may mutate
  /// it: RED marks ECN-capable packets instead of dropping). On success
  /// the queue owns the handle; on failure the caller still does — use
  /// it for the drop observers, then release it.
  [[nodiscard]] std::optional<DropReason> enqueue(PacketHandle h) {
    Packet& p = pool_ref().get(h);
    auto reason = admit(p);
    if (reason.has_value()) return reason;
    store(h, p.size_bytes);
    return std::nullopt;
  }

  /// Remove and return the head handle; invalid handle when empty.
  [[nodiscard]] PacketHandle dequeue_handle() {
    if (count_ == 0) return PacketHandle{};
    const PacketHandle h = take_front();
    const std::int64_t size = pool_ref().get(h).size_bytes;
    bytes_ -= size;
    note_removed(size);
    post_dequeue();
    return h;
  }

  [[nodiscard]] std::size_t length_packets() const noexcept { return count_; }
  [[nodiscard]] std::int64_t length_bytes() const noexcept { return bytes_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Hard buffer limit (admission policies reject beyond this).
  [[nodiscard]] std::size_t limit_packets() const noexcept { return limit_; }

  /// Buffer handles in `pool` instead of a private one. The link layer
  /// attaches its simulation's shared pool at construction so handles
  /// pass through untouched; the pool must outlive the queue (it does
  /// whenever components die before their Simulator, the ordering every
  /// scenario driver uses). Only callable while empty — handles cannot
  /// migrate between pools.
  void attach_pool(PacketPool* pool) {
    if (pool != pool_ && count_ != 0) {
      throw sim::SimError(sim::SimErrc::kBadConfig, "Queue",
                          "attach_pool: queue must be empty (buffered "
                          "handles cannot migrate between pools)");
    }
    pool_ = pool;
    if (pool_ != nullptr) owned_pool_.reset();
  }

  [[nodiscard]] PacketPool* pool() const noexcept { return pool_; }

  /// Report this queue's occupancy to `governor` (nullptr detaches).
  /// Current contents are charged on attach and any residue released on
  /// detach/destruction, so the governor's counters stay balanced
  /// across the queue's whole lifetime. `net::Link` attaches its queue
  /// to the owning Simulator's governor at construction; the governor
  /// must outlive the queue (it does whenever the Simulator is declared
  /// before the topology, the ordering every scenario driver uses).
  void attach_governor(sim::ResourceGovernor* governor) noexcept {
    if (governor_ != nullptr && governed_packets_ != 0) {
      governor_->note_packets_released(governed_packets_, governed_bytes_);
    }
    governor_ = governor;
    governed_packets_ = 0;
    governed_bytes_ = 0;
    if (governor_ != nullptr && length_packets() != 0) {
      governed_packets_ = length_packets();
      governed_bytes_ = static_cast<std::uint64_t>(length_bytes());
      governor_->note_packets_admitted(governed_packets_, governed_bytes_);
    }
  }

  [[nodiscard]] sim::ResourceGovernor* governor() const noexcept {
    return governor_;
  }

 protected:
  /// `limit_packets` is the buffer size including the packet currently
  /// being serialized; must be >= 1 (validated by implementations).
  /// The handle ring starts small and doubles toward the limit as the
  /// buffer fills, so queues configured with pathological limits (the
  /// membomb self-test uses 2^30) cost memory proportional to their
  /// actual occupancy, never their configured ceiling.
  explicit Queue(std::size_t limit_packets)
      : limit_(limit_packets),
        ring_(std::min<std::size_t>(limit_packets, kInitialRing)) {}

  /// The admission policy: nullopt admits `p` (which may be mutated —
  /// ECN marking), a reason rejects it untouched. Called exactly once
  /// per enqueue on either surface, so policies that consume randomness
  /// (RED) behave identically whichever surface the caller uses.
  [[nodiscard]] virtual std::optional<DropReason> admit(Packet& p) = 0;

  /// Invoked after each successful dequeue (RED tracks when the buffer
  /// goes idle).
  virtual void post_dequeue() {}

  /// Implementations call these at the exact points a packet enters or
  /// leaves the buffer (after the admission decision); no-ops when no
  /// governor is attached.
  void note_admitted(std::int64_t bytes) noexcept {
    if (governor_ == nullptr) return;
    ++governed_packets_;
    governed_bytes_ += static_cast<std::uint64_t>(bytes);
    governor_->note_packet_admitted(static_cast<std::uint64_t>(bytes));
  }
  void note_removed(std::int64_t bytes) noexcept {
    if (governor_ == nullptr) return;
    --governed_packets_;
    governed_bytes_ -= static_cast<std::uint64_t>(bytes);
    governor_->note_packet_removed(static_cast<std::uint64_t>(bytes));
  }

 private:
  void store(PacketHandle h, std::int64_t size_bytes) {
    if (count_ == ring_.size()) grow();
    ring_[(head_ + count_) % ring_.size()] = h;
    ++count_;
    bytes_ += size_bytes;
    note_admitted(size_bytes);
  }
  void grow() {
    // Doubling toward the limit: O(log limit) growths over the queue's
    // lifetime, after which steady-state enqueue/dequeue is alloc-free.
    const std::size_t next =
        std::min(limit_, std::max<std::size_t>(ring_.size() * 2, kInitialRing));
    if (next <= ring_.size()) {
      throw sim::SimError(sim::SimErrc::kInvariantViolation, "Queue",
                          "store: buffer full past the admission limit");
    }
    // slowcc-lint: allow(no-hot-path-alloc) amortized warm-up growth,
    // bounded by the configured limit
    std::vector<PacketHandle> bigger(next);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = ring_[(head_ + i) % ring_.size()];
    }
    ring_ = std::move(bigger);
    head_ = 0;
  }
  [[nodiscard]] PacketHandle take_front() noexcept {
    const PacketHandle h = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return h;
  }
  [[nodiscard]] PacketPool& pool_ref() {
    if (pool_ == nullptr) {
      // One-time lazy setup for standalone queues (tests, membomb);
      // link-owned queues get the simulation pool attached at
      // construction and never reach this branch.
      owned_pool_ = std::make_unique<PacketPool>();  // slowcc-lint: allow(no-hot-path-alloc) first-use setup, once per standalone queue
      pool_ = owned_pool_.get();
    }
    return *pool_;
  }

  // Circular FIFO of handles; doubles toward limit_ as the buffer
  // fills, then steady-state admission never grows anything.
  static constexpr std::size_t kInitialRing = 64;
  std::size_t limit_;
  std::vector<PacketHandle> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::int64_t bytes_ = 0;
  // Standalone queues (tests, membomb experiments) buffer into a lazily
  // created private pool; link-owned queues share the simulation's.
  std::unique_ptr<PacketPool> owned_pool_;
  PacketPool* pool_ = nullptr;
  sim::ResourceGovernor* governor_ = nullptr;
  std::uint64_t governed_packets_ = 0;
  std::uint64_t governed_bytes_ = 0;
};

}  // namespace slowcc::net
