#include "net/packet_pool.hpp"

#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "sim/error.hpp"
#include "sim/simulator.hpp"

namespace slowcc::net {
namespace {

// Per-thread override so sweep workers and the differential tests can
// pin a path without affecting concurrently running simulations.
thread_local std::optional<PacketPath> t_path_override;

PacketPath env_packet_path() noexcept {
  // Read SLOWCC_PACKET_PATH once; an unknown value falls back to the
  // pooled path rather than failing, because this is a tuning knob,
  // not config.
  static const PacketPath path = [] {
    const char* env = std::getenv("SLOWCC_PACKET_PATH");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) {
      return PacketPath::kScalar;
    }
    return PacketPath::kPooled;
  }();
  return path;
}

// One pool per (thread, Simulator). A flat vector scanned linearly:
// a thread runs a handful of simulators at a time (usually one), and
// entries are erased by the guard attached to each Simulator, so the
// list never outgrows the live-simulator count.
struct PoolEntry {
  sim::Simulator* sim;
  std::unique_ptr<PacketPool> pool;
};
thread_local std::vector<PoolEntry> t_pools;

void forget_pool(sim::Simulator* sim) noexcept {
  for (std::size_t i = 0; i < t_pools.size(); ++i) {
    if (t_pools[i].sim == sim) {
      t_pools.erase(t_pools.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

}  // namespace

const char* packet_path_name(PacketPath path) noexcept {
  switch (path) {
    case PacketPath::kScalar:
      return "scalar";
    case PacketPath::kPooled:
      return "pooled";
  }
  return "unknown";
}

PacketPath default_packet_path() noexcept {
  if (t_path_override.has_value()) return *t_path_override;
  return env_packet_path();
}

void set_thread_packet_path(PacketPath path) noexcept {
  t_path_override = path;
}

void clear_thread_packet_path() noexcept { t_path_override.reset(); }

PacketPool& PacketPool::of(sim::Simulator& sim) {
  for (PoolEntry& e : t_pools) {
    if (e.sim == &sim) return *e.pool;
  }
  t_pools.push_back(PoolEntry{&sim, std::make_unique<PacketPool>()});
  PacketPool& pool = *t_pools.back().pool;
  // The guard unregisters the pool at the head of ~Simulator — after
  // every component (links, queues, agents) has died, because they are
  // always declared after the Simulator they reference.
  sim::Simulator* key = &sim;
  sim.attach_guard(std::shared_ptr<void>(
      static_cast<void*>(key),
      [](void* s) { forget_pool(static_cast<sim::Simulator*>(s)); }));
  return pool;
}

void PacketPool::throw_stale(PacketHandle h, const char* op) const {
  throw sim::SimError(
      sim::SimErrc::kInvariantViolation, "PacketPool",
      std::string(op) + ": stale packet handle (slot " +
          std::to_string(h.slot) + ", gen " + std::to_string(h.gen) +
          ") — released, recycled, or from another pool");
}

PacketPool::Slot& PacketPool::live_slot(PacketHandle h, const char* op) {
  if (h.slot >= capacity()) throw_stale(h, op);
  Slot& s = slot_at(h.slot);
  if (!s.live || s.gen != h.gen) throw_stale(h, op);
  return s;
}

bool PacketPool::is_live(PacketHandle h) const noexcept {
  if (h.slot >= capacity()) return false;
  const Slot& s = slot_at(h.slot);
  return s.live && s.gen == h.gen;
}

void PacketPool::add_chunk() {
  const std::size_t base = capacity();
  if (base + kChunkSlots > kMaxSlots) {
    throw sim::SimError(sim::SimErrc::kResourceExhausted, "PacketPool",
                        "pool exceeds " + std::to_string(kMaxSlots) +
                            " slots — packet leak or runaway scenario");
  }
  // Growth happens only when the live high-water mark rises (warm-up);
  // the steady-state acquire/release cycle is free-list swaps.
  // slowcc-lint: allow(no-hot-path-alloc) warm-up growth only; chunked so existing Packet& stay valid
  chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
  Slot* chunk = chunks_.back().get();
  for (std::uint32_t i = kChunkSlots; i-- > 0;) {
    chunk[i].next_free = free_head_;
    free_head_ = static_cast<std::uint32_t>(base) + i;
  }
}

void PacketPool::reserve(std::size_t slots) {
  while (capacity() < slots) add_chunk();
}

PacketHandle PacketPool::acquire(Packet&& p) {
  if (free_head_ == PacketHandle::kInvalidSlot) add_chunk();
  const std::uint32_t idx = free_head_;
  Slot& s = slot_at(idx);
  free_head_ = s.next_free;
  s.next_free = PacketHandle::kInvalidSlot;
  s.live = true;
  s.packet = std::move(p);
  ++live_;
  return PacketHandle{idx, s.gen};
}

Packet PacketPool::take(PacketHandle h) {
  Slot& s = live_slot(h, "take");
  Packet p = std::move(s.packet);
  s.live = false;
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = h.slot;
  --live_;
  return p;
}

void PacketPool::release(PacketHandle h) {
  Slot& s = live_slot(h, "release");
  s.live = false;
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = h.slot;
  --live_;
}

}  // namespace slowcc::net
