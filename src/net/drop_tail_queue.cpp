#include "net/drop_tail_queue.hpp"

#include "sim/error.hpp"

namespace slowcc::net {

DropTailQueue::DropTailQueue(std::size_t limit_packets) : limit_(limit_packets) {
  if (limit_packets == 0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "DropTailQueue",
                        "limit must be >= 1 packet");
  }
}

std::optional<DropReason> DropTailQueue::enqueue(Packet&& p) {
  if (buffer_.size() >= limit_) return DropReason::kOverflow;
  bytes_ += p.size_bytes;
  note_admitted(p.size_bytes);
  buffer_.push_back(std::move(p));
  return std::nullopt;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (buffer_.empty()) return std::nullopt;
  Packet p = std::move(buffer_.front());
  buffer_.pop_front();
  bytes_ -= p.size_bytes;
  note_removed(p.size_bytes);
  return p;
}

}  // namespace slowcc::net
