#include "net/drop_tail_queue.hpp"

#include "sim/error.hpp"

namespace slowcc::net {

DropTailQueue::DropTailQueue(std::size_t limit_packets)
    : Queue(limit_packets) {
  if (limit_packets == 0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "DropTailQueue",
                        "limit must be >= 1 packet");
  }
}

std::optional<DropReason> DropTailQueue::admit(Packet& /*p*/) {
  if (length_packets() >= limit_packets()) return DropReason::kOverflow;
  return std::nullopt;
}

}  // namespace slowcc::net
