#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace slowcc::net {

class Node;

/// Observer hooks for per-link instrumentation (loss monitors,
/// throughput monitors, traces). Observers must outlive the link.
class LinkObserver {
 public:
  virtual ~LinkObserver() = default;
  /// A packet arrived at the link (before the admission decision).
  virtual void on_arrival(const Packet& /*p*/) {}
  /// The packet was rejected (queue drop or scripted loss).
  virtual void on_drop(const Packet& /*p*/, DropReason /*reason*/) {}
  /// The packet finished serialization and left toward the peer.
  virtual void on_depart(const Packet& /*p*/) {}
};

/// Running totals a link keeps about itself.
struct LinkStats {
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_early = 0;
  std::uint64_t drops_forced = 0;
  std::int64_t bytes_delivered = 0;

  [[nodiscard]] std::uint64_t drops_total() const noexcept {
    return drops_overflow + drops_early + drops_forced;
  }
};

/// A unidirectional serial link: queue -> transmitter -> wire.
///
/// Serialization takes `size * 8 / bandwidth`; the packet then
/// propagates for `delay` before being delivered to the destination
/// node. Self-clocking of window-based transports emerges from these
/// two stages, exactly as on a real path.
class Link {
 public:
  Link(sim::Simulator& sim, Node& from, Node& to, double bandwidth_bps,
       sim::Time propagation_delay, std::unique_ptr<Queue> queue);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offer a packet for transmission (called by the upstream node).
  void send(Packet&& p);

  [[nodiscard]] double bandwidth_bps() const noexcept { return bandwidth_; }
  [[nodiscard]] sim::Time propagation_delay() const noexcept { return delay_; }
  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Queue& queue() noexcept { return *queue_; }
  [[nodiscard]] const Queue& queue() const noexcept { return *queue_; }
  [[nodiscard]] Node& from() noexcept { return from_; }
  [[nodiscard]] Node& to() noexcept { return to_; }

  void add_observer(LinkObserver* observer) { observers_.push_back(observer); }

  /// Install a deterministic drop filter, used by the smoothness
  /// experiments to impose scripted loss patterns. Returning true
  /// drops the packet before it reaches the queue.
  void set_forced_drop_filter(std::function<bool(const Packet&)> filter) {
    forced_drop_ = std::move(filter);
  }

 private:
  void start_transmission();
  void on_transmit_complete(Packet&& p);

  sim::Simulator& sim_;
  Node& from_;
  Node& to_;
  double bandwidth_;
  sim::Time delay_;
  std::unique_ptr<Queue> queue_;
  std::vector<LinkObserver*> observers_;
  std::function<bool(const Packet&)> forced_drop_;
  LinkStats stats_;
  bool busy_ = false;
};

}  // namespace slowcc::net
