#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_filter.hpp"
#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace slowcc::net {

class Node;
class Link;

/// Observer hooks for per-link instrumentation (loss monitors,
/// throughput monitors, traces). Observers must outlive the link or
/// detach with `Link::remove_observer` first.
class LinkObserver {
 public:
  virtual ~LinkObserver() = default;
  /// A packet arrived at the link (before the admission decision).
  virtual void on_arrival(const Packet& /*p*/) {}
  /// The packet was rejected (queue drop, scripted loss, down link,
  /// or wire impairment).
  virtual void on_drop(const Packet& /*p*/, DropReason /*reason*/) {}
  /// The packet finished serialization and left toward the peer.
  virtual void on_depart(const Packet& /*p*/) {}
  /// The link's operating parameters changed (bandwidth, propagation
  /// delay, or up/down state). Inspect the link for the new values.
  virtual void on_state_change(const Link& /*link*/) {}
};

/// Verdict of a wire impairment model for one departing packet.
struct WireVerdict {
  bool drop = false;          // lose the packet on the wire
  bool duplicate = false;     // deliver a second copy as well
  sim::Time extra_delay;      // added propagation delay (reordering)
  sim::Time duplicate_delay;  // additional delay of the duplicate copy
};

/// Stochastic impairment applied between serialization and delivery:
/// bursty loss, reordering, duplication. `fault::WireImpairment` is
/// the standard implementation; tests may supply their own.
class WireModel {
 public:
  virtual ~WireModel() = default;
  [[nodiscard]] virtual WireVerdict on_wire(const Packet& p) = 0;
};

/// Running totals a link keeps about itself.
struct LinkStats {
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_early = 0;
  std::uint64_t drops_forced = 0;
  std::uint64_t drops_link_down = 0;
  std::uint64_t drops_impairment = 0;
  std::uint64_t duplicates = 0;  // extra copies injected on the wire
  std::uint64_t reordered = 0;   // packets delivered with extra wire delay
  std::int64_t bytes_delivered = 0;

  [[nodiscard]] std::uint64_t drops_total() const noexcept {
    return drops_overflow + drops_early + drops_forced + drops_link_down +
           drops_impairment;
  }

  friend bool operator==(const LinkStats&, const LinkStats&) = default;
};

/// A unidirectional serial link: queue -> transmitter -> wire.
///
/// Serialization takes `size * 8 / bandwidth`; the packet then
/// propagates for `delay` before being delivered to the destination
/// node. Self-clocking of window-based transports emerges from these
/// two stages, exactly as on a real path.
///
/// Links are dynamic: bandwidth, propagation delay, and up/down state
/// may change mid-run (see the `fault::FaultInjector`). Semantics:
///  * `set_bandwidth` re-times the packet currently in the
///    transmitter — its already-serialized fraction is kept and the
///    remaining bytes continue at the new rate.
///  * `set_propagation_delay` applies to departures after the change;
///    packets already propagating keep the delay they left with.
///  * `set_down` drops the in-flight packet and the whole queue with
///    `DropReason::kLinkDown` and rejects arrivals until `set_up`.
///    Packets already propagating were past the failure point and
///    still deliver.
///
/// Each link runs one of two packet paths, fixed at construction from
/// `default_packet_path()` (DESIGN.md §14):
///  * pooled (default): packets live in the simulation's PacketPool and
///    move as 8-byte handles; back-to-back departures on a saturated
///    link coalesce into one batched drain chain (a sim::ChainedEvent
///    re-armed in place per packet instead of one engine event each),
///    and in-flight deliveries ride a per-link propagation FIFO fronted
///    by a second chain — one armed chain emits the whole pipeline,
///    N packets per scheduler interaction, with an engine fallback for
///    the rare non-FIFO cases (wire extra delays, duplicates, a
///    propagation delay shrunk mid-flight).
///  * scalar: the pre-refactor value-semantics path, one engine event
///    per departure — the differential-test oracle and bench baseline.
/// Both paths mint identical (at, seq) event streams, so trace digests
/// and golden traces are path-independent.
class Link {
 public:
  Link(sim::Simulator& sim, Node& from, Node& to, double bandwidth_bps,
       sim::Time propagation_delay, std::unique_ptr<Queue> queue);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Disarms the drain chain and returns the in-flight packet to the
  /// pool (links always die before the Simulator they reference).
  ~Link();

  /// Offer a packet for transmission (called by the upstream node).
  void send(Packet&& p);

  /// Offer a pooled packet for transmission (the handle-based fast
  /// path an upstream Node forwards along). Ownership of `h` passes to
  /// the link on admission; on drop the link releases it.
  void send(PacketHandle h);

  [[nodiscard]] double bandwidth_bps() const noexcept { return bandwidth_; }
  [[nodiscard]] sim::Time propagation_delay() const noexcept { return delay_; }
  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Queue& queue() noexcept { return *queue_; }
  [[nodiscard]] const Queue& queue() const noexcept { return *queue_; }
  [[nodiscard]] Node& from() noexcept { return from_; }
  [[nodiscard]] Node& to() noexcept { return to_; }

  // -- dynamic reconfiguration (fault injection) --------------------

  /// Change the serialization rate; must be > 0. Takes effect
  /// immediately: an in-flight packet's remaining bytes are re-timed
  /// at the new rate.
  void set_bandwidth(double bandwidth_bps);

  /// Change the propagation delay; must be >= 0. Applies to packets
  /// departing after the change.
  void set_propagation_delay(sim::Time delay);

  /// Take the link down (see class comment). Idempotent.
  void set_down();

  /// Restore a downed link. Idempotent.
  void set_up();

  [[nodiscard]] bool is_up() const noexcept { return up_; }

  /// Which packet path this link runs (fixed at construction).
  [[nodiscard]] PacketPath packet_path() const noexcept { return path_; }

  /// True while a packet occupies the transmitter.
  [[nodiscard]] bool transmitting() const noexcept {
    return in_flight_.has_value() || in_flight_h_.valid();
  }

  /// Install a stochastic wire impairment (nullptr clears). The model
  /// must outlive the link or be cleared first; the link does not own
  /// it.
  void set_wire_model(WireModel* model) noexcept { wire_ = model; }
  [[nodiscard]] WireModel* wire_model() const noexcept { return wire_; }

  // -- observers ----------------------------------------------------

  /// Register an observer. Throws `sim::SimError` (kBadConfig) if it
  /// is already registered — double registration would double-count
  /// every monitor's statistics.
  void add_observer(LinkObserver* observer);

  /// Unregister an observer; harmless no-op if it is not registered.
  void remove_observer(LinkObserver* observer);

  /// Install a deterministic drop filter, used by the smoothness
  /// experiments to impose scripted loss patterns. Returning true
  /// drops the packet before it reaches the queue. Accepts any
  /// callable (see PacketFilter); pass {} or nullptr to clear.
  void set_forced_drop_filter(PacketFilter filter) {
    forced_drop_ = std::move(filter);
  }

 private:
  // Pooled delivery closure: 16 bytes, trivially copyable, so
  // scheduling it never leaves std::function's inline buffer.
  struct Deliver {
    Link* link;
    PacketHandle h;
    void operator()() const { link->deliver_pooled(h); }
  };

  // One in-flight delivery in the propagation FIFO: fire time, the seq
  // minted for it (at exactly the scalar schedule point), its handle.
  struct WireEntry {
    sim::Time at;
    std::uint64_t seq = 0;
    PacketHandle h;
  };

  void start_transmission();
  void on_transmit_complete();  // scalar: one engine event per departure
  void drain_step();            // pooled: one chained sub-event per packet
  static void drain_thunk(void* ctx) {
    static_cast<Link*>(ctx)->drain_step();
  }
  void wire_step();             // pooled: deliver the propagation head
  static void wire_thunk(void* ctx) {
    static_cast<Link*>(ctx)->wire_step();
  }
  void depart(PacketHandle h);  // wire verdict + delivery scheduling
  void schedule_delivery(PacketHandle h, sim::Time at);
  void wire_push(const WireEntry& entry);
  [[nodiscard]] WireEntry wire_pop();
  void deliver_pooled(PacketHandle h);
  void drop_packet(const Packet& p, DropReason reason);
  void notify_state_change();

  sim::Simulator& sim_;
  PacketPool& pool_;
  Node& from_;
  Node& to_;
  double bandwidth_;
  sim::Time delay_;
  std::unique_ptr<Queue> queue_;
  std::vector<LinkObserver*> observers_;
  PacketFilter forced_drop_;
  WireModel* wire_ = nullptr;
  LinkStats stats_;
  const PacketPath path_;
  bool up_ = true;

  // Transmitter state, kept here (not in an event closure) so
  // bandwidth changes and link failures can re-time or drop it.
  // Scalar path: the packet by value + its completion event. Pooled
  // path: the packet's handle + the drain chain, armed exactly while
  // a packet occupies the transmitter.
  std::optional<Packet> in_flight_;
  PacketHandle in_flight_h_;
  sim::EventId tx_event_;
  sim::ChainedEvent chain_;
  bool chain_armed_ = false;
  sim::Time tx_ends_;

  // Propagation pipeline (pooled path): a circular FIFO of in-flight
  // deliveries fronted by one chain armed at the head's (at, seq).
  // Kept fire-time-monotonic by construction — a delivery that would
  // land before the current tail (propagation delay shrunk mid-flight,
  // wire-model extra delay) falls back to an engine event instead.
  std::vector<WireEntry> wire_ring_;
  std::size_t wire_head_ = 0;
  std::size_t wire_count_ = 0;
  sim::ChainedEvent wire_chain_;
  bool wire_armed_ = false;
};

}  // namespace slowcc::net
