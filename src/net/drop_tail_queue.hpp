#pragma once

#include "net/queue.hpp"

namespace slowcc::net {

/// Classic FIFO queue with a hard packet-count limit.
class DropTailQueue final : public Queue {
 public:
  /// `limit_packets` is the buffer size including the packet currently
  /// being serialized; must be >= 1.
  explicit DropTailQueue(std::size_t limit_packets);

 protected:
  [[nodiscard]] std::optional<DropReason> admit(Packet& p) override;
};

}  // namespace slowcc::net
