#pragma once

#include <deque>

#include "net/queue.hpp"

namespace slowcc::net {

/// Classic FIFO queue with a hard packet-count limit.
class DropTailQueue final : public Queue {
 public:
  /// `limit_packets` is the buffer size including the packet currently
  /// being serialized; must be >= 1.
  explicit DropTailQueue(std::size_t limit_packets);

  [[nodiscard]] std::optional<DropReason> enqueue(Packet&& p) override;
  [[nodiscard]] std::optional<Packet> dequeue() override;
  [[nodiscard]] std::size_t length_packets() const noexcept override {
    return buffer_.size();
  }
  [[nodiscard]] std::int64_t length_bytes() const noexcept override {
    return bytes_;
  }

  [[nodiscard]] std::size_t limit_packets() const noexcept { return limit_; }

 private:
  std::size_t limit_;
  std::deque<Packet> buffer_;
  std::int64_t bytes_ = 0;
};

}  // namespace slowcc::net
