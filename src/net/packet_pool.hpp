#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace slowcc::sim {
class Simulator;
}

namespace slowcc::net {

/// Which packet hot path links use (DESIGN.md §14).
///  * kPooled (default): packets live in a per-Simulator PacketPool and
///    flow through queue/link/node as 8-byte handles; back-to-back
///    departures on a saturated link coalesce into one batched drain
///    chain (sim::ChainedEvent).
///  * kScalar: the pre-refactor path — packets move by value and every
///    departure is its own engine event. Kept as the differential-test
///    oracle and the macro-bench baseline.
/// Both paths execute the identical (at, seq) event stream, so trace
/// digests — and therefore every golden — do not depend on the choice.
enum class PacketPath {
  kScalar,
  kPooled,
};

/// Stable path name ("scalar" / "pooled") for reports and bench labels.
[[nodiscard]] const char* packet_path_name(PacketPath path) noexcept;

/// The path a newly constructed Link uses. Resolved as: thread override
/// (set_thread_packet_path) > the SLOWCC_PACKET_PATH environment
/// variable ("scalar" / "pooled", read once) > kPooled.
[[nodiscard]] PacketPath default_packet_path() noexcept;

/// Override the packet path for the calling thread only (sweep workers
/// stay independent). Pair with clear_thread_packet_path(); the
/// differential tests drive whole scenarios through each path this way.
void set_thread_packet_path(PacketPath path) noexcept;
void clear_thread_packet_path() noexcept;

/// Handle to a pooled Packet: slot index + generation counter, 8 bytes,
/// trivially copyable — small enough that a delivery closure capturing
/// {Link*, PacketHandle} fits std::function's inline buffer, so the
/// pooled path schedules deliveries without touching the heap.
///
/// `valid()` means "refers to some slot" (a default-constructed handle
/// does not); whether the slot still holds the same packet is the
/// pool's call — PacketPool::is_live rejects stale generations, which
/// is what makes use-after-release (ABA reuse) detectable instead of
/// silently reading someone else's packet.
struct PacketHandle {
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

  std::uint32_t slot = kInvalidSlot;
  std::uint32_t gen = 0;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return slot != kInvalidSlot;
  }
  constexpr bool operator==(const PacketHandle&) const noexcept = default;
};

/// Generation-counted free-list pool of Packets (the wheel scheduler's
/// node-pool idiom applied to the packet path).
///
/// Storage is chunked — a vector of fixed 256-slot slabs — so a Packet&
/// returned by get() stays valid across any number of later acquires:
/// growth adds a chunk, it never moves existing slots. After warm-up the
/// acquire/release cycle is pure free-list pointer swaps; the heap is
/// only touched when the live high-water mark grows.
///
/// Handle invariants:
///  * release() bumps the slot generation, so every outstanding handle
///    to the old occupant goes stale; get()/take()/release() on a stale
///    handle throw SimError(kInvariantViolation) — double-free and ABA
///    bugs surface at the exact misuse site.
///  * live() counts acquired-but-unreleased packets; at simulator
///    teardown it must balance to zero (tests cross-check it against
///    the ResourceGovernor's packet counters).
class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// The pool shared by every component of `sim`, created on first use
  /// and destroyed with the Simulator (via an attached guard). Keyed
  /// per thread, so concurrent sweep workers never share a pool.
  [[nodiscard]] static PacketPool& of(sim::Simulator& sim);

  /// Move `p` into a pooled slot. Grows by one chunk when the free
  /// list is empty.
  [[nodiscard]] PacketHandle acquire(Packet&& p);

  /// Access the pooled packet. Throws SimError(kInvariantViolation)
  /// when `h` is stale (released, or its slot was recycled).
  [[nodiscard]] Packet& get(PacketHandle h) {
    return live_slot(h, "get").packet;
  }
  [[nodiscard]] const Packet& get(PacketHandle h) const {
    return const_cast<PacketPool*>(this)->live_slot(h, "get").packet;
  }

  /// Move the packet out and release the slot in one step.
  [[nodiscard]] Packet take(PacketHandle h);

  /// Return the slot to the free list and bump its generation, staling
  /// every outstanding handle to it.
  void release(PacketHandle h);

  /// Whether `h` still refers to the packet it was acquired for.
  [[nodiscard]] bool is_live(PacketHandle h) const noexcept;

  /// Acquired-but-unreleased packets.
  [[nodiscard]] std::size_t live() const noexcept { return live_; }

  /// Total slots across all chunks.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return chunks_.size() * kChunkSlots;
  }

  /// Pre-grow to at least `slots` capacity (warm-up; optional).
  void reserve(std::size_t slots);

 private:
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;  // 256
  static constexpr std::uint32_t kMaxSlots = PacketHandle::kInvalidSlot - 1;

  struct Slot {
    Packet packet;
    std::uint32_t gen = 1;  // bumped on release; stale handles mismatch
    std::uint32_t next_free = PacketHandle::kInvalidSlot;
    bool live = false;
  };

  [[nodiscard]] Slot& slot_at(std::uint32_t idx) noexcept {
    return chunks_[idx >> kChunkShift][idx & (kChunkSlots - 1)];
  }
  [[nodiscard]] const Slot& slot_at(std::uint32_t idx) const noexcept {
    return chunks_[idx >> kChunkShift][idx & (kChunkSlots - 1)];
  }
  [[nodiscard]] Slot& live_slot(PacketHandle h, const char* op);
  void add_chunk();
  [[noreturn]] void throw_stale(PacketHandle h, const char* op) const;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t free_head_ = PacketHandle::kInvalidSlot;
  std::size_t live_ = 0;
};

}  // namespace slowcc::net
