#pragma once

#include <memory>
#include <vector>

#include "net/drop_tail_queue.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/red_queue.hpp"
#include "sim/simulator.hpp"

namespace slowcc::net {

/// Owner of a simulated network graph.
///
/// Builds nodes and (unidirectional) links, then computes static
/// shortest-path routes with BFS. All experiments in this library use
/// dumbbell topologies, but the builder is general.
class Topology {
 public:
  explicit Topology(sim::Simulator& sim) : sim_(sim) {}

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Create a node; the returned reference is stable for the lifetime
  /// of the topology.
  Node& add_node(std::string name = {});

  /// Create a unidirectional link `from -> to`.
  Link& add_link(Node& from, Node& to, double bandwidth_bps,
                 sim::Time propagation_delay, std::unique_ptr<Queue> queue);

  /// Create a pair of links with identical parameters and independent
  /// drop-tail queues of `queue_limit` packets. Returns {forward,
  /// reverse}.
  std::pair<Link*, Link*> add_duplex(Node& a, Node& b, double bandwidth_bps,
                                     sim::Time propagation_delay,
                                     std::size_t queue_limit);

  /// Populate every node's forwarding table with BFS shortest paths
  /// (hop count metric). Must be called after the graph is final and
  /// before traffic starts. Unreachable pairs simply get no route.
  void compute_routes();

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(static_cast<std::size_t>(id)); }

  /// Links in creation order, so auditors can watch the whole graph.
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }
  [[nodiscard]] Link& link(std::size_t index) { return *links_.at(index); }

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace slowcc::net
