#include "net/topology.hpp"

#include <queue>

namespace slowcc::net {

Node& Topology::add_node(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "n" + std::to_string(id);
  nodes_.push_back(std::make_unique<Node>(id, std::move(name)));
  return *nodes_.back();
}

Link& Topology::add_link(Node& from, Node& to, double bandwidth_bps,
                         sim::Time propagation_delay,
                         std::unique_ptr<Queue> queue) {
  links_.push_back(std::make_unique<Link>(sim_, from, to, bandwidth_bps,
                                          propagation_delay,
                                          std::move(queue)));
  return *links_.back();
}

std::pair<Link*, Link*> Topology::add_duplex(Node& a, Node& b,
                                             double bandwidth_bps,
                                             sim::Time propagation_delay,
                                             std::size_t queue_limit) {
  Link& fwd = add_link(a, b, bandwidth_bps, propagation_delay,
                       std::make_unique<DropTailQueue>(queue_limit));
  Link& rev = add_link(b, a, bandwidth_bps, propagation_delay,
                       std::make_unique<DropTailQueue>(queue_limit));
  return {&fwd, &rev};
}

void Topology::compute_routes() {
  const std::size_t n = nodes_.size();

  // Adjacency: for each node, outgoing links.
  std::vector<std::vector<Link*>> out(n);
  for (auto& l : links_) {
    out[static_cast<std::size_t>(l->from().id())].push_back(l.get());
  }

  // BFS from every destination over reversed edges would be the usual
  // trick, but topologies here are tiny (tens of nodes); a forward BFS
  // per source is simplest and sets next-hop links directly.
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<Link*> first_hop(n, nullptr);
    std::vector<bool> visited(n, false);
    std::queue<std::size_t> frontier;
    visited[src] = true;
    frontier.push(src);
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (Link* l : out[u]) {
        const std::size_t v = static_cast<std::size_t>(l->to().id());
        if (visited[v]) continue;
        visited[v] = true;
        first_hop[v] = (u == src) ? l : first_hop[u];
        frontier.push(v);
      }
    }
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (dst != src && first_hop[dst] != nullptr) {
        nodes_[src]->set_route(static_cast<NodeId>(dst), *first_hop[dst]);
      }
    }
  }
}

}  // namespace slowcc::net
