#pragma once

#include <string>
#include <unordered_map>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"

namespace slowcc::net {

class Link;

/// Anything that terminates packets at a node: transport agents, sinks,
/// traffic generators' receivers.
///
/// Handlers receive the packet by const reference: on the pooled path
/// it aliases the pool slot (released by the Node right after the call
/// returns), on the scalar path the caller's value. Handlers needing
/// the packet beyond the call copy what they keep — in practice they
/// read a few header fields, which is why the zero-copy terminal
/// dispatch is free.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle_packet(const Packet& p) = 0;
};

/// A network node: hosts local handlers (keyed by port) and forwards
/// transit packets via a static forwarding table (keyed by destination
/// node).
///
/// Routing is static and computed once by `Topology::compute_routes`;
/// the paper's scenarios never change topology mid-run (bandwidth
/// changes are modeled by competing traffic, as in the paper).
class Node {
 public:
  explicit Node(NodeId id, std::string name = {})
      : id_(id), name_(std::move(name)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Bind `handler` to a local port. Packets addressed to this node and
  /// port are handed to it. Throws if the port is taken.
  void attach(PortId port, PacketHandler& handler);

  /// Release a port binding (used when short flows finish).
  void detach(PortId port);

  /// Install/replace the outgoing link for packets destined to `dst`.
  void set_route(NodeId dst, Link& out);

  /// Accept a packet arriving at this node: dispatch locally if it is
  /// addressed here, otherwise forward along the route. Packets with no
  /// local handler or no route are counted and discarded (this happens
  /// legitimately when a short web flow has already torn down).
  void deliver(Packet&& p);

  /// Pooled variant: local packets dispatch by reference into the pool
  /// slot and the handle is released; forwarded packets pass the handle
  /// to the next link untouched. Undeliverable handles are released, so
  /// the node never leaks pool slots.
  void deliver(PacketHandle h, PacketPool& pool);

  /// Allocate a node-unique port (monotonically increasing).
  [[nodiscard]] PortId allocate_port() noexcept { return next_port_++; }

  [[nodiscard]] std::uint64_t undeliverable_count() const noexcept {
    return undeliverable_;
  }

 private:
  NodeId id_;
  std::string name_;
  std::unordered_map<PortId, PacketHandler*> handlers_;
  std::unordered_map<NodeId, Link*> routes_;
  PortId next_port_ = 1;
  std::uint64_t undeliverable_ = 0;
};

}  // namespace slowcc::net
