#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "net/packet.hpp"

namespace slowcc::net {

/// Type-erased packet predicate with a devirtualized hot path.
///
/// `Link`'s forced-drop filter used to be a `std::function<bool(const
/// Packet&)>` — a vtable-equivalent indirect call plus potential heap
/// storage sitting on the per-arrival path (the site the
/// no-std-function-hot-path lint rule flagged). This holder keeps the
/// same call-site ergonomics (construct from any callable, including
/// capturing lambdas; assign nullptr/{} to clear) but dispatches
/// through one raw function pointer + context: the owning shared_ptr
/// is touched only at setup/teardown, never per packet.
class PacketFilter {
 public:
  PacketFilter() noexcept = default;
  PacketFilter(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wrap any `bool(const Packet&)`-callable. One allocation here, at
  /// experiment setup; zero on the per-packet path.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, PacketFilter> &&
                std::is_invocable_r_v<bool, std::decay_t<F>&, const Packet&>>>
  PacketFilter(F&& f)  // NOLINT(google-explicit-constructor)
      : owned_(std::make_shared<std::decay_t<F>>(std::forward<F>(f))),
        thunk_([](void* ctx, const Packet& p) {
          return static_cast<bool>(
              (*static_cast<std::decay_t<F>*>(ctx))(p));
        }),
        ctx_(owned_.get()) {}

  [[nodiscard]] explicit operator bool() const noexcept {
    return thunk_ != nullptr;
  }

  [[nodiscard]] bool operator()(const Packet& p) const {
    return thunk_(ctx_, p);
  }

 private:
  std::shared_ptr<void> owned_;  // keeps the callable alive; cold
  bool (*thunk_)(void*, const Packet&) = nullptr;
  void* ctx_ = nullptr;
};

}  // namespace slowcc::net
