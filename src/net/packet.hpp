#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace slowcc::net {

using NodeId = std::int32_t;
using PortId = std::int32_t;
using FlowId = std::int32_t;

constexpr NodeId kInvalidNode = -1;

/// What a packet carries. The simulator is packet-level: payloads are
/// never materialized, only sizes and header fields matter.
enum class PacketType : std::uint8_t {
  kData,          // transport data segment
  kAck,           // cumulative TCP-style acknowledgment
  kRapAck,        // RAP per-packet acknowledgment
  kTfrcData,      // TFRC data segment (carries rtt estimate & seq)
  kTfrcFeedback,  // TFRC receiver report
  kTearData,      // TEAR data segment
  kTearFeedback,  // TEAR receiver rate report
  kCbr,           // constant-bit-rate filler with no transport semantics
};

[[nodiscard]] const char* to_string(PacketType type) noexcept;

/// TFRC receiver report fields (also reused by TEAR with different
/// semantics for `rate`).
struct FeedbackInfo {
  double loss_event_rate = 0.0;  // p, fraction in [0,1]
  double receive_rate = 0.0;     // bytes/sec measured at receiver
  sim::Time echo_timestamp;      // timestamp of the data packet echoed
  sim::Time delay;               // receiver-side processing delay to subtract
  bool loss_seen = false;        // a new loss event occurred this interval
};

/// A simulated packet.
///
/// Plain struct by design (no invariants beyond "filled in by the
/// sender"): agents populate the fields relevant to their type, the
/// network layer reads only `size_bytes`, addressing, and ECN bits.
struct Packet {
  // Addressing.
  NodeId src_node = kInvalidNode;
  NodeId dst_node = kInvalidNode;
  PortId src_port = 0;
  PortId dst_port = 0;
  FlowId flow = 0;

  PacketType type = PacketType::kData;
  std::int64_t size_bytes = 1000;

  // Transport sequencing. For kData this is the segment sequence
  // number; for kAck it is the cumulative "next expected" sequence.
  std::int64_t seq = 0;

  // Timestamps for RTT sampling: senders stamp data packets, receivers
  // echo the stamp in acknowledgments/feedback.
  sim::Time sent_at;
  sim::Time echo;

  // ECN (RFC 3168-style, used when a RED queue marks instead of drops).
  bool ecn_capable = false;
  bool ecn_marked = false;

  // Sender's current RTT estimate (TFRC data packets carry this so the
  // receiver can coalesce losses within one RTT into one loss event).
  sim::Time rtt_estimate;

  // Receiver report payload (valid for kTfrcFeedback / kTearFeedback).
  FeedbackInfo feedback;

  // Globally unique id assigned at send time; used by loss scripts and
  // by debugging traces.
  std::uint64_t uid = 0;

  [[nodiscard]] std::string describe() const;
};

}  // namespace slowcc::net
