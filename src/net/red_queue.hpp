#pragma once

#include "net/queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace slowcc::net {

/// Configuration for Random Early Detection (Floyd & Jacobson 1993).
///
/// The paper's scenarios set `min_thresh` / `max_thresh` to 0.25 / 1.25
/// of the bandwidth-delay product and the hard limit to 2.5 BDP; the
/// scenario layer computes those values and fills this struct.
struct RedConfig {
  std::size_t limit_packets = 60;   // hard buffer limit
  double min_thresh = 5.0;          // packets
  double max_thresh = 15.0;         // packets
  double max_p = 0.10;              // drop probability at max_thresh
  double weight = 0.002;            // EWMA weight w_q
  bool gentle = true;               // ramp max_p..1 over (max, 2*max]
  bool ecn_marking = false;         // mark ECN-capable packets instead
  double mean_packet_size = 1000.0; // bytes, for idle-period estimation
  std::uint64_t seed = 42;          // RNG stream for drop decisions

  /// Fill thresholds from a bandwidth-delay product expressed in
  /// packets, using the paper's 0.25/1.25/2.5 multipliers.
  static RedConfig for_bdp(double bdp_packets);
};

/// RED active queue management over a FIFO buffer.
///
/// Implements the 1993 algorithm: an EWMA of the instantaneous queue
/// (with the idle-time correction that decays the average as if `m`
/// small packets had been transmitted), early drop probability
/// `p_b = max_p (avg - min)/(max - min)` spread out by the inter-drop
/// count `p_a = p_b / (1 - count * p_b)`, the "gentle" extension above
/// `max_thresh`, and optional ECN marking.
///
/// The whole algorithm lives in `admit`: the RNG stream is consumed
/// once per enqueue in call order, so drop decisions are identical
/// whether packets arrive through the value or the handle surface.
class RedQueue final : public Queue {
 public:
  RedQueue(sim::Simulator& sim, const RedConfig& config);

  /// Current EWMA of the queue length in packets (for tests/monitors).
  [[nodiscard]] double average_queue() const noexcept { return avg_; }
  [[nodiscard]] const RedConfig& config() const noexcept { return config_; }

 protected:
  [[nodiscard]] std::optional<DropReason> admit(Packet& p) override;
  void post_dequeue() override {
    if (empty()) {
      idle_ = true;
      idle_since_ = sim_.now();
    }
  }

 private:
  void update_average();
  [[nodiscard]] double drop_probability() const noexcept;

  sim::Simulator& sim_;
  RedConfig config_;
  sim::Rng rng_;

  double avg_ = 0.0;        // EWMA of queue length (packets)
  int count_ = -1;          // packets since last early drop
  sim::Time idle_since_;    // when the queue went empty
  bool idle_ = true;        // queue is empty and link idle
};

}  // namespace slowcc::net
