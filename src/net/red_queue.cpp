#include "net/red_queue.hpp"

#include <cmath>
#include "sim/error.hpp"

namespace slowcc::net {

RedConfig RedConfig::for_bdp(double bdp_packets) {
  RedConfig cfg;
  cfg.min_thresh = 0.25 * bdp_packets;
  cfg.max_thresh = 1.25 * bdp_packets;
  cfg.limit_packets =
      static_cast<std::size_t>(std::max(2.5 * bdp_packets, 4.0));
  return cfg;
}

RedQueue::RedQueue(sim::Simulator& sim, const RedConfig& config)
    : Queue(config.limit_packets),
      sim_(sim),
      config_(config),
      rng_(config.seed) {
  if (config_.limit_packets == 0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "RedQueue",
                        "limit must be >= 1 packet");
  }
  if (!(config_.min_thresh < config_.max_thresh)) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "RedQueue",
                        "requires min_thresh < max_thresh");
  }
  if (config_.max_p <= 0.0 || config_.max_p > 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "RedQueue",
                        "max_p must be in (0, 1]");
  }
  idle_since_ = sim_.now();
}

void RedQueue::update_average() {
  const double q = static_cast<double>(length_packets());
  if (idle_) {
    // The queue has been empty: decay the average as if `m` packets of
    // mean size had drained during the idle period at an assumed
    // service rate of one mean packet per (mean_pkt_size / typical
    // capacity). We follow the common simplification of using the EWMA
    // applied m times with q = 0, where m is the idle time divided by a
    // nominal per-packet service time derived from the mean packet size
    // at 10 Mb/s. Precision here barely matters: the purpose is only
    // that a long-idle queue forgets its history.
    const double service_time_s = config_.mean_packet_size * 8.0 / 10e6;
    const double idle_s = (sim_.now() - idle_since_).as_seconds();
    const double m = std::max(0.0, idle_s / service_time_s);
    avg_ *= std::pow(1.0 - config_.weight, m);
    idle_ = false;
  }
  avg_ = (1.0 - config_.weight) * avg_ + config_.weight * q;
}

double RedQueue::drop_probability() const noexcept {
  const double min_t = config_.min_thresh;
  const double max_t = config_.max_thresh;
  if (avg_ < min_t) return 0.0;
  if (avg_ < max_t) {
    return config_.max_p * (avg_ - min_t) / (max_t - min_t);
  }
  if (config_.gentle && avg_ < 2.0 * max_t) {
    // Gentle RED: ramp linearly from max_p to 1 over (max_t, 2 max_t].
    return config_.max_p + (1.0 - config_.max_p) * (avg_ - max_t) / max_t;
  }
  return 1.0;
}

std::optional<DropReason> RedQueue::admit(Packet& p) {
  update_average();

  if (length_packets() >= config_.limit_packets) {
    count_ = 0;
    return DropReason::kOverflow;
  }

  const double p_b = drop_probability();
  bool drop_or_mark = false;
  if (p_b >= 1.0) {
    drop_or_mark = true;
    count_ = 0;
  } else if (p_b > 0.0) {
    ++count_;
    // Spread drops uniformly across the inter-drop interval.
    const double denom = 1.0 - static_cast<double>(count_) * p_b;
    const double p_a = denom <= 0.0 ? 1.0 : std::min(1.0, p_b / denom);
    if (rng_.chance(p_a)) {
      drop_or_mark = true;
      count_ = 0;
    }
  } else {
    count_ = -1;
  }

  if (drop_or_mark) {
    if (config_.ecn_marking && p.ecn_capable) {
      p.ecn_marked = true;  // mark instead of dropping
    } else {
      return DropReason::kEarly;
    }
  }

  return std::nullopt;
}

}  // namespace slowcc::net
