#include "net/node.hpp"

#include "sim/error.hpp"

#include "net/link.hpp"

namespace slowcc::net {

void Node::attach(PortId port, PacketHandler& handler) {
  auto [it, inserted] = handlers_.emplace(port, &handler);
  if (!inserted) {
    throw sim::SimError(sim::SimErrc::kBadTopology, "Node",
                        "attach: port " + std::to_string(port) +
                            " already bound on node " + std::to_string(id_));
  }
}

void Node::detach(PortId port) { handlers_.erase(port); }

void Node::set_route(NodeId dst, Link& out) { routes_[dst] = &out; }

void Node::deliver(Packet&& p) {
  if (p.dst_node == id_) {
    auto it = handlers_.find(p.dst_port);
    if (it == handlers_.end()) {
      ++undeliverable_;
      return;
    }
    it->second->handle_packet(p);
    return;
  }
  auto it = routes_.find(p.dst_node);
  if (it == routes_.end()) {
    ++undeliverable_;
    return;
  }
  it->second->send(std::move(p));
}

void Node::deliver(PacketHandle h, PacketPool& pool) {
  const Packet& p = pool.get(h);
  if (p.dst_node == id_) {
    auto it = handlers_.find(p.dst_port);
    if (it != handlers_.end()) {
      // Zero-copy terminal dispatch: `p` aliases the pool slot, which
      // stays put even if the handler reentrantly injects new packets
      // (chunked pool storage never moves live slots).
      it->second->handle_packet(p);
    } else {
      ++undeliverable_;
    }
    pool.release(h);
    return;
  }
  auto it = routes_.find(p.dst_node);
  if (it == routes_.end()) {
    ++undeliverable_;
    pool.release(h);
    return;
  }
  it->second->send(h);
}

}  // namespace slowcc::net
