#include "net/link.hpp"

#include <algorithm>
#include <utility>

#include "net/node.hpp"
#include "sim/error.hpp"

namespace slowcc::net {

Link::Link(sim::Simulator& sim, Node& from, Node& to, double bandwidth_bps,
           sim::Time propagation_delay, std::unique_ptr<Queue> queue)
    : sim_(sim),
      from_(from),
      to_(to),
      bandwidth_(bandwidth_bps),
      delay_(propagation_delay),
      queue_(std::move(queue)) {
  if (bandwidth_ <= 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link",
                        "bandwidth must be positive");
  }
  if (delay_.is_negative()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link",
                        "propagation delay must be >= 0");
  }
  if (queue_ == nullptr) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link", "queue is required");
  }
  // Every link-owned queue reports occupancy to the simulation's
  // resource governor; the hooks are no-ops until a budget is armed.
  queue_->attach_governor(&sim_.governor());
}

void Link::drop_packet(const Packet& p, DropReason reason) {
  switch (reason) {
    case DropReason::kOverflow:
      ++stats_.drops_overflow;
      break;
    case DropReason::kEarly:
      ++stats_.drops_early;
      break;
    case DropReason::kForced:
      ++stats_.drops_forced;
      break;
    case DropReason::kLinkDown:
      ++stats_.drops_link_down;
      break;
    case DropReason::kImpairment:
      ++stats_.drops_impairment;
      break;
  }
  for (auto* o : observers_) o->on_drop(p, reason);
}

void Link::send(Packet&& p) {
  ++stats_.arrivals;
  for (auto* o : observers_) o->on_arrival(p);

  if (!up_) {
    drop_packet(p, DropReason::kLinkDown);
    return;
  }

  if (forced_drop_ && forced_drop_(p)) {
    drop_packet(p, DropReason::kForced);
    return;
  }

  if (auto reason = queue_->enqueue(std::move(p))) {
    // NOTE: `p` was moved into enqueue, but Queue implementations only
    // consume the packet on success; on failure they return before
    // moving. To keep the observer payload valid regardless, queues
    // must not touch the packet when rejecting it. DropTail and RED
    // both reject before moving.
    drop_packet(p, *reason);
    return;
  }

  if (!transmitting()) start_transmission();
}

void Link::start_transmission() {
  auto head = queue_->dequeue();
  if (!head) return;
  const sim::Time tx = sim::transmission_time(head->size_bytes, bandwidth_);
  in_flight_ = std::move(*head);
  tx_ends_ = sim_.now() + tx;
  tx_event_ = sim_.schedule_in(tx, [this] { on_transmit_complete(); });
}

void Link::on_transmit_complete() {
  tx_event_ = sim::EventId{};
  Packet p = std::move(*in_flight_);
  in_flight_.reset();

  WireVerdict verdict;
  if (wire_ != nullptr) verdict = wire_->on_wire(p);

  if (verdict.drop) {
    // Lost on the wire after occupying the transmitter: counted as a
    // drop instead of a departure so packet conservation still holds.
    drop_packet(p, DropReason::kImpairment);
  } else {
    ++stats_.departures;
    stats_.bytes_delivered += p.size_bytes;
    for (auto* o : observers_) o->on_depart(p);

    if (verdict.extra_delay > sim::Time()) ++stats_.reordered;
    if (verdict.duplicate) {
      ++stats_.duplicates;
      Packet copy = p;
      sim_.schedule_in(
          delay_ + verdict.extra_delay + verdict.duplicate_delay,
          [this, q = std::move(copy)]() mutable { to_.deliver(std::move(q)); });
    }
    sim_.schedule_in(delay_ + verdict.extra_delay,
                     [this, q = std::move(p)]() mutable {
                       to_.deliver(std::move(q));
                     });
  }

  if (!queue_->empty()) start_transmission();
}

void Link::set_bandwidth(double bandwidth_bps) {
  if (bandwidth_bps <= 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link",
                        "set_bandwidth: bandwidth must be positive");
  }
  if (bandwidth_bps == bandwidth_) return;
  if (transmitting()) {
    // Keep the fraction already serialized; the remaining bits
    // continue at the new rate.
    const double remaining_s = (tx_ends_ - sim_.now()).as_seconds();
    const double remaining_bits = remaining_s * bandwidth_;
    sim_.cancel(tx_event_);
    const sim::Time rem = sim::Time::seconds(remaining_bits / bandwidth_bps);
    tx_ends_ = sim_.now() + rem;
    tx_event_ = sim_.schedule_in(rem, [this] { on_transmit_complete(); });
  }
  bandwidth_ = bandwidth_bps;
  notify_state_change();
}

void Link::set_propagation_delay(sim::Time delay) {
  if (delay.is_negative()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link",
                        "set_propagation_delay: delay must be >= 0");
  }
  if (delay == delay_) return;
  delay_ = delay;
  notify_state_change();
}

void Link::set_down() {
  if (!up_) return;
  up_ = false;
  if (transmitting()) {
    sim_.cancel(tx_event_);
    tx_event_ = sim::EventId{};
    Packet p = std::move(*in_flight_);
    in_flight_.reset();
    drop_packet(p, DropReason::kLinkDown);
  }
  while (auto head = queue_->dequeue()) {
    drop_packet(*head, DropReason::kLinkDown);
  }
  notify_state_change();
}

void Link::set_up() {
  if (up_) return;
  up_ = true;
  notify_state_change();
  if (!transmitting() && !queue_->empty()) start_transmission();
}

void Link::add_observer(LinkObserver* observer) {
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link",
                        "add_observer: observer already registered");
  }
  observers_.push_back(observer);
}

void Link::remove_observer(LinkObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void Link::notify_state_change() {
  for (auto* o : observers_) o->on_state_change(*this);
}

}  // namespace slowcc::net
