#include "net/link.hpp"

#include <algorithm>
#include <utility>

#include "net/node.hpp"
#include "sim/error.hpp"

namespace slowcc::net {

Link::Link(sim::Simulator& sim, Node& from, Node& to, double bandwidth_bps,
           sim::Time propagation_delay, std::unique_ptr<Queue> queue)
    : sim_(sim),
      pool_(PacketPool::of(sim)),
      from_(from),
      to_(to),
      bandwidth_(bandwidth_bps),
      delay_(propagation_delay),
      queue_(std::move(queue)),
      path_(default_packet_path()) {
  if (bandwidth_ <= 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link",
                        "bandwidth must be positive");
  }
  if (delay_.is_negative()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link",
                        "propagation delay must be >= 0");
  }
  if (queue_ == nullptr) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link", "queue is required");
  }
  // Every link-owned queue reports occupancy to the simulation's
  // resource governor; the hooks are no-ops until a budget is armed.
  queue_->attach_governor(&sim_.governor());
  // Buffered handles live in the simulation-wide pool so they pass from
  // arrival through queue to delivery without a copy.
  queue_->attach_pool(&pool_);
  chain_.fire = &Link::drain_thunk;
  chain_.ctx = this;
  wire_chain_.fire = &Link::wire_thunk;
  wire_chain_.ctx = this;
}

Link::~Link() {
  if (chain_armed_) sim_.disarm_chain(&chain_);
  if (wire_armed_) sim_.disarm_chain(&wire_chain_);
  if (in_flight_h_.valid()) pool_.release(in_flight_h_);
  while (wire_count_ != 0) pool_.release(wire_pop().h);
}

void Link::drop_packet(const Packet& p, DropReason reason) {
  switch (reason) {
    case DropReason::kOverflow:
      ++stats_.drops_overflow;
      break;
    case DropReason::kEarly:
      ++stats_.drops_early;
      break;
    case DropReason::kForced:
      ++stats_.drops_forced;
      break;
    case DropReason::kLinkDown:
      ++stats_.drops_link_down;
      break;
    case DropReason::kImpairment:
      ++stats_.drops_impairment;
      break;
  }
  for (auto* o : observers_) o->on_drop(p, reason);
}

void Link::send(Packet&& p) {
  if (path_ == PacketPath::kPooled) {
    send(pool_.acquire(std::move(p)));
    return;
  }
  ++stats_.arrivals;
  for (auto* o : observers_) o->on_arrival(p);

  if (!up_) {
    drop_packet(p, DropReason::kLinkDown);
    return;
  }

  if (forced_drop_ && forced_drop_(p)) {
    drop_packet(p, DropReason::kForced);
    return;
  }

  if (auto reason = queue_->enqueue(std::move(p))) {
    // NOTE: `p` was moved into enqueue, but the queue only consumes the
    // packet on success; on failure it rejects before moving, so the
    // observer payload stays valid.
    drop_packet(p, *reason);
    return;
  }

  if (!transmitting()) start_transmission();
}

void Link::send(PacketHandle h) {
  if (path_ == PacketPath::kScalar) {
    // A pooled upstream forwarding into a scalar link (mixed-mode
    // simulations): fall back to the value path.
    send(pool_.take(h));
    return;
  }
  ++stats_.arrivals;
  {
    const Packet& p = pool_.get(h);
    for (auto* o : observers_) o->on_arrival(p);

    if (!up_) {
      drop_packet(p, DropReason::kLinkDown);
      pool_.release(h);
      return;
    }

    if (forced_drop_ && forced_drop_(p)) {
      drop_packet(p, DropReason::kForced);
      pool_.release(h);
      return;
    }
  }

  if (auto reason = queue_->enqueue(h)) {
    // Rejected handles stay with the caller: report the drop, then
    // return the packet to the pool.
    drop_packet(pool_.get(h), *reason);
    pool_.release(h);
    return;
  }

  if (!transmitting()) start_transmission();
}

void Link::start_transmission() {
  if (path_ == PacketPath::kPooled) {
    const PacketHandle h = queue_->dequeue_handle();
    if (!h.valid()) return;
    const sim::Time tx =
        sim::transmission_time(pool_.get(h).size_bytes, bandwidth_);
    in_flight_h_ = h;
    tx_ends_ = sim_.now() + tx;
    // The drain chain stands in for the transmit-complete event the
    // scalar path would schedule here; minting its seq from the same
    // engine counter keeps the executed (at, seq) stream identical.
    chain_.at = tx_ends_;
    chain_.seq = sim_.mint_event_seq();
    if (!chain_armed_) {
      sim_.arm_chain(&chain_);
      chain_armed_ = true;
    }
    return;
  }
  auto head = queue_->dequeue();
  if (!head) return;
  const sim::Time tx = sim::transmission_time(head->size_bytes, bandwidth_);
  in_flight_ = std::move(*head);
  tx_ends_ = sim_.now() + tx;
  tx_event_ = sim_.schedule_in(tx, [this] { on_transmit_complete(); });
}

void Link::depart(PacketHandle h) {
  // `p` stays valid across the acquire below: the pool's chunked slabs
  // never move existing slots.
  Packet& p = pool_.get(h);

  WireVerdict verdict;
  if (wire_ != nullptr) verdict = wire_->on_wire(p);

  if (verdict.drop) {
    // Lost on the wire after occupying the transmitter: counted as a
    // drop instead of a departure so packet conservation still holds.
    drop_packet(p, DropReason::kImpairment);
    pool_.release(h);
    return;
  }

  ++stats_.departures;
  stats_.bytes_delivered += p.size_bytes;
  for (auto* o : observers_) o->on_depart(p);

  if (verdict.extra_delay > sim::Time()) ++stats_.reordered;
  if (verdict.duplicate) {
    ++stats_.duplicates;
    Packet copy = p;
    const PacketHandle dup = pool_.acquire(std::move(copy));
    sim_.schedule_in(delay_ + verdict.extra_delay + verdict.duplicate_delay,
                     Deliver{this, dup});
  }
  schedule_delivery(h, sim_.now() + delay_ + verdict.extra_delay);
}

void Link::schedule_delivery(PacketHandle h, sim::Time at) {
  if (wire_count_ != 0 &&
      at < wire_ring_[(wire_head_ + wire_count_ - 1) % wire_ring_.size()].at) {
    // Non-FIFO delivery (propagation delay shrunk mid-flight, or a
    // wire-model extra delay shorter than an earlier one): the engine
    // keeps the total order. The schedule mints the seq, exactly as
    // the chain path does explicitly below.
    sim_.schedule_in(at - sim_.now(), Deliver{this, h});
    return;
  }
  // The seq is minted here — the point where the scalar path would
  // have scheduled the delivery event — so the executed (at, seq)
  // stream is bit-identical whichever path carries the delivery.
  const WireEntry entry{at, sim_.mint_event_seq(), h};
  wire_push(entry);
  if (!wire_armed_) {
    wire_chain_.at = entry.at;
    wire_chain_.seq = entry.seq;
    sim_.arm_chain(&wire_chain_);
    wire_armed_ = true;
  }
  wire_chain_.pending = wire_count_;
}

void Link::wire_push(const WireEntry& entry) {
  if (wire_count_ == wire_ring_.size()) {
    // Warm-up growth only: double (16 floor) and re-lay from the head.
    // slowcc-lint: allow(no-hot-path-alloc) ring growth is cold; steady state recycles slots
    std::vector<WireEntry> grown(
        std::max<std::size_t>(16, wire_ring_.size() * 2));
    for (std::size_t i = 0; i < wire_count_; ++i) {
      grown[i] = wire_ring_[(wire_head_ + i) % wire_ring_.size()];
    }
    wire_ring_ = std::move(grown);
    wire_head_ = 0;
  }
  wire_ring_[(wire_head_ + wire_count_) % wire_ring_.size()] = entry;
  ++wire_count_;
}

Link::WireEntry Link::wire_pop() {
  const WireEntry entry = wire_ring_[wire_head_];
  wire_head_ = (wire_head_ + 1) % wire_ring_.size();
  --wire_count_;
  return entry;
}

void Link::wire_step() {
  // Pop and re-arm before delivering: the handler may reentrantly
  // inject traffic, and the chain must already describe the new head
  // (or be disarmed) when it does.
  const WireEntry entry = wire_pop();
  if (wire_count_ != 0) {
    const WireEntry& head = wire_ring_[wire_head_];
    wire_chain_.at = head.at;
    wire_chain_.seq = head.seq;
  } else {
    sim_.disarm_chain(&wire_chain_);
    wire_armed_ = false;
  }
  wire_chain_.pending = wire_count_;
  deliver_pooled(entry.h);
}

void Link::drain_step() {
  // One chained sub-event: finish the in-flight packet, then either
  // re-arm the chain in place for the next queued packet or let it go
  // quiet. The (at, seq) this step executed under were minted when the
  // packet entered the transmitter, exactly where the scalar path
  // scheduled its transmit-complete event.
  const PacketHandle h = in_flight_h_;
  in_flight_h_ = PacketHandle{};
  depart(h);

  // A nested set_down() (from a drop/depart observer) may have drained
  // the queue and disarmed the chain; a nested set_up()+send may even
  // have restarted transmission. Only continue the burst when the
  // transmitter is genuinely free.
  if (up_ && !transmitting() && !queue_->empty()) {
    start_transmission();  // re-arms / re-times the chain in place
  } else if (chain_armed_ && !transmitting()) {
    sim_.disarm_chain(&chain_);
    chain_armed_ = false;
  }
}

void Link::deliver_pooled(PacketHandle h) { to_.deliver(h, pool_); }

void Link::on_transmit_complete() {
  tx_event_ = sim::EventId{};
  Packet p = std::move(*in_flight_);
  in_flight_.reset();

  WireVerdict verdict;
  if (wire_ != nullptr) verdict = wire_->on_wire(p);

  if (verdict.drop) {
    // Lost on the wire after occupying the transmitter: counted as a
    // drop instead of a departure so packet conservation still holds.
    drop_packet(p, DropReason::kImpairment);
  } else {
    ++stats_.departures;
    stats_.bytes_delivered += p.size_bytes;
    for (auto* o : observers_) o->on_depart(p);

    if (verdict.extra_delay > sim::Time()) ++stats_.reordered;
    if (verdict.duplicate) {
      ++stats_.duplicates;
      Packet copy = p;
      sim_.schedule_in(
          delay_ + verdict.extra_delay + verdict.duplicate_delay,
          [this, q = std::move(copy)]() mutable { to_.deliver(std::move(q)); });
    }
    sim_.schedule_in(delay_ + verdict.extra_delay,
                     [this, q = std::move(p)]() mutable {
                       to_.deliver(std::move(q));
                     });
  }

  if (!queue_->empty()) start_transmission();
}

void Link::set_bandwidth(double bandwidth_bps) {
  if (bandwidth_bps <= 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link",
                        "set_bandwidth: bandwidth must be positive");
  }
  if (bandwidth_bps == bandwidth_) return;
  if (transmitting()) {
    // Keep the fraction already serialized; the remaining bits
    // continue at the new rate.
    const double remaining_s = (tx_ends_ - sim_.now()).as_seconds();
    const double remaining_bits = remaining_s * bandwidth_;
    const sim::Time rem = sim::Time::seconds(remaining_bits / bandwidth_bps);
    tx_ends_ = sim_.now() + rem;
    if (path_ == PacketPath::kPooled) {
      // Re-time the chain in place. The seq is re-minted because the
      // scalar path cancels + reschedules here — same counter draw.
      chain_.at = tx_ends_;
      chain_.seq = sim_.mint_event_seq();
    } else {
      sim_.cancel(tx_event_);
      tx_event_ = sim_.schedule_in(rem, [this] { on_transmit_complete(); });
    }
  }
  bandwidth_ = bandwidth_bps;
  notify_state_change();
}

void Link::set_propagation_delay(sim::Time delay) {
  if (delay.is_negative()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link",
                        "set_propagation_delay: delay must be >= 0");
  }
  if (delay == delay_) return;
  delay_ = delay;
  notify_state_change();
}

void Link::set_down() {
  if (!up_) return;
  up_ = false;
  if (transmitting()) {
    if (path_ == PacketPath::kPooled) {
      sim_.disarm_chain(&chain_);
      chain_armed_ = false;
      const PacketHandle h = in_flight_h_;
      in_flight_h_ = PacketHandle{};
      drop_packet(pool_.get(h), DropReason::kLinkDown);
      pool_.release(h);
    } else {
      sim_.cancel(tx_event_);
      tx_event_ = sim::EventId{};
      Packet p = std::move(*in_flight_);
      in_flight_.reset();
      drop_packet(p, DropReason::kLinkDown);
    }
  }
  while (auto head = queue_->dequeue()) {
    drop_packet(*head, DropReason::kLinkDown);
  }
  notify_state_change();
}

void Link::set_up() {
  if (up_) return;
  up_ = true;
  notify_state_change();
  if (!transmitting() && !queue_->empty()) start_transmission();
}

void Link::add_observer(LinkObserver* observer) {
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "Link",
                        "add_observer: observer already registered");
  }
  observers_.push_back(observer);
}

void Link::remove_observer(LinkObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void Link::notify_state_change() {
  for (auto* o : observers_) o->on_state_change(*this);
}

}  // namespace slowcc::net
