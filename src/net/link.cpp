#include "net/link.hpp"

#include <stdexcept>
#include <utility>

#include "net/node.hpp"

namespace slowcc::net {

Link::Link(sim::Simulator& sim, Node& from, Node& to, double bandwidth_bps,
           sim::Time propagation_delay, std::unique_ptr<Queue> queue)
    : sim_(sim),
      from_(from),
      to_(to),
      bandwidth_(bandwidth_bps),
      delay_(propagation_delay),
      queue_(std::move(queue)) {
  if (bandwidth_ <= 0.0) {
    throw std::invalid_argument("Link: bandwidth must be positive");
  }
  if (delay_.is_negative()) {
    throw std::invalid_argument("Link: propagation delay must be >= 0");
  }
  if (queue_ == nullptr) {
    throw std::invalid_argument("Link: queue is required");
  }
}

void Link::send(Packet&& p) {
  ++stats_.arrivals;
  for (auto* o : observers_) o->on_arrival(p);

  if (forced_drop_ && forced_drop_(p)) {
    ++stats_.drops_forced;
    for (auto* o : observers_) o->on_drop(p, DropReason::kForced);
    return;
  }

  if (auto reason = queue_->enqueue(std::move(p))) {
    switch (*reason) {
      case DropReason::kOverflow:
        ++stats_.drops_overflow;
        break;
      case DropReason::kEarly:
        ++stats_.drops_early;
        break;
      case DropReason::kForced:
        ++stats_.drops_forced;
        break;
    }
    // NOTE: `p` was moved into enqueue, but Queue implementations only
    // consume the packet on success; on failure they return before
    // moving. To keep the observer payload valid regardless, queues
    // must not touch the packet when rejecting it. DropTail and RED
    // both reject before moving.
    for (auto* o : observers_) o->on_drop(p, *reason);
    return;
  }

  if (!busy_) start_transmission();
}

void Link::start_transmission() {
  auto head = queue_->dequeue();
  if (!head) return;
  busy_ = true;
  const sim::Time tx = sim::transmission_time(head->size_bytes, bandwidth_);
  sim_.schedule_in(tx, [this, p = std::move(*head)]() mutable {
    on_transmit_complete(std::move(p));
  });
}

void Link::on_transmit_complete(Packet&& p) {
  ++stats_.departures;
  stats_.bytes_delivered += p.size_bytes;
  for (auto* o : observers_) o->on_depart(p);

  sim_.schedule_in(delay_, [this, p = std::move(p)]() mutable {
    to_.deliver(std::move(p));
  });

  busy_ = false;
  if (!queue_->empty()) start_transmission();
}

}  // namespace slowcc::net
