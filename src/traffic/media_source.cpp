#include "traffic/media_source.hpp"

#include "sim/error.hpp"

namespace slowcc::traffic {

namespace {

[[noreturn]] void bad(const std::string& detail) {
  throw sim::SimError(sim::SimErrc::kBadConfig, "MediaSource", detail);
}

}  // namespace

MediaSource::MediaSource(sim::Simulator& sim, CbrSource& source,
                         const cc::SinkBase& sink,
                         const MediaSourceConfig& config)
    : sim_(sim),
      source_(source),
      sink_(sink),
      config_(config),
      segment_timer_(sim, [this] { on_segment(); }),
      rung_(config.initial_rung) {
  if (config_.rungs_bps.empty()) bad("empty encoding ladder");
  for (std::size_t i = 0; i < config_.rungs_bps.size(); ++i) {
    if (config_.rungs_bps[i] <= 0.0) bad("ladder rungs must be > 0 bps");
    if (i > 0 && config_.rungs_bps[i] <= config_.rungs_bps[i - 1]) {
      bad("ladder must be strictly ascending");
    }
  }
  if (config_.segment <= sim::Time()) bad("segment must be > 0");
  if (config_.up_fraction <= 0.0 || config_.up_fraction > 1.0 ||
      config_.down_fraction <= 0.0 || config_.down_fraction > 1.0) {
    bad("adaptation fractions must be in (0, 1]");
  }
  if (config_.down_fraction >= config_.up_fraction) {
    bad("down_fraction must be < up_fraction (hysteresis)");
  }
  if (rung_ < 0 ||
      rung_ >= static_cast<int>(config_.rungs_bps.size())) {
    bad("initial_rung outside the ladder");
  }
}

void MediaSource::start_at(sim::Time at) {
  if (at < sim_.now()) {
    throw sim::SimError(sim::SimErrc::kBadSchedule, "MediaSource",
                        "start_at in the past");
  }
  sim_.schedule_at(at, [this] { begin(); });
}

void MediaSource::begin() {
  active_ = true;
  last_sink_bytes_ = sink_.bytes_received();
  source_.set_rate_bps(config_.rungs_bps[static_cast<std::size_t>(rung_)]);
  source_.start();
  segment_timer_.schedule_in(config_.segment);
}

void MediaSource::stop() {
  active_ = false;
  segment_timer_.cancel();
  source_.stop();
}

void MediaSource::on_segment() {
  if (!active_) return;
  const std::int64_t delivered = sink_.bytes_received() - last_sink_bytes_;
  last_sink_bytes_ = sink_.bytes_received();
  const double delivered_bps =
      static_cast<double>(delivered) * 8.0 / config_.segment.as_seconds();
  const double current = config_.rungs_bps[static_cast<std::size_t>(rung_)];

  rung_sum_ += rung_;
  ++segments_;

  int next = rung_;
  if (delivered_bps < current * config_.down_fraction) {
    if (next > 0) --next;
  } else if (delivered_bps >= current * config_.up_fraction &&
             next + 1 < static_cast<int>(config_.rungs_bps.size())) {
    ++next;
  }
  if (next != rung_) {
    rung_ = next;
    ++switches_;
    source_.set_rate_bps(config_.rungs_bps[static_cast<std::size_t>(rung_)]);
  }
  segment_timer_.schedule_in(config_.segment);
}

double MediaSource::mean_rung() const noexcept {
  if (segments_ == 0) return static_cast<double>(rung_);
  return static_cast<double>(rung_sum_) / static_cast<double>(segments_);
}

}  // namespace slowcc::traffic
