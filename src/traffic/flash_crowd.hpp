#pragma once

#include <memory>
#include <vector>

#include "cc/tcp_agent.hpp"
#include "cc/tcp_sink.hpp"
#include "sim/rng.hpp"
#include "sim/timer.hpp"

namespace slowcc::traffic {

/// Parameters of a web flash crowd (paper §4.1.2: 200 flows/sec for
/// 5 seconds, 10-packet transfers).
struct FlashCrowdConfig {
  double arrival_rate_fps = 200.0;  // new flows per second
  sim::Time duration = sim::Time::seconds(5.0);
  std::int64_t transfer_packets = 10;
  std::int64_t packet_size = 1000;
  bool poisson_arrivals = true;     // exponential vs deterministic spacing
  std::uint64_t seed = 7;
  net::FlowId first_flow_id = 100000;  // reserved id range for crowd flows
};

/// Generates a crowd of short TCP transfers between two nodes.
///
/// Each arrival creates a fresh TCP(1/2) flow limited to
/// `transfer_packets` segments; flows spend their whole life in
/// slow-start, which is why a flash crowd grabs bandwidth quickly no
/// matter what the long-lived background traffic runs (paper §4.1.2).
class FlashCrowd {
 public:
  FlashCrowd(sim::Simulator& sim, net::Node& src, net::Node& dst,
             const FlashCrowdConfig& config = {});

  /// Begin arrivals at absolute time `at`.
  void start_at(sim::Time at);

  [[nodiscard]] std::size_t flows_started() const noexcept {
    return flows_.size();
  }
  [[nodiscard]] std::size_t flows_completed() const noexcept {
    return completed_;
  }

  /// Aggregate bytes received across all crowd flows.
  [[nodiscard]] std::int64_t total_bytes_received() const;

  /// Flow ids of crowd flows fall in
  /// [first_flow_id, first_flow_id + flows_started()).
  [[nodiscard]] bool owns_flow(net::FlowId id) const noexcept {
    return id >= config_.first_flow_id &&
           id < config_.first_flow_id + static_cast<net::FlowId>(flows_.size());
  }
  [[nodiscard]] const FlashCrowdConfig& config() const noexcept {
    return config_;
  }

  /// Mean flow completion time over completed flows (seconds);
  /// 0 when none completed.
  [[nodiscard]] double mean_completion_seconds() const;

 private:
  struct ShortFlow {
    std::unique_ptr<cc::TcpSink> sink;
    std::unique_ptr<cc::TcpAgent> agent;
    sim::Time started_at;
    sim::Time completed_at;
    bool done = false;
  };

  void spawn_flow();
  void schedule_next_arrival();

  sim::Simulator& sim_;
  net::Node& src_;
  net::Node& dst_;
  FlashCrowdConfig config_;
  sim::Rng rng_;
  sim::Timer arrival_timer_;
  sim::Time end_time_;
  bool active_ = false;

  std::vector<std::unique_ptr<ShortFlow>> flows_;
  std::size_t completed_ = 0;
};

}  // namespace slowcc::traffic
