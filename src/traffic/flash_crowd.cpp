#include "traffic/flash_crowd.hpp"

namespace slowcc::traffic {

FlashCrowd::FlashCrowd(sim::Simulator& sim, net::Node& src, net::Node& dst,
                       const FlashCrowdConfig& config)
    : sim_(sim),
      src_(src),
      dst_(dst),
      config_(config),
      rng_(config.seed),
      arrival_timer_(sim, [this] {
        spawn_flow();
        schedule_next_arrival();
      }) {}

void FlashCrowd::start_at(sim::Time at) {
  active_ = true;
  end_time_ = at + config_.duration;
  sim_.schedule_at(at, [this] {
    if (!active_) return;
    spawn_flow();
    schedule_next_arrival();
  });
}

void FlashCrowd::schedule_next_arrival() {
  if (!active_) return;
  const double mean_gap = 1.0 / config_.arrival_rate_fps;
  const double gap_s = config_.poisson_arrivals
                           ? rng_.exponential(mean_gap)
                           : mean_gap;
  const sim::Time next = sim_.now() + sim::Time::seconds(gap_s);
  if (next > end_time_) {
    active_ = false;
    return;
  }
  arrival_timer_.schedule_in(sim::Time::seconds(gap_s));
}

void FlashCrowd::spawn_flow() {
  const net::FlowId id =
      config_.first_flow_id + static_cast<net::FlowId>(flows_.size());

  auto flow = std::make_unique<ShortFlow>();
  flow->sink = std::make_unique<cc::TcpSink>(sim_, dst_);
  flow->agent = cc::TcpAgent::make_tcp(sim_, src_, dst_.id(),
                                       flow->sink->local_port(), id);
  flow->agent->set_packet_size(config_.packet_size);
  flow->agent->set_data_limit(config_.transfer_packets);
  flow->started_at = sim_.now();

  ShortFlow* raw = flow.get();
  flow->agent->set_completion_callback([this, raw] {
    raw->done = true;
    raw->completed_at = sim_.now();
    ++completed_;
  });

  flow->agent->start();
  flows_.push_back(std::move(flow));
}

std::int64_t FlashCrowd::total_bytes_received() const {
  std::int64_t total = 0;
  for (const auto& f : flows_) total += f->sink->bytes_received();
  return total;
}

double FlashCrowd::mean_completion_seconds() const {
  if (completed_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& f : flows_) {
    if (f->done) sum += (f->completed_at - f->started_at).as_seconds();
  }
  return sum / static_cast<double>(completed_);
}

}  // namespace slowcc::traffic
