#include "traffic/loss_script.hpp"

#include "sim/error.hpp"

namespace slowcc::traffic {

bool LossScript::is_data(const net::Packet& p) noexcept {
  switch (p.type) {
    case net::PacketType::kData:
    case net::PacketType::kTfrcData:
    case net::PacketType::kTearData:
      return true;
    default:
      return false;
  }
}

void LossScript::install(net::Link& link) {
  link.set_forced_drop_filter([this](const net::Packet& p) {
    if (!is_data(p)) return false;
    return should_drop(p);
  });
}

CountedLossScript::CountedLossScript(std::vector<std::int64_t> spacings)
    : spacings_(std::move(spacings)) {
  if (spacings_.empty()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "CountedLossScript",
                        "spacings required");
  }
  for (auto s : spacings_) {
    if (s < 1) {
      throw sim::SimError(sim::SimErrc::kBadConfig, "CountedLossScript",
                        "spacings must be >= 1");
    }
  }
}

bool CountedLossScript::should_drop(const net::Packet& /*p*/) {
  if (admitted_in_phase_ < spacings_[phase_]) {
    ++admitted_in_phase_;
    return false;
  }
  // This packet is the one right after `spacing` admissions: drop it
  // and move to the next spacing.
  admitted_in_phase_ = 0;
  phase_ = (phase_ + 1) % spacings_.size();
  ++drops_;
  return true;
}

IntervalLossScript::IntervalLossScript(sim::Simulator& sim,
                                       sim::Time interval, sim::Time start)
    : sim_(sim), interval_(interval), next_drop_at_(start) {
  if (interval <= sim::Time()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "IntervalLossScript",
                        "interval must be > 0");
  }
}

bool IntervalLossScript::should_drop(const net::Packet& /*p*/) {
  if (sim_.now() < next_drop_at_) return false;
  // Drop this packet and arm the next interval from now (not from the
  // nominal boundary: with a sparse sender there may be no packet to
  // drop exactly at the boundary).
  next_drop_at_ = sim_.now() + interval_;
  ++drops_;
  return true;
}

TimedPhaseLossScript::TimedPhaseLossScript(sim::Simulator& sim,
                                           std::vector<Phase> phases)
    : sim_(sim), phases_(std::move(phases)) {
  if (phases_.empty()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "TimedPhaseLossScript",
                        "phases required");
  }
  for (const auto& ph : phases_) {
    if (ph.drop_every < 1 || ph.duration <= sim::Time()) {
      throw sim::SimError(sim::SimErrc::kBadConfig, "TimedPhaseLossScript",
                        "invalid phase");
    }
  }
}

void TimedPhaseLossScript::advance_phase_if_needed() {
  if (!started_) {
    started_ = true;
    phase_start_ = sim_.now();
  }
  while (sim_.now() - phase_start_ >= phases_[phase_].duration) {
    phase_start_ += phases_[phase_].duration;
    phase_ = (phase_ + 1) % phases_.size();
    counter_ = 0;
  }
}

bool TimedPhaseLossScript::should_drop(const net::Packet& /*p*/) {
  advance_phase_if_needed();
  ++counter_;
  if (counter_ >= phases_[phase_].drop_every) {
    counter_ = 0;
    ++drops_;
    return true;
  }
  return false;
}

}  // namespace slowcc::traffic
