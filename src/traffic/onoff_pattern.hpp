#pragma once

#include "sim/timer.hpp"
#include "traffic/cbr_source.hpp"

namespace slowcc::traffic {

/// Shape of the available-bandwidth oscillation (paper §3, Figure 2 and
/// the sawtooth variants of §4.2.1).
enum class PatternKind {
  kSquare,           // full rate for on_time, silent for off_time
  kSawtooth,         // ramp 0 -> peak over on_time, then silent
  kReverseSawtooth,  // jump to peak, ramp down to 0 over on_time, then silent
};

/// Drives a `CbrSource` through a repeating ON/OFF pattern.
///
/// With kSquare and equal ON/OFF times this is exactly the square-wave
/// scenario of Figure 2. Ramps are approximated with
/// `ramp_steps` rate updates per ON period.
class OnOffPattern {
 public:
  OnOffPattern(sim::Simulator& sim, CbrSource& source, PatternKind kind,
               double peak_rate_bps, sim::Time on_time, sim::Time off_time,
               int ramp_steps = 16);

  /// Begin the pattern at `at` (the source is started if needed).
  void start_at(sim::Time at);

  /// Freeze the pattern and silence the source.
  void stop();

  /// One-shot helpers for scenarios that script CBR activity manually
  /// (e.g. Figure 3's "on 0-150 s, off 150-180 s, on from 180 s").
  void force_on();
  void force_off();

  [[nodiscard]] PatternKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool in_on_phase() const noexcept { return on_phase_; }

 private:
  void begin_on_phase();
  void begin_off_phase();
  void ramp_step(int step);

  sim::Simulator& sim_;
  CbrSource& source_;
  PatternKind kind_;
  double peak_rate_bps_;
  sim::Time on_time_;
  sim::Time off_time_;
  int ramp_steps_;

  sim::Timer phase_timer_;
  sim::Timer ramp_timer_;
  bool active_ = false;
  bool on_phase_ = false;
  int current_step_ = 0;
};

}  // namespace slowcc::traffic
