#include "traffic/onoff_pattern.hpp"

#include "sim/error.hpp"


namespace slowcc::traffic {

OnOffPattern::OnOffPattern(sim::Simulator& sim, CbrSource& source,
                           PatternKind kind, double peak_rate_bps,
                           sim::Time on_time, sim::Time off_time,
                           int ramp_steps)
    : sim_(sim),
      source_(source),
      kind_(kind),
      peak_rate_bps_(peak_rate_bps),
      on_time_(on_time),
      off_time_(off_time),
      ramp_steps_(ramp_steps),
      phase_timer_(sim, [this] {
        if (on_phase_) {
          begin_off_phase();
        } else {
          begin_on_phase();
        }
      }),
      ramp_timer_(sim, [this] { ramp_step(current_step_ + 1); }) {
  if (on_time.is_negative() || off_time.is_negative()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "OnOffPattern",
                        "times must be >= 0");
  }
  if (ramp_steps < 1) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "OnOffPattern",
                        "ramp_steps must be >= 1");
  }
}

void OnOffPattern::start_at(sim::Time at) {
  active_ = true;
  source_.set_rate_bps(0.0);
  source_.start();
  sim_.schedule_at(at, [this] {
    if (active_) begin_on_phase();
  });
}

void OnOffPattern::stop() {
  active_ = false;
  phase_timer_.cancel();
  ramp_timer_.cancel();
  source_.set_rate_bps(0.0);
}

void OnOffPattern::force_on() {
  source_.start();
  source_.set_rate_bps(peak_rate_bps_);
}

void OnOffPattern::force_off() { source_.set_rate_bps(0.0); }

void OnOffPattern::begin_on_phase() {
  if (!active_) return;
  on_phase_ = true;
  switch (kind_) {
    case PatternKind::kSquare:
      source_.set_rate_bps(peak_rate_bps_);
      break;
    case PatternKind::kSawtooth:
      current_step_ = 0;
      ramp_step(1);
      break;
    case PatternKind::kReverseSawtooth:
      current_step_ = 0;
      source_.set_rate_bps(peak_rate_bps_);
      ramp_step(1);
      break;
  }
  phase_timer_.schedule_in(on_time_);
}

void OnOffPattern::begin_off_phase() {
  if (!active_) return;
  on_phase_ = false;
  ramp_timer_.cancel();
  source_.set_rate_bps(0.0);
  phase_timer_.schedule_in(off_time_);
}

void OnOffPattern::ramp_step(int step) {
  if (!active_ || !on_phase_ || step > ramp_steps_) return;
  current_step_ = step;
  const double frac =
      static_cast<double>(step) / static_cast<double>(ramp_steps_);
  if (kind_ == PatternKind::kSawtooth) {
    source_.set_rate_bps(peak_rate_bps_ * frac);
  } else if (kind_ == PatternKind::kReverseSawtooth) {
    source_.set_rate_bps(peak_rate_bps_ * (1.0 - frac) +
                         peak_rate_bps_ / static_cast<double>(ramp_steps_));
  }
  if (step < ramp_steps_) {
    ramp_timer_.schedule_in(
        sim::Time::seconds(on_time_.as_seconds() /
                           static_cast<double>(ramp_steps_)));
  }
}

}  // namespace slowcc::traffic
