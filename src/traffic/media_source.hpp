#pragma once

#include <cstdint>
#include <vector>

#include "cc/agent.hpp"
#include "sim/timer.hpp"
#include "traffic/cbr_source.hpp"

namespace slowcc::traffic {

/// Parameters of an adaptive-bitrate media source.
struct MediaSourceConfig {
  /// Ascending encoding ladder in bits/sec; the source always sends at
  /// exactly one rung's rate. Throws kBadConfig when empty or not
  /// strictly ascending.
  std::vector<double> rungs_bps;
  /// Adaptation interval: delivered throughput is re-estimated (from
  /// receiver byte counts) once per segment.
  sim::Time segment = sim::Time::seconds(2.0);
  /// Step up when the last segment delivered at least `up_fraction` of
  /// the current rung's rate and a higher rung exists.
  double up_fraction = 0.95;
  /// Step down when the last segment delivered less than
  /// `down_fraction` of the current rung's rate.
  double down_fraction = 0.75;
  int initial_rung = 0;
};

/// Drives a `CbrSource` like an ABR video player: pick a ladder rung,
/// watch what the receiver actually got over the last segment, and
/// step the rung up or down. Fully deterministic — the only inputs are
/// the ladder, the thresholds, and the receiver's byte counter — so
/// media workloads stay bit-reproducible like every other source.
///
/// This is the paper's "streaming media over slowly-responsive CC"
/// motivation turned into a workload: the rung trajectory (mean rung,
/// switch count) measures how much quality churn the transport's rate
/// dynamics induce.
class MediaSource {
 public:
  /// Throws sim::SimError (kBadConfig) on an empty/non-ascending
  /// ladder, thresholds outside (0, 1], or a bad initial rung.
  MediaSource(sim::Simulator& sim, CbrSource& source,
              const cc::SinkBase& sink, const MediaSourceConfig& config);

  /// Start the source at `at` on the initial rung and adapt every
  /// segment thereafter.
  void start_at(sim::Time at);

  /// Silence the source and stop adapting.
  void stop();

  [[nodiscard]] int rung() const noexcept { return rung_; }
  [[nodiscard]] int switches() const noexcept { return switches_; }
  /// Mean rung index over all completed segments (0 before the first).
  [[nodiscard]] double mean_rung() const noexcept;
  [[nodiscard]] const MediaSourceConfig& config() const noexcept {
    return config_;
  }

 private:
  void begin();
  void on_segment();

  sim::Simulator& sim_;
  CbrSource& source_;
  const cc::SinkBase& sink_;
  MediaSourceConfig config_;
  sim::Timer segment_timer_;
  int rung_;
  int switches_ = 0;
  std::int64_t rung_sum_ = 0;
  std::int64_t segments_ = 0;
  std::int64_t last_sink_bytes_ = 0;
  bool active_ = false;
};

}  // namespace slowcc::traffic
