#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace slowcc::traffic {

/// Deterministic loss scripts for the smoothness experiments
/// (paper §4.3, Figures 17-19). A script decides, per *data* packet
/// offered to a link, whether to force-drop it; control packets (ACKs,
/// feedback) are never touched.
///
/// Scripts are stateful: construct one per link and install it with
/// `install`. The object must outlive the link's traffic.
class LossScript {
 public:
  virtual ~LossScript() = default;

  /// True if this data packet should be dropped.
  [[nodiscard]] virtual bool should_drop(const net::Packet& p) = 0;

  /// Wire the script into `link` as its forced-drop filter.
  void install(net::Link& link);

  [[nodiscard]] static bool is_data(const net::Packet& p) noexcept;
};

/// Count-spaced losses: cycles through `spacings`; after admitting
/// spacings[i] data packets, the next data packet is dropped.
///
/// Figure 17's "mildly bursty" pattern is {50, 50, 50, 400, 400, 400}:
/// three losses each after 50 packet arrivals, then three more each
/// after 400 arrivals, repeating.
class CountedLossScript final : public LossScript {
 public:
  explicit CountedLossScript(std::vector<std::int64_t> spacings);

  [[nodiscard]] bool should_drop(const net::Packet& p) override;

  [[nodiscard]] std::int64_t drops() const noexcept { return drops_; }

 private:
  std::vector<std::int64_t> spacings_;
  std::size_t phase_ = 0;
  std::int64_t admitted_in_phase_ = 0;
  std::int64_t drops_ = 0;
};

/// Drops exactly one data packet per `interval` of simulated time —
/// the paper's definition of *persistent congestion* ("the loss of one
/// packet per round-trip time") used by the responsiveness metric.
class IntervalLossScript final : public LossScript {
 public:
  IntervalLossScript(sim::Simulator& sim, sim::Time interval,
                     sim::Time start = sim::Time());

  [[nodiscard]] bool should_drop(const net::Packet& p) override;

  [[nodiscard]] std::int64_t drops() const noexcept { return drops_; }

 private:
  sim::Simulator& sim_;
  sim::Time interval_;
  sim::Time next_drop_at_;
  std::int64_t drops_ = 0;
};

/// Time-phased periodic losses: cycles through phases, each lasting
/// `duration` and dropping every `drop_every`-th data packet.
///
/// Figure 18's "more bursty" pattern is {(6 s, 200), (1 s, 4)}: six
/// seconds of light loss (every 200th packet) then one second of heavy
/// loss (every 4th packet), repeating.
class TimedPhaseLossScript final : public LossScript {
 public:
  struct Phase {
    sim::Time duration;
    std::int64_t drop_every;  // drop one packet in every `drop_every`
  };

  TimedPhaseLossScript(sim::Simulator& sim, std::vector<Phase> phases);

  [[nodiscard]] bool should_drop(const net::Packet& p) override;

  [[nodiscard]] std::int64_t drops() const noexcept { return drops_; }

 private:
  void advance_phase_if_needed();

  sim::Simulator& sim_;
  std::vector<Phase> phases_;
  std::size_t phase_ = 0;
  sim::Time phase_start_;
  std::int64_t counter_ = 0;
  std::int64_t drops_ = 0;
  bool started_ = false;
};

}  // namespace slowcc::traffic
