#include "traffic/cbr_source.hpp"

#include "sim/error.hpp"


namespace slowcc::traffic {

CbrSource::CbrSource(sim::Simulator& sim, net::Node& local,
                     net::NodeId peer_node, net::PortId peer_port,
                     net::FlowId flow, double rate_bps)
    : Agent(sim, local, peer_node, peer_port, flow),
      send_timer_(sim, [this] { on_send_timer(); }),
      rate_bps_(rate_bps) {
  if (rate_bps < 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "CbrSource",
                        "rate must be >= 0");
  }
}

void CbrSource::start() {
  if (running_) return;
  running_ = true;
  schedule_next_send();
}

void CbrSource::stop() {
  running_ = false;
  send_timer_.cancel();
}

void CbrSource::set_rate_bps(double rate_bps) {
  if (rate_bps < 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "CbrSource",
                        "rate must be >= 0");
  }
  const bool was_paused = rate_bps_ <= 0.0;
  rate_bps_ = rate_bps;
  if (running_ && was_paused && rate_bps_ > 0.0) schedule_next_send();
  if (rate_bps_ <= 0.0) send_timer_.cancel();
}

void CbrSource::schedule_next_send() {
  if (!running_ || rate_bps_ <= 0.0) return;
  const double gap_s =
      static_cast<double>(packet_size()) * 8.0 / rate_bps_;
  send_timer_.schedule_in(sim::Time::seconds(gap_s));
}

void CbrSource::on_send_timer() {
  if (!running_ || rate_bps_ <= 0.0) return;
  net::Packet p = make_packet(net::PacketType::kCbr);
  p.seq = next_seq_++;
  inject(std::move(p));
  schedule_next_send();
}

void CbrSource::handle_packet(const net::Packet& /*p*/) {
  // CBR is open-loop: any packet addressed here is ignored.
}

}  // namespace slowcc::traffic
