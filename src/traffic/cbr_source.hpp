#pragma once

#include "cc/agent.hpp"
#include "sim/timer.hpp"

namespace slowcc::traffic {

/// Constant-bit-rate source with no congestion control (a UDP blast).
///
/// Used as the "orchestrator" of dynamic bandwidth in the paper's
/// scenarios: an ON/OFF CBR source occupying a fraction of the
/// bottleneck makes the bandwidth available to the congestion-
/// controlled flows oscillate. The rate can be changed while running
/// (sawtooth patterns do this continuously).
class CbrSource final : public cc::Agent {
 public:
  CbrSource(sim::Simulator& sim, net::Node& local, net::NodeId peer_node,
            net::PortId peer_port, net::FlowId flow, double rate_bps);

  void start() override;
  void stop() override;
  void handle_packet(const net::Packet& p) override;

  /// Change the sending rate; takes effect from the next packet.
  /// A rate of 0 pauses transmission until the rate becomes positive.
  void set_rate_bps(double rate_bps);

  [[nodiscard]] double rate_bps() const noexcept { return rate_bps_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void on_send_timer();
  void schedule_next_send();

  sim::Timer send_timer_;
  double rate_bps_;
  bool running_ = false;
  std::int64_t next_seq_ = 0;
};

/// Minimal receiver for CBR traffic: counts bytes, no feedback.
class CbrSink final : public cc::SinkBase {
 public:
  CbrSink(sim::Simulator& sim, net::Node& local) : SinkBase(sim, local) {}
  void handle_packet(const net::Packet& p) override {
    if (p.type == net::PacketType::kCbr) note_received(p);
  }
};

}  // namespace slowcc::traffic
