#include "cc/tear_agent.hpp"

#include <algorithm>

namespace slowcc::cc {

TearSink::TearSink(sim::Simulator& sim, net::Node& local, double ewma_weight)
    : SinkBase(sim, local),
      feedback_timer_(sim, [this] { on_feedback_timer(); }),
      ewma_weight_(ewma_weight) {}

void TearSink::handle_packet(const net::Packet& p) {
  if (p.type != net::PacketType::kTearData) return;
  note_received(p);

  sender_node_ = p.src_node;
  sender_port_ = p.src_port;
  flow_ = p.flow;
  pkt_size_ = p.size_bytes;
  sender_rtt_ = p.rtt_estimate;
  last_packet_stamp_ = p.sent_at;

  const sim::Time rtt =
      sender_rtt_.is_zero() ? sim::Time::millis(100) : sender_rtt_;

  if (p.seq > expected_) {
    // Gap => loss. Coalesce losses within one RTT into one emulated
    // window halving, as TCP's fast recovery would.
    if (sim_.now() - last_loss_event_ > rtt) {
      cwnd_ = std::max(1.0, cwnd_ * 0.5);
      ssthresh_ = cwnd_;
      last_loss_event_ = sim_.now();
    }
    expected_ = p.seq + 1;
  } else if (p.seq == expected_) {
    ++expected_;
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;
    } else {
      cwnd_ += 1.0 / cwnd_;
    }
  }

  if (!saw_packet_) {
    saw_packet_ = true;
    send_feedback();
  }
}

void TearSink::on_feedback_timer() { send_feedback(); }

void TearSink::send_feedback() {
  if (!saw_packet_) return;
  const sim::Time rtt =
      sender_rtt_.is_zero() ? sim::Time::millis(100) : sender_rtt_;

  // Fold the current emulated window into the moving average once per
  // feedback round.
  if (!have_avg_) {
    cwnd_avg_ = cwnd_;
    have_avg_ = true;
  } else {
    cwnd_avg_ = (1.0 - ewma_weight_) * cwnd_avg_ + ewma_weight_ * cwnd_;
  }

  net::Packet fb;
  fb.type = net::PacketType::kTearFeedback;
  fb.src_node = local_.id();
  fb.src_port = local_port_;
  fb.dst_node = sender_node_;
  fb.dst_port = sender_port_;
  fb.flow = flow_;
  fb.size_bytes = 40;
  fb.sent_at = sim_.now();
  fb.echo = last_packet_stamp_;
  fb.feedback.receive_rate =
      cwnd_avg_ * static_cast<double>(pkt_size_) / rtt.as_seconds();
  local_.deliver(std::move(fb));

  feedback_timer_.schedule_in(rtt);
}

TearAgent::TearAgent(sim::Simulator& sim, net::Node& local,
                     net::NodeId peer_node, net::PortId peer_port,
                     net::FlowId flow)
    : Agent(sim, local, peer_node, peer_port, flow),
      send_timer_(sim, [this] { on_send_timer(); }),
      no_feedback_timer_(sim, [this] { on_no_feedback_timer(); }) {}

void TearAgent::start() {
  if (running_) return;
  running_ = true;
  rate_ = static_cast<double>(packet_size());  // one packet/sec to start
  schedule_next_send();
  no_feedback_timer_.schedule_in(sim::Time::seconds(2.0));
}

void TearAgent::stop() {
  running_ = false;
  send_timer_.cancel();
  no_feedback_timer_.cancel();
}

void TearAgent::schedule_next_send() {
  if (!running_) return;
  const double gap_s = static_cast<double>(packet_size()) / rate_;
  send_timer_.schedule_in(sim::Time::seconds(gap_s));
}

void TearAgent::on_send_timer() {
  if (!running_) return;
  net::Packet p = make_packet(net::PacketType::kTearData);
  p.seq = next_seq_++;
  p.rtt_estimate = srtt();
  inject(std::move(p));
  schedule_next_send();
}

void TearAgent::handle_packet(const net::Packet& p) {
  if (p.type != net::PacketType::kTearFeedback || !running_) return;
  ++stats_.acks_received;

  const double sample = (sim_.now() - p.echo).as_seconds();
  if (!have_rtt_) {
    srtt_s_ = sample;
    have_rtt_ = true;
  } else {
    srtt_s_ = 0.9 * srtt_s_ + 0.1 * sample;
  }

  const double min_rate = static_cast<double>(packet_size()) / 64.0;
  const double old_rate = rate_;
  rate_ = std::max(p.feedback.receive_rate, min_rate);
  if (rate_ < old_rate) ++stats_.congestion_events;

  no_feedback_timer_.schedule_in(
      sim::Time::seconds(std::max(4.0 * srtt_s_, 0.5)));
}

void TearAgent::on_no_feedback_timer() {
  if (!running_) return;
  ++stats_.timeouts;
  rate_ = std::max(rate_ / 2.0, static_cast<double>(packet_size()) / 64.0);
  no_feedback_timer_.schedule_in(
      sim::Time::seconds(std::max(4.0 * srtt_s_, 0.5)));
}

}  // namespace slowcc::cc
