#include "cc/tcp_sink.hpp"

#include <algorithm>

namespace slowcc::cc {

TcpSink::TcpSink(sim::Simulator& sim, net::Node& local)
    : SinkBase(sim, local), delack_timer_(sim, [this] { on_delack_timer(); }) {
  out_of_order_.reserve(kReorderReserve);
}

void TcpSink::handle_packet(const net::Packet& p) {
  if (p.type != net::PacketType::kData) return;
  note_received(p);

  peer_node_ = p.src_node;
  peer_port_ = p.src_port;
  flow_ = p.flow;
  last_stamp_ = p.sent_at;
  last_ecn_ = p.ecn_marked;

  bool in_order = false;
  if (p.seq == next_expected_) {
    in_order = true;
    ++next_expected_;
    // Drain any previously buffered out-of-order segments (sorted
    // ascending, so the run to consume is a prefix).
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && *it == next_expected_) {
      ++next_expected_;
      ++it;
    }
    out_of_order_.erase(out_of_order_.begin(), it);
  } else if (p.seq > next_expected_) {
    const auto pos =
        std::lower_bound(out_of_order_.begin(), out_of_order_.end(), p.seq);
    if (pos == out_of_order_.end() || *pos != p.seq) {
      out_of_order_.insert(pos, p.seq);  // slowcc-lint: allow(no-hot-path-alloc) capacity reserved at flow setup; shifts, no alloc
    }
  }
  // p.seq < next_expected_: spurious retransmission; still ACKed (a
  // duplicate cumulative ACK), as real TCP does.

  if (delayed_acks_ && in_order && out_of_order_.empty()) {
    if (ack_pending_) {
      // Second in-order segment: acknowledge both now.
      send_ack();
    } else {
      ack_pending_ = true;
      delack_timer_.schedule_in(delack_timeout_);
    }
    return;
  }
  // Immediate-ACK mode, out-of-order data, or a hole just filled:
  // acknowledge right away so the sender's loss detection stays sharp.
  send_ack();
}

void TcpSink::on_delack_timer() {
  if (ack_pending_) send_ack();
}

void TcpSink::send_ack() {
  ack_pending_ = false;
  delack_timer_.cancel();

  net::Packet ack;
  ack.type = net::PacketType::kAck;
  ack.src_node = local_.id();
  ack.src_port = local_port_;
  ack.dst_node = peer_node_;
  ack.dst_port = peer_port_;
  ack.flow = flow_;
  ack.size_bytes = ack_size_;
  ack.seq = next_expected_;
  ack.sent_at = sim_.now();
  ack.echo = last_stamp_;
  ack.ecn_marked = last_ecn_;
  ++acks_sent_;
  local_.deliver(std::move(ack));
}

}  // namespace slowcc::cc
