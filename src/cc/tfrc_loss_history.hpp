#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/time.hpp"

namespace slowcc::cc {

/// TFRC receiver-side loss-event history.
///
/// Tracks loss *events* (losses within one RTT coalesce into a single
/// event, per the TFRC specification) and the *loss intervals* between
/// them, and computes the weighted average loss interval over the most
/// recent `n` intervals. TFRC(k) in the paper is exactly this structure
/// with n = k. Weights follow the TFRC draft: the newest half of the
/// intervals get weight 1, the older half decays linearly — for n = 8:
/// {1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2}.
class TfrcLossHistory {
 public:
  /// `n` — number of loss intervals averaged (>= 1).
  explicit TfrcLossHistory(int n);

  /// Register an in-order data packet with sequence `seq`. Gaps below
  /// `seq` are registered as losses (the simulator's FIFO paths cannot
  /// reorder, so a gap is a loss). `sender_rtt` is the RTT estimate the
  /// packet carried (used to coalesce losses into events). Returns true
  /// if a *new loss event* started.
  bool on_packet(std::int64_t seq, sim::Time now, sim::Time sender_rtt);

  /// Loss event rate p in [0, 1]; 0 until the first loss event.
  [[nodiscard]] double loss_event_rate() const;

  /// Weighted average loss interval in packets (max of the estimates
  /// with and without the open interval); 0 until the first loss event.
  [[nodiscard]] double average_interval() const;

  [[nodiscard]] int loss_events() const noexcept { return total_events_; }

  /// When the most recent loss event began (zero time if none yet).
  [[nodiscard]] sim::Time last_event_start() const noexcept {
    return event_start_time_;
  }
  [[nodiscard]] std::int64_t packets_seen() const noexcept { return packets_; }
  [[nodiscard]] std::int64_t losses_seen() const noexcept { return losses_; }

  /// Enable history discounting (TFRC's optional mechanism that lets a
  /// long loss-free open interval reduce the weight of old history).
  void set_history_discounting(bool on) noexcept { discounting_ = on; }

  /// The weight vector used for `n` intervals (exposed for tests).
  [[nodiscard]] static std::vector<double> weights(int n);

 private:
  [[nodiscard]] double weighted_average(bool include_open) const;
  [[nodiscard]] double current_discount() const;
  [[nodiscard]] double current_discount_for_average() const;

  /// Floor on the history discount factor: even an enormous loss-free
  /// interval can't erase history entirely.
  static constexpr double kMinDiscount = 0.05;

  int n_;
  bool discounting_ = false;

  std::int64_t expected_ = 0;       // next in-order sequence expected
  std::int64_t packets_ = 0;        // total packets received
  std::int64_t losses_ = 0;         // total packets lost
  int total_events_ = 0;

  // Closed intervals, most recent first; bounded to n entries.
  std::deque<double> intervals_;
  // Open (current) interval: packets since the start of the last event.
  std::int64_t event_start_seq_ = -1;
  sim::Time event_start_time_;
};

}  // namespace slowcc::cc
