#pragma once

#include "sim/time.hpp"

namespace slowcc::cc {

/// TCP response functions: steady-state sending rate as a function of
/// the loss (event) rate. These are the "TCP-friendly formulas" the
/// TCP-compatible paradigm is built on (paper §1–2, Figure 20).

/// Simple "pure AIMD" form, sqrt(3/(2bp))·(1/..)… specialised to TCP's
/// b = 1/2 this is the classic sqrt(1.5/p) packets per RTT. Valid for
/// p ≲ 1/3. Returns packets per RTT.
[[nodiscard]] double simple_response_pkts_per_rtt(double loss_rate);

/// Pure AIMD(a, b) deterministic-model response: sqrt(a(2-b)/(2b p))
/// packets per RTT (reduces to sqrt(1.5/p) for a=1, b=1/2).
[[nodiscard]] double aimd_response_pkts_per_rtt(double a, double b,
                                                double loss_rate);

/// Padhye et al. (1998) full TCP Reno response function including
/// retransmit timeouts:
///
///   X = s / ( R·sqrt(2bp/3) + t_RTO · min(1, 3·sqrt(3bp/8)) · p·(1+32p²) )
///
/// with b the number of packets acknowledged per ACK (1 here: the
/// paper's TCPs run without delayed acknowledgments). Returns the rate
/// in bytes per second. `t_rto` defaults to 4·rtt when zero, the TFRC
/// convention.
[[nodiscard]] double padhye_rate_bytes_per_sec(double loss_event_rate,
                                               sim::Time rtt,
                                               std::int64_t packet_size_bytes,
                                               sim::Time t_rto = sim::Time());

/// Padhye response expressed in packets per RTT (for Figure 20).
[[nodiscard]] double padhye_pkts_per_rtt(double loss_event_rate);

}  // namespace slowcc::cc
