#include "cc/tcp_agent.hpp"

#include <algorithm>
#include <cmath>

namespace slowcc::cc {

TcpAgent::TcpAgent(sim::Simulator& sim, net::Node& local,
                   net::NodeId peer_node, net::PortId peer_port,
                   net::FlowId flow, std::unique_ptr<WindowPolicy> policy,
                   const TcpConfig& config)
    : Agent(sim, local, peer_node, peer_port, flow),
      policy_(std::move(policy)),
      config_(config),
      rto_timer_(sim, [this] { on_rto(); }),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh) {}

std::unique_ptr<TcpAgent> TcpAgent::make_tcp(sim::Simulator& sim,
                                             net::Node& local,
                                             net::NodeId peer_node,
                                             net::PortId peer_port,
                                             net::FlowId flow, double b) {
  return std::make_unique<TcpAgent>(
      sim, local, peer_node, peer_port, flow,
      std::make_unique<AimdPolicy>(AimdPolicy::tcp_compatible(b)));
}

std::unique_ptr<TcpAgent> TcpAgent::make_sqrt(sim::Simulator& sim,
                                              net::Node& local,
                                              net::NodeId peer_node,
                                              net::PortId peer_port,
                                              net::FlowId flow, double b) {
  return std::make_unique<TcpAgent>(
      sim, local, peer_node, peer_port, flow,
      std::make_unique<BinomialPolicy>(BinomialPolicy::sqrt_policy(b)));
}

std::unique_ptr<TcpAgent> TcpAgent::make_iiad(sim::Simulator& sim,
                                              net::Node& local,
                                              net::NodeId peer_node,
                                              net::PortId peer_port,
                                              net::FlowId flow) {
  return std::make_unique<TcpAgent>(
      sim, local, peer_node, peer_port, flow,
      std::make_unique<BinomialPolicy>(BinomialPolicy::iiad_policy()));
}

void TcpAgent::start() {
  if (running_ || complete_) return;
  running_ = true;
  send_available();
}

void TcpAgent::stop() {
  running_ = false;
  rto_timer_.cancel();
}

double TcpAgent::effective_window() const noexcept {
  // Reno-style window inflation: each dup ACK signals a packet has left
  // the network, so during recovery the usable window grows by one per
  // dup ACK beyond the threshold.
  double w = cwnd_;
  if (in_recovery_) w += dup_acks_;
  return w;
}

void TcpAgent::send_available() {
  if (!running_) return;
  while (outstanding() < static_cast<std::int64_t>(effective_window()) &&
         (data_limit_ < 0 || next_seq_ < data_limit_)) {
    send_segment(next_seq_, /*is_retransmit=*/false);
    ++next_seq_;
  }
}

void TcpAgent::send_segment(std::int64_t seq, bool is_retransmit) {
  net::Packet p = make_packet(net::PacketType::kData);
  p.seq = seq;
  p.rtt_estimate = srtt();
  if (is_retransmit) ++stats_.retransmits;
  inject(std::move(p));
  if (!rto_timer_.pending()) restart_rto_timer();
}

sim::Time TcpAgent::current_rto() const {
  double rto_s;
  if (have_rtt_) {
    rto_s = srtt_s_ + 4.0 * rttvar_s_;
  } else {
    rto_s = 1.0;  // conventional initial RTO before any sample
  }
  rto_s = std::max(rto_s, config_.min_rto.as_seconds());
  rto_s *= backoff_;
  rto_s = std::min(rto_s, config_.max_rto.as_seconds());
  return sim::Time::seconds(rto_s);
}

void TcpAgent::restart_rto_timer() { rto_timer_.schedule_in(current_rto()); }

void TcpAgent::sample_rtt(sim::Time sample) {
  const double s = sample.as_seconds();
  if (!have_rtt_) {
    srtt_s_ = s;
    rttvar_s_ = s / 2.0;
    have_rtt_ = true;
  } else {
    rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - s);
    srtt_s_ = 0.875 * srtt_s_ + 0.125 * s;
  }
}

void TcpAgent::handle_packet(const net::Packet& p) {
  if (p.type != net::PacketType::kAck || !running_) return;
  ++stats_.acks_received;

  if (p.seq > snd_una_) {
    on_new_ack(p);
  } else if (outstanding() > 0) {
    on_dup_ack(p);
  }

  if (config_.react_to_ecn && p.ecn_marked && !in_recovery_ &&
      sim_.now() - last_decrease_ > srtt()) {
    // Echoed congestion mark: reduce once per RTT, no retransmission.
    ++stats_.congestion_events;
    apply_decrease();
  }

  maybe_complete();
  send_available();
}

void TcpAgent::on_new_ack(const net::Packet& ack) {
  sample_rtt(sim_.now() - ack.echo);
  backoff_ = 1;

  const std::int64_t newly_acked = ack.seq - snd_una_;
  snd_una_ = ack.seq;

  bool partial_ack = false;
  if (in_recovery_) {
    if (ack.seq > recover_) {
      // Full recovery: every segment outstanding at the loss is acked.
      in_recovery_ = false;
      dup_acks_ = 0;
      cwnd_ = ssthresh_;
    } else {
      // NewReno partial ACK: the next hole was also lost; retransmit it
      // immediately and stay in recovery. Deflate by the amount acked.
      partial_ack = true;
      dup_acks_ = std::max(0, dup_acks_ - static_cast<int>(newly_acked));
      send_segment(snd_una_, /*is_retransmit=*/true);
    }
  } else {
    dup_acks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += policy_->increase_per_rtt(cwnd_) / cwnd_;
    }
  }

  if (outstanding() == 0) {
    rto_timer_.cancel();
  } else if (!partial_ack) {
    restart_rto_timer();
  }
  // RFC 6582 "impatient" variant: partial ACKs do not refresh the
  // retransmit timer, so a recovery with many holes (one hole repaired
  // per RTT) gives up to a timeout instead of grinding for seconds.
}

void TcpAgent::on_dup_ack(const net::Packet& /*ack*/) {
  ++dup_acks_;
  if (!in_recovery_ && dup_acks_ == config_.dupack_threshold) {
    enter_recovery();
  } else if (!in_recovery_ && config_.limited_transmit &&
             dup_acks_ <= 2 &&
             (data_limit_ < 0 || next_seq_ < data_limit_)) {
    // RFC 3042: each of the first two dup ACKs signals a delivered
    // packet; send one new segment beyond the window to keep the ACK
    // clock alive (critical when the window is tiny).
    send_segment(next_seq_, /*is_retransmit=*/false);
    ++next_seq_;
  }
  // Dup ACKs beyond the threshold inflate the usable window via
  // effective_window(); send_available() (called by handle_packet)
  // transmits new data if the inflated window allows.
}

void TcpAgent::enter_recovery() {
  in_recovery_ = true;
  recover_ = next_seq_ - 1;
  ++stats_.congestion_events;
  apply_decrease();
  send_segment(snd_una_, /*is_retransmit=*/true);  // fast retransmit
}

void TcpAgent::apply_decrease() {
  ssthresh_ = std::max(2.0, policy_->decrease_to(cwnd_));
  cwnd_ = ssthresh_;
  last_decrease_ = sim_.now();
}

void TcpAgent::on_rto() {
  if (!running_ || outstanding() == 0) return;
  ++stats_.timeouts;
  ++stats_.congestion_events;

  // Timeout: lose self-clock, restart from one segment. The slow-start
  // threshold still honors the policy's decrease rule so that TCP(b)
  // variants return toward (1-b) of the pre-loss operating point.
  ssthresh_ = std::max(2.0, policy_->decrease_to(cwnd_));
  cwnd_ = 1.0;
  in_recovery_ = false;
  dup_acks_ = 0;
  backoff_ = std::min(backoff_ * 2, config_.max_backoff);
  last_decrease_ = sim_.now();

  // Go-back-N: everything past snd_una is treated as no longer in
  // flight and will be (re)sent as the window re-opens — the classic
  // BSD behavior (snd_nxt = snd_una on timeout). Without the rewind,
  // stale in-flight accounting (outstanding >> cwnd) would block all
  // transmission and each RTO would deliver exactly one packet.
  send_segment(snd_una_, /*is_retransmit=*/true);
  next_seq_ = snd_una_ + 1;
  restart_rto_timer();
}

void TcpAgent::maybe_complete() {
  if (complete_ || data_limit_ < 0 || snd_una_ < data_limit_) return;
  complete_ = true;
  running_ = false;
  rto_timer_.cancel();
  if (on_complete_) on_complete_();
}

}  // namespace slowcc::cc
