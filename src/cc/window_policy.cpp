#include "cc/window_policy.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/error.hpp"

namespace slowcc::cc {

AimdPolicy::AimdPolicy(double a, double b) : a_(a), b_(b) {
  if (a <= 0.0) throw sim::SimError(sim::SimErrc::kBadConfig, "AimdPolicy",
                                    "a must be > 0");
  if (b <= 0.0 || b >= 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "AimdPolicy",
                        "b must be in (0, 1)");
  }
}

double AimdPolicy::increase_per_rtt(double /*w*/) const { return a_; }

double AimdPolicy::decrease_to(double w) const {
  return std::max(1.0, (1.0 - b_) * w);
}

std::string AimdPolicy::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "AIMD(a=%.4g,b=%.4g)", a_, b_);
  return buf;
}

double AimdPolicy::compatible_a(double b) {
  if (b <= 0.0 || b >= 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "compatible_a",
                        "b must be in (0, 1)");
  }
  return 4.0 * (2.0 * b - b * b) / 3.0;
}

AimdPolicy AimdPolicy::tcp_compatible(double b) {
  return AimdPolicy(compatible_a(b), b);
}

BinomialPolicy::BinomialPolicy(double k, double l, double a, double b)
    : k_(k), l_(l), a_(a), b_(b) {
  if (a <= 0.0) throw sim::SimError(sim::SimErrc::kBadConfig, "BinomialPolicy",
                                    "a must be > 0");
  if (b <= 0.0) throw sim::SimError(sim::SimErrc::kBadConfig, "BinomialPolicy",
                                    "b must be > 0");
  if (l > 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "BinomialPolicy",
                        "l must be <= 1 for convergence to fairness");
  }
}

double BinomialPolicy::increase_per_rtt(double w) const {
  return a_ / std::pow(std::max(1.0, w), k_);
}

double BinomialPolicy::decrease_to(double w) const {
  const double dec = b_ * std::pow(std::max(1.0, w), l_);
  return std::max(1.0, w - dec);
}

std::string BinomialPolicy::name() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Binomial(k=%.3g,l=%.3g,a=%.4g,b=%.4g)", k_,
                l_, a_, b_);
  return buf;
}

BinomialPolicy BinomialPolicy::sqrt_policy(double b) {
  // For k + l = 1 the fluid steady state is W = sqrt(a/(b p)) regardless
  // of the (k, l) split, so the AIMD compatibility constant carries
  // over: a = 4(2b - b^2)/3 keeps SQRT(b) on TCP's response function.
  return BinomialPolicy(0.5, 0.5, AimdPolicy::compatible_a(b), b);
}

BinomialPolicy BinomialPolicy::iiad_policy(double b) {
  return BinomialPolicy(1.0, 0.0, AimdPolicy::compatible_a(std::min(b, 0.99)),
                        b);
}

}  // namespace slowcc::cc
