#include "cc/tfrc_loss_history.hpp"

#include <algorithm>

#include "sim/error.hpp"

namespace slowcc::cc {

TfrcLossHistory::TfrcLossHistory(int n) : n_(n) {
  if (n < 1) throw sim::SimError(sim::SimErrc::kBadConfig, "TfrcLossHistory",
                                 "n must be >= 1");
}

std::vector<double> TfrcLossHistory::weights(int n) {
  // TFRC draft weights: w_i = min(1, 2(n-i)/(n+2)), newest first.
  // n = 8 -> {1,1,1,1,0.8,0.6,0.4,0.2}.
  std::vector<double> w(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i)] =
        std::min(1.0, 2.0 * static_cast<double>(n - i) /
                          static_cast<double>(n + 2));
  }
  return w;
}

double TfrcLossHistory::current_discount() const {
  // History discounting (TFRC spec §5.5, simplified): once the open
  // loss-free interval exceeds twice the average of the closed history,
  // old intervals lose weight proportionally, letting the loss estimate
  // track a genuinely improved network quickly even with a long memory.
  if (!discounting_ || intervals_.empty() || event_start_seq_ < 0) return 1.0;
  const double open = static_cast<double>(expected_ - event_start_seq_);
  const double base = weighted_average(/*include_open=*/false);
  if (base <= 0.0 || open <= 2.0 * base) return 1.0;
  return std::max(kMinDiscount, 2.0 * base / open);
}

bool TfrcLossHistory::on_packet(std::int64_t seq, sim::Time now,
                                sim::Time sender_rtt) {
  bool new_event = false;

  if (seq >= expected_) {
    // Gap [expected_, seq) lost.
    for (std::int64_t missing = expected_; missing < seq; ++missing) {
      ++losses_;
      const bool starts_event =
          total_events_ == 0 ||
          (now - event_start_time_) > std::max(sender_rtt, sim::Time::millis(1));
      if (starts_event) {
        if (total_events_ > 0) {
          // Close the previous interval: sequence distance between the
          // first losses of consecutive events. Any history discount
          // earned by the (now closed) open interval resets here: when
          // losses resume, the estimator's full n-interval memory
          // returns. This reset is what makes a long-memory TFRC(k)
          // slow to re-learn congestion after good times — the paper's
          // §4.1 persistent-loss behavior.
          intervals_.push_front(
              static_cast<double>(missing - event_start_seq_));
          if (intervals_.size() > static_cast<std::size_t>(n_)) {
            intervals_.pop_back();
          }
        }
        event_start_seq_ = missing;
        event_start_time_ = now;
        ++total_events_;
        new_event = true;
      }
    }
    expected_ = seq + 1;
    ++packets_;
  }
  // seq < expected_: duplicate/late — impossible on FIFO paths; ignore.

  return new_event;
}

double TfrcLossHistory::weighted_average(bool include_open) const {
  const auto w = weights(n_);
  double num = 0.0;
  double den = 0.0;
  std::size_t wi = 0;

  // The live discount applies to closed intervals only while the open
  // interval keeps growing; it resets when the next loss event begins.
  const double live_df = include_open ? current_discount_for_average() : 1.0;

  if (include_open && event_start_seq_ >= 0) {
    const double open = static_cast<double>(expected_ - event_start_seq_);
    num += w[wi] * open;
    den += w[wi];
    ++wi;
  }
  for (double interval : intervals_) {
    if (wi >= w.size()) break;
    num += w[wi] * live_df * interval;
    den += w[wi] * live_df;
    ++wi;
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

double TfrcLossHistory::current_discount_for_average() const {
  // current_discount() itself calls weighted_average(false); that call
  // passes live_df = 1, so the recursion terminates immediately.
  return current_discount();
}

double TfrcLossHistory::average_interval() const {
  if (total_events_ == 0) return 0.0;
  const double with_open = weighted_average(/*include_open=*/true);
  const double without_open = weighted_average(/*include_open=*/false);
  return std::max(with_open, without_open);
}

double TfrcLossHistory::loss_event_rate() const {
  const double avg = average_interval();
  if (avg <= 0.0) return 0.0;
  return std::min(1.0, 1.0 / avg);
}

}  // namespace slowcc::cc
