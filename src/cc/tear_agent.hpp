#pragma once

#include "cc/agent.hpp"
#include "sim/timer.hpp"

namespace slowcc::cc {

/// TEAR receiver (Rhee et al. 2000): emulates the TCP congestion
/// window *at the receiver* from the arriving packet stream, smooths it
/// with an exponentially-weighted moving average, and reports
/// rate = EWMA(cwnd) · s / RTT back to the sender once per RTT.
///
/// This keeps TCP's window dynamics (so TEAR is TCP-compatible in the
/// static sense) while the averaging makes the *sending rate* slowly
/// responsive — the paper classifies TEAR as a SlowCC for exactly this
/// reason.
class TearSink final : public SinkBase {
 public:
  /// `ewma_weight`: weight of the newest window sample (default 0.125,
  /// roughly an 8-round memory like TFRC(8)).
  TearSink(sim::Simulator& sim, net::Node& local, double ewma_weight = 0.125);

  void handle_packet(const net::Packet& p) override;

  [[nodiscard]] double emulated_cwnd() const noexcept { return cwnd_; }
  [[nodiscard]] double smoothed_cwnd() const noexcept { return cwnd_avg_; }

 private:
  void on_feedback_timer();
  void send_feedback();

  sim::Timer feedback_timer_;
  double ewma_weight_;

  bool saw_packet_ = false;
  net::NodeId sender_node_ = net::kInvalidNode;
  net::PortId sender_port_ = 0;
  net::FlowId flow_ = 0;
  std::int64_t pkt_size_ = 1000;
  sim::Time sender_rtt_;
  sim::Time last_packet_stamp_;

  // Receiver-side TCP emulation.
  std::int64_t expected_ = 0;
  double cwnd_ = 2.0;
  double ssthresh_ = 1e9;
  double cwnd_avg_ = 0.0;
  bool have_avg_ = false;
  sim::Time last_loss_event_;
};

/// TEAR sender: transmits at whatever rate the receiver reports.
///
/// All congestion control intelligence lives in `TearSink`; the sender
/// is a rate-based pump with a no-feedback fallback (halve the rate if
/// reports stop arriving — the receiver may be unreachable).
class TearAgent final : public Agent {
 public:
  TearAgent(sim::Simulator& sim, net::Node& local, net::NodeId peer_node,
            net::PortId peer_port, net::FlowId flow);

  void start() override;
  void stop() override;
  void handle_packet(const net::Packet& p) override;

  [[nodiscard]] double rate_bytes_per_sec() const noexcept { return rate_; }
  [[nodiscard]] sim::Time srtt() const noexcept {
    return sim::Time::seconds(srtt_s_);
  }

 private:
  void on_send_timer();
  void on_no_feedback_timer();
  void schedule_next_send();

  sim::Timer send_timer_;
  sim::Timer no_feedback_timer_;

  bool running_ = false;
  double rate_ = 0.0;  // bytes per second
  std::int64_t next_seq_ = 0;
  double srtt_s_ = 0.0;
  bool have_rtt_ = false;
};

}  // namespace slowcc::cc
