#pragma once

#include <cstdint>
#include <vector>

#include "cc/agent.hpp"
#include "sim/timer.hpp"

namespace slowcc::cc {

/// TCP receiver: generates cumulative ACKs for data segments.
///
/// By default every segment is acknowledged immediately (the paper's
/// TCPs run without delayed acknowledgments). With
/// `set_delayed_acks(true)` the sink follows RFC 1122 delayed-ACK
/// rules: acknowledge every second in-order segment, or after
/// `delack_timeout` (default 200 ms), and immediately on out-of-order
/// arrivals (so fast retransmit still sees prompt dup ACKs).
///
/// Tracks out-of-order segments so the cumulative ACK advances over
/// holes filled by retransmissions. ACKs echo the data packet's
/// timestamp for RTT sampling and its ECN mark for congestion echo.
class TcpSink final : public SinkBase {
 public:
  TcpSink(sim::Simulator& sim, net::Node& local);

  void handle_packet(const net::Packet& p) override;

  /// Next sequence number expected in order.
  [[nodiscard]] std::int64_t next_expected() const noexcept {
    return next_expected_;
  }

  /// ACK size on the wire, bytes (default 40).
  void set_ack_size(std::int64_t bytes) noexcept { ack_size_ = bytes; }

  /// Enable RFC 1122 delayed acknowledgments (default off, matching
  /// the paper: "TCP without delayed acknowledgments").
  void set_delayed_acks(bool on) noexcept { delayed_acks_ = on; }
  void set_delack_timeout(sim::Time t) noexcept { delack_timeout_ = t; }
  [[nodiscard]] std::uint64_t acks_sent() const noexcept { return acks_sent_; }

 private:
  void send_ack();
  void on_delack_timer();

  static constexpr std::size_t kReorderReserve = 256;

  std::int64_t next_expected_ = 0;
  // Out-of-order segments, kept sorted ascending. A vector reserved at
  // flow setup: per-segment insert/erase touch contiguous memory and
  // never allocate until a reorder burst outgrows the reservation (a
  // full sender window fits several times over).
  std::vector<std::int64_t> out_of_order_;
  std::int64_t ack_size_ = 40;

  bool delayed_acks_ = false;
  sim::Time delack_timeout_ = sim::Time::millis(200);
  sim::Timer delack_timer_;
  bool ack_pending_ = false;   // one unacknowledged in-order segment held
  std::uint64_t acks_sent_ = 0;

  // Identity of the peer, learned from data packets, used by the
  // delayed-ACK timer path.
  net::NodeId peer_node_ = net::kInvalidNode;
  net::PortId peer_port_ = 0;
  net::FlowId flow_ = 0;
  sim::Time last_stamp_;
  bool last_ecn_ = false;
};

}  // namespace slowcc::cc
