#pragma once

#include "cc/agent.hpp"
#include "sim/timer.hpp"

namespace slowcc::cc {

/// TFRC sender tunables.
struct TfrcConfig {
  /// Enable the paper's `conservative_` option (§4.1.1): after a loss
  /// report, cap the sending rate at the reported receive rate; in the
  /// absence of loss, cap it at `conservative_c` × receive rate. This
  /// re-imposes packet conservation (self-clocking) on TFRC.
  bool conservative = false;
  /// The constant C in the pseudo-code; the paper uses 1.1.
  double conservative_c = 1.1;
  /// RTT EWMA weight q: R <- q R + (1-q) sample.
  double rtt_weight = 0.9;
  /// Maximum back-off interval t_mbi: rate floor is one packet per
  /// t_mbi seconds (spec value 64 s).
  double t_mbi = 64.0;
};

/// TFRC(k) sender: equation-based rate control (Floyd et al. 2000).
///
/// The sending rate is computed from the receiver-reported loss event
/// rate via the Padhye TCP response function, capped at twice the
/// reported receive rate (spec behavior), or — with the conservative
/// option — at the receive rate itself after a loss (the paper's
/// "TFRC with self-clocking"). Transmission is timer-driven at the
/// allowed rate, NOT clocked by feedback: TFRC is rate-based, which is
/// the behavior §4.1 of the paper stresses. The `k` of TFRC(k) lives in
/// the paired `TfrcSink`'s loss history.
class TfrcAgent final : public Agent {
 public:
  TfrcAgent(sim::Simulator& sim, net::Node& local, net::NodeId peer_node,
            net::PortId peer_port, net::FlowId flow,
            const TfrcConfig& config = {});

  void start() override;
  void stop() override;
  void handle_packet(const net::Packet& p) override;

  [[nodiscard]] double rate_bytes_per_sec() const noexcept { return rate_; }
  [[nodiscard]] double rate_bps() const noexcept { return rate_ * 8.0; }
  [[nodiscard]] sim::Time srtt() const noexcept {
    return sim::Time::seconds(srtt_s_);
  }
  [[nodiscard]] bool in_slow_start() const noexcept { return slow_start_; }
  [[nodiscard]] const TfrcConfig& config() const noexcept { return config_; }

 private:
  void on_send_timer();
  void on_no_feedback_timer();
  void schedule_next_send();
  void restart_no_feedback_timer();
  [[nodiscard]] double min_rate() const noexcept;

  TfrcConfig config_;
  sim::Timer send_timer_;
  sim::Timer no_feedback_timer_;

  bool running_ = false;
  bool slow_start_ = true;
  double rate_ = 0.0;  // bytes per second
  std::int64_t next_seq_ = 0;

  double srtt_s_ = 0.0;
  bool have_rtt_ = false;
};

}  // namespace slowcc::cc
