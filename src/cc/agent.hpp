#pragma once

#include <cstdint>
#include <functional>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace slowcc::cc {

/// Counters every sending agent maintains.
struct AgentStats {
  std::uint64_t packets_sent = 0;    // includes retransmissions
  std::int64_t bytes_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;        // retransmit-timer expirations
  std::uint64_t acks_received = 0;   // ack/feedback packets processed
  std::uint64_t congestion_events = 0;  // window/rate reductions
};

/// Base class for sending transport endpoints.
///
/// An agent lives on a node, owns a local port, and exchanges packets
/// with a peer endpoint (a sink) identified by node + port. Subclasses
/// implement the congestion control algorithm; this class provides
/// addressing, packet construction, and the injection path (packets are
/// handed to the local node, which routes them).
class Agent : public net::PacketHandler {
 public:
  Agent(sim::Simulator& sim, net::Node& local, net::NodeId peer_node,
        net::PortId peer_port, net::FlowId flow);
  ~Agent() override;

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Begin transmitting. Idempotent.
  virtual void start() = 0;

  /// Stop transmitting and cancel timers. The agent stays attached so
  /// late packets are absorbed quietly. Idempotent.
  virtual void stop() = 0;

  [[nodiscard]] const AgentStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::FlowId flow() const noexcept { return flow_; }
  [[nodiscard]] net::PortId local_port() const noexcept { return local_port_; }
  [[nodiscard]] net::Node& local_node() noexcept { return local_; }

  /// Data segment size used by this flow, bytes (default 1000).
  void set_packet_size(std::int64_t bytes) noexcept { packet_size_ = bytes; }
  [[nodiscard]] std::int64_t packet_size() const noexcept {
    return packet_size_;
  }

 protected:
  /// Build a packet addressed to the peer with this agent's identity
  /// stamped on it.
  [[nodiscard]] net::Packet make_packet(net::PacketType type) const;

  /// Hand a packet to the local node for routing/delivery.
  void inject(net::Packet&& p);

  sim::Simulator& sim_;
  net::Node& local_;
  net::NodeId peer_node_;
  net::PortId peer_port_;
  net::PortId local_port_;
  net::FlowId flow_;
  std::int64_t packet_size_ = 1000;
  AgentStats stats_;
};

/// Base class for receiving endpoints; counts goodput so experiments
/// can measure per-flow throughput where the paper does (at the
/// receiver).
class SinkBase : public net::PacketHandler {
 public:
  SinkBase(sim::Simulator& sim, net::Node& local);
  ~SinkBase() override;

  SinkBase(const SinkBase&) = delete;
  SinkBase& operator=(const SinkBase&) = delete;

  [[nodiscard]] net::PortId local_port() const noexcept { return local_port_; }
  [[nodiscard]] net::Node& local_node() noexcept { return local_; }
  [[nodiscard]] std::int64_t bytes_received() const noexcept {
    return bytes_received_;
  }
  [[nodiscard]] std::uint64_t packets_received() const noexcept {
    return packets_received_;
  }

 protected:
  void note_received(const net::Packet& p) {
    bytes_received_ += p.size_bytes;
    ++packets_received_;
  }

  sim::Simulator& sim_;
  net::Node& local_;
  net::PortId local_port_;

 private:
  std::int64_t bytes_received_ = 0;
  std::uint64_t packets_received_ = 0;
};

}  // namespace slowcc::cc
