#pragma once

#include <memory>
#include <string>

namespace slowcc::cc {

/// Pluggable congestion-avoidance increase/decrease rules.
///
/// `TcpAgent` owns the loss-detection, retransmission, and
/// self-clocking machinery and delegates only the window arithmetic to
/// a policy. This mirrors the paper's framing: TCP(1/γ) and SQRT(1/γ)
/// share every TCP mechanism except the increase/decrease rules.
class WindowPolicy {
 public:
  virtual ~WindowPolicy() = default;

  /// Window growth per congestion-avoidance RTT at window `w` (the
  /// agent divides by `w` to apply it per ACK).
  [[nodiscard]] virtual double increase_per_rtt(double w) const = 0;

  /// New window after one congestion event at window `w`.
  /// Implementations must return a value in [1, w).
  [[nodiscard]] virtual double decrease_to(double w) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// AIMD(a, b): w += a per RTT; w -= b·w on congestion.
class AimdPolicy final : public WindowPolicy {
 public:
  AimdPolicy(double a, double b);

  [[nodiscard]] double increase_per_rtt(double w) const override;
  [[nodiscard]] double decrease_to(double w) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double a() const noexcept { return a_; }
  [[nodiscard]] double b() const noexcept { return b_; }

  /// The paper's TCP-compatibility relation: a = 4(2b − b²)/3, so
  /// AIMD(a(b), b) matches TCP(1, 1/2)'s response function. b = 1/2
  /// yields a = 1 (standard TCP).
  [[nodiscard]] static double compatible_a(double b);

  /// AIMD(a(b), b) — the TCP-compatible instance for decrease factor b.
  [[nodiscard]] static AimdPolicy tcp_compatible(double b);

 private:
  double a_;
  double b_;
};

/// Binomial(k, l, a, b): w += a/w^k per RTT; w -= b·w^l on congestion
/// (Bansal & Balakrishnan 2001). TCP-compatible iff k + l = 1, l <= 1.
class BinomialPolicy final : public WindowPolicy {
 public:
  BinomialPolicy(double k, double l, double a, double b);

  [[nodiscard]] double increase_per_rtt(double w) const override;
  [[nodiscard]] double decrease_to(double w) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double k() const noexcept { return k_; }
  [[nodiscard]] double l() const noexcept { return l_; }

  /// SQRT(b): k = l = 1/2 with decrease factor b and the TCP-compatible
  /// increase constant.
  [[nodiscard]] static BinomialPolicy sqrt_policy(double b);

  /// IIAD: k = 1, l = 0 (inverse-increase, additive-decrease).
  [[nodiscard]] static BinomialPolicy iiad_policy(double b = 1.0);

 private:
  double k_;
  double l_;
  double a_;
  double b_;
};

}  // namespace slowcc::cc
