#pragma once

#include <utility>
#include <vector>

#include "cc/agent.hpp"
#include "cc/tfrc_loss_history.hpp"
#include "sim/timer.hpp"

namespace slowcc::cc {

/// TFRC receiver.
///
/// Maintains the loss-event history, measures the receive rate, and
/// reports {loss event rate, receive rate, echoed timestamp, whether a
/// new loss event occurred} back to the sender — once per RTT, plus an
/// immediate report whenever a new loss event starts (so the sender
/// reacts within one RTT of congestion, per the TFRC specification).
class TfrcSink final : public SinkBase {
 public:
  /// `history_n` is the k of TFRC(k): loss intervals averaged.
  TfrcSink(sim::Simulator& sim, net::Node& local, int history_n);

  void handle_packet(const net::Packet& p) override;

  [[nodiscard]] const TfrcLossHistory& history() const noexcept {
    return history_;
  }
  [[nodiscard]] TfrcLossHistory& history() noexcept { return history_; }

  void set_feedback_size(std::int64_t bytes) noexcept {
    feedback_size_ = bytes;
  }

 private:
  void send_feedback();
  void on_feedback_timer();

  TfrcLossHistory history_;
  sim::Timer feedback_timer_;
  std::int64_t feedback_size_ = 40;

  bool saw_packet_ = false;
  net::NodeId sender_node_ = net::kInvalidNode;
  net::PortId sender_port_ = 0;
  net::FlowId flow_ = 0;

  sim::Time last_packet_stamp_;   // sent_at of the latest data packet
  sim::Time sender_rtt_;          // sender's RTT estimate, from packets
  bool data_since_feedback_ = false;
  bool loss_since_feedback_ = false;

  // Rolling window of arrivals for the receive-rate estimate. Rate is
  // measured over (roughly) the last RTT regardless of when feedback
  // fires, so expedited loss reports don't inflate X_recv by measuring
  // over a near-zero interval.
  //
  // Stored as a ring over a vector sized at flow setup: per-packet
  // push/evict reuse slots in place and never allocate until a burst
  // outgrows the reservation (doubled on the cold path).
  static constexpr std::size_t kWindowReserve = 512;
  std::vector<std::pair<sim::Time, std::int64_t>> window_;
  std::size_t win_head_ = 0;   // index of the oldest entry
  std::size_t win_count_ = 0;  // live entries
  void window_push(sim::Time t, std::int64_t bytes);
  void window_evict_older_than(sim::Time horizon_start);
  [[nodiscard]] double receive_rate_bytes_per_sec() const;
  [[nodiscard]] sim::Time rate_window() const;
};

}  // namespace slowcc::cc
