#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "cc/agent.hpp"
#include "cc/window_policy.hpp"
#include "sim/timer.hpp"

namespace slowcc::cc {

/// Tunables for the TCP machinery (defaults follow ns-2-era settings;
/// the paper's scenarios use 1000-byte segments and ~50 ms RTTs).
struct TcpConfig {
  double initial_cwnd = 2.0;         // packets
  double initial_ssthresh = 1e9;     // effectively "slow-start to loss"
  sim::Time min_rto = sim::Time::millis(200);
  sim::Time max_rto = sim::Time::seconds(64.0);
  int max_backoff = 64;              // cap on the exponential backoff factor
  int dupack_threshold = 3;
  bool react_to_ecn = true;          // treat echoed marks as congestion
  /// RFC 3042 Limited Transmit (paper ref [1]): send one new segment on
  /// each of the first two duplicate ACKs, keeping the ACK clock alive
  /// for small windows. Off by default (not part of the paper's TCPs).
  bool limited_transmit = false;
};

/// Window-based, self-clocked transport: TCP(b) and the binomial
/// algorithms, depending on the installed `WindowPolicy`.
///
/// Implements slow-start, congestion avoidance via the policy, fast
/// retransmit + NewReno-style recovery (partial ACKs retransmit the
/// next hole; window inflation by dupack count), retransmit timeouts
/// with exponential backoff, and Karn-free RTT sampling from echoed
/// timestamps. Transmissions are clocked by ACK arrivals — the packet
/// conservation principle that the paper identifies as the crucial
/// safety mechanism under dynamic conditions.
class TcpAgent final : public Agent {
 public:
  TcpAgent(sim::Simulator& sim, net::Node& local, net::NodeId peer_node,
           net::PortId peer_port, net::FlowId flow,
           std::unique_ptr<WindowPolicy> policy,
           const TcpConfig& config = {});

  /// TCP(b): AIMD with the paper's TCP-compatible a(b). b = 1/2 is
  /// standard TCP.
  [[nodiscard]] static std::unique_ptr<TcpAgent> make_tcp(
      sim::Simulator& sim, net::Node& local, net::NodeId peer_node,
      net::PortId peer_port, net::FlowId flow, double b = 0.5);

  /// SQRT(b): binomial k = l = 1/2 sharing all TCP machinery.
  [[nodiscard]] static std::unique_ptr<TcpAgent> make_sqrt(
      sim::Simulator& sim, net::Node& local, net::NodeId peer_node,
      net::PortId peer_port, net::FlowId flow, double b = 0.5);

  /// IIAD: binomial k = 1, l = 0.
  [[nodiscard]] static std::unique_ptr<TcpAgent> make_iiad(
      sim::Simulator& sim, net::Node& local, net::NodeId peer_node,
      net::PortId peer_port, net::FlowId flow);

  void start() override;
  void stop() override;
  void handle_packet(const net::Packet& p) override;

  /// Limit the flow to `packets` data segments (for short web
  /// transfers); unlimited by default.
  void set_data_limit(std::int64_t packets) noexcept { data_limit_ = packets; }

  /// Invoked once when a limited flow has every segment acknowledged.
  void set_completion_callback(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }

  [[nodiscard]] bool complete() const noexcept { return complete_; }
  [[nodiscard]] double cwnd() const noexcept { return cwnd_; }
  [[nodiscard]] double ssthresh() const noexcept { return ssthresh_; }
  [[nodiscard]] bool in_recovery() const noexcept { return in_recovery_; }
  [[nodiscard]] sim::Time srtt() const noexcept {
    return sim::Time::seconds(srtt_s_);
  }
  [[nodiscard]] sim::Time current_rto() const;
  [[nodiscard]] const WindowPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] std::int64_t snd_una() const noexcept { return snd_una_; }
  [[nodiscard]] std::int64_t next_seq() const noexcept { return next_seq_; }

 private:
  void send_available();
  void send_segment(std::int64_t seq, bool is_retransmit);
  void on_new_ack(const net::Packet& ack);
  void on_dup_ack(const net::Packet& ack);
  void on_rto();
  void enter_recovery();
  void apply_decrease();
  void sample_rtt(sim::Time sample);
  void restart_rto_timer();
  [[nodiscard]] std::int64_t outstanding() const noexcept {
    return next_seq_ - snd_una_;
  }
  [[nodiscard]] double effective_window() const noexcept;
  void maybe_complete();

  std::unique_ptr<WindowPolicy> policy_;
  TcpConfig config_;
  sim::Timer rto_timer_;

  bool running_ = false;
  bool complete_ = false;

  double cwnd_;
  double ssthresh_;
  std::int64_t next_seq_ = 0;
  std::int64_t snd_una_ = 0;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = -1;  // highest seq sent when recovery began

  // RTT estimation (RFC 6298 smoothing), seconds.
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  bool have_rtt_ = false;
  int backoff_ = 1;

  // ECN: at most one reaction per RTT.
  sim::Time last_decrease_;

  std::int64_t data_limit_ = -1;  // -1 = unlimited
  std::function<void()> on_complete_;
};

}  // namespace slowcc::cc
