#pragma once

#include <set>

#include "cc/agent.hpp"
#include "sim/timer.hpp"

namespace slowcc::cc {

/// RAP receiver: acknowledges every data packet individually (echoing
/// its sequence number and timestamp). The sender reconstructs losses
/// from holes in the acknowledged sequence space.
class RapSink final : public SinkBase {
 public:
  RapSink(sim::Simulator& sim, net::Node& local);
  void handle_packet(const net::Packet& p) override;

  void set_ack_size(std::int64_t bytes) noexcept { ack_size_ = bytes; }

 private:
  std::int64_t ack_size_ = 40;
};

/// Tunables for RAP.
struct RapConfig {
  double initial_rate_pps = 2.0;   // packets per second at start
  double min_rate_pps = 0.5;       // floor (one packet per 2 s)
  int loss_detection_gap = 3;      // acks beyond a hole => loss (3-dupack analogue)
};

/// Rejaie et al.'s Rate Adaptation Protocol: AIMD applied to a *rate*.
///
/// RAP(b) increases its rate by the TCP-compatible a(b) packets/RTT
/// each RTT without loss, and multiplies the rate by (1-b) on each loss
/// event (at most once per RTT). Standard RAP is RAP(1/2), which is
/// TCP-equivalent in increase/decrease rules — but crucially RAP is
/// *rate-based*: transmissions come from a timer at the current rate,
/// not from ACK arrivals. The absence of self-clocking is what §4.1 of
/// the paper isolates with this agent.
class RapAgent final : public Agent {
 public:
  RapAgent(sim::Simulator& sim, net::Node& local, net::NodeId peer_node,
           net::PortId peer_port, net::FlowId flow, double b = 0.5,
           const RapConfig& config = {});

  void start() override;
  void stop() override;
  void handle_packet(const net::Packet& p) override;

  [[nodiscard]] double rate_pps() const noexcept { return rate_pps_; }
  [[nodiscard]] double rate_bps() const noexcept {
    return rate_pps_ * static_cast<double>(packet_size()) * 8.0;
  }
  [[nodiscard]] sim::Time srtt() const noexcept {
    return sim::Time::seconds(srtt_s_);
  }

 private:
  void on_send_timer();
  void on_increase_timer();
  void on_timeout();
  void loss_event();
  void schedule_next_send();

  double a_;  // increase, packets per RTT
  double b_;  // multiplicative decrease factor
  RapConfig config_;

  sim::Timer send_timer_;
  sim::Timer increase_timer_;
  sim::Timer timeout_timer_;

  bool running_ = false;
  double rate_pps_;
  std::int64_t next_seq_ = 0;
  std::int64_t recover_ = -1;    // loss events for seqs <= recover_ are merged
  std::set<std::int64_t> unacked_;

  double srtt_s_ = 0.05;
  bool have_rtt_ = false;
  bool loss_since_increase_ = false;
};

}  // namespace slowcc::cc
