#include "cc/rap_agent.hpp"

#include <algorithm>
#include <cmath>

#include "cc/window_policy.hpp"

namespace slowcc::cc {

RapSink::RapSink(sim::Simulator& sim, net::Node& local)
    : SinkBase(sim, local) {}

void RapSink::handle_packet(const net::Packet& p) {
  if (p.type != net::PacketType::kData) return;
  note_received(p);

  net::Packet ack;
  ack.type = net::PacketType::kRapAck;
  ack.src_node = local_.id();
  ack.src_port = local_port_;
  ack.dst_node = p.src_node;
  ack.dst_port = p.src_port;
  ack.flow = p.flow;
  ack.size_bytes = ack_size_;
  ack.seq = p.seq;
  ack.sent_at = sim_.now();
  ack.echo = p.sent_at;
  local_.deliver(std::move(ack));
}

RapAgent::RapAgent(sim::Simulator& sim, net::Node& local,
                   net::NodeId peer_node, net::PortId peer_port,
                   net::FlowId flow, double b, const RapConfig& config)
    : Agent(sim, local, peer_node, peer_port, flow),
      a_(AimdPolicy::compatible_a(b)),
      b_(b),
      config_(config),
      send_timer_(sim, [this] { on_send_timer(); }),
      increase_timer_(sim, [this] { on_increase_timer(); }),
      timeout_timer_(sim, [this] { on_timeout(); }),
      rate_pps_(config.initial_rate_pps) {}

void RapAgent::start() {
  if (running_) return;
  running_ = true;
  schedule_next_send();
  increase_timer_.schedule_in(sim::Time::seconds(srtt_s_));
  timeout_timer_.schedule_in(sim::Time::seconds(4.0 * srtt_s_ + 1.0));
}

void RapAgent::stop() {
  running_ = false;
  send_timer_.cancel();
  increase_timer_.cancel();
  timeout_timer_.cancel();
}

void RapAgent::schedule_next_send() {
  if (!running_) return;
  send_timer_.schedule_in(sim::Time::seconds(1.0 / rate_pps_));
}

void RapAgent::on_send_timer() {
  if (!running_) return;
  net::Packet p = make_packet(net::PacketType::kData);
  p.seq = next_seq_;
  p.rtt_estimate = srtt();
  unacked_.insert(next_seq_);
  ++next_seq_;
  // Bound sender state: anything more than ~8 RTTs of packets old and
  // still unacked is certainly gone; forget it without further action
  // (the loss was already accounted when newer ACKs arrived).
  while (unacked_.size() > 4096) unacked_.erase(unacked_.begin());
  inject(std::move(p));
  schedule_next_send();
}

void RapAgent::on_increase_timer() {
  if (!running_) return;
  if (!loss_since_increase_) {
    // Additive increase: a packets per RTT each RTT  =>  rate grows by
    // a/srtt packets/sec.
    rate_pps_ += a_ / std::max(srtt_s_, 1e-4);
  }
  loss_since_increase_ = false;
  increase_timer_.schedule_in(sim::Time::seconds(std::max(srtt_s_, 1e-3)));
}

void RapAgent::loss_event() {
  ++stats_.congestion_events;
  rate_pps_ = std::max(config_.min_rate_pps, rate_pps_ * (1.0 - b_));
  loss_since_increase_ = true;
  // Merge all losses within the packets currently in flight into one
  // event, as RAP (and TCP) do.
  recover_ = next_seq_ - 1;
}

void RapAgent::handle_packet(const net::Packet& p) {
  if (p.type != net::PacketType::kRapAck || !running_) return;
  ++stats_.acks_received;

  const sim::Time sample = sim_.now() - p.echo;
  if (!have_rtt_) {
    srtt_s_ = sample.as_seconds();
    have_rtt_ = true;
  } else {
    srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample.as_seconds();
  }

  unacked_.erase(p.seq);

  // Hole-based loss detection: once `loss_detection_gap` packets beyond
  // an unacked sequence have been acknowledged, that packet is lost.
  const std::int64_t lost_below = p.seq - config_.loss_detection_gap;
  bool fresh_loss = false;
  auto it = unacked_.begin();
  while (it != unacked_.end() && *it <= lost_below) {
    if (*it > recover_) fresh_loss = true;
    it = unacked_.erase(it);
  }
  if (fresh_loss) loss_event();

  // ACK activity refreshes the fallback timeout.
  timeout_timer_.schedule_in(
      sim::Time::seconds(std::max(4.0 * srtt_s_, 0.5)));
}

void RapAgent::on_timeout() {
  if (!running_) return;
  // No ACKs for several RTTs: the path is badly congested (or the
  // bottleneck rate collapsed). Being rate-based, RAP has no ACK clock
  // to throttle it; it backs off multiplicatively once per timeout
  // period. This slow drain — compared to TCP's instant collapse to
  // the ACK rate — is exactly the transient the paper studies.
  ++stats_.timeouts;
  loss_event();
  timeout_timer_.schedule_in(sim::Time::seconds(std::max(4.0 * srtt_s_, 0.5)));
}

}  // namespace slowcc::cc
