#include "cc/tfrc_agent.hpp"

#include <algorithm>
#include <cmath>

#include "cc/response_function.hpp"

namespace slowcc::cc {

TfrcAgent::TfrcAgent(sim::Simulator& sim, net::Node& local,
                     net::NodeId peer_node, net::PortId peer_port,
                     net::FlowId flow, const TfrcConfig& config)
    : Agent(sim, local, peer_node, peer_port, flow),
      config_(config),
      send_timer_(sim, [this] { on_send_timer(); }),
      no_feedback_timer_(sim, [this] { on_no_feedback_timer(); }) {}

double TfrcAgent::min_rate() const noexcept {
  return static_cast<double>(packet_size()) / config_.t_mbi;
}

void TfrcAgent::start() {
  if (running_) return;
  running_ = true;
  // Initial rate: one packet per second until the first feedback
  // establishes an RTT (the spec's initial window of one packet). The
  // first packet goes out immediately so the first feedback — and the
  // jump to one packet per RTT — arrives one RTT from now.
  rate_ = static_cast<double>(packet_size());
  send_timer_.schedule_in(sim::Time());
  no_feedback_timer_.schedule_in(sim::Time::seconds(2.0));
}

void TfrcAgent::stop() {
  running_ = false;
  send_timer_.cancel();
  no_feedback_timer_.cancel();
}

void TfrcAgent::schedule_next_send() {
  if (!running_) return;
  const double gap_s = static_cast<double>(packet_size()) / rate_;
  send_timer_.schedule_in(sim::Time::seconds(gap_s));
}

void TfrcAgent::on_send_timer() {
  if (!running_) return;
  net::Packet p = make_packet(net::PacketType::kTfrcData);
  p.seq = next_seq_++;
  p.rtt_estimate = srtt();
  inject(std::move(p));
  schedule_next_send();
}

void TfrcAgent::handle_packet(const net::Packet& p) {
  if (p.type != net::PacketType::kTfrcFeedback || !running_) return;
  ++stats_.acks_received;

  // RTT update.
  const double sample = (sim_.now() - p.echo - p.feedback.delay).as_seconds();
  if (!have_rtt_) {
    srtt_s_ = sample;
    have_rtt_ = true;
    // First feedback: jump to one packet per RTT.
    rate_ = std::max(rate_, static_cast<double>(packet_size()) /
                                std::max(srtt_s_, 1e-4));
  } else {
    srtt_s_ = config_.rtt_weight * srtt_s_ +
              (1.0 - config_.rtt_weight) * sample;
  }

  const double p_loss = p.feedback.loss_event_rate;
  const double x_recv = p.feedback.receive_rate;

  if (p_loss <= 0.0 && slow_start_) {
    // Loss-free slow start: double per feedback, bounded by twice the
    // receive rate (the cap the paper notes "emulates TCP's slow-start
    // phase"). The very first report can carry no rate measurement
    // (zero elapsed time at the receiver); skip the cap then.
    const double cap = x_recv > 0.0 ? 2.0 * x_recv : 2.0 * rate_;
    rate_ = std::max(std::min(2.0 * rate_, cap), min_rate());
  } else {
    if (p_loss > 0.0) slow_start_ = false;
    const double x_calc = padhye_rate_bytes_per_sec(
        std::max(p_loss, 1e-8), sim::Time::seconds(srtt_s_), packet_size());

    double cap;
    if (config_.conservative) {
      // The paper's pseudo-code (§4.1.1):
      //   if loss reported:       SEND_RATE = min(CALC, RECV)
      //   else if not slow-start: SEND_RATE = min(CALC, C × RECV)
      cap = p.feedback.loss_seen ? x_recv : config_.conservative_c * x_recv;
    } else {
      cap = 2.0 * x_recv;  // spec default
    }
    const double old_rate = rate_;
    rate_ = std::max(std::min(x_calc, cap), min_rate());
    if (rate_ < old_rate) ++stats_.congestion_events;
  }

  restart_no_feedback_timer();
}

void TfrcAgent::restart_no_feedback_timer() {
  // Spec: max(4 R, 2 s / X) seconds.
  const double r = have_rtt_ ? srtt_s_ : 0.5;
  const double interval =
      std::max(4.0 * r, 2.0 * static_cast<double>(packet_size()) / rate_);
  no_feedback_timer_.schedule_in(sim::Time::seconds(interval));
}

void TfrcAgent::on_no_feedback_timer() {
  if (!running_) return;
  // No feedback for several RTTs: halve the allowed rate.
  ++stats_.timeouts;
  rate_ = std::max(rate_ / 2.0, min_rate());
  restart_no_feedback_timer();
}

}  // namespace slowcc::cc
