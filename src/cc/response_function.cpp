#include "cc/response_function.hpp"

#include <algorithm>
#include <cmath>

#include "sim/error.hpp"

namespace slowcc::cc {

double simple_response_pkts_per_rtt(double loss_rate) {
  return aimd_response_pkts_per_rtt(1.0, 0.5, loss_rate);
}

double aimd_response_pkts_per_rtt(double a, double b, double loss_rate) {
  if (loss_rate <= 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "aimd_response",
                        "loss rate must be > 0");
  }
  // Deterministic sawtooth: window oscillates between (1-b)W and W with
  // 1/p packets per cycle; average window sqrt(a(2-b)/(2b p)).
  return std::sqrt(a * (2.0 - b) / (2.0 * b * loss_rate));
}

double padhye_rate_bytes_per_sec(double loss_event_rate, sim::Time rtt,
                                 std::int64_t packet_size_bytes,
                                 sim::Time t_rto) {
  if (loss_event_rate <= 0.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "padhye_rate",
                        "loss rate must be > 0");
  }
  const double p = std::min(1.0, loss_event_rate);
  const double r = rtt.as_seconds();
  const double s = static_cast<double>(packet_size_bytes);
  const double rto = t_rto.is_zero() ? 4.0 * r : t_rto.as_seconds();

  const double term_ca = r * std::sqrt(2.0 * p / 3.0);
  const double term_to =
      rto * std::min(1.0, 3.0 * std::sqrt(3.0 * p / 8.0)) * p *
      (1.0 + 32.0 * p * p);
  return s / (term_ca + term_to);
}

double padhye_pkts_per_rtt(double loss_event_rate) {
  // Rate in packets/RTT is independent of s and R when t_RTO = 4R:
  // evaluate with unit packet size and unit RTT.
  const sim::Time unit_rtt = sim::Time::seconds(1.0);
  return padhye_rate_bytes_per_sec(loss_event_rate, unit_rtt, 1);
}

}  // namespace slowcc::cc
