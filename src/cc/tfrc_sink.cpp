#include "cc/tfrc_sink.hpp"

#include <algorithm>

namespace slowcc::cc {

TfrcSink::TfrcSink(sim::Simulator& sim, net::Node& local, int history_n)
    : SinkBase(sim, local),
      history_(history_n),
      feedback_timer_(sim, [this] { on_feedback_timer(); }) {
  window_.resize(kWindowReserve);
}

void TfrcSink::window_push(sim::Time t, std::int64_t bytes) {
  if (win_count_ == window_.size()) {
    // Cold path: a 2x-RTT burst outgrew the setup-time reservation.
    // Re-linearize into a doubled ring; amortized O(1) per packet.
    std::vector<std::pair<sim::Time, std::int64_t>> bigger(window_.size() * 2);
    for (std::size_t i = 0; i < win_count_; ++i) {
      bigger[i] = window_[(win_head_ + i) % window_.size()];
    }
    window_ = std::move(bigger);
    win_head_ = 0;
  }
  window_[(win_head_ + win_count_) % window_.size()] = {t, bytes};
  ++win_count_;
}

void TfrcSink::window_evict_older_than(sim::Time horizon_start) {
  while (win_count_ != 0 && window_[win_head_].first < horizon_start) {
    win_head_ = (win_head_ + 1) % window_.size();
    --win_count_;
  }
}

sim::Time TfrcSink::rate_window() const {
  // Measure the receive rate over about one RTT, but never less than
  // 50 ms so a handful of back-to-back packets can't fake a huge rate.
  return std::max(sender_rtt_, sim::Time::millis(50));
}

double TfrcSink::receive_rate_bytes_per_sec() const {
  if (win_count_ == 0) return 0.0;
  const sim::Time w = rate_window();
  std::int64_t bytes = 0;
  for (std::size_t i = 0; i < win_count_; ++i) {
    const auto& [t, b] = window_[(win_head_ + i) % window_.size()];
    if (sim_.now() - t <= w) bytes += b;
  }
  return static_cast<double>(bytes) / w.as_seconds();
}

void TfrcSink::handle_packet(const net::Packet& p) {
  if (p.type != net::PacketType::kTfrcData) return;
  note_received(p);

  sender_node_ = p.src_node;
  sender_port_ = p.src_port;
  flow_ = p.flow;
  last_packet_stamp_ = p.sent_at;
  sender_rtt_ = p.rtt_estimate;
  data_since_feedback_ = true;

  window_push(sim_.now(), p.size_bytes);
  window_evict_older_than(sim_.now() - rate_window() * 2.0);

  const bool new_event = history_.on_packet(p.seq, sim_.now(), p.rtt_estimate);
  if (new_event) loss_since_feedback_ = true;

  if (!saw_packet_) {
    saw_packet_ = true;
    // First packet: report immediately so the sender learns the RTT.
    send_feedback();
  } else if (new_event) {
    // Expedited feedback on a fresh loss event.
    send_feedback();
  }
}

void TfrcSink::on_feedback_timer() {
  if (!saw_packet_) return;
  if (!data_since_feedback_) {
    // Nothing arrived: a report now would carry X_recv ~ 0 and starve
    // the sender permanently. Stay silent; the sender's no-feedback
    // timer handles a genuinely dead path.
    feedback_timer_.schedule_in(rate_window());
    return;
  }
  send_feedback();
}

void TfrcSink::send_feedback() {
  net::Packet fb;
  fb.type = net::PacketType::kTfrcFeedback;
  fb.src_node = local_.id();
  fb.src_port = local_port_;
  fb.dst_node = sender_node_;
  fb.dst_port = sender_port_;
  fb.flow = flow_;
  fb.size_bytes = feedback_size_;
  fb.sent_at = sim_.now();
  fb.echo = last_packet_stamp_;
  fb.feedback.loss_event_rate = history_.loss_event_rate();
  fb.feedback.receive_rate = receive_rate_bytes_per_sec();
  // "Loss reported" means a loss event began within the last RTT — not
  // merely since the previous report. Expedited reports would otherwise
  // consume the flag and let the very next periodic report claim a
  // loss-free RTT in the middle of persistent congestion, defeating the
  // conservative option's receive-rate cap.
  fb.feedback.loss_seen =
      history_.loss_events() > 0 &&
      sim_.now() - history_.last_event_start() <= rate_window();
  local_.deliver(std::move(fb));

  data_since_feedback_ = false;
  loss_since_feedback_ = false;

  // Next periodic report one (sender-estimated) RTT from now.
  feedback_timer_.schedule_in(rate_window());
}

}  // namespace slowcc::cc
