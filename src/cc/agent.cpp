#include "cc/agent.hpp"

namespace slowcc::cc {

Agent::Agent(sim::Simulator& sim, net::Node& local, net::NodeId peer_node,
             net::PortId peer_port, net::FlowId flow)
    : sim_(sim),
      local_(local),
      peer_node_(peer_node),
      peer_port_(peer_port),
      local_port_(local.allocate_port()),
      flow_(flow) {
  local_.attach(local_port_, *this);
}

Agent::~Agent() { local_.detach(local_port_); }

net::Packet Agent::make_packet(net::PacketType type) const {
  net::Packet p;
  p.type = type;
  p.src_node = local_.id();
  p.src_port = local_port_;
  p.dst_node = peer_node_;
  p.dst_port = peer_port_;
  p.flow = flow_;
  p.size_bytes = packet_size_;
  p.sent_at = sim_.now();
  p.uid = sim_.next_packet_uid();
  return p;
}

void Agent::inject(net::Packet&& p) {
  ++stats_.packets_sent;
  stats_.bytes_sent += p.size_bytes;
  local_.deliver(std::move(p));
}

SinkBase::SinkBase(sim::Simulator& sim, net::Node& local)
    : sim_(sim), local_(local), local_port_(local.allocate_port()) {
  local_.attach(local_port_, *this);
}

SinkBase::~SinkBase() { local_.detach(local_port_); }

}  // namespace slowcc::cc
