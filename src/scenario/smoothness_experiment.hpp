#pragma once

#include <vector>

#include "scenario/dumbbell.hpp"
#include "traffic/loss_script.hpp"

namespace slowcc::scenario {

/// Which of the paper's scripted loss patterns to impose.
enum class LossPattern {
  /// Figure 17/19: repeating {3 losses each after 50 packet arrivals,
  /// 3 losses each after 400 arrivals} — tuned to sit inside TFRC's
  /// averaging window.
  kMildlyBursty,
  /// Figure 18: repeating {6 s with every 200th packet dropped, 1 s
  /// with every 4th dropped} — tuned to defeat TFRC's averaging.
  kMoreBursty,
};

/// §4.3 scenario (Figures 17-19): a single flow subjected to a
/// deterministic loss pattern at the bottleneck; we record its
/// receive-rate trace at two averaging intervals and compute smoothness
/// and throughput.
struct SmoothnessConfig {
  FlowSpec spec = FlowSpec::tfrc(6);
  LossPattern pattern = LossPattern::kMildlyBursty;
  DumbbellConfig net;
  sim::Time warmup = sim::Time::seconds(10.0);
  sim::Time measure = sim::Time::seconds(40.0);
  sim::Time fine_bin = sim::Time::millis(200);
  sim::Time coarse_bin = sim::Time::seconds(1.0);
  /// Master seed for every stochastic element (overrides `net.seed`;
  /// the loss pattern itself is deterministic by design).
  std::uint64_t seed = 1;

  SmoothnessConfig() {
    net.bottleneck_bps = 10e6;
    net.reverse_tcp_flows = 0;  // a lone flow, as in the paper's traces
  }
};

struct SmoothnessOutcome {
  std::vector<double> fine_rate_bps;    // 0.2 s bins (solid line)
  std::vector<double> coarse_rate_bps;  // 1 s bins (dashed line)
  double smoothness = 0.0;              // paper metric on fine bins
  double cov = 0.0;                     // coefficient of variation
  double mean_rate_bps = 0.0;
  std::int64_t scripted_drops = 0;
};

[[nodiscard]] SmoothnessOutcome run_smoothness(const SmoothnessConfig& config);

}  // namespace slowcc::scenario
