#include "scenario/convergence_experiment.hpp"

#include "metrics/throughput_monitor.hpp"

namespace slowcc::scenario {

ConvergenceOutcome run_convergence(const ConvergenceConfig& config) {
  sim::Simulator sim;
  DumbbellConfig net_cfg = config.net;
  net_cfg.seed = config.seed;
  Dumbbell net(sim, net_cfg);

  // The paper's §4.2.2 model is pure AIMD from a (B - b0, b0) start;
  // slow start would let the joining flow leapfrog to a fair share in a
  // handful of RTTs regardless of b. Window-based flows therefore join
  // in congestion avoidance.
  FlowSpec spec = config.spec;
  spec.disable_slow_start = true;

  Dumbbell::Flow& f1 = net.add_flow(spec);
  Dumbbell::Flow& f2 = net.add_flow(spec);

  const sim::Time rtt = config.net.base_rtt();
  metrics::ThroughputMonitor tp1(
      sim, net.bottleneck(), rtt,
      [id = f1.id](const net::Packet& p) { return p.flow == id; });
  metrics::ThroughputMonitor tp2(
      sim, net.bottleneck(), rtt,
      [id = f2.id](const net::Packet& p) { return p.flow == id; });

  net.finalize();

  sim.schedule_at(sim::Time(), [agent = f1.agent] { agent->start(); });
  sim.schedule_at(config.first_flow_head_start,
                  [agent = f2.agent] { agent->start(); });

  sim.run_until(config.horizon);

  // Collect byte series aligned on RTT bins.
  std::vector<std::int64_t> s1;
  std::vector<std::int64_t> s2;
  const std::size_t bins =
      static_cast<std::size_t>(config.horizon.as_nanos() / rtt.as_nanos());
  for (std::size_t i = 0; i < bins; ++i) {
    s1.push_back(tp1.bytes_in_bin(i));
    s2.push_back(tp2.bytes_in_bin(i));
  }

  ConvergenceOutcome out;
  out.result = metrics::compute_convergence(
      s1, s2, rtt, config.first_flow_head_start, config.delta);

  const sim::Time tail0 = config.horizon - rtt * 10;
  const double b1 = static_cast<double>(tp1.bytes_between(tail0, config.horizon));
  const double b2 = static_cast<double>(tp2.bytes_between(tail0, config.horizon));
  if (b1 + b2 > 0) {
    out.flow1_final_share = b1 / (b1 + b2);
    out.flow2_final_share = b2 / (b1 + b2);
  }
  return out;
}

}  // namespace slowcc::scenario
