#pragma once

#include <vector>

#include "scenario/dumbbell.hpp"
#include "traffic/flash_crowd.hpp"

namespace slowcc::scenario {

/// §4.1.2 scenario (Figure 6): long-lived background flows of one
/// SlowCC type face a flash crowd of short TCP transfers (10 packets
/// each) arriving at 200 flows/sec for 5 seconds starting at t=25 s.
struct FlashCrowdExperimentConfig {
  FlowSpec background = FlowSpec::tfrc(256);
  int background_flows = 10;
  DumbbellConfig net;
  traffic::FlashCrowdConfig crowd;
  sim::Time crowd_start = sim::Time::seconds(25.0);
  sim::Time end = sim::Time::seconds(75.0);
  sim::Time bin = sim::Time::seconds(0.5);  // throughput trace bin width
  /// Master seed for every stochastic element: overrides `net.seed`;
  /// the crowd's arrival-process seed is derived from it.
  std::uint64_t seed = 1;

  FlashCrowdExperimentConfig() { net.bottleneck_bps = 10e6; }
};

struct FlashCrowdOutcome {
  /// Aggregate throughput traces (bits/sec per bin) at the bottleneck.
  std::vector<double> background_bps;
  std::vector<double> crowd_bps;
  std::vector<double> times_s;

  std::size_t crowd_flows_started = 0;
  std::size_t crowd_flows_completed = 0;
  double crowd_mean_completion_s = 0.0;
  /// Mean aggregate background throughput during the crowd (bps) and
  /// after it subsided — how much the background yielded and how fast
  /// it recovered.
  double background_during_crowd_bps = 0.0;
  double background_after_crowd_bps = 0.0;
  double crowd_total_mbytes = 0.0;
};

[[nodiscard]] FlashCrowdOutcome run_flash_crowd(
    const FlashCrowdExperimentConfig& config);

}  // namespace slowcc::scenario
