#include "scenario/fk_experiment.hpp"

#include <algorithm>

#include "metrics/throughput_monitor.hpp"
#include "metrics/utilization.hpp"

namespace slowcc::scenario {

FkOutcome run_fk(const FkConfig& config) {
  sim::Simulator sim;
  DumbbellConfig net_cfg = config.net;
  net_cfg.seed = config.seed;
  Dumbbell net(sim, net_cfg);

  std::vector<cc::Agent*> stoppers;
  std::vector<net::FlowId> survivors;
  for (int i = 0; i < config.num_flows; ++i) {
    Dumbbell::Flow& f = net.add_flow(config.spec);
    if (i < config.flows_to_stop) {
      stoppers.push_back(f.agent);
    } else {
      survivors.push_back(f.id);
    }
  }

  const sim::Time rtt = config.net.base_rtt();
  metrics::ThroughputMonitor survivors_tp(
      sim, net.bottleneck(), rtt, [survivors](const net::Packet& p) {
        return std::find(survivors.begin(), survivors.end(), p.flow) !=
               survivors.end();
      });
  metrics::ThroughputMonitor all_tp(
      sim, net.bottleneck(), rtt, [](const net::Packet& p) {
        return p.type == net::PacketType::kData ||
               p.type == net::PacketType::kTfrcData ||
               p.type == net::PacketType::kTearData;
      });

  net.start_flows();
  net.finalize();

  sim.schedule_at(config.stop_time, [&stoppers] {
    for (auto* a : stoppers) a->stop();
  });

  const int max_k = *std::max_element(config.ks.begin(), config.ks.end());
  const sim::Time end =
      config.stop_time + rtt * static_cast<std::int64_t>(max_k + 5);
  sim.run_until(end);

  FkOutcome out;
  out.ks = config.ks;
  for (int k : config.ks) {
    out.f_values.push_back(metrics::f_of_k(survivors_tp, config.stop_time, k,
                                           rtt, config.net.bottleneck_bps));
  }
  out.utilization_before_stop = metrics::utilization_between(
      all_tp, config.stop_time - sim::Time::seconds(20.0), config.stop_time,
      config.net.bottleneck_bps);
  return out;
}

}  // namespace slowcc::scenario
