#include "scenario/responsiveness_experiment.hpp"

#include <algorithm>

#include "metrics/throughput_monitor.hpp"
#include "traffic/loss_script.hpp"

namespace slowcc::scenario {

ResponsivenessOutcome run_responsiveness(const ResponsivenessConfig& config) {
  sim::Simulator sim;
  DumbbellConfig net_cfg = config.net;
  net_cfg.seed = config.seed;
  Dumbbell net(sim, net_cfg);

  Dumbbell::Flow& flow = net.add_flow(config.spec);

  const sim::Time rtt = config.net.base_rtt();
  metrics::ThroughputMonitor tp(
      sim, net.bottleneck(), rtt, [](const net::Packet& p) {
        return traffic::LossScript::is_data(p);
      });

  net.finalize();
  sim.schedule_at(sim::Time(), [agent = flow.agent] { agent->start(); });

  // Warm up to the steady operating point, then impose persistent
  // congestion: one forced loss per RTT, per the paper's definition.
  auto script = std::make_shared<traffic::IntervalLossScript>(
      sim, rtt, config.warmup);
  sim.schedule_at(config.warmup, [&net, script] {
    net.bottleneck().set_forced_drop_filter(
        [script](const net::Packet& p) {
          if (!traffic::LossScript::is_data(p)) return false;
          return script->should_drop(p);
        });
  });

  sim.run_until(config.horizon);

  ResponsivenessOutcome out;

  const std::size_t onset_bin = static_cast<std::size_t>(
      config.warmup.as_nanos() / rtt.as_nanos());

  // Pre-loss operating point: mean over the 20 RTTs before onset.
  double pre = 0.0;
  for (std::size_t i = onset_bin - 20; i < onset_bin; ++i) {
    pre += static_cast<double>(tp.bytes_in_bin(i));
  }
  pre /= 20.0;
  out.pre_loss_rate_bps = pre * 8.0 / rtt.as_seconds();

  // Responsiveness: first post-onset bin where a 2-bin average drops to
  // half the pre-loss rate (2-bin smoothing rides out self-clocking
  // burst structure without hiding the halving).
  for (std::size_t i = onset_bin + 1; i < tp.bin_count(); ++i) {
    const double two_bin =
        0.5 * static_cast<double>(tp.bytes_in_bin(i) +
                                  tp.bytes_in_bin(i - 1));
    if (two_bin <= 0.5 * pre) {
      out.halved = true;
      out.responsiveness_rtts = static_cast<double>(i - onset_bin);
      break;
    }
  }

  // Aggressiveness needs an *unsaturated* ramp: at a full link the
  // departure rate is pinned at capacity and says nothing about the
  // window growth. Run a second, clean simulation with slow start
  // disabled (window-based kinds) and fit the slope of the per-RTT
  // delivered rate while it climbs between 20% and 70% of capacity.
  out.aggressiveness_pkts_per_rtt = measure_aggressiveness(config);

  return out;
}

double measure_aggressiveness(const ResponsivenessConfig& config) {
  sim::Simulator sim;
  DumbbellConfig net_cfg = config.net;
  net_cfg.seed = sim::derive_seed(config.seed, 2);  // clean second run
  Dumbbell net(sim, net_cfg);

  FlowSpec spec = config.spec;
  spec.disable_slow_start = true;  // honored by the window-based kinds

  Dumbbell::Flow& flow = net.add_flow(spec);
  const sim::Time rtt = config.net.base_rtt();
  metrics::ThroughputMonitor tp(
      sim, net.bottleneck(), rtt, [](const net::Packet& p) {
        return traffic::LossScript::is_data(p);
      });
  net.finalize();
  sim.schedule_at(sim::Time(), [agent = flow.agent] { agent->start(); });
  sim.run_until(sim::Time::seconds(120.0));

  const double capacity_bytes_per_bin =
      config.net.bottleneck_bps / 8.0 * rtt.as_seconds();
  std::size_t lo = 0;
  std::size_t hi = 0;
  for (std::size_t i = 0; i < tp.bin_count(); ++i) {
    const double b = static_cast<double>(tp.bytes_in_bin(i));
    if (lo == 0 && b >= 0.2 * capacity_bytes_per_bin) lo = i;
    if (lo != 0 && b >= 0.7 * capacity_bytes_per_bin) {
      hi = i;
      break;
    }
  }
  if (hi <= lo + 3) return 0.0;  // ramp too fast to resolve (or absent)
  const double rise = static_cast<double>(tp.bytes_in_bin(hi)) -
                      static_cast<double>(tp.bytes_in_bin(lo));
  return rise / static_cast<double>(hi - lo) /
         static_cast<double>(config.spec.packet_size);
}

}  // namespace slowcc::scenario
