#pragma once

#include <vector>

#include "metrics/stabilization.hpp"
#include "scenario/dumbbell.hpp"

namespace slowcc::scenario {

/// §4.1.1 scenario (Figures 3, 4, 5): twenty long-lived SlowCC flows
/// share a RED bottleneck with an ON/OFF CBR source that uses half the
/// link when ON. The CBR source runs from t=0, stops at `cbr_stop`,
/// and restarts at `cbr_restart`; the restart is the sudden bandwidth
/// reduction whose aftermath we measure.
struct StabilizationConfig {
  FlowSpec spec = FlowSpec::tfrc(6);
  int num_flows = 20;
  DumbbellConfig net;
  sim::Time cbr_stop = sim::Time::seconds(150.0);
  sim::Time cbr_restart = sim::Time::seconds(180.0);
  sim::Time end = sim::Time::seconds(240.0);
  /// Master seed for every stochastic element (overrides `net.seed`).
  std::uint64_t seed = 1;

  StabilizationConfig() {
    // 24 Mb/s puts the steady-state loss rate near the paper's Figure 3
    // regime (~4%) with per-flow windows of a few packets when the CBR
    // source occupies half the link.
    net.bottleneck_bps = 24e6;
  }
};

struct StabilizationOutcome {
  metrics::StabilizationResult stabilization;
  /// Trailing 10-RTT loss rate, one sample per RTT bin, for the whole
  /// run (Figure 3's drop-rate trace).
  std::vector<double> loss_rate_series;
  std::vector<double> series_times_s;
  double steady_loss_rate = 0.0;
  double peak_loss_rate_after_restart = 0.0;
};

[[nodiscard]] StabilizationOutcome run_stabilization(
    const StabilizationConfig& config);

}  // namespace slowcc::scenario
