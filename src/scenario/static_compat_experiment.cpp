#include "scenario/static_compat_experiment.hpp"

#include "cc/response_function.hpp"
#include "metrics/throughput_monitor.hpp"
#include "sim/rng.hpp"
#include "traffic/loss_script.hpp"

namespace slowcc::scenario {

StaticCompatOutcome run_static_compat(const StaticCompatConfig& config) {
  sim::Simulator sim;
  DumbbellConfig net_cfg = config.net;
  net_cfg.seed = config.seed;
  Dumbbell net(sim, net_cfg);

  Dumbbell::Flow& flow = net.add_flow(config.spec);

  // Bernoulli drops on data packets only, on a stream derived from the
  // experiment's master seed (the topology consumes the master itself).
  auto rng = std::make_shared<sim::Rng>(sim::derive_seed(config.seed, 1));
  const double p = config.loss_rate;
  net.bottleneck().set_forced_drop_filter(
      [rng, p](const net::Packet& pkt) {
        if (!traffic::LossScript::is_data(pkt)) return false;
        return rng->chance(p);
      });

  metrics::ThroughputMonitor tp(
      sim, net.bottleneck(), sim::Time::millis(100),
      [](const net::Packet& pkt) {
        return traffic::LossScript::is_data(pkt);
      });

  net.finalize();
  sim.schedule_at(sim::Time(), [agent = flow.agent] { agent->start(); });

  const sim::Time t0 = config.warmup;
  const sim::Time t1 = config.warmup + config.measure;
  sim.run_until(t1);

  StaticCompatOutcome out;
  out.goodput_bps = tp.rate_bps_between(t0, t1);
  out.padhye_prediction_bps =
      8.0 * cc::padhye_rate_bytes_per_sec(config.loss_rate,
                                          config.net.base_rtt(),
                                          config.spec.packet_size);
  if (out.padhye_prediction_bps > 0.0) {
    out.ratio_to_prediction = out.goodput_bps / out.padhye_prediction_bps;
  }
  return out;
}

}  // namespace slowcc::scenario
