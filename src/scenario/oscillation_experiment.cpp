#include "scenario/oscillation_experiment.hpp"

#include <cmath>

#include "fault/fault_script.hpp"
#include "metrics/loss_rate_monitor.hpp"
#include "metrics/throughput_monitor.hpp"

namespace slowcc::scenario {

OscillationOutcome run_oscillation(const OscillationConfig& config) {
  sim::Simulator sim;
  DumbbellConfig net_cfg = config.net;
  net_cfg.seed = config.seed;
  Dumbbell net(sim, net_cfg);

  std::vector<net::FlowId> ids;
  for (int i = 0; i < config.num_flows; ++i) {
    ids.push_back(net.add_flow(config.spec).id);
  }
  net.add_reverse_traffic();

  const double cbr_peak = config.net.bottleneck_bps * config.cbr_peak_fraction;
  traffic::CbrSource* cbr = nullptr;
  std::unique_ptr<traffic::OnOffPattern> pattern;
  fault::FaultInjector injector(sim, sim::derive_seed(config.seed, 1));
  if (config.mode == OscillationMode::kCbrEmulation) {
    cbr = &net.add_cbr(cbr_peak);
    pattern = std::make_unique<traffic::OnOffPattern>(
        sim, *cbr, traffic::PatternKind::kSquare, cbr_peak,
        config.on_off_length, config.on_off_length);
  } else {
    // Step the actual bottleneck: full capacity for one half-period,
    // the CBR-emulation "ON" residual capacity for the other.
    const double low_bps = config.net.bottleneck_bps - cbr_peak;
    const sim::Time period = config.on_off_length + config.on_off_length;
    const sim::Time total = config.warmup + config.measure;
    const int cycles = static_cast<int>(
        std::ceil(total.as_seconds() / period.as_seconds()));
    fault::FaultScript script;
    script.bandwidth_oscillation(net.bottleneck(), sim::Time(), period,
                                 config.net.bottleneck_bps, low_bps, cycles);
    injector.arm(script);
  }

  metrics::ThroughputMonitor data_tp(
      sim, net.bottleneck(), sim::Time::millis(100),
      [](const net::Packet& p) {
        return p.type == net::PacketType::kData ||
               p.type == net::PacketType::kTfrcData ||
               p.type == net::PacketType::kTearData;
      });
  std::vector<std::unique_ptr<metrics::ThroughputMonitor>> per_flow;
  for (auto id : ids) {
    per_flow.push_back(std::make_unique<metrics::ThroughputMonitor>(
        sim, net.bottleneck(), sim::Time::millis(100),
        [id](const net::Packet& p) { return p.flow == id; }));
  }
  metrics::LossRateMonitor losses(sim, net.bottleneck(),
                                  config.net.base_rtt());

  net.start_flows();
  net.finalize();
  if (pattern) pattern->start_at(sim::Time());

  const sim::Time t0 = config.warmup;
  const sim::Time t1 = config.warmup + config.measure;
  sim.run_until(t1);

  OscillationOutcome out;
  out.mean_available_bps = config.net.bottleneck_bps - cbr_peak / 2.0;
  out.aggregate_fraction =
      data_tp.rate_bps_between(t0, t1) / out.mean_available_bps;
  const double fair_share =
      out.mean_available_bps / static_cast<double>(config.num_flows);
  for (auto& m : per_flow) {
    out.per_flow_fraction.push_back(m->rate_bps_between(t0, t1) / fair_share);
  }
  out.drop_rate = losses.loss_rate_between(t0, t1);
  return out;
}

}  // namespace slowcc::scenario
