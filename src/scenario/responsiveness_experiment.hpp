#pragma once

#include "scenario/dumbbell.hpp"

namespace slowcc::scenario {

/// Empirical measurement of the paper's §3 transient metrics:
///
/// * **responsiveness** — RTTs of persistent congestion (one packet
///   loss per RTT) until the sending rate halves. TCP's is 1; the
///   paper quotes 4-6 RTTs for the proposed TFRC.
/// * **aggressiveness** — the maximum per-RTT increase of the sending
///   rate absent congestion, in packets per RTT (for AIMD this is the
///   parameter a).
struct ResponsivenessConfig {
  FlowSpec spec = FlowSpec::tfrc(6);
  DumbbellConfig net;
  sim::Time warmup = sim::Time::seconds(30.0);
  sim::Time horizon = sim::Time::seconds(120.0);
  /// Master seed for every stochastic element (overrides `net.seed`).
  std::uint64_t seed = 1;

  ResponsivenessConfig() {
    net.bottleneck_bps = 10e6;
    net.reverse_tcp_flows = 0;
  }
};

struct ResponsivenessOutcome {
  bool halved = false;
  double responsiveness_rtts = 0.0;   // RTTs until rate <= half
  double pre_loss_rate_bps = 0.0;     // operating point before the test
  double aggressiveness_pkts_per_rtt = 0.0;
};

[[nodiscard]] ResponsivenessOutcome run_responsiveness(
    const ResponsivenessConfig& config);

/// The aggressiveness half of `run_responsiveness`, exposed separately:
/// slope (packets per RTT per RTT) of an unsaturated congestion-
/// avoidance ramp. Returns 0 when the ramp is too fast to resolve.
[[nodiscard]] double measure_aggressiveness(
    const ResponsivenessConfig& config);

}  // namespace slowcc::scenario
