#include "scenario/stabilization_experiment.hpp"

#include <algorithm>

namespace slowcc::scenario {

StabilizationOutcome run_stabilization(const StabilizationConfig& config) {
  sim::Simulator sim;
  DumbbellConfig net_cfg = config.net;
  net_cfg.seed = config.seed;
  Dumbbell net(sim, net_cfg);

  for (int i = 0; i < config.num_flows; ++i) {
    net.add_flow(config.spec);
  }
  net.add_reverse_traffic();

  // ON/OFF CBR at half the bottleneck rate.
  traffic::CbrSource& cbr = net.add_cbr(config.net.bottleneck_bps / 2.0);

  const sim::Time rtt = config.net.base_rtt();
  metrics::LossRateMonitor losses(sim, net.bottleneck(), rtt);

  net.start_flows();
  net.finalize();

  sim.schedule_at(sim::Time(), [&cbr] { cbr.start(); });
  sim.schedule_at(config.cbr_stop, [&cbr] { cbr.set_rate_bps(0.0); });
  const double restart_rate = config.net.bottleneck_bps / 2.0;
  sim.schedule_at(config.cbr_restart, [&cbr, restart_rate] {
    cbr.set_rate_bps(restart_rate);
  });

  sim.run_until(config.end);

  StabilizationOutcome out;
  // Calibrate steady state over the second half of the initial CBR-on
  // period (start-up transients excluded).
  const sim::Time steady_from =
      sim::Time::seconds(config.cbr_stop.as_seconds() / 2.0);
  out.stabilization = metrics::compute_stabilization(
      losses, steady_from, config.cbr_stop, config.cbr_restart, config.end);
  out.steady_loss_rate = out.stabilization.steady_loss_rate;

  const std::size_t restart_bin = losses.bin_index(config.cbr_restart);
  for (std::size_t i = 0; i < losses.bin_count(); ++i) {
    out.loss_rate_series.push_back(losses.trailing_loss_rate(i, 10));
    out.series_times_s.push_back(static_cast<double>(i + 1) *
                                 rtt.as_seconds());
    if (i >= restart_bin) {
      out.peak_loss_rate_after_restart = std::max(
          out.peak_loss_rate_after_restart, losses.loss_rate_in_bin(i));
    }
  }
  return out;
}

}  // namespace slowcc::scenario
