#pragma once

#include <vector>

#include "scenario/dumbbell.hpp"
#include "traffic/onoff_pattern.hpp"

namespace slowcc::scenario {

/// §4.2.1 scenario (Figures 7-9): five flows of `group_a` and five of
/// `group_b` share a 15 Mb/s RED bottleneck with a square-wave CBR
/// source that uses 10 Mb/s when ON (3:1 oscillation in available
/// bandwidth; set `cbr_peak_fraction` to 0.9 for the 10:1 variant).
struct FairnessConfig {
  FlowSpec group_a = FlowSpec::tcp();
  FlowSpec group_b = FlowSpec::tfrc(6);
  int flows_per_group = 5;
  DumbbellConfig net;
  traffic::PatternKind pattern = traffic::PatternKind::kSquare;
  sim::Time cbr_period = sim::Time::seconds(2.0);  // combined ON+OFF length
  double cbr_peak_fraction = 2.0 / 3.0;  // of bottleneck (10 of 15 Mb/s)
  sim::Time warmup = sim::Time::seconds(20.0);
  sim::Time measure = sim::Time::seconds(200.0);
  /// Master seed for every stochastic element (overrides `net.seed`).
  std::uint64_t seed = 1;

  FairnessConfig() { net.bottleneck_bps = 15e6; }
};

struct FairnessOutcome {
  /// Per-flow throughput normalized by the fair share of the average
  /// available bandwidth (the y-axis of Figures 7-9).
  std::vector<double> group_a_normalized;
  std::vector<double> group_b_normalized;
  double group_a_mean = 0.0;
  double group_b_mean = 0.0;
  /// Aggregate link utilization of the congestion-controlled traffic
  /// against the average available bandwidth.
  double utilization = 0.0;
  double mean_available_bps = 0.0;
};

[[nodiscard]] FairnessOutcome run_fairness(const FairnessConfig& config);

}  // namespace slowcc::scenario
