#pragma once

#include "scenario/dumbbell.hpp"

namespace slowcc::scenario {

/// Static TCP-compatibility check (the paper's §2 premise, and our
/// sanity baseline): a single flow crosses a link that drops each data
/// packet independently with probability `loss_rate`; measure its
/// long-run goodput and compare with the Padhye prediction and with an
/// actual TCP run under identical conditions.
struct StaticCompatConfig {
  FlowSpec spec = FlowSpec::tfrc(6);
  double loss_rate = 0.01;
  DumbbellConfig net;
  sim::Time warmup = sim::Time::seconds(20.0);
  sim::Time measure = sim::Time::seconds(200.0);
  /// Master seed for every stochastic element of the experiment:
  /// overrides `net.seed`, and the Bernoulli drop stream is derived
  /// from it. Sweeps vary this single knob per trial.
  std::uint64_t seed = 1;

  StaticCompatConfig() {
    // A fat pipe so the imposed Bernoulli loss, not the queue, is the
    // binding constraint.
    net.bottleneck_bps = 50e6;
    net.reverse_tcp_flows = 0;
  }
};

struct StaticCompatOutcome {
  double goodput_bps = 0.0;
  double padhye_prediction_bps = 0.0;
  double ratio_to_prediction = 0.0;
};

[[nodiscard]] StaticCompatOutcome run_static_compat(
    const StaticCompatConfig& config);

}  // namespace slowcc::scenario
