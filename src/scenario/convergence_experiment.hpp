#pragma once

#include "metrics/convergence.hpp"
#include "scenario/dumbbell.hpp"

namespace slowcc::scenario {

/// §4.2.2 scenario (Figures 10, 12): two flows of the same mechanism,
/// the first owning the whole 10 Mb/s link, the second starting from
/// one packet per RTT; measure the δ-fair convergence time.
struct ConvergenceConfig {
  FlowSpec spec = FlowSpec::tcp();
  DumbbellConfig net;
  sim::Time first_flow_head_start = sim::Time::seconds(30.0);
  sim::Time horizon = sim::Time::seconds(600.0);  // give-up point
  double delta = 0.1;
  /// Master seed for every stochastic element (overrides `net.seed`).
  std::uint64_t seed = 1;

  ConvergenceConfig() {
    net.bottleneck_bps = 10e6;
    // Convergence is between exactly two flows; extra reverse traffic
    // would perturb the tiny second flow disproportionately.
    net.reverse_tcp_flows = 0;
  }
};

struct ConvergenceOutcome {
  metrics::ConvergenceResult result;
  double flow1_final_share = 0.0;  // over the last 10 RTTs
  double flow2_final_share = 0.0;
};

[[nodiscard]] ConvergenceOutcome run_convergence(
    const ConvergenceConfig& config);

}  // namespace slowcc::scenario
