#pragma once

#include "scenario/dumbbell.hpp"

namespace slowcc::scenario {

/// §4.2.3 scenario (Figure 13): ten identical flows share a 10 Mb/s
/// bottleneck; at `stop_time` five of them stop, doubling the bandwidth
/// available to the rest. f(k) is the remaining flows' link utilization
/// over the first k RTTs.
struct FkConfig {
  FlowSpec spec = FlowSpec::tcp();
  int num_flows = 10;
  int flows_to_stop = 5;
  DumbbellConfig net;
  sim::Time stop_time = sim::Time::seconds(120.0);
  std::vector<int> ks = {20, 200};
  /// Master seed for every stochastic element (overrides `net.seed`).
  std::uint64_t seed = 1;

  FkConfig() {
    net.bottleneck_bps = 10e6;
    // Keep the bottleneck's byte budget exactly for the measured flows
    // so f(k) is crisp (the paper's ten flows are also alone).
    net.reverse_tcp_flows = 0;
  }
};

struct FkOutcome {
  std::vector<int> ks;
  std::vector<double> f_values;            // f(k), aligned with ks
  double utilization_before_stop = 0.0;    // sanity: should be ~1
};

[[nodiscard]] FkOutcome run_fk(const FkConfig& config);

}  // namespace slowcc::scenario
