#include "scenario/smoothness_experiment.hpp"

#include "metrics/smoothness.hpp"
#include "metrics/throughput_monitor.hpp"

namespace slowcc::scenario {

SmoothnessOutcome run_smoothness(const SmoothnessConfig& config) {
  sim::Simulator sim;
  DumbbellConfig net_cfg = config.net;
  net_cfg.seed = config.seed;
  Dumbbell net(sim, net_cfg);

  Dumbbell::Flow& flow = net.add_flow(config.spec);

  std::unique_ptr<traffic::LossScript> script;
  switch (config.pattern) {
    case LossPattern::kMildlyBursty:
      script = std::make_unique<traffic::CountedLossScript>(
          std::vector<std::int64_t>{50, 50, 50, 400, 400, 400});
      break;
    case LossPattern::kMoreBursty:
      script = std::make_unique<traffic::TimedPhaseLossScript>(
          sim, std::vector<traffic::TimedPhaseLossScript::Phase>{
                   {sim::Time::seconds(6.0), 200},
                   {sim::Time::seconds(1.0), 4},
               });
      break;
  }
  script->install(net.bottleneck());

  auto is_data = [](const net::Packet& p) {
    return p.type == net::PacketType::kData ||
           p.type == net::PacketType::kTfrcData ||
           p.type == net::PacketType::kTearData;
  };
  metrics::ThroughputMonitor fine(sim, net.bottleneck(), config.fine_bin,
                                  is_data);
  metrics::ThroughputMonitor coarse(sim, net.bottleneck(), config.coarse_bin,
                                    is_data);

  net.finalize();
  sim.schedule_at(sim::Time(), [agent = flow.agent] { agent->start(); });

  const sim::Time t0 = config.warmup;
  const sim::Time t1 = config.warmup + config.measure;
  sim.run_until(t1);

  SmoothnessOutcome out;
  out.fine_rate_bps = fine.rate_series_bps(t0, t1);
  out.coarse_rate_bps = coarse.rate_series_bps(t0, t1);
  out.smoothness = metrics::smoothness_metric(out.fine_rate_bps);
  out.cov = metrics::coefficient_of_variation(out.fine_rate_bps);
  out.mean_rate_bps = fine.rate_bps_between(t0, t1);
  if (auto* counted = dynamic_cast<traffic::CountedLossScript*>(script.get())) {
    out.scripted_drops = counted->drops();
  } else if (auto* timed =
                 dynamic_cast<traffic::TimedPhaseLossScript*>(script.get())) {
    out.scripted_drops = timed->drops();
  }
  return out;
}

}  // namespace slowcc::scenario
