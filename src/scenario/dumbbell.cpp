#include "scenario/dumbbell.hpp"

#include <cmath>
#include <cstdio>
#include "sim/error.hpp"

namespace slowcc::scenario {

const char* to_string(CcKind kind) noexcept {
  switch (kind) {
    case CcKind::kTcp:
      return "TCP";
    case CcKind::kSqrt:
      return "SQRT";
    case CcKind::kIiad:
      return "IIAD";
    case CcKind::kRap:
      return "RAP";
    case CcKind::kTfrc:
      return "TFRC";
    case CcKind::kTear:
      return "TEAR";
  }
  return "?";
}

FlowSpec FlowSpec::tcp(double gamma) {
  FlowSpec s;
  s.kind = CcKind::kTcp;
  s.gamma = gamma;
  return s;
}
FlowSpec FlowSpec::sqrt(double gamma) {
  FlowSpec s;
  s.kind = CcKind::kSqrt;
  s.gamma = gamma;
  return s;
}
FlowSpec FlowSpec::iiad() {
  FlowSpec s;
  s.kind = CcKind::kIiad;
  return s;
}
FlowSpec FlowSpec::rap(double gamma) {
  FlowSpec s;
  s.kind = CcKind::kRap;
  s.gamma = gamma;
  return s;
}
FlowSpec FlowSpec::tear() {
  FlowSpec s;
  s.kind = CcKind::kTear;
  return s;
}
FlowSpec FlowSpec::tfrc(int k, bool conservative) {
  FlowSpec s;
  s.kind = CcKind::kTfrc;
  s.gamma = static_cast<double>(k);
  s.tfrc_conservative = conservative;
  return s;
}

std::string FlowSpec::label() const {
  char buf[64];
  switch (kind) {
    case CcKind::kTfrc:
      std::snprintf(buf, sizeof(buf), "TFRC(%d)%s", static_cast<int>(gamma),
                    tfrc_conservative ? "+SC" : "");
      break;
    case CcKind::kIiad:
      std::snprintf(buf, sizeof(buf), "IIAD");
      break;
    case CcKind::kTear:
      std::snprintf(buf, sizeof(buf), "TEAR");
      break;
    default:
      std::snprintf(buf, sizeof(buf), "%s(1/%g)", to_string(kind), gamma);
      break;
  }
  return buf;
}

std::pair<std::unique_ptr<cc::Agent>, std::unique_ptr<cc::SinkBase>>
make_flow_endpoints(sim::Simulator& sim, net::Node& src, net::Node& dst,
                    net::FlowId id, const FlowSpec& spec) {
  std::unique_ptr<cc::Agent> agent;
  std::unique_ptr<cc::SinkBase> sink;

  cc::TcpConfig tcp_cfg;
  if (spec.disable_slow_start) {
    tcp_cfg.initial_ssthresh = tcp_cfg.initial_cwnd;
  }

  switch (spec.kind) {
    case CcKind::kTcp: {
      auto s = std::make_unique<cc::TcpSink>(sim, dst);
      agent = std::make_unique<cc::TcpAgent>(
          sim, src, dst.id(), s->local_port(), id,
          std::make_unique<cc::AimdPolicy>(
              cc::AimdPolicy::tcp_compatible(1.0 / spec.gamma)),
          tcp_cfg);
      sink = std::move(s);
      break;
    }
    case CcKind::kSqrt: {
      auto s = std::make_unique<cc::TcpSink>(sim, dst);
      agent = std::make_unique<cc::TcpAgent>(
          sim, src, dst.id(), s->local_port(), id,
          std::make_unique<cc::BinomialPolicy>(
              cc::BinomialPolicy::sqrt_policy(1.0 / spec.gamma)),
          tcp_cfg);
      sink = std::move(s);
      break;
    }
    case CcKind::kIiad: {
      auto s = std::make_unique<cc::TcpSink>(sim, dst);
      agent = std::make_unique<cc::TcpAgent>(
          sim, src, dst.id(), s->local_port(), id,
          std::make_unique<cc::BinomialPolicy>(
              cc::BinomialPolicy::iiad_policy()),
          tcp_cfg);
      sink = std::move(s);
      break;
    }
    case CcKind::kRap: {
      auto s = std::make_unique<cc::RapSink>(sim, dst);
      agent = std::make_unique<cc::RapAgent>(sim, src, dst.id(),
                                             s->local_port(), id,
                                             1.0 / spec.gamma);
      sink = std::move(s);
      break;
    }
    case CcKind::kTfrc: {
      auto s = std::make_unique<cc::TfrcSink>(
          sim, dst, std::max(1, static_cast<int>(spec.gamma)));
      s->history().set_history_discounting(spec.tfrc_history_discounting);
      cc::TfrcConfig cfg;
      cfg.conservative = spec.tfrc_conservative;
      cfg.conservative_c = spec.tfrc_conservative_c;
      agent = std::make_unique<cc::TfrcAgent>(sim, src, dst.id(),
                                              s->local_port(), id, cfg);
      sink = std::move(s);
      break;
    }
    case CcKind::kTear: {
      auto s = std::make_unique<cc::TearSink>(sim, dst);
      agent = std::make_unique<cc::TearAgent>(sim, src, dst.id(),
                                              s->local_port(), id);
      sink = std::move(s);
      break;
    }
  }
  agent->set_packet_size(spec.packet_size);
  return {std::move(agent), std::move(sink)};
}

Dumbbell::Dumbbell(sim::Simulator& sim, const DumbbellConfig& config)
    : sim_(sim), config_(config), topo_(sim), rng_(config.seed) {
  left_router_ = &topo_.add_node("routerL");
  right_router_ = &topo_.add_node("routerR");

  forward_bn_ = &topo_.add_link(*left_router_, *right_router_,
                                config_.bottleneck_bps,
                                config_.bottleneck_delay,
                                make_bottleneck_queue());
  reverse_bn_ = &topo_.add_link(*right_router_, *left_router_,
                                config_.bottleneck_bps,
                                config_.bottleneck_delay,
                                make_bottleneck_queue());
}

std::unique_ptr<net::Queue> Dumbbell::make_bottleneck_queue() {
  const double bdp = config_.bdp_packets();
  if (config_.red) {
    net::RedConfig red = net::RedConfig::for_bdp(bdp);
    red.mean_packet_size = static_cast<double>(config_.mean_packet_size);
    red.seed = rng_.next_u64();
    return std::make_unique<net::RedQueue>(sim_, red);
  }
  return std::make_unique<net::DropTailQueue>(
      static_cast<std::size_t>(std::max(2.5 * bdp, 4.0)));
}

net::Node& Dumbbell::new_edge_host(bool left) {
  net::Node& router = left ? *left_router_ : *right_router_;
  net::Node& host = topo_.add_node();
  // Generous access links: the bottleneck must be the dumbbell's waist.
  topo_.add_duplex(host, router, config_.access_bps, config_.access_delay,
                   /*queue_limit=*/1000);
  return host;
}

Dumbbell::Flow& Dumbbell::add_flow(const FlowSpec& spec, bool forward) {
  if (finalized_) {
    throw sim::SimError(sim::SimErrc::kBadTopology, "Dumbbell",
                        "add_flow after finalize()");
  }
  net::Node& src = new_edge_host(forward);
  net::Node& dst = new_edge_host(!forward);

  const net::FlowId id = next_flow_id_++;
  auto [agent, sink] = make_flow_endpoints(sim_, src, dst, id, spec);

  Flow f;
  f.agent = agent.get();
  f.sink = sink.get();
  f.id = id;
  f.spec = spec;
  f.forward = forward;
  agents_.push_back(std::move(agent));
  sinks_.push_back(std::move(sink));
  flows_.push_back(f);
  return flows_.back();
}

traffic::CbrSource& Dumbbell::add_cbr(double rate_bps,
                                      std::int64_t packet_size) {
  return *add_cbr_pair(rate_bps, packet_size).source;
}

Dumbbell::CbrPair Dumbbell::add_cbr_pair(double rate_bps,
                                         std::int64_t packet_size) {
  if (finalized_) {
    throw sim::SimError(sim::SimErrc::kBadTopology, "Dumbbell",
                        "add_cbr after finalize()");
  }
  net::Node& src = new_edge_host(true);
  net::Node& dst = new_edge_host(false);

  auto sink = std::make_unique<traffic::CbrSink>(sim_, dst);
  auto source = std::make_unique<traffic::CbrSource>(
      sim_, src, dst.id(), sink->local_port(), next_flow_id_++, rate_bps);
  source->set_packet_size(packet_size);

  CbrPair pair{source.get(), sink.get()};
  agents_.push_back(std::move(source));
  sinks_.push_back(std::move(sink));
  return pair;
}

void Dumbbell::add_reverse_traffic() {
  for (int i = 0; i < config_.reverse_tcp_flows; ++i) {
    Flow& f = add_flow(FlowSpec::tcp(), /*forward=*/false);
    // Start as a t=0 event so routes are in place (finalize() runs
    // before the simulator does).
    cc::Agent* agent = f.agent;
    sim_.schedule_at(sim_.now(), [agent] { agent->start(); });
  }
}

void Dumbbell::start_flows(sim::Time base, sim::Time spread) {
  for (Flow& f : flows_) {
    if (!f.forward) continue;  // reverse traffic starts in add_reverse_traffic
    const sim::Time at =
        base + sim::Time::seconds(rng_.uniform() * spread.as_seconds());
    cc::Agent* agent = f.agent;
    sim_.schedule_at(at, [agent] { agent->start(); });
  }
}

void Dumbbell::finalize() {
  if (finalized_) return;
  topo_.compute_routes();
  finalized_ = true;
}

double Dumbbell::flow_goodput_bps(const Flow& f, sim::Time duration) const {
  if (duration <= sim::Time()) return 0.0;
  return static_cast<double>(f.sink->bytes_received()) * 8.0 /
         duration.as_seconds();
}

}  // namespace slowcc::scenario
