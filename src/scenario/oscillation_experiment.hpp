#pragma once

#include <vector>

#include "scenario/dumbbell.hpp"
#include "traffic/onoff_pattern.hpp"

namespace slowcc::scenario {

/// How the oscillating available bandwidth is realized.
enum class OscillationMode {
  /// The paper's method: an ON/OFF CBR source steals bandwidth while
  /// the link itself stays fixed.
  kCbrEmulation,
  /// Vary the *actual* link: a fault::FaultInjector steps the
  /// bottleneck bandwidth between full and reduced capacity. Unlike
  /// CBR emulation, this also re-times packets mid-serialization and
  /// exercises the dynamic-link machinery.
  kLinkBandwidth,
};

/// §4.2.4 scenario (Figures 14-16): ten identical flows compete with an
/// ON/OFF CBR source on a 15 Mb/s bottleneck. The available bandwidth
/// oscillates 15 <-> 5 Mb/s (3:1) or 15 <-> 1.5 Mb/s (10:1) with the
/// given ON/OFF length. Reported: aggregate throughput of the flows as
/// a fraction of the average available bandwidth, per-flow shares, and
/// the overall packet drop rate (Figure 15).
struct OscillationConfig {
  FlowSpec spec = FlowSpec::tcp();
  int num_flows = 10;
  DumbbellConfig net;
  sim::Time on_off_length = sim::Time::seconds(0.2);  // each of ON and OFF
  double cbr_peak_fraction = 2.0 / 3.0;  // 10/15 => 3:1; 0.9 => 10:1
  sim::Time warmup = sim::Time::seconds(10.0);
  sim::Time measure = sim::Time::seconds(100.0);
  OscillationMode mode = OscillationMode::kCbrEmulation;
  /// Master seed for every stochastic element: overrides `net.seed`;
  /// the kLinkBandwidth fault injector draws a derived stream.
  std::uint64_t seed = 1;

  OscillationConfig() { net.bottleneck_bps = 15e6; }
};

struct OscillationOutcome {
  double aggregate_fraction = 0.0;       // of mean available bandwidth
  std::vector<double> per_flow_fraction; // of per-flow fair share
  double drop_rate = 0.0;                // bottleneck loss fraction
  double mean_available_bps = 0.0;
};

[[nodiscard]] OscillationOutcome run_oscillation(
    const OscillationConfig& config);

}  // namespace slowcc::scenario
