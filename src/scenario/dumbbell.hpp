#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cc/agent.hpp"
#include "cc/rap_agent.hpp"
#include "cc/tcp_agent.hpp"
#include "cc/tcp_sink.hpp"
#include "cc/tear_agent.hpp"
#include "cc/tfrc_agent.hpp"
#include "cc/tfrc_sink.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "traffic/cbr_source.hpp"

namespace slowcc::scenario {

/// Which congestion control algorithm a flow runs.
enum class CcKind { kTcp, kSqrt, kIiad, kRap, kTfrc, kTear };

[[nodiscard]] const char* to_string(CcKind kind) noexcept;

/// Specification of one congestion-controlled flow. The paper's
/// parameterization: γ means TCP(1/γ), RAP(1/γ), SQRT(1/γ), TFRC(γ).
struct FlowSpec {
  CcKind kind = CcKind::kTcp;
  double gamma = 2.0;
  bool tfrc_conservative = false;       // the paper's conservative_ option
  double tfrc_conservative_c = 1.1;     // the C constant (paper's value)
  bool tfrc_history_discounting = true; // ns-2 default (fig 13 turns it off)
  /// Start window-based flows directly in congestion avoidance (the
  /// transient-fairness experiments do this: the paper's §4.2.2 model
  /// is pure AIMD, and slow start would mask the AIMD convergence).
  bool disable_slow_start = false;
  std::int64_t packet_size = 1000;

  [[nodiscard]] static FlowSpec tcp(double gamma = 2.0);
  [[nodiscard]] static FlowSpec sqrt(double gamma = 2.0);
  [[nodiscard]] static FlowSpec iiad();
  [[nodiscard]] static FlowSpec rap(double gamma = 2.0);
  [[nodiscard]] static FlowSpec tfrc(int k = 6, bool conservative = false);
  [[nodiscard]] static FlowSpec tear();

  [[nodiscard]] std::string label() const;
};

/// Parameters of the paper's §3 topology: a single-bottleneck dumbbell
/// with RED queue management, RTT ≈ 50 ms, queue 2.5 BDP, RED
/// thresholds 0.25 / 1.25 BDP, and data traffic in both directions.
struct DumbbellConfig {
  double bottleneck_bps = 10e6;
  sim::Time bottleneck_delay = sim::Time::millis(23);
  double access_bps = 100e6;
  sim::Time access_delay = sim::Time::millis(1);
  bool red = true;                      // RED (paper default) vs DropTail
  std::int64_t mean_packet_size = 1000;
  std::uint64_t seed = 1;
  int reverse_tcp_flows = 2;            // §3: data flows in both directions

  /// Base RTT (propagation only) of the symmetric path.
  [[nodiscard]] sim::Time base_rtt() const noexcept {
    return (access_delay + bottleneck_delay + access_delay) * 2;
  }
  /// Bandwidth-delay product in packets of mean size.
  [[nodiscard]] double bdp_packets() const noexcept {
    return bottleneck_bps * base_rtt().as_seconds() /
           (8.0 * static_cast<double>(mean_packet_size));
  }
};

/// A built dumbbell network plus the flows running over it. Owns every
/// node, link, agent, and sink.
class Dumbbell {
 public:
  /// One congestion-controlled (or CBR) flow and its endpoints.
  struct Flow {
    cc::Agent* agent = nullptr;      // owned by the Dumbbell
    cc::SinkBase* sink = nullptr;    // owned by the Dumbbell
    net::FlowId id = 0;
    FlowSpec spec;
    bool forward = true;
  };

  Dumbbell(sim::Simulator& sim, const DumbbellConfig& config);

  /// Create a flow per `spec`. Forward flows send left -> right across
  /// the bottleneck; reverse flows right -> left. Each flow gets its
  /// own source and destination host hanging off the routers.
  Flow& add_flow(const FlowSpec& spec, bool forward = true);

  /// Create a CBR source crossing the bottleneck (forward direction).
  /// Returns the source; it is stopped until `start()`ed or driven by
  /// an OnOffPattern.
  traffic::CbrSource& add_cbr(double rate_bps,
                              std::int64_t packet_size = 1000);

  /// A CBR source plus its receiving sink. Receiver-side byte counts
  /// drive closed-loop sources (adaptive media) and goodput metrics.
  struct CbrPair {
    traffic::CbrSource* source = nullptr;  // owned by the Dumbbell
    cc::SinkBase* sink = nullptr;          // owned by the Dumbbell
  };

  /// Like `add_cbr`, but also expose the sink end.
  CbrPair add_cbr_pair(double rate_bps, std::int64_t packet_size = 1000);

  /// Add `config.reverse_tcp_flows` standard TCP flows in the reverse
  /// direction and start them at t=0 (paper §3's bidirectional data
  /// traffic). Called by scenarios that follow the paper's setup.
  void add_reverse_traffic();

  /// Start every congestion-controlled flow, staggered uniformly over
  /// [base, base + spread) to avoid phase effects.
  void start_flows(sim::Time base = sim::Time(),
                   sim::Time spread = sim::Time::millis(500));

  /// Compute routes. Must be called after all flows/sources are added
  /// and before running the simulator.
  void finalize();

  [[nodiscard]] net::Link& bottleneck() noexcept { return *forward_bn_; }
  [[nodiscard]] net::Link& reverse_bottleneck() noexcept {
    return *reverse_bn_;
  }
  [[nodiscard]] net::Node& left_router() noexcept { return *left_router_; }
  [[nodiscard]] net::Node& right_router() noexcept { return *right_router_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const DumbbellConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::deque<Flow>& flows() noexcept { return flows_; }
  [[nodiscard]] const std::deque<Flow>& flows() const noexcept {
    return flows_;
  }
  [[nodiscard]] net::Topology& topology() noexcept { return topo_; }

  /// Throughput of flow `f` in bits/sec, measured at the receiver over
  /// [t0, t1). Requires bookkeeping via `snapshot_bytes` at t0; for
  /// simplicity this measures cumulative bytes / elapsed when t0 = 0.
  [[nodiscard]] double flow_goodput_bps(const Flow& f,
                                        sim::Time duration) const;

 private:
  [[nodiscard]] std::unique_ptr<net::Queue> make_bottleneck_queue();
  net::Node& new_edge_host(bool left);

  sim::Simulator& sim_;
  DumbbellConfig config_;
  net::Topology topo_;
  sim::Rng rng_;

  net::Node* left_router_;
  net::Node* right_router_;
  net::Link* forward_bn_;
  net::Link* reverse_bn_;

  std::vector<std::unique_ptr<cc::Agent>> agents_;
  std::vector<std::unique_ptr<cc::SinkBase>> sinks_;
  std::deque<Flow> flows_;  // deque: references stay valid across add_flow
  net::FlowId next_flow_id_ = 1;
  bool finalized_ = false;
};

/// Build the sending agent + matching sink for `spec` between two
/// nodes. Exposed for scenarios that do not use the Dumbbell helper.
[[nodiscard]] std::pair<std::unique_ptr<cc::Agent>,
                        std::unique_ptr<cc::SinkBase>>
make_flow_endpoints(sim::Simulator& sim, net::Node& src, net::Node& dst,
                    net::FlowId id, const FlowSpec& spec);

}  // namespace slowcc::scenario
