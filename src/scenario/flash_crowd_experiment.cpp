#include "scenario/flash_crowd_experiment.hpp"

#include "metrics/throughput_monitor.hpp"

namespace slowcc::scenario {

FlashCrowdOutcome run_flash_crowd(const FlashCrowdExperimentConfig& config) {
  sim::Simulator sim;
  DumbbellConfig net_cfg = config.net;
  net_cfg.seed = config.seed;
  Dumbbell net(sim, net_cfg);

  for (int i = 0; i < config.background_flows; ++i) {
    net.add_flow(config.background);
  }
  net.add_reverse_traffic();

  // Crowd endpoints: one source host on the left, one server host on
  // the right, like a popular web server behind the bottleneck.
  net::Node& crowd_src = net.topology().add_node("crowd-src");
  net::Node& crowd_dst = net.topology().add_node("crowd-dst");
  net.topology().add_duplex(crowd_src, net.left_router(), config.net.access_bps,
                            config.net.access_delay, 1000);
  net.topology().add_duplex(crowd_dst, net.right_router(),
                            config.net.access_bps, config.net.access_delay,
                            1000);

  traffic::FlashCrowdConfig crowd_cfg = config.crowd;
  crowd_cfg.seed = sim::derive_seed(config.seed, 1);
  traffic::FlashCrowd crowd(sim, crowd_src, crowd_dst, crowd_cfg);

  const net::FlowId crowd_first = config.crowd.first_flow_id;
  metrics::ThroughputMonitor background_tp(
      sim, net.bottleneck(), config.bin, [crowd_first](const net::Packet& p) {
        return p.flow < crowd_first &&
               (p.type == net::PacketType::kData ||
                p.type == net::PacketType::kTfrcData ||
                p.type == net::PacketType::kTearData);
      });
  metrics::ThroughputMonitor crowd_tp(
      sim, net.bottleneck(), config.bin, [crowd_first](const net::Packet& p) {
        return p.flow >= crowd_first && p.type == net::PacketType::kData;
      });

  net.start_flows();
  net.finalize();
  crowd.start_at(config.crowd_start);

  sim.run_until(config.end);

  FlashCrowdOutcome out;
  out.background_bps = background_tp.rate_series_bps(sim::Time(), config.end);
  out.crowd_bps = crowd_tp.rate_series_bps(sim::Time(), config.end);
  for (std::size_t i = 0; i < out.background_bps.size(); ++i) {
    out.times_s.push_back(static_cast<double>(i + 1) *
                          config.bin.as_seconds());
  }
  out.crowd_flows_started = crowd.flows_started();
  out.crowd_flows_completed = crowd.flows_completed();
  out.crowd_mean_completion_s = crowd.mean_completion_seconds();
  out.crowd_total_mbytes =
      static_cast<double>(crowd.total_bytes_received()) / 1e6;

  const sim::Time crowd_end = config.crowd_start + config.crowd.duration;
  out.background_during_crowd_bps =
      background_tp.rate_bps_between(config.crowd_start, crowd_end);
  out.background_after_crowd_bps = background_tp.rate_bps_between(
      crowd_end + sim::Time::seconds(10.0), config.end);
  return out;
}

}  // namespace slowcc::scenario
