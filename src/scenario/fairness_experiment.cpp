#include "scenario/fairness_experiment.hpp"

#include <algorithm>

#include "metrics/fairness.hpp"
#include "metrics/throughput_monitor.hpp"

namespace slowcc::scenario {

FairnessOutcome run_fairness(const FairnessConfig& config) {
  sim::Simulator sim;
  DumbbellConfig net_cfg = config.net;
  net_cfg.seed = config.seed;
  Dumbbell net(sim, net_cfg);

  std::vector<net::FlowId> group_a_ids;
  std::vector<net::FlowId> group_b_ids;
  for (int i = 0; i < config.flows_per_group; ++i) {
    group_a_ids.push_back(net.add_flow(config.group_a).id);
  }
  for (int i = 0; i < config.flows_per_group; ++i) {
    group_b_ids.push_back(net.add_flow(config.group_b).id);
  }
  net.add_reverse_traffic();

  const double cbr_peak = config.net.bottleneck_bps * config.cbr_peak_fraction;
  traffic::CbrSource& cbr = net.add_cbr(cbr_peak);
  const sim::Time half = sim::Time::seconds(config.cbr_period.as_seconds() / 2.0);
  traffic::OnOffPattern pattern(sim, cbr, config.pattern, cbr_peak, half,
                                half);

  // Per-flow throughput measured at the bottleneck over the
  // measurement window only (warmup excluded).
  const sim::Time t0 = config.warmup;
  const sim::Time t1 = config.warmup + config.measure;
  metrics::ThroughputMonitor tp(
      sim, net.bottleneck(), sim::Time::millis(100),
      [](const net::Packet& p) {
        // Forward-direction data only: CBR filler and the reverse
        // flows' ACKs crossing this link don't count as utilization.
        return p.type == net::PacketType::kData ||
               p.type == net::PacketType::kTfrcData ||
               p.type == net::PacketType::kTearData;
      });

  struct PerFlow {
    net::FlowId id;
    std::unique_ptr<metrics::ThroughputMonitor> monitor;
  };
  std::vector<PerFlow> per_flow;
  for (auto& f : net.flows()) {
    if (!f.forward) continue;
    auto m = std::make_unique<metrics::ThroughputMonitor>(
        sim, net.bottleneck(), sim::Time::millis(100),
        [id = f.id](const net::Packet& p) { return p.flow == id; });
    per_flow.push_back({f.id, std::move(m)});
  }

  net.start_flows();
  net.finalize();
  pattern.start_at(sim::Time());

  sim.run_until(t1);

  // Average available bandwidth: the CBR is ON half the time at
  // cbr_peak, so the flows' average share of the link is
  // bottleneck - cbr_peak/2.
  const double mean_available = config.net.bottleneck_bps - cbr_peak / 2.0;
  const double fair_share =
      mean_available / (2.0 * static_cast<double>(config.flows_per_group));

  FairnessOutcome out;
  out.mean_available_bps = mean_available;
  auto normalized = [&](net::FlowId id) {
    for (auto& pf : per_flow) {
      if (pf.id == id) {
        return pf.monitor->rate_bps_between(t0, t1) / fair_share;
      }
    }
    return 0.0;
  };
  for (auto id : group_a_ids) out.group_a_normalized.push_back(normalized(id));
  for (auto id : group_b_ids) out.group_b_normalized.push_back(normalized(id));
  out.group_a_mean = metrics::mean(out.group_a_normalized);
  out.group_b_mean = metrics::mean(out.group_b_normalized);
  out.utilization = tp.rate_bps_between(t0, t1) / mean_available;
  return out;
}

}  // namespace slowcc::scenario
