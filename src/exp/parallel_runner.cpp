#include "exp/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "exp/registry.hpp"
#include "sim/error.hpp"

namespace slowcc::exp {

ParallelRunner::ParallelRunner(int jobs) : jobs_(jobs) {
  if (jobs < 1) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "jobs must be >= 1");
  }
}

int ParallelRunner::default_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<Row> ParallelRunner::run(
    const std::vector<TrialDesc>& trials,
    const std::function<Row(const TrialDesc&)>& fn) const {
  std::vector<Row> rows(trials.size());
  if (trials.empty()) return rows;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      Row row;
      try {
        row = fn(trials[i]);
      } catch (const std::exception& ex) {
        // fn is normally run_trial, which already absorbs experiment
        // errors; this guards custom fns and registry-level throws.
        row.trial_id = trials[i].trial_id;
        row.experiment = trials[i].experiment;
        row.algorithm = trials[i].algorithm;
        row.cell = trials[i].cell_key();
        row.trial_index = trials[i].trial_index;
        row.seed = trials[i].seed;
        row.error = ex.what();
      }
      rows[i] = std::move(row);
      const std::size_t completed =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (progress_) {
        const std::lock_guard<std::mutex> lock(progress_mu);
        progress_(completed, trials.size());
      }
    }
  };

  const int n = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), trials.size()));
  if (n <= 1) {
    worker();
    return rows;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return rows;
}

std::vector<Row> ParallelRunner::run(
    const std::vector<TrialDesc>& trials) const {
  return run(trials, [](const TrialDesc& d) { return run_trial(d); });
}

}  // namespace slowcc::exp
