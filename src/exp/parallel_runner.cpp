#include "exp/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "exp/registry.hpp"
#include "exp/seed.hpp"
#include "fault/trial_scope.hpp"
#include "sim/error.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace slowcc::exp {
namespace {

// Stream constants keeping runner-derived seeds disjoint from the
// scenario-internal sub-streams (which use small indices 0..k).
constexpr std::uint64_t kRetryStream = 0x7265747279;  // "retry"
constexpr std::uint64_t kChaosStream = 0x6368616f73;  // "chaos"

/// Stamp a row with a trial's identity — used when the row had to be
/// synthesized from an exception instead of coming back from fn.
void stamp_identity(Row& row, const TrialDesc& d) {
  row.trial_id = d.trial_id;
  row.experiment = d.experiment;
  row.algorithm = d.algorithm;
  row.cell = d.cell_key();
  row.trial_index = d.trial_index;
  row.seed = d.seed;
}

}  // namespace

std::uint64_t retry_seed(std::uint64_t trial_seed, int attempt) noexcept {
  return derive_seed(trial_seed, kRetryStream,
                     static_cast<std::uint64_t>(attempt));
}

ParallelRunner::ParallelRunner(int jobs) : jobs_(jobs) {
  if (jobs < 1) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "jobs must be >= 1");
  }
}

int ParallelRunner::default_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelRunner::set_policy(const RunnerPolicy& policy) {
  if (policy.max_attempts < 1) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "max_attempts must be >= 1");
  }
  if (policy.chaos_rate < 0.0 || policy.chaos_rate > 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "chaos_rate must be in [0, 1]");
  }
  if (policy.deadline_check_every == 0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "deadline_check_every must be >= 1");
  }
  policy_ = policy;
}

Row ParallelRunner::run_quarantined(
    const TrialDesc& trial,
    const std::function<Row(const TrialDesc&)>& fn) const {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t events_start = sim::Simulator::thread_events_executed();

  Row row;
  int attempts = 0;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    TrialDesc d = trial;
    d.attempt = attempt;
    if (attempt > 0) d.seed = retry_seed(trial.seed, attempt);
    ++attempts;
    try {
      if (policy_.chaos_rate > 0.0) {
        sim::Rng roll(derive_seed(derive_seed(policy_.chaos_seed,
                                              kChaosStream),
                                  d.trial_id,
                                  static_cast<std::uint64_t>(attempt)));
        if (roll.chance(policy_.chaos_rate)) {
          throw sim::SimError(
              sim::SimErrc::kTrialAborted, "ChaosInjector",
              "injected failure (trial " + std::to_string(d.trial_id) +
                  ", attempt " + std::to_string(attempt) + ")");
        }
      }
      const fault::TrialDeadlineConfig deadline{
          policy_.max_trial_events, policy_.max_trial_wall_seconds,
          policy_.deadline_check_every};
      const fault::ScopedTrialDeadline guard(deadline);
      row = fn(d);
      stamp_identity(row, d);
      row.outcome.ok = row.error.empty();
      if (!row.outcome.ok && row.outcome.error_kind.empty()) {
        // fn reported an error without classifying it (custom fns).
        row.outcome.error_kind = "exception";
      }
    } catch (const sim::SimError& ex) {
      row = Row{};
      stamp_identity(row, d);
      row.error = ex.what();
      row.outcome.ok = false;
      row.outcome.error_kind = sim::to_string(ex.code());
    } catch (const std::exception& ex) {
      row = Row{};
      stamp_identity(row, d);
      row.error = ex.what();
      row.outcome.ok = false;
      row.outcome.error_kind = "exception";
    }
    if (row.outcome.ok) break;
  }

  row.outcome.attempts = attempts;
  row.outcome.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  row.outcome.events =
      sim::Simulator::thread_events_executed() - events_start;
  return row;
}

std::vector<Row> ParallelRunner::run(
    const std::vector<TrialDesc>& trials,
    const std::function<Row(const TrialDesc&)>& fn) const {
  std::vector<Row> rows(trials.size());
  if (trials.empty()) return rows;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex observer_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      rows[i] = run_quarantined(trials[i], fn);
      const std::size_t completed =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (on_row_ || progress_) {
        const std::lock_guard<std::mutex> lock(observer_mu);
        if (on_row_) on_row_(rows[i]);
        if (progress_) progress_(completed, trials.size());
      }
    }
  };

  const int n = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), trials.size()));
  if (n <= 1) {
    worker();
    return rows;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return rows;
}

std::vector<Row> ParallelRunner::run(
    const std::vector<TrialDesc>& trials) const {
  return run(trials, [](const TrialDesc& d) { return run_trial(d); });
}

}  // namespace slowcc::exp
