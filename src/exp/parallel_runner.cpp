#include "exp/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "exp/registry.hpp"
#include "exp/seed.hpp"
#include "fault/trial_scope.hpp"
#include "sim/error.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace slowcc::exp {
namespace {

// Stream constants keeping runner-derived seeds disjoint from the
// scenario-internal sub-streams (which use small indices 0..k).
constexpr std::uint64_t kRetryStream = 0x7265747279;  // "retry"
constexpr std::uint64_t kChaosStream = 0x6368616f73;  // "chaos"

/// Stamp a row with a trial's identity — used when the row had to be
/// synthesized from an exception instead of coming back from fn.
void stamp_identity(Row& row, const TrialDesc& d) {
  row.trial_id = d.trial_id;
  row.experiment = d.experiment;
  row.algorithm = d.algorithm;
  row.cell = d.cell_key();
  row.trial_index = d.trial_index;
  row.seed = d.seed;
}

}  // namespace

std::uint64_t retry_seed(std::uint64_t trial_seed, int attempt) noexcept {
  return derive_seed(trial_seed, kRetryStream,
                     static_cast<std::uint64_t>(attempt));
}

ParallelRunner::ParallelRunner(int jobs) : jobs_(jobs) {
  if (jobs < 1) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "jobs must be >= 1");
  }
}

int ParallelRunner::default_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelRunner::set_policy(const RunnerPolicy& policy) {
  if (policy.max_attempts < 1) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "max_attempts must be >= 1");
  }
  if (policy.chaos_rate < 0.0 || policy.chaos_rate > 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "chaos_rate must be in [0, 1]");
  }
  if (policy.deadline_check_every == 0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "deadline_check_every must be >= 1");
  }
  if (!(policy.mem_watermark_fraction > 0.0) ||
      policy.mem_watermark_fraction > 1.0) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "mem_watermark_fraction must be in (0, 1]");
  }
  if (policy.trial_weight_cap < 1) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "ParallelRunner",
                        "trial_weight_cap must be >= 1");
  }
  policy_ = policy;
}

Row ParallelRunner::run_quarantined(
    const TrialDesc& trial,
    const std::function<Row(const TrialDesc&)>& fn) const {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t events_start = sim::Simulator::thread_events_executed();

  Row row;
  int attempts = 0;
  // Resource exhaustion composes with the retry policy by granting one
  // extra attempt: after the first kResourceExhausted failure every
  // further attempt (including the bonus) runs at half the byte
  // budget, so a trial that merely spiked can still finish while a
  // true memory bomb fails fast — and then quarantines. Deterministic:
  // the grant depends only on prior attempt outcomes.
  int resource_failures = 0;
  for (int attempt = 0;; ++attempt) {
    const int allowed = policy_.max_attempts + (resource_failures > 0 ? 1 : 0);
    if (attempt >= allowed) break;
    TrialDesc d = trial;
    d.attempt = attempt;
    if (attempt > 0) d.seed = retry_seed(trial.seed, attempt);
    ++attempts;
    std::uint64_t bytes_budget = policy_.max_trial_bytes;
    if (bytes_budget != 0 && resource_failures > 0) bytes_budget /= 2;
    sim::ResourceGovernor::reset_thread_peaks();
    bool resource_exhausted = false;
    try {
      if (policy_.chaos_rate > 0.0) {
        sim::Rng roll(derive_seed(derive_seed(policy_.chaos_seed,
                                              kChaosStream),
                                  d.trial_id,
                                  static_cast<std::uint64_t>(attempt)));
        if (roll.chance(policy_.chaos_rate)) {
          throw sim::SimError(
              sim::SimErrc::kTrialAborted, "ChaosInjector",
              "injected failure (trial " + std::to_string(d.trial_id) +
                  ", attempt " + std::to_string(attempt) + ")");
        }
      }
      const fault::TrialDeadlineConfig deadline{
          policy_.max_trial_events, policy_.max_trial_wall_seconds,
          policy_.deadline_check_every, bytes_budget,
          policy_.mem_watermark_fraction};
      const fault::ScopedTrialDeadline guard(deadline);
      row = fn(d);
      stamp_identity(row, d);
      row.outcome.ok = row.error.empty();
      if (!row.outcome.ok && row.outcome.error_kind.empty()) {
        // fn reported an error without classifying it (custom fns).
        row.outcome.error_kind = "exception";
      }
      // run_trial converts exceptions into error rows itself, so a
      // resource abort from the registry path arrives here as data.
      resource_exhausted =
          !row.outcome.ok &&
          row.outcome.error_kind ==
              sim::to_string(sim::SimErrc::kResourceExhausted);
    } catch (const sim::SimError& ex) {
      row = Row{};
      stamp_identity(row, d);
      row.error = ex.what();
      row.outcome.ok = false;
      row.outcome.error_kind = sim::to_string(ex.code());
      resource_exhausted = ex.code() == sim::SimErrc::kResourceExhausted;
    } catch (const std::exception& ex) {
      row = Row{};
      stamp_identity(row, d);
      row.error = ex.what();
      row.outcome.ok = false;
      row.outcome.error_kind = "exception";
    }
    // Stamp this attempt's governor peaks; the final attempt's stamp is
    // the one that stands with its row. The thread-local peaks survive
    // the Simulator that produced them, which is what makes this
    // readable after the exception tore the scenario down.
    {
      const sim::ResourceUsage& pk = sim::ResourceGovernor::thread_peaks();
      row.outcome.peak_live_events = pk.live_events;
      row.outcome.peak_live_packets = pk.live_packets;
      row.outcome.peak_queued_bytes = pk.queued_bytes;
      row.outcome.peak_bytes_estimate = pk.bytes_estimate;
    }
    if (resource_exhausted) ++resource_failures;
    if (row.outcome.ok) break;
  }

  row.outcome.attempts = attempts;
  row.outcome.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  row.outcome.events =
      sim::Simulator::thread_events_executed() - events_start;
  return row;
}

std::vector<Row> ParallelRunner::run(
    const std::vector<TrialDesc>& trials,
    const std::function<Row(const TrialDesc&)>& fn) const {
  std::vector<Row> rows(trials.size());
  if (trials.empty()) return rows;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex observer_mu;

  // Weighted admission: a weight-w trial occupies w of the runner's
  // `jobs` capacity units, so memory-heavy trials can't all run at
  // once (at w == jobs a trial runs alone). Weights are computed up
  // front — the weight fn may touch the registry and should run once
  // per trial, not once per admission wait. Admission only delays
  // *when* a trial starts, never what it computes, so the jobs=1 ==
  // jobs=N byte-identity is untouched.
  const int capacity = jobs_;
  std::vector<int> weights;
  if (weight_fn_) {
    weights.reserve(trials.size());
    const int cap = std::min(policy_.trial_weight_cap, capacity);
    for (const TrialDesc& t : trials) {
      weights.push_back(std::clamp(weight_fn_(t), 1, cap));
    }
  }
  std::mutex admit_mu;
  std::condition_variable admit_cv;
  int in_flight_weight = 0;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      const int w = weights.empty() ? 1 : weights[i];
      {
        std::unique_lock<std::mutex> lock(admit_mu);
        admit_cv.wait(lock,
                      [&] { return in_flight_weight + w <= capacity; });
        in_flight_weight += w;
      }
      rows[i] = run_quarantined(trials[i], fn);
      {
        const std::lock_guard<std::mutex> lock(admit_mu);
        in_flight_weight -= w;
      }
      admit_cv.notify_all();
      const std::size_t completed =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (on_row_ || progress_) {
        const std::lock_guard<std::mutex> lock(observer_mu);
        if (on_row_) on_row_(rows[i]);
        if (progress_) progress_(completed, trials.size());
      }
    }
  };

  const int n = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), trials.size()));
  if (n <= 1) {
    worker();
    return rows;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return rows;
}

std::vector<Row> ParallelRunner::run(
    const std::vector<TrialDesc>& trials) const {
  return run(trials, [](const TrialDesc& d) { return run_trial(d); });
}

}  // namespace slowcc::exp
