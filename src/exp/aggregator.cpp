#include "exp/aggregator.hpp"

#include <algorithm>
#include <cmath>

#include "exp/serialize.hpp"

namespace slowcc::exp {

double t_critical_95(std::size_t n) noexcept {
  if (n < 2) return 0.0;
  // Two-sided 95% critical values for df = n-1 (df 1..30), then the
  // normal asymptote. Enough precision for CI bars on sweep plots.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
      2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
      2.048,  2.045, 2.042};
  const std::size_t df = n - 1;
  if (df <= 30) return kTable[df - 1];
  return 1.960;
}

double percentile_sorted(const std::vector<double>& sorted,
                         double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - std::floor(pos);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

const MetricStats* CellStats::metric(std::string_view name) const {
  for (const MetricStats& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string CellStats::to_json() const {
  JsonObjectBuilder o;
  o.add("cell", cell)
      .add("experiment", experiment)
      .add("algorithm", algorithm);
  for (const auto& [k, v] : axes) o.add(k, v);
  o.add("trials", static_cast<std::uint64_t>(trials))
      .add("errors", static_cast<std::uint64_t>(errors));
  for (const MetricStats& m : metrics) {
    o.add(m.name + "_mean", m.mean)
        .add(m.name + "_stddev", m.stddev)
        .add(m.name + "_ci95", m.ci95)
        .add(m.name + "_p50", m.p50);
  }
  return o.str();
}

std::vector<CellStats> aggregate(const std::vector<Row>& rows) {
  // Group in first-seen order so output order tracks expansion order.
  std::vector<CellStats> cells;
  std::vector<std::vector<const Row*>> members;
  for (const Row& r : rows) {
    std::size_t idx = cells.size();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].cell == r.cell) {
        idx = i;
        break;
      }
    }
    if (idx == cells.size()) {
      CellStats c;
      c.cell = r.cell;
      c.experiment = r.experiment;
      c.algorithm = r.algorithm;
      c.axes = r.axes;
      cells.push_back(std::move(c));
      members.emplace_back();
    }
    if (r.error.empty()) {
      members[idx].push_back(&r);
    } else {
      ++cells[idx].errors;
    }
  }

  for (std::size_t i = 0; i < cells.size(); ++i) {
    CellStats& cell = cells[i];
    cell.trials = members[i].size();
    if (members[i].empty()) continue;
    // Metric set = union over member rows, first-seen order.
    std::vector<std::string> names;
    for (const Row* r : members[i]) {
      for (const auto& [k, v] : r->metrics) {
        (void)v;
        if (std::find(names.begin(), names.end(), k) == names.end()) {
          names.push_back(k);
        }
      }
    }
    for (const std::string& name : names) {
      std::vector<double> xs;
      xs.reserve(members[i].size());
      for (const Row* r : members[i]) {
        const double v = r->get(name);
        if (std::isfinite(v)) xs.push_back(v);
      }
      if (xs.empty()) continue;
      MetricStats m;
      m.name = name;
      m.n = xs.size();
      double sum = 0.0;
      for (const double x : xs) sum += x;
      m.mean = sum / static_cast<double>(xs.size());
      if (xs.size() > 1) {
        double ss = 0.0;
        for (const double x : xs) ss += (x - m.mean) * (x - m.mean);
        m.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
        m.ci95 = t_critical_95(xs.size()) * m.stddev /
                 std::sqrt(static_cast<double>(xs.size()));
      }
      std::sort(xs.begin(), xs.end());
      m.min = xs.front();
      m.max = xs.back();
      m.p05 = percentile_sorted(xs, 0.05);
      m.p50 = percentile_sorted(xs, 0.50);
      m.p95 = percentile_sorted(xs, 0.95);
      cell.metrics.push_back(std::move(m));
    }
  }
  return cells;
}

}  // namespace slowcc::exp
