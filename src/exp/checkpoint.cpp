#include "exp/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "exp/serialize.hpp"
#include "sim/error.hpp"

namespace slowcc::exp {
namespace {

[[noreturn]] void bad(const std::string& detail) {
  throw sim::SimError(sim::SimErrc::kBadConfig, "Checkpoint", detail);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

bool parse_row_json(const std::string& line, const TrialDesc& desc,
                    Row* out) {
  std::vector<std::pair<std::string, JsonScalar>> fields;
  if (!parse_flat_json(line, fields)) return false;

  // Axis keys for this trial, in the order run_trial() stamps them.
  std::vector<std::string> axis_keys;
  if (desc.bandwidth_bps > 0) axis_keys.push_back("bandwidth_mbps");
  if (desc.rtt_ms > 0) axis_keys.push_back("rtt_ms");
  for (const auto& [k, v] : desc.params) {
    (void)v;
    axis_keys.push_back(k);
  }

  Row row;
  row.outcome.attempts = 1;
  bool saw_trial_id = false;
  for (const auto& [key, value] : fields) {
    if (key == "trial_id") {
      row.trial_id = value.as_u64();
      saw_trial_id = true;
    } else if (key == "experiment") {
      row.experiment = value.text;
    } else if (key == "algorithm") {
      row.algorithm = value.text;
    } else if (key == "cell") {
      row.cell = value.text;
    } else if (key == "trial_index") {
      row.trial_index = static_cast<int>(value.number);
    } else if (key == "seed") {
      row.seed = value.as_u64();
    } else if (key == "attempts") {
      row.outcome.attempts = static_cast<int>(value.number);
    } else if (key == "error") {
      row.error = value.text;
      row.outcome.ok = false;
    } else if (key == "error_kind") {
      row.outcome.error_kind = value.text;
    } else if (key == "peak_live_events") {
      row.outcome.peak_live_events = value.as_u64();
    } else if (key == "peak_live_packets") {
      row.outcome.peak_live_packets = value.as_u64();
    } else if (key == "peak_queued_bytes") {
      row.outcome.peak_queued_bytes = value.as_u64();
    } else if (key == "peak_bytes_estimate") {
      row.outcome.peak_bytes_estimate = value.as_u64();
    } else if (std::find(axis_keys.begin(), axis_keys.end(), key) !=
               axis_keys.end()) {
      row.set_axis(key, value.number);
    } else {
      row.set(key, value.number);
    }
  }
  if (!saw_trial_id) return false;
  // Identity must agree with the descriptor this id maps to now —
  // anything else is a stale journal from a different grid.
  if (row.trial_id != desc.trial_id || row.cell != desc.cell_key() ||
      row.trial_index != desc.trial_index) {
    return false;
  }
  *out = std::move(row);
  return true;
}

JournalMerge merge_journals(const std::vector<TrialDesc>& trials,
                            const std::vector<JsonlLoad>& journals,
                            bool rerun_failures) {
  JournalMerge merge;

  // Last journal line per trial id wins (re-runs append duplicates;
  // shards are scanned in the order given, so later journals shadow
  // earlier ones — irrelevant for correctness since rows are
  // deterministic per trial, but it keeps the scan single-pass).
  std::map<std::uint64_t, const std::string*> latest;
  for (const JsonlLoad& journal : journals) {
    merge.torn_tail = merge.torn_tail || journal.torn_tail;
    merge.journal_lines += journal.lines.size();
    for (const std::string& line : journal.lines) {
      std::vector<std::pair<std::string, JsonScalar>> fields;
      if (!parse_flat_json(line, fields)) continue;
      for (const auto& [key, value] : fields) {
        if (key == "trial_id") {
          latest[value.as_u64()] = &line;
          break;
        }
      }
    }
  }

  for (const TrialDesc& d : trials) {
    Row row;
    const auto it = latest.find(d.trial_id);
    if (it != latest.end() && parse_row_json(*it->second, d, &row) &&
        (row.outcome.ok || !rerun_failures)) {
      merge.rows.push_back(std::move(row));
      merge.lines.push_back(*it->second);
    } else {
      merge.pending.push_back(d);
    }
  }
  return merge;
}

Checkpoint::Checkpoint(std::string dir, std::string journal_name)
    : dir_(std::move(dir)), journal_name_(std::move(journal_name)) {
  if (dir_.empty()) bad("empty checkpoint directory");
  if (journal_name_.empty() ||
      journal_name_.find('/') != std::string::npos) {
    bad("journal name must be a bare filename: '" + journal_name_ + "'");
  }
}

Checkpoint::~Checkpoint() = default;

std::string Checkpoint::path(const std::string& name) const {
  return dir_ + "/" + name;
}

std::string Checkpoint::journal_path() const { return path(journal_name_); }

bool Checkpoint::open(const SweepSpec& spec, const std::string& policy_text,
                      std::string* policy_warning) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) bad("cannot create " + dir_ + ": " + ec.message());

  const std::string spec_text = spec.to_text();
  const std::string spec_path = path("spec.txt");
  if (std::filesystem::exists(spec_path)) {
    const std::string existing = read_file(spec_path);
    if (existing != spec_text) {
      bad("resume refused: " + spec_path +
          " holds a different sweep spec than this invocation (start a "
          "fresh directory or re-run with the original grid)");
    }
  } else {
    std::string err;
    if (!write_file_atomic(spec_path, spec_text, &err)) bad(err);
  }

  const std::string policy_path = path("policy.txt");
  if (std::filesystem::exists(policy_path)) {
    const std::string existing = read_file(policy_path);
    if (existing != policy_text && policy_warning != nullptr) {
      *policy_warning =
          "runner policy changed since the checkpoint was created "
          "(recorded rows keep the old policy's retries/chaos)";
    }
  }
  // Always record the latest policy.
  std::string err;
  if (!write_file_atomic(policy_path, policy_text, &err)) bad(err);

  const bool resuming = std::filesystem::exists(journal_path());
  journal_ = std::make_unique<JsonlAppender>(journal_path());
  return resuming;
}

Checkpoint::Plan Checkpoint::plan(
    const std::vector<TrialDesc>& trials) const {
  JournalMerge merge = merge_journals(trials, {load_jsonl(journal_path())},
                                      /*rerun_failures=*/true);
  Plan plan;
  plan.pending = std::move(merge.pending);
  plan.recovered = std::move(merge.rows);
  plan.journal_lines = merge.journal_lines;
  plan.torn_tail = merge.torn_tail;

  std::map<std::string, std::pair<std::size_t, std::size_t>> cells;
  for (const TrialDesc& d : trials) ++cells[d.cell_key()].first;
  for (const Row& r : plan.recovered) ++cells[r.cell].second;
  plan.cells_total = cells.size();
  for (const auto& [cell, counts] : cells) {
    (void)cell;
    if (counts.second == counts.first) ++plan.cells_done;
  }
  return plan;
}

bool Checkpoint::record(const Row& row) {
  return journal_ != nullptr && journal_->append(row.to_json());
}

bool Checkpoint::finalize(const std::vector<Row>& rows,
                          const std::vector<CellStats>& cells,
                          std::string* error) {
  std::ostringstream tj, tc, cj, cc, mf;
  write_rows_jsonl(tj, rows);
  write_rows_csv(tc, rows);
  write_cells_jsonl(cj, cells);
  write_cells_csv(cc, cells);
  write_manifest_jsonl(mf, rows);
  return write_file_atomic(path("trials.jsonl"), tj.str(), error) &&
         write_file_atomic(path("trials.csv"), tc.str(), error) &&
         write_file_atomic(path("cells.jsonl"), cj.str(), error) &&
         write_file_atomic(path("cells.csv"), cc.str(), error) &&
         write_file_atomic(path("manifest.jsonl"), mf.str(), error);
}

}  // namespace slowcc::exp
