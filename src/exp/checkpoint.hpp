#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/result_sink.hpp"
#include "exp/row.hpp"
#include "exp/sweep_spec.hpp"

namespace slowcc::exp {

/// Reconstruct a Row from one journal line. The TrialDesc that
/// produced the row supplies what the flat JSON cannot: which numeric
/// keys are grid axes (from the desc) and which are metrics (the
/// rest, in serialization order). Returns false on a malformed line
/// or an identity mismatch (wrong cell for this trial id) — callers
/// treat either as "stale, re-run the trial".
[[nodiscard]] bool parse_row_json(const std::string& line,
                                  const TrialDesc& desc, Row* out);

/// Last-valid-line-wins merge of one or more journals against a sweep
/// expansion — the shared core of single-process resume
/// (Checkpoint::plan) and the fleet's multi-shard drain. Rows are
/// matched to trials by id and validated via parse_row_json; the raw
/// journal line of every accepted row rides along so a fleet
/// compaction can rewrite the canonical journal byte-identically to
/// what a --jobs 1 run would have produced (one line per trial, id
/// order).
struct JournalMerge {
  std::vector<Row> rows;           // accepted rows, trial-id order
  std::vector<std::string> lines;  // raw journal line per accepted row
  std::vector<TrialDesc> pending;  // trials with no accepted row
  std::size_t journal_lines = 0;   // lines inspected across journals
  bool torn_tail = false;          // any journal ended mid-line
};

/// `rerun_failures` selects the resume contract. true — the
/// single-process contract: failure rows count as pending so a fresh
/// invocation retries them. false — the fleet drain contract: any
/// journaled row (ok or failed) is complete, so a deterministic
/// failure cannot livelock N workers into re-claiming it forever
/// (rows are deterministic per trial, so either choice preserves
/// byte-identity; only termination differs).
[[nodiscard]] JournalMerge merge_journals(
    const std::vector<TrialDesc>& trials,
    const std::vector<JsonlLoad>& journals, bool rerun_failures);

/// Crash-safe sweep state in one directory.
///
/// Layout:
///   spec.txt       canonical SweepSpec::to_text() — a resume under a
///                  different grid is refused (kBadConfig)
///   policy.txt     runner policy fingerprint — a mismatch only warns
///                  (resuming with, say, a larger deadline is legal,
///                  but previously-journaled rows keep their flags)
///   journal.jsonl  one row JSON line per completed trial, appended
///                  and flushed as trials finish (crash-tolerant;
///                  duplicates allowed, last line wins)
///   trials.*/cells.*/manifest.jsonl   final outputs, written
///                  atomically (tmp + rename) by finalize()
///
/// The resume contract: re-run exactly the trials with no successful
/// journal row. Successful trials are reconstructed from the journal
/// byte-identically (seeds are cell-attached and the serializer is
/// canonical), so an interrupted sweep, once resumed, produces the
/// same trials/cells files as an uninterrupted run of the same spec,
/// policy, and any --jobs value.
class Checkpoint {
 public:
  /// `journal_name` is the append-target inside `dir`: the canonical
  /// "journal.jsonl" for single-process runs, a per-worker shard
  /// ("journal.worker-<id>.jsonl") for fleet workers so N processes
  /// never interleave appends into one file.
  explicit Checkpoint(std::string dir,
                      std::string journal_name = "journal.jsonl");
  ~Checkpoint();

  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Create the directory (if needed), validate or write spec.txt and
  /// policy.txt, and open the journal for appending. Returns true when
  /// an existing journal was found (a resume). Throws sim::SimError
  /// (kBadConfig) on I/O failure or a spec mismatch; a policy mismatch
  /// sets `*policy_warning` instead.
  bool open(const SweepSpec& spec, const std::string& policy_text,
            std::string* policy_warning = nullptr);

  /// Partition of the expansion into recovered and pending work.
  struct Plan {
    std::vector<TrialDesc> pending;  // trials to (re)run, id order
    std::vector<Row> recovered;      // successful journaled rows, id order
    std::size_t journal_lines = 0;   // journal rows inspected
    bool torn_tail = false;          // journal ended mid-line (killed run)
    std::size_t cells_total = 0;
    std::size_t cells_done = 0;  // cells with every trial recovered
  };

  /// Read the journal and split `trials` (the spec's full expansion)
  /// into recovered successes and pending re-runs.
  [[nodiscard]] Plan plan(const std::vector<TrialDesc>& trials) const;

  /// Append one finished row to the journal (call under the runner's
  /// observer mutex — the runner's set_on_row hook does). Returns
  /// false on write failure.
  bool record(const Row& row);

  /// Atomically write trials.{jsonl,csv}, cells.{jsonl,csv}, and
  /// manifest.jsonl (each via tmp + fsync + rename + directory fsync,
  /// so a crash immediately after any rename cannot lose a final).
  /// Returns false with `*error` set on failure.
  [[nodiscard]] bool finalize(const std::vector<Row>& rows,
                              const std::vector<CellStats>& cells,
                              std::string* error = nullptr);

  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string path(const std::string& name) const;

 private:
  std::string dir_;
  std::string journal_name_;
  std::unique_ptr<JsonlAppender> journal_;
};

}  // namespace slowcc::exp
