#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/result_sink.hpp"
#include "exp/row.hpp"
#include "exp/sweep_spec.hpp"

namespace slowcc::exp {

/// Reconstruct a Row from one journal line. The TrialDesc that
/// produced the row supplies what the flat JSON cannot: which numeric
/// keys are grid axes (from the desc) and which are metrics (the
/// rest, in serialization order). Returns false on a malformed line
/// or an identity mismatch (wrong cell for this trial id) — callers
/// treat either as "stale, re-run the trial".
[[nodiscard]] bool parse_row_json(const std::string& line,
                                  const TrialDesc& desc, Row* out);

/// Crash-safe sweep state in one directory.
///
/// Layout:
///   spec.txt       canonical SweepSpec::to_text() — a resume under a
///                  different grid is refused (kBadConfig)
///   policy.txt     runner policy fingerprint — a mismatch only warns
///                  (resuming with, say, a larger deadline is legal,
///                  but previously-journaled rows keep their flags)
///   journal.jsonl  one row JSON line per completed trial, appended
///                  and flushed as trials finish (crash-tolerant;
///                  duplicates allowed, last line wins)
///   trials.*/cells.*/manifest.jsonl   final outputs, written
///                  atomically (tmp + rename) by finalize()
///
/// The resume contract: re-run exactly the trials with no successful
/// journal row. Successful trials are reconstructed from the journal
/// byte-identically (seeds are cell-attached and the serializer is
/// canonical), so an interrupted sweep, once resumed, produces the
/// same trials/cells files as an uninterrupted run of the same spec,
/// policy, and any --jobs value.
class Checkpoint {
 public:
  explicit Checkpoint(std::string dir);
  ~Checkpoint();

  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Create the directory (if needed), validate or write spec.txt and
  /// policy.txt, and open the journal for appending. Returns true when
  /// an existing journal was found (a resume). Throws sim::SimError
  /// (kBadConfig) on I/O failure or a spec mismatch; a policy mismatch
  /// sets `*policy_warning` instead.
  bool open(const SweepSpec& spec, const std::string& policy_text,
            std::string* policy_warning = nullptr);

  /// Partition of the expansion into recovered and pending work.
  struct Plan {
    std::vector<TrialDesc> pending;  // trials to (re)run, id order
    std::vector<Row> recovered;      // successful journaled rows, id order
    std::size_t journal_lines = 0;   // journal rows inspected
    bool torn_tail = false;          // journal ended mid-line (killed run)
    std::size_t cells_total = 0;
    std::size_t cells_done = 0;  // cells with every trial recovered
  };

  /// Read the journal and split `trials` (the spec's full expansion)
  /// into recovered successes and pending re-runs.
  [[nodiscard]] Plan plan(const std::vector<TrialDesc>& trials) const;

  /// Append one finished row to the journal (call under the runner's
  /// observer mutex — the runner's set_on_row hook does). Returns
  /// false on write failure.
  bool record(const Row& row);

  /// Atomically write trials.{jsonl,csv}, cells.{jsonl,csv}, and
  /// manifest.jsonl. Returns false with `*error` set on failure.
  [[nodiscard]] bool finalize(const std::vector<Row>& rows,
                              const std::vector<CellStats>& cells,
                              std::string* error = nullptr);

  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string path(const std::string& name) const;

 private:
  std::string dir_;
  std::unique_ptr<JsonlAppender> journal_;
};

}  // namespace slowcc::exp
