#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slowcc::exp {

/// Execution record of one trial, kept beside its scientific payload.
///
/// Deterministic fields (ok, error_kind, message, attempts) are
/// serialized into the row JSON/CSV and must be identical for jobs=1
/// and jobs=N runs of the same spec+policy. Nondeterministic meters
/// (wall_ms, events) exist for the failure manifest only and never
/// enter the byte-compared row serialization.
struct TrialOutcome {
  bool ok = true;
  /// Failure class: sim::to_string(SimErrc) for SimError failures,
  /// "exception" for anything else. Empty when ok.
  std::string error_kind;
  /// attempts made (1 = first try succeeded; > 1 only with a retrying
  /// runner policy).
  int attempts = 1;
  /// Wall-clock cost of the trial, all attempts included (manifest
  /// only — not serialized into rows).
  double wall_ms = 0.0;
  /// Simulator events executed by the trial, all attempts included
  /// (manifest only).
  std::uint64_t events = 0;
  /// Peak resource-model usage observed by the ResourceGovernor across
  /// the trial's attempts. Derived from logical simulation state, so
  /// deterministic — serialized into the row (only on resource-
  /// exhausted failures, so budget-free sweeps keep their bytes).
  std::uint64_t peak_live_events = 0;
  std::uint64_t peak_live_packets = 0;
  std::uint64_t peak_queued_bytes = 0;
  std::uint64_t peak_bytes_estimate = 0;
};

/// One structured result row: the outcome of a single simulation trial.
///
/// A row carries its grid coordinates (experiment, algorithm, numeric
/// axes such as bandwidth or a swept parameter) and a flat ordered list
/// of named numeric metrics produced by the experiment adapter. Rows
/// are plain data — they are produced on worker threads and only ever
/// moved, so they need no synchronization.
struct Row {
  std::uint64_t trial_id = 0;
  std::string experiment;
  std::string algorithm;
  /// Grid-cell key: every axis except the trial index / derived seed.
  /// Rows with equal `cell` are aggregated together.
  std::string cell;
  int trial_index = 0;
  std::uint64_t seed = 0;
  /// Non-empty when the trial failed; metrics are then meaningless.
  /// Mirrors `outcome`: error.empty() == outcome.ok.
  std::string error;
  /// Structured execution record (quarantine/retry/deadline metadata).
  TrialOutcome outcome;

  /// Numeric axis values (e.g. {"bandwidth_mbps", 15}) — duplicated
  /// from `cell` in machine-readable form.
  std::vector<std::pair<std::string, double>> axes;
  std::vector<std::pair<std::string, double>> metrics;

  void set_axis(std::string name, double value) {
    axes.emplace_back(std::move(name), value);
  }
  void set(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  /// Value of metric `name`; NaN when absent.
  [[nodiscard]] double get(std::string_view name) const noexcept;

  [[nodiscard]] std::string to_json() const;
};

/// Union of metric (and axis) names across `rows`, in first-seen order
/// — the column set for CSV export.
[[nodiscard]] std::vector<std::string> metric_names(
    const std::vector<Row>& rows);
[[nodiscard]] std::vector<std::string> axis_names(
    const std::vector<Row>& rows);

}  // namespace slowcc::exp
