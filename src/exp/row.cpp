#include "exp/row.hpp"

#include <algorithm>
#include <limits>

#include "exp/serialize.hpp"

namespace slowcc::exp {

double Row::get(std::string_view name) const noexcept {
  for (const auto& [k, v] : metrics) {
    if (k == name) return v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::string Row::to_json() const {
  JsonObjectBuilder o;
  o.add("trial_id", trial_id)
      .add("experiment", experiment)
      .add("algorithm", algorithm)
      .add("cell", cell)
      .add("trial_index", static_cast<std::int64_t>(trial_index))
      .add("seed", seed);
  for (const auto& [k, v] : axes) o.add(k, v);
  for (const auto& [k, v] : metrics) o.add(k, v);
  // Only the deterministic outcome fields appear here; wall_ms/events
  // would break the jobs=1 == jobs=N byte-identity and live in the
  // manifest instead.
  if (outcome.attempts > 1) {
    o.add("attempts", static_cast<std::int64_t>(outcome.attempts));
  }
  if (!error.empty()) {
    o.add("error", error);
    if (!outcome.error_kind.empty()) o.add("error_kind", outcome.error_kind);
    // Peak-usage fields ride only on resource-exhausted rows: they are
    // deterministic (governor model state, not RSS) and let a sweep
    // reader see how far past the watermark the trial got.
    if (outcome.error_kind == "resource-exhausted") {
      o.add("peak_live_events", outcome.peak_live_events)
          .add("peak_live_packets", outcome.peak_live_packets)
          .add("peak_queued_bytes", outcome.peak_queued_bytes)
          .add("peak_bytes_estimate", outcome.peak_bytes_estimate);
    }
  }
  return o.str();
}

namespace {

std::vector<std::string> union_names(
    const std::vector<Row>& rows,
    const std::vector<std::pair<std::string, double>> Row::* member) {
  std::vector<std::string> names;
  for (const Row& r : rows) {
    for (const auto& [k, v] : r.*member) {
      (void)v;
      if (std::find(names.begin(), names.end(), k) == names.end()) {
        names.push_back(k);
      }
    }
  }
  return names;
}

}  // namespace

std::vector<std::string> metric_names(const std::vector<Row>& rows) {
  return union_names(rows, &Row::metrics);
}

std::vector<std::string> axis_names(const std::vector<Row>& rows) {
  return union_names(rows, &Row::axes);
}

}  // namespace slowcc::exp
