#include "exp/serialize.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace slowcc::exp {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(std::string_view s) {
  if (s.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  // %.17g always round-trips a double; try shorter forms first so the
  // common case stays readable.
  for (const int prec : {9, 12, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char e = s[++i];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 < s.size()) {
          char buf[5] = {s[i + 1], s[i + 2], s[i + 3], s[i + 4], 0};
          char* end = nullptr;
          const unsigned long cp = std::strtoul(buf, &end, 16);
          if (end == buf + 4 && cp < 0x80) {
            // json_escape only emits \u00xx for control bytes; pass
            // anything fancier through untouched.
            out += static_cast<char>(cp);
            i += 4;
            break;
          }
        }
        out += "\\u";
        break;
      }
      default:
        out += '\\';
        out += e;
    }
  }
  return out;
}

std::uint64_t JsonScalar::as_u64() const noexcept {
  if (kind != Kind::kNumber) return 0;
  return std::strtoull(text.c_str(), nullptr, 10);
}

namespace {

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
    ++i;
  }
}

/// Scan a double-quoted string starting at s[i] == '"'; on success, i
/// is one past the closing quote and `body` holds the raw (still
/// escaped) content.
bool scan_string(std::string_view s, std::size_t& i, std::string_view* body) {
  if (i >= s.size() || s[i] != '"') return false;
  const std::size_t start = ++i;
  while (i < s.size()) {
    if (s[i] == '\\') {
      i += 2;
      continue;
    }
    if (s[i] == '"') {
      *body = s.substr(start, i - start);
      ++i;
      return true;
    }
    ++i;
  }
  return false;
}

bool scan_scalar(std::string_view s, std::size_t& i, JsonScalar* out) {
  skip_ws(s, i);
  if (i >= s.size()) return false;
  if (s[i] == '"') {
    std::string_view body;
    if (!scan_string(s, i, &body)) return false;
    out->kind = JsonScalar::Kind::kString;
    out->text = json_unescape(body);
    return true;
  }
  if (s.compare(i, 4, "true") == 0) {
    out->kind = JsonScalar::Kind::kBool;
    out->boolean = true;
    out->text = "true";
    i += 4;
    return true;
  }
  if (s.compare(i, 5, "false") == 0) {
    out->kind = JsonScalar::Kind::kBool;
    out->text = "false";
    i += 5;
    return true;
  }
  if (s.compare(i, 4, "null") == 0) {
    out->kind = JsonScalar::Kind::kNull;
    out->text = "null";
    out->number = std::numeric_limits<double>::quiet_NaN();
    i += 4;
    return true;
  }
  const std::size_t start = i;
  while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                          s[i] == '-' || s[i] == '+' || s[i] == '.' ||
                          s[i] == 'e' || s[i] == 'E')) {
    ++i;
  }
  if (i == start) return false;
  out->kind = JsonScalar::Kind::kNumber;
  out->text = std::string(s.substr(start, i - start));
  char* end = nullptr;
  out->number = std::strtod(out->text.c_str(), &end);
  return end == out->text.c_str() + out->text.size();
}

}  // namespace

bool parse_flat_json(std::string_view text,
                     std::vector<std::pair<std::string, JsonScalar>>& out) {
  out.clear();
  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size() || text[i] != '{') return false;
  ++i;
  skip_ws(text, i);
  if (i < text.size() && text[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws(text, i);
      std::string_view key_body;
      if (!scan_string(text, i, &key_body)) return false;
      skip_ws(text, i);
      if (i >= text.size() || text[i] != ':') return false;
      ++i;
      JsonScalar value;
      if (!scan_scalar(text, i, &value)) return false;
      out.emplace_back(json_unescape(key_body), std::move(value));
      skip_ws(text, i);
      if (i >= text.size()) return false;
      if (text[i] == ',') {
        ++i;
        continue;
      }
      if (text[i] == '}') {
        ++i;
        break;
      }
      return false;
    }
  }
  skip_ws(text, i);
  return i == text.size();
}

void JsonObjectBuilder::key(std::string_view k) {
  if (body_.size() > 1) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k,
                                          std::string_view value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k, double value) {
  key(k);
  body_ += json_number(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k,
                                          std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k,
                                          std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

}  // namespace slowcc::exp
