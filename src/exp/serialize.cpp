#include "exp/serialize.hpp"

#include <cmath>
#include <cstdio>

namespace slowcc::exp {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(std::string_view s) {
  if (s.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  // %.17g always round-trips a double; try shorter forms first so the
  // common case stays readable.
  for (const int prec : {9, 12, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

void JsonObjectBuilder::key(std::string_view k) {
  if (body_.size() > 1) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k,
                                          std::string_view value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k, double value) {
  key(k);
  body_ += json_number(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k,
                                          std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k,
                                          std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObjectBuilder& JsonObjectBuilder::add(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

}  // namespace slowcc::exp
