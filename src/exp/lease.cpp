#include "exp/lease.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "exp/result_sink.hpp"
#include "exp/serialize.hpp"
#include "sim/error.hpp"

namespace slowcc::exp {
namespace {

/// Whole-file read; returns false when the file does not exist (or
/// cannot be opened — indistinguishable here, and both mean "not a
/// readable lease").
bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

LeaseLedger::LeaseLedger(std::string sweep_dir, std::string owner)
    : dir_(std::move(sweep_dir)), owner_(std::move(owner)) {
  if (dir_.empty()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "LeaseLedger",
                        "empty sweep directory");
  }
  if (owner_.empty()) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "LeaseLedger",
                        "empty worker id");
  }
}

bool LeaseLedger::prepare(std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(leases_dir(), ec);
  if (ec) {
    if (error) *error = "cannot create " + leases_dir() + ": " + ec.message();
    return false;
  }
  return true;
}

std::string LeaseLedger::leases_dir() const { return dir_ + "/leases"; }

std::string LeaseLedger::lease_path(std::uint64_t trial_id) const {
  return leases_dir() + "/trial-" + std::to_string(trial_id) + ".lease";
}

std::string LeaseLedger::render(const LeaseInfo& info) {
  JsonObjectBuilder o;
  o.add("owner", info.owner)
      .add("trial_id", info.trial_id)
      .add("attempt", info.attempt)
      .add("beat", info.beat);
  return o.str();
}

bool LeaseLedger::parse(const std::string& raw, LeaseInfo* out) {
  std::vector<std::pair<std::string, JsonScalar>> fields;
  if (!parse_flat_json(raw, fields)) return false;
  LeaseInfo info;
  bool saw_owner = false, saw_trial = false;
  for (const auto& [key, value] : fields) {
    if (key == "owner") {
      info.owner = value.text;
      saw_owner = true;
    } else if (key == "trial_id") {
      info.trial_id = value.as_u64();
      saw_trial = true;
    } else if (key == "attempt") {
      info.attempt = value.as_u64();
    } else if (key == "beat") {
      info.beat = value.as_u64();
    }
  }
  if (!saw_owner || !saw_trial || info.owner.empty()) return false;
  *out = std::move(info);
  return true;
}

LeaseClaim LeaseLedger::claim(std::uint64_t trial_id, std::uint64_t attempt,
                              std::string* error) {
  LeaseInfo info;
  info.owner = owner_;
  info.trial_id = trial_id;
  info.attempt = attempt;
  info.beat = 0;
  switch (write_file_exclusive(lease_path(trial_id), render(info), error)) {
    case ExclusiveWrite::kCreated:
      return LeaseClaim::kClaimed;
    case ExclusiveWrite::kExists:
      return LeaseClaim::kHeld;
    case ExclusiveWrite::kError:
      break;
  }
  return LeaseClaim::kError;
}

LeaseView LeaseLedger::read(std::uint64_t trial_id) const {
  LeaseView view;
  if (!read_file(lease_path(trial_id), &view.raw)) {
    view.state = LeaseRead::kAbsent;
    return view;
  }
  view.state =
      parse(view.raw, &view.info) ? LeaseRead::kOk : LeaseRead::kTorn;
  return view;
}

LeaseRefresh LeaseLedger::refresh(std::uint64_t trial_id, std::uint64_t beat,
                                  std::string* error) {
  const LeaseView current = read(trial_id);
  if (current.state != LeaseRead::kOk || current.info.owner != owner_) {
    // Gone, torn, or renamed to someone else: a sibling judged us dead
    // and took the trial (or a breaker died mid-rewrite). Either way
    // this worker must stop treating the trial as its own.
    return LeaseRefresh::kLost;
  }
  LeaseInfo next = current.info;
  next.beat = beat;
  if (!write_file_atomic(lease_path(trial_id), render(next), error)) {
    return LeaseRefresh::kError;
  }
  return LeaseRefresh::kOk;
}

LeaseBreak LeaseLedger::break_lease(std::uint64_t trial_id,
                                    const std::string& expected_raw,
                                    std::uint64_t attempt,
                                    std::string* error) {
  std::string raw;
  if (!read_file(lease_path(trial_id), &raw) || raw != expected_raw) {
    // Released, heartbeaten, or already stolen since the observation —
    // the staleness verdict no longer holds.
    return LeaseBreak::kChanged;
  }
  LeaseInfo info;
  info.owner = owner_;
  info.trial_id = trial_id;
  info.attempt = attempt;
  info.beat = 0;
  // The compare above and the rename inside write_file_atomic are not
  // one atomic step: two breakers can pass the compare and both
  // rename. The last rename stands; the other breaker's worker (and
  // the original owner, if alive after all) detect the theft at their
  // next refresh and discard their run of a trial whose row is
  // byte-identical regardless of who produced it.
  if (!write_file_atomic(lease_path(trial_id), render(info), error)) {
    return LeaseBreak::kError;
  }
  return LeaseBreak::kBroken;
}

bool LeaseLedger::release(std::uint64_t trial_id) {
  const LeaseView current = read(trial_id);
  if (current.state == LeaseRead::kAbsent) return true;
  if (current.state == LeaseRead::kOk && current.info.owner != owner_) {
    return true;  // stolen; the thief owns the file now
  }
  // Ours (or torn, which only we could have left behind via a failed
  // exclusive write): remove it.
  std::error_code ec;
  std::filesystem::remove(lease_path(trial_id), ec);
  return !ec;
}

bool LeaseLedger::still_owned(std::uint64_t trial_id) const {
  const LeaseView current = read(trial_id);
  return current.state == LeaseRead::kOk && current.info.owner == owner_;
}

}  // namespace slowcc::exp
