#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exp/row.hpp"
#include "exp/sweep_spec.hpp"

namespace slowcc::exp {

/// Fault-tolerance policy applied to every trial the runner executes.
///
/// Everything here is deterministic per (trial_id, attempt) — chaos
/// rolls and retry seeds derive from fixed sub-streams — so the
/// jobs=1 == jobs=N byte-identity the subsystem guarantees extends to
/// sweeps with injected failures and retries. The one deliberate
/// exception is `max_trial_wall_seconds`: a wall-clock backstop is
/// nondeterministic by nature and must be sized so it only fires on
/// genuinely hung trials.
struct RunnerPolicy {
  /// Attempts per trial (>= 1). Attempt k > 0 re-runs the trial with a
  /// seed from a dedicated retry sub-stream (see retry_seed()), so a
  /// deterministic failure fails every attempt while a
  /// randomness-sensitive one gets fresh draws.
  int max_attempts = 1;
  /// Probability in [0, 1] that an attempt is synthetically failed
  /// (kTrialAborted) before it runs — the chaos self-test mode that
  /// exercises quarantine/retry/resume end to end. Rolled
  /// deterministically from (chaos_seed, trial_id, attempt).
  double chaos_rate = 0.0;
  /// Base of the chaos roll stream (conventionally derived from the
  /// spec's base_seed; only read when chaos_rate > 0).
  std::uint64_t chaos_seed = 0;
  /// Per-Simulator event budget for each attempt; exceeding it makes
  /// the attempt a kDeadlineExceeded failure. 0 = unlimited.
  std::uint64_t max_trial_events = 0;
  /// Per-Simulator wall-clock budget (seconds) enforced by an attached
  /// Watchdog. 0 = unlimited.
  double max_trial_wall_seconds = 0.0;
  /// Watchdog check cadence for the wall budget.
  std::uint64_t deadline_check_every = 1024;
  /// Per-Simulator modeled-memory budget (bytes) enforced by the
  /// ResourceGovernor; exceeding it makes the attempt a
  /// kResourceExhausted failure. Deterministic (the model counts
  /// logical events/packets/bytes, never RSS). 0 = unlimited.
  std::uint64_t max_trial_bytes = 0;
  /// Soft-watermark fraction of max_trial_bytes (see ResourceGovernor).
  double mem_watermark_fraction = 0.85;
  /// Cap on per-trial admission weights (see set_weight_fn); weights
  /// are clamped to [1, trial_weight_cap]. Must be >= 1.
  int trial_weight_cap = 4;
};

/// Seed for retry attempt `attempt` (>= 1) of a trial originally
/// seeded `trial_seed`: a two-level derivation through a dedicated
/// stream constant, so retry streams can never collide with the
/// scenario-internal sub-streams fanned out of the trial seed.
[[nodiscard]] std::uint64_t retry_seed(std::uint64_t trial_seed,
                                       int attempt) noexcept;

/// Concurrent trial executor.
///
/// Threading model: `run()` spawns up to `jobs` workers that pull trial
/// indices from a shared atomic counter (a self-balancing work queue —
/// a slow trial simply keeps one worker busy while the others drain the
/// rest). Each worker runs `fn(trials[i])` and writes the result into
/// slot `i` of a pre-sized output vector; slots are disjoint, so no
/// lock guards the results. Each trial constructs its own `Simulator`
/// and network — nothing in `sim/`, `net/`, `cc/`, or `scenario/`
/// shares mutable state across trials — which makes the output
/// independent of scheduling: `jobs=1` and `jobs=N` produce identical
/// rows in identical (trial-id) order.
///
/// Fault tolerance: every attempt runs inside a quarantine. A throwing
/// trial (sim::SimError or any std::exception) becomes a structured
/// failure row — error message, error_kind, attempts — never a
/// propagated exception, so a sweep always yields exactly
/// `trials.size()` rows plus a complete failure record. The policy
/// adds bounded retries, per-trial deadlines (event budget + wall
/// clock), and deterministic chaos injection.
class ParallelRunner {
 public:
  /// Progress observer, called after each completed trial with
  /// (completed, total). Invoked under an internal mutex, so it may
  /// write to a terminal without interleaving; keep it fast.
  using Progress = std::function<void(std::size_t, std::size_t)>;
  /// Row observer, called with each finished row (all attempts done)
  /// in completion order, under the same internal mutex — the
  /// checkpoint journal hook. Completion order differs between runs;
  /// consumers must key on trial_id, not position.
  using OnRow = std::function<void(const Row&)>;

  explicit ParallelRunner(int jobs = 1);

  /// Number of workers this runner will use (>= 1).
  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Value for "use every core": hardware_concurrency, floored at 1.
  [[nodiscard]] static int default_jobs() noexcept;

  void set_progress(Progress progress) { progress_ = std::move(progress); }
  void set_on_row(OnRow on_row) { on_row_ = std::move(on_row); }

  /// Admission weight per trial (default: every trial weighs 1). A
  /// weight-w trial occupies w units of the runner's admission
  /// capacity (= jobs), so memory-heavy trials can't all run
  /// concurrently: at weight == jobs a trial runs alone. Weights are
  /// clamped to [1, min(trial_weight_cap, jobs)] — admission only
  /// throttles scheduling, never affects row content, so byte-identity
  /// across jobs/weights holds.
  using WeightFn = std::function<int(const TrialDesc&)>;
  void set_weight_fn(WeightFn weight_fn) { weight_fn_ = std::move(weight_fn); }

  /// Throws sim::SimError (kBadConfig) on an invalid policy.
  void set_policy(const RunnerPolicy& policy);
  [[nodiscard]] const RunnerPolicy& policy() const noexcept {
    return policy_;
  }

  /// Execute `fn` over every trial under the quarantine/retry policy.
  [[nodiscard]] std::vector<Row> run(
      const std::vector<TrialDesc>& trials,
      const std::function<Row(const TrialDesc&)>& fn) const;

  /// `run()` with the experiment registry's `run_trial`.
  [[nodiscard]] std::vector<Row> run(
      const std::vector<TrialDesc>& trials) const;

 private:
  [[nodiscard]] Row run_quarantined(const TrialDesc& trial,
                                    const std::function<Row(const TrialDesc&)>& fn) const;

  int jobs_;
  RunnerPolicy policy_;
  Progress progress_;
  OnRow on_row_;
  WeightFn weight_fn_;
};

}  // namespace slowcc::exp
