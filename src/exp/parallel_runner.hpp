#pragma once

#include <functional>
#include <vector>

#include "exp/row.hpp"
#include "exp/sweep_spec.hpp"

namespace slowcc::exp {

/// Concurrent trial executor.
///
/// Threading model: `run()` spawns up to `jobs` workers that pull trial
/// indices from a shared atomic counter (a self-balancing work queue —
/// a slow trial simply keeps one worker busy while the others drain the
/// rest). Each worker runs `fn(trials[i])` and writes the result into
/// slot `i` of a pre-sized output vector; slots are disjoint, so no
/// lock guards the results. Each trial constructs its own `Simulator`
/// and network — nothing in `sim/`, `net/`, `cc/`, or `scenario/`
/// shares mutable state across trials — which makes the output
/// independent of scheduling: `jobs=1` and `jobs=N` produce identical
/// rows in identical (trial-id) order.
class ParallelRunner {
 public:
  /// Progress observer, called after each completed trial with
  /// (completed, total). Invoked under an internal mutex, so it may
  /// write to a terminal without interleaving; keep it fast.
  using Progress = std::function<void(std::size_t, std::size_t)>;

  explicit ParallelRunner(int jobs = 1);

  /// Number of workers this runner will use (>= 1).
  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Value for "use every core": hardware_concurrency, floored at 1.
  [[nodiscard]] static int default_jobs() noexcept;

  void set_progress(Progress progress) { progress_ = std::move(progress); }

  /// Execute `fn` over every trial. Exceptions escaping `fn` are caught
  /// into Row::error (with the trial's identity stamped), never
  /// propagated, so a sweep always yields exactly
  /// `trials.size()` rows.
  [[nodiscard]] std::vector<Row> run(
      const std::vector<TrialDesc>& trials,
      const std::function<Row(const TrialDesc&)>& fn) const;

  /// `run()` with the experiment registry's `run_trial`.
  [[nodiscard]] std::vector<Row> run(
      const std::vector<TrialDesc>& trials) const;

 private:
  int jobs_;
  Progress progress_;
};

}  // namespace slowcc::exp
