#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slowcc::exp {

/// Fully-resolved description of one trial in a sweep: a point in the
/// parameter grid plus its deterministically derived seed. TrialDescs
/// are value types handed to worker threads; everything a trial needs
/// is inside (no shared mutable state).
struct TrialDesc {
  std::uint64_t trial_id = 0;  // position in expansion order
  std::string experiment;
  std::string algorithm;     // e.g. "tcp:8", "tfrc:6:c", "tcp+tfrc:6"
  double bandwidth_bps = 0;  // 0 => keep the experiment's default
  double rtt_ms = 0;         // 0 => keep the experiment's default
  /// Experiment-specific numeric parameters (fixed overrides plus the
  /// swept axis value), in deterministic order.
  std::vector<std::pair<std::string, double>> params;
  int trial_index = 0;  // 0..trials-1 within this grid cell
  std::uint64_t seed = 0;
  /// Retry attempt this descriptor is running as (0 = first try). Set
  /// by the runner's retry loop; never part of the grid or cell key.
  /// On retries `seed` is re-derived on a dedicated sub-stream, so a
  /// retried trial sees fresh randomness but the same grid point.
  int attempt = 0;
  /// Multiplier on every warmup/measure duration — lets tests and smoke
  /// sweeps run the full pipeline in milliseconds of simulated time.
  double duration_scale = 1.0;

  /// Value of `params[name]`, or `fallback` when unset.
  [[nodiscard]] double param(std::string_view name,
                             double fallback) const noexcept;

  /// Grid-cell key: every coordinate except trial_index/seed. Rows
  /// sharing a key are replicates of the same configuration.
  [[nodiscard]] std::string cell_key() const;
};

/// A parameter grid over one experiment. `expand()` turns it into the
/// full cross product of trial descriptors with per-trial seeds.
struct SweepSpec {
  std::string experiment = "static_compat";
  std::vector<std::string> algorithms = {"tcp"};
  std::vector<double> bandwidths_bps;  // empty => experiment default
  std::vector<double> rtts_ms;         // empty => experiment default
  /// Fixed experiment-specific overrides applied to every trial.
  std::map<std::string, double> fixed;
  /// Optional swept experiment parameter (one extra grid axis).
  std::string sweep_param;
  std::vector<double> sweep_values;
  int trials = 1;  // replicates per grid cell
  std::uint64_t base_seed = 1;
  double duration_scale = 1.0;

  /// Cross product in deterministic order: algorithm (outer) ×
  /// bandwidth × rtt × sweep value × trial (inner). Throws
  /// `sim::SimError` (kBadConfig) on an empty or inconsistent spec.
  [[nodiscard]] std::vector<TrialDesc> expand() const;

  [[nodiscard]] std::size_t trial_count() const noexcept;

  /// Apply one `key = value` assignment (the shared grammar of spec
  /// files and CLI flags). Recognized keys: experiment, algorithms,
  /// bandwidths_mbps, bandwidths_bps, rtts_ms, trials, base_seed,
  /// duration_scale, `sweep <name>`, `set <name>`. Throws on unknown
  /// keys or malformed values.
  void assign(std::string_view key, std::string_view value);

  /// Parse a spec from text: one `key = value` per line, `#` comments.
  [[nodiscard]] static SweepSpec parse_text(std::string_view text);

  /// Parse a spec file from disk. Throws on I/O failure.
  [[nodiscard]] static SweepSpec parse_file(const std::string& path);

  /// Canonical `key = value` rendering: `parse_text(to_text())` equals
  /// this spec, and two specs with identical expansions render
  /// identically. Checkpoint directories store this to refuse a
  /// `--resume` under a different grid.
  [[nodiscard]] std::string to_text() const;

  /// One-line human summary ("oscillation: 3 algs x 7 on_off_length x
  /// 5 trials = 105 trials").
  [[nodiscard]] std::string describe() const;
};

/// Parse a comma-separated list of doubles ("0.05, 0.2,0.8"). Throws
/// `sim::SimError` (kBadConfig) on malformed input.
[[nodiscard]] std::vector<double> parse_double_list(std::string_view text);

/// Parse a comma-separated list of non-empty tokens, trimming blanks.
[[nodiscard]] std::vector<std::string> parse_token_list(
    std::string_view text);

}  // namespace slowcc::exp
