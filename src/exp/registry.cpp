#include "exp/registry.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>

#include "scenario/convergence_experiment.hpp"
#include "scenario/fairness_experiment.hpp"
#include "scenario/fk_experiment.hpp"
#include "scenario/flash_crowd_experiment.hpp"
#include "scenario/oscillation_experiment.hpp"
#include "scenario/responsiveness_experiment.hpp"
#include "scenario/smoothness_experiment.hpp"
#include "scenario/static_compat_experiment.hpp"
#include "scenario/stabilization_experiment.hpp"
#include "net/drop_tail_queue.hpp"
#include "net/packet.hpp"
#include "sim/error.hpp"
#include "sim/simulator.hpp"

namespace slowcc::exp {
namespace {

[[noreturn]] void bad(const std::string& detail) {
  throw sim::SimError(sim::SimErrc::kBadConfig, "exp::registry", detail);
}

/// Apply the generic grid axes (bandwidth, RTT, seed) to a dumbbell.
void apply_net(scenario::DumbbellConfig& net, const TrialDesc& d) {
  if (d.bandwidth_bps > 0) net.bottleneck_bps = d.bandwidth_bps;
  if (d.rtt_ms > 0) {
    // base_rtt = 2 * (access + bottleneck + access); access stays at
    // its default, the bottleneck's propagation delay absorbs the rest.
    const sim::Time two_access = net.access_delay * 2;
    const sim::Time one_way = sim::Time::seconds(d.rtt_ms / 2000.0);
    if (one_way <= two_access) {
      bad("rtt_ms too small for the access delays");
    }
    net.bottleneck_delay = one_way - two_access;
  }
}

/// An experiment-specific duration parameter, scaled by the trial's
/// duration_scale (sweeps and tests shrink whole timelines uniformly).
sim::Time time_param(const TrialDesc& d, std::string_view name,
                     double default_seconds) {
  return sim::Time::seconds(d.param(name, default_seconds) *
                            d.duration_scale);
}

std::pair<scenario::FlowSpec, scenario::FlowSpec> parse_flow_pair(
    std::string_view token) {
  const std::size_t plus = token.find('+');
  if (plus == std::string_view::npos) {
    bad("fairness needs an 'a+b' algorithm pair, got '" +
        std::string(token) + "'");
  }
  return {parse_flow_spec(token.substr(0, plus)),
          parse_flow_spec(token.substr(plus + 1))};
}

Row run_static_compat(const TrialDesc& d) {
  scenario::StaticCompatConfig cfg;
  cfg.spec = parse_flow_spec(d.algorithm);
  cfg.loss_rate = d.param("loss_rate", cfg.loss_rate);
  cfg.warmup = time_param(d, "warmup", 20.0);
  cfg.measure = time_param(d, "measure", 200.0);
  apply_net(cfg.net, d);
  cfg.seed = d.seed;
  const auto out = scenario::run_static_compat(cfg);
  Row r;
  r.set("goodput_bps", out.goodput_bps);
  r.set("padhye_bps", out.padhye_prediction_bps);
  r.set("ratio_to_prediction", out.ratio_to_prediction);
  return r;
}

Row run_stabilization(const TrialDesc& d) {
  scenario::StabilizationConfig cfg;
  cfg.spec = parse_flow_spec(d.algorithm);
  cfg.num_flows = static_cast<int>(d.param("num_flows", cfg.num_flows));
  cfg.cbr_stop = time_param(d, "cbr_stop", 150.0);
  cfg.cbr_restart = time_param(d, "cbr_restart", 180.0);
  cfg.end = time_param(d, "end", 240.0);
  apply_net(cfg.net, d);
  cfg.seed = d.seed;
  const auto out = scenario::run_stabilization(cfg);
  Row r;
  r.set("steady_loss_rate", out.steady_loss_rate);
  r.set("peak_loss_rate_after_restart", out.peak_loss_rate_after_restart);
  r.set("stabilized", out.stabilization.stabilized ? 1.0 : 0.0);
  r.set("stabilization_time_rtts", out.stabilization.stabilization_time_rtts);
  r.set("stabilization_cost", out.stabilization.stabilization_cost);
  return r;
}

Row run_fairness(const TrialDesc& d) {
  scenario::FairnessConfig cfg;
  const auto [a, b] = parse_flow_pair(d.algorithm);
  cfg.group_a = a;
  cfg.group_b = b;
  cfg.flows_per_group =
      static_cast<int>(d.param("flows_per_group", cfg.flows_per_group));
  cfg.cbr_period = time_param(d, "cbr_period", 2.0);
  cfg.cbr_peak_fraction =
      d.param("cbr_peak_fraction", cfg.cbr_peak_fraction);
  cfg.warmup = time_param(d, "warmup", 20.0);
  cfg.measure = time_param(d, "measure", 200.0);
  apply_net(cfg.net, d);
  cfg.seed = d.seed;
  const auto out = scenario::run_fairness(cfg);
  Row r;
  r.set("group_a_mean", out.group_a_mean);
  r.set("group_b_mean", out.group_b_mean);
  r.set("utilization", out.utilization);
  r.set("mean_available_bps", out.mean_available_bps);
  return r;
}

Row run_oscillation(const TrialDesc& d) {
  scenario::OscillationConfig cfg;
  cfg.spec = parse_flow_spec(d.algorithm);
  cfg.num_flows = static_cast<int>(d.param("num_flows", cfg.num_flows));
  cfg.on_off_length = time_param(d, "on_off_length", 0.2);
  cfg.cbr_peak_fraction =
      d.param("cbr_peak_fraction", cfg.cbr_peak_fraction);
  cfg.warmup = time_param(d, "warmup", 10.0);
  cfg.measure = time_param(d, "measure", 100.0);
  cfg.mode = d.param("link_mode", 0.0) != 0.0
                 ? scenario::OscillationMode::kLinkBandwidth
                 : scenario::OscillationMode::kCbrEmulation;
  apply_net(cfg.net, d);
  cfg.seed = d.seed;
  const auto out = scenario::run_oscillation(cfg);
  Row r;
  r.set("aggregate_fraction", out.aggregate_fraction);
  r.set("drop_rate", out.drop_rate);
  r.set("mean_available_bps", out.mean_available_bps);
  return r;
}

Row run_convergence(const TrialDesc& d) {
  scenario::ConvergenceConfig cfg;
  cfg.spec = parse_flow_spec(d.algorithm);
  cfg.first_flow_head_start = time_param(d, "head_start", 30.0);
  cfg.horizon = time_param(d, "horizon", 600.0);
  cfg.delta = d.param("delta", cfg.delta);
  apply_net(cfg.net, d);
  cfg.seed = d.seed;
  const auto out = scenario::run_convergence(cfg);
  Row r;
  r.set("converged", out.result.converged ? 1.0 : 0.0);
  r.set("convergence_time_s", out.result.convergence_time_s);
  r.set("flow1_final_share", out.flow1_final_share);
  r.set("flow2_final_share", out.flow2_final_share);
  return r;
}

Row run_smoothness(const TrialDesc& d) {
  scenario::SmoothnessConfig cfg;
  cfg.spec = parse_flow_spec(d.algorithm);
  cfg.pattern = d.param("bursty", 0.0) != 0.0
                    ? scenario::LossPattern::kMoreBursty
                    : scenario::LossPattern::kMildlyBursty;
  cfg.warmup = time_param(d, "warmup", 10.0);
  cfg.measure = time_param(d, "measure", 40.0);
  apply_net(cfg.net, d);
  cfg.seed = d.seed;
  const auto out = scenario::run_smoothness(cfg);
  Row r;
  r.set("smoothness", out.smoothness);
  r.set("cov", out.cov);
  r.set("mean_rate_bps", out.mean_rate_bps);
  r.set("scripted_drops", static_cast<double>(out.scripted_drops));
  return r;
}

Row run_fk(const TrialDesc& d) {
  scenario::FkConfig cfg;
  cfg.spec = parse_flow_spec(d.algorithm);
  cfg.stop_time = time_param(d, "stop_time", 120.0);
  cfg.ks = {static_cast<int>(d.param("k", 20.0))};
  apply_net(cfg.net, d);
  cfg.seed = d.seed;
  const auto out = scenario::run_fk(cfg);
  Row r;
  r.set("f_k", out.f_values.at(0));
  r.set("utilization_before_stop", out.utilization_before_stop);
  return r;
}

Row run_flash_crowd(const TrialDesc& d) {
  scenario::FlashCrowdExperimentConfig cfg;
  cfg.background = parse_flow_spec(d.algorithm);
  cfg.background_flows =
      static_cast<int>(d.param("background_flows", cfg.background_flows));
  cfg.crowd_start = time_param(d, "crowd_start", 25.0);
  cfg.end = time_param(d, "end", 75.0);
  cfg.crowd.duration = time_param(d, "crowd_duration", 5.0);
  cfg.crowd.arrival_rate_fps =
      d.param("arrival_rate_fps", cfg.crowd.arrival_rate_fps);
  apply_net(cfg.net, d);
  cfg.seed = d.seed;
  const auto out = scenario::run_flash_crowd(cfg);
  Row r;
  const double started = static_cast<double>(out.crowd_flows_started);
  r.set("crowd_flows_started", started);
  r.set("crowd_completed_fraction",
        started > 0 ? static_cast<double>(out.crowd_flows_completed) / started
                    : 0.0);
  r.set("crowd_mean_completion_s", out.crowd_mean_completion_s);
  r.set("background_during_crowd_bps", out.background_during_crowd_bps);
  r.set("background_after_crowd_bps", out.background_after_crowd_bps);
  return r;
}

Row run_responsiveness(const TrialDesc& d) {
  scenario::ResponsivenessConfig cfg;
  cfg.spec = parse_flow_spec(d.algorithm);
  cfg.warmup = time_param(d, "warmup", 30.0);
  cfg.horizon = time_param(d, "horizon", 120.0);
  apply_net(cfg.net, d);
  cfg.seed = d.seed;
  const auto out = scenario::run_responsiveness(cfg);
  Row r;
  r.set("halved", out.halved ? 1.0 : 0.0);
  r.set("responsiveness_rtts", out.responsiveness_rtts);
  r.set("aggressiveness_pkts_per_rtt", out.aggressiveness_pkts_per_rtt);
  return r;
}

/// Deterministic failure injector for crash-safety self-tests: fails
/// in controlled, reproducible ways so the quarantine / retry /
/// checkpoint machinery can be exercised end to end without a flaky
/// real workload. Failure knobs:
///   boom=1        -> throw kTrialAborted on every attempt
///   heal_after=K  -> throw kTrialAborted while attempt < K (succeeds
///                    on attempt K when the runner retries enough)
///   spin=1        -> schedule events forever; only a trial deadline
///                    (event budget / wall clock) ends the run
///   sleep_ms=T    -> hold the worker for T real milliseconds first
///                    (lets smoke tests kill a sweep mid-flight)
///   events=N      -> execute an N-event chain, then succeed
Row run_poison(const TrialDesc& d) {
  const double sleep_ms = d.param("sleep_ms", 0.0);
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  if (d.param("boom", 0.0) != 0.0) {
    throw sim::SimError(sim::SimErrc::kTrialAborted, "poison",
                        "boom (trial_index " +
                            std::to_string(d.trial_index) + ", attempt " +
                            std::to_string(d.attempt) + ")");
  }
  if (d.attempt < static_cast<int>(d.param("heal_after", 0.0))) {
    throw sim::SimError(sim::SimErrc::kTrialAborted, "poison",
                        "failing until attempt " +
                            std::to_string(static_cast<int>(
                                d.param("heal_after", 0.0))) +
                            " (at attempt " + std::to_string(d.attempt) +
                            ")");
  }
  sim::Simulator sim;  // picks up any ambient trial deadline
  const bool spin = d.param("spin", 0.0) != 0.0;
  const auto budget = static_cast<std::uint64_t>(d.param("events", 32.0));
  std::function<void()> tick = [&] {
    if (spin || sim.events_executed() < budget) {
      sim.schedule_in(sim::Time::millis(1), tick);
    }
  };
  sim.schedule_in(sim::Time::millis(1), tick);
  sim.run();
  Row r;
  r.set("value", static_cast<double>(d.seed % 1000));
  r.set("events_run", static_cast<double>(sim.events_executed()));
  r.set("attempt", static_cast<double>(d.attempt));
  return r;
}

/// Memory-bomb self-test: the resource-governance sibling of `poison`.
/// A bomb trial grows its live-event count and a governed queue's
/// packet/byte totals geometrically, so only a ResourceGovernor byte
/// budget (or the `events` safety cap for unbudgeted runs) ends it —
/// proving a sweep with a bomb completes with one structured
/// kResourceExhausted quarantine row. Knobs:
///   bomb=1            -> every trial is a bomb
///   bomb_trial=K      -> only trial_index K is a bomb (K < 0: none);
///                        the rest of the cell runs the benign chain
///   pkts_per_event=N  -> packets pushed into the governed queue per
///                        bomb event (1500 B each, never drained)
///   events=N          -> safety cap on the event chain, so unbudgeted
///                        invocations terminate instead of eating the
///                        machine
///   sleep_ms=T        -> hold the worker first (smoke tests kill a
///                        fleet worker mid-bomb)
Row run_membomb(const TrialDesc& d) {
  const double sleep_ms = d.param("sleep_ms", 0.0);
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  const int bomb_trial = static_cast<int>(d.param("bomb_trial", -1.0));
  const bool bomb =
      d.param("bomb", 0.0) != 0.0 || (bomb_trial >= 0 &&
                                      d.trial_index == bomb_trial);
  const auto pkts_per_event =
      static_cast<int>(d.param("pkts_per_event", 16.0));
  const auto cap = static_cast<std::uint64_t>(d.param("events", 256.0));

  sim::Simulator sim;  // picks up any ambient trial budget
  // Declared after `sim` so it is destroyed first, releasing its
  // residue to the still-alive governor (the balance-to-zero test
  // leans on this ordering, same as every scenario driver's).
  net::DropTailQueue queue(std::size_t{1} << 30);
  queue.attach_governor(&sim.governor());

  std::function<void()> tick = [&] {
    if (sim.events_executed() >= cap) return;
    if (bomb) {
      for (int i = 0; i < pkts_per_event; ++i) {
        net::Packet p;
        p.size_bytes = 1500;
        p.uid = sim.next_packet_uid();
        (void)queue.enqueue(std::move(p));
      }
      // Two children per event: the live-event count grows too, so the
      // bomb stresses both halves of the governor's model.
      sim.schedule_in(sim::Time::millis(1), tick);
      sim.schedule_in(sim::Time::millis(2), tick);
    } else {
      sim.schedule_in(sim::Time::millis(1), tick);
    }
  };
  sim.schedule_in(sim::Time::millis(1), tick);
  sim.run();
  Row r;
  r.set("value", static_cast<double>(d.seed % 1000));
  r.set("events_run", static_cast<double>(sim.events_executed()));
  r.set("queued_pkts", static_cast<double>(queue.length_packets()));
  return r;
}

}  // namespace

scenario::FlowSpec parse_flow_spec(std::string_view token) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= token.size()) {
    const std::size_t colon = token.find(':', start);
    parts.emplace_back(token.substr(
        start, colon == std::string_view::npos ? std::string_view::npos
                                               : colon - start));
    if (colon == std::string_view::npos) break;
    start = colon + 1;
  }
  if (parts.empty() || parts[0].empty()) {
    bad("empty algorithm token");
  }
  bool conservative = false;
  if (parts.back() == "c") {
    conservative = true;
    parts.pop_back();
  }
  double gamma = 0.0;
  if (parts.size() > 2) bad("malformed algorithm token: '" +
                            std::string(token) + "'");
  if (parts.size() == 2) {
    char* end = nullptr;
    gamma = std::strtod(parts[1].c_str(), &end);
    if (parts[1].empty() || end != parts[1].c_str() + parts[1].size() ||
        gamma <= 0) {
      bad("malformed gamma in '" + std::string(token) + "'");
    }
  }
  const std::string& kind = parts[0];
  if (conservative && kind != "tfrc") bad("':c' is only meaningful for tfrc");
  if (kind == "tcp") return scenario::FlowSpec::tcp(gamma > 0 ? gamma : 2.0);
  if (kind == "sqrt") return scenario::FlowSpec::sqrt(gamma > 0 ? gamma : 2.0);
  if (kind == "rap") return scenario::FlowSpec::rap(gamma > 0 ? gamma : 2.0);
  if (kind == "iiad") return scenario::FlowSpec::iiad();
  if (kind == "tear") return scenario::FlowSpec::tear();
  if (kind == "tfrc") {
    return scenario::FlowSpec::tfrc(gamma > 0 ? static_cast<int>(gamma) : 6,
                                    conservative);
  }
  bad("unknown algorithm kind: '" + kind + "'");
}

namespace {

/// The registry proper: built-ins first, then anything registered at
/// runtime. Function-local static so the built-ins self-initialize on
/// first use; mutable so `register_experiment` can append.
std::vector<Experiment>& registry_storage() {
  static std::vector<Experiment> experiments = {
      {"static_compat",
       "single flow vs Bernoulli loss; goodput against the Padhye "
       "prediction (paper SS2)",
       {"goodput_bps", "padhye_bps", "ratio_to_prediction"},
       {"loss_rate=0.01", "warmup=20", "measure=200"},
       run_static_compat},
      {"stabilization",
       "20 flows + restarting CBR; drop-rate spike and stabilization "
       "time/cost (Figures 3-5)",
       {"steady_loss_rate", "peak_loss_rate_after_restart", "stabilized",
        "stabilization_time_rtts", "stabilization_cost"},
       {"num_flows=20", "cbr_stop=150", "cbr_restart=180", "end=240"},
       run_stabilization},
      {"fairness",
       "two flow groups under square-wave CBR; normalized throughput "
       "per group (Figures 7-9); algorithm token is 'a+b'",
       {"group_a_mean", "group_b_mean", "utilization", "mean_available_bps"},
       {"flows_per_group=5", "cbr_period=2", "cbr_peak_fraction=0.667",
        "warmup=20", "measure=200"},
       run_fairness},
      {"oscillation",
       "10 flows under oscillating available bandwidth; throughput "
       "fraction and drop rate (Figures 14-16)",
       {"aggregate_fraction", "drop_rate", "mean_available_bps"},
       {"num_flows=10", "on_off_length=0.2", "cbr_peak_fraction=0.667",
        "warmup=10", "measure=100", "link_mode=0"},
       run_oscillation},
      {"convergence",
       "late-joining flow vs an established one; delta-fair convergence "
       "time (Figures 10-12)",
       {"converged", "convergence_time_s", "flow1_final_share",
        "flow2_final_share"},
       {"head_start=30", "horizon=600", "delta=0.1"},
       run_convergence},
      {"smoothness",
       "single flow under scripted loss; rate smoothness and CoV "
       "(Figures 17-19)",
       {"smoothness", "cov", "mean_rate_bps", "scripted_drops"},
       {"bursty=0", "warmup=10", "measure=40"},
       run_smoothness},
      {"fk",
       "half the flows stop; f(k) utilization over the next k RTTs "
       "(Figure 13)",
       {"f_k", "utilization_before_stop"},
       {"stop_time=120", "k=20"},
       run_fk},
      {"flash_crowd",
       "long-lived background vs a crowd of short TCP transfers "
       "(Figure 6)",
       {"crowd_flows_started", "crowd_completed_fraction",
        "crowd_mean_completion_s", "background_during_crowd_bps",
        "background_after_crowd_bps"},
       {"background_flows=10", "crowd_start=25", "end=75",
        "crowd_duration=5", "arrival_rate_fps=200"},
       run_flash_crowd},
      {"responsiveness",
       "RTTs of persistent congestion until the rate halves (paper SS3)",
       {"halved", "responsiveness_rtts", "aggressiveness_pkts_per_rtt"},
       {"warmup=30", "horizon=120"},
       run_responsiveness},
      {"poison",
       "deterministic failure injector exercising quarantine, retries, "
       "deadlines, and checkpoint/resume (self-test only)",
       {"value", "events_run", "attempt"},
       {"boom=0", "heal_after=0", "spin=0", "sleep_ms=0", "events=32"},
       run_poison},
      {"membomb",
       "memory-bomb self-test: unbounded event/packet growth that only "
       "a resource budget stops, exercising the ResourceGovernor and "
       "quarantine peak fields end to end (self-test only)",
       {"value", "events_run", "queued_pkts"},
       {"bomb=0", "bomb_trial=-1", "pkts_per_event=16", "events=256",
        "sleep_ms=0"},
       run_membomb,
       /*weight=*/2},
  };
  return experiments;
}

}  // namespace

const std::vector<Experiment>& experiments() { return registry_storage(); }

void register_experiment(Experiment e) {
  if (e.name.empty()) bad("cannot register an experiment with no name");
  if (!e.run) {
    bad("experiment '" + e.name + "' has no run function");
  }
  if (find_experiment(e.name) != nullptr) {
    bad("experiment '" + e.name + "' is already registered");
  }
  registry_storage().push_back(std::move(e));
}

const Experiment* find_experiment(std::string_view name) {
  for (const Experiment& e : experiments()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Row run_trial(const TrialDesc& desc) {
  const Experiment* e = find_experiment(desc.experiment);
  if (e == nullptr) {
    bad("unknown experiment: '" + desc.experiment + "'");
  }
  Row row;
  try {
    row = e->run(desc);
  } catch (const sim::SimError& ex) {
    row.metrics.clear();
    row.error = ex.what();
    row.outcome.ok = false;
    row.outcome.error_kind = sim::to_string(ex.code());
  } catch (const std::exception& ex) {
    row.metrics.clear();
    row.error = ex.what();
    row.outcome.ok = false;
    row.outcome.error_kind = "exception";
  }
  row.trial_id = desc.trial_id;
  row.experiment = desc.experiment;
  row.algorithm = desc.algorithm;
  row.cell = desc.cell_key();
  row.trial_index = desc.trial_index;
  row.seed = desc.seed;
  row.axes.clear();
  if (desc.bandwidth_bps > 0) {
    row.set_axis("bandwidth_mbps", desc.bandwidth_bps / 1e6);
  }
  if (desc.rtt_ms > 0) row.set_axis("rtt_ms", desc.rtt_ms);
  for (const auto& [k, v] : desc.params) row.set_axis(k, v);
  return row;
}

}  // namespace slowcc::exp
