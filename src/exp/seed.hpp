#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace slowcc::exp {

/// Deterministic per-trial seed derivation.
///
/// A sweep expands into many trials that must each see an independent,
/// reproducible random stream. `derive_seed(base, trial_index)` maps
/// the spec's master seed and a trial index to a 64-bit seed; distinct
/// indices never collide under the same base, and the mapping is pure,
/// so the same trial gets the same seed regardless of scheduling order
/// or `--jobs`. (Thin wrapper over `sim::derive_seed`, which scenarios
/// also use to fan one experiment seed out into sub-streams.)
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t base,
                                               std::uint64_t index) noexcept {
  return sim::derive_seed(base, index);
}

/// Two-level derivation for nested streams (trial -> component), e.g.
/// the scripted-drop stream inside trial 17 of a sweep.
[[nodiscard]] inline std::uint64_t derive_seed(
    std::uint64_t base, std::uint64_t index,
    std::uint64_t sub_index) noexcept {
  return sim::derive_seed(sim::derive_seed(base, index), sub_index);
}

}  // namespace slowcc::exp
