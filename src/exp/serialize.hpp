#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace slowcc::exp {

/// Escape `s` for inclusion inside a double-quoted JSON string (RFC
/// 8259): quotes, backslashes, and control characters. Returns the
/// escaped body without surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Quote `s` as a CSV field when it contains a comma, quote, or
/// newline (RFC 4180); otherwise return it unchanged.
[[nodiscard]] std::string csv_escape(std::string_view s);

/// Render a double as a JSON-legal number: shortest representation that
/// round-trips, integral values without a trailing ".0" explosion, and
/// NaN/inf (not representable in JSON) as `null`.
[[nodiscard]] std::string json_number(double v);

/// Incremental builder for one flat JSON object — the single place
/// where experiment rows, bench JSON lines, and sweep sinks format
/// their output, so escaping rules cannot drift apart.
class JsonObjectBuilder {
 public:
  JsonObjectBuilder& add(std::string_view key, std::string_view value);
  JsonObjectBuilder& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  JsonObjectBuilder& add(std::string_view key, double value);
  JsonObjectBuilder& add(std::string_view key, std::int64_t value);
  JsonObjectBuilder& add(std::string_view key, std::uint64_t value);
  JsonObjectBuilder& add(std::string_view key, bool value);

  /// The completed object, e.g. `{"a":1,"b":"x"}`.
  [[nodiscard]] std::string str() const { return body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_ = "{";
};

}  // namespace slowcc::exp
