#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slowcc::exp {

/// Escape `s` for inclusion inside a double-quoted JSON string (RFC
/// 8259): quotes, backslashes, and control characters. Returns the
/// escaped body without surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Quote `s` as a CSV field when it contains a comma, quote, or
/// newline (RFC 4180); otherwise return it unchanged.
[[nodiscard]] std::string csv_escape(std::string_view s);

/// Render a double as a JSON-legal number: shortest representation that
/// round-trips, integral values without a trailing ".0" explosion, and
/// NaN/inf (not representable in JSON) as `null`.
[[nodiscard]] std::string json_number(double v);

/// Inverse of `json_escape`: decode the body of a double-quoted JSON
/// string (no surrounding quotes). Invalid escapes pass through
/// verbatim rather than failing — loaders prefer a best-effort string
/// to losing the row.
[[nodiscard]] std::string json_unescape(std::string_view s);

/// One scalar value of a flat JSON object.
///
/// Numbers keep their raw source token alongside the parsed double:
/// `trial_id` and `seed` are full 64-bit integers, which a
/// double round-trip would silently corrupt above 2^53, so integer
/// consumers re-parse `text` instead of casting `number`.
struct JsonScalar {
  enum class Kind { kNumber, kString, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string text;     // unescaped string, or the raw number token
  double number = 0.0;  // numeric value (NaN for null)
  bool boolean = false;

  [[nodiscard]] std::uint64_t as_u64() const noexcept;
};

/// Parse one flat JSON object (`{"key":scalar,...}`) as emitted by
/// JsonObjectBuilder, preserving key order. Returns false on malformed
/// or non-flat input (nested objects/arrays are not supported — rows,
/// manifests, and journal lines are all flat by construction).
[[nodiscard]] bool parse_flat_json(
    std::string_view text,
    std::vector<std::pair<std::string, JsonScalar>>& out);

/// Incremental builder for one flat JSON object — the single place
/// where experiment rows, bench JSON lines, and sweep sinks format
/// their output, so escaping rules cannot drift apart.
class JsonObjectBuilder {
 public:
  JsonObjectBuilder& add(std::string_view key, std::string_view value);
  JsonObjectBuilder& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  JsonObjectBuilder& add(std::string_view key, double value);
  JsonObjectBuilder& add(std::string_view key, std::int64_t value);
  JsonObjectBuilder& add(std::string_view key, std::uint64_t value);
  JsonObjectBuilder& add(std::string_view key, bool value);

  /// The completed object, e.g. `{"a":1,"b":"x"}`.
  [[nodiscard]] std::string str() const { return body_ + "}"; }

 private:
  void key(std::string_view k);
  std::string body_ = "{";
};

}  // namespace slowcc::exp
