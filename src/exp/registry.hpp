#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "exp/row.hpp"
#include "exp/sweep_spec.hpp"
#include "scenario/dumbbell.hpp"

namespace slowcc::exp {

/// One registered experiment: a uniform `run(trial) -> Row` wrapper
/// around a `src/scenario/` experiment. Adapters construct a fresh
/// Simulator per call and touch no shared mutable state, so the same
/// function object may run on many threads at once.
struct Experiment {
  std::string name;
  std::string description;
  /// Metric names this experiment emits (documentation + CSV headers).
  std::vector<std::string> metrics;
  /// Experiment-specific parameter names honored via TrialDesc::params,
  /// each with its default ("name=default" strings, documentation).
  std::vector<std::string> params;
  std::function<Row(const TrialDesc&)> run;
  /// Admission weight: how many of the runner's `jobs` capacity units
  /// one trial of this experiment occupies (ParallelRunner's weighted
  /// admission — memory-heavy experiments should not all run at once).
  /// Default 1 = no throttling; spec files set it via [limits] weight.
  int weight = 1;
};

/// Every registered experiment: the built-ins in stable order,
/// followed by dynamically registered ones (compiled scenario specs)
/// in registration order.
[[nodiscard]] const std::vector<Experiment>& experiments();

/// Register an additional experiment (e.g. a compiled `specs/*.toml`
/// scenario). Throws sim::SimError (kBadConfig) on an empty name, a
/// missing run function, or a name collision with an already
/// registered experiment. NOT thread-safe: register during process
/// startup, before any sweep workers run — the returned vector from
/// `experiments()` may reallocate on registration.
void register_experiment(Experiment e);

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const Experiment* find_experiment(std::string_view name);

/// Run one trial end to end: dispatch to the registry, stamp the row
/// with the trial's identity (id, cell, axes, seed), and convert any
/// exception into `Row::error` so one failed trial cannot abort a
/// sweep. Throws only when `desc.experiment` itself is unknown.
[[nodiscard]] Row run_trial(const TrialDesc& desc);

/// Parse an algorithm token into a FlowSpec. Grammar:
/// `kind[:gamma][:c]` with kind in {tcp, sqrt, iiad, rap, tfrc, tear};
/// gamma is TCP(1/gamma)/RAP(1/gamma)/SQRT(1/gamma) or TFRC(k); a
/// trailing `:c` selects TFRC's conservative (self-clocked) option.
/// Examples: "tcp", "tcp:8", "tfrc:256:c". Throws `sim::SimError`
/// (kBadConfig) on malformed tokens.
[[nodiscard]] scenario::FlowSpec parse_flow_spec(std::string_view token);

}  // namespace slowcc::exp
