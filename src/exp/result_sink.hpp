#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/row.hpp"

namespace slowcc::exp {

/// Serialize per-trial rows as JSON-lines (one object per row, in the
/// order given — callers pass rows in trial-id order for stable diffs).
void write_rows_jsonl(std::ostream& out, const std::vector<Row>& rows);

/// Serialize per-trial rows as CSV. The column set is the fixed
/// identity columns plus the union of axis and metric names across all
/// rows; rows missing a metric leave the field empty.
void write_rows_csv(std::ostream& out, const std::vector<Row>& rows);

/// Serialize per-cell aggregates as JSON-lines.
void write_cells_jsonl(std::ostream& out, const std::vector<CellStats>& cells);

/// Serialize per-cell aggregates as CSV: one line per (cell, metric)
/// with n/mean/stddev/ci95/min/p05/p50/p95/max — long format, so the
/// header is stable no matter which metrics an experiment emits.
void write_cells_csv(std::ostream& out, const std::vector<CellStats>& cells);

/// Convenience: render to a string (used by determinism checks, which
/// byte-compare the full serialization of two runs).
[[nodiscard]] std::string rows_to_jsonl(const std::vector<Row>& rows);
[[nodiscard]] std::string cells_to_jsonl(const std::vector<CellStats>& cells);

/// Per-cell execution summary over `rows` — the failure manifest. One
/// JSON line per grid cell, in first-appearance (trial-id) order:
/// cell identity, trial/ok/failed counts, the failed trial ids, the
/// distinct error kinds, and cost meters (attempts, events, wall_ms —
/// the wall meter is the one nondeterministic field, which is why the
/// manifest is never part of a byte-identity check).
void write_manifest_jsonl(std::ostream& out, const std::vector<Row>& rows);
[[nodiscard]] std::string manifest_to_jsonl(const std::vector<Row>& rows);

/// Staging name write_file_atomic uses for `path` in process `pid`
/// with in-process sequence number `seq` (`path + ".tmp.<pid>.<seq>"`).
/// Exposed so the collision properties — distinct pids or distinct
/// sequence numbers never share a staging file — are testable without
/// forking.
[[nodiscard]] std::string atomic_staging_name(const std::string& path,
                                              long pid, std::uint64_t seq);

/// Crash-safe whole-file write: the content goes to a process- and
/// call-unique temporary (see atomic_staging_name — concurrent fleet
/// workers finalizing the same file cannot tear each other's staging
/// copy), is fsync'd, and is renamed over `path`; the parent directory
/// is then
/// fsync'd so a power loss immediately after the rename cannot drop
/// the directory entry on journaling filesystems. A reader (or a
/// resumed sweep) sees either the old file or the complete new one,
/// never a torn prefix. Returns false (with `*error` set) on failure.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     const std::string& content,
                                     std::string* error = nullptr);

/// Result of an O_EXCL claim attempt (see write_file_exclusive).
enum class ExclusiveWrite {
  kCreated,  // this call created the file — the claim is ours
  kExists,   // someone else holds it (file already present)
  kError,    // I/O failure (shared filesystem trouble)
};

/// Atomic create-if-absent — the lease-claim primitive. Creates `path`
/// with O_CREAT|O_EXCL and writes `content`; exactly one of N racing
/// callers observes kCreated. The parent directory is fsync'd after a
/// successful create. A crash mid-write leaves a short/torn file,
/// which lease readers treat as held-but-unreadable (it ages out via
/// the staleness TTL like any dead owner's lease).
[[nodiscard]] ExclusiveWrite write_file_exclusive(
    const std::string& path, const std::string& content,
    std::string* error = nullptr);

/// fsync the directory containing `path` (or `path` itself when it is
/// a directory) so a completed rename/create within it survives a
/// crash. Returns false with `*error` set on failure.
[[nodiscard]] bool fsync_parent_dir(const std::string& path,
                                    std::string* error = nullptr);

/// Append-mode JSONL journal with per-line flush: after `append`
/// returns, the line is in the OS page cache (fflush), so a killed
/// process loses at most the line being written — which the loader
/// below detects as a torn tail.
class JsonlAppender {
 public:
  /// Opens (creating or appending) `path`; throws sim::SimError
  /// (kBadConfig) when the file cannot be opened.
  explicit JsonlAppender(const std::string& path);
  ~JsonlAppender();

  JsonlAppender(const JsonlAppender&) = delete;
  JsonlAppender& operator=(const JsonlAppender&) = delete;

  /// Write `line` plus '\n' and flush. Returns false on write failure.
  bool append(const std::string& line);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Result of loading a JSONL file that may have died mid-append.
struct JsonlLoad {
  bool ok = false;           // file opened and read
  std::vector<std::string> lines;  // complete lines, in file order
  bool torn_tail = false;    // trailing bytes without a newline
  std::string tail;          // those bytes (diagnostics)
  std::string error;         // open/read failure detail
};

/// Load complete lines from `path`, tolerating — and reporting — a
/// trailing partial line from a killed writer instead of failing.
/// A missing file yields ok=false with `error` set (callers treat
/// that as "no checkpoint yet").
[[nodiscard]] JsonlLoad load_jsonl(const std::string& path);

}  // namespace slowcc::exp
