#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "exp/aggregator.hpp"
#include "exp/row.hpp"

namespace slowcc::exp {

/// Serialize per-trial rows as JSON-lines (one object per row, in the
/// order given — callers pass rows in trial-id order for stable diffs).
void write_rows_jsonl(std::ostream& out, const std::vector<Row>& rows);

/// Serialize per-trial rows as CSV. The column set is the fixed
/// identity columns plus the union of axis and metric names across all
/// rows; rows missing a metric leave the field empty.
void write_rows_csv(std::ostream& out, const std::vector<Row>& rows);

/// Serialize per-cell aggregates as JSON-lines.
void write_cells_jsonl(std::ostream& out, const std::vector<CellStats>& cells);

/// Serialize per-cell aggregates as CSV: one line per (cell, metric)
/// with n/mean/stddev/ci95/min/p05/p50/p95/max — long format, so the
/// header is stable no matter which metrics an experiment emits.
void write_cells_csv(std::ostream& out, const std::vector<CellStats>& cells);

/// Convenience: render to a string (used by determinism checks, which
/// byte-compare the full serialization of two runs).
[[nodiscard]] std::string rows_to_jsonl(const std::vector<Row>& rows);
[[nodiscard]] std::string cells_to_jsonl(const std::vector<CellStats>& cells);

}  // namespace slowcc::exp
