#include "exp/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unistd.h>

#include "exp/aggregator.hpp"
#include "exp/registry.hpp"
#include "exp/result_sink.hpp"
#include "exp/seed.hpp"
#include "sim/error.hpp"
#include "sim/rng.hpp"

namespace slowcc::exp {
namespace {

// Stream constant keeping fleet backoff jitter disjoint from the
// scenario / retry / chaos sub-streams.
constexpr std::uint64_t kFleetStream = 0x666c656574;  // "fleet"

[[noreturn]] void bad(const std::string& detail) {
  throw sim::SimError(sim::SimErrc::kBadConfig, "FleetWorker", detail);
}

/// Worker ids become lease-file and shard-file name components, so
/// they are restricted to a filename-safe alphabet.
bool valid_worker_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

/// FNV-1a — folds the worker id into the jitter seed so co-started
/// workers back off on distinct schedules.
std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Same identity stamping the runner applies to synthesized failure
/// rows — quarantine rows must be byte-identical no matter which
/// worker writes them.
void stamp_identity(Row& row, const TrialDesc& d) {
  row.trial_id = d.trial_id;
  row.experiment = d.experiment;
  row.algorithm = d.algorithm;
  row.cell = d.cell_key();
  row.trial_index = d.trial_index;
  row.seed = d.seed;
}

/// Last time a foreign lease's bytes changed, by this worker's clock.
struct Observation {
  std::string raw;
  std::chrono::steady_clock::time_point since;
};

}  // namespace

MemorySample sample_process_memory() {
  MemorySample sample;
  // /proc/self/statm: "size resident shared ..." in pages.
  {
    std::ifstream statm("/proc/self/statm");
    std::uint64_t size_pages = 0;
    std::uint64_t resident_pages = 0;
    if (!(statm >> size_pages >> resident_pages)) return sample;
    const long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0) return sample;
    sample.self_rss_bytes = resident_pages * static_cast<std::uint64_t>(page);
  }
  // /proc/meminfo: "MemTotal: N kB" / "MemAvailable: N kB".
  std::ifstream meminfo("/proc/meminfo");
  if (!meminfo) return sample;
  std::string line;
  bool saw_total = false;
  bool saw_available = false;
  while (std::getline(meminfo, line)) {
    std::istringstream fields(line);
    std::string key;
    std::uint64_t kb = 0;
    if (!(fields >> key >> kb)) continue;
    if (key == "MemTotal:") {
      sample.total_bytes = kb * 1024;
      saw_total = true;
    } else if (key == "MemAvailable:") {
      sample.available_bytes = kb * 1024;
      saw_available = true;
    }
    if (saw_total && saw_available) break;
  }
  sample.ok = saw_total && saw_available && sample.total_bytes > 0;
  return sample;
}

double memory_pressure(const MemorySample& sample) noexcept {
  if (!sample.ok || sample.total_bytes == 0) return 0.0;
  const std::uint64_t used =
      sample.total_bytes -
      std::min(sample.available_bytes, sample.total_bytes);
  return static_cast<double>(used) / static_cast<double>(sample.total_bytes);
}

Heartbeater::Heartbeater(LeaseLedger& ledger, double interval_seconds)
    : ledger_(ledger), interval_seconds_(interval_seconds) {
  thread_ = std::thread([this] { loop(); });
}

Heartbeater::~Heartbeater() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Heartbeater::add(std::uint64_t trial_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  held_.insert(trial_id);
  lost_.erase(trial_id);  // fresh claim supersedes an old theft
}

void Heartbeater::remove(std::uint64_t trial_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  held_.erase(trial_id);
}

bool Heartbeater::lost(std::uint64_t trial_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lost_.count(trial_id) > 0;
}

void Heartbeater::beat_now() {
  std::vector<std::uint64_t> held;
  std::uint64_t beat = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    held.assign(held_.begin(), held_.end());
    beat = ++beat_;
  }
  for (const std::uint64_t trial : held) {
    switch (ledger_.refresh(trial, beat)) {
      case LeaseRefresh::kOk:
        break;
      case LeaseRefresh::kLost: {
        // A sibling judged us dead and stole the trial; record the
        // theft so the worker discards its in-flight result.
        const std::lock_guard<std::mutex> lock(mu_);
        held_.erase(trial);
        lost_.insert(trial);
        break;
      }
      case LeaseRefresh::kError:
        io_failures_.fetch_add(1);
        break;
    }
  }
}

void Heartbeater::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval = std::chrono::duration<double>(interval_seconds_);
  while (!stop_) {
    cv_.wait_for(lock, interval, [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    beat_now();
    lock.lock();
  }
}

FleetWorker::FleetWorker(FleetConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) bad("empty fleet directory");
  if (!valid_worker_id(config_.worker_id)) {
    bad("worker id must be non-empty [A-Za-z0-9._-], <= 64 chars: '" +
        config_.worker_id + "'");
  }
  if (config_.jobs < 1) bad("jobs must be >= 1");
  if (config_.lease_ttl_seconds <= 0.0) bad("lease ttl must be positive");
  if (config_.heartbeat_seconds <= 0.0 ||
      config_.heartbeat_seconds >= config_.lease_ttl_seconds / 2.0) {
    bad("heartbeat must be positive and under half the lease ttl");
  }
  if (config_.poll_seconds <= 0.0) bad("poll must be positive");
  if (config_.max_lease_breaks < 1) bad("max lease breaks must be >= 1");
  if (config_.max_io_failures < 1) bad("max io failures must be >= 1");
  if (config_.max_lease_losses < 1) bad("max lease losses must be >= 1");
  if (config_.mem_high_water < 0.0 || config_.mem_high_water >= 1.0) {
    bad("mem high water must be in [0, 1) (0 disables)");
  }
  if (config_.max_pressure_rounds < 1) bad("max pressure rounds must be >= 1");
  // Validates the runner policy (throws kBadConfig on a bad one).
  ParallelRunner probe(1);
  probe.set_policy(config_.policy);
}

std::vector<std::string> FleetWorker::shard_paths(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("journal", 0) == 0 && name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  std::vector<std::string> paths;
  paths.reserve(names.size());
  for (const std::string& name : names) paths.push_back(dir + "/" + name);
  return paths;
}

std::string FleetWorker::quarantine_error(std::uint64_t trial_id,
                                          int breaks) {
  return std::string("[") + sim::to_string(sim::SimErrc::kLeaseExpired) +
         "] FleetWorker: trial " + std::to_string(trial_id) +
         " quarantined after " + std::to_string(breaks) +
         " lease claims died mid-trial";
}

FleetReport FleetWorker::run(const SweepSpec& spec,
                             const std::string& policy_text) {
  FleetReport report;
  const auto note = [&](const std::string& msg) {
    if (config_.log) config_.log(msg);
  };

  LeaseLedger ledger(config_.dir, config_.worker_id);
  Checkpoint shard(config_.dir,
                   "journal.worker-" + config_.worker_id + ".jsonl");
  std::string warning;
  shard.open(spec, policy_text, &warning);  // throws on a spec mismatch
  if (!warning.empty()) note(warning);
  std::string err;
  if (!ledger.prepare(&err)) {
    report.detail = err;
    return report;
  }

  const std::vector<TrialDesc> all = spec.expand();
  ParallelRunner runner(1);  // claim threads parallelize; trials run solo
  runner.set_policy(config_.policy);
  const std::function<Row(const TrialDesc&)> fn =
      config_.fn ? config_.fn
                 : [](const TrialDesc& d) { return run_trial(d); };
  const auto stop_requested = [&] {
    return config_.should_stop && config_.should_stop();
  };

  Heartbeater heart(ledger, config_.heartbeat_seconds);

  std::mutex mu;  // shard appender + staleness observations
  std::map<std::uint64_t, Observation> observed;
  std::atomic<std::uint64_t> io_failures{0};
  std::atomic<std::uint64_t> lease_losses{0};
  std::atomic<std::size_t> trials_run{0};
  std::atomic<std::size_t> rows_discarded{0};
  std::atomic<std::size_t> leases_broken{0};
  std::atomic<std::size_t> quarantined{0};

  const auto run_and_record = [&](const TrialDesc& d) {
    heart.add(d.trial_id);
    const std::vector<TrialDesc> one{d};
    Row row = runner.run(one, fn).front();
    heart.remove(d.trial_id);
    if (heart.lost(d.trial_id) || !ledger.still_owned(d.trial_id)) {
      // kLeaseLost: a sibling judged us dead mid-trial and re-ran it.
      // Its row is byte-identical to ours, so discarding loses nothing.
      lease_losses.fetch_add(1);
      rows_discarded.fetch_add(1);
      note("worker " + config_.worker_id + ": " +
           sim::to_string(sim::SimErrc::kLeaseLost) + ": trial " +
           std::to_string(d.trial_id) + " stolen mid-run; row discarded");
      return;
    }
    bool recorded = false;
    {
      const std::lock_guard<std::mutex> lock(mu);
      recorded = shard.record(row);
      observed.erase(d.trial_id);
    }
    if (!recorded) {
      // Keep the lease: it goes stale once we degrade out, and a
      // sibling with a working disk re-runs the trial.
      io_failures.fetch_add(1);
      return;
    }
    trials_run.fetch_add(1);
    // The lease stays put as a tombstone. Releasing it here would let
    // a sibling whose pending snapshot predates our journal append see
    // the trial unclaimed and run it again (harmless but wasteful —
    // its row is byte-identical); the next merge drops the trial from
    // pending, and the finalizer sweeps leases/ wholesale.
  };

  const auto quarantine = [&](const TrialDesc& d, std::uint64_t breaks) {
    Row row;
    stamp_identity(row, d);
    row.outcome.ok = false;
    row.outcome.attempts = static_cast<int>(breaks);
    row.outcome.error_kind = sim::to_string(sim::SimErrc::kLeaseExpired);
    row.error = quarantine_error(d.trial_id, static_cast<int>(breaks));
    bool recorded = false;
    {
      const std::lock_guard<std::mutex> lock(mu);
      recorded = shard.record(row);
      observed.erase(d.trial_id);
    }
    if (!recorded) {
      io_failures.fetch_add(1);
      return;
    }
    quarantined.fetch_add(1);
    note("worker " + config_.worker_id + ": trial " +
         std::to_string(d.trial_id) + " quarantined after " +
         std::to_string(breaks) + " dead lease claims");
    // The offending lease file stays put (its raw bytes are the proof
    // any other observer reaches the same verdict); the finalizer
    // sweeps leases/ once the grid is drained.
  };

  const auto process = [&](const TrialDesc& d) {
    const LeaseView view = ledger.read(d.trial_id);
    if (view.state == LeaseRead::kAbsent) {
      std::string claim_err;
      switch (ledger.claim(d.trial_id, /*attempt=*/1, &claim_err)) {
        case LeaseClaim::kClaimed:
          run_and_record(d);
          return;
        case LeaseClaim::kHeld:
          return;  // lost the race; observe the winner next round
        case LeaseClaim::kError:
          io_failures.fetch_add(1);
          note(claim_err);
          return;
      }
    }
    if (view.state == LeaseRead::kOk && view.info.owner == ledger.owner()) {
      // Our own lease from a previous incarnation: this worker id was
      // killed and restarted. Resume the trial as ours — heartbeats
      // pick the file back up via heart.add().
      run_and_record(d);
      return;
    }

    // Foreign (or torn) lease: stale when its bytes sat unchanged for
    // a full TTL of our own monotonic clock.
    const auto now = std::chrono::steady_clock::now();
    bool stale = false;
    {
      const std::lock_guard<std::mutex> lock(mu);
      auto [it, inserted] = observed.try_emplace(d.trial_id);
      if (inserted || it->second.raw != view.raw) {
        it->second.raw = view.raw;
        it->second.since = now;  // owner is alive (or newly observed)
      } else {
        stale = std::chrono::duration<double>(now - it->second.since)
                    .count() >= config_.lease_ttl_seconds;
      }
    }
    if (!stale) return;

    // A torn lease (claimer died inside its O_EXCL write) carries no
    // readable generation; it was claimed at least once.
    const std::uint64_t generation =
        view.state == LeaseRead::kOk ? view.info.attempt : 1;
    if (generation >= static_cast<std::uint64_t>(config_.max_lease_breaks)) {
      quarantine(d, generation);
      return;
    }
    std::string break_err;
    switch (ledger.break_lease(d.trial_id, view.raw, generation + 1,
                               &break_err)) {
      case LeaseBreak::kBroken:
        leases_broken.fetch_add(1);
        run_and_record(d);
        return;
      case LeaseBreak::kChanged: {
        // Heartbeat or a faster breaker landed between our read and
        // rename — the staleness verdict is void; observe afresh.
        const std::lock_guard<std::mutex> lock(mu);
        observed.erase(d.trial_id);
        return;
      }
      case LeaseBreak::kError:
        io_failures.fetch_add(1);
        note(break_err);
        return;
    }
  };

  const auto degrade = [&](const std::string& why) {
    report.outcome = FleetOutcome::kDegraded;
    report.detail = why;
    note("worker " + config_.worker_id + ": " +
         sim::to_string(sim::SimErrc::kFleetDegraded) + ": " + why);
  };
  const auto snapshot = [&] {
    report.trials_run = trials_run.load();
    report.rows_discarded = rows_discarded.load();
    report.leases_broken = leases_broken.load();
    report.quarantined = quarantined.load();
  };

  std::uint64_t idle_rounds = 0;
  std::uint64_t pressure_rounds = 0;
  // Bounded, deterministically jittered wait between rounds; shared by
  // the all-leases-held and memory-pressure paths so co-started
  // workers never stampede the directory (or the allocator) in
  // lockstep.
  const auto backoff = [&](std::uint64_t round) {
    sim::Rng jitter(derive_seed(
        derive_seed(config_.jitter_seed, kFleetStream),
        fnv1a(config_.worker_id), round));
    const double factor =
        static_cast<double>(std::uint64_t{1} << std::min<std::uint64_t>(
                                idle_rounds - 1, 3));
    const double wait = std::min(
        config_.poll_seconds * factor * (1.0 + jitter.uniform()),
        config_.lease_ttl_seconds);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(wait));
    while (std::chrono::steady_clock::now() < deadline) {
      if (stop_requested()) break;  // prompt SIGTERM response
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  };

  for (std::uint64_t round = 0;; ++round) {
    report.rounds = round + 1;
    if (stop_requested()) {
      snapshot();
      degrade("stop requested");
      return report;
    }

    std::vector<JsonlLoad> loads;
    for (const std::string& path : shard_paths(config_.dir)) {
      JsonlLoad load = load_jsonl(path);
      if (load.ok) loads.push_back(std::move(load));
    }
    // Fleet drain contract: any journaled row — success or failure —
    // is done. Re-running deterministic failures would livelock the
    // fleet (see merge_journals).
    const JournalMerge merge =
        merge_journals(all, loads, /*rerun_failures=*/false);
    report.torn_tail = merge.torn_tail;
    report.journal_lines = merge.journal_lines;

    if (merge.pending.empty()) {
      // Compaction: rewrite the canonical journal as one validated
      // line per trial in id order — exactly the bytes a --jobs 1 run
      // journals — then the finals. Both are atomic and deterministic,
      // so concurrent finalizers write identical files.
      std::string canonical;
      for (const std::string& line : merge.lines) {
        canonical += line;
        canonical += '\n';
      }
      std::string final_err;
      if (!write_file_atomic(config_.dir + "/journal.jsonl", canonical,
                             &final_err) ||
          !shard.finalize(merge.rows, aggregate(merge.rows), &final_err)) {
        snapshot();
        report.outcome = FleetOutcome::kError;
        report.detail = final_err;
        return report;
      }
      // Any lease left is an orphan of a dead owner (no trial is
      // pending); sweep them so the directory ends clean. Races with a
      // straggler's release() are benign — release tolerates kAbsent.
      std::error_code ec;
      std::filesystem::remove_all(config_.dir + "/leases", ec);
      snapshot();
      for (const Row& r : merge.rows) {
        if (!r.error.empty()) ++report.rows_failed;
      }
      report.outcome = FleetOutcome::kDrained;
      report.finalized = true;
      return report;
    }

    // Admission control: above the high-water mark this worker claims
    // nothing this round — it backs off like an idle round and lets
    // siblings on healthier boxes (or the passage of time) drain the
    // pressure. Persistent pressure degrades gracefully, mirroring the
    // max-io-failures path: finish nothing new, release nothing held,
    // exit 4 so an operator/wrapper can reschedule. The check sits
    // after the finalize block because finishing an already-drained
    // grid is cheap and must not be starved.
    if (config_.mem_high_water > 0.0) {
      const MemorySample mem =
          config_.mem_probe ? config_.mem_probe() : sample_process_memory();
      const double pressure = memory_pressure(mem);
      if (mem.ok && pressure >= config_.mem_high_water) {
        ++pressure_rounds;
        report.pressure_rounds = pressure_rounds;
        note("worker " + config_.worker_id + ": memory pressure " +
             std::to_string(pressure) + " >= high water " +
             std::to_string(config_.mem_high_water) + " (round " +
             std::to_string(pressure_rounds) + "/" +
             std::to_string(config_.max_pressure_rounds) +
             "); not claiming");
        if (pressure_rounds >=
            static_cast<std::uint64_t>(config_.max_pressure_rounds)) {
          snapshot();
          degrade("memory pressure persisted for " +
                  std::to_string(pressure_rounds) + " rounds");
          return report;
        }
        ++idle_rounds;
        backoff(round);
        continue;
      }
      pressure_rounds = 0;
    }

    const std::size_t progress_before =
        trials_run.load() + quarantined.load();
    std::atomic<std::size_t> next{0};
    const auto drain = [&] {
      for (;;) {
        if (stop_requested()) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= merge.pending.size()) return;
        process(merge.pending[i]);
      }
    };
    const int claimers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(config_.jobs), merge.pending.size()));
    if (claimers <= 1) {
      drain();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(claimers));
      for (int t = 0; t < claimers; ++t) threads.emplace_back(drain);
      for (std::thread& t : threads) t.join();
    }

    const std::uint64_t io_total = io_failures.load() + heart.io_failures();
    if (io_total >= static_cast<std::uint64_t>(config_.max_io_failures)) {
      snapshot();
      degrade("shared directory failing (" + std::to_string(io_total) +
              " I/O errors)");
      return report;
    }
    if (lease_losses.load() >=
        static_cast<std::uint64_t>(config_.max_lease_losses)) {
      snapshot();
      degrade("leases repeatedly stolen (" +
              std::to_string(lease_losses.load()) +
              " losses) — this worker looks dead to its siblings");
      return report;
    }

    const std::size_t progress_after =
        trials_run.load() + quarantined.load();
    if (progress_after > progress_before) {
      idle_rounds = 0;
      continue;
    }
    // Everything pending is held by live siblings.
    ++idle_rounds;
    backoff(round);
  }
}

}  // namespace slowcc::exp
