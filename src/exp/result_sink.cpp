#include "exp/result_sink.hpp"

#include <cmath>
#include <sstream>

#include "exp/serialize.hpp"

namespace slowcc::exp {
namespace {

void csv_number_field(std::ostream& out, double v) {
  if (std::isfinite(v)) out << json_number(v);  // same canonical form
}

}  // namespace

void write_rows_jsonl(std::ostream& out, const std::vector<Row>& rows) {
  for (const Row& r : rows) out << r.to_json() << '\n';
}

void write_rows_csv(std::ostream& out, const std::vector<Row>& rows) {
  const std::vector<std::string> axes = axis_names(rows);
  const std::vector<std::string> metrics = metric_names(rows);
  out << "trial_id,experiment,algorithm,cell,trial_index,seed";
  for (const std::string& a : axes) out << ',' << csv_escape(a);
  for (const std::string& m : metrics) out << ',' << csv_escape(m);
  out << ",error\n";
  for (const Row& r : rows) {
    out << r.trial_id << ',' << csv_escape(r.experiment) << ','
        << csv_escape(r.algorithm) << ',' << csv_escape(r.cell) << ','
        << r.trial_index << ',' << r.seed;
    for (const std::string& a : axes) {
      out << ',';
      for (const auto& [k, v] : r.axes) {
        if (k == a) {
          csv_number_field(out, v);
          break;
        }
      }
    }
    for (const std::string& m : metrics) {
      out << ',';
      csv_number_field(out, r.get(m));
    }
    out << ',' << csv_escape(r.error) << '\n';
  }
}

void write_cells_jsonl(std::ostream& out,
                       const std::vector<CellStats>& cells) {
  for (const CellStats& c : cells) out << c.to_json() << '\n';
}

void write_cells_csv(std::ostream& out, const std::vector<CellStats>& cells) {
  out << "cell,experiment,algorithm,metric,n,mean,stddev,ci95,min,p05,p50,"
         "p95,max,errors\n";
  for (const CellStats& c : cells) {
    for (const MetricStats& m : c.metrics) {
      out << csv_escape(c.cell) << ',' << csv_escape(c.experiment) << ','
          << csv_escape(c.algorithm) << ',' << csv_escape(m.name) << ','
          << m.n << ',' << json_number(m.mean) << ',' << json_number(m.stddev)
          << ',' << json_number(m.ci95) << ',' << json_number(m.min) << ','
          << json_number(m.p05) << ',' << json_number(m.p50) << ','
          << json_number(m.p95) << ',' << json_number(m.max) << ','
          << c.errors << '\n';
    }
  }
}

std::string rows_to_jsonl(const std::vector<Row>& rows) {
  std::ostringstream out;
  write_rows_jsonl(out, rows);
  return out.str();
}

std::string cells_to_jsonl(const std::vector<CellStats>& cells) {
  std::ostringstream out;
  write_cells_jsonl(out, cells);
  return out.str();
}

}  // namespace slowcc::exp
