#include "exp/result_sink.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "exp/serialize.hpp"
#include "sim/error.hpp"

namespace slowcc::exp {
namespace {

void csv_number_field(std::ostream& out, double v) {
  if (std::isfinite(v)) out << json_number(v);  // same canonical form
}

}  // namespace

void write_rows_jsonl(std::ostream& out, const std::vector<Row>& rows) {
  for (const Row& r : rows) out << r.to_json() << '\n';
}

void write_rows_csv(std::ostream& out, const std::vector<Row>& rows) {
  const std::vector<std::string> axes = axis_names(rows);
  const std::vector<std::string> metrics = metric_names(rows);
  out << "trial_id,experiment,algorithm,cell,trial_index,seed";
  for (const std::string& a : axes) out << ',' << csv_escape(a);
  for (const std::string& m : metrics) out << ',' << csv_escape(m);
  out << ",attempts,error,error_kind\n";
  for (const Row& r : rows) {
    out << r.trial_id << ',' << csv_escape(r.experiment) << ','
        << csv_escape(r.algorithm) << ',' << csv_escape(r.cell) << ','
        << r.trial_index << ',' << r.seed;
    for (const std::string& a : axes) {
      out << ',';
      for (const auto& [k, v] : r.axes) {
        if (k == a) {
          csv_number_field(out, v);
          break;
        }
      }
    }
    for (const std::string& m : metrics) {
      out << ',';
      csv_number_field(out, r.get(m));
    }
    out << ',' << r.outcome.attempts << ',' << csv_escape(r.error) << ','
        << csv_escape(r.outcome.error_kind) << '\n';
  }
}

void write_cells_jsonl(std::ostream& out,
                       const std::vector<CellStats>& cells) {
  for (const CellStats& c : cells) out << c.to_json() << '\n';
}

void write_cells_csv(std::ostream& out, const std::vector<CellStats>& cells) {
  out << "cell,experiment,algorithm,metric,n,mean,stddev,ci95,min,p05,p50,"
         "p95,max,errors\n";
  for (const CellStats& c : cells) {
    for (const MetricStats& m : c.metrics) {
      out << csv_escape(c.cell) << ',' << csv_escape(c.experiment) << ','
          << csv_escape(c.algorithm) << ',' << csv_escape(m.name) << ','
          << m.n << ',' << json_number(m.mean) << ',' << json_number(m.stddev)
          << ',' << json_number(m.ci95) << ',' << json_number(m.min) << ','
          << json_number(m.p05) << ',' << json_number(m.p50) << ','
          << json_number(m.p95) << ',' << json_number(m.max) << ','
          << c.errors << '\n';
    }
  }
}

std::string rows_to_jsonl(const std::vector<Row>& rows) {
  std::ostringstream out;
  write_rows_jsonl(out, rows);
  return out.str();
}

std::string cells_to_jsonl(const std::vector<CellStats>& cells) {
  std::ostringstream out;
  write_cells_jsonl(out, cells);
  return out.str();
}

void write_manifest_jsonl(std::ostream& out, const std::vector<Row>& rows) {
  struct CellRecord {
    const Row* first = nullptr;
    std::size_t trials = 0;
    std::size_t failed = 0;
    std::string failed_ids;
    std::vector<std::string> kinds;
    std::int64_t attempts = 0;
    std::uint64_t events = 0;
    double wall_ms = 0.0;
  };
  std::vector<std::string> order;
  std::map<std::string, CellRecord> cells;
  for (const Row& r : rows) {
    auto [it, inserted] = cells.try_emplace(r.cell);
    CellRecord& c = it->second;
    if (inserted) {
      c.first = &r;
      order.push_back(r.cell);
    }
    ++c.trials;
    c.attempts += r.outcome.attempts;
    c.events += r.outcome.events;
    c.wall_ms += r.outcome.wall_ms;
    if (!r.error.empty()) {
      ++c.failed;
      if (!c.failed_ids.empty()) c.failed_ids += ',';
      c.failed_ids += std::to_string(r.trial_id);
      const std::string& kind =
          r.outcome.error_kind.empty() ? "exception" : r.outcome.error_kind;
      if (std::find(c.kinds.begin(), c.kinds.end(), kind) == c.kinds.end()) {
        c.kinds.push_back(kind);
      }
    }
  }
  for (const std::string& cell : order) {
    const CellRecord& c = cells.at(cell);
    std::string kinds;
    for (const std::string& k : c.kinds) {
      if (!kinds.empty()) kinds += ',';
      kinds += k;
    }
    JsonObjectBuilder o;
    o.add("cell", cell)
        .add("experiment", c.first->experiment)
        .add("algorithm", c.first->algorithm)
        .add("trials", static_cast<std::uint64_t>(c.trials))
        .add("ok", static_cast<std::uint64_t>(c.trials - c.failed))
        .add("failed", static_cast<std::uint64_t>(c.failed))
        .add("status", c.failed == 0 ? "ok" : "failed");
    if (c.failed > 0) {
      o.add("failed_trial_ids", c.failed_ids).add("error_kinds", kinds);
    }
    o.add("attempts", c.attempts)
        .add("events", c.events)
        .add("wall_ms", c.wall_ms);
    out << o.str() << '\n';
  }
}

std::string manifest_to_jsonl(const std::vector<Row>& rows) {
  std::ostringstream out;
  write_manifest_jsonl(out, rows);
  return out.str();
}

namespace {

/// Write all of `content` to `fd`, retrying partial writes and EINTR.
bool write_all(int fd, const std::string& content) {
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Directory holding `path` ("." for a bare filename).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

bool fsync_parent_dir(const std::string& path, std::string* error) {
  std::error_code ec;
  const std::string dir = std::filesystem::is_directory(path, ec)
                              ? path
                              : parent_dir(path);
  // slowcc-lint: allow(no-unguarded-shared-write) this IS the sanctioned durability helper (read-only open of the directory)
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    if (error) *error = "cannot open directory for fsync: " + dir;
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok && error) *error = "fsync failed on directory: " + dir;
  return ok;
}

std::string atomic_staging_name(const std::string& path, long pid,
                                std::uint64_t seq) {
  return path + ".tmp." + std::to_string(pid) + "." + std::to_string(seq);
}

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* error) {
  // Pid+sequence staging name: two fleet workers finalizing the same
  // file concurrently must not truncate each other's tmp mid-write —
  // the pid separates processes, the counter separates threads (e.g.
  // two in-process FleetWorkers) that share one.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp = atomic_staging_name(
      path, static_cast<long>(::getpid()), seq.fetch_add(1));
  // slowcc-lint: allow(no-unguarded-shared-write) this IS the sanctioned tmp+fsync+rename helper
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error) *error = "cannot open " + tmp;
    return false;
  }
  if (!write_all(fd, content) || ::fsync(fd) != 0) {
    if (error) *error = "write failed: " + tmp;
    ::close(fd);
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return false;
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error) *error = "rename " + tmp + " -> " + path + ": " + ec.message();
    std::filesystem::remove(tmp, ec);
    return false;
  }
  // Persist the rename itself: without the directory fsync a crash
  // right here can roll the directory entry back to the old file (or
  // to nothing, for a first write) on journaling filesystems.
  return fsync_parent_dir(path, error);
}

ExclusiveWrite write_file_exclusive(const std::string& path,
                                    const std::string& content,
                                    std::string* error) {
  // slowcc-lint: allow(no-unguarded-shared-write) this IS the sanctioned O_EXCL claim helper
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return ExclusiveWrite::kExists;
    if (error) *error = "cannot create " + path;
    return ExclusiveWrite::kError;
  }
  const bool ok = write_all(fd, content) && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    if (error) *error = "write failed: " + path;
    // Leave the (torn) file in place: we DID win the claim; a torn
    // lease ages out via the staleness TTL like any dead owner's.
    return ExclusiveWrite::kError;
  }
  std::string dir_err;
  if (!fsync_parent_dir(path, &dir_err)) {
    if (error) *error = dir_err;
    return ExclusiveWrite::kError;
  }
  return ExclusiveWrite::kCreated;
}

JsonlAppender::JsonlAppender(const std::string& path) : path_(path) {
  // slowcc-lint: allow(no-unguarded-shared-write) this IS the sanctioned append+flush journal primitive
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    throw sim::SimError(sim::SimErrc::kBadConfig, "JsonlAppender",
                        "cannot open journal for append: " + path);
  }
}

JsonlAppender::~JsonlAppender() {
  if (file_ != nullptr) std::fclose(file_);
}

bool JsonlAppender::append(const std::string& line) {
  if (file_ == nullptr) return false;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return false;
  }
  if (std::fputc('\n', file_) == EOF) return false;
  return std::fflush(file_) == 0;
}

JsonlLoad load_jsonl(const std::string& path) {
  JsonlLoad out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.error = "cannot open " + path;
    return out;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  out.ok = true;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      // A writer died mid-append: keep what is complete, report the
      // rest instead of failing the whole load.
      out.torn_tail = true;
      out.tail = text.substr(start);
      break;
    }
    out.lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

}  // namespace slowcc::exp
