#pragma once

#include <string>
#include <vector>

#include "exp/row.hpp"

namespace slowcc::exp {

/// Summary statistics of one metric over a grid cell's replicates.
struct MetricStats {
  std::string name;
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;    // sample standard deviation (n-1)
  double ci95 = 0.0;      // 95% CI half-width (Student t)
  double min = 0.0;
  double max = 0.0;
  double p05 = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// All metrics of one grid cell, aggregated over its trials.
struct CellStats {
  std::string cell;
  std::string experiment;
  std::string algorithm;
  std::vector<std::pair<std::string, double>> axes;  // from the first row
  std::size_t trials = 0;  // rows aggregated (errored rows excluded)
  std::size_t errors = 0;  // rows skipped because Row::error was set
  std::vector<MetricStats> metrics;

  /// Stats of metric `name`; nullptr when absent.
  [[nodiscard]] const MetricStats* metric(std::string_view name) const;

  [[nodiscard]] std::string to_json() const;
};

/// Reduce per-trial rows to per-cell statistics. Rows are grouped by
/// `Row::cell` in first-seen (trial-id) order; within a cell, each
/// metric is aggregated over the rows that carry it. Deterministic:
/// depends only on row content and order, not on how the rows were
/// produced.
[[nodiscard]] std::vector<CellStats> aggregate(const std::vector<Row>& rows);

/// 95% two-sided Student-t critical value for `n` samples (df = n-1).
/// Exact table for small df, 1.960 asymptote beyond; 0 when n < 2.
[[nodiscard]] double t_critical_95(std::size_t n) noexcept;

/// Linear-interpolated percentile of a sorted sample (q in [0, 1]).
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q) noexcept;

}  // namespace slowcc::exp
