#pragma once

#include <cstdint>
#include <string>

namespace slowcc::exp {

/// Contents of one trial lease file. A lease is a *hint*, not a lock:
/// rows are deterministic per trial (seeds are cell-attached, the
/// serializer is canonical), so two workers running the same trial
/// produce byte-identical rows and a lost race costs only wasted work,
/// never correctness. That is why the protocol below can be
/// best-effort: every race window resolves to "both ran it" or "one
/// discards a duplicate", both harmless.
struct LeaseInfo {
  std::string owner;         // claiming worker's id (--worker-id)
  std::uint64_t trial_id = 0;
  std::uint64_t attempt = 0;  // claim generation: 1 on first claim,
                              // +1 per stale-lease break of this trial
  std::uint64_t beat = 0;     // owner-side monotonic heartbeat counter
};

/// What a lease file looked like when read.
enum class LeaseRead {
  kAbsent,  // no file — trial unclaimed (or released)
  kTorn,    // file exists but is short/garbled: a claimer died
            // mid-write. Held-but-unreadable; ages out via the TTL.
  kOk,      // parsed cleanly into LeaseView::info
};

struct LeaseView {
  LeaseRead state = LeaseRead::kAbsent;
  std::string raw;  // exact file bytes — the compare token for
                    // break_lease (a fingerprint: the content changes
                    // iff owner/attempt/beat change, since the file
                    // carries no timestamps)
  LeaseInfo info;   // valid only when state == kOk
};

enum class LeaseClaim {
  kClaimed,  // this call created the lease — the trial is ours
  kHeld,     // someone else's lease file already exists
  kError,    // I/O failure (shared filesystem trouble)
};

enum class LeaseRefresh {
  kOk,    // heartbeat written; we still own the lease
  kLost,  // the file is gone or names another owner — a sibling
          // judged us dead and broke the lease. Discard the in-flight
          // result (theirs is byte-identical anyway).
  kError, // I/O failure
};

enum class LeaseBreak {
  kBroken,   // lease rewritten to name us; the trial is ours
  kChanged,  // file changed (heartbeat, release, or a faster breaker)
             // since `expected_raw` was read — back off, re-observe
  kError,    // I/O failure
};

/// Per-trial lease files under `<sweep_dir>/leases/`, shared by every
/// fleet worker draining the directory.
///
/// Protocol:
///   claim    — O_EXCL create; exactly one of N racing workers wins.
///   refresh  — rewrite (tmp + rename) with an incremented beat; fails
///              kLost when the file no longer names this worker.
///   break    — compare-and-swap on the raw bytes: rewrite only when
///              the file still reads exactly as the staleness observer
///              last saw it. The read/rename window means two breakers
///              can both "win"; last rename stands, and the loser's
///              next refresh reports kLost (benign — see LeaseInfo).
///   release  — unlink, only while still owned.
///
/// Staleness is judged by the *observer*: a lease is stale when its
/// raw bytes have not changed for a full TTL of the observer's own
/// monotonic clock. No cross-process clock comparison ever happens —
/// the file carries a counter, not a timestamp, so fleet workers on
/// machines with skewed clocks still agree on liveness.
class LeaseLedger {
 public:
  /// `sweep_dir` is the shared checkpoint directory; `owner` is this
  /// worker's id, stamped into every lease it writes. Throws
  /// sim::SimError (kBadConfig) on an empty dir or owner.
  LeaseLedger(std::string sweep_dir, std::string owner);

  /// Create `<dir>/leases/` (idempotent). Returns false with `*error`
  /// set when the directory cannot be created.
  [[nodiscard]] bool prepare(std::string* error = nullptr);

  [[nodiscard]] std::string lease_path(std::uint64_t trial_id) const;
  [[nodiscard]] std::string leases_dir() const;
  [[nodiscard]] const std::string& owner() const noexcept { return owner_; }

  /// Try to claim `trial_id` at claim-generation `attempt`.
  [[nodiscard]] LeaseClaim claim(std::uint64_t trial_id,
                                 std::uint64_t attempt,
                                 std::string* error = nullptr);

  /// Read the lease file as it is right now.
  [[nodiscard]] LeaseView read(std::uint64_t trial_id) const;

  /// Heartbeat: rewrite our lease with `beat` (callers pass a counter
  /// they increment per tick). Preserves the file's claim generation.
  [[nodiscard]] LeaseRefresh refresh(std::uint64_t trial_id,
                                     std::uint64_t beat,
                                     std::string* error = nullptr);

  /// Steal a stale lease. `expected_raw` must be the exact bytes the
  /// caller's staleness observation was based on; any change since
  /// aborts the break with kChanged. `attempt` is the new claim
  /// generation (observed generation + 1) — the per-trial break cap
  /// compares against it to route repeat offenders into quarantine.
  [[nodiscard]] LeaseBreak break_lease(std::uint64_t trial_id,
                                       const std::string& expected_raw,
                                       std::uint64_t attempt,
                                       std::string* error = nullptr);

  /// Unlink our lease. A lease we no longer own is left alone (the
  /// thief is responsible for it now). Returns false only on I/O error.
  bool release(std::uint64_t trial_id);

  /// Does the lease file still name this worker?
  [[nodiscard]] bool still_owned(std::uint64_t trial_id) const;

  /// Canonical flat-JSON lease body (deterministic: equal fields give
  /// equal bytes, which is what makes `raw` a usable fingerprint).
  [[nodiscard]] static std::string render(const LeaseInfo& info);
  [[nodiscard]] static bool parse(const std::string& raw, LeaseInfo* out);

 private:
  std::string dir_;
  std::string owner_;
};

}  // namespace slowcc::exp
